# Empty compiler generated dependencies file for aegaeon_tests.
# This may be replaced when dependencies are built.
