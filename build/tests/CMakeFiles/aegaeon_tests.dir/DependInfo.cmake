
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/edge_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/edge_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/edge_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/fault_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/fault_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/fault_test.cc.o.d"
  "/root/repo/tests/hw_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/hw_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/hw_test.cc.o.d"
  "/root/repo/tests/infer_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/infer_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/infer_test.cc.o.d"
  "/root/repo/tests/kv_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/kv_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/kv_test.cc.o.d"
  "/root/repo/tests/latency_fit_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/latency_fit_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/latency_fit_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/mini_server_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/mini_server_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/mini_server_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/multinode_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/multinode_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/multinode_test.cc.o.d"
  "/root/repo/tests/oracle_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/oracle_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/oracle_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/report_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/report_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/report_test.cc.o.d"
  "/root/repo/tests/scheduler_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/scheduler_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/timeline_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/timeline_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/timeline_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/unified_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/unified_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/unified_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/aegaeon_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/aegaeon_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aegaeon.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
