file(REMOVE_RECURSE
  "CMakeFiles/aegaeon_sim.dir/aegaeon_sim.cpp.o"
  "CMakeFiles/aegaeon_sim.dir/aegaeon_sim.cpp.o.d"
  "aegaeon_sim"
  "aegaeon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegaeon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
