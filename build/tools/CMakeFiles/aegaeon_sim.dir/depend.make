# Empty dependencies file for aegaeon_sim.
# This may be replaced when dependencies are built.
