# Empty compiler generated dependencies file for aegaeon.
# This may be replaced when dependencies are built.
