file(REMOVE_RECURSE
  "libaegaeon.a"
)
