
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/metrics.cc" "src/CMakeFiles/aegaeon.dir/analysis/metrics.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/analysis/metrics.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/CMakeFiles/aegaeon.dir/analysis/report.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/analysis/report.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/CMakeFiles/aegaeon.dir/analysis/stats.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/analysis/stats.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/CMakeFiles/aegaeon.dir/analysis/table.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/analysis/table.cc.o.d"
  "/root/repo/src/analysis/theory.cc" "src/CMakeFiles/aegaeon.dir/analysis/theory.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/analysis/theory.cc.o.d"
  "/root/repo/src/analysis/timeline.cc" "src/CMakeFiles/aegaeon.dir/analysis/timeline.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/analysis/timeline.cc.o.d"
  "/root/repo/src/baselines/dedicated.cc" "src/CMakeFiles/aegaeon.dir/baselines/dedicated.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/baselines/dedicated.cc.o.d"
  "/root/repo/src/baselines/model_server.cc" "src/CMakeFiles/aegaeon.dir/baselines/model_server.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/baselines/model_server.cc.o.d"
  "/root/repo/src/baselines/muxserve.cc" "src/CMakeFiles/aegaeon.dir/baselines/muxserve.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/baselines/muxserve.cc.o.d"
  "/root/repo/src/baselines/serverless_llm.cc" "src/CMakeFiles/aegaeon.dir/baselines/serverless_llm.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/baselines/serverless_llm.cc.o.d"
  "/root/repo/src/baselines/unified.cc" "src/CMakeFiles/aegaeon.dir/baselines/unified.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/baselines/unified.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/CMakeFiles/aegaeon.dir/core/cluster.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/core/cluster.cc.o.d"
  "/root/repo/src/core/decode_scheduler.cc" "src/CMakeFiles/aegaeon.dir/core/decode_scheduler.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/core/decode_scheduler.cc.o.d"
  "/root/repo/src/core/oracle_scheduler.cc" "src/CMakeFiles/aegaeon.dir/core/oracle_scheduler.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/core/oracle_scheduler.cc.o.d"
  "/root/repo/src/core/prefill_scheduler.cc" "src/CMakeFiles/aegaeon.dir/core/prefill_scheduler.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/core/prefill_scheduler.cc.o.d"
  "/root/repo/src/engine/autoscaler.cc" "src/CMakeFiles/aegaeon.dir/engine/autoscaler.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/engine/autoscaler.cc.o.d"
  "/root/repo/src/hw/cuda_sim.cc" "src/CMakeFiles/aegaeon.dir/hw/cuda_sim.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/hw/cuda_sim.cc.o.d"
  "/root/repo/src/hw/gpu_device.cc" "src/CMakeFiles/aegaeon.dir/hw/gpu_device.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/hw/gpu_device.cc.o.d"
  "/root/repo/src/hw/gpu_spec.cc" "src/CMakeFiles/aegaeon.dir/hw/gpu_spec.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/hw/gpu_spec.cc.o.d"
  "/root/repo/src/hw/node.cc" "src/CMakeFiles/aegaeon.dir/hw/node.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/hw/node.cc.o.d"
  "/root/repo/src/hw/pcie_link.cc" "src/CMakeFiles/aegaeon.dir/hw/pcie_link.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/hw/pcie_link.cc.o.d"
  "/root/repo/src/infer/mini_server.cc" "src/CMakeFiles/aegaeon.dir/infer/mini_server.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/infer/mini_server.cc.o.d"
  "/root/repo/src/infer/paged_kv.cc" "src/CMakeFiles/aegaeon.dir/infer/paged_kv.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/infer/paged_kv.cc.o.d"
  "/root/repo/src/infer/tensor.cc" "src/CMakeFiles/aegaeon.dir/infer/tensor.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/infer/tensor.cc.o.d"
  "/root/repo/src/infer/tiny_llm.cc" "src/CMakeFiles/aegaeon.dir/infer/tiny_llm.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/infer/tiny_llm.cc.o.d"
  "/root/repo/src/kv/transfer_engine.cc" "src/CMakeFiles/aegaeon.dir/kv/transfer_engine.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/kv/transfer_engine.cc.o.d"
  "/root/repo/src/kv/unified_cache.cc" "src/CMakeFiles/aegaeon.dir/kv/unified_cache.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/kv/unified_cache.cc.o.d"
  "/root/repo/src/mem/bump_allocator.cc" "src/CMakeFiles/aegaeon.dir/mem/bump_allocator.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/mem/bump_allocator.cc.o.d"
  "/root/repo/src/mem/model_cache.cc" "src/CMakeFiles/aegaeon.dir/mem/model_cache.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/mem/model_cache.cc.o.d"
  "/root/repo/src/mem/slab_allocator.cc" "src/CMakeFiles/aegaeon.dir/mem/slab_allocator.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/mem/slab_allocator.cc.o.d"
  "/root/repo/src/model/latency_fit.cc" "src/CMakeFiles/aegaeon.dir/model/latency_fit.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/model/latency_fit.cc.o.d"
  "/root/repo/src/model/latency_model.cc" "src/CMakeFiles/aegaeon.dir/model/latency_model.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/model/latency_model.cc.o.d"
  "/root/repo/src/model/model_spec.cc" "src/CMakeFiles/aegaeon.dir/model/model_spec.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/model/model_spec.cc.o.d"
  "/root/repo/src/model/registry.cc" "src/CMakeFiles/aegaeon.dir/model/registry.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/model/registry.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/aegaeon.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/aegaeon.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/aegaeon.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/sim/simulator.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/CMakeFiles/aegaeon.dir/workload/dataset.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/workload/dataset.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/aegaeon.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/aegaeon.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/aegaeon.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
