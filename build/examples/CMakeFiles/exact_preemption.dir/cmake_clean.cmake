file(REMOVE_RECURSE
  "CMakeFiles/exact_preemption.dir/exact_preemption.cpp.o"
  "CMakeFiles/exact_preemption.dir/exact_preemption.cpp.o.d"
  "exact_preemption"
  "exact_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
