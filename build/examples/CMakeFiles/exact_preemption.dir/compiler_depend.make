# Empty compiler generated dependencies file for exact_preemption.
# This may be replaced when dependencies are built.
