file(REMOVE_RECURSE
  "CMakeFiles/burst_absorption.dir/burst_absorption.cpp.o"
  "CMakeFiles/burst_absorption.dir/burst_absorption.cpp.o.d"
  "burst_absorption"
  "burst_absorption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_absorption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
