file(REMOVE_RECURSE
  "CMakeFiles/market_serving.dir/market_serving.cpp.o"
  "CMakeFiles/market_serving.dir/market_serving.cpp.o.d"
  "market_serving"
  "market_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
