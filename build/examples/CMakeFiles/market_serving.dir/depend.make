# Empty dependencies file for market_serving.
# This may be replaced when dependencies are built.
