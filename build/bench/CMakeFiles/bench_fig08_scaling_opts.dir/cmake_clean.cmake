file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_scaling_opts.dir/bench_fig08_scaling_opts.cc.o"
  "CMakeFiles/bench_fig08_scaling_opts.dir/bench_fig08_scaling_opts.cc.o.d"
  "bench_fig08_scaling_opts"
  "bench_fig08_scaling_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_scaling_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
