# Empty compiler generated dependencies file for bench_fig08_scaling_opts.
# This may be replaced when dependencies are built.
