# Empty dependencies file for bench_hetero_slos.
# This may be replaced when dependencies are built.
