file(REMOVE_RECURSE
  "CMakeFiles/bench_hetero_slos.dir/bench_hetero_slos.cc.o"
  "CMakeFiles/bench_hetero_slos.dir/bench_hetero_slos.cc.o.d"
  "bench_hetero_slos"
  "bench_hetero_slos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hetero_slos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
