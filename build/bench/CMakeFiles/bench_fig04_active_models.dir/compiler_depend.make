# Empty compiler generated dependencies file for bench_fig04_active_models.
# This may be replaced when dependencies are built.
