file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_active_models.dir/bench_fig04_active_models.cc.o"
  "CMakeFiles/bench_fig04_active_models.dir/bench_fig04_active_models.cc.o.d"
  "bench_fig04_active_models"
  "bench_fig04_active_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_active_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
