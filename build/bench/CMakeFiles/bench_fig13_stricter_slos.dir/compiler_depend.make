# Empty compiler generated dependencies file for bench_fig13_stricter_slos.
# This may be replaced when dependencies are built.
