file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_stricter_slos.dir/bench_fig13_stricter_slos.cc.o"
  "CMakeFiles/bench_fig13_stricter_slos.dir/bench_fig13_stricter_slos.cc.o.d"
  "bench_fig13_stricter_slos"
  "bench_fig13_stricter_slos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_stricter_slos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
