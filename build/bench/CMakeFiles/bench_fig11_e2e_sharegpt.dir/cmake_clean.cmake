file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_e2e_sharegpt.dir/bench_fig11_e2e_sharegpt.cc.o"
  "CMakeFiles/bench_fig11_e2e_sharegpt.dir/bench_fig11_e2e_sharegpt.cc.o.d"
  "bench_fig11_e2e_sharegpt"
  "bench_fig11_e2e_sharegpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_e2e_sharegpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
