# Empty dependencies file for bench_fig11_e2e_sharegpt.
# This may be replaced when dependencies are built.
