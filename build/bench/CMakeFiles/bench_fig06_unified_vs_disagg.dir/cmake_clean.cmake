file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_unified_vs_disagg.dir/bench_fig06_unified_vs_disagg.cc.o"
  "CMakeFiles/bench_fig06_unified_vs_disagg.dir/bench_fig06_unified_vs_disagg.cc.o.d"
  "bench_fig06_unified_vs_disagg"
  "bench_fig06_unified_vs_disagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_unified_vs_disagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
