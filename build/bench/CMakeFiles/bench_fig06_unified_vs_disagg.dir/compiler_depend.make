# Empty compiler generated dependencies file for bench_fig06_unified_vs_disagg.
# This may be replaced when dependencies are built.
