# Empty compiler generated dependencies file for bench_fig12_e2e_datasets.
# This may be replaced when dependencies are built.
