# Empty compiler generated dependencies file for bench_deployment_summary.
# This may be replaced when dependencies are built.
