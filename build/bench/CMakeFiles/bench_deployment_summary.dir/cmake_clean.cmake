file(REMOVE_RECURSE
  "CMakeFiles/bench_deployment_summary.dir/bench_deployment_summary.cc.o"
  "CMakeFiles/bench_deployment_summary.dir/bench_deployment_summary.cc.o.d"
  "bench_deployment_summary"
  "bench_deployment_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deployment_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
