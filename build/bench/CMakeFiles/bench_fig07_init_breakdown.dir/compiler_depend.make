# Empty compiler generated dependencies file for bench_fig07_init_breakdown.
# This may be replaced when dependencies are built.
