// Fault drill: kill instances mid-run and watch the pool absorb it (§3.3's
// proxy-layer fault tolerance). A decode instance crashes at t=60s (its
// device-resident KV is lost and recomputed elsewhere); a prefill instance
// crashes at t=100s (queued work re-dispatches). Per-30s-window attainment
// shows the dip and recovery. Also writes a Chrome trace of the run.

#include <cstdio>
#include <vector>

#include "analysis/timeline.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

int main() {
  using namespace aegaeon;

  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = GeneratePoisson(registry, 0.1, 240.0, Dataset::ShareGpt(), 77);

  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 3;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  cluster.ScheduleFailure(/*prefill_partition=*/false, /*index=*/1, /*when=*/60.0,
                          /*downtime=*/25.0);
  cluster.ScheduleFailure(/*prefill_partition=*/true, /*index=*/0, /*when=*/100.0,
                          /*downtime=*/15.0);

  TimelineRecorder recorder;
  cluster.AttachTimeline(&recorder);
  RunMetrics metrics = cluster.Run(trace);

  std::printf("faults: decode#1 down 60-85s, prefill#0 down 100-115s\n");
  std::printf("all %lu requests completed; overall SLO attainment %.1f%%\n\n",
              static_cast<unsigned long>(metrics.completed_requests),
              metrics.SloAttainment() * 100.0);

  std::printf("%-16s %s\n", "window (s)", "token SLO attainment");
  for (double window = 0.0; window < 240.0; window += 30.0) {
    int64_t met = 0;
    int64_t total = 0;
    for (const Request& r : cluster.requests()) {
      if (r.arrival >= window && r.arrival < window + 30.0) {
        met += r.tokens_met;
        total += r.output_tokens;
      }
    }
    double attainment = total == 0 ? 1.0 : static_cast<double>(met) / total;
    int bars = static_cast<int>(attainment * 40.0);
    std::printf("%5.0f - %-8.0f %5.1f%%  %.*s\n", window, window + 30.0, attainment * 100.0,
                bars, "||||||||||||||||||||||||||||||||||||||||");
  }

  const char* path = "/tmp/aegaeon_fault_drill.json";
  if (recorder.WriteChromeTraceFile(path)) {
    std::printf("\nexecution timeline written to %s (open in chrome://tracing)\n", path);
  }
  return 0;
}
