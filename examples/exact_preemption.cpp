// Exact preemption: the correctness contract behind Aegaeon's token-level
// auto-scaling, demonstrated with a real (tiny) transformer. A generation
// is preempted mid-stream, its KV cache exported and freed (the simulated
// systems' "swap-out"), the arena is churned by another request, and the
// original request is restored — the resumed token stream must be
// bit-identical to an uninterrupted run.

#include <cstdio>
#include <vector>

#include "infer/paged_kv.h"
#include "infer/tiny_llm.h"

int main() {
  using namespace aegaeon;

  TinyLlmConfig config;
  config.vocab = 128;
  config.hidden = 64;
  config.layers = 3;
  config.heads = 4;
  config.kv_heads = 2;
  config.ffn = 128;
  TinyLlm model(config, /*seed=*/2025);
  KvArena arena(/*total_bytes=*/1 << 22, /*slab_bytes=*/1 << 14);

  std::vector<int> prompt = {17, 42, 99, 3};
  const int kTokens = 28;
  const int kPreemptAt = 10;

  auto print_ids = [](const char* label, const std::vector<int>& ids) {
    std::printf("%-22s", label);
    for (int id : ids) {
      std::printf(" %3d", id);
    }
    std::printf("\n");
  };

  // Reference: uninterrupted generation.
  PagedKvStore reference_kv(config.KvGeometry(), &arena);
  std::vector<int> reference = model.Generate(prompt, kTokens, reference_kv);
  print_ids("uninterrupted:", reference);

  // Preempted run: generate, swap out, let another request churn the arena,
  // swap back in, resume.
  PagedKvStore kv(config.KvGeometry(), &arena);
  std::vector<int> first = model.Generate(prompt, kPreemptAt, kv);
  PagedKvStore::Snapshot snapshot = kv.Export();
  size_t kv_bytes = snapshot.data.size() * sizeof(float);
  kv.Release();
  std::printf("\n-- preempted after %d tokens; %zu KV bytes offloaded --\n", kPreemptAt,
              kv_bytes);

  PagedKvStore other_kv(config.KvGeometry(), &arena);
  model.Generate({7, 7, 7, 7}, 20, other_kv);
  std::printf("-- another request ran in between (%zu blocks churned) --\n",
              other_kv.blocks_held());

  if (!kv.Import(snapshot)) {
    std::printf("restore failed: arena exhausted\n");
    return 1;
  }
  std::vector<int> rest = model.Generate({first.back()}, kTokens - kPreemptAt, kv);
  std::vector<int> combined = first;
  combined.insert(combined.end(), rest.begin(), rest.end());
  std::printf("\n");
  print_ids("preempted+resumed:", combined);

  bool identical = combined == reference;
  std::printf("\nresult: %s\n", identical ? "IDENTICAL — preemption is exact"
                                          : "MISMATCH — bookkeeping bug!");
  return identical ? 0 : 1;
}
