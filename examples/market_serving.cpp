// Market serving: the paper's motivating scenario (§2.2). A long-tailed
// market of 60 models — a handful hot, most nearly idle — served on a
// 16-GPU Aegaeon pool (6 prefill + 10 decoding instances). Demonstrates
// effective GPU pooling: ~6 models per GPU while holding chatbot SLOs, and
// per-popularity-tier quality reporting.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/stats.h"
#include "analysis/theory.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

int main() {
  using namespace aegaeon;

  const int kModels = 60;
  const double kTotalRps = 5.0;
  const double kHorizon = 300.0;

  ModelRegistry registry = ModelRegistry::MidSizeMarket(kModels);
  Dataset dataset = Dataset::ShareGpt();
  // Zipf-skewed popularity: the head takes most of the traffic (Fig. 1a).
  std::vector<ArrivalEvent> trace =
      GenerateSkewed(registry, kTotalRps, /*zipf_s=*/1.2, kHorizon, dataset, /*seed=*/7);

  auto counts = CountPerModel(trace, registry.size());
  double mean_rate = kTotalRps / kModels;
  std::printf("market: %d models, %.1f req/s total (%zu requests over %.0fs)\n", kModels,
              kTotalRps, trace.size(), kHorizon);
  std::printf("theorem 3.1: at the mean rate, E[active models] = %.1f -> request-level\n"
              "scaling would pool only %.1f models/GPU; Aegaeon serves %d on 16 GPUs.\n\n",
              ExpectedActiveModels(kModels, mean_rate, 16.79),
              kModels / ExpectedActiveModels(kModels, mean_rate, 16.79), kModels);

  AegaeonConfig config;  // paper defaults: 6 prefill + 10 decode
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);

  std::printf("overall SLO attainment: %.1f%% | mean TTFT %.2fs | p99 TTFT %.2fs\n",
              metrics.SloAttainment() * 100.0, Mean(metrics.ttft_samples),
              Percentile(metrics.ttft_samples, 99));
  std::printf("switches: %zu (mean %.0f ms) | throughput %.2f req/s\n\n",
              metrics.switch_latency_samples.size(),
              Mean(metrics.switch_latency_samples) * 1000.0, metrics.Throughput());

  // Per-tier quality: hot head vs long tail.
  std::vector<std::pair<uint64_t, ModelId>> by_popularity;
  for (ModelId m = 0; m < registry.size(); ++m) {
    by_popularity.emplace_back(counts[m], m);
  }
  std::sort(by_popularity.rbegin(), by_popularity.rend());
  auto tier_attainment = [&](size_t begin, size_t end) {
    int64_t met = 0;
    int64_t total = 0;
    for (const Request& r : cluster.requests()) {
      for (size_t i = begin; i < end; ++i) {
        if (r.model == by_popularity[i].second) {
          met += r.tokens_met;
          total += r.output_tokens;
        }
      }
    }
    return total == 0 ? 1.0 : static_cast<double>(met) / total;
  };
  std::printf("per-tier SLO attainment:\n");
  std::printf("  hot head   (top 5 models, %5.1f%% of traffic): %.1f%%\n",
              100.0 * (by_popularity[0].first + by_popularity[1].first +
                       by_popularity[2].first + by_popularity[3].first +
                       by_popularity[4].first) /
                  trace.size(),
              tier_attainment(0, 5) * 100.0);
  std::printf("  warm middle (models 6-20):                    %.1f%%\n",
              tier_attainment(5, 20) * 100.0);
  std::printf("  long tail  (models 21-60):                    %.1f%%\n",
              tier_attainment(20, by_popularity.size()) * 100.0);
  return 0;
}
