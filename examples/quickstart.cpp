// Quickstart: serve a 20-model market on a 4-GPU Aegaeon pool and print
// token-level SLO attainment next to the ServerlessLLM baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/stats.h"
#include "baselines/serverless_llm.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

int main() {
  using namespace aegaeon;

  // 1. A model market: 12 mid-size models (6B-14B), chatbot SLOs
  //    (TTFT 10 s, TBT 100 ms).
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);

  // 2. A workload: each model receives Poisson arrivals at 0.1 req/s with
  //    ShareGPT-like prompt/output lengths, for 5 simulated minutes.
  Dataset dataset = Dataset::ShareGpt();
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, /*rps_per_model=*/0.1, /*horizon=*/300.0, dataset, /*seed=*/42);
  std::printf("workload: %zu requests across %zu models\n\n", trace.size(), registry.size());

  // 3. Aegaeon: 4 H800 GPUs split into 2 prefill + 2 decoding instances,
  //    full optimization stack (token-level scheduling + T3 auto-scaling).
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  AegaeonCluster aegaeon(config, registry, GpuSpec::H800());
  RunMetrics ours = aegaeon.Run(trace);

  // 4. Baseline: ServerlessLLM with the same 4 GPUs (request-level scaling).
  ServerlessLlmConfig sllm_config;
  sllm_config.gpus = 4;
  ServerlessLlmCluster sllm(sllm_config, registry, GpuSpec::H800());
  RunMetrics theirs = sllm.Run(trace);

  std::printf("%-24s %12s %15s\n", "", "Aegaeon", "ServerlessLLM");
  std::printf("%-24s %11.1f%% %14.1f%%\n", "SLO attainment", ours.SloAttainment() * 100.0,
              theirs.SloAttainment() * 100.0);
  std::printf("%-24s %12.2f %15.2f\n", "mean TTFT (s)", Mean(ours.ttft_samples),
              Mean(theirs.ttft_samples));
  std::printf("%-24s %12.2f %15.2f\n", "p99 TTFT (s)", Percentile(ours.ttft_samples, 99),
              Percentile(theirs.ttft_samples, 99));
  std::printf("%-24s %12.2f %15.2f\n", "mean switch latency (s)",
              Mean(ours.switch_latency_samples), Mean(theirs.switch_latency_samples));
  std::printf("%-24s %12zu %15zu\n", "model switches", ours.switch_latency_samples.size(),
              theirs.switch_latency_samples.size());
  std::printf("%-24s %12.0f %15.0f\n", "completed requests",
              static_cast<double>(ours.completed_requests),
              static_cast<double>(theirs.completed_requests));
  return 0;
}
