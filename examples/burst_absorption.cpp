// Burst absorption: Figure 1(b)'s problem. A hot model bursts past its
// steady rate while a tail of cold models keeps arriving. With dedicated
// reservation the burst would need extra reserved GPUs; Aegaeon absorbs it
// in the shared pool by preemptively scaling models at token granularity.

#include <cstdio>
#include <vector>

#include "analysis/stats.h"
#include "baselines/serverless_llm.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

int main() {
  using namespace aegaeon;

  const double kHorizon = 300.0;
  ModelRegistry registry = ModelRegistry::MidSizeMarket(16);
  Dataset dataset = Dataset::ShareGpt();

  // Steady tail traffic + a 60-second, 6x burst on model 0.
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, /*rps_per_model=*/0.08, kHorizon, dataset, /*seed=*/3);
  AddBurst(trace, registry, /*model=*/0, /*burst_rps=*/1.5, /*start=*/120.0, /*length=*/60.0,
           dataset, /*seed=*/4);

  auto series = RateSeries(trace, kHorizon, 15.0);
  std::printf("arrival rate (req/s, 15s buckets):");
  for (double r : series) {
    std::printf(" %.1f", r);
  }
  std::printf("\n(steady ~%.1f req/s; burst peak ~%.1f req/s on one model)\n\n", 16 * 0.08,
              16 * 0.08 + 1.5);

  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 3;
  AegaeonCluster aegaeon(config, registry, GpuSpec::H800());
  RunMetrics ours = aegaeon.Run(trace);

  ServerlessLlmConfig sllm_config;
  sllm_config.gpus = 5;
  ServerlessLlmCluster sllm(sllm_config, registry, GpuSpec::H800());
  RunMetrics theirs = sllm.Run(trace);

  auto burst_attainment = [&](const auto& requests) {
    int64_t met = 0;
    int64_t total = 0;
    for (const Request& r : requests) {
      if (r.arrival >= 120.0 && r.arrival < 180.0) {
        met += r.tokens_met;
        total += r.output_tokens;
      }
    }
    return total == 0 ? 1.0 : static_cast<double>(met) / total;
  };

  std::printf("%-32s %10s %15s\n", "(5 GPUs each)", "Aegaeon", "ServerlessLLM");
  std::printf("%-32s %9.1f%% %14.1f%%\n", "overall SLO attainment",
              ours.SloAttainment() * 100.0, theirs.SloAttainment() * 100.0);
  std::printf("%-32s %9.1f%% %14.1f%%\n", "during-burst SLO attainment",
              burst_attainment(aegaeon.requests()) * 100.0,
              burst_attainment(sllm.requests()) * 100.0);
  std::printf("%-32s %10.2f %15.2f\n", "p99 TTFT (s)", Percentile(ours.ttft_samples, 99),
              Percentile(theirs.ttft_samples, 99));
  return 0;
}
