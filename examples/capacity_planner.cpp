// Capacity planner: the operator's question behind §7.5 — "how many GPUs do
// I need for this market?" Binary-searches the smallest Aegaeon pool (at a
// fixed 3:5 prefill:decode ratio) meeting a 90% token-level SLO target for
// a given market and load, and compares against dedicated reservation.

#include <cstdio>
#include <vector>

#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace {

using namespace aegaeon;

// Attainment of an Aegaeon pool with `units` instance pairs (3:5 ratio).
double PoolAttainment(int prefill, int decode, const ModelRegistry& registry,
                      const std::vector<ArrivalEvent>& trace) {
  AegaeonConfig config;
  config.prefill_instances = prefill;
  config.decode_instances = decode;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace).SloAttainment();
}

}  // namespace

int main() {
  const double kHorizon = 240.0;
  const double kTarget = 0.90;

  std::printf("=== Aegaeon capacity planner (target: %.0f%% token SLO attainment) ===\n\n",
              kTarget * 100.0);
  std::printf("%-8s %-10s %-22s %-12s %-10s\n", "models", "rps/model", "Aegaeon pool (P+D)",
              "GPUs", "dedicated");

  for (int models : {16, 32, 48, 64}) {
    ModelRegistry registry = ModelRegistry::MidSizeMarket(models);
    auto trace =
        GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), /*seed=*/2025);

    // Grow the pool (3:5 prefill:decode) until the target is met.
    int best_prefill = -1;
    int best_decode = -1;
    double best_attainment = 0.0;
    for (int scale = 1; scale <= 4; ++scale) {
      int prefill = 3 * scale;
      int decode = 5 * scale;
      double attainment = PoolAttainment(prefill, decode, registry, trace);
      if (attainment >= kTarget) {
        best_prefill = prefill;
        best_decode = decode;
        best_attainment = attainment;
        break;
      }
    }
    if (best_prefill < 0) {
      std::printf("%-8d %-10.1f %-22s %-12s %-10d\n", models, 0.1, "> 12+20 (not met)", "-",
                  models);
      continue;
    }
    char pool[32];
    std::snprintf(pool, sizeof(pool), "%d+%d (%.1f%%)", best_prefill, best_decode,
                  best_attainment * 100.0);
    std::printf("%-8d %-10.1f %-22s %-12d %-10d\n", models, 0.1, pool,
                best_prefill + best_decode, models);
  }
  std::printf("\n(\"dedicated\" = one GPU per model, the pre-Aegaeon baseline; the pool\n"
              "column shows prefill+decode instances at the paper's 3:5 split)\n");
  return 0;
}
