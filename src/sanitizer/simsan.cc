#include "sanitizer/simsan.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace aegaeon {
namespace simsan {

size_t SimSanReport::Count(RuleClass rule) const {
  size_t count = 0;
  for (const Violation& v : violations) {
    if (v.rule == rule) {
      count++;
    }
  }
  return count;
}

namespace {

void AppendRecord(std::ostringstream& out, const TraceRecord& record, const ShadowState& state) {
  out << "[t=" << record.time << "] " << ToString(record.op);
  if (record.object != nullptr) {
    out << " on " << state.NameOf(record.object);
  }
  if (record.stream != nullptr) {
    out << " via " << state.NameOf(record.stream);
  }
  if (record.block_count > 0) {
    out << " blocks=" << record.block_count << " first=(slab=" << (record.block >> 32)
        << ",idx=" << static_cast<uint32_t>(record.block) << ")";
  }
  if (record.owner >= 0) {
    out << " request=" << record.owner;
  }
  if (record.end > 0.0 || record.start > 0.0) {
    out << " span=[" << record.start << "," << record.end << ")";
  }
}

}  // namespace

std::string FormatViolation(const Violation& violation, const ShadowState& state) {
  std::ostringstream out;
  out << "SimSan: " << ToString(violation.rule) << " at t=" << violation.when << "\n  "
      << violation.message << "\n  offending access: ";
  AppendRecord(out, violation.current, state);
  out << "\n  conflicting access: ";
  AppendRecord(out, violation.previous, state);
  out << "\n  recent event trace (oldest first):";
  for (const TraceRecord& record : violation.recent) {
    if (record.op == ShadowOp::kAlloc && record.object == nullptr) {
      continue;  // unused ring entry
    }
    out << "\n    ";
    AppendRecord(out, record, state);
  }
  return out.str();
}

SimSan::SimSan() {
  state_.set_on_violation([this](const Violation& violation) {
    if (fatal_) {
      std::fprintf(stderr, "%s\n", FormatViolation(violation, state_).c_str());
      std::fflush(stderr);
      std::abort();
    }
  });
}

SimSanReport SimSan::report() const {
  SimSanReport report;
  report.violations = state_.violations();
  report.checks = state_.checks();
  report.live_blocks = state_.TrackedBlocks();
  return report;
}

#if AEGAEON_SIMSAN_ENABLED

namespace {

// Set by ScopedInstance; hooks report here when non-null so a cell's shadow
// state follows the cell across pool threads.
// LINT-ALLOW(thread-local): ScopedInstance redirection pointer — this is the
// mechanism that makes shadow state follow the simulated cell, not state
// that could decouple from it. Never feeds simulated time or scheduling.
thread_local SimSan* scoped_override = nullptr;

}  // namespace

SimSan& ThreadInstance() {
  if (scoped_override != nullptr) {
    return *scoped_override;
  }
  // LINT-ALLOW(thread-local): fallback checker for unscoped single-threaded
  // use; sharded execution always installs ScopedInstance first
  thread_local SimSan instance;
  return instance;
}

ScopedInstance::ScopedInstance(SimSan& instance) : previous_(scoped_override) {
  scoped_override = &instance;
}

ScopedInstance::~ScopedInstance() { scoped_override = previous_; }

void NoteAllocatorName(const void* alloc, const std::string& name) {
  ThreadInstance().state().NameObject(alloc, name);
}

void NoteAllocatorDestroyed(const void* alloc) {
  ThreadInstance().state().ForgetAllocator(alloc);
}

void NoteAlloc(const void* alloc, const BlockRef* blocks, size_t count) {
  ThreadInstance().state().OnAlloc(alloc, blocks, count);
}

void NoteFree(const void* alloc, const BlockRef& block) {
  ThreadInstance().state().OnFree(alloc, block);
}

void NoteDeferFree(const void* alloc, const std::vector<BlockRef>& blocks,
                   TimePoint transfer_done) {
  ThreadInstance().state().OnDeferFree(alloc, blocks, transfer_done);
}

void NoteReclaimPass(const void* alloc, TimePoint now) {
  (void)alloc;
  ThreadInstance().state().AdvanceTime(now);
}

void NoteTransfer(const void* src_alloc, const std::vector<BlockRef>& src, const void* dst_alloc,
                  const std::vector<BlockRef>& dst, const void* stream, TimePoint now,
                  TimePoint start, TimePoint end, int64_t owner) {
  ThreadInstance().state().OnTransfer(src_alloc, src, dst_alloc, dst, stream, now, start, end,
                                      owner);
}

void NoteComputeLaunch(const void* alloc, const std::vector<BlockRef>& blocks, const void* stream,
                       TimePoint start, TimePoint end, int64_t owner) {
  ThreadInstance().state().OnCompute(alloc, blocks, stream, start, end, owner);
}

void NoteTeardownCheck(const void* alloc) { ThreadInstance().state().CheckTeardown(alloc); }

void NoteStreamEnqueue(const void* stream, const std::string& name, TimePoint start,
                       TimePoint end) {
  ShadowState& state = ThreadInstance().state();
  state.NameObject(stream, name);
  state.OnStreamOp(ShadowOp::kStreamEnqueue, stream, start, end);
}

void NoteStreamWait(const void* stream, const std::string& name, TimePoint until) {
  ShadowState& state = ThreadInstance().state();
  state.NameObject(stream, name);
  state.OnStreamOp(ShadowOp::kStreamWait, stream, until, until);
}

void NoteVramAlloc(const void* gpu, double bytes) {
  ThreadInstance().state().OnVramAlloc(gpu, bytes);
}

void NoteVramFree(const void* gpu, double bytes) { ThreadInstance().state().OnVramFree(gpu, bytes); }

void NoteVramTeardown(const void* gpu, double device_reported) {
  ThreadInstance().state().CheckVramTeardown(gpu, device_reported);
}

void NoteGpuDestroyed(const void* gpu) { ThreadInstance().state().ForgetVram(gpu); }

void NoteDispatch(const void* queue, TimePoint when) {
  ThreadInstance().state().OnDispatch(queue, when);
}

void NoteQueueDestroyed(const void* queue) { ThreadInstance().state().ForgetQueue(queue); }

#endif  // AEGAEON_SIMSAN_ENABLED

}  // namespace simsan
}  // namespace aegaeon
