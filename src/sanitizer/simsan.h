// SimSan: a race/invariant sanitizer for the simulated GPU substrate.
//
// SimSan threads instrumentation hooks through the simulated hardware
// (hw::StreamSim / hw::GpuDevice), the KV machinery (kv::TransferEngine /
// kv::UnifiedKvCache), the mem/ allocators, and the event queue, and checks
// every operation against per-block / per-VRAM shadow state (see
// shadow_state.h for the rule ❶/❷/❸ + leak/double-free/time-regression
// check catalogue).
//
// Build gating: configure with -DAEGAEON_SIMSAN=ON to compile the hooks in
// (the CMake option defines the AEGAEON_SIMSAN macro for every target).
// Without it every simsan::Note* hook below is an empty inline function, so
// instrumented hot paths compile to exactly the un-instrumented code. The
// SimSan / ShadowState classes themselves always compile, so tests can
// drive the checker directly in any build.
//
// Runtime model: one SimSan instance per thread (ThreadInstance), matching
// the ParallelSweep contract that a simulation is confined to the task that
// built it. Violations are fatal by default — the report is printed and the
// process aborts, which turns every bench and test run into a checked run —
// and tests that deliberately inject violations flip to collecting mode
// with set_fatal(false) and query the SimSanReport instead.

#ifndef AEGAEON_SANITIZER_SIMSAN_H_
#define AEGAEON_SANITIZER_SIMSAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/slab_allocator.h"
#include "sanitizer/shadow_state.h"
#include "sim/time.h"

#if defined(AEGAEON_SIMSAN) && AEGAEON_SIMSAN
#define AEGAEON_SIMSAN_ENABLED 1
#else
#define AEGAEON_SIMSAN_ENABLED 0
#endif

namespace aegaeon {
namespace simsan {

// Snapshot of a SimSan run, queryable from tests.
struct SimSanReport {
  std::vector<Violation> violations;
  uint64_t checks = 0;      // instrumented operations verified
  size_t live_blocks = 0;   // blocks currently allocated in shadow state

  size_t Count(RuleClass rule) const;
  bool clean() const { return violations.empty(); }
};

std::string FormatViolation(const Violation& violation, const ShadowState& state);

// The checker facade: shadow state plus violation disposition (fatal abort
// vs. collect-and-query).
class SimSan {
 public:
  SimSan();

  SimSan(const SimSan&) = delete;
  SimSan& operator=(const SimSan&) = delete;

  ShadowState& state() { return state_; }
  const ShadowState& state() const { return state_; }

  // Fatal mode (the default): print the formatted violation and abort.
  bool fatal() const { return fatal_; }
  void set_fatal(bool fatal) { fatal_ = fatal; }

  SimSanReport report() const;
  void Reset() { state_.Reset(); }

 private:
  ShadowState state_;
  bool fatal_ = true;
};

// Redirects the calling thread's checker to `instance` for the scope's
// lifetime, so every Note* hook reports there instead of the thread-local
// default. The sharded fleet (core/fleet.h) gives each cell its own SimSan
// and installs it around any code that constructs, advances, or tears down
// the cell — shadow state then follows the *cell*, not the pool thread that
// happens to run its epoch, keeping checks exact under work stealing.
// Nestable; restores the previous redirection on destruction. Compiles to a
// no-op when SimSan is off.
class ScopedInstance {
 public:
#if AEGAEON_SIMSAN_ENABLED
  explicit ScopedInstance(SimSan& instance);
  ~ScopedInstance();
#else
  explicit ScopedInstance(SimSan& instance) { (void)instance; }
  ~ScopedInstance() = default;
#endif

  ScopedInstance(const ScopedInstance&) = delete;
  ScopedInstance& operator=(const ScopedInstance&) = delete;

#if AEGAEON_SIMSAN_ENABLED
 private:
  SimSan* previous_;
#endif
};

#if AEGAEON_SIMSAN_ENABLED

// The per-thread checker every hook below reports into.
SimSan& ThreadInstance();

// --- mem/ allocator hooks -----------------------------------------------
void NoteAllocatorName(const void* alloc, const std::string& name);
void NoteAllocatorDestroyed(const void* alloc);
void NoteAlloc(const void* alloc, const BlockRef* blocks, size_t count);
void NoteFree(const void* alloc, const BlockRef& block);

// --- kv/ hooks ------------------------------------------------------------
void NoteDeferFree(const void* alloc, const std::vector<BlockRef>& blocks,
                   TimePoint transfer_done);
void NoteReclaimPass(const void* alloc, TimePoint now);
void NoteTransfer(const void* src_alloc, const std::vector<BlockRef>& src,
                  const void* dst_alloc, const std::vector<BlockRef>& dst, const void* stream,
                  TimePoint now, TimePoint start, TimePoint end, int64_t owner);

// --- core/ scheduler hooks ------------------------------------------------
void NoteComputeLaunch(const void* alloc, const std::vector<BlockRef>& blocks,
                       const void* stream, TimePoint start, TimePoint end, int64_t owner);
void NoteTeardownCheck(const void* alloc);

// --- hw/ hooks ------------------------------------------------------------
void NoteStreamEnqueue(const void* stream, const std::string& name, TimePoint start,
                       TimePoint end);
void NoteStreamWait(const void* stream, const std::string& name, TimePoint until);
void NoteVramAlloc(const void* gpu, double bytes);
void NoteVramFree(const void* gpu, double bytes);
void NoteVramTeardown(const void* gpu, double device_reported);
void NoteGpuDestroyed(const void* gpu);

// --- sim/ hooks -----------------------------------------------------------
void NoteDispatch(const void* queue, TimePoint when);
void NoteQueueDestroyed(const void* queue);

#else  // !AEGAEON_SIMSAN_ENABLED — every hook is a no-op the optimizer drops.

inline void NoteAllocatorName(const void*, const std::string&) {}
inline void NoteAllocatorDestroyed(const void*) {}
inline void NoteAlloc(const void*, const BlockRef*, size_t) {}
inline void NoteFree(const void*, const BlockRef&) {}
inline void NoteDeferFree(const void*, const std::vector<BlockRef>&, TimePoint) {}
inline void NoteReclaimPass(const void*, TimePoint) {}
inline void NoteTransfer(const void*, const std::vector<BlockRef>&, const void*,
                         const std::vector<BlockRef>&, const void*, TimePoint, TimePoint,
                         TimePoint, int64_t) {}
inline void NoteComputeLaunch(const void*, const std::vector<BlockRef>&, const void*, TimePoint,
                              TimePoint, int64_t) {}
inline void NoteTeardownCheck(const void*) {}
inline void NoteStreamEnqueue(const void*, const std::string&, TimePoint, TimePoint) {}
inline void NoteStreamWait(const void*, const std::string&, TimePoint) {}
inline void NoteVramAlloc(const void*, double) {}
inline void NoteVramFree(const void*, double) {}
inline void NoteVramTeardown(const void*, double) {}
inline void NoteGpuDestroyed(const void*) {}
inline void NoteDispatch(const void*, TimePoint) {}
inline void NoteQueueDestroyed(const void*) {}

#endif  // AEGAEON_SIMSAN_ENABLED

}  // namespace simsan
}  // namespace aegaeon

#endif  // AEGAEON_SANITIZER_SIMSAN_H_
