// SimSan shadow state: the bookkeeping side of the simulated-hardware
// sanitizer (see simsan.h for the instrumentation surface).
//
// For every KV block handed out by a slab allocator the shadow tracks who
// touched it last (transfer, compute, alloc), until when an asynchronous
// copy keeps it busy, and whether its logical owner already released it to
// a move list. Checks against that state detect violations of the §5.3
// data-dependency rules (Figure 10):
//
//   ❶ kComputeNotReady   — compute launched on blocks that are not resident
//                          in the launching instance's cache, are owned by a
//                          different request, or whose swap-in has not
//                          completed by the launch time.
//   ❷ kTransferOverlap   — a transfer whose span overlaps an unsynchronized
//                          earlier transfer/compute on the same blocks (a
//                          missing cudaStreamWaitEvent).
//   ❸ kFreeInFlight      — immediate free, early reclaim, or re-allocation
//                          of blocks an in-flight copy still touches (a
//                          bypassed move list).
//
// plus the allocator-integrity classes:
//
//   kLeak            — blocks still allocated (and not move-listed) when a
//                      teardown check runs; VRAM shadow drift.
//   kDoubleFree      — free of an unallocated block, double defer-free, or
//                      VRAM over-free.
//   kTimeRegression  — an event queue dispatched timestamps out of order.
//
// The shadow also keeps a bounded ring of recent instrumented operations so
// a violation report can show the offending pair in context.
//
// Thread model: one ShadowState instance is confined to one thread (SimSan
// keeps a thread_local instance). ParallelSweep tasks construct their whole
// simulation inside the task body, so every object is registered, checked,
// and destroyed on the same worker thread.

#ifndef AEGAEON_SANITIZER_SHADOW_STATE_H_
#define AEGAEON_SANITIZER_SHADOW_STATE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mem/slab_allocator.h"
#include "sim/time.h"

namespace aegaeon {
namespace simsan {

enum class RuleClass {
  kComputeNotReady = 0,  // rule ❶
  kTransferOverlap = 1,  // rule ❷
  kFreeInFlight = 2,     // rule ❸
  kLeak = 3,
  kDoubleFree = 4,
  kTimeRegression = 5,
};
inline constexpr int kRuleClassCount = 6;

const char* ToString(RuleClass rule);

// The instrumented operation kinds recorded in the trace ring.
enum class ShadowOp : uint8_t {
  kAlloc,
  kFree,
  kDeferFree,
  kTransferRead,
  kTransferWrite,
  kCompute,
  kStreamEnqueue,
  kStreamWait,
  kDispatch,
  kTeardown,
};

const char* ToString(ShadowOp op);

// One instrumented operation. POD-ish on purpose: records are copied into
// the ring on every hook, and object names are resolved only when a
// violation is formatted.
struct TraceRecord {
  ShadowOp op = ShadowOp::kAlloc;
  TimePoint time = 0.0;   // sanitizer time watermark when the hook ran
  TimePoint start = 0.0;  // execution span, for transfers/compute
  TimePoint end = 0.0;
  const void* object = nullptr;  // allocator identity (block ops)
  const void* stream = nullptr;  // stream identity (transfers/compute)
  uint64_t block = 0;            // BlockRef::Packed() of the first block
  uint32_t block_count = 0;
  int64_t owner = -1;  // request id when the call site knows it
};

struct Violation {
  RuleClass rule = RuleClass::kLeak;
  std::string message;
  TimePoint when = 0.0;
  TraceRecord current;   // the offending access
  TraceRecord previous;  // the conflicting prior access (when applicable)
  std::vector<TraceRecord> recent;  // trace ring snapshot, oldest first
};

class ShadowState {
 public:
  ShadowState();

  ShadowState(const ShadowState&) = delete;
  ShadowState& operator=(const ShadowState&) = delete;

  // Invoked on every violation right after it is appended; SimSan installs
  // the fatal-abort behavior here.
  void set_on_violation(std::function<void(const Violation&)> cb) {
    on_violation_ = std::move(cb);
  }

  // --- identity ---------------------------------------------------------
  void NameObject(const void* object, std::string name);
  // "<anon object @0x...>" for unnamed objects.
  std::string NameOf(const void* object) const;
  // Drops all shadow state for a destroyed allocator / event queue so a
  // later object reusing the address starts clean.
  void ForgetAllocator(const void* alloc);
  void ForgetQueue(const void* queue);
  void ForgetVram(const void* gpu);

  // --- time -------------------------------------------------------------
  // The watermark only moves forward; hooks with an explicit `now` advance
  // it so free-side checks compare against the caller's simulated time.
  void AdvanceTime(TimePoint now);
  TimePoint now() const { return now_; }

  // --- block lifecycle hooks -------------------------------------------
  void OnAlloc(const void* alloc, const BlockRef* blocks, size_t count);
  void OnFree(const void* alloc, const BlockRef& block);
  void OnDeferFree(const void* alloc, const std::vector<BlockRef>& blocks,
                   TimePoint transfer_done);

  // --- data-path hooks --------------------------------------------------
  // A host<->device (or fabric) copy reading `src` and writing `dst` over
  // [start, end). `now` is the submission time.
  void OnTransfer(const void* src_alloc, const std::vector<BlockRef>& src,
                  const void* dst_alloc, const std::vector<BlockRef>& dst, const void* stream,
                  TimePoint now, TimePoint start, TimePoint end, int64_t owner);
  // A compute launch (decode/prefill step) over `blocks`, which must be
  // resident in `alloc`, synced by `start`, and owned by `owner`.
  void OnCompute(const void* alloc, const std::vector<BlockRef>& blocks, const void* stream,
                 TimePoint start, TimePoint end, int64_t owner);
  // Stream-level trace records (no checks; context for reports).
  void OnStreamOp(ShadowOp op, const void* stream, TimePoint start, TimePoint end);

  // --- VRAM accounting --------------------------------------------------
  void OnVramAlloc(const void* gpu, double bytes);
  void OnVramFree(const void* gpu, double bytes);
  double VramOutstanding(const void* gpu) const;

  // --- event queue ------------------------------------------------------
  // Dispatch-order monotonicity, per queue.
  void OnDispatch(const void* queue, TimePoint when);

  // --- teardown ---------------------------------------------------------
  // Reports every block of `alloc` that is still allocated and not parked
  // on a move list as a leak. Returns the number of leaked blocks.
  size_t CheckTeardown(const void* alloc);
  // Cross-checks the VRAM shadow of `gpu` against the device's own
  // accounting; drift beyond `tolerance` bytes is reported as a leak.
  void CheckVramTeardown(const void* gpu, double device_reported, double tolerance = 1.0);

  // --- results ----------------------------------------------------------
  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t checks() const { return checks_; }
  size_t TrackedBlocks() const;
  std::vector<TraceRecord> RecentTrace() const;
  void Reset();

 private:
  struct BlockShadow {
    bool allocated = false;
    bool defer_pending = false;   // released to a move list
    TimePoint busy_until = 0.0;   // last transfer/compute touching it ends
    TimePoint defer_until = 0.0;  // move-list event completion
    int64_t owner = -1;           // request whose KV the block holds
    TraceRecord last_access;
  };

  struct AllocatorShadow {
    std::map<uint64_t, BlockShadow> blocks;
  };

  void Report(RuleClass rule, std::string message, const TraceRecord& current,
              const TraceRecord& previous);
  void RecordTrace(const TraceRecord& record);
  // Per-block half of OnTransfer/OnCompute.
  void TouchBlock(AllocatorShadow& shadow, const void* alloc, const BlockRef& block,
                  const TraceRecord& record, bool is_compute);

  // Pointer keys here are pure identity lookups: the only iteration is
  // TrackedBlocks' order-independent sum, so address order is never
  // observable in reports or results. Keep it that way — any new loop over
  // these must not let iteration order reach a report.
  // LINT-ALLOW(pointer-keyed-container): identity lookup only, see above
  std::map<const void*, AllocatorShadow> allocators_;
  // LINT-ALLOW(pointer-keyed-container): identity lookup only, never iterated
  std::map<const void*, std::string> names_;
  // LINT-ALLOW(pointer-keyed-container): identity lookup only, never iterated
  std::map<const void*, TimePoint> queue_last_;
  // LINT-ALLOW(pointer-keyed-container): identity lookup only, never iterated
  std::map<const void*, double> vram_;

  std::vector<TraceRecord> ring_;
  size_t ring_next_ = 0;
  bool ring_wrapped_ = false;

  std::vector<Violation> violations_;
  std::function<void(const Violation&)> on_violation_;
  TimePoint now_ = 0.0;
  uint64_t checks_ = 0;
};

}  // namespace simsan
}  // namespace aegaeon

#endif  // AEGAEON_SANITIZER_SHADOW_STATE_H_
