#include "sanitizer/shadow_state.h"

#include <algorithm>
#include <sstream>

namespace aegaeon {
namespace simsan {

namespace {

constexpr size_t kRingCapacity = 64;

// How many leaked blocks to enumerate in one teardown report.
constexpr size_t kLeakDetail = 4;

std::string BlockName(uint64_t packed) {
  std::ostringstream out;
  out << "block(slab=" << (packed >> 32) << ",idx=" << static_cast<uint32_t>(packed) << ")";
  return out.str();
}

}  // namespace

const char* ToString(RuleClass rule) {
  switch (rule) {
    case RuleClass::kComputeNotReady:
      return "rule-1:compute-not-ready";
    case RuleClass::kTransferOverlap:
      return "rule-2:transfer-overlap";
    case RuleClass::kFreeInFlight:
      return "rule-3:free-in-flight";
    case RuleClass::kLeak:
      return "leak";
    case RuleClass::kDoubleFree:
      return "double-free";
    case RuleClass::kTimeRegression:
      return "time-regression";
  }
  return "unknown";
}

const char* ToString(ShadowOp op) {
  switch (op) {
    case ShadowOp::kAlloc:
      return "alloc";
    case ShadowOp::kFree:
      return "free";
    case ShadowOp::kDeferFree:
      return "defer-free";
    case ShadowOp::kTransferRead:
      return "transfer-read";
    case ShadowOp::kTransferWrite:
      return "transfer-write";
    case ShadowOp::kCompute:
      return "compute";
    case ShadowOp::kStreamEnqueue:
      return "stream-enqueue";
    case ShadowOp::kStreamWait:
      return "stream-wait";
    case ShadowOp::kDispatch:
      return "dispatch";
    case ShadowOp::kTeardown:
      return "teardown";
  }
  return "unknown";
}

ShadowState::ShadowState() { ring_.resize(kRingCapacity); }

void ShadowState::NameObject(const void* object, std::string name) {
  names_[object] = std::move(name);
}

std::string ShadowState::NameOf(const void* object) const {
  auto it = names_.find(object);
  if (it != names_.end()) {
    return it->second;
  }
  std::ostringstream out;
  out << "<anon object @" << object << ">";
  return out.str();
}

void ShadowState::ForgetAllocator(const void* alloc) {
  allocators_.erase(alloc);
  names_.erase(alloc);
}

void ShadowState::ForgetQueue(const void* queue) { queue_last_.erase(queue); }

void ShadowState::ForgetVram(const void* gpu) {
  vram_.erase(gpu);
  names_.erase(gpu);
}

void ShadowState::AdvanceTime(TimePoint now) { now_ = std::max(now_, now); }

void ShadowState::RecordTrace(const TraceRecord& record) {
  ring_[ring_next_] = record;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_next_ == 0) {
    ring_wrapped_ = true;
  }
}

std::vector<TraceRecord> ShadowState::RecentTrace() const {
  std::vector<TraceRecord> out;
  if (ring_wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(ring_next_), ring_.end());
  }
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<ptrdiff_t>(ring_next_));
  return out;
}

void ShadowState::Report(RuleClass rule, std::string message, const TraceRecord& current,
                         const TraceRecord& previous) {
  Violation v;
  v.rule = rule;
  v.message = std::move(message);
  v.when = now_;
  v.current = current;
  v.previous = previous;
  v.recent = RecentTrace();
  violations_.push_back(std::move(v));
  if (on_violation_) {
    on_violation_(violations_.back());
  }
}

void ShadowState::OnAlloc(const void* alloc, const BlockRef* blocks, size_t count) {
  checks_++;
  AllocatorShadow& shadow = allocators_[alloc];
  TraceRecord record;
  record.op = ShadowOp::kAlloc;
  record.time = now_;
  record.object = alloc;
  record.block = count > 0 ? blocks[0].Packed() : 0;
  record.block_count = static_cast<uint32_t>(count);
  RecordTrace(record);
  for (size_t i = 0; i < count; ++i) {
    BlockShadow& b = shadow.blocks[blocks[i].Packed()];
    TraceRecord one = record;
    one.block = blocks[i].Packed();
    one.block_count = 1;
    if (b.allocated) {
      Report(RuleClass::kDoubleFree,
             NameOf(alloc) + ": " + BlockName(one.block) +
                 " handed out while still allocated (allocator state corrupted)",
             one, b.last_access);
    } else if (b.busy_until > now_) {
      Report(RuleClass::kFreeInFlight,
             NameOf(alloc) + ": " + BlockName(one.block) + " re-allocated at t=" +
                 std::to_string(now_) + " while an in-flight copy touches it until t=" +
                 std::to_string(b.busy_until),
             one, b.last_access);
    }
    b.allocated = true;
    b.defer_pending = false;
    b.busy_until = 0.0;
    b.defer_until = 0.0;
    b.owner = -1;
    b.last_access = one;
  }
}

void ShadowState::OnFree(const void* alloc, const BlockRef& block) {
  checks_++;
  AllocatorShadow& shadow = allocators_[alloc];
  TraceRecord record;
  record.op = ShadowOp::kFree;
  record.time = now_;
  record.object = alloc;
  record.block = block.Packed();
  record.block_count = 1;
  RecordTrace(record);
  auto it = shadow.blocks.find(block.Packed());
  if (it == shadow.blocks.end() || !it->second.allocated) {
    Report(RuleClass::kDoubleFree,
           NameOf(alloc) + ": double free of " + BlockName(block.Packed()), record,
           it == shadow.blocks.end() ? TraceRecord{} : it->second.last_access);
    return;
  }
  BlockShadow& b = it->second;
  if (b.defer_pending && b.defer_until > now_) {
    Report(RuleClass::kFreeInFlight,
           NameOf(alloc) + ": " + BlockName(block.Packed()) +
               " reclaimed at t=" + std::to_string(now_) +
               " before its move-list transfer completes at t=" + std::to_string(b.defer_until),
           record, b.last_access);
  } else if (!b.defer_pending && b.busy_until > now_) {
    Report(RuleClass::kFreeInFlight,
           NameOf(alloc) + ": " + BlockName(block.Packed()) + " freed at t=" +
               std::to_string(now_) + " while an in-flight copy touches it until t=" +
               std::to_string(b.busy_until) + " (release bypassed the move list)",
           record, b.last_access);
  }
  b.allocated = false;
  b.defer_pending = false;
  b.owner = -1;
  b.last_access = record;
}

void ShadowState::OnDeferFree(const void* alloc, const std::vector<BlockRef>& blocks,
                              TimePoint transfer_done) {
  checks_++;
  AllocatorShadow& shadow = allocators_[alloc];
  TraceRecord record;
  record.op = ShadowOp::kDeferFree;
  record.time = now_;
  record.end = transfer_done;
  record.object = alloc;
  record.block = blocks.empty() ? 0 : blocks[0].Packed();
  record.block_count = static_cast<uint32_t>(blocks.size());
  RecordTrace(record);
  for (const BlockRef& block : blocks) {
    BlockShadow& b = shadow.blocks[block.Packed()];
    TraceRecord one = record;
    one.block = block.Packed();
    one.block_count = 1;
    if (!b.allocated) {
      Report(RuleClass::kDoubleFree,
             NameOf(alloc) + ": defer-free of unallocated " + BlockName(one.block), one,
             b.last_access);
    } else if (b.defer_pending) {
      Report(RuleClass::kDoubleFree,
             NameOf(alloc) + ": " + BlockName(one.block) + " defer-freed twice", one,
             b.last_access);
    }
    b.defer_pending = true;
    b.defer_until = transfer_done;
    b.busy_until = std::max(b.busy_until, transfer_done);
    b.last_access = one;
  }
}

void ShadowState::TouchBlock(AllocatorShadow& shadow, const void* alloc, const BlockRef& block,
                             const TraceRecord& record, bool is_compute) {
  TraceRecord one = record;
  one.block = block.Packed();
  one.block_count = 1;
  auto it = shadow.blocks.find(block.Packed());
  if (it == shadow.blocks.end() || !it->second.allocated) {
    Report(is_compute ? RuleClass::kComputeNotReady : RuleClass::kFreeInFlight,
           NameOf(alloc) + ": " + std::string(ToString(record.op)) + " touches " +
               BlockName(one.block) + ", which is not allocated in this cache" +
               (is_compute ? " (KV not device-resident)" : " (use after free)"),
           one, it == shadow.blocks.end() ? TraceRecord{} : it->second.last_access);
    return;
  }
  BlockShadow& b = it->second;
  if (b.defer_pending) {
    Report(is_compute ? RuleClass::kComputeNotReady : RuleClass::kFreeInFlight,
           NameOf(alloc) + ": " + std::string(ToString(record.op)) + " touches " +
               BlockName(one.block) + " after its owner released it to the move list",
           one, b.last_access);
  } else if (b.busy_until > record.start) {
    if (is_compute) {
      Report(RuleClass::kComputeNotReady,
             NameOf(alloc) + ": compute over " + BlockName(one.block) + " launched at t=" +
                 std::to_string(record.start) + " before its transfer completes at t=" +
                 std::to_string(b.busy_until) + " (swap-in event not queried)",
             one, b.last_access);
    } else {
      Report(RuleClass::kTransferOverlap,
             NameOf(alloc) + ": transfer over " + BlockName(one.block) + " starting at t=" +
                 std::to_string(record.start) + " overlaps a prior access ending at t=" +
                 std::to_string(b.busy_until) + " (missing cudaStreamWaitEvent)",
             one, b.last_access);
    }
  } else if (is_compute && b.owner >= 0 && record.owner >= 0 && b.owner != record.owner) {
    Report(RuleClass::kComputeNotReady,
           NameOf(alloc) + ": compute for request " + std::to_string(record.owner) +
               " touches " + BlockName(one.block) + " owned by request " +
               std::to_string(b.owner),
           one, b.last_access);
  }
  b.busy_until = std::max(b.busy_until, record.end);
  if (record.owner >= 0 && (record.op == ShadowOp::kTransferWrite || is_compute)) {
    b.owner = record.owner;
  }
  b.last_access = one;
}

void ShadowState::OnTransfer(const void* src_alloc, const std::vector<BlockRef>& src,
                             const void* dst_alloc, const std::vector<BlockRef>& dst,
                             const void* stream, TimePoint now, TimePoint start, TimePoint end,
                             int64_t owner) {
  checks_++;
  AdvanceTime(now);
  TraceRecord record;
  record.time = now_;
  record.start = start;
  record.end = end;
  record.stream = stream;
  record.owner = owner;

  record.op = ShadowOp::kTransferRead;
  record.object = src_alloc;
  record.block = src.empty() ? 0 : src[0].Packed();
  record.block_count = static_cast<uint32_t>(src.size());
  RecordTrace(record);
  AllocatorShadow& src_shadow = allocators_[src_alloc];
  for (const BlockRef& block : src) {
    TouchBlock(src_shadow, src_alloc, block, record, /*is_compute=*/false);
  }

  record.op = ShadowOp::kTransferWrite;
  record.object = dst_alloc;
  record.block = dst.empty() ? 0 : dst[0].Packed();
  record.block_count = static_cast<uint32_t>(dst.size());
  RecordTrace(record);
  AllocatorShadow& dst_shadow = allocators_[dst_alloc];
  for (const BlockRef& block : dst) {
    TouchBlock(dst_shadow, dst_alloc, block, record, /*is_compute=*/false);
  }
}

void ShadowState::OnCompute(const void* alloc, const std::vector<BlockRef>& blocks,
                            const void* stream, TimePoint start, TimePoint end, int64_t owner) {
  checks_++;
  TraceRecord record;
  record.op = ShadowOp::kCompute;
  record.time = now_;
  record.start = start;
  record.end = end;
  record.object = alloc;
  record.stream = stream;
  record.block = blocks.empty() ? 0 : blocks[0].Packed();
  record.block_count = static_cast<uint32_t>(blocks.size());
  record.owner = owner;
  RecordTrace(record);
  AllocatorShadow& shadow = allocators_[alloc];
  for (const BlockRef& block : blocks) {
    TouchBlock(shadow, alloc, block, record, /*is_compute=*/true);
  }
}

void ShadowState::OnStreamOp(ShadowOp op, const void* stream, TimePoint start, TimePoint end) {
  TraceRecord record;
  record.op = op;
  record.time = now_;
  record.start = start;
  record.end = end;
  record.stream = stream;
  RecordTrace(record);
}

void ShadowState::OnVramAlloc(const void* gpu, double bytes) {
  checks_++;
  vram_[gpu] += bytes;
}

void ShadowState::OnVramFree(const void* gpu, double bytes) {
  checks_++;
  double& outstanding = vram_[gpu];
  if (bytes > outstanding + 1e-6) {
    TraceRecord record;
    record.op = ShadowOp::kFree;
    record.time = now_;
    record.object = gpu;
    Report(RuleClass::kDoubleFree,
           NameOf(gpu) + ": VRAM over-free of " + std::to_string(bytes) +
               " bytes with only " + std::to_string(outstanding) + " outstanding",
           record, TraceRecord{});
  }
  outstanding = std::max(0.0, outstanding - bytes);
}

double ShadowState::VramOutstanding(const void* gpu) const {
  auto it = vram_.find(gpu);
  return it == vram_.end() ? 0.0 : it->second;
}

void ShadowState::OnDispatch(const void* queue, TimePoint when) {
  checks_++;
  auto [it, inserted] = queue_last_.try_emplace(queue, when);
  if (!inserted) {
    if (when < it->second) {
      TraceRecord record;
      record.op = ShadowOp::kDispatch;
      record.time = now_;
      record.start = when;
      record.object = queue;
      TraceRecord previous;
      previous.op = ShadowOp::kDispatch;
      previous.start = it->second;
      previous.object = queue;
      Report(RuleClass::kTimeRegression,
             NameOf(queue) + ": event dispatched at t=" + std::to_string(when) +
                 " after an event at t=" + std::to_string(it->second) +
                 " (simulated time ran backwards)",
             record, previous);
    }
    it->second = std::max(it->second, when);
  }
  AdvanceTime(when);
}

size_t ShadowState::CheckTeardown(const void* alloc) {
  checks_++;
  auto it = allocators_.find(alloc);
  if (it == allocators_.end()) {
    return 0;
  }
  size_t leaked = 0;
  std::string detail;
  TraceRecord last;
  for (const auto& [packed, shadow] : it->second.blocks) {
    if (shadow.allocated && !shadow.defer_pending) {
      if (leaked < kLeakDetail) {
        detail += (leaked > 0 ? ", " : "") + BlockName(packed) +
                  (shadow.owner >= 0 ? " (request " + std::to_string(shadow.owner) + ")" : "");
        last = shadow.last_access;
      }
      leaked++;
    }
  }
  if (leaked > 0) {
    TraceRecord record;
    record.op = ShadowOp::kTeardown;
    record.time = now_;
    record.object = alloc;
    record.block_count = static_cast<uint32_t>(leaked);
    Report(RuleClass::kLeak,
           NameOf(alloc) + ": " + std::to_string(leaked) +
               " block(s) still allocated at teardown, e.g. " + detail,
           record, last);
  }
  return leaked;
}

void ShadowState::CheckVramTeardown(const void* gpu, double device_reported, double tolerance) {
  checks_++;
  double shadow = VramOutstanding(gpu);
  if (shadow > device_reported + tolerance || device_reported > shadow + tolerance) {
    TraceRecord record;
    record.op = ShadowOp::kTeardown;
    record.time = now_;
    record.object = gpu;
    Report(RuleClass::kLeak,
           NameOf(gpu) + ": VRAM shadow (" + std::to_string(shadow) +
               " bytes) disagrees with device accounting (" + std::to_string(device_reported) +
               " bytes) at teardown",
           record, TraceRecord{});
  }
}

size_t ShadowState::TrackedBlocks() const {
  size_t total = 0;
  for (const auto& [alloc, shadow] : allocators_) {
    for (const auto& [packed, block] : shadow.blocks) {
      if (block.allocated) {
        total++;
      }
    }
  }
  return total;
}

void ShadowState::Reset() {
  allocators_.clear();
  names_.clear();
  queue_last_.clear();
  vram_.clear();
  std::fill(ring_.begin(), ring_.end(), TraceRecord{});
  ring_next_ = 0;
  ring_wrapped_ = false;
  violations_.clear();
  now_ = 0.0;
  checks_ = 0;
}

}  // namespace simsan
}  // namespace aegaeon
