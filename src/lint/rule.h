// Rule interface for aegaeon_lint. A rule is a pass over one file's token
// stream (CheckFile) and/or over the whole file set (CheckProject — the
// include-graph passes). Rules only *emit* findings; inline-suppression
// filtering (suppression.h) happens afterwards in the analyzer, so a rule
// never needs to know about allowlists.

#ifndef AEGAEON_LINT_RULE_H_
#define AEGAEON_LINT_RULE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/finding.h"
#include "lint/token.h"

namespace aegaeon {
namespace lint {

// One lexed file. `path` is as given to the analyzer (repo-relative in the
// CLI); rules that scope by location (e.g. thread-sleep's thread_pool
// exemption) match on path suffixes so "src/x.h" and "./src/x.h" agree.
struct SourceFile {
  std::string path;
  LexResult lex;
};

class Rule {
 public:
  virtual ~Rule() = default;

  virtual std::string_view id() const = 0;
  virtual std::string_view description() const = 0;

  // Per-file token pass. Default: nothing.
  virtual void CheckFile(const SourceFile& file, std::vector<Finding>* out) const {
    (void)file;
    (void)out;
  }

  // Whole-project pass over every lexed file (sorted by path). Default:
  // nothing.
  virtual void CheckProject(const std::vector<SourceFile>& files,
                            std::vector<Finding>* out) const {
    (void)files;
    (void)out;
  }
};

// The full rule catalog, in stable (documentation) order. Owned statics;
// valid for the program's lifetime.
const std::vector<const Rule*>& AllRules();

// nullptr when no rule has that id. The meta rule id "lint-allow" (malformed
// suppressions) is not in the catalog: it has no Rule object, but is a valid
// id for --rule filtering and suppression validation.
const Rule* FindRule(std::string_view id);

// Every id accepted by --rule= and validated in suppression comments:
// catalog rules plus "lint-allow".
std::vector<std::string> AllRuleIds();

inline constexpr std::string_view kLintAllowRuleId = "lint-allow";

}  // namespace lint
}  // namespace aegaeon

#endif  // AEGAEON_LINT_RULE_H_
