// Analyzer driver: file collection -> lex -> rule passes -> suppression
// filtering -> sorted findings -> text or SARIF-shaped JSON. Usable as a
// library (tests/lint_test.cc drives it over inline fixture snippets) and
// from the tools/aegaeon_lint.cpp CLI.

#ifndef AEGAEON_LINT_ANALYZER_H_
#define AEGAEON_LINT_ANALYZER_H_

#include <string>
#include <vector>

#include "lint/finding.h"
#include "lint/rule.h"

namespace aegaeon {
namespace lint {

// One input file, path + full content. CollectFiles builds these from
// disk; tests build them inline.
struct FileContent {
  std::string path;
  std::string content;
};

struct LintOptions {
  // Empty: run every rule. Otherwise only findings of these rule ids are
  // reported ("lint-allow" meta findings are kept unless filtered out).
  std::vector<std::string> rule_filter;
};

// Lexes every file, runs all per-file and project rules, applies inline
// suppressions, and returns the surviving findings sorted by
// (file, line, col, rule). Lexical errors surface as "lint-allow"-adjacent
// findings under rule id "lex-error" (not suppressible).
std::vector<Finding> RunLint(const std::vector<FileContent>& files, const LintOptions& options);

// Recursively collects *.h / *.cc / *.cpp under each path (a path may also
// name a single file), sorted by path for deterministic output. Unreadable
// paths are reported into `errors`.
std::vector<FileContent> CollectFiles(const std::vector<std::string>& paths,
                                      std::vector<std::string>* errors);

// "file:line:col: [rule] message" lines.
std::string FormatText(const std::vector<Finding>& findings);

// SARIF 2.1.0-shaped report (tool.driver.rules + results with
// physicalLocation), stable across runs.
std::string FormatSarif(const std::vector<Finding>& findings);

}  // namespace lint
}  // namespace aegaeon

#endif  // AEGAEON_LINT_ANALYZER_H_
