// The token-level rule catalog. Each rule protects a piece of the
// simulator's determinism contract — bit-identical output for identical
// (config, trace, seed) — or the threaded executors' discipline; the rule ↔
// invariant map lives in DESIGN.md §11.

#include "lint/rule.h"

#include <array>
#include <string>

#include "lint/include_graph.h"

namespace aegaeon {
namespace lint {

namespace {

const Token* TokenAt(const std::vector<Token>& tokens, size_t i, int delta) {
  if (delta < 0 && i < static_cast<size_t>(-delta)) {
    return nullptr;
  }
  size_t j = i + static_cast<size_t>(delta);
  return j < tokens.size() ? &tokens[j] : nullptr;
}

bool IsPunct(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kPunct && t->text == text;
}

bool IsIdent(const Token* t, std::string_view text) {
  return t != nullptr && t->kind == TokenKind::kIdentifier && t->text == text;
}

// tokens[i] is qualified as `qual::tokens[i]`.
bool QualifiedBy(const std::vector<Token>& tokens, size_t i, std::string_view qual) {
  return IsPunct(TokenAt(tokens, i, -1), "::") && IsIdent(TokenAt(tokens, i, -2), qual);
}

// A free-function call: tokens[i] followed by '(' and not reached through
// `.`, `->`, or `::` (member or qualified name).
bool IsBareCall(const std::vector<Token>& tokens, size_t i) {
  if (!IsPunct(TokenAt(tokens, i, 1), "(")) {
    return false;
  }
  const Token* prev = TokenAt(tokens, i, -1);
  return !(IsPunct(prev, ".") || IsPunct(prev, "->") || IsPunct(prev, "::"));
}

void Add(std::vector<Finding>* out, const Rule& rule, const SourceFile& file, const Token& at,
         std::string message) {
  out->push_back(Finding{std::string(rule.id()), file.path, at.line, at.col, std::move(message)});
}

// --- unordered-container ---------------------------------------------------

class UnorderedContainerRule : public Rule {
 public:
  std::string_view id() const override { return "unordered-container"; }
  std::string_view description() const override {
    return "std::unordered_{map,set,...} — hash iteration order is implementation-defined; "
           "anything iterating one on a scheduling, eviction, or accounting path diverges "
           "across platforms. Use std::map, sorted vectors, or dense arrays.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    static constexpr std::array<std::string_view, 4> kNames = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    const std::vector<Token>& t = file.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) {
        continue;
      }
      for (std::string_view name : kNames) {
        if (t[i].text == name && QualifiedBy(t, i, "std")) {
          Add(out, *this, file, t[i],
              "std::" + t[i].text +
                  ": hash iteration order is not deterministic; use std::map / sorted "
                  "vectors / dense arrays");
        }
      }
    }
  }
};

// --- wall-clock ------------------------------------------------------------

class WallClockRule : public Rule {
 public:
  std::string_view id() const override { return "wall-clock"; }
  std::string_view description() const override {
    return "wall-clock reads (std::chrono::{system,steady,high_resolution}_clock, time(), "
           "gettimeofday()) — simulated time must come from the event queue.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    static constexpr std::array<std::string_view, 3> kClocks = {"system_clock", "steady_clock",
                                                                "high_resolution_clock"};
    const std::vector<Token>& t = file.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) {
        continue;
      }
      for (std::string_view clock : kClocks) {
        if (t[i].text == clock && QualifiedBy(t, i, "chrono")) {
          Add(out, *this, file, t[i],
              "std::chrono::" + t[i].text +
                  ": wall-clock read; simulated time must come from the event queue");
        }
      }
      if ((t[i].text == "time" || t[i].text == "gettimeofday") && IsBareCall(t, i)) {
        Add(out, *this, file, t[i],
            t[i].text + "(): wall-clock read; simulated time must come from the event queue");
      }
    }
  }
};

// --- bare-rand -------------------------------------------------------------

class BareRandRule : public Rule {
 public:
  std::string_view id() const override { return "bare-rand"; }
  std::string_view description() const override {
    return "bare rand()/srand() — global PRNG state; all randomness must flow through the "
           "seeded, engine-stable generators in sim/random.h.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    const std::vector<Token>& t = file.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == TokenKind::kIdentifier && (t[i].text == "rand" || t[i].text == "srand") &&
          IsBareCall(t, i)) {
        Add(out, *this, file, t[i],
            t[i].text + "(): global PRNG; use the seeded engines in sim/random.h");
      }
    }
  }
};

// --- thread-local ----------------------------------------------------------

class ThreadLocalRule : public Rule {
 public:
  std::string_view id() const override { return "thread-local"; }
  std::string_view description() const override {
    return "thread_local state — sharded execution moves cells across pool threads between "
           "epochs, silently decoupling per-thread state from the simulated entity it belongs "
           "to. Scope state to the cell (see simsan::ScopedInstance).";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    for (const Token& tok : file.lex.tokens) {
      if (tok.kind == TokenKind::kIdentifier && tok.text == "thread_local") {
        Add(out, *this, file, tok,
            "thread_local: sharded execution moves work across threads; scope state to the "
            "simulated entity instead (see simsan::ScopedInstance)");
      }
    }
  }
};

// --- pointer-keyed-container -----------------------------------------------

class PointerKeyedContainerRule : public Rule {
 public:
  std::string_view id() const override { return "pointer-keyed-container"; }
  std::string_view description() const override {
    return "std::map<T*,...> / std::set<T*> — ordered containers keyed on pointers iterate in "
           "address order, which differs run to run: silent cross-run nondeterminism the "
           "moment anything iterates them. Key on a stable id instead.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    static constexpr std::array<std::string_view, 4> kNames = {"map", "set", "multimap",
                                                               "multiset"};
    const std::vector<Token>& t = file.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier || !QualifiedBy(t, i, "std")) {
        continue;
      }
      bool named = false;
      for (std::string_view name : kNames) {
        named = named || t[i].text == name;
      }
      if (!named || !IsPunct(TokenAt(t, i, 1), "<")) {
        continue;
      }
      if (FirstTemplateArgIsPointer(t, i + 2)) {
        Add(out, *this, file, t[i],
            "std::" + t[i].text +
                " keyed on a pointer iterates in address order (differs run to run); key on "
                "a stable id instead");
      }
    }
  }

 private:
  // Scans the first template argument starting at tokens[begin] (just past
  // the opening '<') and reports whether its last token is '*'.
  static bool FirstTemplateArgIsPointer(const std::vector<Token>& t, size_t begin) {
    int depth = 1;  // template brackets
    int parens = 0;
    const Token* last = nullptr;
    for (size_t i = begin; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "(") {
          ++parens;
        } else if (tok.text == ")") {
          --parens;
        } else if (parens == 0) {
          if (tok.text == "<") {
            ++depth;
          } else if (tok.text == ">") {
            --depth;
          } else if (tok.text == ">>") {
            depth -= 2;
          } else if (tok.text == "," && depth == 1) {
            break;  // end of the first template argument
          } else if (tok.text == ";" || tok.text == "{") {
            return false;  // not a template argument list after all
          }
        }
        if (depth <= 0) {
          break;  // `std::set<T*>`: the whole list is the first argument
        }
      }
      last = &tok;
    }
    return IsPunct(last, "*");
  }
};

// --- float-equality --------------------------------------------------------

class FloatEqualityRule : public Rule {
 public:
  std::string_view id() const override { return "float-equality"; }
  std::string_view description() const override {
    return "== / != against a floating-point literal — exact float comparison is almost "
           "always a rounding bug on accounting paths; compare against a tolerance, or "
           "suppress with a justification when the value is an exact sentinel.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    const std::vector<Token>& t = file.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kPunct || (t[i].text != "==" && t[i].text != "!=")) {
        continue;
      }
      const Token* prev = TokenAt(t, i, -1);
      const Token* next = TokenAt(t, i, 1);
      const bool prev_float = prev != nullptr && prev->kind == TokenKind::kNumber && prev->is_float;
      const bool next_float = next != nullptr && next->kind == TokenKind::kNumber && next->is_float;
      if (prev_float || next_float) {
        const Token& lit = prev_float ? *prev : *next;
        Add(out, *this, file, t[i],
            "exact floating-point " + t[i].text + " against " + lit.text +
                "; compare with a tolerance or justify the exact-sentinel semantics");
      }
    }
  }
};

// --- thread-sleep ----------------------------------------------------------

class ThreadSleepRule : public Rule {
 public:
  std::string_view id() const override { return "thread-sleep"; }
  std::string_view description() const override {
    return "std::this_thread::sleep_* (or usleep/nanosleep) outside src/sim/thread_pool.* — "
           "sleeping hides ordering bugs and stalls the conservative-sync barrier; workers "
           "park on the pool's condition variable instead.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override {
    // The pool's worker-park path is the one sanctioned waiter.
    if (file.path.find("sim/thread_pool.") != std::string::npos) {
      return;
    }
    const std::vector<Token>& t = file.lex.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdentifier) {
        continue;
      }
      if (t[i].text == "sleep_for" || t[i].text == "sleep_until") {
        Add(out, *this, file, t[i],
            t[i].text + ": sleeping outside the thread pool stalls the sync barrier; park on "
                        "a condition variable or use simulated time");
      } else if ((t[i].text == "usleep" || t[i].text == "nanosleep" || t[i].text == "sleep") &&
                 IsBareCall(t, i)) {
        Add(out, *this, file, t[i],
            t[i].text + "(): sleeping outside the thread pool stalls the sync barrier; park "
                        "on a condition variable or use simulated time");
      }
    }
  }
};

}  // namespace

const std::vector<const Rule*>& AllRules() {
  static const UnorderedContainerRule unordered;
  static const WallClockRule wall_clock;
  static const BareRandRule bare_rand;
  static const ThreadLocalRule thread_local_rule;
  static const PointerKeyedContainerRule pointer_keyed;
  static const FloatEqualityRule float_eq;
  static const ThreadSleepRule sleep;
  static const IncludeCycleRule include_cycle;
  static const IncludeGuardRule include_guard;
  static const std::vector<const Rule*> kAll = {
      &unordered,     &wall_clock, &bare_rand,     &thread_local_rule, &pointer_keyed,
      &float_eq,      &sleep,      &include_cycle, &include_guard,
  };
  return kAll;
}

const Rule* FindRule(std::string_view id) {
  for (const Rule* rule : AllRules()) {
    if (rule->id() == id) {
      return rule;
    }
  }
  return nullptr;
}

std::vector<std::string> AllRuleIds() {
  std::vector<std::string> ids;
  for (const Rule* rule : AllRules()) {
    ids.emplace_back(rule->id());
  }
  ids.emplace_back(kLintAllowRuleId);
  return ids;
}

}  // namespace lint
}  // namespace aegaeon
