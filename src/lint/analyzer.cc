#include "lint/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "lint/suppression.h"

namespace aegaeon {
namespace lint {

namespace {

bool LintableExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> RunLint(const std::vector<FileContent>& files, const LintOptions& options) {
  const std::vector<std::string> rule_ids = AllRuleIds();

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const FileContent& file : files) {
    sources.push_back(SourceFile{file.path, Lex(file.content)});
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });

  std::vector<Finding> findings;
  for (const SourceFile& source : sources) {
    for (const std::string& error : source.lex.errors) {
      findings.push_back(Finding{"lex-error", source.path, 0, 0, error});
    }
  }
  for (const Rule* rule : AllRules()) {
    for (const SourceFile& source : sources) {
      rule->CheckFile(source, &findings);
    }
    rule->CheckProject(sources, &findings);
  }

  // Suppression pass. Meta findings (bare or unknown-rule markers) are
  // emitted here and are themselves suppressible only by the explicit
  // "lint-allow" rule id — justified, like everything else.
  std::vector<Finding> kept;
  for (const SourceFile& source : sources) {
    std::vector<Finding> meta;
    const std::vector<Suppression> sups = CollectSuppressions(source, rule_ids, &meta);
    for (Finding& finding : meta) {
      if (!IsSuppressed(finding, sups)) {
        kept.push_back(std::move(finding));
      }
    }
    for (Finding& finding : findings) {
      if (finding.file == source.path && !IsSuppressed(finding, sups)) {
        kept.push_back(std::move(finding));
      }
    }
  }

  if (!options.rule_filter.empty()) {
    kept.erase(std::remove_if(kept.begin(), kept.end(),
                              [&](const Finding& f) {
                                return std::find(options.rule_filter.begin(),
                                                 options.rule_filter.end(),
                                                 f.rule) == options.rule_filter.end();
                              }),
               kept.end());
  }

  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  return kept;
}

std::vector<FileContent> CollectFiles(const std::vector<std::string>& paths,
                                      std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> discovered;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end; it != end; it.increment(ec)) {
        if (ec) {
          errors->push_back(path + ": " + ec.message());
          break;
        }
        if (it->is_regular_file() && LintableExtension(it->path())) {
          discovered.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      discovered.push_back(fs::path(path).generic_string());
    } else {
      errors->push_back(path + ": not a file or directory");
    }
  }
  std::sort(discovered.begin(), discovered.end());
  discovered.erase(std::unique(discovered.begin(), discovered.end()), discovered.end());

  std::vector<FileContent> files;
  files.reserve(discovered.size());
  for (const std::string& path : discovered) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      errors->push_back(path + ": unreadable");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(FileContent{path, buf.str()});
  }
  return files;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] " << f.message << "\n";
  }
  return os.str();
}

std::string FormatSarif(const std::vector<Finding>& findings) {
  // Rule metadata for every catalog rule (not just the ones that fired),
  // so the report is self-describing.
  std::ostringstream os;
  os << "{\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\"name\": \"aegaeon_lint\",\n"
     << "      \"informationUri\": \"DESIGN.md\",\n"
     << "      \"rules\": [\n";
  const std::vector<const Rule*>& rules = AllRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    os << "        {\"id\": \"" << JsonEscape(rules[i]->id()) << "\", \"shortDescription\": "
       << "{\"text\": \"" << JsonEscape(rules[i]->description()) << "\"}}"
       << (i + 1 < rules.size() ? ",\n" : "\n");
  }
  os << "      ]}},\n"
     << "    \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "      {\"ruleId\": \"" << JsonEscape(f.rule) << "\", \"level\": \"error\", "
       << "\"message\": {\"text\": \"" << JsonEscape(f.message) << "\"}, "
       << "\"locations\": [{\"physicalLocation\": {"
       << "\"artifactLocation\": {\"uri\": \"" << JsonEscape(f.file) << "\"}, "
       << "\"region\": {\"startLine\": " << f.line << ", \"startColumn\": " << f.col << "}}}]}"
       << (i + 1 < findings.size() ? ",\n" : "\n");
  }
  os << "    ]\n"
     << "  }]\n"
     << "}\n";
  return os.str();
}

}  // namespace lint
}  // namespace aegaeon
