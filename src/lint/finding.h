// A lint finding: one rule violation at one source location. Findings are
// the unit every layer of aegaeon_lint trades in — rules emit them, the
// suppression pass filters them, and the analyzer sorts and formats them
// (human-readable or SARIF-shaped JSON).

#ifndef AEGAEON_LINT_FINDING_H_
#define AEGAEON_LINT_FINDING_H_

#include <string>
#include <tuple>
#include <vector>

namespace aegaeon {
namespace lint {

struct Finding {
  std::string rule;     // rule id, e.g. "wall-clock"
  std::string file;     // path as given to the analyzer
  int line = 0;         // 1-based
  int col = 0;          // 1-based
  std::string message;  // what is wrong and what to use instead
};

inline bool operator<(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.col, a.rule, a.message) <
         std::tie(b.file, b.line, b.col, b.rule, b.message);
}

inline bool operator==(const Finding& a, const Finding& b) {
  return a.rule == b.rule && a.file == b.file && a.line == b.line && a.col == b.col &&
         a.message == b.message;
}

}  // namespace lint
}  // namespace aegaeon

#endif  // AEGAEON_LINT_FINDING_H_
