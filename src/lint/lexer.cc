#include "lint/token.h"

#include <cctype>
#include <cstddef>
#include <string>

namespace aegaeon {
namespace lint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// String-literal prefixes whose next character may open a literal. A
// trailing 'R' means raw.
bool IsStringPrefix(std::string_view s) {
  return s == "L" || s == "u" || s == "U" || s == "u8" || s == "R" || s == "LR" || s == "uR" ||
         s == "UR" || s == "u8R";
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult Run() {
    while (!AtEnd()) {
      SkipSplices();
      if (AtEnd()) {
        break;
      }
      char c = src_[pos_];
      if (c == '\n') {
        NewLine();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        Take();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"') {
        LexString(/*prefix=*/"");
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifierOrPrefixedString();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '<' && expect_header_) {
        LexHeaderName();
        continue;
      }
      LexPunct();
    }
    return std::move(result_);
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }

  char Peek(size_t ahead) const {
    // Looks through line splices so "1\<newline>e3" still lexes as one
    // pp-number and "//" split across a splice is still a comment opener.
    size_t p = pos_;
    for (;;) {
      while (p < src_.size() && IsSpliceAt(p)) {
        p += SpliceLenAt(p);
      }
      if (ahead == 0) {
        break;
      }
      if (p >= src_.size()) {
        return '\0';
      }
      ++p;
      --ahead;
    }
    while (p < src_.size() && IsSpliceAt(p)) {
      p += SpliceLenAt(p);
    }
    return p < src_.size() ? src_[p] : '\0';
  }

  bool IsSpliceAt(size_t p) const {
    if (src_[p] != '\\' || p + 1 >= src_.size()) {
      return false;
    }
    return src_[p + 1] == '\n' || (src_[p + 1] == '\r' && p + 2 < src_.size() && src_[p + 2] == '\n');
  }

  size_t SpliceLenAt(size_t p) const { return src_[p + 1] == '\r' ? 3 : 2; }

  void SkipSplices() {
    while (!AtEnd() && IsSpliceAt(pos_)) {
      size_t len = SpliceLenAt(pos_);
      pos_ += len;
      ++line_;
      col_ = 1;
    }
  }

  void NewLine() {
    ++pos_;
    ++line_;
    col_ = 1;
    expect_header_ = false;
  }

  // Consumes one raw character (no splice processing); caller guarantees it
  // is not a newline.
  char Take() {
    char c = src_[pos_++];
    ++col_;
    return c;
  }

  // Consumes one logical character: splices first, then the character,
  // tracking line/col across embedded newlines (for block comments / raw
  // strings, which may span lines).
  char TakeLogical() {
    SkipSplices();
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void Emit(TokenKind kind, std::string text, int line, int col, bool is_float = false) {
    result_.tokens.push_back(Token{kind, std::move(text), line, col, is_float});
    // True exactly after `# include`, so a following <...> lexes as one
    // header-name token instead of punctuation soup.
    const std::vector<Token>& t = result_.tokens;
    const size_t n = t.size();
    expect_header_ = kind == TokenKind::kIdentifier && t[n - 1].text == "include" && n >= 2 &&
                     t[n - 2].kind == TokenKind::kPunct && t[n - 2].text == "#";
  }

  void LexLineComment() {
    int line = line_, col = col_;
    Take();  // '/'
    Take();  // '/'
    std::string text;
    // A splice extends a line comment onto the next physical line.
    for (;;) {
      SkipSplices();
      if (AtEnd() || src_[pos_] == '\n') {
        break;
      }
      text += Take();
    }
    result_.comments.push_back(Comment{std::move(text), line, col, /*block=*/false});
  }

  void LexBlockComment() {
    int line = line_, col = col_;
    Take();  // '/'
    Take();  // '*'
    std::string text;
    for (;;) {
      if (AtEnd()) {
        result_.errors.push_back("line " + std::to_string(line) + ": unterminated block comment");
        break;
      }
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        Take();
        Take();
        break;
      }
      text += TakeLogical();
    }
    result_.comments.push_back(Comment{std::move(text), line, col, /*block=*/true});
  }

  void LexString(const std::string& prefix) {
    int line = line_, col = col_ - static_cast<int>(prefix.size());
    std::string text = prefix;
    text += TakeLogical();  // opening '"'
    for (;;) {
      if (AtEnd() || src_[pos_] == '\n') {
        result_.errors.push_back("line " + std::to_string(line) + ": unterminated string literal");
        break;
      }
      char c = TakeLogical();
      text += c;
      if (c == '\\') {
        if (!AtEnd() && src_[pos_] != '\n') {
          text += TakeLogical();  // escaped character, possibly '"'
        }
        continue;
      }
      if (c == '"') {
        break;
      }
    }
    Emit(TokenKind::kString, std::move(text), line, col);
  }

  // R"delim( ... )delim" — no splice processing and no escapes inside.
  void LexRawString(const std::string& prefix) {
    int line = line_, col = col_ - static_cast<int>(prefix.size());
    std::string text = prefix;
    text += Take();  // '"'
    std::string delim;
    while (!AtEnd() && src_[pos_] != '(' && src_[pos_] != '\n' && delim.size() <= 16) {
      delim += Take();
    }
    if (AtEnd() || src_[pos_] != '(') {
      result_.errors.push_back("line " + std::to_string(line) + ": malformed raw string delimiter");
      Emit(TokenKind::kString, std::move(text), line, col);
      return;
    }
    text += delim;
    text += Take();  // '('
    const std::string closer = ")" + delim + "\"";
    for (;;) {
      if (AtEnd()) {
        result_.errors.push_back("line " + std::to_string(line) + ": unterminated raw string");
        break;
      }
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        for (size_t i = 0; i < closer.size(); ++i) {
          text += Take();
        }
        break;
      }
      char c = src_[pos_++];
      text += c;
      if (c == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
    }
    Emit(TokenKind::kString, std::move(text), line, col);
  }

  void LexChar() {
    int line = line_, col = col_;
    std::string text;
    text += TakeLogical();  // opening '\''
    for (;;) {
      if (AtEnd() || src_[pos_] == '\n') {
        result_.errors.push_back("line " + std::to_string(line) + ": unterminated char literal");
        break;
      }
      char c = TakeLogical();
      text += c;
      if (c == '\\') {
        if (!AtEnd() && src_[pos_] != '\n') {
          text += TakeLogical();
        }
        continue;
      }
      if (c == '\'') {
        break;
      }
    }
    Emit(TokenKind::kChar, std::move(text), line, col);
  }

  void LexIdentifierOrPrefixedString() {
    int line = line_, col = col_;
    std::string text;
    for (;;) {
      SkipSplices();
      if (AtEnd() || !IsIdentChar(src_[pos_])) {
        break;
      }
      text += Take();
    }
    if (!AtEnd() && src_[pos_] == '"' && IsStringPrefix(text)) {
      if (text.back() == 'R') {
        LexRawString(text);
      } else {
        LexString(text);
      }
      return;
    }
    Emit(TokenKind::kIdentifier, std::move(text), line, col);
  }

  void LexNumber() {
    int line = line_, col = col_;
    std::string text;
    // pp-number: digits, identifier chars, '.', digit separators, and
    // sign characters directly after a decimal or binary exponent.
    for (;;) {
      SkipSplices();
      if (AtEnd()) {
        break;
      }
      char c = src_[pos_];
      if (IsIdentChar(c) || c == '.') {
        text += Take();
        continue;
      }
      if (c == '\'' && !text.empty() && IsIdentChar(Peek(1))) {
        text += Take();  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        char prev = text.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          text += Take();
          continue;
        }
      }
      break;
    }
    bool hex = text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X');
    bool is_float = false;
    if (text.find('.') != std::string::npos) {
      is_float = true;
    } else if (hex) {
      is_float = text.find_first_of("pP") != std::string::npos;
    } else {
      // A decimal exponent makes it float; 'e' in a hex literal is a digit.
      for (size_t i = 1; i < text.size(); ++i) {
        if ((text[i] == 'e' || text[i] == 'E') && i + 1 < text.size() &&
            (IsDigit(text[i + 1]) || text[i + 1] == '+' || text[i + 1] == '-')) {
          is_float = true;
          break;
        }
      }
    }
    Emit(TokenKind::kNumber, std::move(text), line, col, is_float);
  }

  void LexHeaderName() {
    int line = line_, col = col_;
    std::string text;
    text += Take();  // '<'
    while (!AtEnd() && src_[pos_] != '>' && src_[pos_] != '\n') {
      text += Take();
    }
    if (!AtEnd() && src_[pos_] == '>') {
      text += Take();
    } else {
      result_.errors.push_back("line " + std::to_string(line) + ": unterminated header name");
    }
    expect_header_ = false;
    Emit(TokenKind::kString, std::move(text), line, col);
  }

  void LexPunct() {
    int line = line_, col = col_;
    static constexpr std::string_view kThree[] = {"<<=", ">>=", "<=>", "...", "->*"};
    static constexpr std::string_view kTwo[] = {"::", "==", "!=", "<=", ">=", "->", "&&", "||",
                                                "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=",
                                                "|=", "^=", "++", "--", "##"};
    char c0 = Peek(0), c1 = Peek(1), c2 = Peek(2);
    std::string text;
    std::string probe3{c0};
    probe3 += c1;
    probe3 += c2;
    std::string probe2{c0};
    probe2 += c1;
    size_t len = 1;
    for (std::string_view op : kThree) {
      if (probe3 == op) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (std::string_view op : kTwo) {
        if (probe2 == op) {
          len = 2;
          break;
        }
      }
    }
    for (size_t i = 0; i < len; ++i) {
      SkipSplices();
      text += Take();
    }
    Emit(TokenKind::kPunct, std::move(text), line, col);
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool expect_header_ = false;
  LexResult result_;
};

}  // namespace

LexResult Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace lint
}  // namespace aegaeon
