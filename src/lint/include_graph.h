// Include-graph passes: whole-project rules over the `#include "..."`
// edges between the repo's own files. Detects include cycles (which make
// build order fragile and usually signal an inverted layering) and headers
// missing an include guard / #pragma once.

#ifndef AEGAEON_LINT_INCLUDE_GRAPH_H_
#define AEGAEON_LINT_INCLUDE_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/rule.h"

namespace aegaeon {
namespace lint {

// Project-relative quoted includes of one file, with the line each was
// found on, in source order. `<...>` system includes are ignored.
struct IncludeEdge {
  std::string target;  // the literal path between the quotes
  int line = 0;
};
std::vector<IncludeEdge> QuotedIncludes(const SourceFile& file);

class IncludeCycleRule : public Rule {
 public:
  std::string_view id() const override { return "include-cycle"; }
  std::string_view description() const override {
    return "cyclic #include chain among project headers — the build only works by guard "
           "accident and the layering is inverted somewhere; break the cycle with a forward "
           "declaration or by splitting the header.";
  }
  void CheckProject(const std::vector<SourceFile>& files,
                    std::vector<Finding>* out) const override;
};

class IncludeGuardRule : public Rule {
 public:
  std::string_view id() const override { return "include-guard"; }
  std::string_view description() const override {
    return "header without an include guard (#ifndef/#define pair or #pragma once) before "
           "its first declaration — double inclusion is an ODR time bomb.";
  }
  void CheckFile(const SourceFile& file, std::vector<Finding>* out) const override;
};

}  // namespace lint
}  // namespace aegaeon

#endif  // AEGAEON_LINT_INCLUDE_GRAPH_H_
