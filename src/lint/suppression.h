// Inline suppressions. The marker grammar, shown here as a live (inert)
// example on a comment line:
//
//   host_cost = Elapsed(t0);  // LINT-ALLOW(wall-clock): host-side SimPerf
//                             // timing; never feeds simulated time
//
// Replaces the old shell-script allowlist. A suppression on the same line
// as a finding silences it; a suppression comment that is the only thing on
// its line silences findings of that rule on the next line. The
// justification after the colon is mandatory — a marker without one is
// itself a finding (rule "lint-allow"), as is a marker naming an unknown
// rule, so the allowlist can never silently rot.

#ifndef AEGAEON_LINT_SUPPRESSION_H_
#define AEGAEON_LINT_SUPPRESSION_H_

#include <string>
#include <vector>

#include "lint/finding.h"
#include "lint/rule.h"

namespace aegaeon {
namespace lint {

struct Suppression {
  std::string rule;
  std::string justification;  // may be empty: that is a lint-allow finding
  int line = 0;               // line of the suppression marker
  int col = 0;
  bool own_line = false;  // no token starts before it on its line
  // Line whose findings this marker silences besides its own: for an
  // own-line marker, the next line that has any token (so a multi-line
  // justification block covers the code right below it); 0 otherwise.
  int covers_line = 0;
};

// Parses every suppression marker out of `file`'s comments. `own_line` is
// computed against the token stream. Malformed markers (missing
// justification, unknown rule id, unclosed parenthesis) are reported into
// `out` as "lint-allow" findings; `valid_rule_ids` is the accepted id set.
std::vector<Suppression> CollectSuppressions(const SourceFile& file,
                                             const std::vector<std::string>& valid_rule_ids,
                                             std::vector<Finding>* out);

// True when `finding` (which must be located in the same file) is silenced
// by one of `suppressions`: same rule on the finding's line, or an own-line
// suppression of the same rule covering it from above.
bool IsSuppressed(const Finding& finding, const std::vector<Suppression>& suppressions);

}  // namespace lint
}  // namespace aegaeon

#endif  // AEGAEON_LINT_SUPPRESSION_H_
