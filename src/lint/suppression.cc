#include "lint/suppression.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace aegaeon {
namespace lint {

namespace {

constexpr std::string_view kMarker = "LINT-ALLOW";

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return std::string(s.substr(b, e - b));
}

}  // namespace

std::vector<Suppression> CollectSuppressions(const SourceFile& file,
                                             const std::vector<std::string>& valid_rule_ids,
                                             std::vector<Finding>* out) {
  // First token column per line, to decide whether a comment is alone on
  // its line (then it covers the next line instead of its own).
  std::map<int, int> first_token_col;
  for (const Token& tok : file.lex.tokens) {
    auto [it, inserted] = first_token_col.emplace(tok.line, tok.col);
    if (!inserted) {
      it->second = std::min(it->second, tok.col);
    }
  }

  std::vector<Suppression> result;
  for (const Comment& comment : file.lex.comments) {
    size_t search = 0;
    while ((search = comment.text.find(kMarker, search)) != std::string::npos) {
      size_t open = search + kMarker.size();
      search = open;  // continue scanning after this marker either way
      if (open >= comment.text.size() || comment.text[open] != '(') {
        out->push_back(Finding{std::string(kLintAllowRuleId), file.path, comment.line, comment.col,
                               "malformed LINT-ALLOW: expected LINT-ALLOW(rule-id): "
                               "justification"});
        continue;
      }
      size_t close = comment.text.find(')', open);
      if (close == std::string::npos) {
        out->push_back(Finding{std::string(kLintAllowRuleId), file.path, comment.line, comment.col,
                               "malformed LINT-ALLOW: unterminated (rule-id)"});
        continue;
      }
      Suppression sup;
      sup.rule = Trim(std::string_view(comment.text).substr(open + 1, close - open - 1));
      sup.line = comment.line;
      sup.col = comment.col;
      auto it = first_token_col.find(comment.line);
      sup.own_line = it == first_token_col.end() || it->second > comment.col;
      if (sup.own_line) {
        auto next = first_token_col.upper_bound(comment.line);
        sup.covers_line = next == first_token_col.end() ? 0 : next->first;
      }

      std::string_view rest = std::string_view(comment.text).substr(close + 1);
      if (!rest.empty() && rest.front() == ':') {
        sup.justification = Trim(rest.substr(1));
        // Only the text up to the next marker (if several share a comment)
        // belongs to this suppression.
        size_t next = sup.justification.find(kMarker);
        if (next != std::string::npos) {
          sup.justification = Trim(sup.justification.substr(0, next));
        }
      }

      if (std::find(valid_rule_ids.begin(), valid_rule_ids.end(), sup.rule) ==
          valid_rule_ids.end()) {
        out->push_back(Finding{std::string(kLintAllowRuleId), file.path, comment.line, comment.col,
                               "LINT-ALLOW names unknown rule '" + sup.rule +
                                   "' (see aegaeon_lint --list-rules)"});
      } else if (sup.justification.empty()) {
        out->push_back(Finding{std::string(kLintAllowRuleId), file.path, comment.line, comment.col,
                               "bare LINT-ALLOW(" + sup.rule +
                                   "): a justification is required — LINT-ALLOW(" + sup.rule +
                                   "): why this is safe"});
      } else {
        result.push_back(std::move(sup));
      }
    }
  }
  return result;
}

bool IsSuppressed(const Finding& finding, const std::vector<Suppression>& suppressions) {
  for (const Suppression& sup : suppressions) {
    if (sup.rule != finding.rule) {
      continue;
    }
    if (sup.line == finding.line || (sup.own_line && sup.covers_line == finding.line)) {
      return true;
    }
  }
  return false;
}

}  // namespace lint
}  // namespace aegaeon
