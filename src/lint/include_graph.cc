#include "lint/include_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace aegaeon {
namespace lint {

namespace {

bool IsHeaderPath(std::string_view path) {
  return path.size() >= 2 && path.substr(path.size() - 2) == ".h";
}

// Normalizes an analyzer path to the include spelling used inside the repo:
// strips leading "./" and a leading "src/" (headers are included relative
// to src/, per target_include_directories).
std::string IncludeKey(std::string_view path) {
  while (path.substr(0, 2) == "./") {
    path.remove_prefix(2);
  }
  if (path.substr(0, 4) == "src/") {
    path.remove_prefix(4);
  }
  return std::string(path);
}

}  // namespace

std::vector<IncludeEdge> QuotedIncludes(const SourceFile& file) {
  std::vector<IncludeEdge> edges;
  const std::vector<Token>& t = file.lex.tokens;
  for (size_t i = 2; i < t.size(); ++i) {
    // `# include "path"` — the lexer lexes the quoted form as a normal
    // string token and the angle form as "<...>".
    if (t[i].kind != TokenKind::kString || t[i].text.size() < 2 || t[i].text.front() != '"') {
      continue;
    }
    if (!(t[i - 1].kind == TokenKind::kIdentifier && t[i - 1].text == "include" &&
          t[i - 2].kind == TokenKind::kPunct && t[i - 2].text == "#")) {
      continue;
    }
    edges.push_back(IncludeEdge{t[i].text.substr(1, t[i].text.size() - 2), t[i].line});
  }
  return edges;
}

void IncludeCycleRule::CheckProject(const std::vector<SourceFile>& files,
                                    std::vector<Finding>* out) const {
  // Graph over the files we were given, keyed by include spelling. Only
  // headers can appear on a cycle (a .cc is never included), but .cc files
  // contribute no edges into them either, so restrict to headers.
  std::map<std::string, const SourceFile*> by_key;
  for (const SourceFile& file : files) {
    if (IsHeaderPath(file.path)) {
      by_key[IncludeKey(file.path)] = &file;
    }
  }
  std::map<std::string, std::vector<IncludeEdge>> edges;
  for (const auto& [key, file] : by_key) {
    for (const IncludeEdge& edge : QuotedIncludes(*file)) {
      if (by_key.count(edge.target) != 0) {
        edges[key].push_back(edge);
      }
    }
  }

  // Iterative DFS with an explicit path stack; each node is reported in at
  // most one cycle. std::map iteration keeps everything deterministic.
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const auto& [root, unused] : by_key) {
    (void)unused;
    if (done.count(root) != 0) {
      continue;
    }
    std::vector<std::string> path;
    std::set<std::string> on_path;
    struct Frame {
      std::string node;
      size_t next_edge = 0;
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{root, 0});
    path.push_back(root);
    on_path.insert(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<IncludeEdge>& out_edges = edges[frame.node];
      if (frame.next_edge >= out_edges.size()) {
        done.insert(frame.node);
        on_path.erase(frame.node);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge& edge = out_edges[frame.next_edge++];
      if (on_path.count(edge.target) != 0) {
        // Found a back edge: the cycle is path[target..end] + target.
        auto begin = std::find(path.begin(), path.end(), edge.target);
        bool fresh = false;
        std::string chain;
        for (auto it = begin; it != path.end(); ++it) {
          fresh = fresh || reported.insert(*it).second;
          chain += *it + " -> ";
        }
        chain += edge.target;
        if (fresh) {
          const SourceFile* at = by_key[frame.node];
          out->push_back(Finding{std::string(id()), at->path, edge.line, 1,
                                 "#include cycle: " + chain});
        }
        continue;
      }
      if (done.count(edge.target) != 0) {
        continue;
      }
      stack.push_back(Frame{edge.target, 0});
      path.push_back(edge.target);
      on_path.insert(edge.target);
    }
  }
}

void IncludeGuardRule::CheckFile(const SourceFile& file, std::vector<Finding>* out) const {
  if (!IsHeaderPath(file.path)) {
    return;
  }
  const std::vector<Token>& t = file.lex.tokens;
  if (t.empty()) {
    return;  // an empty (or comment-only) header multi-includes harmlessly
  }
  // The first tokens must open a guard: `#pragma once`, or `#ifndef NAME`
  // followed by `#define NAME`.
  if (t.size() >= 3 && t[0].text == "#" && t[1].text == "pragma" && t[2].text == "once") {
    return;
  }
  if (t.size() >= 6 && t[0].text == "#" && t[1].text == "ifndef" &&
      t[2].kind == TokenKind::kIdentifier && t[3].text == "#" && t[4].text == "define" &&
      t[5].kind == TokenKind::kIdentifier && t[5].text == t[2].text) {
    return;
  }
  out->push_back(Finding{std::string(id()), file.path, t[0].line, t[0].col,
                         "header has no include guard (#ifndef/#define pair or #pragma once) "
                         "before its first token"});
}

}  // namespace lint
}  // namespace aegaeon
