// Token model for aegaeon_lint (src/lint): the project-native static
// analyzer that guards the simulator's determinism contract at the source
// level (DESIGN.md §11). The lexer produces a flat token stream per file —
// comments, string/char literals, and raw strings are consumed correctly so
// rules never fire on text inside them (the failure mode of the old grep
// lint) — plus a side list of comments from which inline suppressions are
// parsed (see suppression.h for the marker grammar).

#ifndef AEGAEON_LINT_TOKEN_H_
#define AEGAEON_LINT_TOKEN_H_

#include <string>
#include <string_view>
#include <vector>

namespace aegaeon {
namespace lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (thread_local, const, ...)
  kNumber,      // pp-number: integer or floating literal, any base/suffix
  kString,      // string literal incl. prefixes, raw strings, <header-name>
  kChar,        // character literal
  kPunct,       // operators and punctuation, maximal munch ("::", "==", ...)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based, position of the token's first character
  int col = 0;   // 1-based
  // Set for kNumber when the literal is a floating constant (has a decimal
  // point or a decimal/binary exponent): "1.0", ".5f", "1e9", "0x1.8p3".
  bool is_float = false;
};

struct Comment {
  std::string text;  // interior text, delimiters stripped, untrimmed
  int line = 0;      // line of the opening "//" or "/*"
  int col = 0;
  bool block = false;  // true for /* ... */
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  // Lexical-level problems (unterminated literal/comment). The lexer
  // recovers and keeps going; the analyzer reports these as findings.
  std::vector<std::string> errors;
};

// Tokenizes one translation unit. Handles line splices (backslash-newline)
// everywhere except inside raw strings, nested quote/comment interactions
// ("/*" inside a string, quotes inside comments), and lexes the header-name
// after `#include <...>` as a single string token.
LexResult Lex(std::string_view source);

}  // namespace lint
}  // namespace aegaeon

#endif  // AEGAEON_LINT_TOKEN_H_
