#include "engine/autoscaler.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

std::string ToString(OptLevel level) {
  switch (level) {
    case OptLevel::kBaseline:
      return "T0-baseline";
    case OptLevel::kComponentReuse:
      return "T1-component-reuse";
    case OptLevel::kExplicitMemory:
      return "T2-explicit-memory";
    case OptLevel::kFineGrainedSync:
      return "T3-fine-grained-sync";
  }
  return "unknown";
}

AutoScaler::AutoScaler(GpuDevice& gpu, const LatencyModel& latency, ModelCache& model_cache,
                       EngineCostModel costs, OptLevel level, double weight_buffer_bytes,
                       double cpu_kv_pool_bytes)
    : gpu_(gpu),
      latency_(latency),
      model_cache_(model_cache),
      costs_(costs),
      level_(level),
      prefetch_enabled_(level >= OptLevel::kExplicitMemory),
      weight_buffer_(static_cast<uint64_t>(weight_buffer_bytes)),
      cpu_kv_pool_bytes_(cpu_kv_pool_bytes) {}

bool AutoScaler::PrefetchFits(const DeployedModel& running, const DeployedModel& next) const {
  return running.shard_bytes() + next.shard_bytes() <= static_cast<double>(weight_buffer_.capacity());
}

bool AutoScaler::IsResident(ModelId model) const {
  for (const Resident& r : residents_) {
    if (r.id == model) {
      return true;
    }
  }
  return false;
}

double AutoScaler::ResidentBytes() const {
  double total = 0.0;
  for (const Resident& r : residents_) {
    total += r.shard_bytes;
  }
  return total;
}

void AutoScaler::EvictResidentsFor(double needed) {
  // Evict LRU residents (never the current model) until `needed` bytes fit
  // alongside the survivors, or only the current model remains.
  while (ResidentBytes() + needed > static_cast<double>(weight_buffer_.capacity()) ||
         static_cast<int>(residents_.size()) >= resident_capacity_) {
    int victim = -1;
    TimePoint oldest = kTimeNever;
    for (size_t i = 0; i < residents_.size(); ++i) {
      if (residents_[i].id == current_model_) {
        continue;
      }
      if (residents_[i].last_use < oldest) {
        oldest = residents_[i].last_use;
        victim = static_cast<int>(i);
      }
    }
    if (victim < 0) {
      return;
    }
    residents_.erase(residents_.begin() + victim);
  }
}

void AutoScaler::TouchResident(ModelId model, double shard, TimePoint now) {
  for (Resident& r : residents_) {
    if (r.id == model) {
      r.last_use = now;
      return;
    }
  }
  EvictResidentsFor(shard);
  residents_.push_back(Resident{model, shard, now});
}

ScaleResult AutoScaler::ScaleTo(const DeployedModel& target, TimePoint now, double kv_out_bytes,
                                double kv_in_bytes) {
  ScaleResult result;
  ScaleBreakdown& b = result.breakdown;
  const bool fine_sync = level_ >= OptLevel::kFineGrainedSync;
  b.kv_blocking = !fine_sync;
  TimePoint t = now;

  // --- Scale-down: offload the old model's KV cache -----------------------
  if (kv_out_bytes > 0.0) {
    StreamSim::Span span =
        gpu_.EnqueueOptimizedCopy(gpu_.kv_out_stream(), t, kv_out_bytes, CopyDir::kDeviceToHost);
    b.kv_out = span.end - span.start;
    if (!fine_sync) {
      // Blocking synchronization: the switch cannot proceed until the KV
      // cache has fully left the device.
      t = std::max(t, span.end);
    }
  }

  // --- Garbage collection (only needed with library-managed VRAM) ---------
  if (level_ < OptLevel::kExplicitMemory && current_model_ != kInvalidModel) {
    b.gc = costs_.GcPass();
    t += b.gc;
  }

  // --- Engine (re)initialization ------------------------------------------
  // kBaseline rebuilds the engine on every switch; higher levels boot once
  // per instance and reuse every component (§5.1).
  const bool pay_init = (level_ == OptLevel::kBaseline) || !engine_booted_;
  if (pay_init) {
    b.dist_exec = costs_.DistExecutorInit(target.tp);
    b.profile = costs_.ProfileInit(target.spec);
    b.kv_init = costs_.KvPinInit(cpu_kv_pool_bytes_);
    b.misc = costs_.MiscInit();
    t += b.dist_exec + b.profile + b.kv_init + b.misc;
    engine_booted_ = true;
  }

  // --- Model weights --------------------------------------------------------
  const double shard = target.shard_bytes();
  const bool resident_hit =
      resident_capacity_ > 1 && target.id != current_model_ && IsResident(target.id);
  if (resident_hit) {
    // §8 hybrid multiplexing: the weights are already on the device; the
    // switch is a pointer swap plus activation-workspace handoff.
    b.model_load = 0.002;
    t += b.model_load;
    resident_hits_++;
    result.weights_loaded = EventSim();
  } else if (level_ >= OptLevel::kExplicitMemory && prefetched_model_ == target.id) {
    // Figure 9, step 3.b: the prefetched weights sit right behind the old
    // model in the self-managed buffer; wait out any residual prefetch time
    // and promote them to the front with a cheap on-device copy.
    Duration residual = std::max(0.0, prefetch_done_.complete_at() - t);
    Duration promote = 2.0 * shard / gpu_.spec().effective_hbm();  // read + write
    b.model_load = residual + promote;
    b.prefetch_hit = true;
    prefetch_hits_++;
    t += b.model_load;
    weight_buffer_.ResetKeepingFront(static_cast<uint64_t>(prefetched_shard_bytes_));
  } else {
    ModelCache::LoadPlan plan = model_cache_.PrepareLoad(target.id, target.spec.weight_bytes());
    t += plan.registry_fetch;
    double bw_fraction = level_ >= OptLevel::kExplicitMemory
                             ? gpu_.spec().pcie_efficiency
                             : costs_.naive_load_bytes_per_s / gpu_.spec().pcie_bytes_per_s;
    StreamSim::Span span =
        gpu_.EnqueueCopy(gpu_.compute_stream(), t, shard, CopyDir::kHostToDevice, bw_fraction);
    b.model_load = plan.registry_fetch + (span.end - t);
    t = span.end;
    model_cache_.Unpin(target.id);
    if (resident_capacity_ > 1) {
      // Hybrid mode: make room among the co-resident models instead of
      // resetting the whole buffer.
      EvictResidentsFor(shard);
    } else if (level_ >= OptLevel::kExplicitMemory) {
      weight_buffer_.Reset();
      std::optional<uint64_t> offset = weight_buffer_.Alloc(static_cast<uint64_t>(shard));
      assert(offset.has_value() && "weight buffer too small for the model shard");
      (void)offset;
    }
  }
  if (!resident_hit) {
    result.weights_loaded = gpu_.compute_stream().Record();
    prefetched_model_ = kInvalidModel;
    prefetched_shard_bytes_ = 0.0;
  }

  // --- Scale-up: bring back the KV cache of the new model's requests ------
  if (kv_in_bytes > 0.0) {
    StreamSim::Span span =
        gpu_.EnqueueOptimizedCopy(gpu_.kv_in_stream(), t, kv_in_bytes, CopyDir::kHostToDevice);
    b.kv_in = span.end - span.start;
    if (!fine_sync) {
      t = std::max(t, span.end);
    }
  }

  current_model_ = target.id;
  current_shard_bytes_ = shard;
  if (resident_capacity_ > 1) {
    TouchResident(target.id, shard, now);
  }
  result.ready_at = t;
  switch_latencies_.push_back(t - now);
  return result;
}

TimePoint AutoScaler::Prefetch(const DeployedModel& next, TimePoint now) {
  if (!prefetch_enabled_ || level_ < OptLevel::kExplicitMemory) {
    return kTimeNever;
  }
  if (next.id == current_model_) {
    return now;  // already resident
  }
  if (next.id == prefetched_model_) {
    return prefetch_done_.complete_at();
  }
  if (prefetched_model_ != kInvalidModel && !prefetch_done_.Query(now)) {
    // A prefetch is already in flight; issuing another would only thrash
    // the PCIe link. Let the current one finish.
    return kTimeNever;
  }
  if (current_model_ != kInvalidModel && current_shard_bytes_ + next.shard_bytes() >
                                             static_cast<double>(weight_buffer_.capacity())) {
    return kTimeNever;  // no headroom for a second resident model
  }
  ModelCache::LoadPlan plan = model_cache_.Warm(next.id, next.spec.weight_bytes());
  StreamSim::Span span = gpu_.EnqueueOptimizedCopy(gpu_.prefetch_stream(), now + plan.registry_fetch,
                                                   next.shard_bytes(), CopyDir::kHostToDevice);
  prefetch_done_ = gpu_.prefetch_stream().Record();
  prefetched_model_ = next.id;
  prefetched_shard_bytes_ = next.shard_bytes();
  prefetch_issued_++;
  return span.end;
}

Duration AutoScaler::EstimateSwitch(const DeployedModel& target) const {
  if (target.id == current_model_) {
    return 0.0;
  }
  if (resident_capacity_ > 1 && IsResident(target.id)) {
    return 0.002;
  }
  Duration load;
  if (level_ >= OptLevel::kExplicitMemory) {
    load = (prefetched_model_ == target.id)
               ? 2.0 * target.shard_bytes() / gpu_.spec().effective_hbm()
               : latency_.SwitchLoad(target.spec, target.tp);
  } else {
    load = latency_.NaiveLoad(target.spec, target.tp, costs_.naive_load_bytes_per_s);
  }
  Duration fixed = 0.0;
  if (level_ < OptLevel::kExplicitMemory) {
    fixed += costs_.GcPass();
  }
  if (level_ == OptLevel::kBaseline) {
    fixed += costs_.DistExecutorInit(target.tp) + costs_.ProfileInit(target.spec) +
             costs_.KvPinInit(cpu_kv_pool_bytes_) + costs_.MiscInit();
  }
  return load + fixed;
}

}  // namespace aegaeon
