// Initialization-cost model for an LLM inference engine's components
// (Figure 7, middle and right).
//
// The constants below are calibrated so that a LLaMA-13B engine at TP=2 on
// PCIe 4.0 costs 26.9 s to initialize from scratch, decomposed exactly as
// the paper reports: distributed executor "tens of seconds", profiling and
// KV pinning "several seconds" each, and a naive weight load of 4.6 s at
// the measured 2.83 GB/s.

#ifndef AEGAEON_ENGINE_COMPONENTS_H_
#define AEGAEON_ENGINE_COMPONENTS_H_

#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

struct EngineCostModel {
  // Ray actor/process setup plus NCCL communicator bootstrap; grows with
  // the tensor-parallel degree.
  Duration dist_executor_base = 5.0;
  Duration dist_executor_per_rank = 4.0;

  // Peak-memory profiling forward pass + KV sizing; grows with model size.
  Duration profile_base = 2.0;
  Duration profile_per_billion = 0.077;

  // Pinning host pages for the CPU KV pool (cudaHostRegister throughput).
  double pin_bytes_per_s = 7.5e9;

  // Tokenizer, scheduler, logging, and other engine odds and ends.
  Duration misc_init = 1.3;

  // gc.collect() + torch.cuda.empty_cache() defragmentation pass needed
  // before back-to-back model initialization on the same GPU (§5.2).
  Duration gc_pass = 1.0;

  // Absolute bandwidth achieved by the engine's unoptimized per-tensor
  // weight loading: 2.83 GB/s measured (Figure 7), independent of link
  // generation (the bottleneck is the copy path, not the wire).
  double naive_load_bytes_per_s = 2.83e9;

  Duration DistExecutorInit(int tp) const {
    return dist_executor_base + dist_executor_per_rank * tp;
  }
  Duration ProfileInit(const ModelSpec& model) const {
    return profile_base + profile_per_billion * model.params_billion;
  }
  Duration KvPinInit(double cpu_kv_pool_bytes) const { return cpu_kv_pool_bytes / pin_bytes_per_s; }
  Duration MiscInit() const { return misc_init; }
  Duration GcPass() const { return gc_pass; }
};

}  // namespace aegaeon

#endif  // AEGAEON_ENGINE_COMPONENTS_H_
