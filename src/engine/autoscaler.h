// Preemptive model auto-scaling (§5): the staged scale-down + scale-up
// pipeline of Figure 7 (left), progressively optimized per Figures 8 and 10.
//
// Optimization levels map to the paper's ablation:
//   kBaseline        (T0): full engine re-initialization, naive weight load,
//                          blocking KV transfers, GC pass.
//   kComponentReuse  (T1): §5.1 — distributed executor, profiling results,
//                          tokenizer, pinned CPU KV pool, and misc engine
//                          state survive the switch; only GC, weight load,
//                          and KV transfers remain.
//   kExplicitMemory  (T2): §5.2 — bump-allocated VRAM removes the GC pass;
//                          stage-buffered, pipelined loading runs at the
//                          optimized PCIe efficiency; weight prefetching on
//                          a separate stream can hide the load entirely.
//   kFineGrainedSync (T3): §5.3 — KV transfers move off the critical path
//                          (event-synchronized, per-request), so the switch
//                          costs only the (often hidden) weight load.

#ifndef AEGAEON_ENGINE_AUTOSCALER_H_
#define AEGAEON_ENGINE_AUTOSCALER_H_

#include <string>
#include <vector>

#include "engine/components.h"
#include "hw/gpu_device.h"
#include "mem/bump_allocator.h"
#include "mem/model_cache.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

enum class OptLevel {
  kBaseline = 0,
  kComponentReuse = 1,
  kExplicitMemory = 2,
  kFineGrainedSync = 3,
};

std::string ToString(OptLevel level);

// Wall-clock spent in each stage of one preemptive switch. Stages that are
// off the critical path at the configured OptLevel still report their
// duration, with on_critical_path false recorded via the *_blocking flags.
struct ScaleBreakdown {
  Duration kv_out = 0.0;
  Duration gc = 0.0;
  Duration dist_exec = 0.0;
  Duration model_load = 0.0;
  Duration profile = 0.0;
  Duration kv_init = 0.0;
  Duration kv_in = 0.0;
  Duration misc = 0.0;
  bool kv_blocking = true;   // KV stages on the critical path?
  bool prefetch_hit = false;

  // Total critical-path latency of the switch.
  Duration CriticalPath() const {
    Duration total = gc + dist_exec + model_load + profile + kv_init + misc;
    if (kv_blocking) {
      total += kv_out + kv_in;
    }
    return total;
  }
};

struct ScaleResult {
  TimePoint ready_at = 0.0;     // when inference with the new model may start
  ScaleBreakdown breakdown;
  EventSim weights_loaded;      // completion of the weight copy
};

// One AutoScaler per serving instance. For tensor-parallel instances all
// ranks load their shards concurrently over their own PCIe links, so the
// primary GPU's link models the (symmetric) per-rank timing.
class AutoScaler {
 public:
  AutoScaler(GpuDevice& gpu, const LatencyModel& latency, ModelCache& model_cache,
             EngineCostModel costs, OptLevel level, double weight_buffer_bytes,
             double cpu_kv_pool_bytes);

  // Performs the scale-down of the current model (if any) and scale-up of
  // `target` starting at `now`. `kv_out_bytes` / `kv_in_bytes` are the KV
  // volumes that must leave/enter the GPU with the switch; at
  // kFineGrainedSync they are event-synchronized per request by the
  // TransferEngine instead and excluded from the critical path.
  ScaleResult ScaleTo(const DeployedModel& target, TimePoint now, double kv_out_bytes = 0.0,
                      double kv_in_bytes = 0.0);

  // Starts (or continues) prefetching `next` on the prefetch stream if the
  // optimization level and the weight-buffer headroom allow it. Returns the
  // predicted completion time (kTimeNever when prefetch is unavailable).
  TimePoint Prefetch(const DeployedModel& next, TimePoint now);

  // Estimated switch latency to `target` if issued now, for scheduler load
  // estimates (Appendix A.2, Eq. 4). Ignores transient queueing.
  Duration EstimateSwitch(const DeployedModel& target) const;

  // Marks the engine as booted (distributed executor, profiling results,
  // tokenizers, pinned KV pool all initialized before serving starts —
  // §5.1 "beforehand"). At kBaseline this is a no-op: the baseline rebuilds
  // everything on every switch.
  void BootBeforeServing() { engine_booted_ = true; }

  ModelId current_model() const { return current_model_; }
  ModelId prefetched_model() const { return prefetched_model_; }
  OptLevel level() const { return level_; }
  bool prefetch_enabled() const { return prefetch_enabled_; }
  void set_prefetch_enabled(bool on) { prefetch_enabled_ = on; }

  // --- Hybrid multiplexing (§8 extension) -------------------------------
  // Keep up to `count` models' weights resident in the buffer at once (LRU
  // evicted as space runs out); switching to a resident model costs only an
  // activation (no copy). count == 1 reproduces the paper's behavior.
  void set_resident_capacity(int count) { resident_capacity_ = count < 1 ? 1 : count; }
  int resident_capacity() const { return resident_capacity_; }
  size_t resident_count() const { return residents_.size(); }
  bool IsResident(ModelId model) const;
  uint64_t resident_hits() const { return resident_hits_; }

  // All switch latencies observed so far (Figure 15 left).
  const std::vector<Duration>& switch_latencies() const { return switch_latencies_; }
  uint64_t switches() const { return switch_latencies_.size(); }
  uint64_t prefetch_hits() const { return prefetch_hits_; }
  uint64_t prefetch_issued() const { return prefetch_issued_; }

 private:
  // True when the weight buffer can hold the running and prefetched models
  // simultaneously.
  bool PrefetchFits(const DeployedModel& running, const DeployedModel& next) const;

  GpuDevice& gpu_;
  const LatencyModel& latency_;
  ModelCache& model_cache_;
  EngineCostModel costs_;
  OptLevel level_;
  bool prefetch_enabled_;
  BumpAllocator weight_buffer_;
  double cpu_kv_pool_bytes_;

  ModelId current_model_ = kInvalidModel;
  double current_shard_bytes_ = 0.0;
  ModelId prefetched_model_ = kInvalidModel;
  double prefetched_shard_bytes_ = 0.0;
  EventSim prefetch_done_;
  bool engine_booted_ = false;

  struct Resident {
    ModelId id = kInvalidModel;
    double shard_bytes = 0.0;
    TimePoint last_use = 0.0;
  };
  // Evicts least-recently-used residents until `needed` more bytes fit.
  void EvictResidentsFor(double needed);
  void TouchResident(ModelId model, double shard, TimePoint now);
  double ResidentBytes() const;

  std::vector<Duration> switch_latencies_;
  uint64_t prefetch_hits_ = 0;
  uint64_t prefetch_issued_ = 0;

  int resident_capacity_ = 1;
  std::vector<Resident> residents_;
  uint64_t resident_hits_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_ENGINE_AUTOSCALER_H_
