// The MuxServe baseline (§7.1): static multiplexing.
//
// A placement optimizer packs models onto GPUs subject to GPU memory
// (weights + a per-model KV reservation + an activation reservation); with
// the paper's 6-14B market this yields at most two to three models per GPU,
// and models beyond the pool's memory capacity are *refused* — their
// requests are never served (§7.2 "Limitation of multiplexing"). Resident
// models share their GPU via fine-grained temporal multiplexing with no
// switching cost.

#ifndef AEGAEON_BASELINES_MUXSERVE_H_
#define AEGAEON_BASELINES_MUXSERVE_H_

#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/model_server.h"
#include "core/request.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "sim/simulator.h"

namespace aegaeon {

struct MuxServeConfig {
  int gpus = 16;
  // KV-cache VRAM reserved per colocated model. At 14 GiB the placement
  // optimizer packs at most two 6-14B models per 80 GB GPU, reproducing the
  // paper's observation (§7.2) that MuxServe serves at most 32 models on 16
  // GPUs.
  double kv_reserve_bytes = 14.0 * kGiB;
  // Activation/workspace VRAM reserved per GPU.
  double activation_reserve_bytes = 6.0 * kGiB;
  // Temporal multiplexing quantum.
  Duration quantum = 0.05;
  int max_batch = 32;
};

class MuxServeCluster {
 public:
  MuxServeCluster(MuxServeConfig config, const ModelRegistry& registry, const GpuSpec& gpu_spec);

  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  // Models the placement optimizer accepted.
  int placed_models() const { return placed_models_; }
  // Models refused for lack of GPU memory.
  int refused_models() const { return static_cast<int>(registry_.size()) - placed_models_; }
  // Largest number of models colocated on one GPU.
  int max_models_per_gpu() const;

 private:
  struct Gpu {
    std::vector<std::unique_ptr<ModelServer>> servers;
    size_t rr_index = 0;
    bool busy = false;
  };

  void OnArrival(Request* request);
  void Kick(int g);

  MuxServeConfig config_;
  const ModelRegistry& registry_;
  LatencyModel latency_;
  Simulator sim_;
  std::vector<Gpu> gpus_;
  // model id -> (gpu index, server index); -1 when refused.
  std::vector<int> gpu_of_model_;
  std::vector<int> server_of_model_;
  int placed_models_ = 0;
  std::vector<Request> requests_;
};

}  // namespace aegaeon

#endif  // AEGAEON_BASELINES_MUXSERVE_H_
