// The strawman: one dedicated GPU instance per model (§3, "no auto-scaling
// at all"). This is the production status quo Aegaeon replaces (§7.5), and
// the reference point for the deployment GPU-saving figures.

#ifndef AEGAEON_BASELINES_DEDICATED_H_
#define AEGAEON_BASELINES_DEDICATED_H_

#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/model_server.h"
#include "core/request.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "sim/simulator.h"

namespace aegaeon {

struct DedicatedConfig {
  Duration chunk = 0.25;
  int max_batch = 32;
};

class DedicatedCluster {
 public:
  DedicatedCluster(DedicatedConfig config, const ModelRegistry& registry,
                   const GpuSpec& gpu_spec);

  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  int gpus() const { return static_cast<int>(registry_.size()); }

  // Busy fraction per GPU over the run (Figure 18's "Before" series).
  const std::vector<Duration>& busy_time() const { return busy_time_; }

 private:
  void Kick(int g);

  DedicatedConfig config_;
  const ModelRegistry& registry_;
  LatencyModel latency_;
  Simulator sim_;
  std::vector<std::unique_ptr<ModelServer>> servers_;
  std::vector<bool> busy_;
  std::vector<Duration> busy_time_;
  std::vector<Request> requests_;
};

}  // namespace aegaeon

#endif  // AEGAEON_BASELINES_DEDICATED_H_
