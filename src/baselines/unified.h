// Unified (non-disaggregated) token-level scheduling — the design
// alternative §4.1 and Figure 6 argue against. Every instance serves both
// prefill and decoding jobs with token-level auto-scaling, under one of two
// priority heuristics:
//
//   kPrefillFirst: pending prefills always preempt decoding. Harms TBT when
//                  request arrivals burst (Figure 6a).
//   kDecodeFirst:  decoding rounds run to exhaustion before prefills. Harms
//                  TTFT when prompts are long or decode phases are busy
//                  (Figure 6b).
//
// Aegaeon instead splits the pool into prefill and decoding instances
// (Figure 6c); see core/cluster.h. This module exists to reproduce the
// comparison that motivates that choice.

#ifndef AEGAEON_BASELINES_UNIFIED_H_
#define AEGAEON_BASELINES_UNIFIED_H_

#include <deque>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "core/decode_scheduler.h"
#include "core/request.h"
#include "engine/autoscaler.h"
#include "hw/node.h"
#include "mem/model_cache.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "sim/simulator.h"

namespace aegaeon {

enum class UnifiedPolicy {
  kPrefillFirst,
  kDecodeFirst,
};

struct UnifiedConfig {
  int instances = 16;
  UnifiedPolicy policy = UnifiedPolicy::kPrefillFirst;
  // Token-level decode slice between scheduling decisions.
  Duration decode_slice = 0.25;
  int max_decode_batch = 32;
  // GPU KV budget per instance (resident context tokens x bytes).
  double gpu_kv_bytes = 30.0 * kGiB;
  // Auto-scaling stack (the unified alternative still gets Aegaeon's full
  // T3 scaling optimizations — the comparison isolates *scheduling*).
  OptLevel opt_level = OptLevel::kFineGrainedSync;
  double weight_buffer_bytes = 40.0 * kGiB;
  double model_cache_bytes = 1536.0 * kGiB;
  double remote_registry_bw = 12.5e9;
};

class UnifiedCluster {
 public:
  UnifiedCluster(UnifiedConfig config, const ModelRegistry& registry, const GpuSpec& gpu_spec);

  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  const std::vector<Request>& requests() const { return requests_; }

 private:
  struct Instance {
    int index = 0;
    GpuDevice* gpu = nullptr;
    std::unique_ptr<AutoScaler> scaler;
    // Prefill queue, grouped by model in FCFS order (Algorithm 1 locally).
    std::deque<Request*> prefill_queue;
    // Decode batches (one per model), rotated round-robin.
    std::vector<DecodeBatch> batches;
    size_t rr = 0;
    double kv_resident_bytes = 0.0;
    bool busy = false;
  };

  void OnArrival(Request* request);
  void Kick(int i);
  bool RunPrefill(Instance& inst);  // true if work was started
  bool RunDecode(Instance& inst);
  void JoinDecode(Instance& inst, Request* request);
  double KvBytesPerToken(ModelId model) const;

  UnifiedConfig config_;
  const ModelRegistry& registry_;
  LatencyModel latency_;
  Simulator sim_;
  std::unique_ptr<Node> node_;
  std::unique_ptr<ModelCache> model_cache_;
  std::vector<Instance> instances_;
  std::vector<Request> requests_;
};

}  // namespace aegaeon

#endif  // AEGAEON_BASELINES_UNIFIED_H_
