// The ServerlessLLM baseline (§7.1): request-level auto-scaling.
//
// Each GPU instance serves one model at a time with continuous batching and
// switches models only when its running batch fully drains — scaling "at
// the end of requests" (§2.3). Model loading is fast (ServerlessLLM's
// multi-tier checkpoint loading achieves the optimized PCIe bandwidth), but
// engines are re-initialized per scale-up, and requests for other models
// experience the head-of-line blocking that motivates Aegaeon.
//
// ServerlessLLM+ extends the scheduler with oracle Shortest-Job-First:
// when an instance goes idle it serves the waiting request with the least
// estimated service time (using true output lengths), as in §7.1.

#ifndef AEGAEON_BASELINES_SERVERLESS_LLM_H_
#define AEGAEON_BASELINES_SERVERLESS_LLM_H_

#include <deque>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/model_server.h"
#include "core/request.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "serve/proxy.h"
#include "sim/simulator.h"

namespace aegaeon {

struct ServerlessLlmConfig {
  int gpus = 16;
  // Oracle SJF scheduling (the ServerlessLLM+ variant).
  bool sjf = false;
  // Engine re-initialization overhead on top of the (fast) weight load.
  Duration init_overhead = 2.0;
  // Execution slice handed to the active server per scheduling round.
  Duration chunk = 0.25;
  int max_batch = 32;
  // Optional overload-aware serving proxy in front of the cluster (the same
  // policy implementation Aegaeon uses, for apples-to-apples goodput).
  ProxyPolicy proxy;
};

class ServerlessLlmCluster {
 public:
  ServerlessLlmCluster(ServerlessLlmConfig config, const ModelRegistry& registry,
                       const GpuSpec& gpu_spec);

  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  const std::vector<Request>& requests() const { return requests_; }
  const ServingProxy* proxy() const { return proxy_.get(); }

 private:
  struct Instance {
    ModelId current = kInvalidModel;
    std::unique_ptr<ModelServer> server;
    std::deque<Request*> waiting;  // FIFO across models
    bool busy = false;
    std::vector<Duration> switch_latencies;
  };

  void OnArrival(Request* request);
  void Kick(int i);
  // Full-service-time estimate of one waiting request (prefill + decode).
  Duration ServiceEstimate(const Request& request) const;
  // Least backlogged instance's estimated drain time (queue-delay hook).
  Duration BacklogEstimate() const;
  // Moves same-model waiters into the active server, but never past an
  // older waiter of a different model (FCFS fairness prevents one model
  // from starving the queue via continuous batching).
  void AdmitEligible(Instance& inst);
  ModelId PickNextModel(const Instance& inst) const;
  Duration SwitchCost(ModelId model) const;

  ServerlessLlmConfig config_;
  const ModelRegistry& registry_;
  LatencyModel latency_;
  Simulator sim_;
  std::vector<Instance> instances_;
  std::vector<Request> requests_;
  std::unique_ptr<ServingProxy> proxy_;
};

}  // namespace aegaeon

#endif  // AEGAEON_BASELINES_SERVERLESS_LLM_H_
