#include "baselines/serverless_llm.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace aegaeon {

ServerlessLlmCluster::ServerlessLlmCluster(ServerlessLlmConfig config,
                                           const ModelRegistry& registry, const GpuSpec& gpu_spec)
    : config_(config), registry_(registry), latency_(gpu_spec) {
  assert(config_.gpus > 0);
  instances_.resize(config_.gpus);
}

Duration ServerlessLlmCluster::SwitchCost(ModelId model) const {
  const DeployedModel& dm = registry_.Get(model);
  return latency_.SwitchLoad(dm.spec, dm.tp) + config_.init_overhead;
}

Duration ServerlessLlmCluster::ServiceEstimate(const Request& request) const {
  const DeployedModel& dm = registry_.Get(request.model);
  return latency_.PrefillOne(dm.spec, dm.tp, request.prompt_tokens) +
         latency_.DecodeStep(dm.spec, dm.tp, request.prompt_tokens + request.output_tokens) *
             static_cast<double>(request.output_tokens);
}

Duration ServerlessLlmCluster::BacklogEstimate() const {
  // Instances run requests to completion before switching, so a newcomer's
  // queue delay is the full remaining service of everything ahead of it on
  // the least-backlogged instance.
  Duration best = std::numeric_limits<double>::infinity();
  for (const Instance& inst : instances_) {
    Duration load = inst.server != nullptr ? inst.server->EstimatedWork() : Duration{0.0};
    for (const Request* r : inst.waiting) {
      load += ServiceEstimate(*r);
    }
    best = std::min(best, load);
  }
  return instances_.empty() ? 1e9 : best;
}

RunMetrics ServerlessLlmCluster::Run(const std::vector<ArrivalEvent>& trace) {
  requests_.clear();
  requests_.reserve(trace.size());
  if (config_.proxy.enabled) {
    ServingProxy::Backend backend;
    backend.queue_delay = [this](const Request&) { return BacklogEstimate(); };
    backend.exec_estimate = [this](const Request& r) {
      const DeployedModel& dm = registry_.Get(r.model);
      return latency_.PrefillOne(dm.spec, dm.tp, r.prompt_tokens);
    };
    backend.slo = [this](ModelId m) { return registry_.Get(m).slo; };
    backend.dispatch = [this](Request* r) { OnArrival(r); };
    proxy_ = std::make_unique<ServingProxy>(config_.proxy, sim_, registry_.size(),
                                            std::move(backend));
  }
  for (const ArrivalEvent& event : trace) {
    Request request;
    request.id = requests_.size();
    request.model = event.model;
    request.prompt_tokens = event.prompt_tokens;
    request.output_tokens = std::max<int64_t>(1, event.output_tokens);
    request.arrival = event.time;
    request.priority = event.priority;
    requests_.push_back(request);
    Request* r = &requests_.back();
    if (proxy_ != nullptr) {
      sim_.At(event.time, [this, r] { proxy_->OnArrival(r); });
    } else {
      sim_.At(event.time, [this, r] { OnArrival(r); });
    }
  }
  sim_.Run();
  FillDecodeWaits(requests_);
  RunMetrics metrics = FoldRequests(requests_, sim_.Now());
  metrics.sim = sim_.perf();
  for (const Instance& inst : instances_) {
    metrics.switch_latency_samples.insert(metrics.switch_latency_samples.end(),
                                          inst.switch_latencies.begin(),
                                          inst.switch_latencies.end());
  }
  return metrics;
}

void ServerlessLlmCluster::OnArrival(Request* request) {
  // Dispatch: (1) an instance already serving this model, (2) an idle
  // instance, (3) the instance with the least queued work.
  int best = -1;
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    if (inst.current == request->model) {
      if (best < 0 || inst.waiting.size() < instances_[best].waiting.size()) {
        best = static_cast<int>(i);
      }
    }
  }
  if (best < 0) {
    for (size_t i = 0; i < instances_.size(); ++i) {
      const Instance& inst = instances_[i];
      bool idle = !inst.busy && inst.waiting.empty() &&
                  (inst.server == nullptr || !inst.server->HasWork());
      if (idle) {
        best = static_cast<int>(i);
        break;
      }
    }
  }
  if (best < 0) {
    size_t min_waiting = std::numeric_limits<size_t>::max();
    for (size_t i = 0; i < instances_.size(); ++i) {
      size_t load = instances_[i].waiting.size() +
                    (instances_[i].server ? instances_[i].server->waiting() +
                                                instances_[i].server->batch_size()
                                          : 0);
      if (load < min_waiting) {
        min_waiting = load;
        best = static_cast<int>(i);
      }
    }
  }
  instances_[best].waiting.push_back(request);
  Kick(best);
}

void ServerlessLlmCluster::AdmitEligible(Instance& inst) {
  if (inst.server == nullptr) {
    return;
  }
  TimePoint oldest_other = kTimeNever;
  for (const Request* r : inst.waiting) {
    if (r->model != inst.current) {
      oldest_other = std::min(oldest_other, r->arrival);
    }
  }
  for (auto it = inst.waiting.begin(); it != inst.waiting.end();) {
    if ((*it)->model == inst.current && (*it)->arrival < oldest_other) {
      inst.server->Enqueue(*it);
      it = inst.waiting.erase(it);
    } else {
      ++it;
    }
  }
}

ModelId ServerlessLlmCluster::PickNextModel(const Instance& inst) const {
  assert(!inst.waiting.empty());
  if (!config_.sjf) {
    return inst.waiting.front()->model;
  }
  // Oracle SJF: the waiting request with the smallest estimated service
  // time (prefill + all decode steps at its eventual context length).
  const Request* best = nullptr;
  Duration best_cost = std::numeric_limits<double>::infinity();
  for (const Request* r : inst.waiting) {
    const DeployedModel& dm = registry_.Get(r->model);
    Duration cost = latency_.PrefillOne(dm.spec, dm.tp, r->prompt_tokens) +
                    latency_.DecodeStep(dm.spec, dm.tp, r->prompt_tokens + r->output_tokens) *
                        static_cast<double>(r->output_tokens);
    if (r->model != inst.current) {
      cost += SwitchCost(r->model);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = r;
    }
  }
  return best->model;
}

void ServerlessLlmCluster::Kick(int i) {
  Instance& inst = instances_[i];
  if (inst.busy) {
    return;
  }
  TimePoint now = sim_.Now();
  AdmitEligible(inst);

  if (inst.server != nullptr && inst.server->HasWork()) {
    inst.busy = true;
    Duration used = inst.server->RunSlice(now, config_.chunk);
    sim_.At(now + std::max(used, 1e-6), [this, i] {
      instances_[i].busy = false;
      Kick(i);
      if (proxy_ != nullptr) {
        proxy_->OnBackendProgress();  // a slice drained; backlog shrank
      }
    });
    return;
  }
  if (inst.waiting.empty()) {
    return;
  }
  // Request-level auto-scaling: switch models only now that the previous
  // batch fully drained.
  ModelId next = PickNextModel(inst);
  if (next == inst.current && inst.server != nullptr) {
    // No switch needed: the chosen model is already resident. Admit its
    // waiters directly (the batch had drained, so fairness is moot).
    for (auto it = inst.waiting.begin(); it != inst.waiting.end();) {
      if ((*it)->model == next) {
        inst.server->Enqueue(*it);
        it = inst.waiting.erase(it);
      } else {
        ++it;
      }
    }
    Kick(i);
    return;
  }
  inst.busy = true;
  Duration cost = SwitchCost(next);
  inst.switch_latencies.push_back(cost);
  sim_.After(cost, [this, i, next] {
    Instance& inst = instances_[i];
    inst.current = next;
    inst.server = std::make_unique<ModelServer>(&registry_.Get(next), &latency_,
                                                config_.max_batch);
    inst.busy = false;
    Kick(i);
  });
}

}  // namespace aegaeon
