#include "baselines/unified.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace aegaeon {

UnifiedCluster::UnifiedCluster(UnifiedConfig config, const ModelRegistry& registry,
                               const GpuSpec& gpu_spec)
    : config_(config), registry_(registry), latency_(gpu_spec) {
  assert(config_.instances > 0);
  node_ = std::make_unique<Node>(config_.instances, gpu_spec, 2048.0 * kGiB);
  model_cache_ =
      std::make_unique<ModelCache>(config_.model_cache_bytes, config_.remote_registry_bw);
  instances_.resize(config_.instances);
  for (int i = 0; i < config_.instances; ++i) {
    Instance& inst = instances_[i];
    inst.index = i;
    inst.gpu = &node_->gpu(i);
    inst.scaler = std::make_unique<AutoScaler>(*inst.gpu, latency_, *model_cache_,
                                               EngineCostModel{}, config_.opt_level,
                                               config_.weight_buffer_bytes, 30e9);
    if (config_.opt_level >= OptLevel::kComponentReuse) {
      inst.scaler->BootBeforeServing();
    }
  }
}

double UnifiedCluster::KvBytesPerToken(ModelId model) const {
  const DeployedModel& dm = registry_.Get(model);
  return dm.spec.kv_bytes_per_token() / dm.tp;
}

RunMetrics UnifiedCluster::Run(const std::vector<ArrivalEvent>& trace) {
  requests_.clear();
  requests_.reserve(trace.size());
  for (const DeployedModel& model : registry_.models()) {
    model_cache_->Warm(model.id, model.spec.weight_bytes());
  }
  for (const ArrivalEvent& event : trace) {
    Request request;
    request.id = requests_.size();
    request.model = event.model;
    request.prompt_tokens = event.prompt_tokens;
    request.output_tokens = std::max<int64_t>(1, event.output_tokens);
    request.arrival = event.time;
    requests_.push_back(request);
    Request* r = &requests_.back();
    sim_.At(event.time, [this, r] { OnArrival(r); });
  }
  sim_.Run();
  FillDecodeWaits(requests_);
  RunMetrics metrics = FoldRequests(requests_, sim_.Now());
  metrics.sim = sim_.perf();
  for (const Instance& inst : instances_) {
    const auto& v = inst.scaler->switch_latencies();
    metrics.switch_latency_samples.insert(metrics.switch_latency_samples.end(), v.begin(),
                                          v.end());
  }
  return metrics;
}

void UnifiedCluster::OnArrival(Request* request) {
  // Least-loaded dispatch, preferring instances already hosting the model.
  int best = -1;
  size_t best_load = std::numeric_limits<size_t>::max();
  bool best_has_model = false;
  for (size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    size_t load = inst.prefill_queue.size();
    for (const DecodeBatch& batch : inst.batches) {
      load += batch.requests.size();
    }
    bool has_model = inst.scaler->current_model() == request->model;
    for (const DecodeBatch& batch : inst.batches) {
      has_model = has_model || batch.model == request->model;
    }
    if (std::make_pair(!has_model, load) < std::make_pair(!best_has_model, best_load) ||
        best < 0) {
      best = static_cast<int>(i);
      best_load = load;
      best_has_model = has_model;
    }
  }
  request->phase = RequestPhase::kQueuedPrefill;
  instances_[best].prefill_queue.push_back(request);
  Kick(best);
}

void UnifiedCluster::JoinDecode(Instance& inst, Request* request) {
  request->phase = RequestPhase::kQueuedDecode;
  for (DecodeBatch& batch : inst.batches) {
    if (batch.model == request->model &&
        batch.requests.size() < static_cast<size_t>(config_.max_decode_batch)) {
      batch.requests.push_back(request);
      return;
    }
  }
  DecodeBatch batch;
  batch.model = request->model;
  batch.requests.push_back(request);
  inst.batches.push_back(std::move(batch));
}

bool UnifiedCluster::RunPrefill(Instance& inst) {
  // Skip prefills that would exceed the KV budget (they wait for space).
  Request* request = nullptr;
  for (Request* r : inst.prefill_queue) {
    double need = static_cast<double>(r->prompt_tokens + 1) * KvBytesPerToken(r->model);
    if (inst.kv_resident_bytes + need <= config_.gpu_kv_bytes) {
      request = r;
      break;
    }
  }
  if (request == nullptr) {
    return false;
  }
  inst.prefill_queue.erase(
      std::find(inst.prefill_queue.begin(), inst.prefill_queue.end(), request));
  request->phase = RequestPhase::kPrefilling;
  inst.busy = true;

  TimePoint now = sim_.Now();
  const DeployedModel& dm = registry_.Get(request->model);
  TimePoint ready = now;
  if (inst.scaler->current_model() != dm.id) {
    ready = inst.scaler->ScaleTo(dm, now).ready_at;
  }
  Duration exec = latency_.PrefillOne(dm.spec, dm.tp, request->prompt_tokens);
  StreamSim::Span span = inst.gpu->compute_stream().Enqueue(ready, exec);
  request->prefill_start = span.start;
  request->prefill_wait = span.start - request->arrival;
  request->prefill_exec = span.end - span.start;
  inst.kv_resident_bytes +=
      static_cast<double>(request->context_tokens() + 1) * KvBytesPerToken(request->model);

  int i = inst.index;
  sim_.At(span.end, [this, i, request] {
    Instance& inst = instances_[i];
    TimePoint now = sim_.Now();
    request->generated = 1;
    request->first_token_time = now;
    request->last_progress = now;
    const SloSpec& slo = registry_.Get(request->model).slo;
    if (now <= slo.DeadlineFor(request->arrival, 0)) {
      request->tokens_met++;
    }
    if (request->finished()) {
      request->completion = now;
      request->phase = RequestPhase::kDone;
      inst.kv_resident_bytes -= static_cast<double>(request->context_tokens()) *
                                KvBytesPerToken(request->model);
    } else {
      JoinDecode(inst, request);
    }
    inst.busy = false;
    Kick(i);
  });
  return true;
}

bool UnifiedCluster::RunDecode(Instance& inst) {
  // Round-robin over model batches; decode one slice of the next batch
  // with work, switching the resident model if needed.
  const size_t n = inst.batches.size();
  for (size_t probe = 0; probe < n; ++probe) {
    size_t index = (inst.rr + probe) % n;
    DecodeBatch& batch = inst.batches[index];
    if (batch.requests.empty()) {
      continue;
    }
    inst.rr = (index + 1) % n;
    inst.busy = true;
    TimePoint now = sim_.Now();
    const DeployedModel& dm = registry_.Get(batch.model);
    TimePoint ready = now;
    if (inst.scaler->current_model() != dm.id) {
      ready = inst.scaler->ScaleTo(dm, now).ready_at;
    }
    Duration step = latency_.DecodeStep(dm.spec, dm.tp, batch.TotalContextTokens());
    int64_t max_remaining = 0;
    for (const Request* r : batch.requests) {
      max_remaining = std::max(max_remaining, r->remaining_tokens());
    }
    int64_t steps =
        std::max<int64_t>(1, static_cast<int64_t>(config_.decode_slice / step));
    steps = std::min(steps, max_remaining);
    StreamSim::Span span = inst.gpu->compute_stream().Enqueue(ready, steps * step);

    int i = inst.index;
    std::vector<Request*> active = batch.requests;
    sim_.At(span.end, [this, i, index, active, span, step, steps] {
      Instance& inst = instances_[i];
      for (Request* r : active) {
        const SloSpec& slo = registry_.Get(r->model).slo;
        int64_t steps_r = std::min<int64_t>(steps, r->remaining_tokens());
        for (int64_t j = 0; j < steps_r; ++j) {
          TimePoint token_time = span.start + static_cast<double>(j + 1) * step;
          if (token_time <= slo.DeadlineFor(r->arrival, r->generated + j)) {
            r->tokens_met++;
          }
        }
        r->generated += steps_r;
        r->decode_exec += static_cast<double>(steps_r) * step;
        inst.kv_resident_bytes += static_cast<double>(steps_r) * KvBytesPerToken(r->model);
        if (r->finished()) {
          r->completion = span.start + static_cast<double>(steps_r) * step;
          r->phase = RequestPhase::kDone;
          inst.kv_resident_bytes -= static_cast<double>(r->context_tokens()) *
                                    KvBytesPerToken(r->model);
        }
      }
      if (index < inst.batches.size()) {
        auto& reqs = inst.batches[index].requests;
        reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                                  [](Request* r) { return r->finished(); }),
                   reqs.end());
      }
      inst.batches.erase(std::remove_if(inst.batches.begin(), inst.batches.end(),
                                        [](const DecodeBatch& b) { return b.requests.empty(); }),
                         inst.batches.end());
      inst.busy = false;
      Kick(i);
    });
    return true;
  }
  return false;
}

void UnifiedCluster::Kick(int i) {
  Instance& inst = instances_[i];
  if (inst.busy) {
    return;
  }
  bool started = false;
  if (config_.policy == UnifiedPolicy::kPrefillFirst) {
    started = RunPrefill(inst);
    if (!started) {
      started = RunDecode(inst);
    }
  } else {
    started = RunDecode(inst);
    if (!started) {
      started = RunPrefill(inst);
    }
  }
  if (!started && !inst.prefill_queue.empty()) {
    // Prefills blocked on KV capacity: back off briefly, then retry as
    // decoding frees space. Marked busy so arrivals don't pile up retries.
    inst.busy = true;
    sim_.After(0.05, [this, i] {
      instances_[i].busy = false;
      Kick(i);
    });
  }
}

}  // namespace aegaeon
