// A single-model vLLM-style server with continuous batching, used as the
// building block of the baseline systems (ServerlessLLM, MuxServe, and
// dedicated serving). It prefills waiting requests one at a time, decodes
// the running batch step by step, and admits newcomers between steps
// (continuous batching, Orca-style).
//
// Execution is *sliced*: callers hand the server the GPU for up to a
// quantum of time; the server runs whole prefills/steps and reports the
// time actually consumed, recording per-token SLO outcomes on the requests.

#ifndef AEGAEON_BASELINES_MODEL_SERVER_H_
#define AEGAEON_BASELINES_MODEL_SERVER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/request.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

class ModelServer {
 public:
  ModelServer(const DeployedModel* model, const LatencyModel* latency, int max_batch);

  // Adds a request to the waiting queue (it will be prefilled when the
  // server next holds the GPU and batch capacity allows).
  void Enqueue(Request* request);

  bool HasWork() const { return !waiting_.empty() || !batch_.empty(); }
  size_t waiting() const { return waiting_.size(); }
  size_t batch_size() const { return batch_.size(); }
  const DeployedModel* model() const { return model_; }

  // Estimated service time remaining across queue and batch (for SJF and
  // load balancing). Uses oracle output lengths, like ServerlessLLM+.
  Duration EstimatedWork() const;

  // Runs on the GPU from `start` for at most `quantum` seconds, with all
  // execution times multiplied by `slowdown` (spatial-sharing penalty).
  // Prefills and decode steps are atomic: the first operation always runs
  // even if it overshoots the quantum. Returns the time consumed (0 only
  // if there is no work).
  Duration RunSlice(TimePoint start, Duration quantum, double slowdown = 1.0);

 private:
  // Records one generated token for `r` at `t`.
  void EmitToken(Request* request, TimePoint t);
  void FinishRequest(Request* request, TimePoint t);

  const DeployedModel* model_;
  const LatencyModel* latency_;
  int max_batch_;
  std::deque<Request*> waiting_;
  std::vector<Request*> batch_;
};

}  // namespace aegaeon

#endif  // AEGAEON_BASELINES_MODEL_SERVER_H_
