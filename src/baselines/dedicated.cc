#include "baselines/dedicated.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

DedicatedCluster::DedicatedCluster(DedicatedConfig config, const ModelRegistry& registry,
                                   const GpuSpec& gpu_spec)
    : config_(config), registry_(registry), latency_(gpu_spec) {
  servers_.reserve(registry_.size());
  for (const DeployedModel& model : registry_.models()) {
    servers_.push_back(std::make_unique<ModelServer>(&model, &latency_, config_.max_batch));
  }
  busy_.assign(registry_.size(), false);
  busy_time_.assign(registry_.size(), 0.0);
}

RunMetrics DedicatedCluster::Run(const std::vector<ArrivalEvent>& trace) {
  requests_.clear();
  requests_.reserve(trace.size());
  for (const ArrivalEvent& event : trace) {
    Request request;
    request.id = requests_.size();
    request.model = event.model;
    request.prompt_tokens = event.prompt_tokens;
    request.output_tokens = std::max<int64_t>(1, event.output_tokens);
    request.arrival = event.time;
    requests_.push_back(request);
    Request* r = &requests_.back();
    sim_.At(event.time, [this, r] {
      servers_[r->model]->Enqueue(r);
      Kick(r->model);
    });
  }
  sim_.Run();
  FillDecodeWaits(requests_);
  RunMetrics metrics = FoldRequests(requests_, sim_.Now());
  metrics.sim = sim_.perf();
  return metrics;
}

void DedicatedCluster::Kick(int g) {
  if (busy_[g] || !servers_[g]->HasWork()) {
    return;
  }
  busy_[g] = true;
  TimePoint now = sim_.Now();
  Duration used = servers_[g]->RunSlice(now, config_.chunk);
  busy_time_[g] += used;
  sim_.At(now + std::max(used, 1e-6), [this, g] {
    busy_[g] = false;
    Kick(g);
  });
}

}  // namespace aegaeon
