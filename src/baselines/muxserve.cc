#include "baselines/muxserve.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

MuxServeCluster::MuxServeCluster(MuxServeConfig config, const ModelRegistry& registry,
                                 const GpuSpec& gpu_spec)
    : config_(config), registry_(registry), latency_(gpu_spec) {
  assert(config_.gpus > 0);
  gpus_.resize(config_.gpus);
  gpu_of_model_.assign(registry_.size(), -1);
  server_of_model_.assign(registry_.size(), -1);

  // Greedy first-fit placement subject to GPU memory.
  std::vector<double> used(config_.gpus, config_.activation_reserve_bytes);
  for (const DeployedModel& model : registry_.models()) {
    double need = model.spec.weight_bytes() + config_.kv_reserve_bytes;
    for (int g = 0; g < config_.gpus; ++g) {
      if (used[g] + need <= gpu_spec.vram_bytes) {
        used[g] += need;
        gpu_of_model_[model.id] = g;
        server_of_model_[model.id] = static_cast<int>(gpus_[g].servers.size());
        gpus_[g].servers.push_back(
            std::make_unique<ModelServer>(&model, &latency_, config_.max_batch));
        placed_models_++;
        break;
      }
    }
    // No fit anywhere: the placement optimizer refuses the model.
  }
}

int MuxServeCluster::max_models_per_gpu() const {
  size_t max_count = 0;
  for (const Gpu& gpu : gpus_) {
    max_count = std::max(max_count, gpu.servers.size());
  }
  return static_cast<int>(max_count);
}

RunMetrics MuxServeCluster::Run(const std::vector<ArrivalEvent>& trace) {
  requests_.clear();
  requests_.reserve(trace.size());
  for (const ArrivalEvent& event : trace) {
    Request request;
    request.id = requests_.size();
    request.model = event.model;
    request.prompt_tokens = event.prompt_tokens;
    request.output_tokens = std::max<int64_t>(1, event.output_tokens);
    request.arrival = event.time;
    requests_.push_back(request);
    Request* r = &requests_.back();
    // Requests to refused models are accepted but never scheduled: all of
    // their tokens miss (this is what caps MuxServe's model count).
    if (gpu_of_model_[event.model] >= 0) {
      sim_.At(event.time, [this, r] { OnArrival(r); });
    }
  }
  sim_.Run();
  FillDecodeWaits(requests_);
  RunMetrics metrics = FoldRequests(requests_, sim_.Now());
  metrics.sim = sim_.perf();
  return metrics;
}

void MuxServeCluster::OnArrival(Request* request) {
  int g = gpu_of_model_[request->model];
  int s = server_of_model_[request->model];
  gpus_[g].servers[s]->Enqueue(request);
  Kick(g);
}

void MuxServeCluster::Kick(int g) {
  Gpu& gpu = gpus_[g];
  if (gpu.busy) {
    return;
  }
  // Temporal multiplexing: rotate through resident models with work, one
  // quantum each, with no switching cost (all weights stay resident).
  const size_t n = gpu.servers.size();
  for (size_t probe = 0; probe < n; ++probe) {
    size_t index = (gpu.rr_index + probe) % n;
    ModelServer& server = *gpu.servers[index];
    if (!server.HasWork()) {
      continue;
    }
    gpu.busy = true;
    gpu.rr_index = (index + 1) % n;
    TimePoint now = sim_.Now();
    Duration used = server.RunSlice(now, config_.quantum);
    sim_.At(now + std::max(used, 1e-6), [this, g] {
      gpus_[g].busy = false;
      Kick(g);
    });
    return;
  }
}

}  // namespace aegaeon
