#include "baselines/model_server.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

ModelServer::ModelServer(const DeployedModel* model, const LatencyModel* latency, int max_batch)
    : model_(model), latency_(latency), max_batch_(max_batch) {
  assert(model_ != nullptr && latency_ != nullptr && max_batch_ > 0);
}

void ModelServer::Enqueue(Request* request) {
  assert(request->model == model_->id);
  waiting_.push_back(request);
}

Duration ModelServer::EstimatedWork() const {
  Duration total = 0.0;
  auto estimate = [this](const Request* r) {
    Duration prefill =
        r->generated == 0 ? latency_->PrefillOne(model_->spec, model_->tp, r->prompt_tokens) : 0.0;
    Duration step = latency_->DecodeStep(model_->spec, model_->tp, r->context_tokens());
    return prefill + step * static_cast<double>(r->remaining_tokens());
  };
  for (const Request* r : waiting_) {
    total += estimate(r);
  }
  for (const Request* r : batch_) {
    total += estimate(r);
  }
  return total;
}

void ModelServer::EmitToken(Request* request, TimePoint t) {
  const SloSpec& slo = model_->slo;
  if (t <= slo.DeadlineFor(request->arrival, request->generated)) {
    request->tokens_met++;
  }
  if (request->generated == 0) {
    request->first_token_time = t;
    request->last_progress = t;
  }
  request->generated++;
}

void ModelServer::FinishRequest(Request* request, TimePoint t) {
  request->completion = t;
  request->phase = RequestPhase::kDone;
}

Duration ModelServer::RunSlice(TimePoint start, Duration quantum, double slowdown) {
  assert(slowdown >= 1.0);
  TimePoint t = start;
  Duration used = 0.0;

  while (used < quantum) {
    // Continuous batching: admit waiting requests while capacity remains.
    while (static_cast<int>(batch_.size()) < max_batch_ && !waiting_.empty()) {
      batch_.push_back(waiting_.front());
      waiting_.pop_front();
    }
    if (batch_.empty()) {
      break;
    }

    // Prefill takes precedence (a batch member with no tokens yet).
    Request* to_prefill = nullptr;
    for (Request* r : batch_) {
      if (r->generated == 0) {
        to_prefill = r;
        break;
      }
    }
    if (to_prefill != nullptr) {
      Duration dur =
          latency_->PrefillOne(model_->spec, model_->tp, to_prefill->prompt_tokens) * slowdown;
      to_prefill->prefill_start = t;
      to_prefill->prefill_wait = t - to_prefill->arrival;
      to_prefill->prefill_exec = dur;
      t += dur;
      used += dur;
      EmitToken(to_prefill, t);
      if (to_prefill->finished()) {
        FinishRequest(to_prefill, t);
        batch_.erase(std::find(batch_.begin(), batch_.end(), to_prefill));
      }
      continue;
    }

    // One decode step for the whole batch.
    int64_t ctx = 0;
    for (const Request* r : batch_) {
      ctx += r->context_tokens();
    }
    Duration step = latency_->DecodeStep(model_->spec, model_->tp, ctx) * slowdown;
    t += step;
    used += step;
    for (auto it = batch_.begin(); it != batch_.end();) {
      Request* r = *it;
      EmitToken(r, t);
      r->decode_exec += step;
      if (r->finished()) {
        FinishRequest(r, t);
        it = batch_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return used;
}

}  // namespace aegaeon
