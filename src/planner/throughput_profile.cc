#include "planner/throughput_profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/cluster.h"
#include "model/latency_model.h"

namespace aegaeon {

std::string ModelClassOf(const std::string& model_name) {
  size_t hash = model_name.find('#');
  return hash == std::string::npos ? model_name : model_name.substr(0, hash);
}

AegaeonConfig PlannerConfigForGpu(const GpuSpec& gpu, int prefill_instances,
                                  int decode_instances) {
  AegaeonConfig config;
  config.prefill_instances = prefill_instances;
  config.decode_instances = decode_instances;
  // The defaults (40 GiB weights + 30 GiB KV) assume an 80 GB part. On
  // smaller GPUs shrink both regions to fit VRAM at the same ~7:4 split the
  // Figure 17 A10 configuration uses, and drop prefetch — there is no
  // headroom for a second resident model.
  if (gpu.vram_bytes < 72.0 * kGiB) {
    config.weight_buffer_bytes = 0.625 * gpu.vram_bytes;
    config.gpu_kv_bytes = 0.30 * gpu.vram_bytes;
    config.prefetch = false;
  }
  return config;
}

const ProfileEntry* ThroughputProfile::Find(const std::string& gpu,
                                            const std::string& model_class) const {
  for (const ProfileEntry& entry : entries) {
    if (entry.gpu == gpu && entry.model_class == model_class) {
      return &entry;
    }
  }
  return nullptr;
}

double ThroughputProfile::Tput(const std::string& gpu, const std::string& model_class,
                               int bucket) const {
  const ProfileEntry* entry = Find(gpu, model_class);
  if (entry == nullptr || !entry->fits) {
    return 0.0;
  }
  return entry->tput[static_cast<size_t>(bucket)];
}

double CalibratePoint(const GpuSpec& gpu, const ModelSpec& spec, int tp, const SloSpec& slo,
                      int64_t prompt_tokens, int64_t output_tokens,
                      const ProfilerOptions& options) {
  // Near-idle gate: a lone request on an otherwise idle pair must meet its
  // own deadlines, otherwise no rate can (prefill exceeds the TTFT budget,
  // or a single decode step exceeds the TBT budget).
  LatencyModel latency(gpu);
  if (latency.PrefillOne(spec, tp, prompt_tokens) > slo.ttft) {
    return 0.0;
  }
  if (latency.DecodeStep(spec, tp, prompt_tokens + output_tokens) > slo.tbt) {
    return 0.0;
  }

  // Saturated capacity: inject the whole batch of requests at t=0 and
  // measure completions over the makespan. This is the ceiling of the
  // service rate; whether a given arrival rate under it also meets the
  // SLOs is the queueing layer's question (planner/queueing.h), and the
  // closed loop (planner/planner.h) certifies the answer on the simulator.
  ModelRegistry registry;
  registry.Add(spec, tp, slo);
  std::vector<ArrivalEvent> trace;
  int requests = std::max(8, options.requests_per_run);
  trace.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    ArrivalEvent event;
    event.time = 0.0;
    event.model = 0;
    event.prompt_tokens = prompt_tokens;
    event.output_tokens = output_tokens;
    trace.push_back(event);
  }
  AegaeonConfig config = PlannerConfigForGpu(gpu, 1, 1);
  config.instance_tp = tp;
  AegaeonCluster cluster(config, registry, gpu);
  RunMetrics metrics = cluster.Run(trace);
  if (metrics.completed_requests == 0 || metrics.horizon <= 0.0) {
    return 0.0;
  }
  double pair_rate = static_cast<double>(metrics.completed_requests) / metrics.horizon;
  // The pair holds 2 instances of `tp` GPUs each; report per-GPU capacity.
  return pair_rate / (2.0 * tp);
}

ThroughputProfile ProfileThroughput(const std::vector<GpuSpec>& gpus,
                                    const ModelRegistry& registry, const WorkloadMatrix& matrix,
                                    const ProfilerOptions& options) {
  ThroughputProfile profile;
  profile.grid = matrix.grid;
  profile.target_attainment = options.target_attainment;

  // Model classes present in the registry, with their representative spec
  // and the strictest SLO among members (plans must hold for the tightest
  // tenant of the class).
  struct ClassInfo {
    ModelSpec spec;
    int tp = 1;
    SloSpec slo;
    std::vector<double> bucket_rate;  // class-aggregated load per bucket
  };
  std::map<std::string, ClassInfo> classes;
  for (const DeployedModel& model : registry.models()) {
    std::string key = ModelClassOf(model.spec.name);
    auto [it, inserted] = classes.try_emplace(key);
    ClassInfo& info = it->second;
    if (inserted) {
      info.spec = model.spec;
      info.spec.name = key;
      info.tp = model.tp;
      info.slo = model.slo;
      info.bucket_rate.assign(static_cast<size_t>(matrix.grid.buckets()), 0.0);
    } else {
      info.slo.ttft = std::min(info.slo.ttft, model.slo.ttft);
      info.slo.tbt = std::min(info.slo.tbt, model.slo.tbt);
    }
    if (model.id < matrix.model_bucket_rate.size()) {
      const std::vector<double>& rates = matrix.model_bucket_rate[model.id];
      for (size_t b = 0; b < rates.size(); ++b) {
        info.bucket_rate[b] += rates[b];
      }
    }
  }

  for (const GpuSpec& gpu : gpus) {
    AegaeonConfig sizing = PlannerConfigForGpu(gpu, 1, 1);
    for (const auto& [key, info] : classes) {
      ProfileEntry entry;
      entry.gpu = gpu.name;
      entry.model_class = key;
      entry.fits = info.spec.weight_bytes() / info.tp <= sizing.weight_buffer_bytes;
      entry.tput.assign(static_cast<size_t>(matrix.grid.buckets()), ProfileEntry::kUnprofiled);
      if (entry.fits) {
        for (int bucket = 0; bucket < matrix.grid.buckets(); ++bucket) {
          if (info.bucket_rate[static_cast<size_t>(bucket)] <= 0.0) {
            continue;  // no load here; leave unprofiled
          }
          entry.tput[static_cast<size_t>(bucket)] =
              CalibratePoint(gpu, info.spec, info.tp, info.slo, matrix.PromptRepOf(bucket),
                             matrix.OutputRepOf(bucket), options);
        }
      }
      profile.entries.push_back(std::move(entry));
    }
  }
  return profile;
}

// --- JSON cache ------------------------------------------------------------
//
// The writer emits a fixed schema and the reader parses exactly that schema
// (no external JSON dependency). Doubles are printed with %.17g, so a cache
// round trip feeds the solver bit-identical numbers.

namespace {

void WriteDouble(std::ostream& os, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os << buffer;
}

void WriteEdgeArray(std::ostream& os, const std::vector<int64_t>& edges) {
  os << '[';
  for (size_t i = 0; i < edges.size(); ++i) {
    os << (i == 0 ? "" : ",") << edges[i];
  }
  os << ']';
}

// Scanner over the emitted schema: locates "key": after `from` and parses
// the value. Returns std::string::npos on failure.
size_t FindKey(const std::string& text, const std::string& key, size_t from) {
  std::string needle = "\"" + key + "\":";
  size_t at = text.find(needle, from);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool ParseDoubleArray(const std::string& text, size_t at, std::vector<double>& out,
                      size_t* end) {
  out.clear();
  size_t open = text.find('[', at);
  size_t close = text.find(']', open);
  if (open == std::string::npos || close == std::string::npos) {
    return false;
  }
  std::string body = text.substr(open + 1, close - open - 1);
  std::istringstream is(body);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (token.find_first_not_of(" \t\n") == std::string::npos) {
      continue;
    }
    out.push_back(std::strtod(token.c_str(), nullptr));
  }
  *end = close + 1;
  return true;
}

bool ParseString(const std::string& text, size_t at, std::string& out) {
  size_t open = text.find('"', at);
  size_t close = text.find('"', open + 1);
  if (open == std::string::npos || close == std::string::npos) {
    return false;
  }
  out = text.substr(open + 1, close - open - 1);
  return true;
}

}  // namespace

void WriteProfileJson(std::ostream& os, const ThroughputProfile& profile) {
  os << "{\n  \"version\": 1,\n  \"target_attainment\": ";
  WriteDouble(os, profile.target_attainment);
  os << ",\n  \"input_edges\": ";
  WriteEdgeArray(os, profile.grid.input_edges);
  os << ",\n  \"output_edges\": ";
  WriteEdgeArray(os, profile.grid.output_edges);
  os << ",\n  \"entries\": [\n";
  for (size_t i = 0; i < profile.entries.size(); ++i) {
    const ProfileEntry& entry = profile.entries[i];
    os << "    {\"gpu\": \"" << entry.gpu << "\", \"class\": \"" << entry.model_class
       << "\", \"fits\": " << (entry.fits ? "true" : "false") << ", \"tput\": [";
    for (size_t b = 0; b < entry.tput.size(); ++b) {
      os << (b == 0 ? "" : ",");
      WriteDouble(os, entry.tput[b]);
    }
    os << "]}" << (i + 1 < profile.entries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

bool ReadProfileJson(std::istream& is, ThroughputProfile& profile) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string text = buffer.str();
  profile = ThroughputProfile{};

  size_t at = FindKey(text, "version", 0);
  if (at == std::string::npos || std::strtol(text.c_str() + at, nullptr, 10) != 1) {
    return false;
  }
  at = FindKey(text, "target_attainment", 0);
  if (at == std::string::npos) {
    return false;
  }
  profile.target_attainment = std::strtod(text.c_str() + at, nullptr);

  std::vector<double> edges;
  size_t end = 0;
  at = FindKey(text, "input_edges", 0);
  if (at == std::string::npos || !ParseDoubleArray(text, at, edges, &end)) {
    return false;
  }
  for (double edge : edges) {
    profile.grid.input_edges.push_back(static_cast<int64_t>(edge));
  }
  at = FindKey(text, "output_edges", 0);
  if (at == std::string::npos || !ParseDoubleArray(text, at, edges, &end)) {
    return false;
  }
  for (double edge : edges) {
    profile.grid.output_edges.push_back(static_cast<int64_t>(edge));
  }

  size_t cursor = FindKey(text, "entries", 0);
  if (cursor == std::string::npos) {
    return false;
  }
  while ((at = FindKey(text, "gpu", cursor)) != std::string::npos) {
    ProfileEntry entry;
    if (!ParseString(text, at, entry.gpu)) {
      return false;
    }
    at = FindKey(text, "class", at);
    if (at == std::string::npos || !ParseString(text, at, entry.model_class)) {
      return false;
    }
    at = FindKey(text, "fits", at);
    if (at == std::string::npos) {
      return false;
    }
    at = text.find_first_not_of(" \t\n", at);
    entry.fits = at != std::string::npos && text.compare(at, 4, "true") == 0;
    at = FindKey(text, "tput", at);
    if (at == std::string::npos || !ParseDoubleArray(text, at, entry.tput, &end)) {
      return false;
    }
    if (entry.tput.size() != static_cast<size_t>(profile.grid.buckets())) {
      return false;
    }
    profile.entries.push_back(std::move(entry));
    cursor = end;
  }
  return true;
}

bool SaveProfileJson(const std::string& path, const ThroughputProfile& profile) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  WriteProfileJson(file, profile);
  return static_cast<bool>(file);
}

bool LoadProfileJson(const std::string& path, const BucketGrid& expected_grid,
                     ThroughputProfile& profile) {
  std::ifstream file(path);
  if (!file) {
    return false;
  }
  if (!ReadProfileJson(file, profile)) {
    return false;
  }
  return profile.grid == expected_grid;
}

}  // namespace aegaeon
