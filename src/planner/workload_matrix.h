// Workload profiler (Melange-style): reduces an arrival trace to a
// distribution matrix of request rates over (input-size x output-size)
// buckets, kept per model so the solver can respect model-fit constraints
// (a 13B model cannot be placed on a 24 GB GPU no matter how short its
// requests are).
//
// The bucket grid is deliberately coarse — a handful of geometric bands per
// axis — because every occupied (model-class, bucket) cell is calibrated by
// a short simulation (planner/throughput_profile.h); a Melange-resolution
// grid would multiply calibration cost without changing pool decisions.

#ifndef AEGAEON_PLANNER_WORKLOAD_MATRIX_H_
#define AEGAEON_PLANNER_WORKLOAD_MATRIX_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/request.h"

namespace aegaeon {

// Geometric (input x output) token-size bands. Bucket i covers
// (edge[i-1], edge[i]] with an implicit lower edge of 0; the last edge is
// the clamp ceiling, so every request falls in exactly one bucket.
struct BucketGrid {
  std::vector<int64_t> input_edges;
  std::vector<int64_t> output_edges;

  // {64, 256, 1024, 8192} x {64, 256, 1024, 4096}: four geometric bands per
  // axis, ceilings matching the Dataset clamps.
  static BucketGrid Default();

  int inputs() const { return static_cast<int>(input_edges.size()); }
  int outputs() const { return static_cast<int>(output_edges.size()); }
  int buckets() const { return inputs() * outputs(); }

  int InputBucket(int64_t tokens) const;
  int OutputBucket(int64_t tokens) const;
  // Flattened bucket index of a request: input_bucket * outputs + output_bucket.
  int BucketOf(int64_t prompt_tokens, int64_t output_tokens) const;

  // Representative lengths for calibration/prediction: the geometric
  // midpoint of the band, which tracks the mass of log-normal length
  // distributions better than the arithmetic midpoint.
  int64_t InputRep(int input_bucket) const;
  int64_t OutputRep(int output_bucket) const;

  bool operator==(const BucketGrid& other) const {
    return input_edges == other.input_edges && output_edges == other.output_edges;
  }
};

// The profiled distribution: per-model request rates over the grid, plus
// the aggregates the solver and CLI consume.
struct WorkloadMatrix {
  BucketGrid grid;
  double horizon = 0.0;     // seconds of trace the rates are averaged over
  uint64_t requests = 0;
  double total_rate = 0.0;  // req/s across all models and buckets

  // rate[model][bucket] in req/s (flattened bucket index).
  std::vector<std::vector<double>> model_bucket_rate;
  // Aggregates: rate[bucket] summed over models, rate[model] over buckets.
  std::vector<double> bucket_rate;
  std::vector<double> model_rate;

  // Mean observed lengths per bucket (over all models); fall back to the
  // grid representative when a bucket is empty. Used for calibration so the
  // profile reflects the trace, not just the grid geometry.
  std::vector<double> bucket_mean_prompt;
  std::vector<double> bucket_mean_output;

  double Rate(int model, int bucket) const { return model_bucket_rate[model][bucket]; }
  int64_t PromptRepOf(int bucket) const;
  int64_t OutputRepOf(int bucket) const;
};

// Profiles `trace` over [0, horizon). `model_count` sizes the per-model
// axis (models with no arrivals get all-zero rows).
WorkloadMatrix BuildWorkloadMatrix(const std::vector<ArrivalEvent>& trace, double horizon,
                                   size_t model_count, const BucketGrid& grid = BucketGrid::Default());

// CSV dump (aegaeon_sim --dump-workload-matrix): one row per (model,
// input-band, output-band) with nonzero rate, preceded by a header. Plans
// are reproducible from the CLI alone given this file and the GPU profile.
void WriteMatrixCsv(std::ostream& os, const WorkloadMatrix& matrix);

}  // namespace aegaeon

#endif  // AEGAEON_PLANNER_WORKLOAD_MATRIX_H_
