// Pool-composition solver: the Melange formulation (workload matrix x
// per-GPU throughput profile x $/hr) solved by deterministic greedy
// construction plus local search over integer GPU counts — no external ILP
// dependency. Feasibility of a candidate composition is checked by packing
// workload slices into per-GPU-type subpools under a utilization ceiling
// and passing each subpool through the M/G/c queueing predictions
// (planner/queueing.h).

#ifndef AEGAEON_PLANNER_SOLVER_H_
#define AEGAEON_PLANNER_SOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "planner/queueing.h"
#include "planner/throughput_profile.h"
#include "planner/workload_matrix.h"

namespace aegaeon {

// A purchasable GPU type. Cost comes from spec.cost_per_hour; a zero
// (unset) cost falls back to 1.0 so a cost-less run minimizes GPU count.
struct GpuOption {
  GpuSpec spec;
  int max_count = 256;

  double CostPerHour() const {
    return spec.cost_per_hour > 0.0 ? spec.cost_per_hour : 1.0;
  }
};

struct SolverOptions {
  // Utilization ceiling per subpool: the queueing headroom reserved for
  // burstiness and model switching.
  double rho_max = 0.70;
  // Each (model, bucket) cell splits into this many equal slices so load
  // can fractionally span GPU types (Melange's slice factor).
  int slice_factor = 4;
  // Closed-loop load inflation per option (Planner::Solve feedback);
  // empty means 1.0 everywhere. Corrects load-bound SLO misses.
  std::vector<double> capacity_scale;
  // Closed-loop per-option GPU floors; empty means no floor. Corrects
  // switch-bound misses (low utilization but too few instances to keep the
  // working set of models resident) that load inflation cannot reach.
  std::vector<int> min_count;
  // Construction/local-search iteration cap.
  int max_iters = 400;
  // Decode quota (for the queueing switch-share term); matches
  // AegaeonConfig::qmax.
  Duration qmax = 4.0;
};

// A (model, bucket) load share routed to one subpool.
struct PlannedSlice {
  ModelId model = kInvalidModel;
  int bucket = 0;
  double rate = 0.0;
};

struct SubpoolPlan {
  int option = -1;  // index into the solver's GpuOption list
  int gpus = 0;
  int prefill = 0;
  int decode = 0;
  double assigned_rate = 0.0;        // req/s routed here (uninflated)
  double utilization = 0.0;          // load / capacity at rho_max scaling
  SubpoolPrediction prediction;
  std::vector<PlannedSlice> slices;  // merged per (model, bucket)
};

struct PoolPlan {
  bool feasible = false;
  std::string infeasible_reason;
  std::vector<int> counts;  // per option, index-aligned with the option list
  double cost_per_hour = 0.0;
  std::vector<SubpoolPlan> subpools;  // options with counts > 0, by option index
  // Dominated-option audit: "<name> dominated by <name>".
  std::vector<std::string> eliminated;
};

class Solver {
 public:
  Solver(const ModelRegistry& registry, const ThroughputProfile& profile,
         std::vector<GpuOption> options);

  // Deterministic: identical inputs produce an identical plan.
  PoolPlan Solve(const WorkloadMatrix& matrix, const SolverOptions& options) const;

  // Packs the workload into a fixed composition: no queueing veto, no
  // growth, overflow spills onto the least-loaded capable subpool. Returns
  // feasible=false only when a loaded cell has no capable option with a
  // positive count. This powers the closed loop's replay-driven descent —
  // candidate compositions below the analytic feasibility frontier are
  // packed here and judged by the simulator instead of the queueing model.
  PoolPlan Repack(const WorkloadMatrix& matrix, const SolverOptions& options,
                  const std::vector<int>& counts) const;

  const std::vector<GpuOption>& options() const { return options_; }

 private:
  struct Pack;  // packing result (internal)

  const ModelRegistry& registry_;
  const ThroughputProfile& profile_;
  std::vector<GpuOption> options_;
};

}  // namespace aegaeon

#endif  // AEGAEON_PLANNER_SOLVER_H_
