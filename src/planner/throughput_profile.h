// Throughput profiler: measures, for each (GPU preset, model class,
// request-size bucket), the maximum per-GPU request rate an Aegaeon
// instance pair sustains while meeting the token-level SLO — the `tputs`
// matrix of the Melange formulation, produced by short calibration
// simulations instead of hardware profiling.
//
// A calibration point runs a minimal Aegaeon cell (1 prefill + 1 decode
// instance) serving a single model whose requests all have the bucket's
// representative lengths, injected as one saturating burst; the measured
// completions-per-second over the makespan is the pair's service capacity,
// divided by the pair's GPU count to give req/s per GPU. Whether a given
// arrival rate below that capacity also meets the token-level SLOs is
// deliberately NOT answered here — that is the queueing layer's question
// (planner/queueing.h, which also reintroduces the model switching a
// single-model calibration cannot see), and the closed loop
// (planner/planner.h) certifies the answer against the real simulator.
//
// Profiles are cached as JSON keyed by (GPU, class, grid); calibration is
// deterministic, so a cache hit and a fresh run produce bit-identical
// solver inputs.

#ifndef AEGAEON_PLANNER_THROUGHPUT_PROFILE_H_
#define AEGAEON_PLANNER_THROUGHPUT_PROFILE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "planner/workload_matrix.h"

namespace aegaeon {

// Model "class": registry models dedupe to their preset family (the name
// before the '#i' uniquifier) — same weights, same latency profile.
std::string ModelClassOf(const std::string& model_name);

// Aegaeon cell configuration sized for `gpu`: the defaults assume an 80 GB
// part, so smaller GPUs scale the weight buffer / GPU-KV regions down to
// fit VRAM (mirroring the Figure 17 A10 configuration) and disable
// prefetch when there is no headroom for a second resident model.
AegaeonConfig PlannerConfigForGpu(const GpuSpec& gpu, int prefill_instances,
                                  int decode_instances);

struct ProfileEntry {
  std::string gpu;          // GpuSpec::name
  std::string model_class;  // ModelClassOf(model name)
  bool fits = false;        // weight shard fits the GPU's weight buffer
  // Max req/s per GPU for each flattened bucket; kUnprofiled for buckets
  // the profiler was not asked about (no load there).
  std::vector<double> tput;

  static constexpr double kUnprofiled = -1.0;
};

struct ThroughputProfile {
  BucketGrid grid;
  double target_attainment = 0.0;
  std::vector<ProfileEntry> entries;  // sorted by (gpu, model_class)

  const ProfileEntry* Find(const std::string& gpu, const std::string& model_class) const;
  // Throughput for a (gpu, class, bucket); 0 when the class does not fit
  // the GPU, kUnprofiled when the point was never calibrated.
  double Tput(const std::string& gpu, const std::string& model_class, int bucket) const;
};

struct ProfilerOptions {
  // Recorded into the profile (cache key): the attainment bar the produced
  // plan is later certified against.
  double target_attainment = 0.90;
  // Size of the saturating burst per calibration point. Larger smooths the
  // prefill warm-up out of the capacity estimate; 48 keeps a full 4x4 grid
  // calibration under a second.
  int requests_per_run = 48;
};

// Calibrates every (gpu, model class, bucket) combination that carries
// load in `matrix`. Model classes and their SLOs come from `registry`.
ThroughputProfile ProfileThroughput(const std::vector<GpuSpec>& gpus,
                                    const ModelRegistry& registry, const WorkloadMatrix& matrix,
                                    const ProfilerOptions& options);

// One calibration point (exposed for tests): saturated req/s per GPU of a
// 1-prefill + 1-decode pair of `gpu` serving `spec` at TP degree `tp` with
// all requests at (prompt_tokens, output_tokens). Returns 0 when even a
// lone request on an idle pair misses its deadlines.
double CalibratePoint(const GpuSpec& gpu, const ModelSpec& spec, int tp, const SloSpec& slo,
                      int64_t prompt_tokens, int64_t output_tokens,
                      const ProfilerOptions& options);

// JSON cache. Save writes the full profile; Load returns false on missing
// file, schema mismatch, or a grid that differs from `expected_grid` (the
// caller then re-profiles). Doubles round-trip exactly.
bool SaveProfileJson(const std::string& path, const ThroughputProfile& profile);
bool LoadProfileJson(const std::string& path, const BucketGrid& expected_grid,
                     ThroughputProfile& profile);
void WriteProfileJson(std::ostream& os, const ThroughputProfile& profile);
bool ReadProfileJson(std::istream& is, ThroughputProfile& profile);

}  // namespace aegaeon

#endif  // AEGAEON_PLANNER_THROUGHPUT_PROFILE_H_
