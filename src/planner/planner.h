// The capacity-planning closed loop. `Planner::Solve()` chains the three
// planner layers — workload matrix, throughput profile, cost solver — and
// then certifies the proposal against the real simulator: the trace is
// deterministically routed onto the proposed subpools, each subpool replays
// as its own AegaeonCluster, and the merged token-level SLO attainment
// either certifies the plan or feeds a per-GPU-type capacity correction
// back into the solver for another round.
//
// Determinism: every stage is a pure function of (trace, registry, options)
// — the profiler seeds per calibration point, the solver iterates in index
// order, and routing uses deterministic weighted round-robin — so repeated
// runs (and profile-cache hits) produce bit-identical certified plans.

#ifndef AEGAEON_PLANNER_PLANNER_H_
#define AEGAEON_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "core/request.h"
#include "model/registry.h"
#include "planner/solver.h"
#include "planner/throughput_profile.h"
#include "planner/workload_matrix.h"

namespace aegaeon {

struct PlannerOptions {
  BucketGrid grid = BucketGrid::Default();
  ProfilerOptions profiler;
  SolverOptions solver;
  // Certification bar: merged replay attainment, and per-subpool attainment
  // for subpools with enough requests to judge.
  double target_attainment = 0.90;
  uint64_t min_subpool_requests = 30;
  int max_rounds = 5;
  // Optional JSON profile cache path; empty = always profile fresh.
  std::string profile_cache;
};

// Replay outcome of one subpool in one round.
struct SubpoolOutcome {
  int option = -1;
  std::string gpu;
  int gpus = 0;
  uint64_t requests = 0;
  double attainment = 0.0;
};

struct PlannerRound {
  PoolPlan plan;
  RunMetrics merged;
  std::vector<SubpoolOutcome> outcomes;
  bool certified = false;
};

struct CertifiedPlan {
  bool certified = false;
  PoolPlan plan;       // the final (certified or last-attempted) proposal
  RunMetrics replay;   // its simulator replay
  WorkloadMatrix matrix;
  ThroughputProfile profile;
  bool profile_from_cache = false;
  std::vector<PlannerRound> rounds;
};

class Planner {
 public:
  Planner(const ModelRegistry& registry, std::vector<GpuOption> options);

  // Profiles `trace` over [0, horizon), solves, and runs the certification
  // loop. Returns certified = false when the solver reports infeasibility
  // or max_rounds replays still miss the target (the last round's plan and
  // replay are returned either way).
  CertifiedPlan Solve(const std::vector<ArrivalEvent>& trace, double horizon,
                      const PlannerOptions& options) const;

  // Deterministic weighted routing of `trace` onto `plan.subpools`: per
  // (model, bucket) cell, arrivals round-robin across subpools proportional
  // to the planned slice rates. Entry i of the result is subpool i's trace.
  std::vector<std::vector<ArrivalEvent>> RouteTrace(const PoolPlan& plan,
                                                    const std::vector<ArrivalEvent>& trace,
                                                    const BucketGrid& grid) const;

  // Replays `plan` on the simulator: routes the trace, runs one
  // AegaeonCluster per subpool (3:5 prefill:decode split, VRAM-fitted
  // config), merges metrics. `outcomes` (optional) receives per-subpool
  // attainment.
  RunMetrics Replay(const PoolPlan& plan, const std::vector<ArrivalEvent>& trace,
                    const BucketGrid& grid, std::vector<SubpoolOutcome>* outcomes) const;

  // Replays the whole trace on a homogeneous pool of `gpus` GPUs of `spec`
  // (the comparison baseline for the planner's heterogeneous plans).
  static RunMetrics ReplayHomogeneous(const ModelRegistry& registry, const GpuSpec& spec,
                                      int gpus, const std::vector<ArrivalEvent>& trace);

  // Smallest homogeneous pool of `spec` whose replay meets `target`
  // attainment, found by doubling + bisection. Returns -1 when some model
  // cannot fit the GPU or no pool up to `max_gpus` suffices.
  static int MinHomogeneousGpus(const ModelRegistry& registry, const GpuSpec& spec,
                                const std::vector<ArrivalEvent>& trace, double target,
                                int max_gpus);

  const std::vector<GpuOption>& options() const { return options_; }

 private:
  const ModelRegistry& registry_;
  std::vector<GpuOption> options_;
};

}  // namespace aegaeon

#endif  // AEGAEON_PLANNER_PLANNER_H_
