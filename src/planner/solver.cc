#include "planner/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace aegaeon {
namespace {

// One slice_factor-th of a (model, bucket) cell's rate.
struct SliceUnit {
  ModelId model = kInvalidModel;
  int bucket = 0;
  double rate = 0.0;
  double sort_load = 0.0;  // load on its best option, for best-fit-decreasing
};

std::string FormatBucket(const BucketGrid& grid, int bucket) {
  int ib = bucket / grid.outputs();
  int ob = bucket % grid.outputs();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(in<=%lld, out<=%lld)",
                static_cast<long long>(grid.input_edges[ib]),
                static_cast<long long>(grid.output_edges[ob]));
  return std::string(buf);
}

// tput[o][m * buckets + b]: req/s per GPU; <= 0 means unusable (model does
// not fit the GPU, or the SLO is unattainable even near idle).
std::vector<std::vector<double>> BuildTput(const ModelRegistry& registry,
                                           const ThroughputProfile& profile,
                                           const std::vector<GpuOption>& options,
                                           int num_models, int buckets) {
  const int num_options = static_cast<int>(options.size());
  std::vector<std::vector<double>> tput(num_options,
                                        std::vector<double>(num_models * buckets, 0.0));
  for (int o = 0; o < num_options; ++o) {
    for (int m = 0; m < num_models; ++m) {
      const std::string cls = ModelClassOf(registry.Get(m).spec.name);
      const ProfileEntry* entry = profile.Find(options[o].spec.name, cls);
      if (entry == nullptr || !entry->fits) {
        continue;
      }
      for (int b = 0; b < buckets; ++b) {
        double t = b < static_cast<int>(entry->tput.size()) ? entry->tput[b] : 0.0;
        tput[o][m * buckets + b] = t > 0.0 ? t : 0.0;
      }
    }
  }
  return tput;
}

}  // namespace

// Result of packing all slices into a fixed composition.
struct Solver::Pack {
  bool ok = false;
  int grow_hint = -1;          // option to grow when !ok; -1 = nothing helps
  std::string fail_reason;     // set when no growth can help
  double cost = 0.0;
  std::vector<double> used;    // load per option, in GPU units
  std::vector<SubpoolPlan> subpools;
};

Solver::Solver(const ModelRegistry& registry, const ThroughputProfile& profile,
               std::vector<GpuOption> options)
    : registry_(registry), profile_(profile), options_(std::move(options)) {}

PoolPlan Solver::Solve(const WorkloadMatrix& matrix, const SolverOptions& opts) const {
  PoolPlan plan;
  const int num_options = static_cast<int>(options_.size());
  plan.counts.assign(num_options, 0);
  if (num_options == 0) {
    plan.infeasible_reason = "no GPU options supplied";
    return plan;
  }
  const int buckets = matrix.grid.buckets();
  const int num_models = static_cast<int>(
      std::min(registry_.size(), matrix.model_bucket_rate.size()));

  std::vector<double> scale(num_options, 1.0);
  for (int o = 0; o < num_options && o < static_cast<int>(opts.capacity_scale.size()); ++o) {
    if (opts.capacity_scale[o] > 0.0) {
      scale[o] = opts.capacity_scale[o];
    }
  }
  // Per-option floors (closed-loop feedback): a floor of 1 still means 2 —
  // a subpool needs at least one prefill and one decode GPU.
  std::vector<int> floor_count(num_options, 0);
  for (int o = 0; o < num_options && o < static_cast<int>(opts.min_count.size()); ++o) {
    if (opts.min_count[o] > 0) {
      floor_count[o] = std::min(options_[o].max_count, std::max(2, opts.min_count[o]));
    }
  }

  std::vector<std::vector<double>> tput =
      BuildTput(registry_, profile_, options_, num_models, buckets);

  // Dominance elimination: option A is dominated by a no-more-expensive
  // option B that is at least as capable on every loaded cell (and at least
  // as stockable). Dominated options are frozen at count 0.
  std::vector<bool> usable(num_options, true);
  for (int a = 0; a < num_options; ++a) {
    for (int b = 0; b < num_options; ++b) {
      if (a == b || !usable[a] || !usable[b]) {
        continue;
      }
      if (options_[b].CostPerHour() > options_[a].CostPerHour() ||
          options_[b].max_count < options_[a].max_count) {
        continue;
      }
      bool covers = true;
      bool strictly_better = options_[b].CostPerHour() < options_[a].CostPerHour();
      for (int m = 0; m < num_models && covers; ++m) {
        for (int bk = 0; bk < buckets; ++bk) {
          if (matrix.Rate(m, bk) <= 0.0) {
            continue;
          }
          double ta = tput[a][m * buckets + bk];
          double tb = tput[b][m * buckets + bk];
          if (ta > 0.0 && tb < ta) {
            covers = false;
            break;
          }
          if (tb > ta) {
            strictly_better = true;
          }
        }
      }
      if (covers && strictly_better) {
        usable[a] = false;
        plan.eliminated.push_back(options_[a].spec.name + " dominated by " +
                                  options_[b].spec.name);
      }
    }
  }

  // Up-front fit check: a model with load must fit somewhere.
  for (int m = 0; m < num_models; ++m) {
    if (matrix.model_rate[m] <= 0.0) {
      continue;
    }
    bool fits_any = false;
    for (int o = 0; o < num_options && !fits_any; ++o) {
      if (!usable[o]) {
        continue;
      }
      for (int b = 0; b < buckets; ++b) {
        if (matrix.Rate(m, b) > 0.0 && tput[o][m * buckets + b] > 0.0) {
          fits_any = true;
          break;
        }
      }
    }
    if (!fits_any) {
      const DeployedModel& model = registry_.Get(m);
      plan.infeasible_reason = "model " + model.spec.name + " (class " +
                               ModelClassOf(model.spec.name) +
                               ") is unservable on every GPU option";
      return plan;
    }
  }

  // Slice the loaded cells.
  const int slice_factor = std::max(1, opts.slice_factor);
  std::vector<SliceUnit> slices;
  for (int m = 0; m < num_models; ++m) {
    for (int b = 0; b < buckets; ++b) {
      double rate = matrix.Rate(m, b);
      if (rate <= 0.0) {
        continue;
      }
      SliceUnit unit;
      unit.model = static_cast<ModelId>(m);
      unit.bucket = b;
      unit.rate = rate / slice_factor;
      double best = std::numeric_limits<double>::infinity();
      for (int o = 0; o < num_options; ++o) {
        double t = tput[o][m * buckets + b];
        if (usable[o] && t > 0.0) {
          best = std::min(best, unit.rate * scale[o] / t);
        }
      }
      unit.sort_load = std::isfinite(best) ? best : 0.0;
      for (int s = 0; s < slice_factor; ++s) {
        slices.push_back(unit);
      }
    }
  }
  if (slices.empty()) {
    plan.feasible = true;
    return plan;
  }
  std::stable_sort(slices.begin(), slices.end(), [](const SliceUnit& x, const SliceUnit& y) {
    if (x.sort_load != y.sort_load) {
      return x.sort_load > y.sort_load;  // big pieces first
    }
    if (x.model != y.model) {
      return x.model < y.model;
    }
    return x.bucket < y.bucket;
  });

  const double rho_max = std::min(0.95, std::max(0.05, opts.rho_max));

  // Packs `counts`; best-fit-decreasing with a load-balance objective, then
  // the queueing feasibility check per subpool.
  auto pack = [&](const std::vector<int>& counts) {
    Pack result;
    result.used.assign(num_options, 0.0);
    // cell_rate[o][m * buckets + b]: real (uninflated) rate routed to o.
    std::vector<std::vector<double>> cell_rate(
        num_options, std::vector<double>(num_models * buckets, 0.0));
    for (const SliceUnit& unit : slices) {
      const int cell = static_cast<int>(unit.model) * buckets + unit.bucket;
      // Cheapest capable option with room (cost per unit of served rate).
      // Concentrating — rather than balancing — matters twice over: spill
      // happens only when the efficient pool is genuinely full, and slices
      // of one model gravitate to one subpool, keeping the per-subpool
      // model working set (and thus switching) small.
      int best = -1;
      double best_cost = std::numeric_limits<double>::infinity();
      for (int o = 0; o < num_options; ++o) {
        if (counts[o] <= 0 || tput[o][cell] <= 0.0) {
          continue;
        }
        double load = unit.rate * scale[o] / tput[o][cell];
        double util = (result.used[o] + load) / counts[o];
        double cost_per_rate = options_[o].CostPerHour() / tput[o][cell];
        if (util <= rho_max && cost_per_rate < best_cost) {
          best_cost = cost_per_rate;
          best = o;
        }
      }
      if (best < 0) {
        // Nothing has room: grow the cheapest-per-capacity capable option.
        double best_cost = std::numeric_limits<double>::infinity();
        for (int o = 0; o < num_options; ++o) {
          if (!usable[o] || tput[o][cell] <= 0.0 || counts[o] >= options_[o].max_count) {
            continue;
          }
          double cost_per_rate = options_[o].CostPerHour() / tput[o][cell];
          if (cost_per_rate < best_cost) {
            best_cost = cost_per_rate;
            result.grow_hint = o;
          }
        }
        if (result.grow_hint < 0) {
          bool capable = false;
          for (int o = 0; o < num_options && !capable; ++o) {
            capable = usable[o] && tput[o][cell] > 0.0;
          }
          const DeployedModel& model = registry_.Get(unit.model);
          result.fail_reason =
              "bucket " + FormatBucket(matrix.grid, unit.bucket) + " of model " +
              model.spec.name +
              (capable ? " exceeds every option's max_count"
                       : " is unservable on every GPU option");
        }
        return result;
      }
      result.used[best] += unit.rate * scale[best] / tput[best][cell];
      cell_rate[best][cell] += unit.rate;
    }

    // Queueing feasibility per subpool.
    for (int o = 0; o < num_options; ++o) {
      if (counts[o] <= 0) {
        continue;
      }
      SubpoolPlan sub;
      sub.option = o;
      sub.gpus = counts[o];
      SplitPool(counts[o], &sub.prefill, &sub.decode);
      sub.utilization = result.used[o] / counts[o];
      std::vector<AssignedSlice> assigned;
      int distinct_models = 0;
      for (int m = 0; m < num_models; ++m) {
        bool any = false;
        for (int b = 0; b < buckets; ++b) {
          double rate = cell_rate[o][m * buckets + b];
          if (rate <= 0.0) {
            continue;
          }
          any = true;
          sub.assigned_rate += rate;
          sub.slices.push_back(PlannedSlice{static_cast<ModelId>(m), b, rate});
          const DeployedModel& model = registry_.Get(m);
          AssignedSlice slice;
          slice.spec = &model.spec;
          slice.tp = model.tp;
          slice.rate = rate * scale[o];  // predict against inflated load
          slice.prompt_tokens = matrix.PromptRepOf(b);
          slice.output_tokens = matrix.OutputRepOf(b);
          slice.slo = model.slo;
          assigned.push_back(slice);
        }
        if (any) {
          ++distinct_models;
        }
      }
      sub.prediction = PredictSubpool(options_[o].spec, counts[o], assigned,
                                      sub.utilization, distinct_models, opts.qmax);
      if (!sub.prediction.MeetsSlo()) {
        if (counts[o] < options_[o].max_count) {
          result.grow_hint = o;
        } else {
          result.fail_reason = "subpool " + options_[o].spec.name +
                               " misses its SLO prediction at max_count";
        }
        return result;
      }
      result.subpools.push_back(std::move(sub));
    }
    result.ok = true;
    for (int o = 0; o < num_options; ++o) {
      result.cost += counts[o] * options_[o].CostPerHour();
    }
    return result;
  };

  auto grow = [&](std::vector<int>& counts, int o) {
    counts[o] = counts[o] == 0 ? 2 : counts[o] + 1;
  };

  // Greedy initialization: route each cell to its cheapest capable option
  // and right-size the counts for rho_max utilization.
  std::vector<double> demand(num_options, 0.0);
  for (int m = 0; m < num_models; ++m) {
    for (int b = 0; b < buckets; ++b) {
      double rate = matrix.Rate(m, b);
      if (rate <= 0.0) {
        continue;
      }
      int best = -1;
      double best_cost = std::numeric_limits<double>::infinity();
      for (int o = 0; o < num_options; ++o) {
        double t = tput[o][m * buckets + b];
        if (!usable[o] || t <= 0.0) {
          continue;
        }
        double cost_per_rate = options_[o].CostPerHour() / t;
        if (cost_per_rate < best_cost) {
          best_cost = cost_per_rate;
          best = o;
        }
      }
      if (best >= 0) {
        demand[best] += rate * scale[best] / tput[best][m * buckets + b];
      }
    }
  }
  std::vector<int> counts(num_options, 0);
  for (int o = 0; o < num_options; ++o) {
    if (demand[o] <= 0.0 && floor_count[o] <= 0) {
      continue;
    }
    counts[o] = std::max(2, static_cast<int>(std::ceil(demand[o] / rho_max)));
    counts[o] = std::max(counts[o], floor_count[o]);
    counts[o] = std::min(counts[o], options_[o].max_count);
  }

  int budget = std::max(16, opts.max_iters);
  Pack current = pack(counts);
  --budget;
  while (!current.ok && budget > 0) {
    if (current.grow_hint < 0) {
      plan.infeasible_reason = current.fail_reason.empty()
                                   ? "no feasible pool within max_count limits"
                                   : current.fail_reason;
      return plan;
    }
    grow(counts, current.grow_hint);
    current = pack(counts);
    --budget;
  }
  if (!current.ok) {
    plan.infeasible_reason = "solver iteration budget exhausted before feasibility";
    return plan;
  }

  // Local search, first-improvement: close a subpool outright, shrink one
  // option, or shift a GPU from one option to another when that lowers
  // cost. A count of 1 is invalid (a subpool needs prefill + decode), so
  // decrements from 2 drop to 0. The close move matters because shrinking
  // an uneconomic pool one GPU at a time requires every intermediate
  // composition to pack feasibly, which often is not the case.
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (int o = 0; o < num_options && !improved && budget > 0; ++o) {
      if (counts[o] <= 2 || floor_count[o] > 0) {
        continue;
      }
      std::vector<int> close = counts;
      close[o] = 0;
      Pack attempt = pack(close);
      --budget;
      if (attempt.ok && attempt.cost < current.cost) {
        counts = close;
        current = std::move(attempt);
        improved = true;
      }
    }
    for (int o = 0; o < num_options && !improved && budget > 0; ++o) {
      if (counts[o] <= 0) {
        continue;
      }
      std::vector<int> trial = counts;
      trial[o] = trial[o] == 2 ? 0 : trial[o] - 1;
      if (trial[o] < floor_count[o]) {
        continue;
      }
      Pack attempt = pack(trial);
      --budget;
      if (attempt.ok && attempt.cost < current.cost) {
        counts = trial;
        current = std::move(attempt);
        improved = true;
        break;
      }
      for (int p = 0; p < num_options && !improved && budget > 0; ++p) {
        if (p == o || !usable[p]) {
          continue;
        }
        for (int inc = 1; inc <= 2 && !improved && budget > 0; ++inc) {
          std::vector<int> swap = trial;
          swap[p] = swap[p] == 0 ? std::max(2, inc) : swap[p] + inc;
          if (swap[p] > options_[p].max_count) {
            continue;
          }
          double cost = 0.0;
          for (int q = 0; q < num_options; ++q) {
            cost += swap[q] * options_[q].CostPerHour();
          }
          if (cost >= current.cost) {
            continue;
          }
          Pack attempt2 = pack(swap);
          --budget;
          if (attempt2.ok && attempt2.cost < current.cost) {
            counts = swap;
            current = std::move(attempt2);
            improved = true;
          }
        }
      }
    }
  }

  plan.feasible = true;
  plan.counts = counts;
  plan.cost_per_hour = current.cost;
  plan.subpools = std::move(current.subpools);
  return plan;
}

PoolPlan Solver::Repack(const WorkloadMatrix& matrix, const SolverOptions& opts,
                        const std::vector<int>& fixed) const {
  PoolPlan plan;
  const int num_options = static_cast<int>(options_.size());
  plan.counts.assign(num_options, 0);
  for (int o = 0; o < num_options && o < static_cast<int>(fixed.size()); ++o) {
    plan.counts[o] = std::max(0, fixed[o]);
  }
  if (num_options == 0) {
    plan.infeasible_reason = "no GPU options supplied";
    return plan;
  }
  const int buckets = matrix.grid.buckets();
  const int num_models = static_cast<int>(
      std::min(registry_.size(), matrix.model_bucket_rate.size()));

  std::vector<double> scale(num_options, 1.0);
  for (int o = 0; o < num_options && o < static_cast<int>(opts.capacity_scale.size()); ++o) {
    if (opts.capacity_scale[o] > 0.0) {
      scale[o] = opts.capacity_scale[o];
    }
  }
  std::vector<std::vector<double>> tput =
      BuildTput(registry_, profile_, options_, num_models, buckets);
  const double rho_max = std::min(0.95, std::max(0.05, opts.rho_max));
  const int slice_factor = std::max(1, opts.slice_factor);

  std::vector<SliceUnit> slices;
  for (int m = 0; m < num_models; ++m) {
    for (int b = 0; b < buckets; ++b) {
      double rate = matrix.Rate(m, b);
      if (rate <= 0.0) {
        continue;
      }
      SliceUnit unit;
      unit.model = static_cast<ModelId>(m);
      unit.bucket = b;
      unit.rate = rate / slice_factor;
      double best = std::numeric_limits<double>::infinity();
      for (int o = 0; o < num_options; ++o) {
        double t = tput[o][m * buckets + b];
        if (plan.counts[o] > 0 && t > 0.0) {
          best = std::min(best, unit.rate * scale[o] / t);
        }
      }
      unit.sort_load = std::isfinite(best) ? best : 0.0;
      for (int s = 0; s < slice_factor; ++s) {
        slices.push_back(unit);
      }
    }
  }
  std::stable_sort(slices.begin(), slices.end(), [](const SliceUnit& x, const SliceUnit& y) {
    if (x.sort_load != y.sort_load) {
      return x.sort_load > y.sort_load;
    }
    if (x.model != y.model) {
      return x.model < y.model;
    }
    return x.bucket < y.bucket;
  });

  // Same cheapest-capable-first placement as Solve's packer, but with a
  // spill path instead of a veto: when nothing has headroom, the slice goes
  // to the least-overloaded capable subpool and the replay decides.
  std::vector<double> used(num_options, 0.0);
  std::vector<std::vector<double>> cell_rate(
      num_options, std::vector<double>(num_models * buckets, 0.0));
  for (const SliceUnit& unit : slices) {
    const int cell = static_cast<int>(unit.model) * buckets + unit.bucket;
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    int spill = -1;
    double spill_util = std::numeric_limits<double>::infinity();
    for (int o = 0; o < num_options; ++o) {
      if (plan.counts[o] <= 0 || tput[o][cell] <= 0.0) {
        continue;
      }
      double load = unit.rate * scale[o] / tput[o][cell];
      double util = (used[o] + load) / plan.counts[o];
      double cost_per_rate = options_[o].CostPerHour() / tput[o][cell];
      if (util <= rho_max && cost_per_rate < best_cost) {
        best_cost = cost_per_rate;
        best = o;
      }
      if (util < spill_util) {
        spill_util = util;
        spill = o;
      }
    }
    int target = best >= 0 ? best : spill;
    if (target < 0) {
      const DeployedModel& model = registry_.Get(unit.model);
      plan.infeasible_reason = "bucket " + FormatBucket(matrix.grid, unit.bucket) +
                               " of model " + model.spec.name +
                               " is unservable on the fixed composition";
      return plan;
    }
    used[target] += unit.rate * scale[target] / tput[target][cell];
    cell_rate[target][cell] += unit.rate;
  }

  for (int o = 0; o < num_options; ++o) {
    if (plan.counts[o] <= 0) {
      continue;
    }
    SubpoolPlan sub;
    sub.option = o;
    sub.gpus = plan.counts[o];
    SplitPool(sub.gpus, &sub.prefill, &sub.decode);
    sub.utilization = used[o] / plan.counts[o];
    std::vector<AssignedSlice> assigned;
    int distinct_models = 0;
    for (int m = 0; m < num_models; ++m) {
      bool any = false;
      for (int b = 0; b < buckets; ++b) {
        double rate = cell_rate[o][m * buckets + b];
        if (rate <= 0.0) {
          continue;
        }
        any = true;
        sub.assigned_rate += rate;
        sub.slices.push_back(PlannedSlice{static_cast<ModelId>(m), b, rate});
        const DeployedModel& model = registry_.Get(m);
        AssignedSlice slice;
        slice.spec = &model.spec;
        slice.tp = model.tp;
        slice.rate = rate * scale[o];
        slice.prompt_tokens = matrix.PromptRepOf(b);
        slice.output_tokens = matrix.OutputRepOf(b);
        slice.slo = model.slo;
        assigned.push_back(slice);
      }
      if (any) {
        ++distinct_models;
      }
    }
    sub.prediction = PredictSubpool(options_[o].spec, sub.gpus, assigned,
                                    sub.utilization, distinct_models, opts.qmax);
    plan.subpools.push_back(std::move(sub));
  }
  plan.feasible = true;
  for (int o = 0; o < num_options; ++o) {
    plan.cost_per_hour += plan.counts[o] * options_[o].CostPerHour();
  }
  return plan;
}

}  // namespace aegaeon
