#include "planner/planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/cluster.h"
#include "planner/queueing.h"

namespace aegaeon {
namespace {

// Does the cached profile cover every (option, loaded class, loaded bucket)
// combination this solve needs?
bool ProfileCovers(const ThroughputProfile& profile, const std::vector<GpuOption>& options,
                   const ModelRegistry& registry, const WorkloadMatrix& matrix,
                   double target_attainment) {
  if (!(profile.grid == matrix.grid) ||
      profile.target_attainment != target_attainment) {
    return false;
  }
  const int buckets = matrix.grid.buckets();
  const int num_models = static_cast<int>(
      std::min(registry.size(), matrix.model_bucket_rate.size()));
  for (const GpuOption& option : options) {
    for (int m = 0; m < num_models; ++m) {
      if (matrix.model_rate[m] <= 0.0) {
        continue;
      }
      const ProfileEntry* entry =
          profile.Find(option.spec.name, ModelClassOf(registry.Get(m).spec.name));
      if (entry == nullptr) {
        return false;
      }
      if (!entry->fits) {
        continue;  // nothing to calibrate for a model that cannot load
      }
      for (int b = 0; b < buckets; ++b) {
        if (matrix.Rate(m, b) > 0.0 && entry->tput[b] == ProfileEntry::kUnprofiled) {
          return false;
        }
      }
    }
  }
  return true;
}

// Cluster config for a subpool replay: VRAM-fitted instance sizing plus the
// TP degree of the models it hosts (markets mix TP only across subpools).
AegaeonConfig SubpoolConfig(const GpuSpec& spec, const ModelRegistry& registry,
                            const SubpoolPlan& sub) {
  AegaeonConfig config = PlannerConfigForGpu(spec, sub.prefill, sub.decode);
  int tp = 1;
  for (const PlannedSlice& slice : sub.slices) {
    tp = std::max(tp, registry.Get(slice.model).tp);
  }
  config.instance_tp = tp;
  return config;
}

}  // namespace

Planner::Planner(const ModelRegistry& registry, std::vector<GpuOption> options)
    : registry_(registry), options_(std::move(options)) {}

std::vector<std::vector<ArrivalEvent>> Planner::RouteTrace(
    const PoolPlan& plan, const std::vector<ArrivalEvent>& trace,
    const BucketGrid& grid) const {
  const int num_subpools = static_cast<int>(plan.subpools.size());
  std::vector<std::vector<ArrivalEvent>> routed(num_subpools);
  if (num_subpools == 0) {
    return routed;
  }
  const int buckets = grid.buckets();

  // weights[m * buckets + b][i]: planned rate of cell (m, b) on subpool i.
  size_t num_models = registry_.size();
  std::vector<std::vector<double>> weights(num_models * buckets);
  for (int i = 0; i < num_subpools; ++i) {
    for (const PlannedSlice& slice : plan.subpools[i].slices) {
      size_t cell = static_cast<size_t>(slice.model) * buckets + slice.bucket;
      if (weights[cell].empty()) {
        weights[cell].assign(num_subpools, 0.0);
      }
      weights[cell][i] += slice.rate;
    }
  }
  // Fallback subpool per model for cells the plan never saw (possible only
  // if the routed trace differs from the profiled one): the subpool with
  // the most planned rate for that model, ties to the lowest index.
  std::vector<int> fallback(num_models, 0);
  for (size_t m = 0; m < num_models; ++m) {
    double best = -1.0;
    for (int i = 0; i < num_subpools; ++i) {
      double rate = 0.0;
      for (const PlannedSlice& slice : plan.subpools[i].slices) {
        if (slice.model == static_cast<ModelId>(m)) {
          rate += slice.rate;
        }
      }
      if (rate > best) {
        best = rate;
        fallback[m] = i;
      }
    }
  }

  // Deterministic weighted round-robin per cell: each arrival goes to the
  // subpool furthest behind its planned share.
  std::vector<std::vector<uint64_t>> routed_count(num_models * buckets);
  for (const ArrivalEvent& event : trace) {
    if (event.model >= num_models) {
      continue;
    }
    size_t cell = static_cast<size_t>(event.model) * buckets +
                  grid.BucketOf(event.prompt_tokens, event.output_tokens);
    int target = fallback[event.model];
    if (!weights[cell].empty()) {
      if (routed_count[cell].empty()) {
        routed_count[cell].assign(num_subpools, 0);
      }
      uint64_t total = 0;
      for (uint64_t c : routed_count[cell]) {
        total += c;
      }
      double total_weight = 0.0;
      for (double w : weights[cell]) {
        total_weight += w;
      }
      double best_deficit = -std::numeric_limits<double>::infinity();
      for (int i = 0; i < num_subpools; ++i) {
        if (weights[cell][i] <= 0.0) {
          continue;
        }
        double share = weights[cell][i] / total_weight;
        double deficit = share * static_cast<double>(total + 1) -
                         static_cast<double>(routed_count[cell][i]);
        if (deficit > best_deficit) {
          best_deficit = deficit;
          target = i;
        }
      }
      ++routed_count[cell][target];
    }
    routed[target].push_back(event);
  }
  return routed;
}

RunMetrics Planner::Replay(const PoolPlan& plan, const std::vector<ArrivalEvent>& trace,
                           const BucketGrid& grid,
                           std::vector<SubpoolOutcome>* outcomes) const {
  RunMetrics merged;
  if (outcomes != nullptr) {
    outcomes->clear();
  }
  std::vector<std::vector<ArrivalEvent>> routed = RouteTrace(plan, trace, grid);
  for (size_t i = 0; i < plan.subpools.size(); ++i) {
    const SubpoolPlan& sub = plan.subpools[i];
    const GpuSpec& spec = options_[sub.option].spec;
    AegaeonCluster cluster(SubpoolConfig(spec, registry_, sub), registry_, spec);
    RunMetrics metrics = cluster.Run(routed[i]);
    if (outcomes != nullptr) {
      SubpoolOutcome outcome;
      outcome.option = sub.option;
      outcome.gpu = spec.name;
      outcome.gpus = sub.gpus;
      outcome.requests = routed[i].size();
      outcome.attainment = metrics.SloAttainment();
      outcomes->push_back(outcome);
    }
    merged.MergeFrom(metrics);
  }
  merged.pool_cost_per_hour = plan.cost_per_hour;
  return merged;
}

CertifiedPlan Planner::Solve(const std::vector<ArrivalEvent>& trace, double horizon,
                             const PlannerOptions& options) const {
  CertifiedPlan result;
  result.matrix =
      BuildWorkloadMatrix(trace, horizon, registry_.size(), options.grid);

  // Profile: cache hit when the stored grid/target/coverage all match.
  ProfilerOptions profiler = options.profiler;
  profiler.target_attainment = options.target_attainment;
  std::vector<GpuSpec> gpus;
  for (const GpuOption& option : options_) {
    gpus.push_back(option.spec);
  }
  bool have_profile = false;
  if (!options.profile_cache.empty()) {
    ThroughputProfile cached;
    if (LoadProfileJson(options.profile_cache, options.grid, cached) &&
        ProfileCovers(cached, options_, registry_, result.matrix,
                      profiler.target_attainment)) {
      result.profile = std::move(cached);
      result.profile_from_cache = true;
      have_profile = true;
    }
  }
  if (!have_profile) {
    result.profile = ProfileThroughput(gpus, registry_, result.matrix, profiler);
    if (!options.profile_cache.empty()) {
      SaveProfileJson(options.profile_cache, result.profile);
    }
  }

  Solver solver(registry_, result.profile, options_);
  SolverOptions solver_options = options.solver;
  solver_options.capacity_scale.assign(options_.size(), 1.0);
  solver_options.min_count.assign(options_.size(), 0);

  // Certification is on fleet-wide attainment — the same bar the
  // homogeneous baseline is held to. The per-subpool term is only a
  // masking guard: a big healthy subpool must not hide one that is
  // drastically failing its own requests.
  auto certifies = [&](const RunMetrics& merged,
                       const std::vector<SubpoolOutcome>& outcomes) {
    bool met = merged.SloAttainment() >= options.target_attainment;
    for (const SubpoolOutcome& outcome : outcomes) {
      if (outcome.requests >= options.min_subpool_requests &&
          outcome.attainment < options.target_attainment - 0.05) {
        met = false;
      }
    }
    return met;
  };

  // Post-certification descent: the solver's queueing predictions are
  // deliberately conservative, so a certified plan usually carries slack.
  // Remove one GPU at a time — most expensive type first — re-pack the
  // workload for the reduced composition, and keep every removal the
  // simulator still certifies. This walks below the analytic feasibility
  // frontier with the replay as the only judge — the same oracle power the
  // homogeneous baseline gets from its replay bisection, so the final
  // hetero-vs-homogeneous comparison is like for like.
  auto trim = [&](CertifiedPlan& certified, const Solver& solver,
                  const SolverOptions& solver_options) {
    auto pool_cost = [&](const std::vector<int>& counts) {
      double cost = 0.0;
      for (size_t o = 0; o < options_.size(); ++o) {
        cost += counts[o] * options_[o].CostPerHour();
      }
      return cost;
    };
    // Each trial costs one full replay; the budget bounds the descent.
    int budget = 64;
    auto attempt = [&](const std::vector<int>& counts) {
      int total = 0;
      for (int c : counts) {
        total += c;
      }
      if (total == 0 || budget <= 0 ||
          pool_cost(counts) >= certified.plan.cost_per_hour) {
        return false;
      }
      PoolPlan trial = solver.Repack(result.matrix, solver_options, counts);
      if (!trial.feasible) {
        return false;
      }
      --budget;
      std::vector<SubpoolOutcome> outcomes;
      RunMetrics merged = Replay(trial, trace, options.grid, &outcomes);
      if (!certifies(merged, outcomes)) {
        if (std::getenv("AEGAEON_PLAN_DEBUG") != nullptr) {
          std::fprintf(stderr, "trim reject [");
          for (int c : counts) std::fprintf(stderr, " %d", c);
          std::fprintf(stderr, " ] overall %.4f;", merged.SloAttainment());
          for (const SubpoolOutcome& oc : outcomes) {
            std::fprintf(stderr, " %s x%d: %.4f (%llu req)", oc.gpu.c_str(), oc.gpus,
                         oc.attainment, static_cast<unsigned long long>(oc.requests));
          }
          std::fprintf(stderr, "\n");
        }
        return false;
      }
      PlannerRound record;
      record.plan = trial;
      record.merged = merged;
      record.outcomes = outcomes;
      record.certified = true;
      certified.plan = std::move(trial);
      certified.replay = std::move(merged);
      certified.rounds.push_back(std::move(record));
      return true;
    };
    bool improved = true;
    while (improved && budget > 0) {
      improved = false;
      std::vector<int> order;
      for (int o = 0; o < static_cast<int>(options_.size()); ++o) {
        if (certified.plan.counts[o] > 0) {
          order.push_back(o);
        }
      }
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return options_[a].CostPerHour() > options_[b].CostPerHour();
      });
      // Pure shrink, most expensive type first. A subpool needs one
      // prefill + one decode GPU, so a count of 2 closes to 0.
      for (int o : order) {
        std::vector<int> counts = certified.plan.counts;
        counts[o] = counts[o] <= 2 ? 0 : counts[o] - 1;
        if (attempt(counts)) {
          improved = true;
          break;
        }
      }
      if (improved) {
        continue;
      }
      // Close a whole subpool. A gradual shrink can wedge — the repack
      // spills ever more load onto the shrinking subpool until it misses —
      // while dropping the type entirely re-routes its slices to the
      // survivors, which often absorb them whole (a marginal subpool's
      // switching floor can cost more attainment than its capacity adds).
      for (int o : order) {
        if (certified.plan.counts[o] <= 2) {
          continue;  // the shrink move above already tried closing this
        }
        std::vector<int> counts = certified.plan.counts;
        counts[o] = 0;
        if (attempt(counts)) {
          improved = true;
          break;
        }
      }
      if (improved) {
        continue;
      }
      // Swap: trade one expensive GPU for one cheaper GPU elsewhere. The
      // attempt() cost guard keeps only strictly cost-decreasing trades,
      // and each accepted trade re-opens the shrink moves above.
      for (int o : order) {
        for (int p : order) {
          if (p == o || options_[p].CostPerHour() >= options_[o].CostPerHour()) {
            continue;
          }
          std::vector<int> counts = certified.plan.counts;
          counts[o] = counts[o] <= 2 ? 0 : counts[o] - 1;
          counts[p] += 1;
          if (counts[p] <= options_[p].max_count && attempt(counts)) {
            improved = true;
            break;
          }
        }
        if (improved) {
          break;
        }
      }
      if (improved) {
        continue;
      }
      // Replace: close subpool o and grow another type by the largest
      // strictly-cheaper amount in one step. One-for-one swaps cannot cross
      // this gap when the replacement needs more units than the closed pool
      // had (3 H800s may take 4 H20s to replace); growing maximally gives
      // the replay its best shot, and the shrink moves re-open afterwards
      // to trim any surplus.
      for (int o : order) {
        double freed = certified.plan.counts[o] * options_[o].CostPerHour();
        for (int p = 0; p < static_cast<int>(options_.size()); ++p) {
          if (p == o) {
            continue;
          }
          int grow = static_cast<int>(std::ceil(freed / options_[p].CostPerHour())) - 1;
          grow = std::min(grow, options_[p].max_count - certified.plan.counts[p]);
          if (grow < 1) {
            continue;
          }
          std::vector<int> counts = certified.plan.counts;
          counts[o] = 0;
          counts[p] += grow;
          // A subpool needs at least one prefill + one decode GPU.
          if (counts[p] < 2) {
            continue;
          }
          if (attempt(counts)) {
            improved = true;
            break;
          }
        }
        if (improved) {
          break;
        }
      }
    }
  };

  for (int round = 0; round < std::max(1, options.max_rounds); ++round) {
    PlannerRound record;
    record.plan = solver.Solve(result.matrix, solver_options);
    if (!record.plan.feasible) {
      result.plan = record.plan;
      result.rounds.push_back(std::move(record));
      return result;  // infeasible: nothing to certify
    }
    record.merged = Replay(record.plan, trace, options.grid, &record.outcomes);

    bool met = certifies(record.merged, record.outcomes);
    record.certified = met;
    result.plan = record.plan;
    result.replay = record.merged;
    result.rounds.push_back(record);
    if (met) {
      result.certified = true;
      trim(result, solver, solver_options);
      return result;
    }

    // Correction, two channels keyed on why the subpool missed. Load-bound
    // (utilization near the packing ceiling): inflate the load the solver
    // must cover there. Switch-bound (plenty of idle capacity, so queueing
    // is not the problem — model switches are): raise the GPU floor, which
    // spreads the model working set across more instances.
    for (const SubpoolOutcome& outcome : record.outcomes) {
      bool missed = outcome.attainment < options.target_attainment &&
                    (outcome.requests >= options.min_subpool_requests ||
                     record.merged.SloAttainment() < options.target_attainment);
      if (!missed) {
        continue;
      }
      double shortfall = options.target_attainment - outcome.attainment;
      double utilization = 0.0;
      for (const SubpoolPlan& sub : record.plan.subpools) {
        if (sub.option == outcome.option) {
          utilization = sub.utilization;
        }
      }
      if (utilization < 0.5 * solver_options.rho_max) {
        int step = std::clamp(
            static_cast<int>(std::ceil(outcome.gpus * 2.0 * shortfall)), 1, 4);
        solver_options.min_count[outcome.option] =
            std::min(options_[outcome.option].max_count,
                     std::max(solver_options.min_count[outcome.option],
                              outcome.gpus + step));
      } else {
        double factor = 1.0 + std::max(0.15, 2.0 * shortfall);
        solver_options.capacity_scale[outcome.option] =
            std::min(8.0, solver_options.capacity_scale[outcome.option] * factor);
      }
    }
  }
  return result;
}

RunMetrics Planner::ReplayHomogeneous(const ModelRegistry& registry, const GpuSpec& spec,
                                      int gpus, const std::vector<ArrivalEvent>& trace) {
  int prefill = 0;
  int decode = 0;
  SplitPool(gpus, &prefill, &decode);
  AegaeonConfig config = PlannerConfigForGpu(spec, prefill, decode);
  for (const DeployedModel& model : registry.models()) {
    config.instance_tp = std::max(config.instance_tp, model.tp);
  }
  AegaeonCluster cluster(config, registry, spec);
  RunMetrics metrics = cluster.Run(trace);
  metrics.pool_cost_per_hour = gpus * spec.cost_per_hour;
  return metrics;
}

int Planner::MinHomogeneousGpus(const ModelRegistry& registry, const GpuSpec& spec,
                                const std::vector<ArrivalEvent>& trace, double target,
                                int max_gpus) {
  AegaeonConfig sizing = PlannerConfigForGpu(spec, 1, 1);
  for (const DeployedModel& model : registry.models()) {
    if (model.shard_bytes() > sizing.weight_buffer_bytes) {
      return -1;  // the model cannot load at all on this GPU
    }
  }
  auto meets = [&](int gpus) {
    return ReplayHomogeneous(registry, spec, gpus, trace).SloAttainment() >= target;
  };
  int hi = 2;
  while (hi <= max_gpus && !meets(hi)) {
    hi *= 2;
  }
  if (hi > max_gpus) {
    if (hi / 2 >= max_gpus || !meets(max_gpus)) {
      return -1;
    }
    hi = max_gpus;
  }
  int lo = hi / 2;  // lo either failed or is below the valid minimum of 2
  while (hi - lo > 1 && lo >= 2) {
    int mid = (lo + hi) / 2;
    if (meets(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace aegaeon
