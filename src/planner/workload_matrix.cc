#include "planner/workload_matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace aegaeon {

BucketGrid BucketGrid::Default() {
  BucketGrid grid;
  grid.input_edges = {64, 256, 1024, 8192};
  grid.output_edges = {64, 256, 1024, 4096};
  return grid;
}

namespace {

int BandOf(const std::vector<int64_t>& edges, int64_t tokens) {
  for (size_t i = 0; i < edges.size(); ++i) {
    if (tokens <= edges[i]) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(edges.size()) - 1;  // clamp into the last band
}

int64_t RepOf(const std::vector<int64_t>& edges, int band) {
  int64_t hi = edges[static_cast<size_t>(band)];
  int64_t lo = band == 0 ? 1 : edges[static_cast<size_t>(band) - 1] + 1;
  double rep = std::sqrt(static_cast<double>(lo) * static_cast<double>(hi));
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(rep)));
}

}  // namespace

int BucketGrid::InputBucket(int64_t tokens) const { return BandOf(input_edges, tokens); }
int BucketGrid::OutputBucket(int64_t tokens) const { return BandOf(output_edges, tokens); }

int BucketGrid::BucketOf(int64_t prompt_tokens, int64_t output_tokens) const {
  return InputBucket(prompt_tokens) * outputs() + OutputBucket(output_tokens);
}

int64_t BucketGrid::InputRep(int input_bucket) const { return RepOf(input_edges, input_bucket); }
int64_t BucketGrid::OutputRep(int output_bucket) const { return RepOf(output_edges, output_bucket); }

int64_t WorkloadMatrix::PromptRepOf(int bucket) const {
  double mean = bucket_mean_prompt[static_cast<size_t>(bucket)];
  if (mean > 0.0) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(mean)));
  }
  return grid.InputRep(bucket / grid.outputs());
}

int64_t WorkloadMatrix::OutputRepOf(int bucket) const {
  double mean = bucket_mean_output[static_cast<size_t>(bucket)];
  if (mean > 0.0) {
    return std::max<int64_t>(1, static_cast<int64_t>(std::llround(mean)));
  }
  return grid.OutputRep(bucket % grid.outputs());
}

WorkloadMatrix BuildWorkloadMatrix(const std::vector<ArrivalEvent>& trace, double horizon,
                                   size_t model_count, const BucketGrid& grid) {
  WorkloadMatrix matrix;
  matrix.grid = grid;
  matrix.horizon = horizon;
  size_t buckets = static_cast<size_t>(grid.buckets());
  matrix.model_bucket_rate.assign(model_count, std::vector<double>(buckets, 0.0));
  matrix.bucket_rate.assign(buckets, 0.0);
  matrix.model_rate.assign(model_count, 0.0);
  matrix.bucket_mean_prompt.assign(buckets, 0.0);
  matrix.bucket_mean_output.assign(buckets, 0.0);
  if (horizon <= 0.0) {
    return matrix;
  }
  std::vector<uint64_t> bucket_counts(buckets, 0);
  for (const ArrivalEvent& event : trace) {
    if (event.model >= model_count) {
      continue;
    }
    size_t bucket = static_cast<size_t>(grid.BucketOf(event.prompt_tokens, event.output_tokens));
    matrix.requests++;
    matrix.model_bucket_rate[event.model][bucket] += 1.0;
    bucket_counts[bucket]++;
    matrix.bucket_mean_prompt[bucket] += static_cast<double>(event.prompt_tokens);
    matrix.bucket_mean_output[bucket] += static_cast<double>(event.output_tokens);
  }
  for (size_t b = 0; b < buckets; ++b) {
    if (bucket_counts[b] > 0) {
      matrix.bucket_mean_prompt[b] /= static_cast<double>(bucket_counts[b]);
      matrix.bucket_mean_output[b] /= static_cast<double>(bucket_counts[b]);
    }
  }
  for (size_t m = 0; m < model_count; ++m) {
    for (size_t b = 0; b < buckets; ++b) {
      matrix.model_bucket_rate[m][b] /= horizon;
      matrix.bucket_rate[b] += matrix.model_bucket_rate[m][b];
      matrix.model_rate[m] += matrix.model_bucket_rate[m][b];
    }
    matrix.total_rate += matrix.model_rate[m];
  }
  return matrix;
}

void WriteMatrixCsv(std::ostream& os, const WorkloadMatrix& matrix) {
  os << "model,input_lo,input_hi,output_lo,output_hi,rate_rps,mean_prompt,mean_output\n";
  os.precision(9);
  const BucketGrid& grid = matrix.grid;
  for (size_t m = 0; m < matrix.model_bucket_rate.size(); ++m) {
    for (int i = 0; i < grid.inputs(); ++i) {
      for (int j = 0; j < grid.outputs(); ++j) {
        int bucket = i * grid.outputs() + j;
        double rate = matrix.model_bucket_rate[m][static_cast<size_t>(bucket)];
        if (rate <= 0.0) {
          continue;
        }
        int64_t in_lo = i == 0 ? 1 : grid.input_edges[static_cast<size_t>(i) - 1] + 1;
        int64_t out_lo = j == 0 ? 1 : grid.output_edges[static_cast<size_t>(j) - 1] + 1;
        os << m << ',' << in_lo << ',' << grid.input_edges[static_cast<size_t>(i)] << ','
           << out_lo << ',' << grid.output_edges[static_cast<size_t>(j)] << ',' << rate << ','
           << matrix.bucket_mean_prompt[static_cast<size_t>(bucket)] << ','
           << matrix.bucket_mean_output[static_cast<size_t>(bucket)] << '\n';
      }
    }
  }
}

}  // namespace aegaeon
