// M/G/c-style queueing predictions for candidate subpools, built on the
// Theorem 3.1 active-model estimate in analysis/theory.
//
// The solver needs a fast feasibility oracle: given the slices of workload
// assigned to a subpool of n GPUs of one type, will TTFT/TBT SLOs hold?
// Prefill is modeled as an M/G/c queue (Erlang-C wait scaled by the
// Allen-Cunneen (1+CV^2)/2 service-variability factor), with service times
// inflated by the expected model-switch overhead: when Theorem 3.1 predicts
// more concurrently-active models than instances, a dispatch likely finds
// the wrong model resident and pays the Eq. 4 load time. Decoding is
// modeled as utilization-inflated step time plus the per-token amortized
// switch share. The predictions steer the search; the closed loop
// (planner/planner.h) certifies against the real simulator.

#ifndef AEGAEON_PLANNER_QUEUEING_H_
#define AEGAEON_PLANNER_QUEUEING_H_

#include <cstdint>
#include <vector>

#include "core/slo.h"
#include "hw/gpu_spec.h"
#include "model/model_spec.h"

namespace aegaeon {

// Erlang-C: probability an arrival waits in an M/M/c queue with offered
// load a = lambda/mu (in Erlangs). Returns 1.0 when a >= c (unstable).
double ErlangC(int servers, double offered_load);

// Mean M/G/c queueing delay (Allen-Cunneen approximation): the M/M/c wait
// scaled by (1 + scv) / 2, where scv is the squared coefficient of
// variation of service time. Returns +inf when unstable.
double MgcWaitTime(double arrival_rate, double mean_service, double service_scv, int servers);

// P(dispatch needs a model switch). With `instances` GPUs holding one model
// each out of `models` uniform streams, a random arrival finds its model
// resident with probability ~ instances/models (random incidence over the
// most-recently-used set). Same-model arrivals inside one residency window
// of length `window` share a single switch, which amortizes the miss by
// E[group] = 1 + rate * window — the same clustering Theorem 3.1 counts:
// when ExpectedActiveModels(models, rate, window) exceeds `instances` the
// group term stays ~1 and the probability approaches the contention limit
// 1 - instances/models.
double SwitchProbability(int models, double per_model_rate, double window, int instances);

// One slice of workload assigned to a subpool.
struct AssignedSlice {
  const ModelSpec* spec = nullptr;
  int tp = 1;
  double rate = 0.0;  // req/s
  int64_t prompt_tokens = 0;
  int64_t output_tokens = 0;
  SloSpec slo;
};

struct SubpoolPrediction {
  bool stable = false;
  double prefill_utilization = 0.0;
  double decode_utilization = 0.0;  // against profiled capacity
  double switch_probability = 0.0;
  double ttft = 0.0;  // predicted mean TTFT (queue wait + prefill + switch)
  double tbt = 0.0;   // predicted steady-state token interval
  // Strictest SLO across the assigned slices; feasibility compares the
  // predictions against these targets.
  SloSpec slo;

  bool MeetsSlo() const { return stable && ttft <= slo.ttft && tbt <= slo.tbt; }
};

// Predicts a subpool of `gpus` GPUs of type `gpu` (split prefill/decode by
// the paper's 3:5 ratio) serving `slices`. `decode_utilization` is supplied
// by the caller from the profiled throughput matrix (rate/tput sums);
// `distinct_models` is the number of registry models behind the slices
// (classes collapse many models, but switching follows model identity).
SubpoolPrediction PredictSubpool(const GpuSpec& gpu, int gpus,
                                 const std::vector<AssignedSlice>& slices,
                                 double decode_utilization, int distinct_models,
                                 Duration qmax = 4.0);

// The paper's 3:5 prefill:decode split, rounded with both sides >= 1.
void SplitPool(int gpus, int* prefill, int* decode);

}  // namespace aegaeon

#endif  // AEGAEON_PLANNER_QUEUEING_H_
