#include "planner/queueing.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/theory.h"
#include "model/latency_model.h"

namespace aegaeon {

double ErlangC(int servers, double offered_load) {
  if (servers <= 0) {
    return 1.0;
  }
  double a = offered_load;
  if (a <= 0.0) {
    return 0.0;
  }
  if (a >= static_cast<double>(servers)) {
    return 1.0;
  }
  // Iterative Erlang-B, then convert: C = B / (1 - rho * (1 - B)).
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = a * b / (static_cast<double>(k) + a * b);
  }
  double rho = a / static_cast<double>(servers);
  return b / (1.0 - rho * (1.0 - b));
}

double MgcWaitTime(double arrival_rate, double mean_service, double service_scv, int servers) {
  if (arrival_rate <= 0.0 || mean_service <= 0.0) {
    return 0.0;
  }
  double a = arrival_rate * mean_service;  // offered load in Erlangs
  if (a >= static_cast<double>(servers)) {
    return std::numeric_limits<double>::infinity();
  }
  double mm_c_wait = ErlangC(servers, a) * mean_service / (static_cast<double>(servers) - a);
  return mm_c_wait * (1.0 + std::max(0.0, service_scv)) / 2.0;
}

double SwitchProbability(int models, double per_model_rate, double window, int instances) {
  if (models <= 0 || instances >= models) {
    return 0.0;
  }
  double miss = 1.0 - static_cast<double>(instances) / models;
  double group = 1.0 + std::max(0.0, per_model_rate) * std::max(0.0, window);
  double p = miss / group;
  // Contention floor: once Theorem 3.1 predicts more simultaneously-active
  // models than instances, amortization cannot help — some active model is
  // always non-resident.
  double active = ExpectedActiveModels(models, per_model_rate, window);
  if (active > static_cast<double>(instances)) {
    p = std::max(p, 1.0 - static_cast<double>(instances) / active);
  }
  return std::min(1.0, p);
}

void SplitPool(int gpus, int* prefill, int* decode) {
  int p = std::max(1, (3 * gpus + 4) / 8);
  if (p >= gpus) {
    p = std::max(1, gpus - 1);
  }
  *prefill = p;
  *decode = std::max(1, gpus - p);
}

SubpoolPrediction PredictSubpool(const GpuSpec& gpu, int gpus,
                                 const std::vector<AssignedSlice>& slices,
                                 double decode_utilization, int distinct_models,
                                 Duration qmax) {
  SubpoolPrediction prediction;
  prediction.slo = SloSpec{std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::infinity()};
  if (gpus < 2) {
    return prediction;  // a subpool needs at least one prefill + one decode GPU
  }
  int prefill_gpus = 0;
  int decode_gpus = 0;
  SplitPool(gpus, &prefill_gpus, &decode_gpus);

  LatencyModel latency(gpu);
  double total_rate = 0.0;
  double weighted_service = 0.0;
  double weighted_service_sq = 0.0;
  double weighted_switch_load = 0.0;
  double weighted_step = 0.0;
  double weighted_output = 0.0;  // E[output tokens per request]
  for (const AssignedSlice& slice : slices) {
    if (slice.rate <= 0.0) {
      continue;
    }
    double service = latency.PrefillOne(*slice.spec, slice.tp, slice.prompt_tokens);
    double step =
        latency.DecodeStep(*slice.spec, slice.tp, slice.prompt_tokens + slice.output_tokens / 2);
    total_rate += slice.rate;
    weighted_service += slice.rate * service;
    weighted_service_sq += slice.rate * service * service;
    weighted_switch_load += slice.rate * latency.SwitchLoad(*slice.spec, slice.tp);
    weighted_step += slice.rate * step;
    weighted_output += slice.rate * static_cast<double>(slice.output_tokens);
    prediction.slo.ttft = std::min(prediction.slo.ttft, slice.slo.ttft);
    prediction.slo.tbt = std::min(prediction.slo.tbt, slice.slo.tbt);
  }
  if (total_rate <= 0.0) {
    prediction.stable = true;
    prediction.ttft = 0.0;
    prediction.tbt = 0.0;
    return prediction;
  }
  double mean_service = weighted_service / total_rate;
  double mean_switch_load = weighted_switch_load / total_rate;
  double mean_step = weighted_step / total_rate;
  double mean_output = weighted_output / total_rate;

  // Switching on the prefill side: the residency window is one prefill
  // service time — same-model requests arriving inside it share a switch.
  double per_model_rate = total_rate / std::max(1, distinct_models);
  double p_switch_prefill =
      SwitchProbability(distinct_models, per_model_rate, mean_service, prefill_gpus);
  prediction.switch_probability = p_switch_prefill;

  // Effective prefill service = prefill + expected switch stall.
  double eff_service = mean_service + p_switch_prefill * mean_switch_load;
  double eff_service_sq = weighted_service_sq / total_rate +
                          2.0 * mean_service * p_switch_prefill * mean_switch_load +
                          p_switch_prefill * mean_switch_load * mean_switch_load;
  double scv = eff_service <= 0.0 ? 0.0 : eff_service_sq / (eff_service * eff_service) - 1.0;

  prediction.prefill_utilization =
      total_rate * eff_service / static_cast<double>(prefill_gpus);
  prediction.decode_utilization = decode_utilization;
  double wait = MgcWaitTime(total_rate, eff_service, scv, prefill_gpus);
  prediction.stable = std::isfinite(wait) && decode_utilization < 1.0;
  prediction.ttft = wait + eff_service;

  // Decoding: with more concurrently-active models than decode instances,
  // each model's generation is time-sliced — the effective token interval
  // is the raw step multiplied by the multiplex degree m*/d, plus the
  // amortized switch share (one Eq. 4 load per qmax-second quota turn).
  // m* itself depends on how long requests stay resident, which depends on
  // the effective interval, so iterate to the fixed point (Theorem 3.1 is
  // monotone in the window, so the damped iteration converges).
  double tbt = mean_step;
  for (int iter = 0; iter < 8; ++iter) {
    double residency = mean_output * tbt;
    double active = ExpectedActiveModels(distinct_models, per_model_rate, residency);
    double multiplex = std::max(1.0, active / std::max(1, decode_gpus));
    double p_switch =
        SwitchProbability(distinct_models, per_model_rate, residency, decode_gpus);
    double switch_share =
        qmax > 0.0 ? p_switch * mean_switch_load * mean_step / qmax : 0.0;
    double next = (mean_step + switch_share) * multiplex;
    tbt = 0.5 * tbt + 0.5 * std::min(next, 100.0 * mean_step);
  }
  prediction.tbt = tbt;
  return prediction;
}

}  // namespace aegaeon
