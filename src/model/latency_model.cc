#include "model/latency_model.h"

#include <cassert>

namespace aegaeon {

Duration LatencyModel::Prefill(const ModelSpec& model, int tp, int64_t tokens,
                               double sq_sum_tokens) const {
  assert(tp >= 1);
  assert(tokens >= 0);
  const double h = model.hidden_size;
  const double m = model.ffn_intermediate;
  const double L = model.num_layers;
  const double flops = gpu_.effective_flops() * tp;

  const double c1 = 2.0 * L / flops;
  const double c2 = L / flops;
  const double t = static_cast<double>(tokens);

  double gemm = c1 * (4.0 * t * h * h + 2.0 * t * h * m);
  double attn = c2 * (3.0 * h * sq_sum_tokens / flash_block_);
  return gemm + attn + gpu_.step_overhead_s;
}

Duration LatencyModel::DecodeStep(const ModelSpec& model, int tp, int64_t context_tokens) const {
  assert(tp >= 1);
  assert(context_tokens >= 0);
  const double h = model.hidden_size;
  const double m = model.ffn_intermediate;
  const double L = model.num_layers;
  const double hbm = gpu_.effective_hbm() * tp;

  const double c4 = L * model.dtype_bytes / hbm;
  const double c5 = L * model.dtype_bytes / hbm;

  double weights = c4 * (4.0 * h * h + 2.0 * h * m);
  double kv_read = c5 * 3.0 * h * static_cast<double>(context_tokens);
  return weights + kv_read + gpu_.step_overhead_s;
}

Duration LatencyModel::SwitchLoad(const ModelSpec& model, int tp) const {
  assert(tp >= 1);
  return model.weight_bytes() / tp / gpu_.effective_pcie();
}

Duration LatencyModel::NaiveLoad(const ModelSpec& model, int tp, double naive_bytes_per_s) const {
  assert(tp >= 1);
  assert(naive_bytes_per_s > 0.0);
  return model.weight_bytes() / tp / naive_bytes_per_s;
}

}  // namespace aegaeon
