// Fitting the Appendix A.2 latency model from profiled samples.
//
// The paper derives C1..C5 "from profiling and interpolation" and reports an
// R-squared above 0.9 across all evaluated models. This module provides that
// calibration path: given (workload-shape, measured-latency) samples from a
// real or simulated engine, it solves the linear least-squares problem for
// the constants of Eq. 5 / Eq. 6 and reports the fit quality, so the
// simulator can be re-calibrated against any deployment's own profiles.

#ifndef AEGAEON_MODEL_LATENCY_FIT_H_
#define AEGAEON_MODEL_LATENCY_FIT_H_

#include <cstdint>
#include <vector>

#include "model/model_spec.h"
#include "sim/time.h"

namespace aegaeon {

// One profiled prefill observation.
struct PrefillSample {
  int64_t tokens = 0;        // t: tokens in the batch
  double sq_sum_tokens = 0;  // t2: squared sum of input lengths
  Duration latency = 0.0;    // measured batch latency
};

// One profiled decode-step observation.
struct DecodeSample {
  int64_t context_tokens = 0;  // t: resident context across the batch
  Duration latency = 0.0;
};

// Fitted constants for one model: latency = c_compute * F1 + c_attn * F2 + c_fixed,
// with the feature definitions of Eq. 5 (prefill) or Eq. 6 (decode).
struct LatencyFit {
  double c_compute = 0.0;  // C1 (prefill GEMM) or C4 (decode weight read)
  double c_attn = 0.0;     // C2 (prefill attention) or C5 (decode KV read)
  double c_fixed = 0.0;    // C3 / fixed per-step overhead
  double r_squared = 0.0;
  bool ok = false;
};

// Fits Eq. 5 for `model` at `flash_block_size` from prefill samples.
// Requires at least 3 samples with distinct shapes.
LatencyFit FitPrefill(const ModelSpec& model, const std::vector<PrefillSample>& samples,
                      int flash_block_size = 128);

// Fits Eq. 6 for `model` from decode samples. The weight-read term of Eq. 6
// is constant in t, so it merges with the fixed overhead into c_fixed
// (c_compute reports 0); c_attn is C5.
LatencyFit FitDecode(const ModelSpec& model, const std::vector<DecodeSample>& samples);

// Predicted latencies under a fit.
Duration PredictPrefill(const LatencyFit& fit, const ModelSpec& model, int64_t tokens,
                        double sq_sum_tokens, int flash_block_size = 128);
Duration PredictDecode(const LatencyFit& fit, const ModelSpec& model, int64_t context_tokens);

// Solves the ordinary-least-squares problem min ||X b - y||^2 by normal
// equations with Gaussian elimination. Returns an empty vector when the
// system is singular. Exposed for reuse and testing.
std::vector<double> SolveLeastSquares(const std::vector<std::vector<double>>& rows,
                                      const std::vector<double>& y);

}  // namespace aegaeon

#endif  // AEGAEON_MODEL_LATENCY_FIT_H_
