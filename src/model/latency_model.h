// The paper's analytical token-generation latency model (Appendix A.2).
//
//   T_prefill  = C1 * (4*t*h^2 + 2*t*h*m) + C2 * (3*h*t2 / b) + C3     (Eq. 5)
//   T_decoding = C4 * (4*h^2 + 2*h*m)     + C5 * 3*h*t        (+ C3)   (Eq. 6)
//   T_switch   = ModelSize / (PCIe BW * beta)                          (Eq. 4)
//
// where h is the hidden size, m the FFN intermediate size, t the number of
// tokens in the batch, t2 the squared sum of input lengths, and b the
// FlashAttention block size. The constants C1..C5 are "derived from
// profiling" in the paper; here they are derived from the GPU spec:
//
//   * L*(4h^2 + 2hm) is (to within the embeddings) the parameter count, so
//     C1 = 2L / effective_flops makes the first prefill term the classic
//     2*params*tokens FLOP estimate.
//   * C4 = C5 = L*dtype / effective_hbm makes decoding weight- and KV-read
//     bound, as decoding is in practice.
//   * C3 is the fixed per-step engine overhead.
//
// Tensor parallelism divides both the compute and the bandwidth terms.

#ifndef AEGAEON_MODEL_LATENCY_MODEL_H_
#define AEGAEON_MODEL_LATENCY_MODEL_H_

#include <cstdint>
#include <vector>

#include "hw/gpu_spec.h"
#include "model/model_spec.h"
#include "sim/time.h"

namespace aegaeon {

class LatencyModel {
 public:
  explicit LatencyModel(const GpuSpec& gpu, int flash_block_size = 128)
      : gpu_(gpu), flash_block_(flash_block_size) {}

  // Eq. 5 with a batch summarized as (t = sum of lengths, t2 = squared sum).
  Duration Prefill(const ModelSpec& model, int tp, int64_t tokens, double sq_sum_tokens) const;

  // Convenience for a single-request prefill of `prompt_len` tokens
  // (Aegaeon limits prefill batches to one request, §4.2).
  Duration PrefillOne(const ModelSpec& model, int tp, int64_t prompt_len) const {
    return Prefill(model, tp, prompt_len,
                   static_cast<double>(prompt_len) * static_cast<double>(prompt_len));
  }

  // Eq. 6: one decoding step for a batch whose total resident context is
  // `context_tokens` tokens (t in the paper's notation).
  Duration DecodeStep(const ModelSpec& model, int tp, int64_t context_tokens) const;

  // Eq. 4: time to load the model's per-GPU weight shard over PCIe at the
  // optimized effective bandwidth.
  Duration SwitchLoad(const ModelSpec& model, int tp) const;

  // Loading time of an unoptimized engine (per-tensor copies achieving only
  // `naive_bytes_per_s`, e.g. vLLM's measured 2.83 GB/s — Figure 7).
  Duration NaiveLoad(const ModelSpec& model, int tp, double naive_bytes_per_s) const;

  const GpuSpec& gpu() const { return gpu_; }

 private:
  GpuSpec gpu_;
  int flash_block_;
};

}  // namespace aegaeon

#endif  // AEGAEON_MODEL_LATENCY_MODEL_H_
