// The model market: a registry of deployed models with their parallelism and
// SLO configuration. Experiments instantiate M models by cycling the preset
// families (Qwen, LLaMA, InternLM, Yi — §7.1).

#ifndef AEGAEON_MODEL_REGISTRY_H_
#define AEGAEON_MODEL_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/slo.h"
#include "model/model_spec.h"

namespace aegaeon {

using ModelId = uint32_t;
inline constexpr ModelId kInvalidModel = static_cast<ModelId>(-1);

struct DeployedModel {
  ModelId id = kInvalidModel;
  ModelSpec spec;
  int tp = 1;  // tensor-parallel degree
  SloSpec slo;

  // Per-GPU weight shard size.
  double shard_bytes() const { return spec.weight_bytes() / tp; }
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  // Adds a model; returns its id.
  ModelId Add(ModelSpec spec, int tp, SloSpec slo);

  const DeployedModel& Get(ModelId id) const { return models_.at(id); }
  size_t size() const { return models_.size(); }
  const std::vector<DeployedModel>& models() const { return models_; }

  // Builds a market of `count` models in the paper's primary 6B-14B band
  // (§7.1), cycling the preset families and uniquifying names. All models
  // share `slo` and TP=1.
  static ModelRegistry MidSizeMarket(int count, SloSpec slo = SloSpec::Chatbot());

  // Builds a market of `count` Qwen-72B models at TP=4 (§7.4 "Larger models").
  static ModelRegistry LargeModelMarket(int count, SloSpec slo = SloSpec::Chatbot());

  // Builds a market of `count` 6-7B models for the A10 study (§7.4).
  static ModelRegistry SmallModelMarket(int count, SloSpec slo = SloSpec::Chatbot());

  // Builds a mid-size market with two SLO tiers interleaved (§7.2 notes
  // different applications — chatbots vs search recommendation — ship
  // different targets; Algorithm 2's per-batch deadlines handle the mix).
  // Even-indexed models get `tier_a`, odd-indexed get `tier_b`.
  static ModelRegistry MixedSloMarket(int count, SloSpec tier_a, SloSpec tier_b);

 private:
  std::vector<DeployedModel> models_;
};

}  // namespace aegaeon

#endif  // AEGAEON_MODEL_REGISTRY_H_
