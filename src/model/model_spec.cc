#include "model/model_spec.h"

#include <sstream>

namespace aegaeon {

std::string KvShape::ToString() const {
  std::ostringstream os;
  os << "(" << layers << ", 2, " << kv_heads << ", " << head_dim << ")";
  return os.str();
}

namespace {

ModelSpec Make(std::string name, double params_b, int layers, int hidden, int ffn, int heads,
               int kv_heads, int head_dim) {
  ModelSpec spec;
  spec.name = std::move(name);
  spec.params_billion = params_b;
  spec.num_layers = layers;
  spec.hidden_size = hidden;
  spec.ffn_intermediate = ffn;
  spec.num_heads = heads;
  spec.num_kv_heads = kv_heads;
  spec.head_dim = head_dim;
  return spec;
}

}  // namespace

ModelSpec ModelSpec::Qwen1_8B() {
  return Make("Qwen-1.8B", 1.8, 24, 2048, 5504, 16, 16, 128);
}

ModelSpec ModelSpec::Yi6B() {
  return Make("Yi-6B", 6.0, 32, 4096, 11008, 32, 4, 128);
}

ModelSpec ModelSpec::Qwen7B() {
  // Table 1 row 1: KV shape (32, 2, 32, 128) -> 512 KB/token at 16-bit.
  return Make("Qwen-7B", 7.0, 32, 4096, 22016, 32, 32, 128);
}

ModelSpec ModelSpec::InternLm2_7B() {
  // Table 1 row 2: KV shape (32, 2, 8, 128) -> 128 KB/token (GQA).
  return Make("InternLM2.5-7B-chat", 7.0, 32, 4096, 14336, 32, 8, 128);
}

ModelSpec ModelSpec::Yi9B() {
  return Make("Yi-9B", 9.0, 48, 4096, 11008, 32, 4, 128);
}

ModelSpec ModelSpec::Llama13B() {
  // Table 1 row 3: KV shape (40, 2, 40, 128) -> 800 KB/token.
  return Make("LLaMA-13B", 13.0, 40, 5120, 13824, 40, 40, 128);
}

ModelSpec ModelSpec::Qwen14B() {
  return Make("Qwen-14B", 14.0, 40, 5120, 27392, 40, 40, 128);
}

ModelSpec ModelSpec::Qwen32B() {
  return Make("Qwen-32B", 32.0, 64, 5120, 27392, 40, 8, 128);
}

ModelSpec ModelSpec::Qwen72B() {
  // Table 1 row 4: KV shape (80, 2, 64, 128) -> 2560 KB/token.
  return Make("Qwen-72B", 72.0, 80, 8192, 49152, 64, 64, 128);
}

}  // namespace aegaeon
