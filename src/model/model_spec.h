// Architecture descriptions of the LLMs served in the paper's evaluation.
//
// All derived quantities (weight bytes, KV-cache shape and per-token size —
// Table 1) follow from public architecture hyperparameters, so the specs
// below reproduce the paper's numbers exactly.

#ifndef AEGAEON_MODEL_MODEL_SPEC_H_
#define AEGAEON_MODEL_MODEL_SPEC_H_

#include <cstdint>
#include <string>

namespace aegaeon {

// Per-token KV-cache geometry: (layers, K/V, kv_heads, head_dim) — Table 1.
struct KvShape {
  int layers = 0;
  int kv_heads = 0;
  int head_dim = 0;

  // Bytes of KV cache for a single token at the given precision.
  double BytesPerToken(int dtype_bytes) const {
    return static_cast<double>(layers) * 2.0 * kv_heads * head_dim * dtype_bytes;
  }

  bool operator==(const KvShape& other) const {
    return layers == other.layers && kv_heads == other.kv_heads && head_dim == other.head_dim;
  }

  std::string ToString() const;
};

struct ModelSpec {
  std::string name;
  double params_billion = 0.0;
  int num_layers = 0;
  int hidden_size = 0;        // h in Appendix A.2
  int ffn_intermediate = 0;   // m in Appendix A.2
  int num_heads = 0;
  int num_kv_heads = 0;
  int head_dim = 0;
  int dtype_bytes = 2;  // FP16/BF16

  double weight_bytes() const { return params_billion * 1e9 * dtype_bytes; }

  KvShape kv_shape() const { return KvShape{num_layers, num_kv_heads, head_dim}; }

  // Per-GPU KV shard under tensor parallelism: KV heads divide across the
  // TP ranks (at least one head per rank).
  KvShape kv_shape_shard(int tp) const {
    int heads = num_kv_heads / tp;
    return KvShape{num_layers, heads < 1 ? 1 : heads, head_dim};
  }

  double kv_bytes_per_token() const { return kv_shape().BytesPerToken(dtype_bytes); }

  // --- Presets (public architecture hyperparameters) -------------------
  static ModelSpec Qwen1_8B();
  static ModelSpec Yi6B();
  static ModelSpec Qwen7B();        // Table 1: (32, 2, 32, 128), 512 KB/token
  static ModelSpec InternLm2_7B();  // Table 1: (32, 2, 8, 128), 128 KB/token
  static ModelSpec Yi9B();
  static ModelSpec Llama13B();      // Table 1: (40, 2, 40, 128), 800 KB/token
  static ModelSpec Qwen14B();
  static ModelSpec Qwen32B();
  static ModelSpec Qwen72B();       // Table 1: (80, 2, 64, 128), 2560 KB/token
};

}  // namespace aegaeon

#endif  // AEGAEON_MODEL_MODEL_SPEC_H_
