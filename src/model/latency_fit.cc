#include "model/latency_fit.h"

#include <cassert>
#include <cmath>

namespace aegaeon {
namespace {

// Features of Eq. 5: [4*t*h^2 + 2*t*h*m, 3*h*t2/b, 1].
std::vector<double> PrefillFeatures(const ModelSpec& model, int64_t tokens, double sq_sum,
                                    int flash_block) {
  double h = model.hidden_size;
  double m = model.ffn_intermediate;
  double t = static_cast<double>(tokens);
  return {4.0 * t * h * h + 2.0 * t * h * m, 3.0 * h * sq_sum / flash_block, 1.0};
}

// Features of Eq. 6: the weight-read term is constant, so fit [3*h*t, 1].
std::vector<double> DecodeFeatures(const ModelSpec& model, int64_t context_tokens) {
  double h = model.hidden_size;
  return {3.0 * h * static_cast<double>(context_tokens), 1.0};
}

double RSquared(const std::vector<double>& predicted, const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  double mean = 0.0;
  for (double y : actual) {
    mean += y;
  }
  mean /= static_cast<double>(actual.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean) * (actual[i] - mean);
  }
  return ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
}

}  // namespace

std::vector<double> SolveLeastSquares(const std::vector<std::vector<double>>& rows,
                                      const std::vector<double>& y) {
  if (rows.empty() || rows.size() != y.size()) {
    return {};
  }
  const size_t k = rows[0].size();
  // Normal equations: (X^T X) b = X^T y.
  std::vector<std::vector<double>> a(k, std::vector<double>(k + 1, 0.0));
  for (size_t s = 0; s < rows.size(); ++s) {
    assert(rows[s].size() == k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        a[i][j] += rows[s][i] * rows[s][j];
      }
      a[i][k] += rows[s][i] * y[s];
    }
  }
  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) {
        pivot = r;
      }
    }
    if (std::fabs(a[pivot][col]) < 1e-30) {
      return {};  // singular
    }
    std::swap(a[col], a[pivot]);
    for (size_t r = 0; r < k; ++r) {
      if (r == col) {
        continue;
      }
      double factor = a[r][col] / a[col][col];
      for (size_t c = col; c <= k; ++c) {
        a[r][c] -= factor * a[col][c];
      }
    }
  }
  std::vector<double> solution(k);
  for (size_t i = 0; i < k; ++i) {
    solution[i] = a[i][k] / a[i][i];
  }
  return solution;
}

LatencyFit FitPrefill(const ModelSpec& model, const std::vector<PrefillSample>& samples,
                      int flash_block_size) {
  LatencyFit fit;
  if (samples.size() < 3) {
    return fit;
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(samples.size());
  for (const PrefillSample& sample : samples) {
    rows.push_back(PrefillFeatures(model, sample.tokens, sample.sq_sum_tokens, flash_block_size));
    y.push_back(sample.latency);
  }
  std::vector<double> solution = SolveLeastSquares(rows, y);
  if (solution.size() != 3) {
    return fit;
  }
  fit.c_compute = solution[0];
  fit.c_attn = solution[1];
  fit.c_fixed = solution[2];
  std::vector<double> predicted;
  predicted.reserve(samples.size());
  for (const PrefillSample& sample : samples) {
    predicted.push_back(
        PredictPrefill(fit, model, sample.tokens, sample.sq_sum_tokens, flash_block_size));
  }
  fit.r_squared = RSquared(predicted, y);
  fit.ok = true;
  return fit;
}

LatencyFit FitDecode(const ModelSpec& model, const std::vector<DecodeSample>& samples) {
  LatencyFit fit;
  if (samples.size() < 2) {
    return fit;
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (const DecodeSample& sample : samples) {
    rows.push_back(DecodeFeatures(model, sample.context_tokens));
    y.push_back(sample.latency);
  }
  std::vector<double> solution = SolveLeastSquares(rows, y);
  if (solution.size() != 2) {
    return fit;
  }
  fit.c_compute = 0.0;
  fit.c_attn = solution[0];
  fit.c_fixed = solution[1];
  std::vector<double> predicted;
  for (const DecodeSample& sample : samples) {
    predicted.push_back(PredictDecode(fit, model, sample.context_tokens));
  }
  fit.r_squared = RSquared(predicted, y);
  fit.ok = true;
  return fit;
}

Duration PredictPrefill(const LatencyFit& fit, const ModelSpec& model, int64_t tokens,
                        double sq_sum_tokens, int flash_block_size) {
  std::vector<double> f = PrefillFeatures(model, tokens, sq_sum_tokens, flash_block_size);
  return fit.c_compute * f[0] + fit.c_attn * f[1] + fit.c_fixed;
}

Duration PredictDecode(const LatencyFit& fit, const ModelSpec& model, int64_t context_tokens) {
  std::vector<double> f = DecodeFeatures(model, context_tokens);
  return fit.c_attn * f[0] + fit.c_fixed;
}

}  // namespace aegaeon
