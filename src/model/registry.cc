#include "model/registry.h"

#include <array>

namespace aegaeon {

ModelId ModelRegistry::Add(ModelSpec spec, int tp, SloSpec slo) {
  DeployedModel model;
  model.id = static_cast<ModelId>(models_.size());
  model.spec = std::move(spec);
  model.tp = tp;
  model.slo = slo;
  models_.push_back(std::move(model));
  return models_.back().id;
}

ModelRegistry ModelRegistry::MidSizeMarket(int count, SloSpec slo) {
  const std::array<ModelSpec, 6> presets = {
      ModelSpec::Qwen7B(),       ModelSpec::InternLm2_7B(), ModelSpec::Llama13B(),
      ModelSpec::Yi6B(),         ModelSpec::Yi9B(),         ModelSpec::Qwen14B(),
  };
  ModelRegistry registry;
  for (int i = 0; i < count; ++i) {
    ModelSpec spec = presets[i % presets.size()];
    spec.name += "#" + std::to_string(i);
    registry.Add(std::move(spec), /*tp=*/1, slo);
  }
  return registry;
}

ModelRegistry ModelRegistry::LargeModelMarket(int count, SloSpec slo) {
  ModelRegistry registry;
  for (int i = 0; i < count; ++i) {
    ModelSpec spec = ModelSpec::Qwen72B();
    spec.name += "#" + std::to_string(i);
    registry.Add(std::move(spec), /*tp=*/4, slo);
  }
  return registry;
}

ModelRegistry ModelRegistry::MixedSloMarket(int count, SloSpec tier_a, SloSpec tier_b) {
  ModelRegistry registry = MidSizeMarket(count);
  for (DeployedModel& model : registry.models_) {
    model.slo = (model.id % 2 == 0) ? tier_a : tier_b;
  }
  return registry;
}

ModelRegistry ModelRegistry::SmallModelMarket(int count, SloSpec slo) {
  const std::array<ModelSpec, 2> presets = {ModelSpec::Yi6B(), ModelSpec::InternLm2_7B()};
  ModelRegistry registry;
  for (int i = 0; i < count; ++i) {
    ModelSpec spec = presets[i % presets.size()];
    spec.name += "#" + std::to_string(i);
    registry.Add(std::move(spec), /*tp=*/1, slo);
  }
  return registry;
}

}  // namespace aegaeon
