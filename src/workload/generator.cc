#include "workload/generator.h"

#include <algorithm>
#include <cmath>

namespace aegaeon {
namespace {

void SortByTime(std::vector<ArrivalEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) { return a.time < b.time; });
}

}  // namespace

std::vector<ArrivalEvent> GeneratePoisson(const ModelRegistry& registry, double rps_per_model,
                                          Duration horizon, const Dataset& dataset,
                                          uint64_t seed) {
  std::vector<ArrivalEvent> events;
  Rng len_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (const DeployedModel& model : registry.models()) {
    PoissonProcess process(rps_per_model, seed + model.id * 7919);
    for (double t : process.ArrivalsUntil(horizon)) {
      LengthSample lengths = dataset.Sample(len_rng);
      events.push_back(ArrivalEvent{t, model.id, lengths.prompt_tokens, lengths.output_tokens});
    }
  }
  SortByTime(events);
  return events;
}

std::vector<ArrivalEvent> GenerateMixedPoisson(const ModelRegistry& registry,
                                               double rps_per_model, Duration horizon,
                                               const Dataset& even, const Dataset& odd,
                                               uint64_t seed) {
  std::vector<ArrivalEvent> events;
  Rng len_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (const DeployedModel& model : registry.models()) {
    const Dataset& dataset = (model.id % 2 == 0) ? even : odd;
    PoissonProcess process(rps_per_model, seed + model.id * 7919);
    for (double t : process.ArrivalsUntil(horizon)) {
      LengthSample lengths = dataset.Sample(len_rng);
      events.push_back(ArrivalEvent{t, model.id, lengths.prompt_tokens, lengths.output_tokens});
    }
  }
  SortByTime(events);
  return events;
}

std::vector<ArrivalEvent> GenerateSkewed(const ModelRegistry& registry, double total_rps,
                                         double zipf_s, Duration horizon, const Dataset& dataset,
                                         uint64_t seed) {
  std::vector<ArrivalEvent> events;
  ZipfSampler zipf(registry.size(), zipf_s);
  Rng len_rng(seed ^ 0x5bf0a8b1457eefc3ULL);
  PoissonProcess process(total_rps, seed);
  Rng pick_rng(seed + 17);
  for (double t : process.ArrivalsUntil(horizon)) {
    size_t rank = zipf.Sample(pick_rng);
    LengthSample lengths = dataset.Sample(len_rng);
    events.push_back(ArrivalEvent{t, static_cast<ModelId>(rank), lengths.prompt_tokens,
                                  lengths.output_tokens});
  }
  SortByTime(events);
  return events;
}

std::vector<ArrivalEvent> GenerateDiurnal(const ModelRegistry& registry, double mean_rps,
                                          Duration horizon, Duration period, double amplitude,
                                          const Dataset& dataset, uint64_t seed) {
  std::vector<ArrivalEvent> events;
  Rng len_rng(seed ^ 0x7c3a4f5b92ULL);
  const double rate_max = mean_rps * (1.0 + amplitude);
  for (const DeployedModel& model : registry.models()) {
    // Thinning: candidate arrivals at rate_max, accepted with probability
    // rate(t)/rate_max.
    PoissonProcess process(rate_max, seed + model.id * 6151 + 3);
    Rng accept_rng(seed + model.id * 104729 + 7);
    double phase = 2.0 * M_PI * model.id / std::max<size_t>(1, registry.size());
    for (double t : process.ArrivalsUntil(horizon)) {
      double rate = mean_rps * (1.0 + amplitude * std::sin(2.0 * M_PI * t / period + phase));
      if (accept_rng.NextDouble() * rate_max <= rate) {
        LengthSample lengths = dataset.Sample(len_rng);
        events.push_back(ArrivalEvent{t, model.id, lengths.prompt_tokens, lengths.output_tokens});
      }
    }
  }
  SortByTime(events);
  return events;
}

std::vector<ArrivalEvent> GenerateBursty(const ModelRegistry& registry, double base_rps,
                                         double burst_multiplier, Duration mean_calm,
                                         Duration mean_burst, Duration horizon,
                                         const Dataset& dataset, uint64_t seed) {
  std::vector<ArrivalEvent> events;
  Rng len_rng(seed ^ 0x243f6a8885a308d3ULL);
  const double burst_rps = base_rps * burst_multiplier;
  const double peak_rps = std::max(base_rps, burst_rps);
  for (const DeployedModel& model : registry.models()) {
    // Piecewise-homogeneous simulation: walk the two-state chain, drawing
    // exponential dwell times, and thin a peak-rate candidate stream inside
    // each segment. Using one candidate stream per model keeps the trace a
    // pure function of (seed, model id).
    Rng state_rng(seed + model.id * 15485863ULL + 11);
    PoissonProcess candidates(peak_rps, seed + model.id * 32452843ULL + 5);
    Rng accept_rng(seed + model.id * 49979687ULL + 13);
    bool bursting = false;
    TimePoint segment_end = state_rng.Exponential(1.0 / std::max(mean_calm, 1e-9));
    for (double t : candidates.ArrivalsUntil(horizon)) {
      while (t >= segment_end) {
        bursting = !bursting;
        double mean = bursting ? mean_burst : mean_calm;
        segment_end += state_rng.Exponential(1.0 / std::max(mean, 1e-9));
      }
      double rate = bursting ? burst_rps : base_rps;
      if (accept_rng.NextDouble() * peak_rps <= rate) {
        LengthSample lengths = dataset.Sample(len_rng);
        events.push_back(ArrivalEvent{t, model.id, lengths.prompt_tokens, lengths.output_tokens});
      }
    }
  }
  SortByTime(events);
  return events;
}

void AddBurst(std::vector<ArrivalEvent>& events, const ModelRegistry& registry, ModelId model,
              double burst_rps, TimePoint start, Duration length, const Dataset& dataset,
              uint64_t seed) {
  (void)registry;
  Rng len_rng(seed ^ 0xa3c59ac2ULL);
  PoissonProcess process(burst_rps, seed + 101);
  for (double t : process.ArrivalsUntil(length)) {
    LengthSample lengths = dataset.Sample(len_rng);
    events.push_back(
        ArrivalEvent{start + t, model, lengths.prompt_tokens, lengths.output_tokens});
  }
  SortByTime(events);
}

std::vector<uint64_t> CountPerModel(const std::vector<ArrivalEvent>& events, size_t model_count) {
  std::vector<uint64_t> counts(model_count, 0);
  for (const ArrivalEvent& event : events) {
    if (event.model < model_count) {
      counts[event.model]++;
    }
  }
  return counts;
}

std::vector<double> RateSeries(const std::vector<ArrivalEvent>& events, Duration horizon,
                               Duration bucket) {
  size_t buckets = static_cast<size_t>(horizon / bucket) + 1;
  std::vector<double> series(buckets, 0.0);
  for (const ArrivalEvent& event : events) {
    size_t index = static_cast<size_t>(event.time / bucket);
    if (index < buckets) {
      series[index] += 1.0 / bucket;
    }
  }
  return series;
}

}  // namespace aegaeon
