#include "workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace aegaeon {

void WriteTrace(std::ostream& os, const std::vector<ArrivalEvent>& events) {
  os << "time,model,prompt_tokens,output_tokens\n";
  os.precision(9);
  for (const ArrivalEvent& event : events) {
    os << event.time << ',' << event.model << ',' << event.prompt_tokens << ','
       << event.output_tokens << '\n';
  }
}

bool WriteTraceFile(const std::string& path, const std::vector<ArrivalEvent>& events) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  WriteTrace(file, events);
  return static_cast<bool>(file);
}

bool ReadTrace(std::istream& is, std::vector<ArrivalEvent>& events) {
  events.clear();
  std::string line;
  if (!std::getline(is, line)) {
    return false;  // missing header
  }
  if (line != "time,model,prompt_tokens,output_tokens") {
    return false;
  }
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    ArrivalEvent event;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    if (!(row >> event.time >> c1 >> event.model >> c2 >> event.prompt_tokens >> c3 >>
          event.output_tokens) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      events.clear();
      return false;
    }
    if (event.time < 0.0 || event.prompt_tokens < 0 || event.output_tokens < 1) {
      events.clear();
      return false;
    }
    events.push_back(event);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ArrivalEvent& a, const ArrivalEvent& b) { return a.time < b.time; });
  return true;
}

bool ReadTraceFile(const std::string& path, std::vector<ArrivalEvent>& events) {
  std::ifstream file(path);
  if (!file) {
    return false;
  }
  return ReadTrace(file, events);
}

}  // namespace aegaeon
