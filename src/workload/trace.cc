#include "workload/trace.h"

#include <fstream>
#include <sstream>

namespace aegaeon {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

void WriteTrace(std::ostream& os, const std::vector<ArrivalEvent>& events) {
  os << "time,model,prompt_tokens,output_tokens\n";
  os.precision(9);
  for (const ArrivalEvent& event : events) {
    os << event.time << ',' << event.model << ',' << event.prompt_tokens << ','
       << event.output_tokens << '\n';
  }
}

bool WriteTraceFile(const std::string& path, const std::vector<ArrivalEvent>& events) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  WriteTrace(file, events);
  return static_cast<bool>(file);
}

bool ReadTrace(std::istream& is, std::vector<ArrivalEvent>& events, std::string* error) {
  events.clear();
  std::string line;
  if (!std::getline(is, line)) {
    SetError(error, "missing header line");
    return false;
  }
  if (line != "time,model,prompt_tokens,output_tokens") {
    SetError(error, "bad header: expected 'time,model,prompt_tokens,output_tokens'");
    return false;
  }
  uint64_t row_number = 1;  // header was row 1
  while (std::getline(is, line)) {
    ++row_number;
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    ArrivalEvent event;
    char c1 = 0;
    char c2 = 0;
    char c3 = 0;
    if (!(row >> event.time >> c1 >> event.model >> c2 >> event.prompt_tokens >> c3 >>
          event.output_tokens) ||
        c1 != ',' || c2 != ',' || c3 != ',') {
      events.clear();
      SetError(error, "row " + std::to_string(row_number) + ": malformed fields");
      return false;
    }
    if (event.time < 0.0 || event.prompt_tokens < 0 || event.output_tokens < 1) {
      events.clear();
      SetError(error, "row " + std::to_string(row_number) + ": out-of-range value");
      return false;
    }
    // A trace is a recorded arrival sequence: out-of-order timestamps mean
    // the file is corrupt (or hand-edited), not that the arrivals happened
    // in a different order. Silently re-sorting used to mask such damage,
    // so it is rejected instead.
    if (!events.empty() && event.time < events.back().time) {
      std::ostringstream message;
      message.precision(9);
      message << "row " << row_number << ": non-monotone timestamp " << event.time
              << " after " << events.back().time;
      events.clear();
      SetError(error, message.str());
      return false;
    }
    events.push_back(event);
  }
  return true;
}

bool ReadTraceFile(const std::string& path, std::vector<ArrivalEvent>& events,
                   std::string* error) {
  std::ifstream file(path);
  if (!file) {
    SetError(error, "cannot open " + path);
    return false;
  }
  return ReadTrace(file, events, error);
}

}  // namespace aegaeon
