// Request length distributions (§7.1 "Datasets and workloads").
//
// The paper samples prompts/outputs from ShareGPT and two scaled variants
// (ShareGPT-ix2: inputs x2; ShareGPT-ox2: outputs x2). The dataset files are
// not available offline, so we sample from log-normal fits of the published
// ShareGPT statistics (mean input ~161 tokens, mean output ~338 tokens,
// heavy upper tail). What the schedulers are sensitive to is the *shape* —
// long-tailed output lengths drive long service times and HOL blocking —
// which the fit preserves.

#ifndef AEGAEON_WORKLOAD_DATASET_H_
#define AEGAEON_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>

#include "sim/random.h"

namespace aegaeon {

struct LengthSample {
  int64_t prompt_tokens;
  int64_t output_tokens;
};

class Dataset {
 public:
  // Log-normal parameters of the underlying normals, plus linear scale
  // factors for the -ix2 / -ox2 variants.
  Dataset(std::string name, double input_mu, double input_sigma, double output_mu,
          double output_sigma, double input_scale = 1.0, double output_scale = 1.0);

  LengthSample Sample(Rng& rng) const;

  // Mean lengths of the configured distribution (after scaling and before
  // clamping), for load estimation.
  double MeanPrompt() const;
  double MeanOutput() const;

  const std::string& name() const { return name_; }

  static Dataset ShareGpt();
  static Dataset ShareGptIx2();
  static Dataset ShareGptOx2();
  static Dataset Summarize();

  // Length clamps (tokens).
  static constexpr int64_t kMinLen = 4;
  static constexpr int64_t kMaxPrompt = 8192;
  static constexpr int64_t kMaxOutput = 4096;

 private:
  std::string name_;
  double input_mu_;
  double input_sigma_;
  double output_mu_;
  double output_sigma_;
  double input_scale_;
  double output_scale_;
};

}  // namespace aegaeon

#endif  // AEGAEON_WORKLOAD_DATASET_H_
