// Workload synthesis: per-model Poisson arrivals (the model behind
// Theorem 3.1), Zipf-skewed market popularity (Figure 1a), and square-wave
// burst overlays (Figure 1b).

#ifndef AEGAEON_WORKLOAD_GENERATOR_H_
#define AEGAEON_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/request.h"
#include "model/registry.h"
#include "sim/random.h"
#include "workload/dataset.h"

namespace aegaeon {

// Uniform per-model Poisson workload: every model in `registry` receives
// requests at `rps_per_model`, with lengths drawn from `dataset`, over
// [0, horizon). Events are returned sorted by arrival time.
std::vector<ArrivalEvent> GeneratePoisson(const ModelRegistry& registry, double rps_per_model,
                                          Duration horizon, const Dataset& dataset, uint64_t seed);

// Mixed-service market: like GeneratePoisson, but even-indexed models draw
// lengths from `even` and odd-indexed models from `odd` — e.g. chat
// services interleaved with summarization services. The two sub-markets
// stress different phases (decode vs prefill), which is the regime where a
// heterogeneous pool beats every homogeneous one.
std::vector<ArrivalEvent> GenerateMixedPoisson(const ModelRegistry& registry,
                                               double rps_per_model, Duration horizon,
                                               const Dataset& even, const Dataset& odd,
                                               uint64_t seed);

// Market-skewed workload: total arrival rate `total_rps` split across the
// registry's models by a Zipf(s) popularity distribution (Figure 1a's heavy
// tail uses s ~ 1.8).
std::vector<ArrivalEvent> GenerateSkewed(const ModelRegistry& registry, double total_rps,
                                         double zipf_s, Duration horizon, const Dataset& dataset,
                                         uint64_t seed);

// Diurnal workload: a nonhomogeneous Poisson process per model with rate
//   rate(t) = mean_rps * (1 + amplitude * sin(2*pi*t/period + phase_m))
// sampled by thinning. `amplitude` in [0, 1); each model gets a deterministic
// phase offset so peaks are staggered (the production pattern behind the
// Figure 18 utilization wave).
std::vector<ArrivalEvent> GenerateDiurnal(const ModelRegistry& registry, double mean_rps,
                                          Duration horizon, Duration period, double amplitude,
                                          const Dataset& dataset, uint64_t seed);

// Bursty workload: a two-state Markov-modulated Poisson process (MMPP) per
// model. Each model alternates between a calm state (rate `base_rps`) and a
// burst state (rate `base_rps * burst_multiplier`); dwell times in each
// state are exponential with means `mean_calm` / `mean_burst` seconds.
// Models flip independently (each gets its own seeded chain), so bursts
// overlap only by chance — the spiky, correlated-within-model but
// independent-across-model traffic of Figure 1(b) that overload control has
// to absorb. Time-averaged per-model rate:
//   base_rps * (mean_calm + burst_multiplier * mean_burst)
//             / (mean_calm + mean_burst).
std::vector<ArrivalEvent> GenerateBursty(const ModelRegistry& registry, double base_rps,
                                         double burst_multiplier, Duration mean_calm,
                                         Duration mean_burst, Duration horizon,
                                         const Dataset& dataset, uint64_t seed);

// Adds a burst for `model`: extra Poisson arrivals at `burst_rps` during
// [start, start + length). The result is re-sorted.
void AddBurst(std::vector<ArrivalEvent>& events, const ModelRegistry& registry, ModelId model,
              double burst_rps, TimePoint start, Duration length, const Dataset& dataset,
              uint64_t seed);

// Per-model request counts of a trace (for the Figure 1a CDF).
std::vector<uint64_t> CountPerModel(const std::vector<ArrivalEvent>& events, size_t model_count);

// Arrival rate time series of a trace in `bucket` second bins (Figure 1b).
std::vector<double> RateSeries(const std::vector<ArrivalEvent>& events, Duration horizon,
                               Duration bucket);

}  // namespace aegaeon

#endif  // AEGAEON_WORKLOAD_GENERATOR_H_
