#include "workload/dataset.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aegaeon {

Dataset::Dataset(std::string name, double input_mu, double input_sigma, double output_mu,
                 double output_sigma, double input_scale, double output_scale)
    : name_(std::move(name)),
      input_mu_(input_mu),
      input_sigma_(input_sigma),
      output_mu_(output_mu),
      output_sigma_(output_sigma),
      input_scale_(input_scale),
      output_scale_(output_scale) {}

LengthSample Dataset::Sample(Rng& rng) const {
  double prompt = rng.LogNormal(input_mu_, input_sigma_) * input_scale_;
  double output = rng.LogNormal(output_mu_, output_sigma_) * output_scale_;
  LengthSample sample;
  sample.prompt_tokens = std::clamp<int64_t>(static_cast<int64_t>(prompt), kMinLen, kMaxPrompt);
  sample.output_tokens = std::clamp<int64_t>(static_cast<int64_t>(output), kMinLen, kMaxOutput);
  return sample;
}

double Dataset::MeanPrompt() const {
  return std::exp(input_mu_ + input_sigma_ * input_sigma_ / 2.0) * input_scale_;
}

double Dataset::MeanOutput() const {
  return std::exp(output_mu_ + output_sigma_ * output_sigma_ / 2.0) * output_scale_;
}

Dataset Dataset::ShareGpt() {
  // Log-normal fit: mean prompt = e^(4.5 + 0.605) ~ 165 tokens, mean output
  // = e^(5.25 + 0.405) ~ 286 tokens, matching published ShareGPT stats.
  return Dataset("ShareGPT", 4.5, 1.1, 5.25, 0.9);
}

Dataset Dataset::ShareGptIx2() {
  return Dataset("ShareGPT-ix2", 4.5, 1.1, 5.25, 0.9, /*input_scale=*/2.0, /*output_scale=*/1.0);
}

Dataset Dataset::ShareGptOx2() {
  return Dataset("ShareGPT-ox2", 4.5, 1.1, 5.25, 0.9, /*input_scale=*/1.0, /*output_scale=*/2.0);
}

Dataset Dataset::Summarize() {
  // Document summarization / extraction: long prompts (mean ~2k tokens),
  // short outputs (mean ~80). The prefill-heavy counterpart to chat —
  // load concentrates in compute-bound prefill instead of decode.
  return Dataset("Summarize", 7.3, 0.8, 4.2, 0.5);
}

}  // namespace aegaeon
