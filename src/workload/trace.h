// Workload trace persistence: save/load arrival traces as CSV so
// experiments can be replayed bit-exactly across systems and runs.
//
// Format (header line + one row per request):
//   time,model,prompt_tokens,output_tokens

#ifndef AEGAEON_WORKLOAD_TRACE_H_
#define AEGAEON_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/request.h"

namespace aegaeon {

void WriteTrace(std::ostream& os, const std::vector<ArrivalEvent>& events);
bool WriteTraceFile(const std::string& path, const std::vector<ArrivalEvent>& events);

// Parses a trace; returns false (and leaves `events` empty) on malformed
// input, including rows whose timestamps go backwards — a recorded arrival
// sequence is monotone by construction, so out-of-order rows indicate a
// corrupt or hand-edited file rather than something to silently re-sort.
// On failure `error` (when non-null) receives a one-line reason with the
// offending row number.
bool ReadTrace(std::istream& is, std::vector<ArrivalEvent>& events,
               std::string* error = nullptr);
bool ReadTraceFile(const std::string& path, std::vector<ArrivalEvent>& events,
                   std::string* error = nullptr);

}  // namespace aegaeon

#endif  // AEGAEON_WORKLOAD_TRACE_H_
