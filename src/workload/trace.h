// Workload trace persistence: save/load arrival traces as CSV so
// experiments can be replayed bit-exactly across systems and runs.
//
// Format (header line + one row per request):
//   time,model,prompt_tokens,output_tokens

#ifndef AEGAEON_WORKLOAD_TRACE_H_
#define AEGAEON_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/request.h"

namespace aegaeon {

void WriteTrace(std::ostream& os, const std::vector<ArrivalEvent>& events);
bool WriteTraceFile(const std::string& path, const std::vector<ArrivalEvent>& events);

// Parses a trace; returns false (and leaves `events` empty) on malformed
// input. Rows must be sorted by time; unsorted rows are sorted on load.
bool ReadTrace(std::istream& is, std::vector<ArrivalEvent>& events);
bool ReadTraceFile(const std::string& path, std::vector<ArrivalEvent>& events);

}  // namespace aegaeon

#endif  // AEGAEON_WORKLOAD_TRACE_H_
