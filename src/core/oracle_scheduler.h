// Offline oracle for decoding-phase quota schedules.
//
// §4.1 notes that optimally scheduling token generation with auto-scaling is
// an ILP that cannot be solved in real time; Algorithm 2 is the closed-form
// heuristic. This module provides the small-instance ground truth: for a
// work list of batches (step time, TBT target, switch cost each), it
// evaluates the steady-state SLO attainment of any periodic quota assignment
// analytically, and grid-searches the quota space for the best one. Tests
// use it to show the Eq. 2-3 quotas are near-optimal within the periodic
// round-robin family.

#ifndef AEGAEON_CORE_ORACLE_SCHEDULER_H_
#define AEGAEON_CORE_ORACLE_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace aegaeon {

struct OracleBatch {
  Duration step_time = 0.02;   // t_k
  Duration tbt = 0.1;          // d_k
  Duration switch_cost = 0.5;  // auto-scaling cost paid when rotating in
};

// Steady-state token SLO attainment of the periodic schedule that gives
// batch k a contiguous quota of quotas[k] per round (round-robin order,
// each rotation paying the batch's switch cost). With output buffering, a
// batch's long-run attainment is the ratio of its token emission rate to
// its deadline rate, capped at 1:
//   attainment_k = min(1, floor(q_k/t_k) * d_k / R),  R = sum_i (q_i + c_i)
// The returned value is the token-weighted mean across batches (all batches
// weighted equally, matching Algorithm 2's uniform-batch analysis).
double PeriodicAttainment(const std::vector<OracleBatch>& batches,
                          const std::vector<Duration>& quotas);

struct OracleResult {
  std::vector<Duration> quotas;
  double attainment = 0.0;
  uint64_t evaluated = 0;  // schedules examined
};

// Exhaustive grid search over per-batch quotas drawn from `grid` (all
// combinations; grid.size()^batches evaluations). Feasible for <= ~5
// batches with a dozen grid points.
OracleResult GridSearchQuotas(const std::vector<OracleBatch>& batches,
                              const std::vector<Duration>& grid);

// Convenience: a geometric grid of `points` quotas in [lo, hi].
std::vector<Duration> GeometricGrid(Duration lo, Duration hi, int points);

}  // namespace aegaeon

#endif  // AEGAEON_CORE_ORACLE_SCHEDULER_H_
