// Algorithm 2: batched weighted round-robin scheduling for the decoding
// phase (§4.3), including the quota formula of Equations (2) and (3).
//
// Each decoding instance rotates through a work list of per-model batches.
// At the start of a round, batch i receives a time quota
//
//     q_i = c / (n_i * (alpha - sum_k 1/n_k)),     n_k = d_k / t_k
//
// where t_k is the batch's per-step decode time, d_k its TBT target, and c
// the total auto-scaling overhead for the models in the list. alpha (the
// reciprocal of the round's estimated SLO attainment) is floored at 0.5 and
// includes a QMAX term that bounds each quota by QMAX * n_min / n_i.

#ifndef AEGAEON_CORE_DECODE_SCHEDULER_H_
#define AEGAEON_CORE_DECODE_SCHEDULER_H_

#include <vector>

#include "core/request.h"
#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

// Inputs describing one batch in the work list for quota computation.
struct BatchQuotaInput {
  Duration step_time = 0.0;  // t_k: one decoding step for this batch
  Duration tbt = 0.1;        // d_k: the batch's TBT target
};

struct QuotaResult {
  std::vector<Duration> quotas;    // q_i per batch
  double alpha = 0.0;              // Eq. (3)
  double estimated_attainment = 1.0;  // min(1, 1/alpha)
};

// Equations (2) and (3). `switch_overhead_total` is c: the summed
// auto-scaling overhead of the models in the work list for this round.
// When the list has a single batch (or c == 0), every quota is qmax: there
// is nothing to rotate against, so the batch simply decodes.
QuotaResult ComputeQuotas(const std::vector<BatchQuotaInput>& batches,
                          Duration switch_overhead_total, Duration qmax,
                          double alpha_floor = 0.5);

// A batch of same-model decoding requests in an instance's work list.
struct DecodeBatch {
  ModelId model = kInvalidModel;
  std::vector<Request*> requests;

  int64_t TotalContextTokens() const {
    int64_t total = 0;
    for (const Request* r : requests) {
      total += r->context_tokens();
    }
    return total;
  }
};

// Stable-reorders the work list so batches of the same model are adjacent
// (Algorithm 2, line 6), preserving the first-appearance order of models.
void GroupBatchesByModel(std::vector<DecodeBatch>& work_list);

// Dispatch (Algorithm 2, line 2): picks the decoding instance with the
// smallest work-list size. Ties break toward an instance already holding a
// batch of the request's model, then toward the lowest index.
// `work_list_sizes[i]` is the number of batches on instance i and
// `has_model[i]` whether instance i already serves the model.
int PickDecodeInstance(const std::vector<size_t>& work_list_sizes,
                       const std::vector<bool>& has_model);

}  // namespace aegaeon

#endif  // AEGAEON_CORE_DECODE_SCHEDULER_H_
