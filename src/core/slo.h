// Service-level objectives and per-token deadline accounting (§2.1, Fig. 3).
//
// SLO attainment is the percentage of token generation times that meet their
// deadlines: token 0 (the first token) is due TTFT after arrival, and token
// k > 0 is due TTFT + k*TBT after arrival. A delayed token does not shift
// later deadlines — early tokens are buffered, which is exactly the slack
// Aegaeon's decode scheduler exploits (§4.3).

#ifndef AEGAEON_CORE_SLO_H_
#define AEGAEON_CORE_SLO_H_

#include <cstdint>

#include "sim/time.h"

namespace aegaeon {

struct SloSpec {
  Duration ttft = 10.0;   // Time-To-First-Token target
  Duration tbt = 0.100;   // Time-Between-Tokens target

  // The paper's production SLO (§7.1): 10 s TTFT, 100 ms TBT.
  static SloSpec Chatbot() { return SloSpec{10.0, 0.100}; }

  // Uniformly scaled SLO (Figure 13 uses 0.5x / 0.3x / 0.2x).
  SloSpec Scaled(double factor) const { return SloSpec{ttft * factor, tbt * factor}; }

  // Deadline of token `index` (0-based) for a request arriving at `arrival`.
  TimePoint DeadlineFor(TimePoint arrival, int64_t index) const {
    return arrival + ttft + static_cast<double>(index) * tbt;
  }
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_SLO_H_
