#include "core/cluster.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "sanitizer/simsan.h"

namespace aegaeon {
namespace {

// Minimum re-poll interval for a stalled decode round (all requests waiting
// on transfers). Progress is guaranteed because every wait is bounded by a
// transfer completion event.
constexpr Duration kRoundRetryDelay = 0.005;

}  // namespace

AegaeonCluster::AegaeonCluster(AegaeonConfig config, const ModelRegistry& registry,
                               const GpuSpec& gpu_spec)
    : config_(std::move(config)), registry_(registry), latency_(gpu_spec) {
  const int instances = config_.prefill_instances + config_.decode_instances;
  const int nodes = std::max(1, std::min(config_.nodes, instances));
  config_.nodes = nodes;
  aging_ = config_.aging;

  // Balanced contiguous instance-to-node assignment.
  std::vector<int> node_of_instance(instances);
  std::vector<int> gpus_per_node(nodes, 0);
  for (int i = 0; i < instances; ++i) {
    node_of_instance[i] = i * nodes / instances;
    gpus_per_node[node_of_instance[i]] += config_.instance_tp;
  }
  node_states_.resize(nodes);
  GpuId next_gpu_id = 0;
  for (int n = 0; n < nodes; ++n) {
    NodeState& state = node_states_[n];
    state.hw = std::make_unique<Node>(gpus_per_node[n], gpu_spec, /*dram_bytes=*/2048.0 * kGiB,
                                      next_gpu_id);
    next_gpu_id += gpus_per_node[n];
    state.model_cache =
        std::make_unique<ModelCache>(config_.model_cache_bytes, config_.remote_registry_bw);
    if (config_.ssd_cache_bytes > 0.0) {
      state.model_cache->EnableSsdTier(config_.ssd_cache_bytes, config_.ssd_bw);
    }
    state.cpu_kv = std::make_unique<UnifiedKvCache>(
        "cpu-kv-n" + std::to_string(n), static_cast<uint64_t>(config_.cpu_kv_bytes),
        static_cast<uint64_t>(config_.slab_bytes), config_.tokens_per_block);
    state.fabric = std::make_unique<StreamSim>("fabric-n" + std::to_string(n));
  }

  // Register every model's KV shape in every cache up front: identical
  // geometries share a shape class, and registration order makes the ids
  // identical across caches. The CPU caches store the full KV; GPU caches
  // store per-rank shards (kv_heads / tp).
  cpu_shape_of_model_.reserve(registry_.size());
  gpu_shape_of_model_.reserve(registry_.size());
  for (const DeployedModel& model : registry_.models()) {
    ShapeClassId cpu_id = 0;
    for (NodeState& state : node_states_) {
      cpu_id = state.cpu_kv->RegisterShape(model.spec.kv_shape(), model.spec.dtype_bytes);
    }
    cpu_shape_of_model_.push_back(cpu_id);
    // GPU shapes are registered inside MakeGpuKvCache; mirror the order to
    // learn the ids (registration is idempotent for identical geometry).
    gpu_shape_of_model_.push_back(0);
  }

  std::vector<int> next_local_gpu(nodes, 0);
  prefill_units_.resize(config_.prefill_instances);
  for (int i = 0; i < config_.prefill_instances; ++i) {
    PrefillUnit& unit = prefill_units_[i];
    unit.index = i;
    unit.node = node_of_instance[i];
    unit.gpu = &node_states_[unit.node].hw->gpu(next_local_gpu[unit.node]);
    next_local_gpu[unit.node] += config_.instance_tp;
    unit.kv_cache = MakeGpuKvCache(unit.gpu->id());
    unit.scaler = MakeScaler(*unit.gpu, unit.node);
  }
  decode_units_.resize(config_.decode_instances);
  for (int i = 0; i < config_.decode_instances; ++i) {
    DecodeUnit& unit = decode_units_[i];
    unit.index = i;
    unit.node = node_of_instance[config_.prefill_instances + i];
    unit.gpu = &node_states_[unit.node].hw->gpu(next_local_gpu[unit.node]);
    next_local_gpu[unit.node] += config_.instance_tp;
    unit.kv_cache = MakeGpuKvCache(unit.gpu->id());
    unit.scaler = MakeScaler(*unit.gpu, unit.node);
  }
  // Learn the gpu-side shape ids from the first unit's cache.
  {
    UnifiedKvCache* probe = !prefill_units_.empty() ? prefill_units_[0].kv_cache.get()
                                                    : decode_units_[0].kv_cache.get();
    for (const DeployedModel& model : registry_.models()) {
      gpu_shape_of_model_[model.id] =
          probe->RegisterShape(model.spec.kv_shape_shard(model.tp), model.spec.dtype_bytes);
    }
  }

  PrefillScheduler::Estimators estimators;
  estimators.exec_estimate = [this](const Request& r) {
    const DeployedModel& dm = registry_.Get(r.model);
    return latency_.PrefillOne(dm.spec, dm.tp, r.prompt_tokens);
  };
  estimators.switch_estimate = [this](ModelId from, ModelId to) {
    if (from == to) {
      return Duration{0.0};
    }
    const DeployedModel& dm = registry_.Get(to);
    return latency_.SwitchLoad(dm.spec, dm.tp);
  };
  estimators.current_model = [this](int i) { return prefill_units_[i].scaler->current_model(); };
  prefill_sched_ = std::make_unique<PrefillScheduler>(config_.prefill_instances,
                                                      config_.max_group_size, estimators);
}

std::unique_ptr<UnifiedKvCache> AegaeonCluster::MakeGpuKvCache(int gpu_id) {
  auto cache = std::make_unique<UnifiedKvCache>(
      "gpu-kv-" + std::to_string(gpu_id), static_cast<uint64_t>(config_.gpu_kv_bytes),
      static_cast<uint64_t>(config_.slab_bytes), config_.tokens_per_block);
  // Shape-class ids must match the original registration order.
  for (const DeployedModel& model : registry_.models()) {
    cache->RegisterShape(model.spec.kv_shape_shard(model.tp), model.spec.dtype_bytes);
  }
  return cache;
}

std::unique_ptr<AutoScaler> AegaeonCluster::MakeScaler(GpuDevice& gpu, int node) {
  // Each instance pins only its share of the CPU KV pool.
  const double pin_share =
      config_.cpu_kv_bytes / (config_.prefill_instances + config_.decode_instances);
  auto scaler = std::make_unique<AutoScaler>(gpu, latency_, *node_states_[node].model_cache,
                                             config_.engine_costs, config_.opt_level,
                                             config_.weight_buffer_bytes, pin_share);
  if (config_.opt_level >= OptLevel::kComponentReuse) {
    // §5.1: engines and workers are initialized once per instance before
    // serving; every component except weights and KV is reused.
    scaler->BootBeforeServing();
  }
  scaler->set_prefetch_enabled(config_.prefetch);
  scaler->set_resident_capacity(config_.resident_models);
  return scaler;
}

ShapeClassId AegaeonCluster::ShapeFor(const UnifiedKvCache& cache, ModelId model) const {
  for (const NodeState& state : node_states_) {
    if (&cache == state.cpu_kv.get()) {
      return cpu_shape_of_model_[model];
    }
  }
  return gpu_shape_of_model_[model];
}

void AegaeonCluster::ScheduleFailure(bool prefill_partition, int index, TimePoint when,
                                     Duration downtime) {
  // Validate at schedule time: plans are matched by index when they fire,
  // so an out-of-range index used to be accepted here and then silently
  // hit nothing (or stray memory) mid-run. Fail fast instead.
  const int limit = prefill_partition ? config_.prefill_instances : config_.decode_instances;
  if (index < 0 || index >= limit || !(when >= 0.0) || !(downtime > 0.0)) {
    std::fprintf(stderr,
                 "AegaeonCluster::ScheduleFailure: invalid plan — %s instance %d (pool has "
                 "%d), when=%g, downtime=%g\n",
                 prefill_partition ? "prefill" : "decode", index, limit, when, downtime);
    std::abort();
  }
  FailurePlan plan;
  plan.prefill_partition = prefill_partition;
  plan.index = index;
  plan.when = when;
  plan.downtime = downtime;
  failure_plans_.push_back(plan);
}

void AegaeonCluster::ScheduleLinkDegradation(TimePoint when, Duration duration,
                                             double bandwidth_factor) {
  if (!(when >= 0.0) || !(duration > 0.0) || !(bandwidth_factor > 0.0) ||
      bandwidth_factor > 1.0) {
    std::fprintf(stderr,
                 "AegaeonCluster::ScheduleLinkDegradation: invalid plan — when=%g, "
                 "duration=%g, factor=%g (want when >= 0, duration > 0, 0 < factor <= 1)\n",
                 when, duration, bandwidth_factor);
    std::abort();
  }
  LinkDegradationPlan plan;
  plan.when = when;
  plan.duration = duration;
  plan.bandwidth_factor = bandwidth_factor;
  link_plans_.push_back(plan);
}

void AegaeonCluster::SetLinkHealth(double fraction) {
  for (NodeState& state : node_states_) {
    for (int i = 0; i < state.hw->gpu_count(); ++i) {
      state.hw->gpu(i).link().set_health(fraction);
    }
  }
}

double AegaeonCluster::AgingLatencyFactor(TimePoint now) const {
  if (aging_.latency_rate <= 0.0 || now <= aging_.start) {
    return 1.0;
  }
  return 1.0 + aging_.latency_rate * (now - aging_.start);
}

double AegaeonCluster::AgingKvFactor(TimePoint now) const {
  if (aging_.fragmentation_rate <= 0.0 || now <= aging_.start) {
    return 1.0;
  }
  return 1.0 + aging_.fragmentation_rate * (now - aging_.start);
}

void AegaeonCluster::MakeProxy() {
  ServingProxy::Backend backend;
  backend.queue_delay = [this](const Request& r) { return BacklogEstimate(r); };
  backend.exec_estimate = [this](const Request& r) {
    const DeployedModel& dm = registry_.Get(r.model);
    return latency_.PrefillOne(dm.spec, dm.tp, r.prompt_tokens);
  };
  backend.slo = [this](ModelId m) { return registry_.Get(m).slo; };
  backend.dispatch = [this](Request* r) { OnArrival(r); };
  proxy_ = std::make_unique<ServingProxy>(config_.proxy, sim_, registry_.size(),
                                          std::move(backend));
}

Duration AegaeonCluster::BacklogEstimate(const Request& request) const {
  (void)request;
  Duration best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < prefill_units_.size(); ++i) {
    if (prefill_units_[i].failed) {
      continue;
    }
    best = std::min(best, prefill_sched_->LoadEstimate(static_cast<int>(i)));
  }
  if (!std::isfinite(best)) {
    return 1e9;  // whole prefill partition down; recovery re-pumps the proxy
  }
  // Decode back-pressure: requests already prefilled but waiting for decode
  // KV capacity mean new admissions stall right after their first token.
  // Each overflow entry adds roughly one decode-round quota of delay spread
  // across the decoding instances.
  if (!decode_overflow_.empty() && !decode_units_.empty()) {
    best += static_cast<double>(decode_overflow_.size()) * config_.qmax /
            static_cast<double>(decode_units_.size());
  }
  return best;
}

void AegaeonCluster::RequeuePrefill(Request* request) {
  int target = prefill_sched_->OnArrival(request);
  TryStartPrefill(target);
}

RunMetrics AegaeonCluster::Run(const std::vector<ArrivalEvent>& trace) {
  BeginRun();
  InjectArrivals(trace.data(), trace.size(), 0.0);
  AdvanceAll();
  return FinishRun();
}

void AegaeonCluster::BeginRun() {
  requests_.clear();
  completed_count_ = 0;
  if (config_.proxy.enabled) {
    MakeProxy();
  }
  // Pre-stage checkpoints in every node's host model cache (deployment
  // warms caches before serving; overflow falls back to LRU + registry).
  for (NodeState& state : node_states_) {
    for (const DeployedModel& model : registry_.models()) {
      state.model_cache->Warm(model.id, model.spec.weight_bytes());
    }
  }
  for (const FailurePlan& plan : failure_plans_) {
    sim_.At(plan.when, [this, plan] {
      if (plan.prefill_partition) {
        FailPrefillUnit(plan.index, plan.downtime);
      } else {
        FailDecodeUnit(plan.index, plan.downtime);
      }
    });
  }
  for (const LinkDegradationPlan& plan : link_plans_) {
    sim_.At(plan.when, [this, plan] { SetLinkHealth(plan.bandwidth_factor); });
    sim_.At(plan.when + plan.duration, [this] { SetLinkHealth(1.0); });
  }
}

void AegaeonCluster::InjectArrivals(const ArrivalEvent* events, size_t count, Duration delay) {
  std::vector<TimePoint>& times = inject_times_scratch_;
  times.clear();
  times.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    times.push_back(events[i].time + delay);
  }
  InjectArrivals(events, times.data(), count);
}

void AegaeonCluster::InjectArrivals(const ArrivalEvent* events, const TimePoint* deliver_at,
                                    size_t count) {
  std::vector<EventQueue::Pending>& batch = inject_scratch_;
  batch.clear();
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const ArrivalEvent& event = events[i];
    Request request;
    request.id = requests_.size();
    request.model = event.model;
    request.prompt_tokens = event.prompt_tokens;
    request.output_tokens = std::max<int64_t>(1, event.output_tokens);
    // Arrival stays the client-observed time: dispatch delay — and, after
    // a dispatcher failover, the whole replay detour — surfaces as prefill
    // wait / TTFT, not as a shifted arrival.
    request.arrival = event.time;
    request.priority = event.priority;
    requests_.push_back(request);
    Request* r = &requests_.back();
    EventQueue::Pending pending;
    pending.when = deliver_at[i];
    if (proxy_ != nullptr) {
      pending.cb = [this, r] { proxy_->OnArrival(r); };
    } else {
      pending.cb = [this, r] { OnArrival(r); };
    }
    batch.push_back(std::move(pending));
  }
  // Range form: the scratch keeps its capacity for the next epoch.
  sim_.ScheduleBatch(batch.data(), batch.size());
}

uint64_t AegaeonCluster::AdvanceUntil(TimePoint horizon) { return sim_.RunUntil(horizon); }

uint64_t AegaeonCluster::AdvanceAll() { return sim_.Run(); }

RunMetrics AegaeonCluster::FinishRun() {
  // Teardown audit: after quiescence every KV block must be free or parked
  // on a move list, and shadow VRAM accounting must match each device.
  for (PrefillUnit& unit : prefill_units_) {
    simsan::NoteTeardownCheck(&unit.kv_cache->slabs());
  }
  for (DecodeUnit& unit : decode_units_) {
    simsan::NoteTeardownCheck(&unit.kv_cache->slabs());
  }
  for (NodeState& state : node_states_) {
    simsan::NoteTeardownCheck(&state.cpu_kv->slabs());
    for (int i = 0; i < state.hw->gpu_count(); ++i) {
      simsan::NoteVramTeardown(&state.hw->gpu(i), state.hw->gpu(i).vram_used());
    }
  }
  Duration horizon = sim_.Now();
  RunMetrics metrics = FoldRequests(requests_, horizon);
  metrics.switch_latency_samples = SwitchLatencies();
  metrics.sim = sim_.perf();
  return metrics;
}

uint64_t AegaeonCluster::settled_requests() const {
  uint64_t settled = completed_count_;
  if (proxy_ != nullptr) {
    const ProxyStats& stats = proxy_->stats();
    settled += stats.rejected + stats.shed + stats.timed_out;
  }
  return settled;
}

std::vector<double> AegaeonCluster::SwitchLatencies() const {
  std::vector<double> all;
  for (const PrefillUnit& unit : prefill_units_) {
    const auto& v = unit.scaler->switch_latencies();
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const DecodeUnit& unit : decode_units_) {
    const auto& v = unit.scaler->switch_latencies();
    all.insert(all.end(), v.begin(), v.end());
  }
  return all;
}

AegaeonCluster::ScalingStats AegaeonCluster::GetScalingStats() const {
  ScalingStats stats;
  double prefill_sum = 0.0;
  double decode_sum = 0.0;
  for (const PrefillUnit& unit : prefill_units_) {
    stats.prefill_switches += unit.scaler->switches();
    stats.prefetch_hits += unit.scaler->prefetch_hits();
    stats.prefetch_issued += unit.scaler->prefetch_issued();
    for (double v : unit.scaler->switch_latencies()) {
      prefill_sum += v;
    }
  }
  for (const DecodeUnit& unit : decode_units_) {
    stats.decode_switches += unit.scaler->switches();
    stats.prefetch_hits += unit.scaler->prefetch_hits();
    stats.prefetch_issued += unit.scaler->prefetch_issued();
    for (double v : unit.scaler->switch_latencies()) {
      decode_sum += v;
    }
  }
  stats.prefill_switch_mean =
      stats.prefill_switches == 0 ? 0.0 : prefill_sum / stats.prefill_switches;
  stats.decode_switch_mean = stats.decode_switches == 0 ? 0.0 : decode_sum / stats.decode_switches;
  return stats;
}

std::vector<double> AegaeonCluster::GpuUtilization(Duration horizon) const {
  std::vector<double> util;
  if (horizon <= 0.0) {
    return util;
  }
  for (const NodeState& state : node_states_) {
    for (int i = 0; i < state.hw->gpu_count(); ++i) {
      util.push_back(state.hw->gpu(i).compute_stream().busy_time() / horizon);
    }
  }
  return util;
}

// --------------------------------------------------------------------------
// Fault injection
// --------------------------------------------------------------------------

void AegaeonCluster::FailPrefillUnit(int index, Duration downtime) {
  PrefillUnit& unit = prefill_units_[index];
  unit.failed = true;
  unit.epoch++;  // invalidates in-flight completion events
  unit.busy = false;
  prefill_sched_->SetAvailable(index, false);

  // The in-flight prefill (if any) and every queued request re-dispatch to
  // healthy instances; no KV existed for them yet.
  std::vector<Request*> orphans = prefill_sched_->DrainQueue(index);
  if (unit.active != nullptr) {
    orphans.push_back(unit.active);
    unit.active = nullptr;
  }
  for (Request* r : orphans) {
    r->phase = RequestPhase::kQueuedPrefill;
    r->prefilled_tokens = 0;  // partial chunk progress died with the GPU
    r->control_overhead += config_.control_cost_per_decision;
    if (proxy_ != nullptr) {
      // Displaced work re-enters after an exponential backoff instead of
      // piling up on the surviving instances all at once.
      proxy_->RetryAfterFailure(r, [this, r] { RequeuePrefill(r); });
    } else {
      RequeuePrefill(r);
    }
  }
  sim_.After(downtime, [this, index] { RecoverPrefillUnit(index); });
}

void AegaeonCluster::RecoverPrefillUnit(int index) {
  PrefillUnit& unit = prefill_units_[index];
  // The replacement engine boots during the downtime: fresh scaler and KV
  // cache, no resident model.
  unit.scaler = MakeScaler(*unit.gpu, unit.node);
  unit.kv_cache = MakeGpuKvCache(unit.gpu->id());
  unit.failed = false;
  unit.busy = false;
  prefill_sched_->SetAvailable(index, true);
  TryStartPrefill(index);
  if (proxy_ != nullptr) {
    proxy_->OnBackendProgress();
  }
}

void AegaeonCluster::FailDecodeUnit(int index, Duration downtime) {
  DecodeUnit& unit = decode_units_[index];
  unit.failed = true;
  unit.epoch++;
  unit.round_active = false;
  unit.committed_kv_bytes = 0.0;

  // Collect every unfinished request assigned here.
  std::vector<Request*> orphans;
  for (DecodeBatch& batch : unit.work_list) {
    for (Request* r : batch.requests) {
      if (!r->finished()) {
        orphans.push_back(r);
      }
    }
  }
  for (Request* r : unit.parked) {
    if (!r->finished() &&
        std::find(orphans.begin(), orphans.end(), r) == orphans.end()) {
      orphans.push_back(r);
    }
  }
  unit.work_list.clear();
  unit.parked.clear();
  // Device memory is gone with the instance; drop the cache wholesale.
  unit.kv_cache = MakeGpuKvCache(unit.gpu->id());

  for (Request* r : orphans) {
    r->billed_kv_tokens = 0;
    r->control_overhead += config_.control_cost_per_decision;
    if (r->kv.location == KvLocation::kCpu) {
      // Host copy survives: just re-dispatch to another decoding instance.
      r->phase = RequestPhase::kQueuedDecode;
      if (proxy_ != nullptr) {
        proxy_->RetryAfterFailure(r, [this, r] { DispatchDecode(r); });
      } else {
        DispatchDecode(r);
      }
    } else {
      // Device-resident KV is lost: recompute it via the prefill phase
      // (tokens already delivered to the user stay delivered).
      r->kv = KvHandle{};
      r->phase = RequestPhase::kQueuedPrefill;
      r->prefilled_tokens = 0;
      if (proxy_ != nullptr) {
        proxy_->RetryAfterFailure(r, [this, r] { RequeuePrefill(r); });
      } else {
        RequeuePrefill(r);
      }
    }
  }
  sim_.After(downtime, [this, index] { RecoverDecodeUnit(index); });
}

void AegaeonCluster::RecoverDecodeUnit(int index) {
  DecodeUnit& unit = decode_units_[index];
  unit.scaler = MakeScaler(*unit.gpu, unit.node);
  unit.failed = false;
  unit.last_pressure = -1e18;
  DrainDecodeOverflow();
  if (proxy_ != nullptr) {
    proxy_->OnBackendProgress();
  }
}

// --------------------------------------------------------------------------
// Prefill path
// --------------------------------------------------------------------------

void AegaeonCluster::OnArrival(Request* request) {
  request->phase = RequestPhase::kQueuedPrefill;
  request->control_overhead += config_.control_cost_per_decision;
  int unit_index = prefill_sched_->OnArrival(request);
  TryStartPrefill(unit_index);
}

void AegaeonCluster::TryStartPrefill(int unit_index) {
  PrefillUnit& unit = prefill_units_[unit_index];
  if (unit.busy || unit.failed) {
    return;
  }
  Request* request = prefill_sched_->NextJob(unit_index);
  if (request == nullptr) {
    return;
  }
  unit.busy = true;
  unit.active = request;
  request->phase = RequestPhase::kPrefilling;

  TimePoint now = sim_.Now();
  const DeployedModel& dm = registry_.Get(request->model);
  TimePoint ready = now;
  if (unit.scaler->current_model() != dm.id) {
    // Preemptive auto-scaling: prefill instances hold no persistent KV (it
    // is offloaded right after each prefill), so no KV volume rides along.
    ScaleResult result = unit.scaler->ScaleTo(dm, now);
    ready = result.ready_at;
    if (timeline_ != nullptr && ready > now) {
      timeline_->Record(unit_index, "switch", dm.spec.name, now, ready - now);
    }
  }
  // Prefetch the next distinct model in this queue while we execute (§5.2).
  ModelId upcoming = prefill_sched_->UpcomingModel(unit_index);
  if (upcoming != kInvalidModel && upcoming != dm.id) {
    unit.scaler->Prefetch(registry_.Get(upcoming), ready);
  }

  // A recomputation after a decode-instance failure re-prefills the whole
  // accumulated context, not just the original prompt. With chunked prefill
  // enabled, long prompts run one chunk at a time, re-queueing between
  // chunks so they cannot monopolize the instance.
  const int64_t total_tokens = request->context_tokens();
  int64_t chunk = total_tokens - request->prefilled_tokens;
  if (config_.prefill_chunk_tokens > 0 && chunk > config_.prefill_chunk_tokens) {
    chunk = config_.prefill_chunk_tokens;
  }
  // Attention in this chunk spans the already-prefilled prefix too.
  double sq_sum = static_cast<double>(chunk) *
                  static_cast<double>(request->prefilled_tokens + chunk);
  // Software aging inflates execution latency; the factor is exactly 1.0
  // (a bitwise no-op) without drift.
  Duration exec = latency_.Prefill(dm.spec, dm.tp, chunk, sq_sum) * AgingLatencyFactor(ready);
  StreamSim::Span span = unit.gpu->compute_stream().Enqueue(ready, exec);
  if (request->prefilled_tokens == 0) {
    request->prefill_start = span.start;
    request->prefill_wait = span.start - request->arrival;
  }
  request->prefill_exec += span.end - span.start;
  if (timeline_ != nullptr) {
    timeline_->Record(unit_index, "prefill", dm.spec.name + "/r" + std::to_string(request->id),
                      span.start, span.end - span.start);
  }
  uint64_t epoch = unit.epoch;
  sim_.At(span.end, [this, unit_index, request, epoch, chunk, total_tokens] {
    PrefillUnit& unit = prefill_units_[unit_index];
    if (unit.epoch != epoch) {
      return;  // the instance crashed while this prefill was in flight
    }
    request->prefilled_tokens += chunk;
    if (request->prefilled_tokens < total_tokens) {
      // More chunks to go: yield the instance to at most one other group.
      unit.active = nullptr;
      unit.busy = false;
      prefill_sched_->PushContinuation(unit_index, request);
      TryStartPrefill(unit_index);
      return;
    }
    FinishPrefill(unit_index, request);
  });
}

void AegaeonCluster::FinishPrefill(int unit_index, Request* request) {
  PrefillUnit& unit = prefill_units_[unit_index];
  TimePoint now = sim_.Now();

  if (request->generated == 0) {
    // The prefill emits the first token (§2.1).
    request->generated = 1;
    request->first_token_time = now;
    request->last_progress = now;
    const SloSpec& slo = registry_.Get(request->model).slo;
    if (now <= slo.DeadlineFor(request->arrival, 0)) {
      request->tokens_met++;
    }
  }
  // (Recomputation after a failure emits no new tokens: the context's
  // tokens were already delivered.)

  // Materialize the KV cache on the prefill GPU, then offload it to the
  // unified CPU cache for the decode phase (Figure 10, P->C).
  unit.kv_cache->Reclaim(now);
  ShapeClassId gpu_shape = ShapeFor(*unit.kv_cache, request->model);
  std::vector<BlockRef> blocks = unit.kv_cache->AllocTokens(gpu_shape, request->context_tokens());
  if (blocks.empty()) {
    // GPU KV congested by in-flight offloads; retry shortly (bounded by the
    // kv-out stream draining).
    uint64_t epoch = unit.epoch;
    sim_.After(kRoundRetryDelay, [this, unit_index, request, epoch] {
      if (prefill_units_[unit_index].epoch == epoch) {
        FinishPrefill(unit_index, request);
      }
    });
    return;
  }
  request->kv.gpu_shape = gpu_shape;
  request->kv.cpu_shape = cpu_shape_of_model_[request->model];
  request->kv.tokens = request->context_tokens();
  request->kv.owner = request->id;
  request->kv.blocks = std::move(blocks);
  request->kv.location = KvLocation::kGpu;
  request->kv.gpu = unit.gpu->id();
  request->kv.last_transfer = unit.gpu->compute_stream().Record();

  // Shape ids are identical across caches (same registration order), so the
  // handle's shape stays valid after the swap to the CPU cache.
  bool out_ok = xfer_.SwapOut(request->kv, *unit.gpu, *unit.kv_cache, CpuKvOf(unit.node), now);
  request->kv.node = unit.node;
  if (!out_ok) {
    // Unified CPU cache exhausted: back off and retry; blocks free as
    // decoding completes elsewhere.
    unit.kv_cache->Free(request->kv.blocks);
    request->kv = KvHandle{};
    uint64_t epoch = unit.epoch;
    sim_.After(10 * kRoundRetryDelay, [this, unit_index, request, epoch] {
      if (prefill_units_[unit_index].epoch == epoch) {
        FinishPrefill(unit_index, request);
      }
    });
    return;
  }
  request->control_overhead += config_.control_cost_per_decision;

  unit.active = nullptr;
  unit.busy = false;
  TryStartPrefill(unit_index);
  if (proxy_ != nullptr) {
    proxy_->OnBackendProgress();  // a prefill slot just freed
  }

  if (request->finished()) {
    // Single-token request: done at prefill.
    request->completion = now;
    request->phase = RequestPhase::kDone;
    ++completed_count_;
    xfer_.Release(request->kv, *unit.kv_cache, CpuKvOf(request->kv.node));
    return;
  }
  DispatchDecode(request);
}

// --------------------------------------------------------------------------
// Decode path
// --------------------------------------------------------------------------

double AegaeonCluster::KvBytesPerToken(ModelId model) const {
  const DeployedModel& dm = registry_.Get(model);
  return dm.spec.kv_bytes_per_token() / dm.tp;
}

double AegaeonCluster::ExpectedKvBytes(ModelId model) const {
  return static_cast<double>(config_.expected_context_tokens) * KvBytesPerToken(model);
}

int AegaeonCluster::MaxBatchForModel(ModelId model) const {
  int capacity_limit = static_cast<int>(config_.gpu_kv_bytes / ExpectedKvBytes(model));
  return std::max(1, std::min(config_.max_decode_batch, capacity_limit));
}

void AegaeonCluster::DispatchDecode(Request* request) {
  request->phase = RequestPhase::kQueuedDecode;
  request->control_overhead += config_.control_cost_per_decision;
  if (!TryAssignDecode(request)) {
    // All decoding instances are at their KV capacity budget; the request
    // waits (this back-pressure is what degrades SLO attainment gracefully
    // at overload instead of thrashing the caches).
    decode_overflow_.push_back(request);
  }
}

bool AegaeonCluster::TryAssignDecode(Request* request) {
  const int max_batch = MaxBatchForModel(request->model);
  const double expected = ExpectedKvBytes(request->model);
  // Keep a small headroom: actual context lengths overshoot the estimate.
  // Software-aging fragmentation shrinks the usable pool over time.
  const double budget = 0.9 * config_.gpu_kv_bytes / AgingKvFactor(sim_.Now());

  std::vector<size_t> sizes(decode_units_.size());
  std::vector<bool> has_model(decode_units_.size(), false);
  bool any_capacity = false;
  for (size_t i = 0; i < decode_units_.size(); ++i) {
    DecodeUnit& unit = decode_units_[i];
    sizes[i] = unit.work_list.size();
    if (unit.failed || unit.committed_kv_bytes + expected > budget) {
      sizes[i] = std::numeric_limits<size_t>::max();  // ineligible
      continue;
    }
    any_capacity = true;
    // Locality: a unit on another node costs a fabric hop for the KV; bias
    // the least-loaded choice toward the KV's home node.
    if (unit.node != request->kv.node) {
      sizes[i] += 1;
    }
    for (const DecodeBatch& batch : unit.work_list) {
      if (batch.model == request->model &&
          batch.requests.size() < static_cast<size_t>(max_batch)) {
        has_model[i] = true;
        break;
      }
    }
  }
  if (!any_capacity) {
    return false;
  }
  int pick = PickDecodeInstance(sizes, has_model);
  DecodeUnit& unit = decode_units_[pick];
  // Bill at least the admission estimate; long prompts bill their actual
  // size up front, and later growth is billed as it happens.
  request->billed_kv_tokens =
      std::max<int64_t>(config_.expected_context_tokens, request->context_tokens());
  unit.committed_kv_bytes +=
      static_cast<double>(request->billed_kv_tokens) * KvBytesPerToken(request->model);
  (void)expected;

  bool joined = false;
  for (DecodeBatch& batch : unit.work_list) {
    if (batch.model == request->model && batch.requests.size() < static_cast<size_t>(max_batch)) {
      batch.requests.push_back(request);
      joined = true;
      break;
    }
  }
  if (!joined) {
    DecodeBatch batch;
    batch.model = request->model;
    batch.requests.push_back(request);
    unit.work_list.push_back(std::move(batch));
  }

  // Eagerly start the KV swap-in so it overlaps with work-list waiting
  // (Figure 10, C->D). Failure parks the request for round-boundary retry.
  if (!TrySwapIn(unit, request)) {
    unit.parked.push_back(request);
  }
  if (!unit.round_active) {
    StartRound(unit);
  }
  return true;
}

void AegaeonCluster::DrainDecodeOverflow() {
  while (!decode_overflow_.empty()) {
    Request* request = decode_overflow_.front();
    if (!TryAssignDecode(request)) {
      return;
    }
    decode_overflow_.pop_front();
  }
}

void AegaeonCluster::BillKvGrowth(DecodeUnit& unit, Request* request) {
  int64_t ctx = request->context_tokens();
  if (ctx > request->billed_kv_tokens) {
    unit.committed_kv_bytes +=
        static_cast<double>(ctx - request->billed_kv_tokens) * KvBytesPerToken(request->model);
    request->billed_kv_tokens = ctx;
  }
}

void AegaeonCluster::OnDecodeComplete(DecodeUnit& unit, Request* request) {
  unit.committed_kv_bytes = std::max(
      0.0, unit.committed_kv_bytes -
               static_cast<double>(request->billed_kv_tokens) * KvBytesPerToken(request->model));
  DrainDecodeOverflow();
  if (proxy_ != nullptr) {
    proxy_->OnBackendProgress();  // decode KV freed; back-pressure may clear
  }
}

bool AegaeonCluster::MigrateKv(KvHandle& handle, int to_node, TimePoint now) {
  if (handle.node == to_node || handle.location != KvLocation::kCpu) {
    return handle.node == to_node;
  }
  NodeState& src = node_states_[handle.node];
  NodeState& dst = node_states_[to_node];
  dst.cpu_kv->Reclaim(now);
  std::vector<BlockRef> blocks = dst.cpu_kv->AllocTokens(handle.cpu_shape, handle.tokens);
  if (blocks.empty() && handle.tokens > 0) {
    return false;
  }
  // Serialized sends on the source node's fabric endpoint; the copy cannot
  // start before the blocks' last transfer (rule ❷ applies across nodes).
  src.fabric->WaitEvent(handle.last_transfer);
  double bytes = static_cast<double>(src.cpu_kv->BlockBytes(handle.cpu_shape)) *
                 static_cast<double>(handle.blocks.size());
  StreamSim::Span span = src.fabric->Enqueue(now, bytes / config_.internode_bw);
  EventSim done = src.fabric->Record();
  simsan::NoteTransfer(&src.cpu_kv->slabs(), handle.blocks, &dst.cpu_kv->slabs(), blocks,
                       src.fabric.get(), now, span.start, span.end, handle.owner);
  src.cpu_kv->DeferFree(std::move(handle.blocks), done);
  handle.blocks = std::move(blocks);
  handle.node = to_node;
  handle.last_transfer = done;
  kv_migrations_++;
  return true;
}

bool AegaeonCluster::TrySwapIn(DecodeUnit& unit, Request* request) {
  if (request->kv.location == KvLocation::kGpu) {
    return true;
  }
  TimePoint now = sim_.Now();
  if (request->kv.node != unit.node && !MigrateKv(request->kv, unit.node, now)) {
    return false;
  }
  bool ok = xfer_.SwapIn(request->kv, *unit.gpu, *unit.kv_cache, CpuKvOf(unit.node), now);
  if (ok) {
    request->control_overhead += config_.control_cost_per_decision;
  }
  return ok;
}

void AegaeonCluster::StartRound(DecodeUnit& unit) {
  if (unit.failed) {
    unit.round_active = false;
    return;
  }
  unit.round_active = true;
  TimePoint now = sim_.Now();
  unit.kv_cache->Reclaim(now);
  CpuKvOf(unit.node).Reclaim(now);

  // Retry parked swap-ins, but only when the cache verifiably has room and
  // capacity pressure has cooled down — blind retries would thrash the
  // caches with swap-in/out cycles and starve resident requests.
  if (now >= unit.last_pressure + 1.0) {
    for (auto it = unit.parked.begin(); it != unit.parked.end();) {
      Request* r = *it;
      if (r->finished()) {
        it = unit.parked.erase(it);
        continue;
      }
      bool has_room = unit.kv_cache->FreeTokensEstimate(r->kv.gpu_shape) >=
                      2 * r->kv.tokens + 2 * config_.tokens_per_block;
      if (has_room && TrySwapIn(unit, r)) {
        r->phase = RequestPhase::kQueuedDecode;
        it = unit.parked.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Drop finished requests and empty batches.
  for (DecodeBatch& batch : unit.work_list) {
    auto& reqs = batch.requests;
    reqs.erase(std::remove_if(reqs.begin(), reqs.end(),
                              [](Request* r) { return r->finished(); }),
               reqs.end());
  }
  unit.work_list.erase(std::remove_if(unit.work_list.begin(), unit.work_list.end(),
                                      [](const DecodeBatch& b) { return b.requests.empty(); }),
                       unit.work_list.end());
  if (unit.work_list.empty() && unit.parked.empty()) {
    unit.round_active = false;
    return;
  }
  if (unit.work_list.empty()) {
    // Only parked requests remain: poll again once transfers complete.
    uint64_t epoch = unit.epoch;
    sim_.After(kRoundRetryDelay, [this, &unit, epoch] {
      if (unit.epoch == epoch) {
        StartRound(unit);
      }
    });
    return;
  }

  // Algorithm 2, lines 5-8.
  GroupBatchesByModel(unit.work_list);
  std::vector<BatchQuotaInput> inputs;
  inputs.reserve(unit.work_list.size());
  Duration switch_total = 0.0;
  ModelId last_model = kInvalidModel;
  for (const DecodeBatch& batch : unit.work_list) {
    const DeployedModel& dm = registry_.Get(batch.model);
    BatchQuotaInput input;
    input.step_time = latency_.DecodeStep(dm.spec, dm.tp, batch.TotalContextTokens()) *
                      AgingLatencyFactor(sim_.Now());
    input.tbt = dm.slo.tbt;
    inputs.push_back(input);
    if (batch.model != last_model) {
      switch_total += latency_.SwitchLoad(dm.spec, dm.tp);
      last_model = batch.model;
    }
  }
  QuotaResult quotas = ComputeQuotas(inputs, switch_total, config_.qmax, config_.alpha_floor);
  unit.quotas = std::move(quotas.quotas);
  unit.turn = 0;
  unit.round_did_work = false;
  unit.earliest_ready = kTimeNever;
  RunTurn(unit);
}

void AegaeonCluster::RunTurn(DecodeUnit& unit) {
  if (unit.failed) {
    unit.round_active = false;
    return;
  }
  if (unit.turn >= unit.work_list.size()) {
    // Round over. If nothing ran (every request waiting on a transfer),
    // re-poll no earlier than the first transfer completion.
    if (!unit.round_did_work) {
      TimePoint next = unit.earliest_ready == kTimeNever ? sim_.Now() + kRoundRetryDelay
                                                         : unit.earliest_ready;
      uint64_t epoch = unit.epoch;
      sim_.At(std::max(next, sim_.Now() + kRoundRetryDelay), [this, &unit, epoch] {
        if (unit.epoch == epoch) {
          StartRound(unit);
        }
      });
      return;
    }
    StartRound(unit);
    return;
  }

  DecodeBatch& batch = unit.work_list[unit.turn];
  TimePoint now = sim_.Now();
  const DeployedModel& dm = registry_.Get(batch.model);

  // Select runnable requests: KV resident and synced (rule ❶) and work left.
  std::vector<Request*> active;
  for (Request* r : batch.requests) {
    if (r->finished() || r->phase == RequestPhase::kParked) {
      continue;
    }
    if (r->kv.location != KvLocation::kGpu || r->kv.gpu != unit.gpu->id()) {
      continue;  // parked or still host-side
    }
    if (!r->kv.last_transfer.Query(now)) {
      unit.earliest_ready = std::min(unit.earliest_ready, r->kv.last_transfer.complete_at());
      r->data_overhead += std::min(r->kv.last_transfer.complete_at() - now, config_.qmax);
      continue;  // swap-in still in flight
    }
    active.push_back(r);
  }
  if (active.empty()) {
    unit.turn++;
    RunTurn(unit);
    return;
  }

  // Preemptive auto-scaling for this batch's model.
  TimePoint ready = now;
  if (unit.scaler->current_model() != dm.id) {
    ScaleResult result = unit.scaler->ScaleTo(dm, now);
    ready = result.ready_at;
    if (timeline_ != nullptr && ready > now) {
      timeline_->Record(config_.prefill_instances + unit.index, "switch", dm.spec.name, now,
                        ready - now);
    }
  }
  // Prefetch the next distinct model in the rotation (§5.2): the current
  // turn's quota usually hides the whole prefetch. The scan wraps around so
  // the round's last turn warms the next round's first model.
  const size_t n_batches = unit.work_list.size();
  for (size_t off = 1; off < n_batches; ++off) {
    const DecodeBatch& next = unit.work_list[(unit.turn + off) % n_batches];
    if (next.model != dm.id) {
      unit.scaler->Prefetch(registry_.Get(next.model), ready);
      break;
    }
  }

  // Steps in this turn: quota-bounded, and never useless (>= 1; capped by
  // the largest remaining output among active requests).
  int64_t total_ctx = 0;
  int64_t max_remaining = 0;
  for (Request* r : active) {
    total_ctx += r->context_tokens();
    max_remaining = std::max(max_remaining, r->remaining_tokens());
  }
  Duration step_time = latency_.DecodeStep(dm.spec, dm.tp, total_ctx) * AgingLatencyFactor(now);
  Duration quota = unit.turn < unit.quotas.size() ? unit.quotas[unit.turn] : config_.qmax;
  int64_t steps = std::max<int64_t>(1, static_cast<int64_t>(quota / step_time));
  steps = std::min(steps, max_remaining);

  // Grow KV for the tokens this turn will append; requests that cannot get
  // blocks are preempted: their KV is offloaded and they re-admit later.
  std::vector<Request*> runnable;
  runnable.reserve(active.size());
  for (Request* r : active) {
    int64_t steps_r = std::min<int64_t>(steps, r->remaining_tokens());
    if (xfer_.Extend(r->kv, *unit.kv_cache, steps_r)) {
      runnable.push_back(r);
    } else {
      unit.last_pressure = now;
      if (xfer_.SwapOut(r->kv, *unit.gpu, *unit.kv_cache, CpuKvOf(unit.node), now)) {
        r->kv.node = unit.node;
        r->phase = RequestPhase::kParked;
        unit.parked.push_back(r);
      }
      // If even the swap-out fails (CPU cache full) the request just skips
      // this turn and retries once capacity frees.
    }
  }
  if (runnable.empty()) {
    unit.turn++;
    RunTurn(unit);
    return;
  }

  unit.round_did_work = true;
  StreamSim::Span span = unit.gpu->compute_stream().Enqueue(ready, steps * step_time);
  // Rule ❶: decoding touches every runnable request's resident KV blocks.
  for (Request* r : runnable) {
    simsan::NoteComputeLaunch(&unit.kv_cache->slabs(), r->kv.blocks,
                              &unit.gpu->compute_stream(), span.start, span.end, r->id);
  }
  if (timeline_ != nullptr) {
    timeline_->Record(config_.prefill_instances + unit.index, "decode",
                      dm.spec.name + " x" + std::to_string(runnable.size()), span.start,
                      span.end - span.start);
  }
  uint64_t epoch = unit.epoch;
  sim_.At(span.end,
          [this, &unit, runnable = std::move(runnable), span, step_time, steps, epoch] {
            if (unit.epoch != epoch) {
              return;  // the instance crashed mid-turn
            }
            FinishTurn(unit, runnable, span.start, step_time, steps);
          });
}

void AegaeonCluster::FinishTurn(DecodeUnit& unit, std::vector<Request*> active,
                                TimePoint exec_start, Duration step_time, int64_t steps) {
  for (Request* r : active) {
    const SloSpec& slo = registry_.Get(r->model).slo;
    int64_t steps_r = std::min<int64_t>(steps, r->remaining_tokens());
    // Token k of the turn materializes after k+1 steps.
    for (int64_t j = 0; j < steps_r; ++j) {
      TimePoint token_time = exec_start + static_cast<double>(j + 1) * step_time;
      int64_t token_index = r->generated + j;
      if (token_time <= slo.DeadlineFor(r->arrival, token_index)) {
        r->tokens_met++;
      }
    }
    // Decode waiting: the gap since this request last made progress.
    if (r->last_progress != kTimeUnset) {
      r->decode_wait += std::max(0.0, exec_start - r->last_progress);
    }
    r->generated += steps_r;
    r->decode_exec += static_cast<double>(steps_r) * step_time;
    r->last_progress = exec_start + static_cast<double>(steps_r) * step_time;
    BillKvGrowth(unit, r);
    if (r->finished()) {
      r->completion = exec_start + static_cast<double>(steps_r) * step_time;
      r->phase = RequestPhase::kDone;
      ++completed_count_;
      xfer_.Release(r->kv, *unit.kv_cache, CpuKvOf(unit.node));
      OnDecodeComplete(unit, r);
    } else {
      r->phase = RequestPhase::kDecoding;
    }
  }
  unit.turn++;
  RunTurn(unit);
}

}  // namespace aegaeon
