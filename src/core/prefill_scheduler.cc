#include "core/prefill_scheduler.h"

#include <cassert>
#include <limits>
#include <utility>

namespace aegaeon {

PrefillScheduler::PrefillScheduler(int instances, int max_group_size, Estimators estimators)
    : max_group_size_(max_group_size), est_(std::move(estimators)) {
  assert(instances > 0);
  queues_.resize(instances);
}

Duration PrefillScheduler::LoadEstimate(int i) const {
  const InstanceQueue& queue = queues_[i];
  Duration load = 0.0;
  ModelId previous = est_.current_model(i);
  for (const Group& group : queue.groups) {
    if (group.model != previous) {
      load += est_.switch_estimate(previous, group.model);
      previous = group.model;
    }
    for (const Request* request : group.pending) {
      load += est_.exec_estimate(*request);
    }
  }
  return load;
}

int PrefillScheduler::OnArrival(Request* request) {
  // Lines 4-8: prioritize an existing group for this model with room left.
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (!queues_[i].available) {
      continue;
    }
    for (Group& group : queues_[i].groups) {
      if (group.model == request->model && group.accumulated < max_group_size_) {
        group.pending.push_back(request);
        group.accumulated++;
        return static_cast<int>(i);
      }
    }
  }
  // Lines 9-13: new group on the least loaded available instance.
  int best = 0;
  Duration min_load = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (!queues_[i].available) {
      continue;
    }
    Duration load = LoadEstimate(static_cast<int>(i));
    if (load < min_load) {
      min_load = load;
      best = static_cast<int>(i);
    }
  }
  Group group;
  group.model = request->model;
  group.pending.push_back(request);
  group.accumulated = 1;
  queues_[best].groups.push_back(std::move(group));
  return best;
}

Request* PrefillScheduler::NextJob(int i) {
  InstanceQueue& queue = queues_[i];
  while (!queue.groups.empty() && queue.groups.front().pending.empty()) {
    queue.groups.pop_front();
  }
  if (queue.groups.empty()) {
    return nullptr;
  }
  Group& front = queue.groups.front();
  Request* request = front.pending.front();
  front.pending.pop_front();
  return request;
}

ModelId PrefillScheduler::UpcomingModel(int i) const {
  const InstanceQueue& queue = queues_[i];
  ModelId front_model = kInvalidModel;
  for (const Group& group : queue.groups) {
    if (group.pending.empty()) {
      continue;
    }
    if (front_model == kInvalidModel) {
      front_model = group.model;
      continue;
    }
    if (group.model != front_model) {
      return group.model;
    }
  }
  return kInvalidModel;
}

void PrefillScheduler::SetAvailable(int i, bool available) {
  queues_[i].available = available;
}

std::vector<Request*> PrefillScheduler::DrainQueue(int i) {
  std::vector<Request*> drained;
  for (Group& group : queues_[i].groups) {
    drained.insert(drained.end(), group.pending.begin(), group.pending.end());
  }
  queues_[i].groups.clear();
  return drained;
}

void PrefillScheduler::PushContinuation(int i, Request* request) {
  Group group;
  group.model = request->model;
  group.pending.push_back(request);
  group.accumulated = max_group_size_;  // no joins: this is a continuation
  InstanceQueue& queue = queues_[i];
  // Drop exhausted front groups so "behind the front" means behind real work.
  while (!queue.groups.empty() && queue.groups.front().pending.empty()) {
    queue.groups.pop_front();
  }
  auto pos = queue.groups.empty() ? queue.groups.begin() : std::next(queue.groups.begin());
  queue.groups.insert(pos, std::move(group));
}

bool PrefillScheduler::HasWork(int i) const {
  for (const Group& group : queues_[i].groups) {
    if (!group.pending.empty()) {
      return true;
    }
  }
  return false;
}

size_t PrefillScheduler::QueuedRequests(int i) const {
  size_t count = 0;
  for (const Group& group : queues_[i].groups) {
    count += group.pending.size();
  }
  return count;
}

}  // namespace aegaeon
