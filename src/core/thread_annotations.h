// Clang Thread Safety Analysis shim: the annotation macros (GUARDED_BY,
// REQUIRES, EXCLUDES, ...) plus small annotated wrappers over std::mutex /
// std::condition_variable_any, so the locking discipline of the threaded
// executors (sim/thread_pool.*, sim/parallel_sweep.h, core/fleet.*) is
// machine-checked. The `thread-safety` CI job compiles with clang and
// -Werror=thread-safety (-DAEGAEON_THREAD_SAFETY=ON); under GCC the
// attributes expand to nothing and the wrappers are zero-cost sugar.
//
// Why wrappers instead of annotating std::mutex directly: libstdc++'s
// std::mutex / std::lock_guard carry no capability attributes, so the
// analysis cannot see acquisitions made through them. Mutex/MutexLock are
// the annotated equivalents; CondVar wraps std::condition_variable_any
// (which accepts any BasicLockable, i.e. our Mutex) and declares the
// caller-holds-the-lock contract with REQUIRES.

#ifndef AEGAEON_CORE_THREAD_ANNOTATIONS_H_
#define AEGAEON_CORE_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define AEGAEON_TSA(x) __attribute__((x))
#else
#define AEGAEON_TSA(x)
#endif

#define CAPABILITY(x) AEGAEON_TSA(capability(x))
#define SCOPED_CAPABILITY AEGAEON_TSA(scoped_lockable)
#define GUARDED_BY(x) AEGAEON_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) AEGAEON_TSA(pt_guarded_by(x))
#define ACQUIRE(...) AEGAEON_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) AEGAEON_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) AEGAEON_TSA(try_acquire_capability(__VA_ARGS__))
#define REQUIRES(...) AEGAEON_TSA(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) AEGAEON_TSA(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) AEGAEON_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS AEGAEON_TSA(no_thread_safety_analysis)

namespace aegaeon {

// An annotated std::mutex. BasicLockable (lower-case lock/unlock), so it
// also works as the Lock argument of std::condition_variable_any.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped acquisition (the std::lock_guard of Mutex).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over Mutex. Every wait declares that the caller holds
// the mutex; the temporary release inside std::condition_variable_any is
// invisible to the analysis (by design — the lock is held again when the
// wait returns, which is all callers may rely on).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout) REQUIRES(mu) {
    cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_THREAD_ANNOTATIONS_H_
