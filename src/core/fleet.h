// ShardedFleet: fleet-scale serving simulation over a pool of Aegaeon
// cells, advanced in parallel under a conservative time-sync protocol.
//
// Decomposition. A fleet of `cells` independent serving cells, each a full
// AegaeonCluster (own Simulator, EventQueue, schedulers, KV machinery) of
// `cell.prefill_instances + cell.decode_instances` instances. A serial
// fleet dispatcher routes every arrival to the least-loaded cell; routed
// requests reach their cell after `dispatch_latency` (the fleet router /
// network hop). Cells never interact otherwise — KV migration and
// autoscaling stay cell-local (the cross_cell_* flags reserve the channels).
//
// Parallelism. The cells are grouped into `shards` contiguous groups; a
// shard is the unit of parallel execution, nothing more. Execution proceeds
// in epochs: a serial barrier stage dispatches the next window of arrivals
// (through deterministic EpochMailboxes), then every shard advances its
// cells to the epoch horizon on the thread pool. The horizon step is the
// conservative lookahead — the minimum enabled cross-cell channel latency,
// i.e. `dispatch_latency` — so everything a cell does within an epoch is
// invisible to other cells until after the barrier, and the parallel
// advance cannot reorder observable events.
//
// Determinism. Epoch boundaries, dispatch decisions, and mailbox order are
// computed serially from the trace alone; shards own disjoint state during
// the advance. RunMetrics are therefore bit-identical for every shard
// count, including shards == 1. With cells == 1 the lookahead is infinite
// (a single cell has no cross-cell channel): the run collapses to one
// epoch and, with dispatch_latency == 0, reproduces a plain
// AegaeonCluster::Run exactly. See DESIGN.md §8.
//
// SimSan. Each cell gets its own checker instance, installed (ScopedInstance)
// around construction, every advance, teardown, and destruction, so shadow
// state follows the cell across pool threads. At each barrier the fleet
// audits that no cell's shadow watermark overran the epoch horizon
// (`sync_overruns`), and pools checks/violations into the final FleetAudit.

#ifndef AEGAEON_CORE_FLEET_H_
#define AEGAEON_CORE_FLEET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "core/cluster.h"
#include "core/config.h"
#include "core/request.h"
#include "core/thread_annotations.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "sanitizer/simsan.h"
#include "sim/mailbox.h"
#include "sim/sharded_sim.h"
#include "sim/time.h"

namespace aegaeon {

struct FleetConfig {
  // Number of serving cells. Part of the simulated configuration: it
  // changes dispatch granularity and therefore results.
  int cells = 1;
  // Parallel execution width. NOT part of the simulated configuration:
  // results are bit-identical for any value. Clamped to [1, cells].
  int shards = 1;
  // Worker threads for the shard pool; <= 0 selects min(shards, the
  // ParallelSweep default: AEGAEON_SWEEP_THREADS, else hardware
  // concurrency). Fleets nested inside an outer ParallelSweep should size
  // the outer pool with ParallelSweep::ThreadsForNested(shards).
  int threads = 0;
  // Latency of the fleet router -> cell hop; the conservative lookahead.
  // Must be > 0 when cells > 1.
  Duration dispatch_latency = 0.05;
  // Reserved cross-cell channels (would tighten the lookahead when enabled;
  // no fleet-level implementation yet).
  bool cross_cell_kv = false;
  bool cross_cell_autoscale = false;
  // Every cell's configuration (instances per cell, memory sizing, ...).
  AegaeonConfig cell;
};

// Pooled sanitizer + protocol health of a fleet run.
struct FleetAudit {
  uint64_t epochs = 0;
  uint64_t checks = 0;          // SimSan checks across all cells (0 when off)
  uint64_t violations = 0;      // SimSan violations across all cells
  uint64_t sync_overruns = 0;   // cell shadow watermark crossed an epoch horizon
};

class ShardedFleet {
 public:
  ShardedFleet(FleetConfig config, const ModelRegistry& registry, const GpuSpec& gpu_spec);
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  // Serves the whole trace (time-sorted arrivals) to completion. Returns
  // fleet-pooled metrics: per-request aggregates merged across cells,
  // per-shard host cost in shard_sim, and the epoch count in sync_epochs.
  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  int cells() const { return static_cast<int>(cells_.size()); }
  int shards() const { return sharded_.shards(); }
  int total_gpus() const;
  // Epoch length; kTimeNever when cells == 1 (single epoch, exact).
  Duration lookahead() const { return lookahead_; }
  // Conservative-sync epochs executed by the last Run.
  uint64_t epochs() const { return sharded_.epochs(); }

  AegaeonCluster& cell(int index) { return *cells_[static_cast<size_t>(index)]; }
  const AegaeonCluster& cell(int index) const { return *cells_[static_cast<size_t>(index)]; }
  // Per-cell metrics of the last Run, indexed by cell.
  const std::vector<RunMetrics>& cell_metrics() const { return cell_metrics_; }
  // Arrivals routed to each cell by the dispatcher, indexed by cell.
  const std::vector<uint64_t>& routed() const { return routed_; }

  FleetAudit audit() const;

 private:
  // Contiguous [begin, end) cell range owned by `shard`.
  void ShardRange(int shard, int* begin, int* end) const;
  // Serial barrier stage: routes every arrival in the next epoch window and
  // returns its horizon (kTimeNever to request the final drain epoch).
  TimePoint PlanEpoch();
  // Routes one arrival to the least-outstanding cell (ties: lowest id).
  int RouteArrival(const ArrivalEvent& event);
  // Delivers the barrier's mailbox content into the target cells.
  void DeliverMailboxes();

  FleetConfig config_;
  Duration lookahead_ = kTimeNever;
  ShardedSim sharded_;
  std::vector<std::unique_ptr<AegaeonCluster>> cells_;
  // One checker per cell; shadow state follows the cell, not the thread.
  std::vector<std::unique_ptr<simsan::SimSan>> simsan_;
  EpochMailboxes<ArrivalEvent> mailboxes_;
  std::vector<uint64_t> routed_;
  std::vector<RunMetrics> cell_metrics_;

  // Run-scoped dispatch state (serial barrier stage only).
  const std::vector<ArrivalEvent>* trace_ = nullptr;
  size_t next_arrival_ = 0;

  // Incremented from parallel advances (cold path: overruns mean the
  // conservative-sync protocol itself is broken); read by audit(). The
  // guard is machine-checked via -Wthread-safety.
  mutable Mutex overrun_mu_;
  uint64_t sync_overruns_ GUARDED_BY(overrun_mu_) = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_FLEET_H_
