// ShardedFleet: fleet-scale serving simulation over a pool of Aegaeon
// cells, advanced in parallel under a conservative time-sync protocol.
//
// Decomposition. A fleet of `cells` independent serving cells, each a full
// AegaeonCluster (own Simulator, EventQueue, schedulers, KV machinery) of
// `cell.prefill_instances + cell.decode_instances` instances. A serial
// fleet dispatcher routes every arrival to a cell chosen by a pluggable
// Dispatcher policy (ctrl/dispatcher.h; default: least outstanding work);
// routed requests reach their cell after `dispatch_latency` (the fleet
// router / network hop). Cells never interact otherwise — KV migration and
// autoscaling stay cell-local (the cross_cell_* flags reserve the channels).
//
// Control plane. Every arrival flows through a replicated ControlPlane
// (ctrl/control_plane.h): with `ctrl.replicas` == 1 and no scheduled
// dispatcher crash it degenerates to the bare dispatcher (bit-identical to
// the unreplicated fleet); with replication enabled, heartbeat-driven
// leader election and the bounded re-dispatch log make the dispatcher
// survive scheduled crashes (ScheduleDispatcherCrash / a FaultPlan) with
// every in-flight arrival re-dispatched exactly once. The control plane
// runs entirely inside the serial barrier stage, and its pending effects
// bound the epoch planner (NextPendingTime), so runs stay bit-identical
// for every shard and worker count even through a failover.
//
// Parallelism. The cells are grouped into `shards` contiguous groups; a
// shard is the unit of parallel execution, nothing more. Execution proceeds
// in epochs: a serial barrier stage dispatches the next window of arrivals
// (through deterministic EpochMailboxes), then every shard with runnable
// work advances its cells to the epoch horizon on a gang of persistent
// workers. The epoch window is a whole number of conservative-lookahead
// slots (lookahead = the minimum enabled cross-cell channel latency, i.e.
// `dispatch_latency`): the barrier snaps past slots in which nothing
// observable happens and, with `epoch_skipping` on, batches up to
// `route_quantum` slots of router decisions per barrier. Everything a cell
// does within an epoch is invisible to other cells until after the barrier
// (no enabled cell-originated channel), so the parallel advance cannot
// reorder observable events.
//
// Determinism. Epoch boundaries, dispatch decisions, mailbox order, and
// the per-cell idle-skip probe are computed serially from trace + cell
// state alone; shards own disjoint state during the advance. RunMetrics
// are therefore bit-identical for every shard count, including shards == 1,
// and every worker count. `route_quantum` IS part of the simulated
// configuration (it widens the dispatcher's snapshot staleness bound to
// ~quantum * lookahead); changing it changes results, changing shards or
// threads never does. With cells == 1 the lookahead is infinite (a single
// cell has no cross-cell channel): the run collapses to one epoch and,
// with dispatch_latency == 0, reproduces a plain AegaeonCluster::Run
// exactly. See DESIGN.md §8.
//
// SimSan. Each cell gets its own checker instance, installed (ScopedInstance)
// around construction, every advance, teardown, and destruction, so shadow
// state follows the cell across pool threads. At each barrier the fleet
// audits that no cell's shadow watermark overran the epoch horizon
// (`sync_overruns`), and pools checks/violations into the final FleetAudit.

#ifndef AEGAEON_CORE_FLEET_H_
#define AEGAEON_CORE_FLEET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "core/cluster.h"
#include "core/config.h"
#include "core/request.h"
#include "core/thread_annotations.h"
#include "ctrl/control_plane.h"
#include "ctrl/dispatcher.h"
#include "hw/gpu_spec.h"
#include "mem/bump_allocator.h"
#include "model/registry.h"
#include "sanitizer/simsan.h"
#include "sim/mailbox.h"
#include "sim/sharded_sim.h"
#include "sim/time.h"

namespace aegaeon {

struct FleetConfig {
  // Number of serving cells. Part of the simulated configuration: it
  // changes dispatch granularity and therefore results.
  int cells = 1;
  // Parallel execution width. NOT part of the simulated configuration:
  // results are bit-identical for any value. Clamped to [1, cells].
  int shards = 1;
  // Worker threads for the shard pool; <= 0 selects min(shards, the
  // ParallelSweep default: AEGAEON_SWEEP_THREADS, else hardware
  // concurrency). Fleets nested inside an outer ParallelSweep should size
  // the outer pool with ParallelSweep::ThreadsForNested(shards).
  int threads = 0;
  // Latency of the fleet router -> cell hop; the conservative lookahead.
  // Must be > 0 when cells > 1.
  Duration dispatch_latency = 0.05;
  // Reserved cross-cell channels (would tighten the lookahead when enabled;
  // no fleet-level implementation yet).
  bool cross_cell_kv = false;
  bool cross_cell_autoscale = false;
  // Epoch-skipping conservative sync. Off: one barrier per occupied
  // lookahead slot and every cell advances (and pins its clock) every
  // epoch — the exact pre-skip protocol. On: the barrier batches router
  // decisions for up to `route_quantum` lookahead slots per epoch and
  // cells/shards with no runnable event inside the window sit the epoch
  // out. `route_quantum` bounds the dispatcher's load-snapshot staleness
  // at ~route_quantum * dispatch_latency, so it is part of the simulated
  // configuration: results are bit-identical across shards/threads for any
  // fixed value, but differ between values (and between skipping on/off).
  // Forced to 1 whenever a cell-originated channel (cross_cell_*) is
  // enabled, because then cells can emit observable cross-shard traffic
  // mid-window.
  bool epoch_skipping = true;
  int route_quantum = 4;
  // Dispatcher replication (ctrl/control_plane.h). The default (1 replica,
  // no scheduled crash) reproduces the unreplicated fleet bit for bit.
  ControlPlaneConfig ctrl;
  // Every cell's configuration (instances per cell, memory sizing, ...).
  AegaeonConfig cell;
};

// Pooled sanitizer + protocol health of a fleet run.
struct FleetAudit {
  uint64_t epochs = 0;
  uint64_t epochs_skipped = 0;  // lookahead slots jumped without a barrier
  uint64_t checks = 0;          // SimSan checks across all cells (0 when off)
  uint64_t violations = 0;      // SimSan violations across all cells
  uint64_t sync_overruns = 0;   // cell shadow watermark crossed an epoch horizon
};

class ShardedFleet {
 public:
  ShardedFleet(FleetConfig config, const ModelRegistry& registry, const GpuSpec& gpu_spec);
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  // Serves the whole trace (time-sorted arrivals) to completion. Returns
  // fleet-pooled metrics: per-request aggregates merged across cells,
  // per-shard host cost in shard_sim, and the epoch count in sync_epochs.
  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  int cells() const { return static_cast<int>(cells_.size()); }
  int shards() const { return sharded_.shards(); }
  int total_gpus() const;
  // Epoch length; kTimeNever when cells == 1 (single epoch, exact).
  Duration lookahead() const { return lookahead_; }
  // Conservative-sync epochs executed by the last Run.
  uint64_t epochs() const { return sharded_.epochs(); }
  // Lookahead slots jumped without a barrier by the last Run.
  uint64_t epochs_skipped() const { return sharded_.epochs_skipped(); }

  AegaeonCluster& cell(int index) { return *cells_[static_cast<size_t>(index)]; }
  const AegaeonCluster& cell(int index) const { return *cells_[static_cast<size_t>(index)]; }
  // Per-cell metrics of the last Run, indexed by cell.
  const std::vector<RunMetrics>& cell_metrics() const { return cell_metrics_; }
  // Arrivals routed to each cell by the dispatcher, indexed by cell.
  const std::vector<uint64_t>& routed() const { return routed_; }

  // Replaces the routing policy (default: LeastOutstandingDispatcher).
  // Call before Run(); the policy must be deterministic (see Dispatcher).
  void SetDispatcher(std::unique_ptr<Dispatcher> dispatcher);
  // Schedules one instance of one cell to fail at `when` for `downtime`
  // (the fleet-level form of AegaeonCluster::ScheduleFailure). Aborts on
  // an out-of-range cell or instance. Call before Run().
  void ScheduleCellFailure(int cell, bool prefill_partition, int index, TimePoint when,
                           Duration downtime);
  // Schedules the dispatcher replica leading at `when` to crash and
  // recover `downtime` later (ctrl replication handles the failover).
  void ScheduleDispatcherCrash(TimePoint when, Duration downtime);
  // Dispatcher replication state (election terms, failover counters).
  const ControlPlane& control_plane() const { return *ctrl_; }

  FleetAudit audit() const;

 private:
  using ArrivalBatch = std::vector<ArrivalEvent, ArenaAllocator<ArrivalEvent>>;
  using TimeBatch = std::vector<TimePoint, ArenaAllocator<TimePoint>>;

  // Contiguous [begin, end) cell range owned by `shard`.
  void ShardRange(int shard, int* begin, int* end) const;
  // Serial barrier stage: offers every arrival in the next epoch window to
  // the control plane, advances the protocol to the window's horizon,
  // delivers the mailboxes, and returns the horizon (kTimeNever to request
  // the final drain epoch) plus the slots it skipped.
  ShardedSim::EpochPlan PlanEpoch();
  // Outstanding load of one cell as the dispatcher sees it: injected minus
  // settled plus routed-but-undelivered (pending_routed_).
  uint64_t CellLoad(int cell) const;
  // Delivers the barrier's mailbox content into the target cells, one
  // batched InjectArrivals per touched cell, each event at its own
  // committed delivery time.
  void DeliverMailboxes();
  // True when any cell of `shard` can process an event at or before
  // `horizon` (serial barrier stage only).
  bool ShardHasWork(int shard, TimePoint horizon);

  FleetConfig config_;
  Duration lookahead_ = kTimeNever;
  ShardedSim sharded_;
  std::vector<std::unique_ptr<AegaeonCluster>> cells_;
  // One checker per cell; shadow state follows the cell, not the thread.
  std::vector<std::unique_ptr<simsan::SimSan>> simsan_;
  EpochMailboxes<ArrivalEvent> mailboxes_;
  // Routing policy + replicated control plane (both barrier-stage only).
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<ControlPlane> ctrl_;
  std::vector<uint64_t> routed_;
  std::vector<RunMetrics> cell_metrics_;

  // Run-scoped dispatch state (serial barrier stage only).
  const std::vector<ArrivalEvent>* trace_ = nullptr;
  size_t next_arrival_ = 0;
  // End of the previous epoch window (lookahead-grid aligned); the skip
  // counter measures jumps from here.
  TimePoint barrier_ = 0.0;
  // Requests routed at the current barrier, not yet injected; folded into
  // RouteArrival's load so batched delivery sees the same arithmetic as
  // per-arrival delivery.
  std::vector<uint64_t> pending_routed_;
  // Barrier-stage scratch, all capacity-retaining / arena-backed so the
  // steady-state epoch loop performs no heap allocation: the collected
  // mailbox events, one ArrivalEvent batch (plus its parallel delivery-time
  // batch) per cell, and the list of cells touched this epoch (in
  // first-delivery order).
  BumpArena delivery_arena_;
  std::vector<CrossShardEvent<ArrivalEvent>> collected_;
  std::vector<ArrivalBatch> delivery_batches_;
  std::vector<TimeBatch> delivery_time_batches_;
  std::vector<int> touched_cells_;

  // Incremented from parallel advances (cold path: overruns mean the
  // conservative-sync protocol itself is broken); read by audit(). The
  // guard is machine-checked via -Wthread-safety.
  mutable Mutex overrun_mu_;
  uint64_t sync_overruns_ GUARDED_BY(overrun_mu_) = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_FLEET_H_
