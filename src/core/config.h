// Tunable parameters of an Aegaeon deployment, with the paper's defaults.

#ifndef AEGAEON_CORE_CONFIG_H_
#define AEGAEON_CORE_CONFIG_H_

#include "engine/autoscaler.h"
#include "engine/components.h"
#include "hw/gpu_spec.h"
#include "serve/policy.h"
#include "sim/time.h"

namespace aegaeon {

// Software-aging drift (see "Characterizing Software Aging in GPU-Based
// LLM Serving"): long-running serving processes slow down (allocator and
// driver-state latency creep) and fragment their KV pools. Modeled as
// multiplicative factors growing linearly from `start`: execution latency
// scales by (1 + latency_rate * dt) and the usable decode KV budget
// shrinks by (1 + fragmentation_rate * dt), dt = max(0, now - start).
// Both rates default to 0, which leaves every computation bit-identical
// to an aging-free run.
struct AgingDriftConfig {
  double latency_rate = 0.0;        // fractional latency growth / sim second
  double fragmentation_rate = 0.0;  // fractional usable-KV shrink / sim second
  TimePoint start = 0.0;            // drift onset (process "boot" time)
};

struct AegaeonConfig {
  // GPU pool split (§7.2: 6 prefill + 10 decoding instances on 16 GPUs).
  int prefill_instances = 6;
  int decode_instances = 10;
  // Tensor-parallel degree of every instance (1 GPU per instance by
  // default; §7.4 uses TP=4).
  int instance_tp = 1;
  // Physical nodes the pool spans (Figure 5 shows a two-node deployment).
  // Instances are assigned to nodes contiguously; each node has its own
  // DRAM, model cache, and unified CPU KV cache. KV crossing nodes rides
  // the inter-node fabric at `internode_bw` and decode dispatch prefers
  // instances co-located with a request's KV.
  int nodes = 1;
  double internode_bw = 25e9;

  // Algorithm 1: maximum accumulated size of a prefill group.
  int max_group_size = 8;
  // Optional chunked prefill (Sarathi-style): prompts longer than this many
  // tokens are prefilled in chunks, so one giant prompt cannot block a
  // prefill instance for its whole duration. 0 disables chunking (the
  // paper's configuration — its prefills are sub-second anyway).
  int64_t prefill_chunk_tokens = 0;

  // Algorithm 2 constants: maximum quota (s) and the SLO-attainment floor.
  Duration qmax = 4.0;
  double alpha_floor = 0.5;

  // Maximum requests batched together for decoding, on top of the KV
  // capacity limit derived per Algorithm 2 line 2.
  int max_decode_batch = 32;
  // Context-length estimate used to derive the capacity batch limit
  // (ShareGPT-like traffic averages ~450 context tokens; the margin covers
  // the long tail).
  int64_t expected_context_tokens = 640;

  // --- Memory sizing (Figure 9's exemplar values) -----------------------
  // VRAM set aside for the self-managed weight buffer (running model plus,
  // when it fits, a prefetched next model — Figure 9's exemplar regions).
  // The split between weights and KV is a per-deployment choice: markets of
  // uniformly large models trade KV space for prefetch headroom (e.g.
  // 56 GiB / 20 GiB), while mixed markets favor KV capacity.
  double weight_buffer_bytes = 40.0 * kGiB;
  // VRAM set aside for the unified GPU KV cache.
  double gpu_kv_bytes = 30.0 * kGiB;
  // Host memory: unified CPU KV cache and the model (checkpoint) cache.
  double cpu_kv_bytes = 320.0 * kGiB;
  // Sized to hold the full market's checkpoints on a 2 TB node (Figure 9
  // shows 640 GB for a smaller exemplar deployment; ~90 mid-size models
  // need ~1.5 TB). Misses fall back to the remote registry.
  double model_cache_bytes = 1536.0 * kGiB;
  // Slab size for unified KV caches: small enough that low-traffic shapes
  // hold little excess (Figure 16's <20% fragmentation), large enough to
  // keep per-slab bookkeeping negligible.
  double slab_bytes = 64.0 * 1024 * 1024;
  int tokens_per_block = 16;

  // Bandwidth to the remote model registry (cache-miss path): parallel
  // object-store pulls over datacenter networking.
  double remote_registry_bw = 12.5e9;
  // Local NVMe tier for checkpoints evicted from the DRAM model cache
  // (ServerlessLLM-style multi-tier storage). Set capacity to 0 to disable.
  double ssd_cache_bytes = 4096.0 * kGiB;
  double ssd_bw = 5e9;

  // Auto-scaling optimization level (§5); the full system is T3.
  OptLevel opt_level = OptLevel::kFineGrainedSync;
  bool prefetch = true;
  // §8 hybrid multiplexing extension: number of models kept co-resident in
  // the weight buffer (1 = the paper's behavior; 2+ makes switches between
  // resident models near-free at the cost of prefetch/KV headroom).
  int resident_models = 1;

  // Modeled scheduler bookkeeping cost per scheduling decision (Fig. 14
  // "Control Overhead").
  Duration control_cost_per_decision = 0.0002;

  EngineCostModel engine_costs;

  // Overload-aware serving proxy (src/serve): admission control, per-model
  // fair queuing, load shedding, and failure-retry backoff. Disabled by
  // default — the arrival path is then exactly the pre-proxy one.
  ProxyPolicy proxy;

  // Software-aging drift of this cell (off by default). The fleet's fault
  // engine (ctrl/fault_plan.h) overrides this per cell via SetAgingDrift.
  AgingDriftConfig aging;

  // RNG seed for any internal stochastic choices.
  uint64_t seed = 1;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_CONFIG_H_
