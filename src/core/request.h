// An inference request and its recorded execution trace.

#ifndef AEGAEON_CORE_REQUEST_H_
#define AEGAEON_CORE_REQUEST_H_

#include <cstdint>
#include <vector>

#include "core/slo.h"
#include "kv/transfer_engine.h"
#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

using RequestId = uint64_t;

enum class RequestPhase {
  kQueuedPrefill,
  kPrefilling,
  kQueuedDecode,
  kDecoding,
  kParked,  // preempted out of GPU KV (awaiting re-admission)
  kDone,
};

// Terminal decision of the serving proxy for requests it never dispatched
// (src/serve). kNone for every request when the proxy is disabled.
enum class ProxyOutcome : uint8_t {
  kNone = 0,      // dispatched to the backend (or proxy disabled)
  kRejected,      // turned away at arrival (admission control)
  kShed,          // evicted from the held queue under overload
  kTimedOut,      // held until its TTFT deadline became unreachable
};

struct Request {
  RequestId id = 0;
  ModelId model = kInvalidModel;
  int64_t prompt_tokens = 0;
  // Total generated tokens, including the first (prefill) token. In the
  // simulator this is the oracle output length sampled from the dataset.
  int64_t output_tokens = 1;
  TimePoint arrival = 0.0;

  RequestPhase phase = RequestPhase::kQueuedPrefill;

  // --- Serving-proxy state (src/serve; inert when the proxy is disabled) --
  // Scheduling priority: higher is more important; the proxy sheds the
  // lowest-priority held work first.
  int priority = 0;
  // Times this request was re-dispatched after being displaced by an
  // instance failure (each retry backs off exponentially).
  uint32_t dispatch_attempts = 0;
  // Output was capped by graceful degradation under sustained overload.
  bool degraded = false;
  ProxyOutcome proxy_outcome = ProxyOutcome::kNone;

  // --- Execution record -------------------------------------------------
  TimePoint prefill_start = kTimeUnset;
  TimePoint first_token_time = kTimeUnset;
  TimePoint completion = kTimeUnset;
  // Tokens generated so far (including the first token once prefilled).
  int64_t generated = 0;
  // Last time the request made decoding progress (used for wait accounting).
  TimePoint last_progress = kTimeUnset;
  // KV tokens billed against the decode unit's admission budget.
  int64_t billed_kv_tokens = 0;
  // Prompt tokens already processed (chunked prefill).
  int64_t prefilled_tokens = 0;
  // Per-token SLO accounting (§2.1): deadline of token k is
  // arrival + TTFT + k*TBT; met/total counted as tokens are produced.
  int64_t tokens_met = 0;

  // --- Latency breakdown (Figure 14) -------------------------------------
  Duration prefill_wait = 0.0;
  Duration prefill_exec = 0.0;
  Duration decode_wait = 0.0;
  Duration decode_exec = 0.0;
  Duration control_overhead = 0.0;
  Duration data_overhead = 0.0;

  // KV-cache state, managed by the serving system.
  KvHandle kv;

  int64_t remaining_tokens() const { return output_tokens - generated; }
  bool finished() const { return generated >= output_tokens; }

  // Total resident context length (prompt + generated so far).
  int64_t context_tokens() const { return prompt_tokens + generated; }
};

// One arrival in a workload trace.
struct ArrivalEvent {
  TimePoint time = 0.0;
  ModelId model = kInvalidModel;
  int64_t prompt_tokens = 0;
  int64_t output_tokens = 1;
  // Proxy shedding priority (higher = shed last); ignored without a proxy.
  int priority = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_REQUEST_H_
