// The Aegaeon serving cluster (Figure 5): a pool of GPUs split into prefill
// and decoding instances, a proxy layer dispatching multi-model requests,
// token-level schedulers (§4), and preemptive auto-scaling (§5), all driven
// by the discrete-event simulator.
//
// Lifecycle of a request (§7.3): prefill waiting (job queue) -> prefill
// execution -> KV swap-out to the unified CPU cache -> decode dispatch ->
// cycles of decoding waiting (work list) and decoding execution -> done.

#ifndef AEGAEON_CORE_CLUSTER_H_
#define AEGAEON_CORE_CLUSTER_H_

#include <deque>
#include <memory>
#include <vector>

#include "analysis/metrics.h"
#include "analysis/timeline.h"
#include "core/config.h"
#include "core/decode_scheduler.h"
#include "core/prefill_scheduler.h"
#include "core/request.h"
#include "engine/autoscaler.h"
#include "hw/node.h"
#include "kv/transfer_engine.h"
#include "kv/unified_cache.h"
#include "mem/model_cache.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "serve/proxy.h"
#include "sim/simulator.h"

namespace aegaeon {

class AegaeonCluster {
 public:
  AegaeonCluster(AegaeonConfig config, const ModelRegistry& registry, const GpuSpec& gpu_spec);

  // Serves the whole trace to completion and returns run metrics.
  // Equivalent to BeginRun(); InjectArrivals(trace.data(), trace.size(),
  // 0.0); AdvanceAll(); FinishRun().
  RunMetrics Run(const std::vector<ArrivalEvent>& trace);

  // --- Stepwise execution (sharded fleet; see core/fleet.h) --------------
  // The fleet drives each cell cluster incrementally: arrivals are injected
  // epoch by epoch as the dispatcher routes them, and the event loop is
  // advanced to each epoch's conservative horizon rather than to empty.
  //
  // Prepares the cluster for event processing: warms model caches, arms
  // failure plans, and constructs the proxy when enabled. Call once.
  void BeginRun();
  // Creates a Request per event and schedules its injection at
  // `event.time + delay` (the fleet's dispatch latency; 0 for direct runs).
  // Requests live in a deque, so pointers captured by scheduled events stay
  // valid across later injections.
  void InjectArrivals(const ArrivalEvent* events, size_t count, Duration delay);
  // Per-event injection-time form: event i reaches the cluster at
  // `deliver_at[i]` (>= the cluster clock). The replicated control plane
  // uses this for failover replays, whose delivery time is the replay
  // instant plus the dispatch hop — not the original arrival plus the hop.
  // `Request::arrival` stays the client-observed event time either way, so
  // failover delay surfaces as prefill wait / TTFT.
  void InjectArrivals(const ArrivalEvent* events, const TimePoint* deliver_at, size_t count);
  // Processes every event with timestamp <= horizon, then pins the clock to
  // the horizon. Returns the number of events processed.
  uint64_t AdvanceUntil(TimePoint horizon);
  // Processes events until the queue is empty. Returns events processed.
  uint64_t AdvanceAll();
  // Runs the teardown audits and folds metrics. Call once, after the final
  // advance.
  RunMetrics FinishRun();

  // Requests that reached RequestPhase::kDone.
  uint64_t completed_requests() const { return completed_count_; }
  // Requests whose lifecycle has ended: completed plus proxy-dropped. The
  // fleet's load balancer uses injected - settled as a cell's outstanding
  // load.
  uint64_t settled_requests() const;
  uint64_t injected_requests() const { return requests_.size(); }
  TimePoint Now() const { return sim_.Now(); }
  bool pending() const { return sim_.pending(); }
  // Earliest pending event (kTimeNever when idle); the fleet's barrier
  // stage uses it to skip cells with nothing to do inside an epoch.
  TimePoint NextEventTime() { return sim_.NextEventTime(); }
  const SimPerfCounters& sim_perf() const { return sim_.perf(); }

  // --- Fault injection (§3.3: the proxy layer provides fault tolerance) --
  // Schedules instance `index` (prefill or decode partition) to fail at
  // `when` and come back `downtime` seconds later (engine re-bootstrap).
  // On a prefill failure the in-flight and queued requests re-dispatch to
  // healthy instances. On a decode failure, device-resident KV is lost:
  // affected requests re-enter the prefill phase to *recompute* their KV
  // (already-delivered tokens stay delivered), while host-resident (parked)
  // requests simply re-dispatch. Call before Run(). The plan is validated
  // here, at schedule time: an out-of-range instance index (or a
  // non-positive downtime / negative fire time) aborts immediately instead
  // of silently matching nothing at dispatch time.
  void ScheduleFailure(bool prefill_partition, int index, TimePoint when, Duration downtime);

  // Degrades every PCIe transfer link of this cell to `bandwidth_factor`
  // (0 < factor <= 1) of its healthy bandwidth during [when, when +
  // duration): swap-in/swap-out and model loads slow down, decode rounds
  // stall on KV sync. Windows do not stack; the last writer wins while
  // they overlap and health is restored to exactly 1.0 afterwards. Call
  // before Run().
  void ScheduleLinkDegradation(TimePoint when, Duration duration, double bandwidth_factor);

  // Overrides this cell's software-aging drift (config.aging). The fleet's
  // fault engine uses it for per-cell drift. Call before Run().
  void SetAgingDrift(const AgingDriftConfig& aging) { aging_ = aging; }

  // --- Introspection (tests and benches) --------------------------------
  const std::deque<Request>& requests() const { return requests_; }
  // Node 0's caches (the only node unless config.nodes > 1).
  const UnifiedKvCache& cpu_kv_cache() const { return *node_states_[0].cpu_kv; }
  const TransferEngine& transfer_engine() const { return xfer_; }
  const ModelCache& model_cache() const { return *node_states_[0].model_cache; }
  int node_count() const { return static_cast<int>(node_states_.size()); }
  // Cross-node KV migrations performed (locality misses).
  uint64_t kv_migrations() const { return kv_migrations_; }
  // The serving proxy of the current/last Run (nullptr when disabled).
  const ServingProxy* proxy() const { return proxy_.get(); }
  // Switch latencies across all instances (Figure 15 left).
  std::vector<double> SwitchLatencies() const;

  struct ScalingStats {
    uint64_t prefill_switches = 0;
    uint64_t decode_switches = 0;
    uint64_t prefetch_hits = 0;
    uint64_t prefetch_issued = 0;
    double prefill_switch_mean = 0.0;
    double decode_switch_mean = 0.0;
  };
  ScalingStats GetScalingStats() const;

  // Optional execution-timeline recording (Chrome trace export). The
  // recorder must outlive the cluster. Lanes: prefill instances first,
  // then decoding instances.
  void AttachTimeline(TimelineRecorder* recorder) { timeline_ = recorder; }
  // Fraction of compute-stream busy time over the makespan, per GPU.
  std::vector<double> GpuUtilization(Duration horizon) const;

 private:
  // Per-physical-node state (Figure 5): host DRAM, checkpoint cache,
  // unified CPU KV cache, and the inter-node fabric endpoint.
  struct NodeState {
    std::unique_ptr<Node> hw;
    std::unique_ptr<ModelCache> model_cache;
    std::unique_ptr<UnifiedKvCache> cpu_kv;
    std::unique_ptr<StreamSim> fabric;  // serialized inter-node sends
  };

  struct PrefillUnit {
    int index = 0;
    int node = 0;
    GpuDevice* gpu = nullptr;
    std::unique_ptr<UnifiedKvCache> kv_cache;
    std::unique_ptr<AutoScaler> scaler;
    bool busy = false;
    // Fault state: failed units accept no work; epoch invalidates events
    // scheduled before a crash.
    bool failed = false;
    uint64_t epoch = 0;
    Request* active = nullptr;
  };

  struct DecodeUnit {
    int index = 0;
    int node = 0;
    GpuDevice* gpu = nullptr;
    std::unique_ptr<UnifiedKvCache> kv_cache;
    std::unique_ptr<AutoScaler> scaler;
    std::vector<DecodeBatch> work_list;
    // Requests dispatched here whose KV is still host-side (swap-in failed
    // or pending); retried at round boundaries.
    std::vector<Request*> parked;
    std::vector<Duration> quotas;
    size_t turn = 0;
    bool round_active = false;
    bool round_did_work = false;
    TimePoint earliest_ready = kTimeNever;
    // Expected KV bytes of the unfinished requests assigned here; admission
    // control keeps this within the GPU KV capacity (Algorithm 2, line 2).
    double committed_kv_bytes = 0.0;
    // Last time a KV extension failed (capacity pressure). Parked requests
    // are not re-admitted for a cool-down after this, so resident requests
    // can use freed blocks to finish instead of ping-ponging with parked
    // ones.
    TimePoint last_pressure = -1e18;
    bool failed = false;
    uint64_t epoch = 0;
  };

  struct FailurePlan {
    bool prefill_partition = true;
    int index = 0;
    TimePoint when = 0.0;
    Duration downtime = 10.0;
  };

  struct LinkDegradationPlan {
    TimePoint when = 0.0;
    Duration duration = 0.0;
    double bandwidth_factor = 1.0;
  };

  // Arrival/prefill path.
  void OnArrival(Request* request);
  void TryStartPrefill(int unit_index);
  void FinishPrefill(int unit_index, Request* request);

  // Serving proxy (overload control). Constructed per Run when enabled.
  void MakeProxy();
  // Estimated delay before a request dispatched now would start prefill:
  // the least-loaded healthy prefill queue, plus a decode back-pressure
  // term when prefilled work is already waiting for decode KV capacity.
  Duration BacklogEstimate(const Request& request) const;
  // Re-admission of a failure-displaced request into the prefill phase.
  void RequeuePrefill(Request* request);

  // Decode path.
  void DispatchDecode(Request* request);
  // Capacity-aware assignment; false when every unit's KV budget is full
  // (the request then waits in the overflow queue).
  bool TryAssignDecode(Request* request);
  void DrainDecodeOverflow();
  void OnDecodeComplete(DecodeUnit& unit, Request* request);
  // Bills KV growth beyond the admission estimate against the unit budget.
  void BillKvGrowth(DecodeUnit& unit, Request* request);
  double ExpectedKvBytes(ModelId model) const;
  double KvBytesPerToken(ModelId model) const;
  int MaxBatchForModel(ModelId model) const;
  bool TrySwapIn(DecodeUnit& unit, Request* request);
  void StartRound(DecodeUnit& unit);
  void RunTurn(DecodeUnit& unit);
  void FinishTurn(DecodeUnit& unit, std::vector<Request*> active, TimePoint exec_start,
                  Duration step_time, int64_t steps);

  // KV shape-class id of `model` in `cache` (pre-registered).
  ShapeClassId ShapeFor(const UnifiedKvCache& cache, ModelId model) const;

  AegaeonConfig config_;
  const ModelRegistry& registry_;
  LatencyModel latency_;
  Simulator sim_;
  std::vector<NodeState> node_states_;
  TransferEngine xfer_;
  uint64_t kv_migrations_ = 0;

  std::vector<PrefillUnit> prefill_units_;
  std::vector<DecodeUnit> decode_units_;
  std::unique_ptr<PrefillScheduler> prefill_sched_;
  std::unique_ptr<ServingProxy> proxy_;

  // Shape-class ids per model: [cache-specific]; index 0 = CPU cache,
  // 1 + unit-index for GPU caches (all caches register every model's shape
  // up front, and identical geometries share a class).
  std::vector<ShapeClassId> cpu_shape_of_model_;
  std::vector<ShapeClassId> gpu_shape_of_model_;  // identical across GPU caches

  // Fault injection.
  void FailPrefillUnit(int index, Duration downtime);
  void FailDecodeUnit(int index, Duration downtime);
  void RecoverPrefillUnit(int index);
  void RecoverDecodeUnit(int index);
  // Sets every GPU link's health fraction (link-degradation windows).
  void SetLinkHealth(double fraction);
  // Software-aging multipliers at `now`; exactly 1.0 (a bitwise no-op on
  // every computation they scale) while the corresponding rate is zero or
  // the drift has not started.
  double AgingLatencyFactor(TimePoint now) const;
  double AgingKvFactor(TimePoint now) const;
  std::unique_ptr<UnifiedKvCache> MakeGpuKvCache(int gpu_id);
  std::unique_ptr<AutoScaler> MakeScaler(GpuDevice& gpu, int node);

  // Multi-node helpers.
  UnifiedKvCache& CpuKvOf(int node) { return *node_states_[node].cpu_kv; }
  // Moves host-resident KV to `to_node`'s CPU cache over the fabric.
  bool MigrateKv(KvHandle& handle, int to_node, TimePoint now);

  // Prefilled requests waiting for decode KV capacity.
  std::deque<Request*> decode_overflow_;

  std::vector<FailurePlan> failure_plans_;
  std::vector<LinkDegradationPlan> link_plans_;
  AgingDriftConfig aging_;
  // Deque: InjectArrivals appends incrementally while scheduled events hold
  // pointers to earlier elements, so reallocation is not an option.
  std::deque<Request> requests_;
  // Reused by InjectArrivals (capacity retained), so per-epoch injection
  // under the sharded fleet does no steady-state heap allocation.
  std::vector<EventQueue::Pending> inject_scratch_;
  std::vector<TimePoint> inject_times_scratch_;
  uint64_t completed_count_ = 0;
  TimelineRecorder* timeline_ = nullptr;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_CLUSTER_H_
