#include "core/decode_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

namespace aegaeon {

QuotaResult ComputeQuotas(const std::vector<BatchQuotaInput>& batches,
                          Duration switch_overhead_total, Duration qmax, double alpha_floor) {
  QuotaResult result;
  const size_t n = batches.size();
  result.quotas.assign(n, qmax);
  if (n == 0) {
    return result;
  }
  const double c = switch_overhead_total;
  if (n == 1 || c <= 0.0) {
    // Nothing to rotate against: the batch just decodes for up to QMAX.
    result.alpha = alpha_floor;
    result.estimated_attainment = 1.0;
    return result;
  }

  double inv_n_sum = 0.0;
  double n_min = std::numeric_limits<double>::infinity();
  std::vector<double> n_k(n);
  for (size_t i = 0; i < n; ++i) {
    assert(batches[i].step_time > 0.0);
    // n_k = d / t_k: decode steps per TBT deadline; clamp at 1 (a batch
    // whose step time exceeds its deadline earns no slack).
    n_k[i] = std::max(1.0, batches[i].tbt / batches[i].step_time);
    inv_n_sum += 1.0 / n_k[i];
    n_min = std::min(n_min, n_k[i]);
  }

  // Eq. (3).
  double alpha = std::max(c / (n_min * qmax) + inv_n_sum, alpha_floor);
  result.alpha = alpha;
  result.estimated_attainment = std::min(1.0, 1.0 / alpha);

  // Eq. (2). alpha >= c/(n_min*qmax) + inv_n_sum implies the denominator is
  // strictly positive and q_i <= qmax * n_min / n_i <= qmax.
  double slack = alpha - inv_n_sum;
  assert(slack > 0.0);
  for (size_t i = 0; i < n; ++i) {
    result.quotas[i] = c / (n_k[i] * slack);
  }
  return result;
}

void GroupBatchesByModel(std::vector<DecodeBatch>& work_list) {
  // std::map (not unordered): grouping feeds the round-robin rotation, so
  // iteration/lookup behavior must be deterministic across platforms.
  std::map<ModelId, size_t> first_seen;
  for (size_t i = 0; i < work_list.size(); ++i) {
    first_seen.try_emplace(work_list[i].model, i);
  }
  std::stable_sort(work_list.begin(), work_list.end(),
                   [&first_seen](const DecodeBatch& a, const DecodeBatch& b) {
                     return first_seen.at(a.model) < first_seen.at(b.model);
                   });
}

int PickDecodeInstance(const std::vector<size_t>& work_list_sizes,
                       const std::vector<bool>& has_model) {
  assert(!work_list_sizes.empty());
  assert(work_list_sizes.size() == has_model.size());
  int best = -1;
  // First preference: instances already serving this model (joining or
  // stacking a batch avoids an extra model in some round's rotation).
  for (size_t i = 0; i < work_list_sizes.size(); ++i) {
    if (!has_model[i]) {
      continue;
    }
    if (best < 0 || work_list_sizes[i] < work_list_sizes[best]) {
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) {
    return best;
  }
  for (size_t i = 0; i < work_list_sizes.size(); ++i) {
    if (best < 0 || work_list_sizes[i] < work_list_sizes[best]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace aegaeon
