#include "core/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aegaeon {

namespace {

int ClampShards(int shards, int cells) { return std::max(1, std::min(shards, cells)); }

}  // namespace

ShardedFleet::ShardedFleet(FleetConfig config, const ModelRegistry& registry,
                           const GpuSpec& gpu_spec)
    : config_(config),
      sharded_(ClampShards(config.shards, std::max(config.cells, 1)), config.threads),
      mailboxes_(ClampShards(config.shards, std::max(config.cells, 1))) {
  const int cells = std::max(config_.cells, 1);
  // The dispatch channel only exists when there is more than one cell to
  // route between; a single cell gets one unbounded (exact) epoch. The
  // reserved channels would tighten the lookahead here once implemented.
  CrossShardChannels channels;
  if (cells > 1) {
    assert(config_.dispatch_latency > 0.0 &&
           "conservative sync needs a positive dispatch latency");
    channels.dispatch = config_.dispatch_latency;
  }
  lookahead_ = ConservativeLookahead(channels);

  cells_.reserve(static_cast<size_t>(cells));
  simsan_.reserve(static_cast<size_t>(cells));
  routed_.assign(static_cast<size_t>(cells), 0);
  pending_routed_.assign(static_cast<size_t>(cells), 0);
  delivery_batches_.reserve(static_cast<size_t>(cells));
  delivery_time_batches_.reserve(static_cast<size_t>(cells));
  touched_cells_.reserve(static_cast<size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    simsan_.push_back(std::make_unique<simsan::SimSan>());
    // Construction registers allocators/streams with the checker, so it
    // must already run under the cell's scope.
    simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(i)]);
    cells_.push_back(std::make_unique<AegaeonCluster>(config_.cell, registry, gpu_spec));
    delivery_batches_.emplace_back(ArenaAllocator<ArrivalEvent>(&delivery_arena_));
    delivery_time_batches_.emplace_back(ArenaAllocator<TimePoint>(&delivery_arena_));
  }

  dispatcher_ = std::make_unique<LeastOutstandingDispatcher>();
  // The control plane sees cells only through these hooks; everything it
  // calls runs in the serial barrier stage.
  ControlPlane::Hooks hooks;
  hooks.route = [this](const ArrivalEvent& event) {
    const int target = dispatcher_->Route(
        event, [this](int c) { return CellLoad(c); }, this->cells());
    ++pending_routed_[static_cast<size_t>(target)];
    return target;
  };
  hooks.deliver = [this](const ArrivalEvent& event, int target, TimePoint deliver_at) {
    // Committed deliveries ride the fleet mailboxes like any cross-shard
    // event; the mailbox key's time slot is the delivery time itself.
    mailboxes_.Post(mailboxes_.Dispatcher(), target, deliver_at, event);
  };
  hooks.unroute = [this](int target) { --pending_routed_[static_cast<size_t>(target)]; };
  ctrl_ = std::make_unique<ControlPlane>(config_.ctrl, config_.dispatch_latency,
                                         std::move(hooks));
}

void ShardedFleet::SetDispatcher(std::unique_ptr<Dispatcher> dispatcher) {
  assert(dispatcher != nullptr);
  dispatcher_ = std::move(dispatcher);
}

void ShardedFleet::ScheduleCellFailure(int cell, bool prefill_partition, int index,
                                       TimePoint when, Duration downtime) {
  if (cell < 0 || cell >= cells()) {
    std::fprintf(stderr,
                 "ShardedFleet::ScheduleCellFailure: cell %d outside the fleet "
                 "(%d cells)\n",
                 cell, cells());
    std::abort();
  }
  // Instance index/time validation happens at the cell (fails fast too).
  cells_[static_cast<size_t>(cell)]->ScheduleFailure(prefill_partition, index, when, downtime);
}

void ShardedFleet::ScheduleDispatcherCrash(TimePoint when, Duration downtime) {
  ctrl_->ScheduleLeaderCrash(when, downtime);
}

ShardedFleet::~ShardedFleet() {
  // Destructors fire queue/GPU teardown hooks; route them to their cell's
  // checker like every other access.
  for (size_t i = 0; i < cells_.size(); ++i) {
    simsan::ScopedInstance scope(*simsan_[i]);
    cells_[i].reset();
  }
}

int ShardedFleet::total_gpus() const {
  return cells() * (config_.cell.prefill_instances + config_.cell.decode_instances) *
         config_.cell.instance_tp;
}

void ShardedFleet::ShardRange(int shard, int* begin, int* end) const {
  const int n = cells();
  const int k = sharded_.shards();
  const int base = n / k;
  const int extra = n % k;
  *begin = shard * base + std::min(shard, extra);
  *end = *begin + base + (shard < extra ? 1 : 0);
}

uint64_t ShardedFleet::CellLoad(int cell) const {
  // Outstanding counts served, injected, and routed-but-undelivered
  // requests: pending_routed_ reflects routing already performed at this
  // barrier (delivery is batched at the end of the window) plus anything
  // the control plane holds in flight, so a burst spreads across cells
  // instead of piling onto one snapshot winner — the same arithmetic
  // per-arrival delivery would produce via injected_requests().
  const AegaeonCluster& c = *cells_[static_cast<size_t>(cell)];
  return c.injected_requests() - c.settled_requests() +
         pending_routed_[static_cast<size_t>(cell)];
}

ShardedSim::EpochPlan ShardedFleet::PlanEpoch() {
  const std::vector<ArrivalEvent>& trace = *trace_;
  ShardedSim::EpochPlan plan;  // horizon = kTimeNever: final drain epoch
  if (next_arrival_ >= trace.size() && ctrl_->Drained()) {
    return plan;  // nothing left to route or re-dispatch
  }
  if (lookahead_ >= kTimeNever) {
    // No cross-cell channel (single cell): route everything up front —
    // running the control plane (and any dispatcher crash it has
    // scheduled) to completion — and run one exact, unbounded epoch.
    while (next_arrival_ < trace.size()) {
      ctrl_->Offer(trace[next_arrival_++]);
    }
    ctrl_->Drain();
    DeliverMailboxes();
    return plan;
  }
  // Next observable time: the earliest unrouted arrival or pending
  // control-plane effect (an in-flight delivery, or — while leaderless —
  // the next protocol event that can elect a leader and replay). Cells
  // cannot emit cross-shard traffic today (no cell-originated channel is
  // implemented), so cell-local events never bound the window — unless a
  // reserved cross_cell_* channel is enabled, in which case every cell's
  // earliest event becomes observable and router batching would leak stale
  // state: collapse to exact one-slot windows.
  TimePoint next_observable =
      next_arrival_ < trace.size() ? trace[next_arrival_].time : kTimeNever;
  next_observable = std::min(next_observable, ctrl_->NextPendingTime());
  int quantum = config_.epoch_skipping ? std::max(config_.route_quantum, 1) : 1;
  if (config_.cross_cell_kv || config_.cross_cell_autoscale) {
    for (const std::unique_ptr<AegaeonCluster>& cell : cells_) {
      next_observable = std::min(next_observable, cell->NextEventTime());
    }
    quantum = 1;
  }
  // Snap the window to the lookahead grid slot holding the next observable
  // time, then extend it to `quantum` slots. Grid times are a pure function
  // of (trace, lookahead, quantum, fault plan), so every shard count sees
  // identical barriers. Slots between the previous barrier and the window
  // start are dead — no arrival, no pending cross-cell event — and are
  // skipped without a barrier; the batched slots past the first also save
  // a barrier each, so both are counted as skipped.
  const TimePoint base = std::floor(next_observable / lookahead_) * lookahead_;
  const TimePoint horizon = base + static_cast<double>(quantum) * lookahead_;
  plan.slots_skipped =
      static_cast<uint64_t>(std::llround((horizon - barrier_) / lookahead_)) - 1;
  while (next_arrival_ < trace.size() && trace[next_arrival_].time < horizon) {
    // Routing goes through the control plane: with a live leader and no
    // imminent dispatcher crash the arrival commits immediately at
    // event.time + dispatch_latency (the exact pre-replication delivery
    // time — with quantum == 1 that is >= the horizon, and with a wider
    // window it may land inside this window, still causally safe because
    // delivery happens here at the barrier, before any cell advances).
    // Otherwise it enters the re-dispatch pipeline.
    ctrl_->Offer(trace[next_arrival_++]);
  }
  // Fire every protocol event inside the window: heartbeats, scheduled
  // dispatcher crashes (which un-route the in-flight log back into the
  // queue), elections, and the successor's replays.
  ctrl_->AdvanceTo(horizon);
  DeliverMailboxes();
  barrier_ = horizon;
  plan.horizon = horizon;
  return plan;
}

void ShardedFleet::DeliverMailboxes() {
  // Collected order is (time, source, seq) == commit order here (single
  // serial dispatcher source, nondecreasing delivery times), so per-cell
  // batches preserve exactly the order per-arrival delivery would have
  // injected.
  mailboxes_.CollectInto(collected_);
  if (collected_.empty()) {
    return;
  }
  for (const CrossShardEvent<ArrivalEvent>& event : collected_) {
    ArrivalBatch& batch = delivery_batches_[static_cast<size_t>(event.target)];
    if (batch.empty()) {
      touched_cells_.push_back(event.target);
    }
    batch.push_back(event.payload);
    // Inject at the committed delivery time (== the mailbox slot): normal
    // routes land at arrival + dispatch_latency, failover replays at the
    // successor's re-dispatch time.
    delivery_time_batches_[static_cast<size_t>(event.target)].push_back(event.time);
  }
  for (const int target : touched_cells_) {
    ArrivalBatch& batch = delivery_batches_[static_cast<size_t>(target)];
    TimeBatch& times = delivery_time_batches_[static_cast<size_t>(target)];
    AegaeonCluster& cell = *cells_[static_cast<size_t>(target)];
    simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(target)]);
    cell.InjectArrivals(batch.data(), times.data(), batch.size());
    routed_[static_cast<size_t>(target)] += batch.size();
    pending_routed_[static_cast<size_t>(target)] -= batch.size();
    batch.clear();
    times.clear();
  }
  touched_cells_.clear();
}

bool ShardedFleet::ShardHasWork(int shard, TimePoint horizon) {
  int begin = 0, end = 0;
  ShardRange(shard, &begin, &end);
  for (int i = begin; i < end; ++i) {
    AegaeonCluster& cell = *cells_[static_cast<size_t>(i)];
    if (horizon >= kTimeNever ? cell.pending() : cell.NextEventTime() <= horizon) {
      return true;
    }
  }
  return false;
}

RunMetrics ShardedFleet::Run(const std::vector<ArrivalEvent>& trace) {
  assert(std::is_sorted(trace.begin(), trace.end(),
                        [](const ArrivalEvent& a, const ArrivalEvent& b) {
                          return a.time < b.time;
                        }) &&
         "fleet dispatch consumes the trace in time order");
  trace_ = &trace;
  next_arrival_ = 0;
  barrier_ = 0.0;
  {
    MutexLock lock(overrun_mu_);
    sync_overruns_ = 0;
  }
  dispatcher_->BeginRun(cells());
  ctrl_->Begin();

  sharded_.Phase([this](int shard) {
    int begin = 0, end = 0;
    ShardRange(shard, &begin, &end);
    for (int i = begin; i < end; ++i) {
      simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(i)]);
      cells_[static_cast<size_t>(i)]->BeginRun();
    }
  });

  // The idle probe is only wired up under epoch skipping; the pre-skip
  // protocol advanced (and clock-pinned) every cell every epoch, and the
  // off mode reproduces that exactly.
  std::function<bool(int, TimePoint)> has_work;
  if (config_.epoch_skipping) {
    has_work = [this](int shard, TimePoint horizon) { return ShardHasWork(shard, horizon); };
  }

  sharded_.Run(
      [this] { return PlanEpoch(); }, has_work,
      [this](int shard, TimePoint horizon) {
        int begin = 0, end = 0;
        ShardRange(shard, &begin, &end);
        uint64_t processed = 0;
        for (int i = begin; i < end; ++i) {
          AegaeonCluster& cell = *cells_[static_cast<size_t>(i)];
          if (config_.epoch_skipping) {
            // Per-cell idle skip: the predicate depends only on this cell's
            // own queue and the global horizon sequence, so the outcome —
            // including the skipped cell's unpinned clock — is identical
            // for every shard count.
            if (horizon >= kTimeNever ? !cell.pending() : cell.NextEventTime() > horizon) {
              continue;
            }
          }
          simsan::SimSan& checker = *simsan_[static_cast<size_t>(i)];
          simsan::ScopedInstance scope(checker);
          processed += horizon >= kTimeNever ? cell.AdvanceAll() : cell.AdvanceUntil(horizon);
          // Conservative-sync audit: the cell's shadow clock must not have
          // run past the horizon no other shard has reached yet.
          if (horizon < kTimeNever && checker.state().now() > horizon) {
            MutexLock lock(overrun_mu_);
            ++sync_overruns_;
          }
        }
        return processed;
      });

  cell_metrics_.assign(cells_.size(), RunMetrics{});
  sharded_.Phase([this](int shard) {
    int begin = 0, end = 0;
    ShardRange(shard, &begin, &end);
    for (int i = begin; i < end; ++i) {
      simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(i)]);
      cell_metrics_[static_cast<size_t>(i)] = cells_[static_cast<size_t>(i)]->FinishRun();
    }
  });
  trace_ = nullptr;

  RunMetrics fleet;
  for (const RunMetrics& cell : cell_metrics_) {
    fleet.MergeFrom(cell);
  }
  fleet.shard_sim = sharded_.shard_perf();
  fleet.sync_epochs = sharded_.epochs();
  fleet.sync_epochs_skipped = sharded_.epochs_skipped();
  fleet.ctrl = ctrl_->stats();
  return fleet;
}

FleetAudit ShardedFleet::audit() const {
  FleetAudit audit;
  audit.epochs = sharded_.epochs();
  audit.epochs_skipped = sharded_.epochs_skipped();
  {
    MutexLock lock(overrun_mu_);
    audit.sync_overruns = sync_overruns_;
  }
  for (const std::unique_ptr<simsan::SimSan>& checker : simsan_) {
    const simsan::SimSanReport report = checker->report();
    audit.checks += report.checks;
    audit.violations += report.violations.size();
  }
  return audit;
}

}  // namespace aegaeon
