#include "core/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aegaeon {

namespace {

int ClampShards(int shards, int cells) { return std::max(1, std::min(shards, cells)); }

}  // namespace

ShardedFleet::ShardedFleet(FleetConfig config, const ModelRegistry& registry,
                           const GpuSpec& gpu_spec)
    : config_(config),
      sharded_(ClampShards(config.shards, std::max(config.cells, 1)), config.threads),
      mailboxes_(ClampShards(config.shards, std::max(config.cells, 1))) {
  const int cells = std::max(config_.cells, 1);
  // The dispatch channel only exists when there is more than one cell to
  // route between; a single cell gets one unbounded (exact) epoch. The
  // reserved channels would tighten the lookahead here once implemented.
  CrossShardChannels channels;
  if (cells > 1) {
    assert(config_.dispatch_latency > 0.0 &&
           "conservative sync needs a positive dispatch latency");
    channels.dispatch = config_.dispatch_latency;
  }
  lookahead_ = ConservativeLookahead(channels);

  cells_.reserve(static_cast<size_t>(cells));
  simsan_.reserve(static_cast<size_t>(cells));
  routed_.assign(static_cast<size_t>(cells), 0);
  for (int i = 0; i < cells; ++i) {
    simsan_.push_back(std::make_unique<simsan::SimSan>());
    // Construction registers allocators/streams with the checker, so it
    // must already run under the cell's scope.
    simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(i)]);
    cells_.push_back(std::make_unique<AegaeonCluster>(config_.cell, registry, gpu_spec));
  }
}

ShardedFleet::~ShardedFleet() {
  // Destructors fire queue/GPU teardown hooks; route them to their cell's
  // checker like every other access.
  for (size_t i = 0; i < cells_.size(); ++i) {
    simsan::ScopedInstance scope(*simsan_[i]);
    cells_[i].reset();
  }
}

int ShardedFleet::total_gpus() const {
  return cells() * (config_.cell.prefill_instances + config_.cell.decode_instances) *
         config_.cell.instance_tp;
}

void ShardedFleet::ShardRange(int shard, int* begin, int* end) const {
  const int n = cells();
  const int k = sharded_.shards();
  const int base = n / k;
  const int extra = n % k;
  *begin = shard * base + std::min(shard, extra);
  *end = *begin + base + (shard < extra ? 1 : 0);
}

int ShardedFleet::RouteArrival(const ArrivalEvent& event) {
  (void)event;
  // Least outstanding work, ties to the lowest cell id. Outstanding counts
  // both served and just-routed requests: injected_requests() reflects the
  // routing already performed at this barrier, so a burst spreads across
  // cells instead of piling onto one snapshot winner.
  int best = 0;
  uint64_t best_load = ~uint64_t{0};
  for (int i = 0; i < cells(); ++i) {
    const AegaeonCluster& cell = *cells_[static_cast<size_t>(i)];
    const uint64_t load = cell.injected_requests() - cell.settled_requests();
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

TimePoint ShardedFleet::PlanEpoch() {
  const std::vector<ArrivalEvent>& trace = *trace_;
  if (next_arrival_ >= trace.size()) {
    return kTimeNever;  // nothing left to route: final drain epoch
  }
  if (lookahead_ >= kTimeNever) {
    // No cross-cell channel (single cell): route everything up front and
    // run one exact, unbounded epoch.
    while (next_arrival_ < trace.size()) {
      const ArrivalEvent& event = trace[next_arrival_++];
      const int target = RouteArrival(event);
      mailboxes_.Post(mailboxes_.Dispatcher(), target, event.time, event);
      DeliverMailboxes();
    }
    return kTimeNever;
  }
  // Fast-forward empty epochs: snap the window to the lookahead grid slot
  // holding the next undispatched arrival. Grid times are a pure function
  // of (trace, lookahead), so every shard count sees identical barriers.
  const TimePoint base = std::floor(trace[next_arrival_].time / lookahead_) * lookahead_;
  const TimePoint horizon = base + lookahead_;
  while (next_arrival_ < trace.size() && trace[next_arrival_].time < horizon) {
    const ArrivalEvent& event = trace[next_arrival_++];
    const int target = RouteArrival(event);
    // Routed through the mailbox like any cross-shard event: delivery time
    // is the arrival plus the dispatch hop, which is >= the horizon — the
    // current epoch cannot observe it, the next one will.
    mailboxes_.Post(mailboxes_.Dispatcher(), target, event.time + config_.dispatch_latency,
                    event);
    DeliverMailboxes();
  }
  return horizon;
}

void ShardedFleet::DeliverMailboxes() {
  for (const CrossShardEvent<ArrivalEvent>& event : mailboxes_.Collect()) {
    AegaeonCluster& cell = *cells_[static_cast<size_t>(event.target)];
    simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(event.target)]);
    cell.InjectArrivals(&event.payload, 1, config_.dispatch_latency);
    ++routed_[static_cast<size_t>(event.target)];
  }
}

RunMetrics ShardedFleet::Run(const std::vector<ArrivalEvent>& trace) {
  assert(std::is_sorted(trace.begin(), trace.end(),
                        [](const ArrivalEvent& a, const ArrivalEvent& b) {
                          return a.time < b.time;
                        }) &&
         "fleet dispatch consumes the trace in time order");
  trace_ = &trace;
  next_arrival_ = 0;
  {
    MutexLock lock(overrun_mu_);
    sync_overruns_ = 0;
  }

  sharded_.Phase([this](int shard) {
    int begin = 0, end = 0;
    ShardRange(shard, &begin, &end);
    for (int i = begin; i < end; ++i) {
      simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(i)]);
      cells_[static_cast<size_t>(i)]->BeginRun();
    }
  });

  sharded_.Run(
      [this] { return PlanEpoch(); },
      [this](int shard, TimePoint horizon) {
        int begin = 0, end = 0;
        ShardRange(shard, &begin, &end);
        uint64_t processed = 0;
        for (int i = begin; i < end; ++i) {
          AegaeonCluster& cell = *cells_[static_cast<size_t>(i)];
          simsan::SimSan& checker = *simsan_[static_cast<size_t>(i)];
          simsan::ScopedInstance scope(checker);
          processed += horizon >= kTimeNever ? cell.AdvanceAll() : cell.AdvanceUntil(horizon);
          // Conservative-sync audit: the cell's shadow clock must not have
          // run past the horizon no other shard has reached yet.
          if (horizon < kTimeNever && checker.state().now() > horizon) {
            MutexLock lock(overrun_mu_);
            ++sync_overruns_;
          }
        }
        return processed;
      });

  cell_metrics_.assign(cells_.size(), RunMetrics{});
  sharded_.Phase([this](int shard) {
    int begin = 0, end = 0;
    ShardRange(shard, &begin, &end);
    for (int i = begin; i < end; ++i) {
      simsan::ScopedInstance scope(*simsan_[static_cast<size_t>(i)]);
      cell_metrics_[static_cast<size_t>(i)] = cells_[static_cast<size_t>(i)]->FinishRun();
    }
  });
  trace_ = nullptr;

  RunMetrics fleet;
  for (const RunMetrics& cell : cell_metrics_) {
    fleet.MergeFrom(cell);
  }
  fleet.shard_sim = sharded_.shard_perf();
  fleet.sync_epochs = sharded_.epochs();
  return fleet;
}

FleetAudit ShardedFleet::audit() const {
  FleetAudit audit;
  audit.epochs = sharded_.epochs();
  {
    MutexLock lock(overrun_mu_);
    audit.sync_overruns = sync_overruns_;
  }
  for (const std::unique_ptr<simsan::SimSan>& checker : simsan_) {
    const simsan::SimSanReport report = checker->report();
    audit.checks += report.checks;
    audit.violations += report.violations.size();
  }
  return audit;
}

}  // namespace aegaeon
