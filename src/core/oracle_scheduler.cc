#include "core/oracle_scheduler.h"

#include <cassert>
#include <cmath>

namespace aegaeon {

double PeriodicAttainment(const std::vector<OracleBatch>& batches,
                          const std::vector<Duration>& quotas) {
  assert(batches.size() == quotas.size());
  if (batches.empty()) {
    return 1.0;
  }
  Duration round = 0.0;
  for (size_t k = 0; k < batches.size(); ++k) {
    round += quotas[k] + batches[k].switch_cost;
  }
  if (round <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t k = 0; k < batches.size(); ++k) {
    double tokens_per_round = std::floor(quotas[k] / batches[k].step_time);
    double ratio = tokens_per_round * batches[k].tbt / round;
    total += ratio < 1.0 ? ratio : 1.0;
  }
  return total / static_cast<double>(batches.size());
}

OracleResult GridSearchQuotas(const std::vector<OracleBatch>& batches,
                              const std::vector<Duration>& grid) {
  OracleResult best;
  const size_t k = batches.size();
  if (k == 0 || grid.empty()) {
    best.attainment = 1.0;
    return best;
  }
  std::vector<size_t> index(k, 0);
  std::vector<Duration> quotas(k, grid[0]);
  for (;;) {
    for (size_t i = 0; i < k; ++i) {
      quotas[i] = grid[index[i]];
    }
    double attainment = PeriodicAttainment(batches, quotas);
    best.evaluated++;
    if (attainment > best.attainment) {
      best.attainment = attainment;
      best.quotas = quotas;
    }
    // Odometer increment.
    size_t pos = 0;
    while (pos < k) {
      if (++index[pos] < grid.size()) {
        break;
      }
      index[pos] = 0;
      ++pos;
    }
    if (pos == k) {
      break;
    }
  }
  return best;
}

std::vector<Duration> GeometricGrid(Duration lo, Duration hi, int points) {
  assert(lo > 0.0 && hi > lo && points >= 2);
  std::vector<Duration> grid;
  grid.reserve(points);
  double ratio = std::pow(hi / lo, 1.0 / (points - 1));
  double value = lo;
  for (int i = 0; i < points; ++i) {
    grid.push_back(value);
    value *= ratio;
  }
  return grid;
}

}  // namespace aegaeon
