// Algorithm 1: grouped FCFS scheduling for the prefill phase (§4.2).
//
// Requests for the same model are grouped (up to MAX_GPSIZE accumulated
// jobs per group) to amortize auto-scaling; new groups go to the least
// loaded instance, where load is the estimated time to finish all pending
// groups including switching. Group sizes only accumulate — executing a
// request does not free a slot — so the policy never strays far from FCFS.

#ifndef AEGAEON_CORE_PREFILL_SCHEDULER_H_
#define AEGAEON_CORE_PREFILL_SCHEDULER_H_

#include <deque>
#include <functional>
#include <vector>

#include "core/request.h"
#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

class PrefillScheduler {
 public:
  // Callbacks decouple the scheduler from the execution substrate:
  //   exec_estimate(r): predicted prefill time of request r (Eq. 5);
  //   switch_estimate(from, to): predicted auto-scaling time (Eq. 4);
  //   current_model(i): model resident on prefill instance i.
  struct Estimators {
    std::function<Duration(const Request&)> exec_estimate;
    std::function<Duration(ModelId, ModelId)> switch_estimate;
    std::function<ModelId(int)> current_model;
  };

  PrefillScheduler(int instances, int max_group_size, Estimators estimators);

  // Algorithm 1, arrival event. Returns the instance the request landed on.
  int OnArrival(Request* request);

  // Algorithm 1, line 15: next request from the front group of instance
  // `i`'s job queue, or nullptr if the queue is drained. Exhausted front
  // groups are retired as a side effect.
  Request* NextJob(int i);

  // Model of the group that would run after the front group on instance
  // `i` — the prefetch hint. kInvalidModel when there is no such group.
  ModelId UpcomingModel(int i) const;

  bool HasWork(int i) const;
  size_t QueuedRequests(int i) const;

  // Estimated time to drain instance `i`'s queue (execution + switching).
  Duration LoadEstimate(int i) const;

  // Marks instance `i` (un)available for dispatch (fault tolerance). An
  // unavailable instance receives no new groups and existing groups on it
  // accept no joins. If every instance is unavailable, arrivals fall back
  // to instance 0 and wait for recovery.
  void SetAvailable(int i, bool available);

  // Removes and returns every queued (not yet started) request on instance
  // `i`, for re-dispatch after a failure.
  std::vector<Request*> DrainQueue(int i);

  // Re-queues a partially prefilled request on instance `i` behind the
  // current front group (chunked prefill: each chunk boundary yields the
  // instance to at most one other group, bounding their wait without
  // starving the long prompt).
  void PushContinuation(int i, Request* request);

 private:
  struct Group {
    ModelId model = kInvalidModel;
    std::deque<Request*> pending;
    // Accumulated size: never decremented (see §4.2's FCFS note).
    int accumulated = 0;
  };

  struct InstanceQueue {
    std::deque<Group> groups;
    bool available = true;
  };

  int max_group_size_;
  Estimators est_;
  std::vector<InstanceQueue> queues_;
};

}  // namespace aegaeon

#endif  // AEGAEON_CORE_PREFILL_SCHEDULER_H_
