#include "kv/transfer_engine.h"

#include <cassert>
#include <utility>

#include "sanitizer/simsan.h"

namespace aegaeon {

bool TransferEngine::SwapOut(KvHandle& handle, GpuDevice& gpu, UnifiedKvCache& gpu_cache,
                             UnifiedKvCache& cpu_cache, TimePoint now) {
  assert(handle.location == KvLocation::kGpu);
  assert(handle.gpu == gpu.id());

  // Target blocks in the CPU cache. Allocation implicitly avoids move-listed
  // blocks (rule ❸) because those are still marked allocated.
  cpu_cache.Reclaim(now);
  std::vector<BlockRef> cpu_blocks = cpu_cache.AllocTokens(handle.cpu_shape, handle.tokens);
  if (cpu_blocks.empty() && handle.tokens > 0) {
    return false;
  }

  // Rule ❷: the new transfer reads the GPU blocks, so it must wait for the
  // last transfer involving them (e.g. their own swap-in). Each TP rank
  // offloads its shard over its own link; the primary GPU's link models the
  // (symmetric) per-rank timing.
  gpu.kv_out_stream().WaitEvent(handle.last_transfer);
  double bytes = handle.shard_bytes(gpu_cache);
  StreamSim::Span span =
      gpu.EnqueueOptimizedCopy(gpu.kv_out_stream(), now, bytes, CopyDir::kDeviceToHost);
  EventSim done = gpu.kv_out_stream().Record();

  // Shadow-check the copy while the source blocks are still live: it reads
  // the GPU shard and writes the freshly-allocated CPU blocks.
  simsan::NoteTransfer(&gpu_cache.slabs(), handle.blocks, &cpu_cache.slabs(), cpu_blocks,
                       &gpu.kv_out_stream(), now, span.start, span.end, handle.owner);

  // The GPU blocks are released once the copy stops reading them.
  gpu_cache.DeferFree(std::move(handle.blocks), done);

  handle.blocks = std::move(cpu_blocks);
  handle.location = KvLocation::kCpu;
  handle.last_transfer = done;

  stats_.swap_outs++;
  stats_.bytes_out += bytes;
  stats_.control_overhead += control_cost_per_op_;
  (void)span;
  return true;
}

bool TransferEngine::SwapIn(KvHandle& handle, GpuDevice& gpu, UnifiedKvCache& gpu_cache,
                            UnifiedKvCache& cpu_cache, TimePoint now) {
  assert(handle.location == KvLocation::kCpu);

  gpu_cache.Reclaim(now);
  std::vector<BlockRef> gpu_blocks = gpu_cache.AllocTokens(handle.gpu_shape, handle.tokens);
  if (gpu_blocks.empty() && handle.tokens > 0) {
    return false;
  }

  // Rule ❷: wait for the producing transfer (typically the prefill
  // instance's swap-out) before reading the CPU blocks. In the real system
  // this is cudaStreamWaitEvent on an IPC-shared event.
  gpu.kv_in_stream().WaitEvent(handle.last_transfer.IpcHandle());
  double bytes = static_cast<double>(gpu_cache.BlockBytes(handle.gpu_shape)) *
                 static_cast<double>(gpu_blocks.size());
  StreamSim::Span span =
      gpu.EnqueueOptimizedCopy(gpu.kv_in_stream(), now, bytes, CopyDir::kHostToDevice);
  EventSim done = gpu.kv_in_stream().Record();

  // Shadow-check the copy: it reads the CPU blocks and writes the GPU shard.
  simsan::NoteTransfer(&cpu_cache.slabs(), handle.blocks, &gpu_cache.slabs(), gpu_blocks,
                       &gpu.kv_in_stream(), now, span.start, span.end, handle.owner);

  // CPU blocks stay unavailable until the copy stops reading them (rule ❸).
  cpu_cache.DeferFree(std::move(handle.blocks), done);

  handle.blocks = std::move(gpu_blocks);
  handle.location = KvLocation::kGpu;
  handle.gpu = gpu.id();
  handle.last_transfer = done;

  stats_.swap_ins++;
  stats_.bytes_in += bytes;
  stats_.control_overhead += control_cost_per_op_;
  (void)span;
  return true;
}

bool TransferEngine::Extend(KvHandle& handle, UnifiedKvCache& gpu_cache, int64_t extra_tokens) {
  assert(handle.location == KvLocation::kGpu);
  assert(extra_tokens >= 0);
  int64_t have_blocks = static_cast<int64_t>(handle.blocks.size());
  int64_t need_blocks = gpu_cache.BlocksForTokens(handle.tokens + extra_tokens);
  if (need_blocks > have_blocks) {
    std::vector<BlockRef> extra = gpu_cache.AllocTokens(
        handle.gpu_shape, (need_blocks - have_blocks) * gpu_cache.tokens_per_block());
    if (extra.empty()) {
      return false;
    }
    handle.blocks.insert(handle.blocks.end(), extra.begin(), extra.end());
  }
  handle.tokens += extra_tokens;
  return true;
}

void TransferEngine::Release(KvHandle& handle, UnifiedKvCache& gpu_cache,
                             UnifiedKvCache& cpu_cache) {
  switch (handle.location) {
    case KvLocation::kGpu:
      gpu_cache.DeferFree(std::move(handle.blocks), handle.last_transfer);
      break;
    case KvLocation::kCpu:
      cpu_cache.DeferFree(std::move(handle.blocks), handle.last_transfer);
      break;
    case KvLocation::kNone:
      break;
  }
  handle.blocks.clear();
  handle.tokens = 0;
  handle.location = KvLocation::kNone;
}

}  // namespace aegaeon
