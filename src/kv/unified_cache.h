// A unified KV cache region (VRAM or DRAM) serving blocks of several shapes
// via slab allocation (§5.2), plus the *move lists* of §5.3: blocks whose
// logical owner released them but which are still touched by an in-flight
// asynchronous transfer. Move-listed blocks stay allocated (so new
// allocations can never race with an ongoing copy — rule ❸) until a
// reclaim pass observes the transfer's completion event.

#ifndef AEGAEON_KV_UNIFIED_CACHE_H_
#define AEGAEON_KV_UNIFIED_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "hw/cuda_sim.h"
#include "mem/slab_allocator.h"
#include "model/model_spec.h"
#include "sim/time.h"

namespace aegaeon {

class UnifiedKvCache {
 public:
  // `tokens_per_block` mirrors PagedAttention's block granularity.
  UnifiedKvCache(std::string name, uint64_t capacity_bytes, uint64_t slab_bytes,
                 int tokens_per_block = 16);

  // Returns the shape-class id for this KV geometry, registering it on first
  // use. Models with identical geometry share a class.
  ShapeClassId RegisterShape(const KvShape& shape, int dtype_bytes);

  // Number of blocks needed to hold `tokens` tokens.
  int64_t BlocksForTokens(int64_t tokens) const;

  // Bytes of one block of `shape`.
  uint64_t BlockBytes(ShapeClassId shape) const;

  // Allocates blocks for `tokens` tokens of `shape`; empty on failure
  // (all-or-nothing).
  std::vector<BlockRef> AllocTokens(ShapeClassId shape, int64_t tokens);

  // Immediately frees blocks not involved in any transfer.
  void Free(const std::vector<BlockRef>& blocks);

  // Move list: defers the free until `transfer` completes. The blocks remain
  // unavailable to allocations in the meantime.
  void DeferFree(std::vector<BlockRef> blocks, EventSim transfer);

  // Reclaims move-list entries whose transfer completed by `now` (the §5.3
  // daemon thread). Returns the number of blocks reclaimed.
  size_t Reclaim(TimePoint now);

  // Optimistic estimate of allocatable blocks for `shape` right now
  // (free blocks in partial slabs + free slabs' worth).
  int64_t FreeBlocksEstimate(ShapeClassId shape) const;
  int64_t FreeTokensEstimate(ShapeClassId shape) const;

  const SlabAllocator& slabs() const { return slabs_; }
  const std::string& name() const { return name_; }
  int tokens_per_block() const { return tokens_per_block_; }
  size_t move_list_size() const { return move_list_.size(); }
  size_t move_list_peak() const { return move_list_peak_; }
  uint64_t deferred_frees() const { return deferred_frees_; }

 private:
  std::string name_;
  SlabAllocator slabs_;
  int tokens_per_block_;

  // (layers, kv_heads, head_dim, dtype) -> shape class.
  std::map<std::tuple<int, int, int, int>, ShapeClassId> shape_ids_;
  std::vector<uint64_t> block_bytes_;  // indexed by ShapeClassId

  struct MoveEntry {
    std::vector<BlockRef> blocks;
    EventSim transfer;
  };
  std::deque<MoveEntry> move_list_;
  size_t move_list_peak_ = 0;
  uint64_t deferred_frees_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_KV_UNIFIED_CACHE_H_
