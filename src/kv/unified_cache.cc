#include "kv/unified_cache.h"

#include <algorithm>
#include <cassert>

#include "sanitizer/simsan.h"

namespace aegaeon {

UnifiedKvCache::UnifiedKvCache(std::string name, uint64_t capacity_bytes, uint64_t slab_bytes,
                               int tokens_per_block)
    : name_(std::move(name)),
      slabs_(capacity_bytes, slab_bytes),
      tokens_per_block_(tokens_per_block) {
  assert(tokens_per_block_ > 0);
  simsan::NoteAllocatorName(&slabs_, name_);
}

ShapeClassId UnifiedKvCache::RegisterShape(const KvShape& shape, int dtype_bytes) {
  auto key = std::make_tuple(shape.layers, shape.kv_heads, shape.head_dim, dtype_bytes);
  auto it = shape_ids_.find(key);
  if (it != shape_ids_.end()) {
    return it->second;
  }
  ShapeClassId id = static_cast<ShapeClassId>(block_bytes_.size());
  uint64_t bytes =
      static_cast<uint64_t>(shape.BytesPerToken(dtype_bytes)) * static_cast<uint64_t>(tokens_per_block_);
  bool ok = slabs_.RegisterShape(id, bytes);
  assert(ok && "KV block larger than a slab; increase the slab size");
  (void)ok;
  block_bytes_.push_back(bytes);
  shape_ids_.emplace(key, id);
  return id;
}

int64_t UnifiedKvCache::BlocksForTokens(int64_t tokens) const {
  return (tokens + tokens_per_block_ - 1) / tokens_per_block_;
}

uint64_t UnifiedKvCache::BlockBytes(ShapeClassId shape) const { return block_bytes_.at(shape); }

std::vector<BlockRef> UnifiedKvCache::AllocTokens(ShapeClassId shape, int64_t tokens) {
  int64_t blocks = BlocksForTokens(tokens);
  if (blocks == 0) {
    return {};
  }
  return slabs_.Alloc(shape, static_cast<size_t>(blocks));
}

void UnifiedKvCache::Free(const std::vector<BlockRef>& blocks) { slabs_.Free(blocks); }

void UnifiedKvCache::DeferFree(std::vector<BlockRef> blocks, EventSim transfer) {
  if (blocks.empty()) {
    return;
  }
  deferred_frees_ += blocks.size();
  simsan::NoteDeferFree(&slabs_, blocks, transfer.complete_at());
  move_list_.push_back(MoveEntry{std::move(blocks), transfer});
  move_list_peak_ = std::max(move_list_peak_, move_list_.size());
}

size_t UnifiedKvCache::Reclaim(TimePoint now) {
  // Advance the shadow clock first so the frees below are judged against
  // `now`, not against whatever event last moved the watermark.
  simsan::NoteReclaimPass(&slabs_, now);
  size_t reclaimed = 0;
  // Entries complete roughly in FIFO order, but transfers on different
  // streams may finish out of order, so scan the whole list.
  for (auto it = move_list_.begin(); it != move_list_.end();) {
    if (it->transfer.Query(now)) {
      slabs_.Free(it->blocks);
      reclaimed += it->blocks.size();
      it = move_list_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

int64_t UnifiedKvCache::FreeBlocksEstimate(ShapeClassId shape) const {
  uint64_t block = block_bytes_.at(shape);
  uint64_t per_slab = slabs_.slab_bytes() / block;
  uint64_t held = slabs_.held_bytes(shape);
  uint64_t used = slabs_.used_bytes(shape);
  uint64_t partial_free = (held - used) / block;
  return static_cast<int64_t>(partial_free + slabs_.free_slabs() * per_slab);
}

int64_t UnifiedKvCache::FreeTokensEstimate(ShapeClassId shape) const {
  return FreeBlocksEstimate(shape) * tokens_per_block_;
}

}  // namespace aegaeon
