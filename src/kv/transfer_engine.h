// KV-cache movement between GPUs and the unified CPU cache, with the
// fine-grained, event-based synchronization of §5.3.
//
// Data-dependency rules enforced here (Figure 10):
//   ❶ Inference requires the KV cache to be on the GPU: SwapIn returns the
//     completion event, and decoding admission queries it.
//   ❷ A new transfer requires its source blocks to have finished their last
//     transfer: each handle carries its last transfer event, and the next
//     transfer's stream waits on it (cudaStreamWaitEvent).
//   ❸ A new transfer requires its target blocks to be free of past
//     transfers: releases are routed through the caches' move lists, so
//     blocks cannot be re-allocated while a copy still touches them.

#ifndef AEGAEON_KV_TRANSFER_ENGINE_H_
#define AEGAEON_KV_TRANSFER_ENGINE_H_

#include <cstdint>
#include <vector>

#include "hw/cuda_sim.h"
#include "hw/gpu_device.h"
#include "kv/unified_cache.h"
#include "sim/time.h"

namespace aegaeon {

// Where a request's KV cache currently lives.
enum class KvLocation {
  kNone,  // not yet materialized (pre-prefill)
  kGpu,
  kCpu,
};

// Per-request KV cache state, owned by the serving layer. GPU-side blocks
// are per-rank *shards* (kv_heads / tp per GPU), while CPU-side blocks hold
// the full KV; the two therefore carry distinct shape classes.
struct KvHandle {
  ShapeClassId gpu_shape = 0;
  ShapeClassId cpu_shape = 0;
  int64_t tokens = 0;
  KvLocation location = KvLocation::kNone;
  GpuId gpu = 0;  // valid when location == kGpu
  // Physical node whose memory currently holds the blocks (multi-node
  // deployments migrate KV across the fabric when locality misses).
  int node = 0;
  // Owning request id (for diagnostics / SimSan ownership checks); -1 when
  // the handle is not bound to a request yet.
  int64_t owner = -1;
  std::vector<BlockRef> blocks;
  // Completion of the last transfer that wrote/read these blocks (rule ❷).
  EventSim last_transfer;

  ShapeClassId shape_in(const UnifiedKvCache& cache, bool cache_is_cpu) const {
    (void)cache;
    return cache_is_cpu ? cpu_shape : gpu_shape;
  }

  // Bytes moved across one GPU's PCIe link (its shard).
  double shard_bytes(const UnifiedKvCache& gpu_cache) const {
    return static_cast<double>(gpu_cache.BlockBytes(gpu_shape)) *
           static_cast<double>(gpu_cache.BlocksForTokens(tokens));
  }
};

class TransferEngine {
 public:
  struct Stats {
    uint64_t swap_outs = 0;
    uint64_t swap_ins = 0;
    double bytes_out = 0.0;
    double bytes_in = 0.0;
    // Control-plane time: index tracking and event manipulation (Fig. 14
    // "Control Overhead").
    Duration control_overhead = 0.0;

    // Pools another engine's counters (fleet aggregation across cells).
    Stats& operator+=(const Stats& other) {
      swap_outs += other.swap_outs;
      swap_ins += other.swap_ins;
      bytes_out += other.bytes_out;
      bytes_in += other.bytes_in;
      control_overhead += other.control_overhead;
      return *this;
    }
  };

  // Lower bound on the latency of migrating any KV handle across the
  // inter-node fabric: even a single block takes its serialization time
  // plus the per-op control cost. The sharded fleet uses this as the
  // KV-migration channel latency in its conservative lookahead — no
  // cross-cell migration can take effect sooner, so shards may safely run
  // ahead by this much. `block_bytes` is the smallest registered KV block;
  // `bandwidth` the fabric rate in bytes/sec.
  static Duration MinMigrationLatency(double block_bytes, double bandwidth,
                                      Duration control_cost_per_op) {
    if (bandwidth <= 0.0) {
      return kTimeNever;
    }
    return block_bytes / bandwidth + control_cost_per_op;
  }

  // `control_cost_per_op`: modeled CPU cost of updating unified-cache
  // indices and creating/sharing events for one transfer.
  explicit TransferEngine(Duration control_cost_per_op = 0.0005)
      : control_cost_per_op_(control_cost_per_op) {}

  // Offloads `handle` (resident on `gpu`'s cache `gpu_cache`) to `cpu_cache`.
  // Returns false if the CPU cache is out of blocks (caller must back off).
  // On success the handle points at CPU blocks and carries the D2H event.
  bool SwapOut(KvHandle& handle, GpuDevice& gpu, UnifiedKvCache& gpu_cache,
               UnifiedKvCache& cpu_cache, TimePoint now);

  // Brings `handle` (resident in `cpu_cache`) into `gpu`'s `gpu_cache`.
  // Honors rule ❷ via the handle's last transfer event. Returns false if
  // the GPU cache is out of blocks.
  bool SwapIn(KvHandle& handle, GpuDevice& gpu, UnifiedKvCache& gpu_cache,
              UnifiedKvCache& cpu_cache, TimePoint now);

  // Grows a GPU-resident handle by `extra_tokens` (decode appends KV). May
  // allocate additional blocks. Returns false on exhaustion.
  bool Extend(KvHandle& handle, UnifiedKvCache& gpu_cache, int64_t extra_tokens);

  // Releases the handle's blocks wherever they live, respecting rule ❸.
  void Release(KvHandle& handle, UnifiedKvCache& gpu_cache, UnifiedKvCache& cpu_cache);

  const Stats& stats() const { return stats_; }

 private:
  Duration control_cost_per_op_;
  Stats stats_;
};

}  // namespace aegaeon

#endif  // AEGAEON_KV_TRANSFER_ENGINE_H_
