#include "sim/random.h"

#include <cassert>
#include <cmath>

namespace aegaeon {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  // -log(1 - U) avoids log(0) since NextDouble() < 1.
  return -std::log1p(-NextDouble()) / rate;
}

double Rng::CachedNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * CachedNormal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  // LINT-ALLOW(float-equality): exact-zero sentinel — a zero-rate Poisson
  // stream must emit exactly zero events, not "approximately zero"
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // workload-aggregation use cases in this repo.
    double x = Normal(mean, std::sqrt(mean));
    return x < 0.0 ? 0 : static_cast<uint64_t>(x + 0.5);
  }
  // Knuth's method.
  double limit = std::exp(-mean);
  double product = NextDouble();
  uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    total += pmf_[k];
  }
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    pmf_[k] /= total;
    acc += pmf_[k];
    cdf_[k] = acc;
  }
  cdf_.back() = 1.0;  // guard against accumulated FP error
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PoissonProcess::PoissonProcess(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  assert(rate > 0.0);
}

double PoissonProcess::NextArrival() {
  last_ += rng_.Exponential(rate_);
  return last_;
}

std::vector<double> PoissonProcess::ArrivalsUntil(double horizon) {
  std::vector<double> arrivals;
  for (;;) {
    double t = NextArrival();
    if (t >= horizon) {
      break;
    }
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace aegaeon
