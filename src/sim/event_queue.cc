#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sanitizer/simsan.h"

namespace aegaeon {

EventQueue::~EventQueue() { simsan::NoteQueueDestroyed(this); }

namespace {

constexpr uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id); }
constexpr uint32_t GenerationOf(EventId id) { return static_cast<uint32_t>(id >> 32); }

constexpr EventId MakeId(uint32_t generation, uint32_t slot) {
  return (static_cast<EventId>(generation) << 32) | slot;
}

// Compaction threshold: don't bother rebuilding tiny heaps.
constexpr size_t kMinCompactHeap = 64;

}  // namespace

uint32_t EventQueue::AcquireSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].state = SlotState::kLive;
    return slot;
  }
  slots_.emplace_back();
  slots_.back().state = SlotState::kLive;
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  // Bumping the generation on release invalidates every outstanding EventId
  // that still points at this slot.
  slots_[slot].cb = Callback();
  ++slots_[slot].generation;
  slots_[slot].state = SlotState::kFree;
  free_slots_.push_back(slot);
}

EventId EventQueue::Push(TimePoint when, Callback cb) {
  uint32_t slot = AcquireSlot();
  slots_[slot].cb = std::move(cb);
  EventId id = MakeId(slots_[slot].generation, slot);
  heap_.push_back(Entry{when, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  // A fired or already-cancelled event either bumped the generation or left
  // the slot in a non-live state; both reject here.
  if (s.generation != GenerationOf(id) || s.state != SlotState::kLive) {
    return false;
  }
  s.state = SlotState::kCancelled;
  --live_count_;
  ++tombstones_;
  if (heap_.size() >= kMinCompactHeap && tombstones_ * 2 > heap_.size()) {
    Compact();
  }
  return true;
}

std::vector<EventQueue::Pending> EventQueue::Drain() {
  // Order by (when, seq) — the exact order PopAndRun would have fired them.
  std::sort(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  });
  std::vector<Pending> out;
  out.reserve(live_count_);
  for (const Entry& entry : heap_) {
    Slot& slot = slots_[entry.slot];
    if (slot.state == SlotState::kLive) {
      out.push_back(Pending{entry.when, std::move(slot.cb)});
    }
    // Releasing bumps the generation, so ids issued before the drain are
    // stale even once the slot is handed out again.
    ReleaseSlot(entry.slot);
  }
  heap_.clear();
  live_count_ = 0;
  tombstones_ = 0;
  return out;
}

void EventQueue::Merge(std::vector<Pending> events) { Merge(events.data(), events.size()); }

void EventQueue::Merge(Pending* events, size_t count) {
  if (count == 0) {
    return;
  }
  // Below this, per-event sifting beats a full rebuild.
  const bool bulk = count * 2 >= heap_.size() + count;
  heap_.reserve(heap_.size() + count);
  for (size_t i = 0; i < count; ++i) {
    Pending& event = events[i];
    uint32_t slot = AcquireSlot();
    slots_[slot].cb = std::move(event.cb);
    heap_.push_back(Entry{event.when, next_seq_++, slot});
    if (!bulk) {
      std::push_heap(heap_.begin(), heap_.end(), Later);
    }
    ++live_count_;
  }
  if (bulk) {
    std::make_heap(heap_.begin(), heap_.end(), Later);
  }
}

void EventQueue::Compact() {
  size_t kept = 0;
  for (const Entry& entry : heap_) {
    if (slots_[entry.slot].state == SlotState::kCancelled) {
      ReleaseSlot(entry.slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), Later);
  tombstones_ = 0;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && slots_[heap_.front().slot].state == SlotState::kCancelled) {
    ReleaseSlot(heap_.front().slot);
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
    --tombstones_;
  }
}

TimePoint EventQueue::NextTime() {
  SkipCancelled();
  if (heap_.empty()) {
    return kTimeNever;
  }
  return heap_.front().when;
}

TimePoint EventQueue::PopAndRun() {
  SkipCancelled();
  assert(!heap_.empty() && "PopAndRun on an empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Entry entry = heap_.back();
  heap_.pop_back();
  // Move the callback out and release before running it, so the callback can
  // immediately reuse the slot; the generation bump keeps the fired event's
  // id invalid for Cancel().
  Callback cb = std::move(slots_[entry.slot].cb);
  ReleaseSlot(entry.slot);
  --live_count_;
  simsan::NoteDispatch(this, entry.when);
  cb();
  return entry.when;
}

}  // namespace aegaeon
