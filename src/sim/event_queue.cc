#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aegaeon {

EventId EventQueue::Push(TimePoint when, Callback cb) {
  EventId id = next_seq_++;
  heap_.push_back(Entry{when, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (id >= next_seq_) {
    return false;
  }
  // Already-fired events are not tracked individually; inserting the id of a
  // fired event is harmless (it will simply never be encountered again), but
  // we refuse double-cancels to keep live_count_ consistent.
  if (!cancelled_.insert(id).second) {
    return false;
  }
  if (live_count_ > 0) {
    --live_count_;
  }
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().seq);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
  }
}

TimePoint EventQueue::NextTime() {
  SkipCancelled();
  if (heap_.empty()) {
    return kTimeNever;
  }
  return heap_.front().when;
}

TimePoint EventQueue::PopAndRun() {
  SkipCancelled();
  assert(!heap_.empty() && "PopAndRun on an empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  --live_count_;
  entry.cb();
  return entry.when;
}

}  // namespace aegaeon
