// A stable priority queue of timestamped events.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking via a monotonically increasing sequence
// number), which makes simulations fully deterministic.

#ifndef AEGAEON_SIM_EVENT_QUEUE_H_
#define AEGAEON_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace aegaeon {

// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  // Non-copyable: callbacks frequently capture `this` of other objects.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to fire at absolute time `when`. Returns a handle that can
  // be passed to Cancel().
  EventId Push(TimePoint when, Callback cb);

  // Marks the event as cancelled. Cancelled events are skipped when they
  // reach the front of the queue. Returns false if the event already fired
  // or was already cancelled.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest live event; kTimeNever when empty.
  TimePoint NextTime();

  // Pops and runs the earliest live event. Returns its timestamp.
  // Precondition: !empty().
  TimePoint PopAndRun();

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;  // doubles as the EventId
    Callback cb;
  };

  // Min-heap comparison on (when, seq).
  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }

  // Drops cancelled entries from the front of the heap.
  void SkipCancelled();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_EVENT_QUEUE_H_
