// A stable priority queue of timestamped events.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking via a monotonically increasing sequence
// number), which makes simulations fully deterministic.
//
// Hot-path design: callbacks are EventCallback (small-buffer-optimized,
// move-only — no heap allocation for typical captures), and cancellation is
// an O(1) generation-checked slot-map instead of a hash set. Callbacks live
// in the slot-map, not in the heap: heap entries are 24-byte PODs, so the
// O(log n) sift on every push/pop moves keys only, and a callback is moved
// exactly twice in its lifetime (into its slot, out to fire). A cancelled
// event leaves a tombstone in the heap that is reclaimed either when it
// reaches the front or by an amortized compaction pass once tombstones
// outnumber live entries, so memory stays bounded by the live event count
// regardless of how many schedule/cancel cycles a run performs.

#ifndef AEGAEON_SIM_EVENT_QUEUE_H_
#define AEGAEON_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace aegaeon {

// Opaque handle identifying a scheduled event; usable for cancellation.
// Encodes (generation << 32 | slot) so stale handles are rejected in O(1).
using EventId = uint64_t;

class EventQueue {
 public:
  using Callback = EventCallback;

  EventQueue() = default;
  ~EventQueue();

  // Non-copyable: callbacks frequently capture `this` of other objects.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to fire at absolute time `when`. Returns a handle that can
  // be passed to Cancel().
  EventId Push(TimePoint when, Callback cb);

  // Marks the event as cancelled. Cancelled events are skipped when they
  // reach the front of the queue. Returns false if the event already fired
  // or was already cancelled.
  bool Cancel(EventId id);

  // A pending event extracted by Drain() or inserted by Merge().
  struct Pending {
    TimePoint when = 0.0;
    Callback cb;
  };

  // --- Epoch boundaries (sharded simulation) ----------------------------
  // Extracts every live event in (when, seq) order and empties the queue.
  // Tombstones are discarded, every slot is released, and every generation
  // is bumped, so EventIds issued before the drain are rejected by Cancel()
  // even after their slots are reused — the invariant the sharded
  // simulator's epoch rollovers rely on when moving events between queues.
  std::vector<Pending> Drain();

  // Bulk-schedules `events` in input order (FIFO tie-break preserved for
  // equal timestamps). Equivalent to Push() per event but amortizes the
  // heap maintenance: once the batch rivals the live heap it appends
  // everything and rebuilds once instead of sifting per event. Safe at
  // epoch boundaries: tombstones pending compaction are untouched and
  // outstanding EventIds stay valid.
  void Merge(std::vector<Pending> events);

  // Range form: moves the callbacks out of [events, events + count) but
  // leaves the storage with the caller, so a reused scratch vector keeps
  // its capacity across epochs — the sharded fleet's zero-steady-state-
  // allocation injection path.
  void Merge(Pending* events, size_t count);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest live event; kTimeNever when empty.
  TimePoint NextTime();

  // Pops and runs the earliest live event. Returns its timestamp.
  // Precondition: !empty().
  TimePoint PopAndRun();

  // --- Introspection (tests and benches) --------------------------------
  // Heap entries, including tombstones awaiting reclamation.
  size_t heap_size() const { return heap_.size(); }
  // Total cancellation slots ever allocated (bounded by peak live events).
  size_t slot_capacity() const { return slots_.size(); }

 private:
  // POD heap key; the callback stays in slots_ so sifts don't move it.
  struct Entry {
    TimePoint when;
    uint64_t seq;   // FIFO tie-break for equal timestamps
    uint32_t slot;  // index into slots_
  };

  enum class SlotState : uint8_t { kFree, kLive, kCancelled };

  struct Slot {
    Callback cb;
    uint32_t generation = 0;
    SlotState state = SlotState::kFree;
  };

  // Min-heap comparison on (when, seq).
  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }

  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t slot);

  // Drops cancelled entries from the front of the heap.
  void SkipCancelled();

  // Rebuilds the heap without tombstones once they dominate; amortized O(1)
  // per cancel, keeps heap_.size() <= 2 * live_count_ on long horizons.
  void Compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_EVENT_QUEUE_H_
