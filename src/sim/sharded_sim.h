// ShardedSim: a conservative-time parallel executor for sharded simulations.
//
// The fleet (src/core/fleet.h) partitions a large GPU pool into cells and
// groups the cells into K shards. Each shard owns its own event queues and
// advances independently — but only up to a horizon no shard may cross, the
// *conservative lookahead*: the minimum latency of any channel through which
// one shard can affect another (request dispatch, KV migration, autoscale
// decisions). Anything a shard does before the horizon cannot be observed by
// another shard until at least one lookahead later, so running the shards in
// parallel within an epoch cannot reorder observable events.
//
// ShardedSim is the executor for that protocol. Run() alternates two stages:
//
//   1. a serial *barrier stage* (`plan`) that runs with every shard quiescent
//      at the barrier time — it delivers cross-shard mailboxes, makes
//      dispatch decisions, and picks the next horizon (possibly skipping
//      over lookahead slots in which nothing observable happens);
//   2. a parallel *advance stage* (`advance`) that runs every shard with
//      runnable work up to that horizon on a gang of persistent workers
//      (ShardGang); shards the serial `has_work` probe marks idle are not
//      submitted at all.
//
// Determinism: the barrier stage is serial, and the advance stage gives each
// shard exclusive ownership of its state, so host scheduling decides only
// *when* a shard's epoch executes, never what it computes. The idle-shard
// probe runs serially between epochs and is a pure function of shard state,
// so it too is identical for every worker count. Results are therefore
// bit-identical for any shard count and any worker count (see DESIGN.md §8
// for the full argument).
//
// Worker scheduling: the shards are fixed slices of a ShardGang — persistent
// threads parked at a sense-reversing barrier, with the coordinating thread
// participating as worker 0. With fewer workers than shards each worker
// serves several shards per round; with one worker (or one shard) every
// epoch runs inline on the caller with no synchronization at all.

#ifndef AEGAEON_SIM_SHARDED_SIM_H_
#define AEGAEON_SIM_SHARDED_SIM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/thread_pool.h"
#include "sim/time.h"

namespace aegaeon {

// Latencies of the channels through which one shard can affect another.
// kTimeNever marks a channel disabled (no such interaction in this
// configuration). The conservative lookahead is the minimum enabled latency;
// if every channel is disabled the shards never interact and a single
// unbounded epoch is exact.
struct CrossShardChannels {
  Duration dispatch = kTimeNever;      // fleet dispatcher -> cell injection
  Duration kv_migration = kTimeNever;  // cross-cell KV transfer (reserved)
  Duration autoscale = kTimeNever;     // fleet-level scaling loop (reserved)
};

// Minimum enabled channel latency; kTimeNever when all channels are
// disabled. A zero-latency enabled channel is a configuration error (the
// conservative protocol would make no progress) and is clamped to the
// smallest positive epoch the caller provides via `floor`.
Duration ConservativeLookahead(const CrossShardChannels& channels, Duration floor = 1e-6);

class ShardedSim {
 public:
  // What the barrier stage decided for the next epoch.
  struct EpochPlan {
    // Advance horizon; kTimeNever requests the final drain epoch.
    TimePoint horizon = kTimeNever;
    // Lookahead grid slots jumped without a barrier to reach this horizon
    // (dead slots snapped over plus extra slots batched into the epoch).
    // Accumulated into epochs_skipped().
    uint64_t slots_skipped = 0;
  };

  // `threads` <= 0 selects min(shards, ParallelSweep::DefaultThreads()).
  // Callers running fleets inside an outer ParallelSweep should size the
  // outer pool with ParallelSweep::ThreadsForNested(shards) and pass
  // `shards` here, splitting cores between inter-run and intra-run
  // parallelism instead of oversubscribing.
  explicit ShardedSim(int shards, int threads = 0);

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int shards() const { return shards_; }
  int thread_count() const { return gang_.thread_count(); }

  // Epochs executed (barrier + advance rounds) across all Run() calls.
  uint64_t epochs() const { return epochs_; }
  // Lookahead slots skipped without a barrier across all Run() calls.
  uint64_t epochs_skipped() const { return epochs_skipped_; }

  // Host-side cost per shard: events processed by that shard's advance
  // stages, the wall-clock time they took (measured inside the shard slice,
  // so queueing delay is excluded when shards outnumber workers), epochs
  // the shard sat out (idle_shard_skips), and barrier wait (per *worker*,
  // recorded on the shard sharing the worker's index; epochs_skipped is
  // global and recorded on shard 0 — see SimPerfCounters).
  const std::vector<SimPerfCounters>& shard_perf() const { return shard_perf_; }

  // Runs `fn(shard)` for every shard in parallel and blocks until all
  // complete. One-shot phases (construction, teardown audits) use this
  // directly; Run() uses the same gang for every advance stage.
  void Phase(const std::function<void(int)>& fn);

  // Executes the epoch loop. `plan` is the serial barrier stage: it runs
  // with all shards quiescent and returns the next epoch's horizon (plus
  // the slots it skipped), kTimeNever requesting a final drain epoch
  // (advance every shard until its queue is empty) after which the loop
  // ends. `has_work`, when non-null, is probed serially after each plan:
  // shards for which it returns false are counted in idle_shard_skips and
  // not run this epoch — it must answer "could this shard process any event
  // at or before this horizon?". `advance` runs on the gang with exclusive
  // ownership of its shard; it must process events only up to the given
  // horizon and return how many it processed. Returns the number of epochs
  // executed by this call.
  uint64_t Run(const std::function<EpochPlan()>& plan,
               const std::function<bool(int, TimePoint)>& has_work,
               const std::function<uint64_t(int, TimePoint)>& advance);

 private:
  int shards_;
  ShardGang gang_;
  uint64_t epochs_ = 0;
  uint64_t epochs_skipped_ = 0;
  std::vector<SimPerfCounters> shard_perf_;
  std::vector<uint8_t> active_;          // reused per-epoch shard mask
  std::vector<double> last_gang_wait_;   // worker wait snapshot for deltas
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_SHARDED_SIM_H_
