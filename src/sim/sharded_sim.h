// ShardedSim: a conservative-time parallel executor for sharded simulations.
//
// The fleet (src/core/fleet.h) partitions a large GPU pool into cells and
// groups the cells into K shards. Each shard owns its own event queues and
// advances independently — but only up to a horizon no shard may cross, the
// *conservative lookahead*: the minimum latency of any channel through which
// one shard can affect another (request dispatch, KV migration, autoscale
// decisions). Anything a shard does before the horizon cannot be observed by
// another shard until at least one lookahead later, so running the shards in
// parallel within an epoch cannot reorder observable events.
//
// ShardedSim is the executor for that protocol. Run() alternates two stages:
//
//   1. a serial *barrier stage* (`plan`) that runs with every shard quiescent
//      at the barrier time — it delivers cross-shard mailboxes, makes
//      dispatch decisions, and picks the next horizon;
//   2. a parallel *advance stage* (`advance`) that runs every shard on the
//      thread pool up to that horizon.
//
// Determinism: the barrier stage is serial, and the advance stage gives each
// shard exclusive ownership of its state, so host scheduling decides only
// *when* a shard's epoch executes, never what it computes. Results are
// therefore bit-identical for any shard count and any worker count (see
// DESIGN.md §8 for the full argument).
//
// Worker scheduling: each epoch submits one task per shard and waits for all
// of them. Submitting tasks rather than pinning shards to persistent barrier-
// synced threads means the protocol is safe at any pool size — with fewer
// workers than shards the tasks simply queue, with no risk of a barrier
// deadlock.

#ifndef AEGAEON_SIM_SHARDED_SIM_H_
#define AEGAEON_SIM_SHARDED_SIM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/thread_pool.h"
#include "sim/time.h"

namespace aegaeon {

// Latencies of the channels through which one shard can affect another.
// kTimeNever marks a channel disabled (no such interaction in this
// configuration). The conservative lookahead is the minimum enabled latency;
// if every channel is disabled the shards never interact and a single
// unbounded epoch is exact.
struct CrossShardChannels {
  Duration dispatch = kTimeNever;      // fleet dispatcher -> cell injection
  Duration kv_migration = kTimeNever;  // cross-cell KV transfer (reserved)
  Duration autoscale = kTimeNever;     // fleet-level scaling loop (reserved)
};

// Minimum enabled channel latency; kTimeNever when all channels are
// disabled. A zero-latency enabled channel is a configuration error (the
// conservative protocol would make no progress) and is clamped to the
// smallest positive epoch the caller provides via `floor`.
Duration ConservativeLookahead(const CrossShardChannels& channels, Duration floor = 1e-6);

class ShardedSim {
 public:
  // `threads` <= 0 selects min(shards, ParallelSweep::DefaultThreads()).
  // Callers running fleets inside an outer ParallelSweep should size the
  // outer pool with ParallelSweep::ThreadsForNested(shards) and pass
  // `shards` here, splitting cores between inter-run and intra-run
  // parallelism instead of oversubscribing.
  explicit ShardedSim(int shards, int threads = 0);

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  int shards() const { return shards_; }
  int thread_count() const { return pool_.size(); }

  // Epochs executed across all Run() calls so far.
  uint64_t epochs() const { return epochs_; }

  // Host-side cost per shard: events processed by that shard's advance
  // stages and the wall-clock time they took. Wall time is measured inside
  // the shard task, so it excludes queueing delay when shards outnumber
  // workers.
  const std::vector<SimPerfCounters>& shard_perf() const { return shard_perf_; }

  // Runs `fn(shard)` for every shard in parallel and blocks until all
  // complete. One-shot phases (construction, teardown audits) use this
  // directly; Run() uses it for every advance stage.
  void Phase(const std::function<void(int)>& fn);

  // Executes the epoch loop. `plan` is the serial barrier stage: it runs
  // with all shards quiescent and returns the next epoch's horizon, or
  // kTimeNever to request a final drain epoch (advance every shard until
  // its queue is empty) after which the loop ends. `advance` runs on the
  // pool with exclusive ownership of its shard; it must process events only
  // up to the given horizon and return how many it processed. Returns the
  // number of epochs executed by this call.
  uint64_t Run(const std::function<TimePoint()>& plan,
               const std::function<uint64_t(int, TimePoint)>& advance);

 private:
  int shards_;
  ThreadPool pool_;
  uint64_t epochs_ = 0;
  std::vector<SimPerfCounters> shard_perf_;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_SHARDED_SIM_H_
