// Deterministic per-epoch mailboxes for the sharded simulator.
//
// Under the conservative time-sync protocol (see sharded_sim.h), cross-shard
// events produced during an epoch are not delivered directly — they are
// posted here and handed over at the next barrier, where the serial stage
// collects every pending event in (time, source shard, sequence) order. The
// three-part key makes delivery order a pure function of the simulation
// content: `time` orders causally, `source shard` breaks cross-shard ties
// the same way no matter which host thread produced the event first, and
// `seq` (per-source, assigned in post order) preserves each producer's own
// FIFO order. Because shards only post during the parallel phase and only
// collect during the serial barrier stage, the mailboxes need no locking.
//
// Allocation: each source's box draws from its own BumpArena
// (mem/bump_allocator.h) — per-source, so concurrent posters never share an
// arena — and CollectInto() drains into a caller-reused vector. Boxes and
// scratch keep their peak capacity, so after warm-up an epoch cycle
// performs no heap allocation.

#ifndef AEGAEON_SIM_MAILBOX_H_
#define AEGAEON_SIM_MAILBOX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/bump_allocator.h"
#include "sim/time.h"

namespace aegaeon {

template <typename Payload>
struct CrossShardEvent {
  TimePoint time = 0.0;
  uint32_t source_shard = 0;  // posting shard; fleet-level stages use Dispatcher()
  uint64_t seq = 0;           // per-source post order
  int target = 0;             // receiving shard (or cell, at the fleet level)
  Payload payload{};
};

template <typename Payload>
class EpochMailboxes {
 public:
  using Event = CrossShardEvent<Payload>;
  using Box = std::vector<Event, ArenaAllocator<Event>>;

  // One mailbox per shard plus one for the barrier-stage dispatcher, which
  // acts as its own (serial) source of cross-shard events.
  explicit EpochMailboxes(int shards) : next_seq_(static_cast<size_t>(shards) + 1, 0) {
    const size_t sources = static_cast<size_t>(shards) + 1;
    arenas_.reserve(sources);
    pending_.reserve(sources);
    for (size_t i = 0; i < sources; ++i) {
      arenas_.push_back(std::make_unique<BumpArena>());
      pending_.emplace_back(ArenaAllocator<Event>(arenas_.back().get()));
    }
  }

  // The source id of the serial barrier stage.
  uint32_t Dispatcher() const { return static_cast<uint32_t>(pending_.size() - 1); }

  // Posts an event from `source_shard` (or Dispatcher()) to `target`.
  // Callable only from the source's own execution context: the parallel
  // phase for shards, the barrier stage for the dispatcher.
  void Post(uint32_t source_shard, int target, TimePoint time, Payload payload) {
    Event event;
    event.time = time;
    event.source_shard = source_shard;
    event.seq = next_seq_[source_shard]++;
    event.target = target;
    event.payload = std::move(payload);
    pending_[source_shard].push_back(std::move(event));
  }

  // Drains every pending event into `out` (cleared first) in (time, source
  // shard, seq) order. Barrier stage only: all shards must be quiescent.
  // `out` keeps its capacity, so a reused scratch vector makes collection
  // allocation-free in steady state.
  template <typename OutAlloc>
  void CollectInto(std::vector<Event, OutAlloc>& out) {
    out.clear();
    for (Box& box : pending_) {
      out.insert(out.end(), std::make_move_iterator(box.begin()),
                 std::make_move_iterator(box.end()));
      box.clear();
    }
    std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) {
        return a.time < b.time;
      }
      if (a.source_shard != b.source_shard) {
        return a.source_shard < b.source_shard;
      }
      return a.seq < b.seq;
    });
  }

  // Convenience form returning a fresh vector (tests; not the hot path).
  std::vector<Event> Collect() {
    std::vector<Event> all;
    CollectInto(all);
    return all;
  }

  bool empty() const {
    for (const Box& box : pending_) {
      if (!box.empty()) {
        return false;
      }
    }
    return true;
  }

  // Arena behind `source`'s box (introspection for tests/benches).
  const BumpArena& arena(uint32_t source) const { return *arenas_[source]; }

 private:
  // Box storage grows from per-source arenas; outgrown buffers are retained
  // by the arena and the boxes keep their peak capacity, so steady-state
  // posting never reaches malloc.
  std::vector<std::unique_ptr<BumpArena>> arenas_;
  std::vector<Box> pending_;  // indexed by source
  std::vector<uint64_t> next_seq_;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_MAILBOX_H_
