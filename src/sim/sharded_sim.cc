#include "sim/sharded_sim.h"

#include <algorithm>
#include <chrono>

#include "sim/parallel_sweep.h"

namespace aegaeon {

Duration ConservativeLookahead(const CrossShardChannels& channels, Duration floor) {
  Duration lookahead = std::min({channels.dispatch, channels.kv_migration, channels.autoscale});
  if (lookahead >= kTimeNever) {
    return kTimeNever;
  }
  return std::max(lookahead, floor);
}

ShardedSim::ShardedSim(int shards, int threads)
    : shards_(std::max(shards, 1)),
      // Default gang width: never more workers than shards (the extras would
      // only idle at every barrier), never more than the sweep-wide default
      // (so a fleet nested inside an outer ParallelSweep — sized with
      // ThreadsForNested — does not oversubscribe the machine).
      gang_(shards_, threads > 0 ? threads : std::min(shards_, ParallelSweep::DefaultThreads())),
      shard_perf_(static_cast<size_t>(shards_)),
      active_(static_cast<size_t>(shards_), 1),
      last_gang_wait_(static_cast<size_t>(gang_.thread_count()), 0.0) {}

void ShardedSim::Phase(const std::function<void(int)>& fn) { gang_.Run(fn); }

uint64_t ShardedSim::Run(const std::function<EpochPlan()>& plan,
                         const std::function<bool(int, TimePoint)>& has_work,
                         const std::function<uint64_t(int, TimePoint)>& advance) {
  uint64_t ran = 0;
  TimePoint horizon = 0.0;
  const auto epoch = [this, &advance, &horizon](int shard) {
    // Host cost of each shard's epoch advance for the per-shard
    // SimPerfCounters; epoch horizons come from the serial barrier stage,
    // never from this clock.
    // LINT-ALLOW(wall-clock): host-side per-shard SimPerf timing only
    const auto start = std::chrono::steady_clock::now();
    const uint64_t processed = advance(shard, horizon);
    SimPerfCounters& perf = shard_perf_[static_cast<size_t>(shard)];
    perf.events_processed += processed;
    perf.wall_seconds +=
        // LINT-ALLOW(wall-clock): host-side SimPerf timing only
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  for (;;) {
    const EpochPlan next = plan();
    horizon = next.horizon;
    epochs_skipped_ += next.slots_skipped;
    // Serial idle probe: identical for every worker count because it runs
    // with all shards quiescent and reads only shard-owned state.
    bool any_active = false;
    if (has_work) {
      for (int shard = 0; shard < shards_; ++shard) {
        const bool active = has_work(shard, horizon);
        active_[static_cast<size_t>(shard)] = active ? 1 : 0;
        if (active) {
          any_active = true;
        } else {
          ++shard_perf_[static_cast<size_t>(shard)].idle_shard_skips;
        }
      }
    } else {
      std::fill(active_.begin(), active_.end(), 1);
      any_active = true;
    }
    if (any_active) {
      gang_.Run(epoch, &active_);
    }
    ++ran;
    ++epochs_;
    if (horizon >= kTimeNever) {
      break;  // final drain epoch: every shard ran to empty
    }
  }
  // Fold the gang's barrier-wait deltas into the perf counters. Waiting is
  // a per-worker quantity; it is recorded on the shard sharing the worker's
  // index (worker count <= shard count always holds). The global skip count
  // goes to shard 0 so summing shard entries counts it exactly once.
  for (int w = 0; w < gang_.thread_count(); ++w) {
    const double total = gang_.worker_wait_seconds(w);
    shard_perf_[static_cast<size_t>(w)].barrier_wait_seconds +=
        total - last_gang_wait_[static_cast<size_t>(w)];
    last_gang_wait_[static_cast<size_t>(w)] = total;
  }
  shard_perf_[0].epochs_skipped = epochs_skipped_;
  return ran;
}

}  // namespace aegaeon
