#include "sim/sharded_sim.h"

#include <algorithm>
#include <chrono>

#include "sim/parallel_sweep.h"

namespace aegaeon {

Duration ConservativeLookahead(const CrossShardChannels& channels, Duration floor) {
  Duration lookahead = std::min({channels.dispatch, channels.kv_migration, channels.autoscale});
  if (lookahead >= kTimeNever) {
    return kTimeNever;
  }
  return std::max(lookahead, floor);
}

ShardedSim::ShardedSim(int shards, int threads)
    : shards_(std::max(shards, 1)),
      // Default pool: never more workers than shards (the extras would only
      // idle at every barrier), never more than the sweep-wide default (so a
      // fleet nested inside an outer ParallelSweep — sized with
      // ThreadsForNested — does not oversubscribe the machine).
      pool_(threads > 0 ? threads : std::min(shards_, ParallelSweep::DefaultThreads())),
      shard_perf_(static_cast<size_t>(shards_)) {}

void ShardedSim::Phase(const std::function<void(int)>& fn) {
  if (shards_ == 1) {
    // Single shard: run inline. Keeps K=1 free of pool handoffs and makes
    // its execution trace identical to a plain serial run.
    fn(0);
    return;
  }
  for (int shard = 0; shard < shards_; ++shard) {
    pool_.Submit([&fn, shard] { fn(shard); });
  }
  pool_.Wait();
}

uint64_t ShardedSim::Run(const std::function<TimePoint()>& plan,
                         const std::function<uint64_t(int, TimePoint)>& advance) {
  uint64_t ran = 0;
  for (;;) {
    const TimePoint horizon = plan();
    Phase([this, &advance, horizon](int shard) {
      // Host cost of each shard's epoch advance for the per-shard
      // SimPerfCounters; epoch horizons come from the serial barrier stage,
      // never from this clock.
      // LINT-ALLOW(wall-clock): host-side per-shard SimPerf timing only
      const auto start = std::chrono::steady_clock::now();
      const uint64_t processed = advance(shard, horizon);
      SimPerfCounters& perf = shard_perf_[static_cast<size_t>(shard)];
      perf.events_processed += processed;
      perf.wall_seconds +=
          // LINT-ALLOW(wall-clock): host-side SimPerf timing only
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    });
    ++ran;
    ++epochs_;
    if (horizon >= kTimeNever) {
      // Final drain epoch: every shard ran to empty; nothing left to plan.
      return ran;
    }
  }
}

}  // namespace aegaeon
