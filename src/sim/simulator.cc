#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace aegaeon {

EventId Simulator::At(TimePoint when, EventQueue::Callback cb) {
  return queue_.Push(std::max(when, now_), std::move(cb));
}

EventId Simulator::After(Duration delay, EventQueue::Callback cb) {
  return At(now_ + std::max(delay, 0.0), std::move(cb));
}

uint64_t Simulator::Run() {
  uint64_t processed = 0;
  while (!queue_.empty()) {
    // Advance the clock *before* running the callback so that Now() inside
    // it reports the event's own timestamp.
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++processed;
  }
  events_processed_ += processed;
  return processed;
}

uint64_t Simulator::RunUntil(TimePoint horizon) {
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.NextTime() <= horizon) {
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++processed;
  }
  now_ = std::max(now_, horizon);
  events_processed_ += processed;
  return processed;
}

}  // namespace aegaeon
