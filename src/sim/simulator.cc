#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace aegaeon {

namespace {

// Times the *host* cost of a run for SimPerf reports (events/s); simulated
// time comes exclusively from the event queue.
// LINT-ALLOW(wall-clock): host-side SimPerf timing; never feeds sim time
double Elapsed(std::chrono::steady_clock::time_point start) {
  // LINT-ALLOW(wall-clock): host-side SimPerf timing; never feeds sim time
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

EventId Simulator::At(TimePoint when, EventQueue::Callback cb) {
  return queue_.Push(std::max(when, now_), std::move(cb));
}

EventId Simulator::After(Duration delay, EventQueue::Callback cb) {
  return At(now_ + std::max(delay, 0.0), std::move(cb));
}

void Simulator::ScheduleBatch(std::vector<EventQueue::Pending> batch) {
  ScheduleBatch(batch.data(), batch.size());
}

void Simulator::ScheduleBatch(EventQueue::Pending* batch, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    batch[i].when = std::max(batch[i].when, now_);
  }
  queue_.Merge(batch, count);
}

uint64_t Simulator::Run() {
  // LINT-ALLOW(wall-clock): host cost of the run for SimPerfCounters only
  auto start = std::chrono::steady_clock::now();
  uint64_t processed = 0;
  while (!queue_.empty()) {
    // Advance the clock *before* running the callback so that Now() inside
    // it reports the event's own timestamp.
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++processed;
  }
  perf_.events_processed += processed;
  perf_.wall_seconds += Elapsed(start);
  return processed;
}

uint64_t Simulator::RunUntil(TimePoint horizon) {
  // LINT-ALLOW(wall-clock): host cost of the run for SimPerfCounters only
  auto start = std::chrono::steady_clock::now();
  uint64_t processed = 0;
  while (!queue_.empty() && queue_.NextTime() <= horizon) {
    now_ = queue_.NextTime();
    queue_.PopAndRun();
    ++processed;
  }
  now_ = std::max(now_, horizon);
  perf_.events_processed += processed;
  perf_.wall_seconds += Elapsed(start);
  return processed;
}

}  // namespace aegaeon
