// Time primitives for the discrete-event simulator.
//
// All simulated time is measured in seconds as a double. The simulator never
// compares times for exact equality except against the sentinel values below,
// so double precision is sufficient for multi-day horizons at microsecond
// resolution.

#ifndef AEGAEON_SIM_TIME_H_
#define AEGAEON_SIM_TIME_H_

#include <limits>

namespace aegaeon {

// A point in simulated time, in seconds since simulation start.
using TimePoint = double;

// A span of simulated time, in seconds.
using Duration = double;

// Sentinel meaning "never" / "not yet scheduled".
inline constexpr TimePoint kTimeNever = std::numeric_limits<double>::infinity();

// Sentinel meaning "before the simulation started".
inline constexpr TimePoint kTimeUnset = -1.0;

inline constexpr Duration kMillisecond = 1e-3;
inline constexpr Duration kMicrosecond = 1e-6;
inline constexpr Duration kMinute = 60.0;
inline constexpr Duration kHour = 3600.0;

}  // namespace aegaeon

#endif  // AEGAEON_SIM_TIME_H_
