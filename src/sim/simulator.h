// The discrete-event simulator driving every experiment in this repository.
//
// A Simulator owns the clock and the event queue. Components schedule work
// with At()/After() and query Now(). Run() drains events until the queue is
// empty or a configured horizon is reached.

#ifndef AEGAEON_SIM_SIMULATOR_H_
#define AEGAEON_SIM_SIMULATOR_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace aegaeon {

// Host-side cost of a simulation run. The wall-clock numbers are measured,
// not simulated — they vary run to run and must be excluded from any
// determinism comparison of run results.
struct SimPerfCounters {
  uint64_t events_processed = 0;
  double wall_seconds = 0.0;
  // --- Conservative-sync epoch loop (sharded execution only; zero for
  // plain runs). ---
  // Lookahead grid slots the epoch loop jumped without a barrier (dead
  // slots snapped over plus slots batched into a wider epoch). A global
  // property of the loop: ShardedSim records it on shard 0's entry so that
  // summing shard entries yields the loop total exactly once.
  uint64_t epochs_skipped = 0;
  // Epochs in which this shard had no runnable work and was not submitted.
  uint64_t idle_shard_skips = 0;
  // Host time this shard's worker spent waiting at the epoch barrier.
  double barrier_wait_seconds = 0.0;

  double EventsPerSec() const {
    return wall_seconds > 0.0 ? static_cast<double>(events_processed) / wall_seconds : 0.0;
  }

  SimPerfCounters& operator+=(const SimPerfCounters& other) {
    events_processed += other.events_processed;
    wall_seconds += other.wall_seconds;
    epochs_skipped += other.epochs_skipped;
    idle_shard_skips += other.idle_shard_skips;
    barrier_wait_seconds += other.barrier_wait_seconds;
    return *this;
  }
};

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint Now() const { return now_; }

  // Schedules `cb` at absolute time `when`. Scheduling in the past is a
  // programming error; the event is clamped to Now() to keep time monotonic.
  EventId At(TimePoint when, EventQueue::Callback cb);

  // Schedules `cb` after `delay` seconds (negative delays clamp to zero).
  EventId After(Duration delay, EventQueue::Callback cb);

  // Bulk-schedules a batch in input order (FIFO tie-break preserved),
  // clamping past timestamps to Now() like At(). Used by trace loading and
  // the sharded simulator's epoch-boundary mailbox delivery, where pushing
  // thousands of arrivals one heap sift at a time would dominate the
  // barrier stage.
  void ScheduleBatch(std::vector<EventQueue::Pending> batch);

  // Range form: consumes the callbacks but leaves the storage with the
  // caller (see EventQueue::Merge), so injection scratch keeps its capacity.
  void ScheduleBatch(EventQueue::Pending* batch, size_t count);

  // Time of the earliest pending event; kTimeNever when the queue is empty.
  // The sharded fleet's barrier stage uses this to pick the next horizon
  // and to skip idle cells. Non-const: reading the front may reclaim
  // cancelled tombstones.
  TimePoint NextEventTime() { return queue_.NextTime(); }

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue is empty. Returns the number of events processed.
  uint64_t Run();

  // Runs until the queue is empty or the clock passes `horizon`, whichever
  // comes first. Events scheduled beyond the horizon are left unprocessed and
  // the clock is set to the horizon.
  uint64_t RunUntil(TimePoint horizon);

  // Number of events processed so far across all Run* calls.
  uint64_t events_processed() const { return perf_.events_processed; }

  // Host wall-clock time spent inside Run* calls so far.
  double wall_seconds() const { return perf_.wall_seconds; }

  // Events processed and wall-clock cost across all Run* calls.
  const SimPerfCounters& perf() const { return perf_; }

  bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  TimePoint now_ = 0.0;
  SimPerfCounters perf_;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_SIMULATOR_H_
