#include "sim/parallel_sweep.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

namespace aegaeon {

int ParallelSweep::DefaultThreads() {
  if (const char* env = std::getenv("AEGAEON_SWEEP_THREADS")) {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ParallelSweep::ThreadsForNested(int intra) {
  return std::max(1, DefaultThreads() / std::max(1, intra));
}

ParallelSweep::ParallelSweep(int threads)
    : pool_(threads > 0 ? threads : DefaultThreads()) {}

void ParallelSweep::Run(std::vector<std::function<void()>> tasks) {
  for (auto& task : tasks) {
    pool_.Submit(std::move(task));
  }
  pool_.Wait();
}

}  // namespace aegaeon
