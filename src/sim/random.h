// Deterministic random number generation for workload synthesis.
//
// Every experiment seeds its own Rng, so runs are exactly reproducible and
// independent of the platform's std::random_device / distribution
// implementations (libstdc++ and libc++ produce different streams for the
// standard distributions; we implement our own).

#ifndef AEGAEON_SIM_RANDOM_H_
#define AEGAEON_SIM_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aegaeon {

// xoshiro256++ by Blackman & Vigna (public domain reference implementation),
// seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  // Exponential with the given rate (mean 1/rate). Precondition: rate > 0.
  double Exponential(double rate);

  // Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  // LogNormal with the given *underlying* normal parameters mu / sigma.
  double LogNormal(double mu, double sigma);

  // True with probability p.
  bool Bernoulli(double p);

  // Poisson-distributed count with the given mean (Knuth's method for small
  // means, normal approximation above 64).
  uint64_t Poisson(double mean);

 private:
  double CachedNormal();

  uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Samples from a Zipf(s) distribution over ranks {0, .., n-1}: rank k has
// probability proportional to 1/(k+1)^s. Used to synthesize the heavy-tailed
// model-popularity distribution of Figure 1(a).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  // Probability mass of rank k.
  double Pmf(size_t k) const { return pmf_[k]; }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

// Generates the arrival times of a (possibly rate-modulated) Poisson process.
class PoissonProcess {
 public:
  // Homogeneous process with the given rate (events/second).
  PoissonProcess(double rate, uint64_t seed);

  // Next arrival strictly after the previous one; the first call returns the
  // first arrival after time 0.
  double NextArrival();

  // All arrivals in [0, horizon).
  std::vector<double> ArrivalsUntil(double horizon);

  double rate() const { return rate_; }

 private:
  double rate_;
  double last_ = 0.0;
  Rng rng_;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_RANDOM_H_
