// A small work-stealing thread pool for fanning independent simulation runs
// across cores. Each worker owns a deque: tasks are distributed round-robin
// at submission, a worker pops from the front of its own deque, and an idle
// worker steals from the back of a victim's deque. There is no global queue
// to contend on; the pool is oblivious to what the tasks compute.
//
// Locking discipline is machine-checked: members carry Clang Thread Safety
// annotations (core/thread_annotations.h) and the `thread-safety` CI job
// compiles this with -Werror=thread-safety.

#ifndef AEGAEON_SIM_THREAD_POOL_H_
#define AEGAEON_SIM_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace aegaeon {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains nothing: joins once outstanding tasks finish. Submitting after
  // destruction begins is a programming error.
  ~ThreadPool();

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues `task` for execution on some worker. Thread-safe.
  void Submit(Task task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

 private:
  struct Worker {
    Mutex mu;
    std::deque<Task> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  bool TryPopOwn(size_t self, Task& task) EXCLUDES(wake_mu_);
  bool TrySteal(size_t self, Task& task) EXCLUDES(wake_mu_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex wake_mu_;
  CondVar wake_cv_;
  CondVar idle_cv_;
  std::atomic<size_t> next_worker_{0};
  // Tasks submitted but not yet finished running.
  std::atomic<size_t> inflight_{0};
  bool stop_ GUARDED_BY(wake_mu_) = false;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_THREAD_POOL_H_
