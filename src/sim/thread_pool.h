// A small work-stealing thread pool for fanning independent simulation runs
// across cores. Each worker owns a deque: tasks are distributed round-robin
// at submission, a worker pops from the front of its own deque, and an idle
// worker steals from the back of a victim's deque. There is no global queue
// to contend on; the pool is oblivious to what the tasks compute.

#ifndef AEGAEON_SIM_THREAD_POOL_H_
#define AEGAEON_SIM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace aegaeon {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains nothing: joins once outstanding tasks finish. Submitting after
  // destruction begins is a programming error.
  ~ThreadPool();

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues `task` for execution on some worker. Thread-safe.
  void Submit(Task task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t self);
  bool TryPopOwn(size_t self, Task& task);
  bool TrySteal(size_t self, Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> next_worker_{0};
  // Tasks submitted but not yet finished running.
  std::atomic<size_t> inflight_{0};
  bool stop_ = false;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_THREAD_POOL_H_
