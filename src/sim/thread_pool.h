// Two executors for host-side parallelism, both with machine-checked
// locking (Clang Thread Safety annotations from core/thread_annotations.h;
// the `thread-safety` CI job compiles with -Werror=thread-safety).
//
// ThreadPool — a small work-stealing pool for fanning independent
// simulation runs across cores. Each worker owns a deque: tasks are
// distributed round-robin at submission, a worker pops from the front of
// its own deque, and an idle worker steals from the back of a victim's
// deque. There is no global queue to contend on; the pool is oblivious to
// what the tasks compute.
//
// ShardGang — persistent workers for the sharded simulator's epoch loop,
// where the same slice function runs over the same slices thousands of
// times. Submitting one closure per shard per epoch through a pool costs an
// allocation, two deque passes, and a wakeup per task (~230k submissions
// for a 128-shard run); the gang instead parks its workers at a
// sense-reversing barrier (a monotone round counter whose advance is the
// flipped sense) and reuses them every round, and the coordinating caller
// participates as worker 0 instead of sleeping.

#ifndef AEGAEON_SIM_THREAD_POOL_H_
#define AEGAEON_SIM_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace aegaeon {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains nothing: joins once outstanding tasks finish. Submitting after
  // destruction begins is a programming error.
  ~ThreadPool();

  int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues `task` for execution on some worker. Thread-safe.
  void Submit(Task task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

 private:
  struct Worker {
    Mutex mu;
    std::deque<Task> tasks GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  bool TryPopOwn(size_t self, Task& task) EXCLUDES(wake_mu_);
  bool TrySteal(size_t self, Task& task) EXCLUDES(wake_mu_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex wake_mu_;
  CondVar wake_cv_;
  CondVar idle_cv_;
  std::atomic<size_t> next_worker_{0};
  // Tasks submitted but not yet finished running.
  std::atomic<size_t> inflight_{0};
  bool stop_ GUARDED_BY(wake_mu_) = false;
};

// Persistent workers advancing fixed slices in lockstep rounds.
//
// The gang owns `slices` slices of work (the sharded simulator's shards)
// executed by W = min(threads, slices) workers; slice s always runs on
// worker s % W, so the slice -> thread mapping is deterministic. Worker 0
// is the *calling* thread of Run(): it releases the round, executes its own
// slices, then waits for the rest — with W == 1 a round is a plain inline
// loop with no synchronization or spawned threads at all, which keeps
// single-shard runs free of any pool handoff.
//
// Rounds use a sense-reversing barrier: workers sleep until the round
// counter differs from the value they last served (the generalized flipped
// sense), run their slices, and check in on a countdown the coordinator
// waits on. All handshakes go through one annotated Mutex/CondVar pair —
// uncontended in steady state, since only round edges touch it.
class ShardGang {
 public:
  using SliceFn = std::function<void(int)>;

  // Spawns min(threads, slices) - 1 worker threads (the caller is worker 0).
  // `threads` and `slices` are clamped to >= 1.
  ShardGang(int slices, int threads);

  ShardGang(const ShardGang&) = delete;
  ShardGang& operator=(const ShardGang&) = delete;

  ~ShardGang();

  int slices() const { return slices_; }
  // Total workers including the coordinating caller.
  int thread_count() const { return workers_; }

  // Runs fn(slice) for every slice whose mask entry is nonzero (nullptr
  // mask = all slices), blocking until the round completes. `mask`, when
  // given, must have slices() entries and stay valid for the whole call.
  // Not reentrant: one round at a time, driven by one coordinating thread.
  void Run(const SliceFn& fn, const std::vector<uint8_t>* mask = nullptr);

  // Cumulative host seconds worker `worker` spent blocked at the barrier
  // (waiting for a round to open, or — for worker 0 — for stragglers to
  // finish). Call only between rounds.
  double worker_wait_seconds(int worker) const;

 private:
  void WorkerLoop(int worker) EXCLUDES(mu_);
  // Executes worker `worker`'s slices of the current round.
  void RunSlices(int worker, const SliceFn& fn, const std::vector<uint8_t>* mask);

  int slices_;
  int workers_;
  std::vector<std::thread> threads_;

  mutable Mutex mu_;
  CondVar round_cv_;  // workers: a new round opened (or stop)
  CondVar done_cv_;   // coordinator: all workers checked in
  uint64_t round_ GUARDED_BY(mu_) = 0;
  int running_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  const SliceFn* fn_ GUARDED_BY(mu_) = nullptr;
  const std::vector<uint8_t>* mask_ GUARDED_BY(mu_) = nullptr;
  std::vector<double> wait_seconds_ GUARDED_BY(mu_);
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_THREAD_POOL_H_
