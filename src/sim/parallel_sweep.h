// ParallelSweep: fans independent simulation runs across a work-stealing
// thread pool and collects results in deterministic input order.
//
// Determinism contract: every task must construct the entirety of its
// simulation state (registry, trace, cluster) from explicit seeds inside the
// task body and share nothing mutable with other tasks. Under that contract
// the results are bit-identical to running the same tasks serially in input
// order — scheduling only changes *when* a task runs, never what it
// computes. Run results therefore must not include host wall-clock values
// (see SimPerfCounters, which is reported separately for this reason).
//
// Worker count: an explicit argument wins; otherwise the AEGAEON_SWEEP_THREADS
// environment variable; otherwise std::thread::hardware_concurrency().

#ifndef AEGAEON_SIM_PARALLEL_SWEEP_H_
#define AEGAEON_SIM_PARALLEL_SWEEP_H_

#include <atomic>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/thread_pool.h"

namespace aegaeon {

class ParallelSweep {
 public:
  // `threads` <= 0 selects DefaultThreads().
  explicit ParallelSweep(int threads = 0);

  int thread_count() const { return pool_.size(); }

  // AEGAEON_SWEEP_THREADS override, else hardware_concurrency(), min 1.
  static int DefaultThreads();

  // Worker budget per sweep task when each task is itself `intra`-way
  // parallel (a sharded fleet run inside a sweep): the default budget
  // divided by the intra-run width, min 1. Keeps total thread count at the
  // core budget instead of multiplying the two levels of parallelism.
  static int ThreadsForNested(int intra);

  // Runs every task across the pool; blocks until all complete and returns
  // their results in input order. T must be default-constructible and
  // movable. If a task throws, the first exception is rethrown here after
  // all tasks have drained.
  template <typename T>
  std::vector<T> Map(std::vector<std::function<T()>> tasks) {
    std::vector<T> results(tasks.size());
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    // Annotated (core/thread_annotations.h) like every pool-shared mutex;
    // first_error is only written under it and only read after Wait().
    Mutex error_mu;
    for (size_t i = 0; i < tasks.size(); ++i) {
      pool_.Submit([&, i] {
        try {
          results[i] = tasks[i]();
        } catch (...) {
          MutexLock lock(error_mu);
          if (!failed.exchange(true)) {
            first_error = std::current_exception();
          }
        }
      });
    }
    pool_.Wait();
    if (failed.load()) {
      std::rethrow_exception(first_error);
    }
    return results;
  }

  // Convenience for side-effect-free fan-out without results.
  void Run(std::vector<std::function<void()>> tasks);

 private:
  ThreadPool pool_;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_PARALLEL_SWEEP_H_
