// A move-only callable with small-buffer optimization, used for simulator
// events. Unlike std::function, captures up to kInlineSize bytes live inside
// the EventCallback itself — scheduling an event allocates nothing — and the
// wrapped callable only needs to be movable, so events can own move-only
// state (std::unique_ptr, file handles, ...).

#ifndef AEGAEON_SIM_CALLBACK_H_
#define AEGAEON_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aegaeon {

class EventCallback {
 public:
  // Capture budget before falling back to a heap allocation. Sized for the
  // simulator's hot callbacks (a `this` pointer plus a handful of scalars).
  static constexpr size_t kInlineSize = 48;
  static constexpr size_t kInlineAlign = alignof(std::max_align_t);

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(buffer_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { ops_->invoke(buffer_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when the capture lives in the inline buffer (no heap allocation).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void* storage);
    bool inline_storage;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*std::launder(reinterpret_cast<Fn*>(storage)))(); }
    static void Move(void* dst, void* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { std::launder(reinterpret_cast<Fn*>(storage))->~Fn(); }
    static constexpr Ops ops{&Invoke, &Move, &Destroy, /*inline_storage=*/true};
  };

  template <typename Fn>
  struct HeapOps {
    static void Invoke(void* storage) { (**reinterpret_cast<Fn**>(storage))(); }
    static void Move(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
    }
    static void Destroy(void* storage) { delete *reinterpret_cast<Fn**>(storage); }
    static constexpr Ops ops{&Invoke, &Move, &Destroy, /*inline_storage=*/false};
  };

  void MoveFrom(EventCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->move(buffer_, other.buffer_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buffer_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace aegaeon

#endif  // AEGAEON_SIM_CALLBACK_H_
