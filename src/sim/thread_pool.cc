#include "sim/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace aegaeon {

ThreadPool::ThreadPool(int threads) {
  int n = std::max(threads, 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(Task task) {
  size_t target = next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    Worker& w = *workers_[target];
    MutexLock lock(w.mu);
    w.tasks.push_back(std::move(task));
  }
  wake_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(wake_mu_);
  idle_cv_.Wait(wake_mu_,
                [this] { return inflight_.load(std::memory_order_acquire) == 0; });
}

bool ThreadPool::TryPopOwn(size_t self, Task& task) {
  Worker& w = *workers_[self];
  MutexLock lock(w.mu);
  if (w.tasks.empty()) {
    return false;
  }
  task = std::move(w.tasks.front());
  w.tasks.pop_front();
  return true;
}

bool ThreadPool::TrySteal(size_t self, Task& task) {
  size_t n = workers_.size();
  for (size_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(self + i) % n];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

ShardGang::ShardGang(int slices, int threads)
    : slices_(std::max(slices, 1)),
      workers_(std::max(1, std::min(std::max(threads, 1), std::max(slices, 1)))),
      wait_seconds_(static_cast<size_t>(workers_), 0.0) {
  threads_.reserve(static_cast<size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardGang::~ShardGang() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  round_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ShardGang::RunSlices(int worker, const SliceFn& fn, const std::vector<uint8_t>* mask) {
  for (int s = worker; s < slices_; s += workers_) {
    if (mask == nullptr || (*mask)[static_cast<size_t>(s)] != 0) {
      fn(s);
    }
  }
}

void ShardGang::Run(const SliceFn& fn, const std::vector<uint8_t>* mask) {
  if (workers_ == 1) {
    // Single worker: a round is a plain loop on the calling thread.
    RunSlices(0, fn, mask);
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    mask_ = mask;
    running_ = workers_ - 1;
    ++round_;  // advancing the counter flips the sense every sleeper tests
  }
  round_cv_.NotifyAll();
  RunSlices(0, fn, mask);
  // Coordinator's barrier wait: time blocked on stragglers, for the
  // barrier_wait_seconds perf counter.
  // LINT-ALLOW(wall-clock): host-side barrier-wait SimPerf timing only
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(mu_);
  while (running_ != 0) {
    done_cv_.Wait(mu_);
  }
  wait_seconds_[0] +=
      // LINT-ALLOW(wall-clock): host-side barrier-wait SimPerf timing only
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

double ShardGang::worker_wait_seconds(int worker) const {
  MutexLock lock(mu_);
  return wait_seconds_[static_cast<size_t>(worker)];
}

void ShardGang::WorkerLoop(int worker) {
  uint64_t served = 0;
  for (;;) {
    const SliceFn* fn = nullptr;
    const std::vector<uint8_t>* mask = nullptr;
    {
      // LINT-ALLOW(wall-clock): host-side barrier-wait SimPerf timing only
      const auto start = std::chrono::steady_clock::now();
      MutexLock lock(mu_);
      while (!stop_ && round_ == served) {
        round_cv_.Wait(mu_);
      }
      wait_seconds_[static_cast<size_t>(worker)] +=
          // LINT-ALLOW(wall-clock): host-side barrier-wait SimPerf timing only
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (stop_) {
        return;
      }
      served = round_;
      fn = fn_;
      mask = mask_;
    }
    RunSlices(worker, *fn, mask);
    {
      MutexLock lock(mu_);
      if (--running_ == 0) {
        done_cv_.NotifyOne();  // exactly one waiter: the coordinator
      }
    }
  }
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    Task task;
    if (TryPopOwn(self, task) || TrySteal(self, task)) {
      task();
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task out: wake Wait()ers. Take the lock so the notification
        // cannot race between a waiter's predicate check and its sleep.
        MutexLock lock(wake_mu_);
        idle_cv_.NotifyAll();
      }
      continue;
    }
    MutexLock lock(wake_mu_);
    if (stop_) {
      return;
    }
    // Re-check the queues under the wake lock: a Submit may have landed
    // between the failed pop attempts and here.
    wake_cv_.WaitFor(wake_mu_, std::chrono::milliseconds(1));
  }
}

}  // namespace aegaeon
