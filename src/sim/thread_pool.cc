#include "sim/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace aegaeon {

ThreadPool::ThreadPool(int threads) {
  int n = std::max(threads, 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(Task task) {
  size_t target = next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    Worker& w = *workers_[target];
    MutexLock lock(w.mu);
    w.tasks.push_back(std::move(task));
  }
  wake_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(wake_mu_);
  idle_cv_.Wait(wake_mu_,
                [this] { return inflight_.load(std::memory_order_acquire) == 0; });
}

bool ThreadPool::TryPopOwn(size_t self, Task& task) {
  Worker& w = *workers_[self];
  MutexLock lock(w.mu);
  if (w.tasks.empty()) {
    return false;
  }
  task = std::move(w.tasks.front());
  w.tasks.pop_front();
  return true;
}

bool ThreadPool::TrySteal(size_t self, Task& task) {
  size_t n = workers_.size();
  for (size_t i = 1; i < n; ++i) {
    Worker& victim = *workers_[(self + i) % n];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    Task task;
    if (TryPopOwn(self, task) || TrySteal(self, task)) {
      task();
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task out: wake Wait()ers. Take the lock so the notification
        // cannot race between a waiter's predicate check and its sleep.
        MutexLock lock(wake_mu_);
        idle_cv_.NotifyAll();
      }
      continue;
    }
    MutexLock lock(wake_mu_);
    if (stop_) {
      return;
    }
    // Re-check the queues under the wake lock: a Submit may have landed
    // between the failed pop attempts and here.
    wake_cv_.WaitFor(wake_mu_, std::chrono::milliseconds(1));
  }
}

}  // namespace aegaeon
