// Minimal dense float tensor operations for the tiny reference inference
// engine (src/infer/tiny_llm.h). Deliberately simple and allocation-light:
// row-major matrices, vector ops, and the transformer primitives (softmax,
// RMSNorm, SiLU, RoPE). Not performance-oriented — the goal is an exact,
// auditable reference for validating the serving stack's KV bookkeeping.

#ifndef AEGAEON_INFER_TENSOR_H_
#define AEGAEON_INFER_TENSOR_H_

#include <cstddef>
#include <vector>

namespace aegaeon {

// Row-major matrix of floats.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }
  float* mutable_row(size_t r) { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// out[n] = x[m] * W[m x n] (vector-matrix product).
std::vector<float> VecMat(const std::vector<float>& x, const Matrix& w);

// In-place softmax over the whole vector (numerically stabilized).
void SoftmaxInPlace(std::vector<float>& x);

// RMSNorm: x * weight / rms(x).
std::vector<float> RmsNorm(const std::vector<float>& x, const std::vector<float>& weight,
                           float eps = 1e-5f);

// SiLU activation: x * sigmoid(x), elementwise.
void SiluInPlace(std::vector<float>& x);

// Rotary position embedding applied in-place to one head's query/key slice
// of `head_dim` floats at sequence position `pos`.
void RopeInPlace(float* head, int head_dim, int pos, float theta = 10000.0f);

// Dot product of two equal-length spans.
float Dot(const float* a, const float* b, size_t n);

// y += alpha * x.
void Axpy(std::vector<float>& y, const float* x, float alpha, size_t n);

}  // namespace aegaeon

#endif  // AEGAEON_INFER_TENSOR_H_
