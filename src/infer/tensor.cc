#include "infer/tensor.h"

#include <cassert>
#include <cmath>

namespace aegaeon {

std::vector<float> VecMat(const std::vector<float>& x, const Matrix& w) {
  assert(x.size() == w.rows());
  std::vector<float> out(w.cols(), 0.0f);
  for (size_t r = 0; r < w.rows(); ++r) {
    float xv = x[r];
    // LINT-ALLOW(float-equality): exact-zero sparsity skip — adding
    // xv * row[c] with xv == +/-0 is a no-op, so skipping is bit-identical
    if (xv == 0.0f) {
      continue;
    }
    const float* row = w.row(r);
    for (size_t c = 0; c < w.cols(); ++c) {
      out[c] += xv * row[c];
    }
  }
  return out;
}

void SoftmaxInPlace(std::vector<float>& x) {
  if (x.empty()) {
    return;
  }
  float max_val = x[0];
  for (float v : x) {
    max_val = v > max_val ? v : max_val;
  }
  float sum = 0.0f;
  for (float& v : x) {
    v = std::exp(v - max_val);
    sum += v;
  }
  for (float& v : x) {
    v /= sum;
  }
}

std::vector<float> RmsNorm(const std::vector<float>& x, const std::vector<float>& weight,
                           float eps) {
  assert(x.size() == weight.size());
  double sq = 0.0;
  for (float v : x) {
    sq += static_cast<double>(v) * v;
  }
  float inv_rms = 1.0f / std::sqrt(static_cast<float>(sq / x.size()) + eps);
  std::vector<float> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * inv_rms * weight[i];
  }
  return out;
}

void SiluInPlace(std::vector<float>& x) {
  for (float& v : x) {
    v = v / (1.0f + std::exp(-v));
  }
}

void RopeInPlace(float* head, int head_dim, int pos, float theta) {
  assert(head_dim % 2 == 0);
  for (int i = 0; i < head_dim; i += 2) {
    float freq = std::pow(theta, -static_cast<float>(i) / head_dim);
    float angle = static_cast<float>(pos) * freq;
    float c = std::cos(angle);
    float s = std::sin(angle);
    float x0 = head[i];
    float x1 = head[i + 1];
    head[i] = x0 * c - x1 * s;
    head[i + 1] = x0 * s + x1 * c;
  }
}

float Dot(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void Axpy(std::vector<float>& y, const float* x, float alpha, size_t n) {
  assert(y.size() >= n);
  for (size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

}  // namespace aegaeon
