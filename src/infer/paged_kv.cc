#include "infer/paged_kv.h"

#include <cassert>
#include <cstring>

namespace aegaeon {

KvArena::KvArena(size_t total_bytes, size_t slab_bytes)
    : total_bytes_(total_bytes),
      slab_bytes_(slab_bytes),
      slabs_(total_bytes, slab_bytes),
      data_(total_bytes / sizeof(float), 0.0f) {}

ShapeClassId KvArena::RegisterBlockBytes(size_t block_bytes) {
  for (const auto& [bytes, id] : registered_) {
    if (bytes == block_bytes) {
      return id;
    }
  }
  ShapeClassId id = static_cast<ShapeClassId>(registered_.size());
  bool ok = slabs_.RegisterShape(id, block_bytes);
  assert(ok && "KV block larger than an arena slab");
  (void)ok;
  registered_.emplace_back(block_bytes, id);
  return id;
}

float* KvArena::BlockPtr(BlockRef block, size_t block_bytes) {
  size_t offset_bytes =
      static_cast<size_t>(block.slab) * slab_bytes_ + static_cast<size_t>(block.index) * block_bytes;
  assert(offset_bytes + block_bytes <= total_bytes_);
  return data_.data() + offset_bytes / sizeof(float);
}

const float* KvArena::BlockPtr(BlockRef block, size_t block_bytes) const {
  return const_cast<KvArena*>(this)->BlockPtr(block, block_bytes);
}

PagedKvStore::PagedKvStore(Geometry geometry, KvArena* arena)
    : geometry_(geometry), arena_(arena) {
  assert(arena_ != nullptr);
  shape_ = arena_->RegisterBlockBytes(geometry_.BlockBytes());
  table_.resize(geometry_.layers);
}

PagedKvStore::~PagedKvStore() { Release(); }

float* PagedKvStore::EntryPtr(int layer, int pos, bool value) const {
  assert(layer >= 0 && layer < geometry_.layers);
  assert(pos >= 0 && pos < tokens_);
  int block_index = pos / geometry_.tokens_per_block;
  int within = pos % geometry_.tokens_per_block;
  const BlockRef& block = table_[layer][block_index];
  float* base = arena_->BlockPtr(block, geometry_.BlockBytes());
  size_t entry = geometry_.FloatsPerEntry();
  // Layout: [token-in-block][K|V][kv_head * head_dim].
  return base + (static_cast<size_t>(within) * 2 + (value ? 1 : 0)) * entry;
}

bool PagedKvStore::Append(int layer, int pos, const float* k, const float* v) {
  assert(layer >= 0 && layer < geometry_.layers);
  // Layers advance in lockstep within a forward pass: layer 0 defines the
  // new position; other layers follow behind (Import replays whole layers).
  assert(layer != 0 || pos == tokens_ || pos == tokens_ - 1);
  assert(pos <= tokens_);
  int block_index = pos / geometry_.tokens_per_block;
  if (block_index == static_cast<int>(table_[layer].size())) {
    std::vector<BlockRef> fresh = arena_->slabs().Alloc(shape_, 1);
    if (fresh.empty()) {
      return false;
    }
    table_[layer].push_back(fresh[0]);
  }
  if (layer == 0 && pos == tokens_) {
    tokens_ = pos + 1;
  }
  size_t entry = geometry_.FloatsPerEntry();
  int within = pos % geometry_.tokens_per_block;
  float* base = arena_->BlockPtr(table_[layer][block_index], geometry_.BlockBytes());
  float* kdst = base + static_cast<size_t>(within) * 2 * entry;
  std::memcpy(kdst, k, entry * sizeof(float));
  std::memcpy(kdst + entry, v, entry * sizeof(float));
  return true;
}

const float* PagedKvStore::KeyAt(int layer, int pos) const {
  return EntryPtr(layer, pos, /*value=*/false);
}

const float* PagedKvStore::ValueAt(int layer, int pos) const {
  return EntryPtr(layer, pos, /*value=*/true);
}

size_t PagedKvStore::blocks_held() const {
  size_t total = 0;
  for (const auto& layer_table : table_) {
    total += layer_table.size();
  }
  return total;
}

PagedKvStore::Snapshot PagedKvStore::Export() const {
  Snapshot snapshot;
  snapshot.geometry = geometry_;
  snapshot.tokens = tokens_;
  size_t entry = geometry_.FloatsPerEntry();
  snapshot.data.reserve(static_cast<size_t>(geometry_.layers) * tokens_ * 2 * entry);
  for (int layer = 0; layer < geometry_.layers; ++layer) {
    for (int pos = 0; pos < tokens_; ++pos) {
      const float* k = KeyAt(layer, pos);
      snapshot.data.insert(snapshot.data.end(), k, k + entry);
      const float* v = ValueAt(layer, pos);
      snapshot.data.insert(snapshot.data.end(), v, v + entry);
    }
  }
  return snapshot;
}

void PagedKvStore::Release() {
  for (auto& layer_table : table_) {
    arena_->slabs().Free(layer_table);
    layer_table.clear();
  }
  tokens_ = 0;
}

bool PagedKvStore::Import(const Snapshot& snapshot) {
  assert(tokens_ == 0 && "Import requires an empty store");
  assert(snapshot.geometry.layers == geometry_.layers);
  assert(snapshot.geometry.kv_heads == geometry_.kv_heads);
  assert(snapshot.geometry.head_dim == geometry_.head_dim);
  size_t entry = geometry_.FloatsPerEntry();
  const float* src = snapshot.data.data();
  for (int layer = 0; layer < geometry_.layers; ++layer) {
    for (int pos = 0; pos < snapshot.tokens; ++pos) {
      // During import, replaying Append per layer: emulate the in-order
      // append contract by advancing tokens_ only on layer 0.
      int expected = layer == 0 ? tokens_ : pos;
      (void)expected;
      if (!Append(layer, pos, src, src + entry)) {
        Release();
        return false;
      }
      src += 2 * entry;
    }
  }
  return true;
}

}  // namespace aegaeon
