#include "infer/mini_server.h"

#include <cassert>

namespace aegaeon {

MiniAegaeon::MiniAegaeon(int model_count, TinyLlmConfig config, size_t arena_bytes,
                         uint64_t seed, int tokens_per_block)
    : config_(config), tokens_per_block_(tokens_per_block) {
  assert(model_count > 0);
  models_.reserve(model_count);
  for (int m = 0; m < model_count; ++m) {
    models_.push_back(std::make_unique<TinyLlm>(config_, seed + static_cast<uint64_t>(m) * 977));
  }
  // Slabs sized to a handful of KV blocks keep fragmentation interesting.
  size_t slab = config_.KvGeometry(tokens_per_block_).BlockBytes() * 4;
  arena_ = std::make_unique<KvArena>(arena_bytes, slab);
}

MiniAegaeon::~MiniAegaeon() = default;

int MiniAegaeon::Submit(int model, std::vector<int> prompt, int max_new) {
  assert(model >= 0 && model < static_cast<int>(models_.size()));
  assert(!prompt.empty() && max_new > 0);
  MiniRequest request;
  request.id = static_cast<int>(requests_.size());
  request.model = model;
  request.prompt = std::move(prompt);
  request.max_new = max_new;
  requests_.push_back(std::move(request));
  states_.emplace_back();
  return requests_.back().id;
}

std::vector<int> MiniAegaeon::DedicatedReference(int model, const std::vector<int>& prompt,
                                                 int max_new) const {
  // A private arena big enough for the whole run: the uninterrupted ground
  // truth.
  PagedKvStore::Geometry geometry = config_.KvGeometry(tokens_per_block_);
  size_t needed = geometry.BlockBytes() *
                  (static_cast<size_t>(prompt.size() + max_new) / tokens_per_block_ + 2) *
                  geometry.layers * 2;
  KvArena arena(needed, geometry.BlockBytes() * 4);
  PagedKvStore kv(geometry, &arena);
  return models_[model]->Generate(prompt, max_new, kv);
}

void MiniAegaeon::Offload(int id) {
  RequestState& state = states_[id];
  if (state.kv == nullptr) {
    return;
  }
  if (state.kv->tokens() > 0) {
    state.snapshot = state.kv->Export();
    kv_swaps_++;
  }
  state.kv.reset();  // Release() in the destructor frees the blocks
}

void MiniAegaeon::ActivateModel(int model) {
  if (active_model_ == model) {
    return;
  }
  // Preemptive scale-down: every other model's resident KV leaves the
  // "GPU" (in the real system this is the §5.3 swap-out path).
  for (const MiniRequest& request : requests_) {
    if (request.model != model) {
      Offload(request.id);
    }
  }
  active_model_ = model;
  model_switches_++;
}

bool MiniAegaeon::EnsureResident(int id) {
  RequestState& state = states_[id];
  if (state.kv != nullptr) {
    return true;
  }
  state.kv = std::make_unique<PagedKvStore>(config_.KvGeometry(tokens_per_block_), arena_.get());
  if (state.snapshot.has_value()) {
    if (!state.kv->Import(*state.snapshot)) {
      state.kv.reset();
      return false;  // arena full; snapshot retained for a later attempt
    }
    state.snapshot.reset();
    kv_swaps_++;
  }
  return true;
}

bool MiniAegaeon::DecodeTurn(int id, int quota_tokens) {
  MiniRequest& request = requests_[id];
  RequestState& state = states_[id];
  TinyLlm& model = *models_[request.model];
  int budget = quota_tokens;

  if (!request.prefilled) {
    std::vector<float> logits;
    for (int token : request.prompt) {
      logits = model.ForwardToken(token, state.kv->tokens(), *state.kv);
      if (logits.empty()) {
        return false;
      }
    }
    request.prefilled = true;
    state.next_token = model.Greedy(logits);
    request.output.push_back(state.next_token);
    --budget;
  }
  while (budget > 0 && !request.done()) {
    std::vector<float> logits =
        model.ForwardToken(state.next_token, state.kv->tokens(), *state.kv);
    if (logits.empty()) {
      return false;
    }
    state.next_token = model.Greedy(logits);
    request.output.push_back(state.next_token);
    --budget;
  }
  if (request.done()) {
    state.kv.reset();
    state.snapshot.reset();
  }
  return true;
}

bool MiniAegaeon::RunToCompletion(int quota_tokens) {
  assert(quota_tokens > 0);
  for (;;) {
    bool all_done = true;
    bool progressed = false;
    for (int m = 0; m < static_cast<int>(models_.size()); ++m) {
      bool model_has_work = false;
      for (const MiniRequest& request : requests_) {
        model_has_work |= (request.model == m && !request.done());
      }
      if (!model_has_work) {
        continue;
      }
      all_done = false;
      ActivateModel(m);
      for (MiniRequest& request : requests_) {
        if (request.model != m || request.done()) {
          continue;
        }
        size_t before = request.output.size();
        if (EnsureResident(request.id)) {
          DecodeTurn(request.id, quota_tokens);
        }
        progressed |= request.output.size() > before;
      }
    }
    if (all_done) {
      return true;
    }
    if (!progressed) {
      return false;  // arena too small to host any active request
    }
  }
}

}  // namespace aegaeon
