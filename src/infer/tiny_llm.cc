#include "infer/tiny_llm.h"

#include <cassert>
#include <cmath>

#include "sim/random.h"

namespace aegaeon {
namespace {

void FillNormal(Rng& rng, std::vector<float>& data, float stddev) {
  for (float& v : data) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
}

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols, float stddev) {
  Matrix m(rows, cols);
  FillNormal(rng, m.data(), stddev);
  return m;
}

}  // namespace

TinyLlm::TinyLlm(TinyLlmConfig config, uint64_t seed) : config_(config) {
  assert(config_.hidden % config_.heads == 0);
  assert(config_.heads % config_.kv_heads == 0);
  assert(config_.head_dim() % 2 == 0);
  Rng rng(seed);
  const float stddev = 0.08f;
  const int kv_dim = config_.kv_heads * config_.head_dim();

  embedding_ = RandomMatrix(rng, config_.vocab, config_.hidden, stddev);
  lm_head_ = RandomMatrix(rng, config_.hidden, config_.vocab, stddev);
  rms_final_.assign(config_.hidden, 1.0f);

  layers_.resize(config_.layers);
  for (Layer& layer : layers_) {
    layer.wq = RandomMatrix(rng, config_.hidden, config_.hidden, stddev);
    layer.wk = RandomMatrix(rng, config_.hidden, kv_dim, stddev);
    layer.wv = RandomMatrix(rng, config_.hidden, kv_dim, stddev);
    layer.wo = RandomMatrix(rng, config_.hidden, config_.hidden, stddev);
    layer.w_gate = RandomMatrix(rng, config_.hidden, config_.ffn, stddev);
    layer.w_up = RandomMatrix(rng, config_.hidden, config_.ffn, stddev);
    layer.w_down = RandomMatrix(rng, config_.ffn, config_.hidden, stddev);
    layer.rms_attn.assign(config_.hidden, 1.0f);
    layer.rms_ffn.assign(config_.hidden, 1.0f);
  }
}

std::vector<float> TinyLlm::ForwardToken(int token, int pos, PagedKvStore& kv) const {
  assert(token >= 0 && token < config_.vocab);
  assert(pos == kv.tokens());
  const int head_dim = config_.head_dim();
  const int group = config_.heads / config_.kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  std::vector<float> x(embedding_.row(token), embedding_.row(token) + config_.hidden);

  for (int li = 0; li < config_.layers; ++li) {
    const Layer& layer = layers_[li];

    // --- Attention block -------------------------------------------------
    std::vector<float> h = RmsNorm(x, layer.rms_attn);
    std::vector<float> q = VecMat(h, layer.wq);
    std::vector<float> k = VecMat(h, layer.wk);
    std::vector<float> v = VecMat(h, layer.wv);
    for (int head = 0; head < config_.heads; ++head) {
      RopeInPlace(q.data() + head * head_dim, head_dim, pos);
    }
    for (int head = 0; head < config_.kv_heads; ++head) {
      RopeInPlace(k.data() + head * head_dim, head_dim, pos);
    }
    if (!kv.Append(li, pos, k.data(), v.data())) {
      return {};
    }

    std::vector<float> attn(config_.hidden, 0.0f);
    std::vector<float> scores(pos + 1);
    for (int head = 0; head < config_.heads; ++head) {
      const int kv_head = head / group;
      const float* qh = q.data() + head * head_dim;
      for (int p = 0; p <= pos; ++p) {
        const float* kp = kv.KeyAt(li, p) + kv_head * head_dim;
        scores[p] = Dot(qh, kp, head_dim) * scale;
      }
      SoftmaxInPlace(scores);
      float* out_head = attn.data() + head * head_dim;
      for (int p = 0; p <= pos; ++p) {
        const float* vp = kv.ValueAt(li, p) + kv_head * head_dim;
        for (int d = 0; d < head_dim; ++d) {
          out_head[d] += scores[p] * vp[d];
        }
      }
    }
    std::vector<float> attn_proj = VecMat(attn, layer.wo);
    Axpy(x, attn_proj.data(), 1.0f, x.size());

    // --- SwiGLU FFN block --------------------------------------------------
    std::vector<float> h2 = RmsNorm(x, layer.rms_ffn);
    std::vector<float> gate = VecMat(h2, layer.w_gate);
    std::vector<float> up = VecMat(h2, layer.w_up);
    SiluInPlace(gate);
    for (size_t i = 0; i < gate.size(); ++i) {
      gate[i] *= up[i];
    }
    std::vector<float> down = VecMat(gate, layer.w_down);
    Axpy(x, down.data(), 1.0f, x.size());
  }

  return VecMat(RmsNorm(x, rms_final_), lm_head_);
}

int TinyLlm::Greedy(const std::vector<float>& logits) const {
  assert(!logits.empty());
  int best = 0;
  for (size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<int> TinyLlm::Generate(const std::vector<int>& prompt, int max_new,
                                   PagedKvStore& kv) const {
  std::vector<int> generated;
  std::vector<float> logits;
  int pos = kv.tokens();
  for (int token : prompt) {
    logits = ForwardToken(token, pos++, kv);
    if (logits.empty()) {
      return generated;
    }
  }
  int next = Greedy(logits);
  generated.push_back(next);
  for (int i = 1; i < max_new; ++i) {
    logits = ForwardToken(next, pos++, kv);
    if (logits.empty()) {
      break;
    }
    next = Greedy(logits);
    generated.push_back(next);
  }
  return generated;
}

}  // namespace aegaeon
