// A real paged KV cache: PagedAttention-style block tables over the same
// SlabAllocator the serving stack uses (§5.2's unified KV cache), but
// backed by actual float storage. The tiny reference engine reads and
// writes attention state through it, so block-table arithmetic, slab
// recycling, and swap (export/import) semantics are validated against
// ground-truth model outputs: a request preempted, offloaded, and restored
// must continue bit-identically.

#ifndef AEGAEON_INFER_PAGED_KV_H_
#define AEGAEON_INFER_PAGED_KV_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/slab_allocator.h"

namespace aegaeon {

// Float storage carved into slab-allocated blocks. One arena can back many
// PagedKvStores (many concurrent requests), exactly like the unified GPU
// KV cache hosts many requests' blocks.
class KvArena {
 public:
  KvArena(size_t total_bytes, size_t slab_bytes);

  // Registers a block size (bytes); returns its shape class. Idempotent per
  // distinct size.
  ShapeClassId RegisterBlockBytes(size_t block_bytes);

  SlabAllocator& slabs() { return slabs_; }

  // Pointer to a block's storage. `block_bytes` must be the size registered
  // for the block's shape class.
  float* BlockPtr(BlockRef block, size_t block_bytes);
  const float* BlockPtr(BlockRef block, size_t block_bytes) const;

  size_t total_bytes() const { return total_bytes_; }

 private:
  size_t total_bytes_;
  size_t slab_bytes_;
  SlabAllocator slabs_;
  std::vector<float> data_;
  std::vector<std::pair<size_t, ShapeClassId>> registered_;  // (bytes, id)
};

// Per-request paged KV storage for a multi-layer attention stack.
class PagedKvStore {
 public:
  struct Geometry {
    int layers = 2;
    int kv_heads = 2;
    int head_dim = 8;
    int tokens_per_block = 8;

    // Floats for one token's K (or V) in one layer.
    size_t FloatsPerEntry() const {
      return static_cast<size_t>(kv_heads) * static_cast<size_t>(head_dim);
    }
    // Block bytes: tokens_per_block tokens x (K+V) x kv_heads x head_dim.
    size_t BlockBytes() const {
      return static_cast<size_t>(tokens_per_block) * 2 * FloatsPerEntry() * sizeof(float);
    }
  };

  PagedKvStore(Geometry geometry, KvArena* arena);
  ~PagedKvStore();

  PagedKvStore(const PagedKvStore&) = delete;
  PagedKvStore& operator=(const PagedKvStore&) = delete;

  // Appends K/V for the next position of `layer`. Positions must be
  // appended in order per layer (pos == tokens-so-far for that layer).
  // Returns false if the arena is out of blocks.
  bool Append(int layer, int pos, const float* k, const float* v);

  // K/V of position `pos` in `layer` (kv_heads * head_dim floats).
  const float* KeyAt(int layer, int pos) const;
  const float* ValueAt(int layer, int pos) const;

  // Tokens stored (per layer; all layers advance together in a transformer).
  int tokens() const { return tokens_; }
  const Geometry& geometry() const { return geometry_; }
  size_t blocks_held() const;

  // --- Swap support (the serving stack's offload path, with real data) ---
  struct Snapshot {
    Geometry geometry;
    int tokens = 0;
    std::vector<float> data;  // layer-major, position-major
  };
  // Serializes all stored K/V.
  Snapshot Export() const;
  // Frees every block (the "scale-down" / preemption).
  void Release();
  // Restores from a snapshot into freshly allocated (likely different)
  // blocks. The store must be empty. Returns false on arena exhaustion
  // (the store is left empty).
  bool Import(const Snapshot& snapshot);

 private:
  float* EntryPtr(int layer, int pos, bool value) const;

  Geometry geometry_;
  KvArena* arena_;
  ShapeClassId shape_;
  int tokens_ = 0;
  // Block table per layer: block index b covers positions
  // [b*tokens_per_block, (b+1)*tokens_per_block).
  std::vector<std::vector<BlockRef>> table_;
};

}  // namespace aegaeon

#endif  // AEGAEON_INFER_PAGED_KV_H_
