// A tiny, exact, CPU reference LLM: a LLaMA-style decoder-only transformer
// (RMSNorm, RoPE, grouped-query attention, SwiGLU FFN) with deterministic
// random weights, executing real forward passes against the paged KV cache.
//
// Purpose: engine-level validation of the serving stack. Scheduling and
// memory decisions in core/ are exercised at simulated-H800 scale; this
// engine proves the underlying KV bookkeeping *correct* at tiny scale —
// paging must be invisible (any tokens_per_block yields identical logits)
// and preemption must be exact (export/release/import resumes the identical
// token stream).

#ifndef AEGAEON_INFER_TINY_LLM_H_
#define AEGAEON_INFER_TINY_LLM_H_

#include <cstdint>
#include <vector>

#include "infer/paged_kv.h"
#include "infer/tensor.h"

namespace aegaeon {

struct TinyLlmConfig {
  int vocab = 128;
  int hidden = 48;
  int layers = 2;
  int heads = 4;
  int kv_heads = 2;
  int ffn = 96;

  int head_dim() const { return hidden / heads; }

  PagedKvStore::Geometry KvGeometry(int tokens_per_block = 8) const {
    PagedKvStore::Geometry geometry;
    geometry.layers = layers;
    geometry.kv_heads = kv_heads;
    geometry.head_dim = head_dim();
    geometry.tokens_per_block = tokens_per_block;
    return geometry;
  }
};

class TinyLlm {
 public:
  // Deterministic weight initialization from `seed`.
  TinyLlm(TinyLlmConfig config, uint64_t seed);

  const TinyLlmConfig& config() const { return config_; }

  // Runs one token through the model at position `pos` (== kv.tokens()),
  // appending this position's K/V to `kv`. Returns the logits over the
  // vocabulary. Returns an empty vector if the KV arena is exhausted.
  std::vector<float> ForwardToken(int token, int pos, PagedKvStore& kv) const;

  // Deterministic argmax sampling (lowest id wins ties).
  int Greedy(const std::vector<float>& logits) const;

  // Prefills `prompt` and greedily generates up to `max_new` tokens (stops
  // early only on arena exhaustion). Returns the generated ids.
  std::vector<int> Generate(const std::vector<int>& prompt, int max_new,
                            PagedKvStore& kv) const;

 private:
  struct Layer {
    Matrix wq;      // hidden x hidden
    Matrix wk;      // hidden x (kv_heads * head_dim)
    Matrix wv;      // hidden x (kv_heads * head_dim)
    Matrix wo;      // hidden x hidden
    Matrix w_gate;  // hidden x ffn
    Matrix w_up;    // hidden x ffn
    Matrix w_down;  // ffn x hidden
    std::vector<float> rms_attn;
    std::vector<float> rms_ffn;
  };

  TinyLlmConfig config_;
  Matrix embedding_;  // vocab x hidden
  Matrix lm_head_;    // hidden x vocab
  std::vector<float> rms_final_;
  std::vector<Layer> layers_;
};

}  // namespace aegaeon

#endif  // AEGAEON_INFER_TINY_LLM_H_
