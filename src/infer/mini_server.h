// MiniAegaeon: the paper's token-level multi-model auto-scaling executed
// FOR REAL at toy scale. Several tiny transformers share one KV arena (the
// "GPU"); only one model is active at a time, and switching models
// preemptively offloads every other model's KV (export + free) and restores
// the incoming model's requests (import) — exactly the Figure 2(b) schedule,
// but with genuine attention computation instead of simulated latencies.
//
// The integration contract it lets tests assert: every request served under
// arbitrary token-level preemption produces the same token stream as a
// dedicated, uninterrupted run of its model.

#ifndef AEGAEON_INFER_MINI_SERVER_H_
#define AEGAEON_INFER_MINI_SERVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "infer/paged_kv.h"
#include "infer/tiny_llm.h"

namespace aegaeon {

class MiniAegaeon {
 public:
  struct MiniRequest {
    int id = 0;
    int model = 0;
    std::vector<int> prompt;
    int max_new = 0;
    std::vector<int> output;
    bool prefilled = false;
    bool done() const { return static_cast<int>(output.size()) >= max_new; }
  };

  // `model_count` tiny models with distinct seeded weights share a KV arena
  // of `arena_bytes`.
  MiniAegaeon(int model_count, TinyLlmConfig config, size_t arena_bytes, uint64_t seed = 1,
              int tokens_per_block = 8);
  ~MiniAegaeon();

  // Enqueues a request; returns its id.
  int Submit(int model, std::vector<int> prompt, int max_new);

  // Runs weighted-round-robin turns of `quota_tokens` per request across
  // models (switching models between turns, with full KV offload/restore)
  // until every request completes. Returns false if the arena cannot hold
  // even a single active request (no progress possible).
  bool RunToCompletion(int quota_tokens);

  const MiniRequest& request(int id) const { return requests_[id]; }
  size_t request_count() const { return requests_.size(); }

  // Dedicated-run reference for a request's workload (fresh arena, no
  // sharing) — the ground truth the served output must equal.
  std::vector<int> DedicatedReference(int model, const std::vector<int>& prompt,
                                      int max_new) const;

  uint64_t model_switches() const { return model_switches_; }
  uint64_t kv_swaps() const { return kv_swaps_; }
  const TinyLlm& model(int m) const { return *models_[m]; }

 private:
  struct RequestState {
    std::unique_ptr<PagedKvStore> kv;                 // resident KV (if any)
    std::optional<PagedKvStore::Snapshot> snapshot;   // offloaded KV (if any)
    int next_token = -1;                              // last sampled token
  };

  // Makes `model` the active one: offloads every other model's resident KV.
  void ActivateModel(int model);
  // Ensures request `id`'s KV is resident; restores from its snapshot or
  // (first turn) prefills from scratch. False on arena exhaustion.
  bool EnsureResident(int id);
  void Offload(int id);
  // Runs up to `quota_tokens` decode steps for request `id`.
  bool DecodeTurn(int id, int quota_tokens);

  TinyLlmConfig config_;
  int tokens_per_block_;
  std::vector<std::unique_ptr<TinyLlm>> models_;
  std::unique_ptr<KvArena> arena_;
  std::vector<MiniRequest> requests_;
  std::vector<RequestState> states_;
  int active_model_ = -1;
  uint64_t model_switches_ = 0;
  uint64_t kv_swaps_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_INFER_MINI_SERVER_H_
