#include "mem/bump_allocator.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

std::optional<uint64_t> BumpAllocator::Alloc(uint64_t bytes, uint64_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0 && "alignment must be a power of 2");
  uint64_t aligned = (offset_ + alignment - 1) & ~(alignment - 1);
  if (aligned > capacity_ || capacity_ - aligned < bytes) {
    return std::nullopt;
  }
  offset_ = aligned + bytes;
  high_water_ = std::max(high_water_, offset_);
  return aligned;
}

void BumpAllocator::ResetKeepingFront(uint64_t bytes) {
  assert(bytes <= capacity_);
  offset_ = std::min(bytes, offset_);
}

void* BumpArena::Allocate(size_t bytes, size_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0 &&
         "alignment must be a power of 2");
  if (bytes == 0) {
    bytes = 1;  // distinct non-null pointers, like operator new
  }
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      // Align the pointer value itself so over-aligned requests are honored
      // regardless of the chunk base's own alignment.
      const uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
      const uintptr_t aligned =
          (base + offset_ + alignment - 1) & ~static_cast<uintptr_t>(alignment - 1);
      const size_t head = static_cast<size_t>(aligned - base);
      if (head <= chunk.size && chunk.size - head >= bytes) {
        offset_ = head + bytes;
        used_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // Does not fit: abandon the tail of this chunk and try the next
      // retained one (Reset() path) before growing.
      ++current_;
      offset_ = 0;
      continue;
    }
    // Chunk data from operator new[] is aligned for std::max_align_t; an
    // over-aligned request pads so the in-chunk alignment math stays valid.
    const size_t slack = alignment > alignof(std::max_align_t) ? alignment : 0;
    const size_t size = std::max(chunk_bytes_, bytes + slack);
    Chunk chunk;
    chunk.data = std::make_unique<unsigned char[]>(size);
    chunk.size = size;
    reserved_ += size;
    ++chunk_allocs_;
    chunks_.push_back(std::move(chunk));
  }
}

}  // namespace aegaeon
