#include "mem/bump_allocator.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

std::optional<uint64_t> BumpAllocator::Alloc(uint64_t bytes, uint64_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0 && "alignment must be a power of 2");
  uint64_t aligned = (offset_ + alignment - 1) & ~(alignment - 1);
  if (aligned > capacity_ || capacity_ - aligned < bytes) {
    return std::nullopt;
  }
  offset_ = aligned + bytes;
  high_water_ = std::max(high_water_, offset_);
  return aligned;
}

void BumpAllocator::ResetKeepingFront(uint64_t bytes) {
  assert(bytes <= capacity_);
  offset_ = std::min(bytes, offset_);
}

}  // namespace aegaeon
