// The host-memory Model Cache of §5.2 ("Quick model loading").
//
// Raw tensor chunks of model checkpoints are cached in a shared host memory
// region. A cache hit loads weights GPU-ward at the optimized effective PCIe
// bandwidth via the per-GPU page-locked Stage Buffer; a miss falls back to
// an optional local SSD tier (ServerlessLLM-style multi-tier checkpoint
// storage) and finally to the remote registry (Figure 5) at network speed.
// DRAM evictions demote to the SSD tier instead of being dropped.
//
// This class makes placement/eviction decisions and reports fetch latencies;
// the engine's auto-scaler turns them into simulated transfers.

#ifndef AEGAEON_MEM_MODEL_CACHE_H_
#define AEGAEON_MEM_MODEL_CACHE_H_

#include <cstdint>
#include <list>
#include <map>

#include "model/registry.h"
#include "sim/time.h"

namespace aegaeon {

class ModelCache {
 public:
  // `capacity_bytes`: DRAM reserved for cached checkpoints.
  // `remote_bw_bytes_per_s`: bandwidth to the remote model registry.
  ModelCache(double capacity_bytes, double remote_bw_bytes_per_s);

  // Enables the local SSD tier: `ssd_capacity_bytes` of checkpoint storage
  // read at `ssd_bw_bytes_per_s` (NVMe-class).
  void EnableSsdTier(double ssd_capacity_bytes, double ssd_bw_bytes_per_s);

  struct LoadPlan {
    bool cache_hit = false;
    bool ssd_hit = false;
    // Time to bring the checkpoint into the Model Cache (0 on a DRAM hit;
    // an SSD read or a registry fetch otherwise).
    Duration registry_fetch = 0.0;
  };

  // Ensures `model`'s checkpoint (`bytes` large) is resident, evicting
  // least-recently-used unpinned entries as needed, and returns how long
  // residency takes to establish. Also bumps the entry's recency and pins it
  // until Unpin() (a model being copied to a GPU must not be evicted).
  LoadPlan PrepareLoad(ModelId model, double bytes);

  // Releases the loading pin taken by PrepareLoad.
  void Unpin(ModelId model);

  // Asynchronously warms the cache (used before serving starts and by the
  // prefetcher). Follows the same eviction policy; does not pin.
  LoadPlan Warm(ModelId model, double bytes);

  bool Resident(ModelId model) const { return entries_.count(model) > 0; }
  double used_bytes() const { return used_; }
  double capacity_bytes() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t ssd_hits() const { return ssd_hits_; }
  bool OnSsd(ModelId model) const;
  double ssd_used_bytes() const { return ssd_used_; }

 private:
  struct Entry {
    double bytes = 0.0;
    int pins = 0;
    std::list<ModelId>::iterator lru_pos;
  };

  // Makes room for `bytes`; returns false if impossible (too many pins).
  bool EvictFor(double bytes);
  LoadPlan Insert(ModelId model, double bytes, bool pin);
  void Touch(ModelId model);
  // Writes an evicted checkpoint to the SSD tier (LRU within the tier).
  void DemoteToSsd(ModelId model, double bytes);

  double capacity_;
  double remote_bw_;
  double used_ = 0.0;
  // Ordered maps: eviction decisions must not depend on hash iteration
  // order (see tools/determinism_lint.sh).
  std::map<ModelId, Entry> entries_;
  std::list<ModelId> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;

  // SSD tier (disabled until EnableSsdTier).
  double ssd_capacity_ = 0.0;
  double ssd_bw_ = 0.0;
  double ssd_used_ = 0.0;
  std::map<ModelId, double> ssd_entries_;  // model -> bytes
  std::list<ModelId> ssd_lru_;
  uint64_t ssd_hits_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_MEM_MODEL_CACHE_H_
