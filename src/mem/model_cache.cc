#include "mem/model_cache.h"

#include <cassert>

namespace aegaeon {

ModelCache::ModelCache(double capacity_bytes, double remote_bw_bytes_per_s)
    : capacity_(capacity_bytes), remote_bw_(remote_bw_bytes_per_s) {
  assert(capacity_ > 0.0);
  assert(remote_bw_ > 0.0);
}

void ModelCache::EnableSsdTier(double ssd_capacity_bytes, double ssd_bw_bytes_per_s) {
  assert(ssd_capacity_bytes >= 0.0);
  assert(ssd_bw_bytes_per_s > 0.0);
  ssd_capacity_ = ssd_capacity_bytes;
  ssd_bw_ = ssd_bw_bytes_per_s;
}

bool ModelCache::OnSsd(ModelId model) const { return ssd_entries_.count(model) > 0; }

void ModelCache::DemoteToSsd(ModelId model, double bytes) {
  if (ssd_capacity_ <= 0.0 || bytes > ssd_capacity_) {
    return;
  }
  if (ssd_entries_.count(model) > 0) {
    return;  // already present; keep its LRU position
  }
  while (ssd_used_ + bytes > ssd_capacity_ && !ssd_lru_.empty()) {
    ModelId victim = ssd_lru_.back();
    ssd_lru_.pop_back();
    ssd_used_ -= ssd_entries_.at(victim);
    ssd_entries_.erase(victim);
  }
  ssd_entries_.emplace(model, bytes);
  ssd_lru_.push_front(model);
  ssd_used_ += bytes;
}

void ModelCache::Touch(ModelId model) {
  Entry& entry = entries_.at(model);
  lru_.erase(entry.lru_pos);
  lru_.push_front(model);
  entry.lru_pos = lru_.begin();
}

bool ModelCache::EvictFor(double bytes) {
  if (bytes > capacity_) {
    return false;
  }
  while (used_ + bytes > capacity_) {
    // Scan from the LRU end for an unpinned victim.
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (entries_.at(*it).pins == 0) {
        victim = std::prev(it.base());
        break;
      }
    }
    if (victim == lru_.end()) {
      return false;  // everything pinned
    }
    // Evicted checkpoints demote to the SSD tier (when enabled) so a later
    // reload costs an NVMe read instead of a registry fetch.
    DemoteToSsd(*victim, entries_.at(*victim).bytes);
    used_ -= entries_.at(*victim).bytes;
    entries_.erase(*victim);
    lru_.erase(victim);
    ++evictions_;
  }
  return true;
}

ModelCache::LoadPlan ModelCache::Insert(ModelId model, double bytes, bool pin) {
  LoadPlan plan;
  auto it = entries_.find(model);
  if (it != entries_.end()) {
    plan.cache_hit = true;
    ++hits_;
    Touch(model);
    if (pin) {
      it->second.pins++;
    }
    return plan;
  }
  ++misses_;
  plan.cache_hit = false;
  auto ssd_it = ssd_entries_.find(model);
  if (ssd_it != ssd_entries_.end()) {
    plan.ssd_hit = true;
    plan.registry_fetch = bytes / ssd_bw_;
    ++ssd_hits_;
    // Promote: bump SSD LRU position (the copy stays on SSD as well).
    ssd_lru_.remove(model);
    ssd_lru_.push_front(model);
  } else {
    plan.registry_fetch = bytes / remote_bw_;
  }
  if (!EvictFor(bytes)) {
    // Cannot cache (e.g. capacity exceeded by pins): the load still works,
    // streaming straight through the stage buffer, but nothing is retained.
    return plan;
  }
  lru_.push_front(model);
  Entry entry;
  entry.bytes = bytes;
  entry.pins = pin ? 1 : 0;
  entry.lru_pos = lru_.begin();
  entries_.emplace(model, entry);
  used_ += bytes;
  return plan;
}

ModelCache::LoadPlan ModelCache::PrepareLoad(ModelId model, double bytes) {
  return Insert(model, bytes, /*pin=*/true);
}

void ModelCache::Unpin(ModelId model) {
  auto it = entries_.find(model);
  if (it != entries_.end() && it->second.pins > 0) {
    it->second.pins--;
  }
}

ModelCache::LoadPlan ModelCache::Warm(ModelId model, double bytes) {
  return Insert(model, bytes, /*pin=*/false);
}

}  // namespace aegaeon
