// The self-managed VRAM buffer of §5.2.
//
// Aegaeon requests all VRAM needed for weights and KV cache in a single
// allocation at startup and manages it with bump allocation: allocations
// advance a pointer, and deallocation is an O(1) pointer reset. This
// bypasses the tensor library's caching allocator and removes the garbage
// collection pass from the scale-up critical path.
//
// The allocator also supports the prefetch promotion used by quick model
// loading (Figure 9, step 3.b): a model prefetched *behind* the running
// model is moved to the front of the buffer with an on-device copy, which is
// modeled by resetting the bump pointer to just past the promoted region.

#ifndef AEGAEON_MEM_BUMP_ALLOCATOR_H_
#define AEGAEON_MEM_BUMP_ALLOCATOR_H_

#include <cstdint>
#include <optional>

namespace aegaeon {

class BumpAllocator {
 public:
  explicit BumpAllocator(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Allocates `bytes` aligned to `alignment` (a power of two). Returns the
  // offset of the allocation within the buffer, or nullopt on exhaustion.
  std::optional<uint64_t> Alloc(uint64_t bytes, uint64_t alignment = 256);

  // Frees everything: O(1).
  void Reset() { offset_ = 0; }

  // Frees everything except a front region of `bytes` (used after promoting
  // a prefetched model to the start of the buffer).
  void ResetKeepingFront(uint64_t bytes);

  uint64_t used() const { return offset_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t remaining() const { return capacity_ - offset_; }
  uint64_t high_water() const { return high_water_; }

 private:
  uint64_t capacity_;
  uint64_t offset_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_MEM_BUMP_ALLOCATOR_H_
