// Bump allocation, in two flavors.
//
// BumpAllocator — the self-managed VRAM buffer of §5.2. Aegaeon requests
// all VRAM needed for weights and KV cache in a single allocation at
// startup and manages it with bump allocation: allocations advance a
// pointer, and deallocation is an O(1) pointer reset. This bypasses the
// tensor library's caching allocator and removes the garbage collection
// pass from the scale-up critical path. It also supports the prefetch
// promotion used by quick model loading (Figure 9, step 3.b): a model
// prefetched *behind* the running model is moved to the front of the buffer
// with an on-device copy, modeled by resetting the bump pointer to just
// past the promoted region. BumpAllocator tracks offsets only — the
// simulation never touches real VRAM.
//
// BumpArena / ArenaAllocator — real host memory for the sharded fleet's
// per-epoch scratch (mailbox boxes, delivery batches). A BumpArena hands
// out pointers from a chain of chunks; Reset() rewinds to the first chunk
// but *retains* every chunk, so after a warm-up run the arena satisfies all
// allocations without touching malloc — the property the fleet's advance
// loop relies on for zero steady-state allocation. Not thread-safe: the
// fleet gives each concurrent producer (shard) its own arena.

#ifndef AEGAEON_MEM_BUMP_ALLOCATOR_H_
#define AEGAEON_MEM_BUMP_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace aegaeon {

class BumpAllocator {
 public:
  explicit BumpAllocator(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  // Allocates `bytes` aligned to `alignment` (a power of two). Returns the
  // offset of the allocation within the buffer, or nullopt on exhaustion.
  std::optional<uint64_t> Alloc(uint64_t bytes, uint64_t alignment = 256);

  // Frees everything: O(1).
  void Reset() { offset_ = 0; }

  // Frees everything except a front region of `bytes` (used after promoting
  // a prefetched model to the start of the buffer).
  void ResetKeepingFront(uint64_t bytes);

  uint64_t used() const { return offset_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t remaining() const { return capacity_ - offset_; }
  uint64_t high_water() const { return high_water_; }

 private:
  uint64_t capacity_;
  uint64_t offset_ = 0;
  uint64_t high_water_ = 0;
};

// A chunked host-memory bump arena. Allocate() is pointer-bump fast;
// individual frees do not exist. Reset() rewinds the arena but keeps every
// chunk, so steady-state use (allocate a bounded working set, reset, repeat
// — or let reused containers hold their peak capacity) performs no heap
// allocation after warm-up. Outstanding pointers are invalidated by Reset()
// and by destruction, never by other Allocate() calls.
class BumpArena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit BumpArena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  // Returns `bytes` of storage aligned to `alignment` (a power of two).
  // Requests larger than the chunk size get a dedicated chunk.
  void* Allocate(size_t bytes, size_t alignment);

  // Rewinds to the first chunk, retaining all chunks for reuse. Outstanding
  // allocations become invalid.
  void Reset() {
    current_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  // Bytes handed out since the last Reset() (including alignment padding).
  size_t bytes_used() const { return used_; }
  // Total chunk bytes held, reused across Reset() cycles.
  size_t bytes_reserved() const { return reserved_; }
  size_t chunks() const { return chunks_.size(); }
  // Heap allocations performed by the arena itself (== chunks created);
  // flat across steady-state epochs, which is what the tests assert.
  uint64_t chunk_allocs() const { return chunk_allocs_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  size_t chunk_bytes_;
  size_t current_ = 0;   // chunk being bumped
  size_t offset_ = 0;    // within chunks_[current_]
  size_t used_ = 0;
  size_t reserved_ = 0;
  uint64_t chunk_allocs_ = 0;
};

// Minimal STL allocator over a BumpArena: allocate() bumps the arena,
// deallocate() is a no-op (Reset() reclaims everything at once). With a
// null arena it degrades to plain operator new/delete, so arena-backed
// containers stay usable in contexts that have no arena. Equality compares
// the arena, per the allocator requirements: containers swap/propagate
// correctly only between allocators drawing from the same arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() = default;
  explicit ArenaAllocator(BumpArena* arena) : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, size_t /*n*/) {
    if (arena_ == nullptr) {
      ::operator delete(p);
    }
    // Arena-backed storage is reclaimed wholesale by BumpArena::Reset().
  }

  BumpArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  BumpArena* arena_ = nullptr;
};

}  // namespace aegaeon

#endif  // AEGAEON_MEM_BUMP_ALLOCATOR_H_
