#include "mem/slab_allocator.h"

#include <algorithm>
#include <cassert>

#include "sanitizer/simsan.h"

namespace aegaeon {

SlabAllocator::SlabAllocator(uint64_t total_bytes, uint64_t slab_bytes)
    : slab_bytes_(slab_bytes) {
  assert(slab_bytes > 0);
  size_t slab_count = static_cast<size_t>(total_bytes / slab_bytes);
  slabs_.resize(slab_count);
  free_slabs_.reserve(slab_count);
  // Pop from the back; seed in reverse so slab 0 is used first.
  for (size_t i = slab_count; i-- > 0;) {
    free_slabs_.push_back(static_cast<uint32_t>(i));
  }
}

SlabAllocator::~SlabAllocator() { simsan::NoteAllocatorDestroyed(this); }

bool SlabAllocator::RegisterShape(ShapeClassId shape, uint64_t block_bytes) {
  if (block_bytes == 0 || block_bytes > slab_bytes_) {
    return false;
  }
  if (shape >= shape_states_.size()) {
    shape_states_.resize(shape + 1);
  }
  ShapeState& state = shape_states_[shape];
  if (state.block_bytes == 0) {  // unregistered slot
    state.block_bytes = block_bytes;
    return true;
  }
  return state.block_bytes == block_bytes;
}

int32_t SlabAllocator::AcquireSlab(ShapeClassId shape) {
  if (free_slabs_.empty()) {
    return -1;
  }
  uint32_t slab_id = free_slabs_.back();
  free_slabs_.pop_back();
  ShapeState& state = shape_states_[shape];
  Slab& slab = slabs_[slab_id];
  slab.shape = shape;
  slab.block_capacity = static_cast<uint32_t>(slab_bytes_ / state.block_bytes);
  slab.used_count = 0;
  slab.free_indices.clear();
  slab.free_indices.reserve(slab.block_capacity);
  for (uint32_t i = slab.block_capacity; i-- > 0;) {
    slab.free_indices.push_back(i);
  }
  state.held_slabs++;
  state.partial_slabs.push_back(slab_id);
  return static_cast<int32_t>(slab_id);
}

std::vector<BlockRef> SlabAllocator::Alloc(ShapeClassId shape, size_t count) {
  assert(shape < shape_states_.size() && shape_states_[shape].block_bytes != 0 &&
         "shape must be registered before Alloc");
  ShapeState& state = shape_states_[shape];

  std::vector<BlockRef> blocks;
  blocks.reserve(count);
  while (blocks.size() < count) {
    // Find a slab of this shape with free blocks, pruning stale entries
    // (slabs that were reclaimed or filled up since being listed).
    int32_t slab_id = -1;
    while (!state.partial_slabs.empty()) {
      uint32_t candidate = state.partial_slabs.back();
      Slab& slab = slabs_[candidate];
      if (slab.shape == shape && !slab.free_indices.empty()) {
        slab_id = static_cast<int32_t>(candidate);
        break;
      }
      state.partial_slabs.pop_back();
    }
    if (slab_id < 0) {
      slab_id = AcquireSlab(shape);
    }
    if (slab_id < 0) {
      // Out of memory: roll back (all-or-nothing semantics). Shadow state
      // already saw these blocks allocated, so the rollback frees balance.
      simsan::NoteAlloc(this, blocks.data(), blocks.size());
      Free(blocks);
      return {};
    }
    Slab& slab = slabs_[slab_id];
    while (blocks.size() < count && !slab.free_indices.empty()) {
      uint32_t index = slab.free_indices.back();
      slab.free_indices.pop_back();
      slab.used_count++;
      state.used_blocks++;  // counted per block so a rollback stays balanced
      blocks.push_back(BlockRef{static_cast<uint32_t>(slab_id), index});
    }
    if (slab.free_indices.empty() && !state.partial_slabs.empty() &&
        state.partial_slabs.back() == static_cast<uint32_t>(slab_id)) {
      state.partial_slabs.pop_back();
    }
  }
  MaybeUpdatePeaks(state);
  UpdateGlobalPeak();
  simsan::NoteAlloc(this, blocks.data(), blocks.size());
  return blocks;
}

void SlabAllocator::FreeOne(BlockRef block) {
  simsan::NoteFree(this, block);
  Slab& slab = slabs_.at(block.slab);
  assert(slab.shape != Slab::kUnassigned && "freeing into an unassigned slab");
  assert(slab.used_count > 0);
  ShapeState& state = shape_states_[slab.shape];
  slab.free_indices.push_back(block.index);
  slab.used_count--;
  state.used_blocks--;
  if (slab.used_count == 0) {
    // Reclaim: the slab returns to the free pool and can serve any shape.
    state.held_slabs--;
    slab.shape = Slab::kUnassigned;
    slab.free_indices.clear();
    free_slabs_.push_back(block.slab);
  } else {
    state.partial_slabs.push_back(block.slab);
  }
}

void SlabAllocator::Free(const std::vector<BlockRef>& blocks) {
  for (const BlockRef& block : blocks) {
    FreeOne(block);
  }
}

uint64_t SlabAllocator::used_bytes(ShapeClassId shape) const {
  if (shape >= shape_states_.size()) {
    return 0;
  }
  const ShapeState& state = shape_states_[shape];
  return state.used_blocks * state.block_bytes;
}

uint64_t SlabAllocator::held_bytes(ShapeClassId shape) const {
  if (shape >= shape_states_.size() || shape_states_[shape].block_bytes == 0) {
    return 0;
  }
  return shape_states_[shape].held_slabs * slab_bytes_;
}

uint64_t SlabAllocator::total_used_bytes() const {
  uint64_t total = 0;
  for (const ShapeState& state : shape_states_) {
    total += state.used_blocks * state.block_bytes;
  }
  return total;
}

uint64_t SlabAllocator::total_held_bytes() const {
  uint64_t total = 0;
  for (const ShapeState& state : shape_states_) {
    total += state.held_slabs * slab_bytes_;
  }
  return total;
}

void SlabAllocator::MaybeUpdatePeaks(ShapeState& state) {
  uint64_t held = state.held_slabs * slab_bytes_;
  if (held >= state.peak_held_bytes) {
    state.peak_held_bytes = held;
    state.used_at_peak = state.used_blocks * state.block_bytes;
  }
}

void SlabAllocator::UpdateGlobalPeak() {
  uint64_t held = total_held_bytes();
  if (held >= global_peak_held_) {
    global_peak_held_ = held;
    global_used_at_peak_ = total_used_bytes();
  }
}

SlabAllocator::ShapeStats SlabAllocator::shape_stats(ShapeClassId shape) const {
  ShapeStats stats;
  if (shape >= shape_states_.size() || shape_states_[shape].block_bytes == 0) {
    return stats;
  }
  const ShapeState& state = shape_states_[shape];
  stats.block_bytes = state.block_bytes;
  stats.used_bytes = state.used_blocks * state.block_bytes;
  stats.held_bytes = state.held_slabs * slab_bytes_;
  stats.peak_held_bytes = state.peak_held_bytes;
  stats.used_at_peak = state.used_at_peak;
  return stats;
}

std::vector<ShapeClassId> SlabAllocator::shapes() const {
  std::vector<ShapeClassId> out;
  for (ShapeClassId shape = 0; shape < shape_states_.size(); shape++) {
    if (shape_states_[shape].block_bytes != 0) {
      out.push_back(shape);
    }
  }
  return out;
}

SlabAllocator::ShapeStats SlabAllocator::overall_stats() const {
  ShapeStats stats;
  stats.used_bytes = total_used_bytes();
  stats.held_bytes = total_held_bytes();
  stats.peak_held_bytes = global_peak_held_;
  stats.used_at_peak = global_used_at_peak_;
  return stats;
}

}  // namespace aegaeon
