#include "mem/slab_allocator.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

SlabAllocator::SlabAllocator(uint64_t total_bytes, uint64_t slab_bytes)
    : slab_bytes_(slab_bytes) {
  assert(slab_bytes > 0);
  size_t slab_count = static_cast<size_t>(total_bytes / slab_bytes);
  slabs_.resize(slab_count);
  free_slabs_.reserve(slab_count);
  // Pop from the back; seed in reverse so slab 0 is used first.
  for (size_t i = slab_count; i-- > 0;) {
    free_slabs_.push_back(static_cast<uint32_t>(i));
  }
}

bool SlabAllocator::RegisterShape(ShapeClassId shape, uint64_t block_bytes) {
  if (block_bytes == 0 || block_bytes > slab_bytes_) {
    return false;
  }
  auto [it, inserted] = shape_states_.try_emplace(shape);
  if (inserted) {
    it->second.block_bytes = block_bytes;
    return true;
  }
  return it->second.block_bytes == block_bytes;
}

int32_t SlabAllocator::AcquireSlab(ShapeClassId shape) {
  if (free_slabs_.empty()) {
    return -1;
  }
  uint32_t slab_id = free_slabs_.back();
  free_slabs_.pop_back();
  ShapeState& state = shape_states_.at(shape);
  Slab& slab = slabs_[slab_id];
  slab.shape = shape;
  slab.block_capacity = static_cast<uint32_t>(slab_bytes_ / state.block_bytes);
  slab.used_count = 0;
  slab.free_indices.clear();
  slab.free_indices.reserve(slab.block_capacity);
  for (uint32_t i = slab.block_capacity; i-- > 0;) {
    slab.free_indices.push_back(i);
  }
  state.held_slabs++;
  state.partial_slabs.push_back(slab_id);
  return static_cast<int32_t>(slab_id);
}

std::vector<BlockRef> SlabAllocator::Alloc(ShapeClassId shape, size_t count) {
  auto it = shape_states_.find(shape);
  assert(it != shape_states_.end() && "shape must be registered before Alloc");
  ShapeState& state = it->second;

  std::vector<BlockRef> blocks;
  blocks.reserve(count);
  while (blocks.size() < count) {
    // Find a slab of this shape with free blocks, pruning stale entries
    // (slabs that were reclaimed or filled up since being listed).
    int32_t slab_id = -1;
    while (!state.partial_slabs.empty()) {
      uint32_t candidate = state.partial_slabs.back();
      Slab& slab = slabs_[candidate];
      if (slab.shape == shape && !slab.free_indices.empty()) {
        slab_id = static_cast<int32_t>(candidate);
        break;
      }
      state.partial_slabs.pop_back();
    }
    if (slab_id < 0) {
      slab_id = AcquireSlab(shape);
    }
    if (slab_id < 0) {
      // Out of memory: roll back (all-or-nothing semantics).
      Free(blocks);
      return {};
    }
    Slab& slab = slabs_[slab_id];
    while (blocks.size() < count && !slab.free_indices.empty()) {
      uint32_t index = slab.free_indices.back();
      slab.free_indices.pop_back();
      slab.used_count++;
      state.used_blocks++;  // counted per block so a rollback stays balanced
      blocks.push_back(BlockRef{static_cast<uint32_t>(slab_id), index});
    }
    if (slab.free_indices.empty() && !state.partial_slabs.empty() &&
        state.partial_slabs.back() == static_cast<uint32_t>(slab_id)) {
      state.partial_slabs.pop_back();
    }
  }
  MaybeUpdatePeaks(state);
  UpdateGlobalPeak();
  return blocks;
}

void SlabAllocator::FreeOne(BlockRef block) {
  Slab& slab = slabs_.at(block.slab);
  assert(slab.shape != Slab::kUnassigned && "freeing into an unassigned slab");
  assert(slab.used_count > 0);
  ShapeState& state = shape_states_.at(slab.shape);
  slab.free_indices.push_back(block.index);
  slab.used_count--;
  state.used_blocks--;
  if (slab.used_count == 0) {
    // Reclaim: the slab returns to the free pool and can serve any shape.
    state.held_slabs--;
    slab.shape = Slab::kUnassigned;
    slab.free_indices.clear();
    free_slabs_.push_back(block.slab);
  } else {
    state.partial_slabs.push_back(block.slab);
  }
}

void SlabAllocator::Free(const std::vector<BlockRef>& blocks) {
  for (const BlockRef& block : blocks) {
    FreeOne(block);
  }
}

uint64_t SlabAllocator::used_bytes(ShapeClassId shape) const {
  auto it = shape_states_.find(shape);
  return it == shape_states_.end() ? 0 : it->second.used_blocks * it->second.block_bytes;
}

uint64_t SlabAllocator::held_bytes(ShapeClassId shape) const {
  auto it = shape_states_.find(shape);
  return it == shape_states_.end() ? 0 : it->second.held_slabs * slab_bytes_;
}

uint64_t SlabAllocator::total_used_bytes() const {
  uint64_t total = 0;
  for (const auto& [shape, state] : shape_states_) {
    total += state.used_blocks * state.block_bytes;
  }
  return total;
}

uint64_t SlabAllocator::total_held_bytes() const {
  uint64_t total = 0;
  for (const auto& [shape, state] : shape_states_) {
    total += state.held_slabs * slab_bytes_;
  }
  return total;
}

void SlabAllocator::MaybeUpdatePeaks(ShapeState& state) {
  uint64_t held = state.held_slabs * slab_bytes_;
  if (held >= state.peak_held_bytes) {
    state.peak_held_bytes = held;
    state.used_at_peak = state.used_blocks * state.block_bytes;
  }
}

void SlabAllocator::UpdateGlobalPeak() {
  uint64_t held = total_held_bytes();
  if (held >= global_peak_held_) {
    global_peak_held_ = held;
    global_used_at_peak_ = total_used_bytes();
  }
}

SlabAllocator::ShapeStats SlabAllocator::shape_stats(ShapeClassId shape) const {
  ShapeStats stats;
  auto it = shape_states_.find(shape);
  if (it == shape_states_.end()) {
    return stats;
  }
  const ShapeState& state = it->second;
  stats.block_bytes = state.block_bytes;
  stats.used_bytes = state.used_blocks * state.block_bytes;
  stats.held_bytes = state.held_slabs * slab_bytes_;
  stats.peak_held_bytes = state.peak_held_bytes;
  stats.used_at_peak = state.used_at_peak;
  return stats;
}

std::vector<ShapeClassId> SlabAllocator::shapes() const {
  std::vector<ShapeClassId> out;
  out.reserve(shape_states_.size());
  for (const auto& [shape, state] : shape_states_) {
    out.push_back(shape);
  }
  std::sort(out.begin(), out.end());
  return out;
}

SlabAllocator::ShapeStats SlabAllocator::overall_stats() const {
  ShapeStats stats;
  stats.used_bytes = total_used_bytes();
  stats.held_bytes = total_held_bytes();
  stats.peak_held_bytes = global_peak_held_;
  stats.used_at_peak = global_used_at_peak_;
  return stats;
}

}  // namespace aegaeon
