// Slab allocation for unified KV caches (§5.2 "Unified KV cache").
//
// The KV-cache block size differs per model (Table 1), so a naive
// fixed-partition cache fragments badly. Aegaeon divides each cache region
// (VRAM or DRAM) into fixed-size slabs; a slab is dynamically assigned to
// one *shape class* and then serves fixed-size blocks of that shape. A slab
// whose blocks are all free is reclaimed and can be re-assigned to a
// different shape.

#ifndef AEGAEON_MEM_SLAB_ALLOCATOR_H_
#define AEGAEON_MEM_SLAB_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aegaeon {

// Identifies a shape class (a distinct KV block geometry).
using ShapeClassId = uint32_t;

// A block within the slab allocator.
struct BlockRef {
  uint32_t slab = 0;
  uint32_t index = 0;

  uint64_t Packed() const { return (static_cast<uint64_t>(slab) << 32) | index; }
  bool operator==(const BlockRef& o) const { return slab == o.slab && index == o.index; }
};

class SlabAllocator {
 public:
  // `total_bytes` is carved into floor(total/slab_bytes) slabs.
  SlabAllocator(uint64_t total_bytes, uint64_t slab_bytes);
  ~SlabAllocator();

  // Identity-tracked by SimSan (blocks are keyed by the allocator address),
  // so the allocator must stay put once blocks are handed out.
  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Declares a shape class whose blocks are `block_bytes` each. Blocks
  // larger than a slab are rejected (returns false).
  bool RegisterShape(ShapeClassId shape, uint64_t block_bytes);

  // Allocates `count` blocks of `shape`. Returns the blocks, or an empty
  // vector if the request cannot be satisfied in full (all-or-nothing).
  std::vector<BlockRef> Alloc(ShapeClassId shape, size_t count);

  // Returns blocks to their slabs; fully-freed slabs are reclaimed.
  void Free(const std::vector<BlockRef>& blocks);
  void FreeOne(BlockRef block);

  // --- Introspection ----------------------------------------------------
  size_t total_slabs() const { return slabs_.size(); }
  size_t free_slabs() const { return free_slabs_.size(); }
  uint64_t slab_bytes() const { return slab_bytes_; }

  // Blocks of `shape` currently allocated.
  uint64_t used_bytes(ShapeClassId shape) const;
  // Bytes of slabs currently assigned to `shape` (>= used_bytes).
  uint64_t held_bytes(ShapeClassId shape) const;

  uint64_t total_used_bytes() const;
  uint64_t total_held_bytes() const;

  struct ShapeStats {
    uint64_t block_bytes = 0;
    uint64_t used_bytes = 0;       // live blocks right now
    uint64_t held_bytes = 0;       // slabs assigned right now
    uint64_t peak_held_bytes = 0;  // high-water of held_bytes
    uint64_t used_at_peak = 0;     // used_bytes when the peak was reached
    // Internal fragmentation at the allocation peak, the Figure 16 metric:
    // (held - used) / held at peak hold.
    double FragmentationAtPeak() const {
      return peak_held_bytes == 0
                 ? 0.0
                 : static_cast<double>(peak_held_bytes - used_at_peak) / peak_held_bytes;
    }
  };
  ShapeStats shape_stats(ShapeClassId shape) const;
  std::vector<ShapeClassId> shapes() const;

  // Aggregate fragmentation across all shapes at the global peak.
  ShapeStats overall_stats() const;

 private:
  struct Slab {
    static constexpr ShapeClassId kUnassigned = static_cast<ShapeClassId>(-1);
    ShapeClassId shape = kUnassigned;
    std::vector<uint32_t> free_indices;
    uint32_t used_count = 0;
    uint32_t block_capacity = 0;
  };

  struct ShapeState {
    uint64_t block_bytes = 0;
    // Slabs assigned to this shape that may have free blocks (lazily pruned).
    std::vector<uint32_t> partial_slabs;
    uint64_t used_blocks = 0;
    uint64_t held_slabs = 0;
    uint64_t peak_held_bytes = 0;
    uint64_t used_at_peak = 0;
  };

  // Assigns a free slab to `shape`; returns its index or -1.
  int32_t AcquireSlab(ShapeClassId shape);
  void MaybeUpdatePeaks(ShapeState& state);
  void UpdateGlobalPeak();

  uint64_t slab_bytes_;
  std::vector<Slab> slabs_;
  std::vector<uint32_t> free_slabs_;
  // Dense, indexed by ShapeClassId; a slot is registered iff block_bytes != 0.
  // Keeps iteration order deterministic (the determinism lint forbids
  // unordered containers on scheduling/accounting paths).
  std::vector<ShapeState> shape_states_;
  uint64_t global_peak_held_ = 0;
  uint64_t global_used_at_peak_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_MEM_SLAB_ALLOCATOR_H_
