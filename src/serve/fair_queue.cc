#include "serve/fair_queue.h"

#include <algorithm>
#include <cassert>

namespace aegaeon {

WeightedFairQueue::WeightedFairQueue(size_t model_count, double default_weight)
    : queues_(model_count),
      weights_(model_count, default_weight > 0.0 ? default_weight : 1.0),
      finish_tags_(model_count, 0.0) {}

void WeightedFairQueue::SetWeight(ModelId model, double weight) {
  assert(weight > 0.0);
  weights_[model] = weight;
}

void WeightedFairQueue::Enqueue(Request* request, double cost) {
  ModelId model = request->model;
  // SFQ: a queue that went idle restarts at the current virtual time, so an
  // idle period earns no credit (and a backlogged queue keeps its place).
  double start = std::max(virtual_time_, finish_tags_[model]);
  finish_tags_[model] = start + std::max(0.0, cost) / weights_[model];
  queues_[model].push_back(Entry{request, start});
  size_++;
}

Request* WeightedFairQueue::Head(ModelId model) const {
  const std::deque<Entry>& q = queues_[model];
  return q.empty() ? nullptr : q.front().request;
}

Request* WeightedFairQueue::PopHead(ModelId model) {
  std::deque<Entry>& q = queues_[model];
  if (q.empty()) {
    return nullptr;
  }
  Entry entry = q.front();
  q.pop_front();
  size_--;
  virtual_time_ = std::max(virtual_time_, entry.start_tag);
  return entry.request;
}

ModelId WeightedFairQueue::MinTagModel(const std::function<bool(ModelId)>& eligible) const {
  ModelId best = kInvalidModel;
  double best_tag = 0.0;
  for (size_t m = 0; m < queues_.size(); ++m) {
    if (queues_[m].empty() || !eligible(static_cast<ModelId>(m))) {
      continue;
    }
    double tag = queues_[m].front().start_tag;
    if (best == kInvalidModel || tag < best_tag) {
      best = static_cast<ModelId>(m);
      best_tag = tag;
    }
  }
  return best;
}

bool WeightedFairQueue::FindLowestPriority(size_t* model, size_t* pos) const {
  const Request* victim = nullptr;
  for (size_t m = 0; m < queues_.size(); ++m) {
    const std::deque<Entry>& q = queues_[m];
    for (size_t i = 0; i < q.size(); ++i) {
      const Request* r = q[i].request;
      bool worse = victim == nullptr || r->priority < victim->priority ||
                   (r->priority == victim->priority &&
                    (r->arrival > victim->arrival ||
                     (r->arrival == victim->arrival && r->id > victim->id)));
      if (worse) {
        victim = r;
        *model = m;
        *pos = i;
      }
    }
  }
  return victim != nullptr;
}

const Request* WeightedFairQueue::PeekLowestPriority() const {
  size_t model = 0;
  size_t pos = 0;
  if (!FindLowestPriority(&model, &pos)) {
    return nullptr;
  }
  return queues_[model][pos].request;
}

Request* WeightedFairQueue::EvictLowestPriority() {
  size_t model = 0;
  size_t pos = 0;
  if (!FindLowestPriority(&model, &pos)) {
    return nullptr;
  }
  std::deque<Entry>& q = queues_[model];
  Request* out = q[pos].request;
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(pos));
  size_--;
  return out;
}

std::vector<ModelId> WeightedFairQueue::NonEmptyModels() const {
  std::vector<ModelId> models;
  for (size_t m = 0; m < queues_.size(); ++m) {
    if (!queues_[m].empty()) {
      models.push_back(static_cast<ModelId>(m));
    }
  }
  return models;
}

}  // namespace aegaeon
