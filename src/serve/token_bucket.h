// A continuous-refill token bucket, used by the serving proxy for per-model
// dispatch rate limits. Deterministic: refill is a pure function of the
// simulated clock.

#ifndef AEGAEON_SERVE_TOKEN_BUCKET_H_
#define AEGAEON_SERVE_TOKEN_BUCKET_H_

#include <algorithm>

#include "sim/time.h"

namespace aegaeon {

class TokenBucket {
 public:
  // `rate` tokens/second, bucket depth `burst`. rate <= 0 means unlimited.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(std::max(1.0, burst)), tokens_(std::max(1.0, burst)) {}

  bool unlimited() const { return rate_ <= 0.0; }

  // True when a whole token is available at `now`.
  bool CanConsume(TimePoint now) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    return tokens_ >= 1.0;
  }

  // Consumes one token; call only after CanConsume(now) returned true.
  void Consume(TimePoint now) {
    if (unlimited()) {
      return;
    }
    Refill(now);
    tokens_ -= 1.0;
  }

  // Earliest time a whole token will be available (== `now` if one already
  // is). Used to schedule the next proxy pump precisely.
  TimePoint NextAvailable(TimePoint now) {
    if (unlimited()) {
      return now;
    }
    Refill(now);
    if (tokens_ >= 1.0) {
      return now;
    }
    return now + (1.0 - tokens_) / rate_;
  }

 private:
  void Refill(TimePoint now) {
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  TimePoint last_ = 0.0;
};

}  // namespace aegaeon

#endif  // AEGAEON_SERVE_TOKEN_BUCKET_H_
