#include "serve/proxy.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aegaeon {

ServingProxy::ServingProxy(const ProxyPolicy& policy, Simulator& sim, size_t model_count,
                           Backend backend)
    : policy_(policy),
      sim_(sim),
      backend_(std::move(backend)),
      queue_(model_count, policy.default_weight) {
  assert(backend_.queue_delay && backend_.exec_estimate && backend_.slo && backend_.dispatch);
  buckets_.reserve(model_count);
  for (size_t i = 0; i < model_count; ++i) {
    buckets_.emplace_back(policy_.model_rate, policy_.model_burst);
  }
}

void ServingProxy::SetModelWeight(ModelId model, double weight) {
  queue_.SetWeight(model, weight);
}

TimePoint ServingProxy::AdmissionDeadline(const Request& request) const {
  return request.arrival + backend_.slo(request.model).ttft * policy_.admission_slack;
}

void ServingProxy::Drop(Request* request, ProxyOutcome outcome) {
  request->proxy_outcome = outcome;
  switch (outcome) {
    case ProxyOutcome::kRejected:
      stats_.rejected++;
      break;
    case ProxyOutcome::kShed:
      stats_.shed++;
      break;
    case ProxyOutcome::kTimedOut:
      stats_.timed_out++;
      break;
    case ProxyOutcome::kNone:
      break;
  }
}

void ServingProxy::OnArrival(Request* request) {
  stats_.arrivals++;
  Duration exec = backend_.exec_estimate(*request);
  const SloSpec slo = backend_.slo(request->model);

  // Admission control: the delay a new arrival queues behind is the live
  // backend backlog plus everything the proxy itself is holding. When that
  // already blows through `reject_slack * TTFT`, tell the client now rather
  // than miss later.
  Duration backlog = backend_.queue_delay(*request) + held_exec_sum_;
  if (backlog + exec > slo.ttft * policy_.reject_slack) {
    Drop(request, ProxyOutcome::kRejected);
    return;
  }

  // Capacity shedding: beyond the hard queue cap, the lowest-priority held
  // request makes room — unless the newcomer itself ranks no higher, in
  // which case the newcomer is the one shed.
  if (queue_.size() >= policy_.max_held) {
    const Request* victim = queue_.PeekLowestPriority();
    if (victim->priority >= request->priority) {
      Drop(request, ProxyOutcome::kShed);
      return;
    }
    Request* evicted = queue_.EvictLowestPriority();
    held_exec_sum_ = std::max(0.0, held_exec_sum_ - backend_.exec_estimate(*evicted));
    Drop(evicted, ProxyOutcome::kShed);
  }

  queue_.Enqueue(request, exec);
  held_exec_sum_ += exec;
  Pump();
}

void ServingProxy::OnBackendProgress() {
  if (!queue_.empty()) {
    Pump();
  }
}

void ServingProxy::RetryAfterFailure(Request* request, std::function<void()> redispatch) {
  Duration delay = policy_.retry_base_delay;
  for (uint32_t i = 0; i < request->dispatch_attempts && delay < policy_.retry_max_delay; ++i) {
    delay *= 2.0;
  }
  delay = std::min(delay, policy_.retry_max_delay);
  request->dispatch_attempts++;
  stats_.retries++;
  sim_.After(delay, std::move(redispatch));
}

void ServingProxy::ShedExpired(TimePoint now) {
  // Per-model FIFOs are deadline-ordered (same TTFT per model), so checking
  // heads until one survives covers every expired request.
  for (ModelId model : queue_.NonEmptyModels()) {
    while (Request* head = queue_.Head(model)) {
      Duration exec = backend_.exec_estimate(*head);
      if (now + exec <= AdmissionDeadline(*head)) {
        break;  // still reachable on an idle backend
      }
      queue_.PopHead(model);
      held_exec_sum_ = std::max(0.0, held_exec_sum_ - exec);
      Drop(head, ProxyOutcome::kTimedOut);
    }
  }
}

void ServingProxy::Pump() {
  TimePoint now = sim_.Now();
  ShedExpired(now);

  TimePoint bucket_ready = kTimeNever;
  while (!queue_.empty()) {
    ModelId model = queue_.MinTagModel(
        [&](ModelId m) { return buckets_[m].CanConsume(now); });
    if (model == kInvalidModel) {
      // Every backlogged model is rate-limited; wake exactly when the first
      // bucket refills.
      for (ModelId m : queue_.NonEmptyModels()) {
        bucket_ready = std::min(bucket_ready, buckets_[m].NextAvailable(now));
      }
      break;
    }
    Request* request = queue_.Head(model);
    Duration exec = backend_.exec_estimate(*request);
    Duration backend_delay = backend_.queue_delay(*request);
    if (now + backend_delay + exec > AdmissionDeadline(*request)) {
      // The fairest candidate cannot meet TTFT through the current backend
      // backlog: hold everything until capacity frees (later candidates are
      // younger and queue behind the same backlog).
      break;
    }
    queue_.PopHead(model);
    held_exec_sum_ = std::max(0.0, held_exec_sum_ - exec);
    buckets_[model].Consume(now);

    // Graceful degradation: once overload has persisted past the window,
    // admitted requests trade tail tokens for admission.
    if (policy_.degraded_max_output_tokens > 0 && overload_since_ != kTimeNever &&
        now - overload_since_ >= policy_.overload_window &&
        request->output_tokens > policy_.degraded_max_output_tokens) {
      request->output_tokens = policy_.degraded_max_output_tokens;
      request->degraded = true;
      stats_.degraded++;
    }
    stats_.dispatched++;
    backend_.dispatch(request);
  }

  if (queue_.empty()) {
    overload_since_ = kTimeNever;
    return;
  }
  // Work is held back: demand exceeds what admission will let through.
  if (overload_since_ == kTimeNever) {
    overload_since_ = now;
  }
  TimePoint wake = now + policy_.pump_interval;
  if (bucket_ready != kTimeNever) {
    wake = std::min(wake, std::max(bucket_ready, now));
  }
  SchedulePump(wake);
}

void ServingProxy::SchedulePump(TimePoint when) {
  if (next_pump_ != kTimeNever && next_pump_ <= when) {
    return;  // an earlier (or equal) poll is already scheduled
  }
  next_pump_ = when;
  sim_.At(when, [this, when] {
    if (next_pump_ == when) {
      next_pump_ = kTimeNever;
    }
    Pump();
  });
}

}  // namespace aegaeon
