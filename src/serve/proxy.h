// The overload-aware serving proxy (§3.3's proxy layer grown into a
// first-class overload-control subsystem). It sits between the arrival
// source and a serving backend and implements four policies:
//
//   1. Deadline-aware admission control: the proxy predicts when a request's
//      first token would land (live backend queue delay + prefill execution
//      estimate) and only dispatches requests that can still meet their
//      TTFT SLO; hopeless arrivals are rejected immediately.
//   2. Per-model weighted fair queuing with token-bucket rate limits, so a
//      single hot model cannot starve the market's long tail of dispatch
//      slots (the fairness failure §3.1 motivates).
//   3. SLO-aware load shedding and graceful degradation: under sustained
//      overload the lowest-priority held work is shed first, held requests
//      whose deadline becomes unreachable are timeout-shed, and (optionally)
//      admitted requests have their output capped — keeping goodput
//      (SLO-attained throughput) high instead of letting every request miss.
//   4. Retry with exponential backoff for requests displaced by instance
//      failures, replacing immediate re-dispatch into a recovering pool.
//
// The proxy is backend-agnostic: the Aegaeon cluster and the baselines plug
// in through a small callback surface, so goodput comparisons across systems
// use the identical policy implementation. Everything is driven by the
// discrete-event simulator and is fully deterministic.

#ifndef AEGAEON_SERVE_PROXY_H_
#define AEGAEON_SERVE_PROXY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/request.h"
#include "core/slo.h"
#include "serve/fair_queue.h"
#include "serve/policy.h"
#include "serve/token_bucket.h"
#include "sim/simulator.h"

namespace aegaeon {

struct ProxyStats {
  uint64_t arrivals = 0;
  uint64_t dispatched = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t timed_out = 0;
  uint64_t degraded = 0;
  uint64_t retries = 0;
};

class ServingProxy {
 public:
  // The backend surface the proxy schedules against. All callbacks must be
  // set. Estimates may be rough; admission only needs them to be monotone
  // in actual congestion.
  struct Backend {
    // Estimated delay before a request dispatched now would start prefill,
    // from live prefill/decode occupancy.
    std::function<Duration(const Request&)> queue_delay;
    // Estimated prefill execution time of the request.
    std::function<Duration(const Request&)> exec_estimate;
    // SLO of a model.
    std::function<SloSpec(ModelId)> slo;
    // Hands an admitted request to the backend (called at dispatch time).
    std::function<void(Request*)> dispatch;
  };

  ServingProxy(const ProxyPolicy& policy, Simulator& sim, size_t model_count, Backend backend);

  // Entry point for trace arrivals (schedule at the arrival time).
  void OnArrival(Request* request);

  // Notify the proxy that backend capacity may have freed (a prefill slot
  // opened, a request completed, an instance recovered): held requests are
  // re-evaluated immediately instead of waiting for the next poll.
  void OnBackendProgress();

  // Schedules `redispatch` after an exponential backoff derived from the
  // request's dispatch_attempts (doubling per attempt, capped). Used by the
  // backend's fault-recovery path for requests displaced by failures.
  void RetryAfterFailure(Request* request, std::function<void()> redispatch);

  // Fair-queuing weight override for one model (default: policy weight).
  void SetModelWeight(ModelId model, double weight);

  const ProxyStats& stats() const { return stats_; }
  size_t held() const { return queue_.size(); }

 private:
  void Pump();
  void SchedulePump(TimePoint when);
  void Drop(Request* request, ProxyOutcome outcome);
  // Latest dispatch-feasible first-token landing for `request`.
  TimePoint AdmissionDeadline(const Request& request) const;
  // Sheds held requests whose TTFT deadline is unreachable even on an idle
  // backend; returns `now` for convenience.
  void ShedExpired(TimePoint now);

  ProxyPolicy policy_;
  Simulator& sim_;
  Backend backend_;
  WeightedFairQueue queue_;
  std::vector<TokenBucket> buckets_;
  // Total prefill-execution estimate of held requests: the proxy's own
  // contribution to the backlog a new arrival would queue behind.
  Duration held_exec_sum_ = 0.0;
  // Start of the current overload episode (kTimeNever when not overloaded).
  TimePoint overload_since_ = kTimeNever;
  // Earliest already-scheduled pump (kTimeNever when none), to avoid
  // flooding the event queue with redundant polls.
  TimePoint next_pump_ = kTimeNever;
  ProxyStats stats_;
};

}  // namespace aegaeon

#endif  // AEGAEON_SERVE_PROXY_H_
