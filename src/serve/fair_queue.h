// Per-model weighted fair queuing for the serving proxy (start-time fair
// queuing, SFQ). Each model has a FIFO of held requests; dequeue order
// follows virtual start tags so that, under contention, models receive
// dispatch slots proportional to their weights regardless of how bursty any
// single model's arrivals are — the §3.1 fairness failure (one hot model on
// the market starving the long tail) cannot occur at the proxy.

#ifndef AEGAEON_SERVE_FAIR_QUEUE_H_
#define AEGAEON_SERVE_FAIR_QUEUE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "core/request.h"
#include "model/registry.h"

namespace aegaeon {

class WeightedFairQueue {
 public:
  WeightedFairQueue(size_t model_count, double default_weight);

  // Weight must be > 0. Affects tags assigned after the call.
  void SetWeight(ModelId model, double weight);

  // Enqueues `request` at the back of its model's FIFO. `cost` is the
  // request's estimated service demand (seconds of prefill); tags advance by
  // cost/weight, so fairness is service-time-weighted, not merely
  // count-weighted.
  void Enqueue(Request* request, double cost);

  // Front of `model`'s FIFO, nullptr when empty.
  Request* Head(ModelId model) const;

  // Removes and returns the front of `model`'s FIFO (nullptr when empty),
  // advancing the queue's virtual time.
  Request* PopHead(ModelId model);

  // The model whose head request has the smallest virtual start tag among
  // models with work for which `eligible(model)` holds. Ties break toward
  // the lower model id (deterministic). kInvalidModel when none qualifies.
  ModelId MinTagModel(const std::function<bool(ModelId)>& eligible) const;

  // The lowest-priority held request (ties: youngest arrival, then highest
  // id). nullptr when empty. Used for load shedding.
  const Request* PeekLowestPriority() const;

  // Removes and returns the request PeekLowestPriority identifies.
  Request* EvictLowestPriority();

  // Model ids with at least one held request, ascending.
  std::vector<ModelId> NonEmptyModels() const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t QueuedFor(ModelId model) const { return queues_[model].size(); }

 private:
  struct Entry {
    Request* request = nullptr;
    double start_tag = 0.0;
  };

  // Locates the lowest-priority entry; false when the queue is empty.
  bool FindLowestPriority(size_t* model, size_t* pos) const;

  std::vector<std::deque<Entry>> queues_;
  std::vector<double> weights_;
  std::vector<double> finish_tags_;  // per-model last virtual finish
  double virtual_time_ = 0.0;
  size_t size_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_SERVE_FAIR_QUEUE_H_
