// Policy knobs of the overload-aware serving proxy (src/serve).
//
// The proxy sits between the arrival source and a serving backend (the
// Aegaeon cluster or a baseline) and decides, per request, whether to
// dispatch it now, hold it, degrade it, or drop it. All policies are
// deterministic functions of the simulated clock and backend state, so
// proxy-enabled runs stay exactly reproducible. With `enabled == false`
// the proxy is never constructed and the arrival path is byte-for-byte
// the pre-proxy one.

#ifndef AEGAEON_SERVE_POLICY_H_
#define AEGAEON_SERVE_POLICY_H_

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace aegaeon {

struct ProxyPolicy {
  bool enabled = false;

  // --- Deadline-aware admission control ---------------------------------
  // A held request is dispatched only while its first token is still
  // predicted to land within `admission_slack * TTFT` of arrival (predicted
  // landing = now + backend queue delay + prefill execution estimate).
  double admission_slack = 1.0;
  // Reject a request outright at arrival when the estimated backlog delay
  // (backend + proxy-held work) already exceeds `reject_slack * TTFT`:
  // the client learns immediately instead of waiting for a doomed request.
  // Between the two slacks the request is held and either admitted when
  // load drops or shed when its deadline becomes unreachable.
  double reject_slack = 2.0;

  // --- Per-model weighted fair queuing ----------------------------------
  // Service weight of every model unless overridden via
  // ServingProxy::SetModelWeight. Higher weight = larger share of dispatch
  // slots under contention.
  double default_weight = 1.0;
  // Token-bucket rate limit per model (requests/second); <= 0 disables
  // rate limiting. `model_burst` is the bucket depth.
  double model_rate = 0.0;
  double model_burst = 8.0;

  // --- Load shedding / graceful degradation -----------------------------
  // Hard cap on proxy-held requests; beyond it the lowest-priority
  // (then youngest) held request is shed.
  size_t max_held = 4096;
  // Under sustained overload (backlog infeasible for longer than
  // `overload_window`), newly admitted requests have their output capped at
  // `degraded_max_output_tokens` (<= 0 disables degradation). Trading tail
  // tokens for admission keeps goodput high instead of missing every SLO.
  Duration overload_window = 5.0;
  int64_t degraded_max_output_tokens = 0;

  // --- Retry with exponential backoff (failure displacement) ------------
  // A request displaced by an instance failure re-enters after
  // `retry_base_delay * 2^attempt`, capped at `retry_max_delay`, instead of
  // re-dispatching immediately into the recovering pool.
  Duration retry_base_delay = 0.25;
  Duration retry_max_delay = 8.0;

  // --- Pump cadence ------------------------------------------------------
  // Poll interval for re-evaluating held requests when no backend progress
  // event arrives (also bounds how long a doomed request lingers before it
  // is timeout-shed).
  Duration pump_interval = 0.05;
};

}  // namespace aegaeon

#endif  // AEGAEON_SERVE_POLICY_H_
