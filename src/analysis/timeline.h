// Execution timeline recording, exportable as a Chrome trace
// (chrome://tracing / Perfetto "traceEvents" JSON). Lanes are serving
// instances; spans are prefills, decode turns, model switches, and KV
// transfers — the visual counterpart of Figure 2(b)'s schedule.

#ifndef AEGAEON_ANALYSIS_TIMELINE_H_
#define AEGAEON_ANALYSIS_TIMELINE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace aegaeon {

class TimelineRecorder {
 public:
  struct Span {
    int lane = 0;            // instance index (tid in the trace)
    std::string category;    // "prefill", "decode", "switch", "kv"
    std::string name;        // e.g. model name or request id
    TimePoint start = 0.0;
    Duration duration = 0.0;
  };

  void Record(int lane, std::string category, std::string name, TimePoint start,
              Duration duration);

  size_t size() const { return spans_.size(); }
  const std::vector<Span>& spans() const { return spans_; }
  void Clear() { spans_.clear(); }

  // Chrome trace "traceEvents" JSON (complete events, microsecond units).
  void WriteChromeTrace(std::ostream& os) const;
  bool WriteChromeTraceFile(const std::string& path) const;

 private:
  std::vector<Span> spans_;
};

}  // namespace aegaeon

#endif  // AEGAEON_ANALYSIS_TIMELINE_H_
