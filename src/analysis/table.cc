#include "analysis/table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace aegaeon {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::Pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |");
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintSeries(std::ostream& os, const std::string& name, const std::vector<double>& xs,
                 const std::vector<double>& ys, int precision) {
  assert(xs.size() == ys.size());
  os << name << ":";
  os << std::fixed << std::setprecision(precision);
  for (size_t i = 0; i < xs.size(); ++i) {
    os << " (" << xs[i] << ", " << ys[i] << ")";
  }
  os << "\n";
}

}  // namespace aegaeon
