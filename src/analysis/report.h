// Per-model quality reports and machine-readable (JSON) metric export —
// the operator-facing view of a run (every model on the market has its own
// SLO story, not just the aggregate).

#ifndef AEGAEON_ANALYSIS_REPORT_H_
#define AEGAEON_ANALYSIS_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "core/request.h"
#include "model/registry.h"

namespace aegaeon {

struct ModelReport {
  ModelId id = kInvalidModel;
  std::string name;
  uint64_t requests = 0;
  uint64_t completed = 0;
  int64_t tokens_total = 0;
  int64_t tokens_met = 0;
  // Serving-proxy outcomes for this model (all zero when disabled).
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t timed_out = 0;
  int64_t tokens_generated = 0;
  // GPU execution seconds attributed to this model (prefill + decode).
  double exec_seconds = 0.0;
  double mean_ttft = 0.0;
  double p99_ttft = 0.0;
  // $ per 1000 generated tokens, apportioned from the pool's rental rate by
  // ApplyPoolCost; 0 until applied (or when cost is unset).
  double cost_per_1k_tokens = 0.0;

  double Attainment() const {
    return tokens_total == 0 ? 1.0 : static_cast<double>(tokens_met) / tokens_total;
  }
};

// One report row per model that received at least one request, ordered by
// model id.
std::vector<ModelReport> BuildPerModelReport(const std::vector<Request>& requests,
                                             const ModelRegistry& registry);
// Deque overload (AegaeonCluster::requests() under the sharded fleet).
std::vector<ModelReport> BuildPerModelReport(const std::deque<Request>& requests,
                                             const ModelRegistry& registry);

// Aligned table of the per-model report. Proxy-outcome columns (rejected /
// shed / timeout) appear only when at least one row has a nonzero count, so
// proxy-less runs print the familiar narrow table.
void PrintPerModelReport(std::ostream& os, const std::vector<ModelReport>& report);

// Apportions the run's pool rent (metrics.pool_cost_per_hour over the
// makespan) across models by their GPU execution-time share and fills each
// row's cost_per_1k_tokens. No-op when cost is unset — the table's $ column
// then stays hidden (the conditional-column convention above).
void ApplyPoolCost(std::vector<ModelReport>& report, const RunMetrics& metrics);

// Jain's fairness index over per-model SLO attainment, in (0, 1]: 1.0 means
// every model attains equally; 1/n means one model takes everything.
double JainFairness(const std::vector<ModelReport>& report);

// Flat JSON object with the run's headline metrics (for dashboards/CI).
void WriteMetricsJson(std::ostream& os, const RunMetrics& metrics);

}  // namespace aegaeon

#endif  // AEGAEON_ANALYSIS_REPORT_H_
