#include "analysis/metrics.h"

namespace aegaeon {

LatencyBreakdown& LatencyBreakdown::operator+=(const LatencyBreakdown& other) {
  prefill_wait += other.prefill_wait;
  prefill_exec += other.prefill_exec;
  decode_wait += other.decode_wait;
  decode_exec += other.decode_exec;
  control_overhead += other.control_overhead;
  data_overhead += other.data_overhead;
  return *this;
}

void FillDecodeWaits(std::vector<Request>& requests) {
  for (Request& r : requests) {
    if (r.finished() && r.first_token_time != kTimeUnset && r.decode_wait == 0.0) {
      double wait = (r.completion - r.first_token_time) - r.decode_exec;
      r.decode_wait = wait > 0.0 ? wait : 0.0;
    }
  }
}

RunMetrics FoldRequests(const std::vector<Request>& requests, Duration horizon) {
  RunMetrics metrics;
  metrics.horizon = horizon;
  for (const Request& r : requests) {
    metrics.total_requests++;
    metrics.tokens_total += r.output_tokens;
    metrics.tokens_met += r.tokens_met;
    metrics.retry_attempts += r.dispatch_attempts;
    if (r.degraded) {
      metrics.degraded_requests++;
    }
    if (r.proxy_outcome != ProxyOutcome::kNone) {
      // Never dispatched: no execution record to fold, and its tokens all
      // count as missed demand (already added above with tokens_met == 0).
      switch (r.proxy_outcome) {
        case ProxyOutcome::kRejected: metrics.rejected_requests++; break;
        case ProxyOutcome::kShed: metrics.shed_requests++; break;
        case ProxyOutcome::kTimedOut: metrics.timed_out_requests++; break;
        case ProxyOutcome::kNone: break;
      }
      continue;
    }
    if (r.finished()) {
      metrics.completed_requests++;
      metrics.request_latency_samples.push_back(r.completion - r.arrival);
      if (r.tokens_met * 10 >= r.output_tokens * 9) {
        metrics.slo_good_requests++;
      }
    } else if (r.generated < r.output_tokens && r.tokens_met > r.generated) {
      // Defensive: met count can never exceed generated tokens.
      metrics.tokens_met -= (r.tokens_met - r.generated);
    }
    if (r.first_token_time != kTimeUnset) {
      metrics.ttft_samples.push_back(r.first_token_time - r.arrival);
    }
    metrics.breakdown.prefill_wait += r.prefill_wait;
    metrics.breakdown.prefill_exec += r.prefill_exec;
    metrics.breakdown.decode_wait += r.decode_wait;
    metrics.breakdown.decode_exec += r.decode_exec;
    metrics.breakdown.control_overhead += r.control_overhead;
    metrics.breakdown.data_overhead += r.data_overhead;
    metrics.kv_sync_samples.push_back(r.data_overhead + r.control_overhead);
  }
  return metrics;
}

}  // namespace aegaeon
