#include "analysis/metrics.h"

#include <algorithm>

namespace aegaeon {

LatencyBreakdown& LatencyBreakdown::operator+=(const LatencyBreakdown& other) {
  prefill_wait += other.prefill_wait;
  prefill_exec += other.prefill_exec;
  decode_wait += other.decode_wait;
  decode_exec += other.decode_exec;
  control_overhead += other.control_overhead;
  data_overhead += other.data_overhead;
  return *this;
}

RunMetrics& RunMetrics::MergeFrom(const RunMetrics& other) {
  total_requests += other.total_requests;
  completed_requests += other.completed_requests;
  tokens_total += other.tokens_total;
  tokens_met += other.tokens_met;
  tokens_generated += other.tokens_generated;
  horizon = std::max(horizon, other.horizon);
  // Pools merge side by side, so their rental rates add.
  pool_cost_per_hour += other.pool_cost_per_hour;
  breakdown += other.breakdown;
  rejected_requests += other.rejected_requests;
  shed_requests += other.shed_requests;
  timed_out_requests += other.timed_out_requests;
  degraded_requests += other.degraded_requests;
  retry_attempts += other.retry_attempts;
  slo_good_requests += other.slo_good_requests;
  ttft_samples.insert(ttft_samples.end(), other.ttft_samples.begin(), other.ttft_samples.end());
  request_latency_samples.insert(request_latency_samples.end(),
                                 other.request_latency_samples.begin(),
                                 other.request_latency_samples.end());
  switch_latency_samples.insert(switch_latency_samples.end(),
                                other.switch_latency_samples.begin(),
                                other.switch_latency_samples.end());
  kv_sync_samples.insert(kv_sync_samples.end(), other.kv_sync_samples.begin(),
                         other.kv_sync_samples.end());
  sim += other.sim;
  return *this;
}

namespace {

template <typename Container>
void FillDecodeWaitsImpl(Container& requests) {
  for (Request& r : requests) {
    // LINT-ALLOW(float-equality): 0.0 is the never-filled sentinel here —
    // decode_wait is assigned exactly once, so exact-zero means "not yet"
    if (r.finished() && r.first_token_time != kTimeUnset && r.decode_wait == 0.0) {
      double wait = (r.completion - r.first_token_time) - r.decode_exec;
      r.decode_wait = wait > 0.0 ? wait : 0.0;
    }
  }
}

template <typename Container>
RunMetrics FoldRequestsImpl(const Container& requests, Duration horizon) {
  RunMetrics metrics;
  metrics.horizon = horizon;
  for (const Request& r : requests) {
    metrics.total_requests++;
    metrics.tokens_total += r.output_tokens;
    metrics.tokens_met += r.tokens_met;
    metrics.tokens_generated += r.generated;
    metrics.retry_attempts += r.dispatch_attempts;
    if (r.degraded) {
      metrics.degraded_requests++;
    }
    if (r.proxy_outcome != ProxyOutcome::kNone) {
      // Never dispatched: no execution record to fold, and its tokens all
      // count as missed demand (already added above with tokens_met == 0).
      switch (r.proxy_outcome) {
        case ProxyOutcome::kRejected: metrics.rejected_requests++; break;
        case ProxyOutcome::kShed: metrics.shed_requests++; break;
        case ProxyOutcome::kTimedOut: metrics.timed_out_requests++; break;
        case ProxyOutcome::kNone: break;
      }
      continue;
    }
    if (r.finished()) {
      metrics.completed_requests++;
      metrics.request_latency_samples.push_back(r.completion - r.arrival);
      if (r.tokens_met * 10 >= r.output_tokens * 9) {
        metrics.slo_good_requests++;
      }
    } else if (r.generated < r.output_tokens && r.tokens_met > r.generated) {
      // Defensive: met count can never exceed generated tokens.
      metrics.tokens_met -= (r.tokens_met - r.generated);
    }
    if (r.first_token_time != kTimeUnset) {
      metrics.ttft_samples.push_back(r.first_token_time - r.arrival);
    }
    metrics.breakdown.prefill_wait += r.prefill_wait;
    metrics.breakdown.prefill_exec += r.prefill_exec;
    metrics.breakdown.decode_wait += r.decode_wait;
    metrics.breakdown.decode_exec += r.decode_exec;
    metrics.breakdown.control_overhead += r.control_overhead;
    metrics.breakdown.data_overhead += r.data_overhead;
    metrics.kv_sync_samples.push_back(r.data_overhead + r.control_overhead);
  }
  return metrics;
}

}  // namespace

void FillDecodeWaits(std::vector<Request>& requests) { FillDecodeWaitsImpl(requests); }

void FillDecodeWaits(std::deque<Request>& requests) { FillDecodeWaitsImpl(requests); }

RunMetrics FoldRequests(const std::vector<Request>& requests, Duration horizon) {
  return FoldRequestsImpl(requests, horizon);
}

RunMetrics FoldRequests(const std::deque<Request>& requests, Duration horizon) {
  return FoldRequestsImpl(requests, horizon);
}

}  // namespace aegaeon
