#include "analysis/theory.h"

#include <algorithm>
#include <cmath>

#include "sim/random.h"

namespace aegaeon {

double ExpectedActiveModels(int models, double lambda, double service_time) {
  return models * (1.0 - std::exp(-lambda * service_time));
}

ActiveModelTrace SimulateActiveModels(int models, double lambda, double service_time,
                                      double horizon, double sample_interval, uint64_t seed,
                                      double warmup) {
  // For each model, collect busy intervals [t, t+T) and flatten them into a
  // per-model "busy until" timeline; then sample the union.
  std::vector<std::vector<double>> arrivals(models);
  for (int m = 0; m < models; ++m) {
    PoissonProcess process(lambda, seed + static_cast<uint64_t>(m) * 40503 + 1);
    arrivals[m] = process.ArrivalsUntil(horizon);
  }

  ActiveModelTrace trace;
  double active_sum = 0.0;
  size_t samples = 0;
  // Per-model cursor over its (sorted) arrivals and the time its current
  // busy period ends.
  std::vector<size_t> cursor(models, 0);
  std::vector<double> busy_until(models, -1.0);
  for (double t = warmup; t < horizon; t += sample_interval) {
    int active = 0;
    for (int m = 0; m < models; ++m) {
      // Advance through arrivals no later than t, extending the busy period.
      while (cursor[m] < arrivals[m].size() && arrivals[m][cursor[m]] <= t) {
        // A model is active while it has >= 1 request in service; requests
        // are served concurrently in a batch, so the busy period ends
        // `service_time` after the latest arrival in it.
        busy_until[m] = std::max(busy_until[m], arrivals[m][cursor[m]] + service_time);
        cursor[m]++;
      }
      if (busy_until[m] > t) {
        active++;
      }
    }
    trace.sample_times.push_back(t);
    trace.active_counts.push_back(active);
    active_sum += active;
    samples++;
  }
  trace.mean = samples == 0 ? 0.0 : active_sum / static_cast<double>(samples);
  return trace;
}

}  // namespace aegaeon
