// Run-level metrics: token-level SLO attainment (§2.1), the request latency
// breakdown of Figure 14, and the latency samples behind Figure 15.

#ifndef AEGAEON_ANALYSIS_METRICS_H_
#define AEGAEON_ANALYSIS_METRICS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "core/request.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace aegaeon {

struct LatencyBreakdown {
  Duration prefill_wait = 0.0;
  Duration prefill_exec = 0.0;
  Duration decode_wait = 0.0;
  Duration decode_exec = 0.0;
  Duration control_overhead = 0.0;
  Duration data_overhead = 0.0;

  Duration Total() const {
    return prefill_wait + prefill_exec + decode_wait + decode_exec + control_overhead +
           data_overhead;
  }

  LatencyBreakdown& operator+=(const LatencyBreakdown& other);
};

// Replicated-control-plane outcomes (src/ctrl). All zero when the fleet
// runs a sole always-alive dispatcher replica with no dispatcher faults —
// the unreplicated configuration. Unlike the host-cost counters these are
// simulated results: deterministic, bit-identical across shard and worker
// counts.
struct CtrlStats {
  uint64_t heartbeats_sent = 0;    // heartbeat messages leaders emitted
  uint64_t heartbeats_missed = 0;  // heartbeats that reached a crashed replica
  uint64_t elections = 0;          // campaigns started (including retries)
  uint64_t failovers = 0;          // leadership changes after boot
  // In-flight arrivals lost with a dead leader and replayed by its
  // successor (each exactly once).
  uint64_t redispatched_requests = 0;
  // Replayed entries absent from the successor's shadow log (routed within
  // one replication hop of the crash): recovered via front-door retry.
  uint64_t frontdoor_replays = 0;
  // High-water mark of the re-dispatch log plus the front-door queue.
  uint64_t max_log_depth = 0;
  Duration leader_downtime = 0.0;  // simulated seconds with no live leader

  bool Any() const {
    return heartbeats_sent != 0 || heartbeats_missed != 0 || elections != 0 ||
           failovers != 0 || redispatched_requests != 0 || frontdoor_replays != 0 ||
           leader_downtime > 0.0;
  }
};

struct RunMetrics {
  uint64_t total_requests = 0;
  uint64_t completed_requests = 0;
  int64_t tokens_total = 0;
  int64_t tokens_met = 0;
  // Tokens actually produced (<= tokens_total when requests go unfinished).
  int64_t tokens_generated = 0;
  Duration horizon = 0.0;  // simulated makespan

  // Rental cost of the pool that produced this run, $/hour. 0 means unset
  // (GpuSpec::cost_per_hour defaults to 0); cost-derived report columns are
  // omitted then.
  double pool_cost_per_hour = 0.0;

  LatencyBreakdown breakdown;

  // Serving-proxy outcomes (src/serve). All zero when the proxy is
  // disabled: every request is then dispatched unconditionally.
  uint64_t rejected_requests = 0;   // admission control turned them away
  uint64_t shed_requests = 0;       // evicted from the held queue
  uint64_t timed_out_requests = 0;  // deadline expired while held
  uint64_t degraded_requests = 0;   // output capped under overload
  uint64_t retry_attempts = 0;      // failure-displaced re-dispatches
  // Completed requests meeting the goodput floor (>= 90% of their tokens
  // produced on time) — the numerator of Goodput().
  uint64_t slo_good_requests = 0;

  std::vector<double> ttft_samples;
  std::vector<double> request_latency_samples;
  std::vector<double> switch_latency_samples;   // Figure 15 (left)
  std::vector<double> kv_sync_samples;          // Figure 15 (right)

  // Host-side cost of producing this run (events processed, wall-clock).
  // Measured, not simulated: excluded from determinism comparisons.
  SimPerfCounters sim;

  // Per-shard host-side cost when this run was produced by the sharded
  // fleet; empty for single-cluster runs. `sim` holds the pooled totals
  // either way. Measured, not simulated — excluded from determinism
  // comparisons like `sim`.
  std::vector<SimPerfCounters> shard_sim;
  // Conservative-sync epochs executed by the fleet (0 for single-cluster
  // runs). Deterministic: a pure function of the trace and the lookahead.
  uint64_t sync_epochs = 0;
  // Lookahead slots the fleet's barrier loop jumped without an epoch (dead
  // slots snapped over + slots batched under route_quantum). Deterministic,
  // like sync_epochs.
  uint64_t sync_epochs_skipped = 0;

  // Control-plane replication outcomes; fleet-level like shard_sim (left
  // untouched by MergeFrom), but simulated and deterministic.
  CtrlStats ctrl;

  // Folds another run's simulated results into this one (cell -> fleet
  // aggregation): sums the counters, concatenates the samples, keeps the
  // max horizon, and pools `sim`. shard_sim/sync_epochs are fleet-level and
  // left untouched.
  RunMetrics& MergeFrom(const RunMetrics& other);

  // Token-level SLO attainment in [0, 1]; requests that never produced a
  // token count all their tokens as missed.
  double SloAttainment() const {
    return tokens_total == 0 ? 1.0 : static_cast<double>(tokens_met) / tokens_total;
  }

  // Completed requests per second over the makespan.
  double Throughput() const {
    return horizon <= 0.0 ? 0.0 : static_cast<double>(completed_requests) / horizon;
  }

  // SLO-attained completed requests per second: the overload headline. A
  // system that admits everything and misses every deadline has high
  // throughput and zero goodput.
  double Goodput() const {
    return horizon <= 0.0 ? 0.0 : static_cast<double>(slo_good_requests) / horizon;
  }

  // Serving cost in $ per 1000 generated tokens: the pool's hourly rent
  // over the makespan divided by tokens produced. 0 when cost is unset or
  // nothing was generated.
  double CostPer1kTokens() const {
    if (pool_cost_per_hour <= 0.0 || tokens_generated <= 0 || horizon <= 0.0) {
      return 0.0;
    }
    return pool_cost_per_hour * (horizon / 3600.0) /
           (static_cast<double>(tokens_generated) / 1000.0);
  }
};

// Folds per-request records into run metrics. `horizon` is the simulated
// completion time of the run. Unfinished requests contribute their
// never-generated tokens as SLO misses (they were due by the horizon).
RunMetrics FoldRequests(const std::vector<Request>& requests, Duration horizon);
// Deque overload: AegaeonCluster stores requests in a deque so pointers
// stay stable under the fleet's incremental arrival injection.
RunMetrics FoldRequests(const std::deque<Request>& requests, Duration horizon);

// Derives decode_wait for completed requests as (completion - first token)
// minus decode execution, for systems that don't track waits inline (the
// baseline runners).
void FillDecodeWaits(std::vector<Request>& requests);
void FillDecodeWaits(std::deque<Request>& requests);

}  // namespace aegaeon

#endif  // AEGAEON_ANALYSIS_METRICS_H_
