#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace aegaeon {

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  double rank = pct / 100.0 * (values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / values.size();
}

std::vector<CdfPoint> BuildCdf(std::vector<double> values, int points) {
  std::vector<CdfPoint> cdf;
  if (values.empty() || points <= 0) {
    return cdf;
  }
  std::sort(values.begin(), values.end());
  cdf.reserve(points);
  for (int i = 1; i <= points; ++i) {
    double fraction = static_cast<double>(i) / points;
    size_t index = std::min(values.size() - 1,
                            static_cast<size_t>(fraction * values.size()) - (i == points ? 1 : 0));
    if (fraction * values.size() >= 1.0) {
      index = static_cast<size_t>(fraction * values.size()) - 1;
    } else {
      index = 0;
    }
    cdf.push_back(CdfPoint{values[index], fraction});
  }
  return cdf;
}

}  // namespace aegaeon
