#include "analysis/report.h"

#include <map>
#include <ostream>

#include "analysis/stats.h"
#include "analysis/table.h"

namespace aegaeon {

namespace {

template <typename Container>
std::vector<ModelReport> BuildPerModelReportImpl(const Container& requests,
                                                 const ModelRegistry& registry) {
  std::map<ModelId, ModelReport> by_model;
  std::map<ModelId, std::vector<double>> ttfts;
  for (const Request& r : requests) {
    ModelReport& report = by_model[r.model];
    if (report.requests == 0) {
      report.id = r.model;
      report.name = registry.Get(r.model).spec.name;
    }
    report.requests++;
    report.completed += r.finished() ? 1 : 0;
    report.tokens_total += r.output_tokens;
    report.tokens_met += r.tokens_met;
    report.tokens_generated += r.generated;
    report.exec_seconds += r.prefill_exec + r.decode_exec;
    switch (r.proxy_outcome) {
      case ProxyOutcome::kRejected: report.rejected++; break;
      case ProxyOutcome::kShed: report.shed++; break;
      case ProxyOutcome::kTimedOut: report.timed_out++; break;
      case ProxyOutcome::kNone: break;
    }
    if (r.first_token_time != kTimeUnset) {
      ttfts[r.model].push_back(r.first_token_time - r.arrival);
    }
  }
  std::vector<ModelReport> rows;
  rows.reserve(by_model.size());
  for (auto& [id, report] : by_model) {
    report.mean_ttft = Mean(ttfts[id]);
    report.p99_ttft = Percentile(ttfts[id], 99);
    rows.push_back(std::move(report));
  }
  return rows;
}

}  // namespace

std::vector<ModelReport> BuildPerModelReport(const std::vector<Request>& requests,
                                             const ModelRegistry& registry) {
  return BuildPerModelReportImpl(requests, registry);
}

std::vector<ModelReport> BuildPerModelReport(const std::deque<Request>& requests,
                                             const ModelRegistry& registry) {
  return BuildPerModelReportImpl(requests, registry);
}

void PrintPerModelReport(std::ostream& os, const std::vector<ModelReport>& report) {
  bool any_rejected = false, any_shed = false, any_timed_out = false, any_cost = false;
  for (const ModelReport& row : report) {
    any_rejected |= row.rejected > 0;
    any_shed |= row.shed > 0;
    any_timed_out |= row.timed_out > 0;
    any_cost |= row.cost_per_1k_tokens > 0.0;
  }
  std::vector<std::string> headers = {"model", "requests", "completed"};
  if (any_rejected) headers.push_back("rejected");
  if (any_shed) headers.push_back("shed");
  if (any_timed_out) headers.push_back("timeout");
  headers.insert(headers.end(), {"SLO attain", "mean TTFT", "p99 TTFT"});
  if (any_cost) headers.push_back("$/1k tok");
  Table table(std::move(headers));
  for (const ModelReport& row : report) {
    std::vector<std::string> cells = {row.name, std::to_string(row.requests),
                                      std::to_string(row.completed)};
    if (any_rejected) cells.push_back(std::to_string(row.rejected));
    if (any_shed) cells.push_back(std::to_string(row.shed));
    if (any_timed_out) cells.push_back(std::to_string(row.timed_out));
    cells.insert(cells.end(), {Table::Pct(row.Attainment()), Table::Num(row.mean_ttft, 3) + "s",
                               Table::Num(row.p99_ttft, 3) + "s"});
    if (any_cost) cells.push_back(Table::Num(row.cost_per_1k_tokens, 4));
    table.AddRow(std::move(cells));
  }
  table.Print(os);
}

void ApplyPoolCost(std::vector<ModelReport>& report, const RunMetrics& metrics) {
  if (metrics.pool_cost_per_hour <= 0.0 || metrics.horizon <= 0.0) {
    return;
  }
  double total_exec = 0.0;
  for (const ModelReport& row : report) {
    total_exec += row.exec_seconds;
  }
  if (total_exec <= 0.0) {
    return;
  }
  double total_cost = metrics.pool_cost_per_hour * metrics.horizon / 3600.0;
  for (ModelReport& row : report) {
    if (row.tokens_generated <= 0) {
      continue;
    }
    double share = row.exec_seconds / total_exec;
    row.cost_per_1k_tokens =
        total_cost * share / (static_cast<double>(row.tokens_generated) / 1000.0);
  }
}

double JainFairness(const std::vector<ModelReport>& report) {
  if (report.empty()) {
    return 1.0;
  }
  double sum = 0.0, sum_sq = 0.0;
  for (const ModelReport& row : report) {
    double x = row.Attainment();
    sum += x;
    sum_sq += x * x;
  }
  // LINT-ALLOW(float-equality): exact-zero guard — sum of squares of
  // non-negative attainments is exactly 0 iff every term is exactly 0, and
  // anything else makes the division below well-defined
  if (sum_sq == 0.0) {
    return 1.0;  // everyone equally at zero
  }
  return (sum * sum) / (static_cast<double>(report.size()) * sum_sq);
}

void WriteMetricsJson(std::ostream& os, const RunMetrics& metrics) {
  os.precision(6);
  os << "{"
     << "\"total_requests\":" << metrics.total_requests << ","
     << "\"completed_requests\":" << metrics.completed_requests << ","
     << "\"tokens_total\":" << metrics.tokens_total << ","
     << "\"tokens_met\":" << metrics.tokens_met << ","
     << "\"slo_attainment\":" << metrics.SloAttainment() << ","
     << "\"throughput_rps\":" << metrics.Throughput() << ","
     << "\"goodput_rps\":" << metrics.Goodput() << ",";
  // Proxy-outcome counters only appear when nonzero, so proxy-less runs
  // keep their original key set.
  if (metrics.rejected_requests > 0) {
    os << "\"rejected_requests\":" << metrics.rejected_requests << ",";
  }
  if (metrics.shed_requests > 0) {
    os << "\"shed_requests\":" << metrics.shed_requests << ",";
  }
  if (metrics.timed_out_requests > 0) {
    os << "\"timed_out_requests\":" << metrics.timed_out_requests << ",";
  }
  if (metrics.degraded_requests > 0) {
    os << "\"degraded_requests\":" << metrics.degraded_requests << ",";
  }
  if (metrics.retry_attempts > 0) {
    os << "\"retry_attempts\":" << metrics.retry_attempts << ",";
  }
  // Control-plane replication block only when anything happened (same
  // convention: unreplicated runs keep their original key set). These are
  // simulated, deterministic counters — safe to diff across runs.
  if (metrics.ctrl.Any()) {
    os << "\"ctrl\":{"
       << "\"heartbeats_sent\":" << metrics.ctrl.heartbeats_sent << ","
       << "\"heartbeats_missed\":" << metrics.ctrl.heartbeats_missed << ","
       << "\"elections\":" << metrics.ctrl.elections << ","
       << "\"failovers\":" << metrics.ctrl.failovers << ","
       << "\"redispatched_requests\":" << metrics.ctrl.redispatched_requests << ","
       << "\"frontdoor_replays\":" << metrics.ctrl.frontdoor_replays << ","
       << "\"max_log_depth\":" << metrics.ctrl.max_log_depth << ","
       << "\"leader_downtime\":" << metrics.ctrl.leader_downtime << "},";
  }
  // Cost keys only when the pool has a rental rate (same convention as the
  // proxy counters: cost-less runs keep their original key set).
  if (metrics.pool_cost_per_hour > 0.0) {
    os << "\"pool_cost_per_hour\":" << metrics.pool_cost_per_hour << ","
       << "\"tokens_generated\":" << metrics.tokens_generated << ","
       << "\"cost_per_1k_tokens\":" << metrics.CostPer1kTokens() << ",";
  }
  // Host-side simulation cost: pooled counters always; per-shard breakdown
  // and epoch count only for sharded-fleet runs. Wall-clock values are
  // measured, not simulated — dashboards must not diff them across runs.
  os << "\"sim\":{"
     << "\"events_processed\":" << metrics.sim.events_processed << ","
     << "\"wall_seconds\":" << metrics.sim.wall_seconds << ","
     << "\"events_per_sec\":" << metrics.sim.EventsPerSec();
  if (metrics.sync_epochs > 0) {
    os << ",\"sync_epochs\":" << metrics.sync_epochs
       << ",\"sync_epochs_skipped\":" << metrics.sync_epochs_skipped;
  }
  if (!metrics.shard_sim.empty()) {
    os << ",\"shards\":[";
    for (size_t i = 0; i < metrics.shard_sim.size(); ++i) {
      const SimPerfCounters& shard = metrics.shard_sim[i];
      os << (i == 0 ? "" : ",") << "{"
         << "\"events_processed\":" << shard.events_processed << ","
         << "\"wall_seconds\":" << shard.wall_seconds << ","
         << "\"idle_shard_skips\":" << shard.idle_shard_skips << ","
         << "\"barrier_wait_seconds\":" << shard.barrier_wait_seconds;
      if (shard.epochs_skipped > 0) {
        // Global loop property, stamped on shard 0 (see SimPerfCounters).
        os << ",\"epochs_skipped\":" << shard.epochs_skipped;
      }
      os << "}";
    }
    os << "]";
  }
  os << "},";
  os << "\"horizon_s\":" << metrics.horizon << ","
     << "\"ttft_mean_s\":" << Mean(metrics.ttft_samples) << ","
     << "\"ttft_p99_s\":"
     << Percentile(metrics.ttft_samples, 99) << ","
     << "\"switches\":" << metrics.switch_latency_samples.size() << ","
     << "\"switch_mean_s\":" << Mean(metrics.switch_latency_samples) << ","
     << "\"breakdown\":{"
     << "\"prefill_wait_s\":" << metrics.breakdown.prefill_wait << ","
     << "\"prefill_exec_s\":" << metrics.breakdown.prefill_exec << ","
     << "\"decode_wait_s\":" << metrics.breakdown.decode_wait << ","
     << "\"decode_exec_s\":" << metrics.breakdown.decode_exec << ","
     << "\"control_overhead_s\":" << metrics.breakdown.control_overhead << ","
     << "\"data_overhead_s\":" << metrics.breakdown.data_overhead << "}}";
}

}  // namespace aegaeon
