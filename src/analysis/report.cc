#include "analysis/report.h"

#include <map>
#include <ostream>

#include "analysis/stats.h"
#include "analysis/table.h"

namespace aegaeon {

std::vector<ModelReport> BuildPerModelReport(const std::vector<Request>& requests,
                                             const ModelRegistry& registry) {
  std::map<ModelId, ModelReport> by_model;
  std::map<ModelId, std::vector<double>> ttfts;
  for (const Request& r : requests) {
    ModelReport& report = by_model[r.model];
    if (report.requests == 0) {
      report.id = r.model;
      report.name = registry.Get(r.model).spec.name;
    }
    report.requests++;
    report.completed += r.finished() ? 1 : 0;
    report.tokens_total += r.output_tokens;
    report.tokens_met += r.tokens_met;
    if (r.first_token_time != kTimeUnset) {
      ttfts[r.model].push_back(r.first_token_time - r.arrival);
    }
  }
  std::vector<ModelReport> rows;
  rows.reserve(by_model.size());
  for (auto& [id, report] : by_model) {
    report.mean_ttft = Mean(ttfts[id]);
    report.p99_ttft = Percentile(ttfts[id], 99);
    rows.push_back(std::move(report));
  }
  return rows;
}

void PrintPerModelReport(std::ostream& os, const std::vector<ModelReport>& report) {
  Table table({"model", "requests", "completed", "SLO attain", "mean TTFT", "p99 TTFT"});
  for (const ModelReport& row : report) {
    table.AddRow({row.name, std::to_string(row.requests), std::to_string(row.completed),
                  Table::Pct(row.Attainment()), Table::Num(row.mean_ttft, 3) + "s",
                  Table::Num(row.p99_ttft, 3) + "s"});
  }
  table.Print(os);
}

void WriteMetricsJson(std::ostream& os, const RunMetrics& metrics) {
  os.precision(6);
  os << "{"
     << "\"total_requests\":" << metrics.total_requests << ","
     << "\"completed_requests\":" << metrics.completed_requests << ","
     << "\"tokens_total\":" << metrics.tokens_total << ","
     << "\"tokens_met\":" << metrics.tokens_met << ","
     << "\"slo_attainment\":" << metrics.SloAttainment() << ","
     << "\"throughput_rps\":" << metrics.Throughput() << ","
     << "\"horizon_s\":" << metrics.horizon << ","
     << "\"ttft_mean_s\":" << Mean(metrics.ttft_samples) << ","
     << "\"ttft_p99_s\":"
     << Percentile(metrics.ttft_samples, 99) << ","
     << "\"switches\":" << metrics.switch_latency_samples.size() << ","
     << "\"switch_mean_s\":" << Mean(metrics.switch_latency_samples) << ","
     << "\"breakdown\":{"
     << "\"prefill_wait_s\":" << metrics.breakdown.prefill_wait << ","
     << "\"prefill_exec_s\":" << metrics.breakdown.prefill_exec << ","
     << "\"decode_wait_s\":" << metrics.breakdown.decode_wait << ","
     << "\"decode_exec_s\":" << metrics.breakdown.decode_exec << ","
     << "\"control_overhead_s\":" << metrics.breakdown.control_overhead << ","
     << "\"data_overhead_s\":" << metrics.breakdown.data_overhead << "}}";
}

}  // namespace aegaeon
