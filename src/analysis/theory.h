// Theorem 3.1 and its simulation counterpart (§3.1, Figure 4): the expected
// active model count under per-model Poisson arrivals with rate lambda and
// mean service time T is E[m] = M * (1 - e^(-lambda*T)).

#ifndef AEGAEON_ANALYSIS_THEORY_H_
#define AEGAEON_ANALYSIS_THEORY_H_

#include <cstdint>
#include <vector>

namespace aegaeon {

// Closed form of Theorem 3.1.
double ExpectedActiveModels(int models, double lambda, double service_time);

// Simulates the active-model-count process: M independent Poisson arrival
// streams, each request keeping its model "active" for `service_time`
// seconds. Returns the count sampled every `sample_interval` seconds over
// [warmup, horizon) (warmup lets the process reach steady state).
struct ActiveModelTrace {
  std::vector<double> sample_times;
  std::vector<int> active_counts;
  double mean = 0.0;
};
ActiveModelTrace SimulateActiveModels(int models, double lambda, double service_time,
                                      double horizon, double sample_interval, uint64_t seed,
                                      double warmup = 0.0);

}  // namespace aegaeon

#endif  // AEGAEON_ANALYSIS_THEORY_H_
