#include "analysis/timeline.h"

#include <fstream>
#include <ostream>

namespace aegaeon {
namespace {

// Minimal JSON string escaping for names we generate ourselves.
void WriteEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

}  // namespace

void TimelineRecorder::Record(int lane, std::string category, std::string name, TimePoint start,
                              Duration duration) {
  spans_.push_back(Span{lane, std::move(category), std::move(name), start, duration});
}

void TimelineRecorder::WriteChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"";
    WriteEscaped(os, span.name);
    os << "\",\"cat\":\"";
    WriteEscaped(os, span.category);
    os << "\",\"ph\":\"X\",\"ts\":" << static_cast<int64_t>(span.start * 1e6)
       << ",\"dur\":" << static_cast<int64_t>(span.duration * 1e6)
       << ",\"pid\":0,\"tid\":" << span.lane << "}";
  }
  os << "]}";
}

bool TimelineRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  WriteChromeTrace(file);
  return static_cast<bool>(file);
}

}  // namespace aegaeon
