// Paper-style output: simple aligned ASCII tables and figure series for the
// bench binaries.

#ifndef AEGAEON_ANALYSIS_TABLE_H_
#define AEGAEON_ANALYSIS_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace aegaeon {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string Num(double value, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "name: x1 y1 | x2 y2 | ..." series lines for figure output.
void PrintSeries(std::ostream& os, const std::string& name, const std::vector<double>& xs,
                 const std::vector<double>& ys, int precision = 3);

}  // namespace aegaeon

#endif  // AEGAEON_ANALYSIS_TABLE_H_
