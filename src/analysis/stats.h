// Small statistics helpers: percentiles and CDF series for the paper's
// figure reproductions.

#ifndef AEGAEON_ANALYSIS_STATS_H_
#define AEGAEON_ANALYSIS_STATS_H_

#include <vector>

namespace aegaeon {

// Percentile in [0, 100] by linear interpolation; 0 on empty input.
double Percentile(std::vector<double> values, double pct);

double Mean(const std::vector<double>& values);

// Evenly spaced CDF points (x = value, y = cumulative fraction) suitable
// for printing a figure series. Returns up to `points` samples.
struct CdfPoint {
  double value;
  double fraction;
};
std::vector<CdfPoint> BuildCdf(std::vector<double> values, int points = 20);

}  // namespace aegaeon

#endif  // AEGAEON_ANALYSIS_STATS_H_
