// Simulated CUDA streams and events.
//
// These mirror the semantics of the five CUDA event APIs the paper relies on
// (Table 2): cudaEventRecord, cudaEventQuery, cudaStreamWaitEvent, and the
// two cudaIpc*EventHandle calls. A StreamSim is an in-order queue modeled by
// its completion horizon; an EventSim captures the horizon of a stream at
// record time. Events are value types (like CUDA's IPC-shared handles), so
// "sharing an event across processes" is a copy.

#ifndef AEGAEON_HW_CUDA_SIM_H_
#define AEGAEON_HW_CUDA_SIM_H_

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace aegaeon {

// Completion marker for work submitted to a stream. A default-constructed
// event is "already complete" (like a recorded-but-empty CUDA event).
class EventSim {
 public:
  EventSim() = default;

  // cudaEventQuery: has the captured work finished by `now`?
  bool Query(TimePoint now) const { return now >= complete_at_; }

  // Completion time of the captured work.
  TimePoint complete_at() const { return complete_at_; }

  // cudaIpcGetEventHandle / cudaIpcOpenEventHandle: events are shared by
  // value; an IPC handle is just a copy of the event.
  EventSim IpcHandle() const { return *this; }

 private:
  friend class StreamSim;
  explicit EventSim(TimePoint complete_at) : complete_at_(complete_at) {}

  TimePoint complete_at_ = 0.0;
};

// An in-order execution queue (compute stream, copy stream, ...).
// Work enqueued at time `now` starts at max(now, horizon) and pushes the
// horizon forward by its duration.
class StreamSim {
 public:
  explicit StreamSim(std::string name) : name_(std::move(name)) {}

  struct Span {
    TimePoint start;
    TimePoint end;
  };

  // Submits work of the given duration. Returns its execution span.
  Span Enqueue(TimePoint now, Duration duration);

  // cudaStreamWaitEvent: all future work waits for `event`.
  void WaitEvent(const EventSim& event);

  // cudaEventRecord: captures the completion of all work enqueued so far.
  EventSim Record() const { return EventSim(horizon_); }

  // Blocks (in simulated time) until the stream drains: returns the horizon.
  TimePoint Synchronize() const { return horizon_; }

  // True if all submitted work completes by `now`.
  bool Idle(TimePoint now) const { return now >= horizon_; }

  TimePoint horizon() const { return horizon_; }
  const std::string& name() const { return name_; }

  // Total busy time accumulated by this stream (for utilization reports).
  Duration busy_time() const { return busy_time_; }

 private:
  std::string name_;
  TimePoint horizon_ = 0.0;
  Duration busy_time_ = 0.0;
};

}  // namespace aegaeon

#endif  // AEGAEON_HW_CUDA_SIM_H_
