// Static descriptions of the GPU SKUs used in the paper's evaluation.
//
// The simulator derives all execution and transfer latencies from these
// specs (together with the efficiency factors below), so a single place
// controls calibration. Values are public datasheet numbers.

#ifndef AEGAEON_HW_GPU_SPEC_H_
#define AEGAEON_HW_GPU_SPEC_H_

#include <cstdint>
#include <string>

namespace aegaeon {

inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kGB = 1e9;

struct GpuSpec {
  std::string name;
  // Total device memory.
  double vram_bytes = 0.0;
  // Peak dense FP16/BF16 throughput, in FLOP/s.
  double peak_fp16_flops = 0.0;
  // Peak HBM bandwidth, bytes/s.
  double hbm_bytes_per_s = 0.0;
  // Host link bandwidth (PCIe), bytes/s, one direction.
  double pcie_bytes_per_s = 0.0;

  // Achievable fraction of peak compute during dense prefill GEMMs.
  double compute_efficiency = 0.45;
  // Achievable fraction of peak HBM bandwidth during decoding.
  double membw_efficiency = 0.70;
  // Achievable fraction of PCIe bandwidth with the optimized multi-threaded,
  // chunked, pipelined copy path (the paper's beta = 0.625, Appendix A.2).
  double pcie_efficiency = 0.625;
  // Fixed per-kernel-launch/step overhead for a token generation job, in
  // seconds. Covers kernel launches, sampling, and Python/engine overhead.
  double step_overhead_s = 0.004;
  // Market rental rate, $/hour per GPU. 0 means "unset": cost-derived
  // outputs ($/1k-tokens columns, planner objectives) are then omitted or
  // fall back to GPU-count minimization.
  double cost_per_hour = 0.0;

  double effective_flops() const { return peak_fp16_flops * compute_efficiency; }
  double effective_hbm() const { return hbm_bytes_per_s * membw_efficiency; }
  double effective_pcie() const { return pcie_bytes_per_s * pcie_efficiency; }

  // NVIDIA H800 80GB (SXM): the paper's primary testbed GPU (§7.1).
  static GpuSpec H800();
  // NVIDIA H20 96GB: the production deployment GPU (§7.5).
  static GpuSpec H20();
  // NVIDIA A10 24GB: the lower-end sensitivity study GPU (§7.4).
  static GpuSpec A10();
  // NVIDIA A100 80GB: used in the multiplexing capacity discussion (§2.3).
  static GpuSpec A100();
};

}  // namespace aegaeon

#endif  // AEGAEON_HW_GPU_SPEC_H_
