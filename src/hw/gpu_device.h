// A simulated GPU: VRAM accounting, a PCIe link to the host, and the four
// streams Aegaeon uses (default/compute, KV-in, KV-out, prefetch — Figure 10).

#ifndef AEGAEON_HW_GPU_DEVICE_H_
#define AEGAEON_HW_GPU_DEVICE_H_

#include <cstdint>
#include <string>

#include "hw/cuda_sim.h"
#include "hw/gpu_spec.h"
#include "hw/pcie_link.h"
#include "sim/time.h"

namespace aegaeon {

using GpuId = uint32_t;

class GpuDevice {
 public:
  GpuDevice(GpuId id, const GpuSpec& spec);
  ~GpuDevice();

  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  GpuId id() const { return id_; }
  const GpuSpec& spec() const { return spec_; }
  PcieLink& link() { return link_; }

  StreamSim& compute_stream() { return compute_; }
  StreamSim& kv_in_stream() { return kv_in_; }
  StreamSim& kv_out_stream() { return kv_out_; }
  StreamSim& prefetch_stream() { return prefetch_; }

  // Submits a host<->device copy on `stream`, also occupying the PCIe link.
  // The copy starts no earlier than `ready_after` (e.g. an event dependency)
  // and no earlier than the stream's current horizon.
  StreamSim::Span EnqueueCopy(StreamSim& stream, TimePoint now, double bytes, CopyDir dir,
                              double effective_fraction, TimePoint ready_after = 0.0);

  // Convenience: copy at the optimized (stage-buffered) efficiency.
  StreamSim::Span EnqueueOptimizedCopy(StreamSim& stream, TimePoint now, double bytes,
                                       CopyDir dir, TimePoint ready_after = 0.0);

  // --- VRAM accounting -------------------------------------------------
  // Tracks logical occupancy; allocators in mem/ manage layout on top.

  // Reserves `bytes`; returns false (and reserves nothing) on exhaustion.
  bool AllocVram(double bytes);
  void FreeVram(double bytes);

  double vram_used() const { return vram_used_; }
  double vram_free() const { return spec_.vram_bytes - vram_used_; }
  double vram_peak() const { return vram_peak_; }

 private:
  GpuId id_;
  GpuSpec spec_;
  PcieLink link_;
  StreamSim compute_;
  StreamSim kv_in_;
  StreamSim kv_out_;
  StreamSim prefetch_;
  double vram_used_ = 0.0;
  double vram_peak_ = 0.0;
};

}  // namespace aegaeon

#endif  // AEGAEON_HW_GPU_DEVICE_H_
