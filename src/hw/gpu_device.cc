#include "hw/gpu_device.h"

#include <algorithm>
#include <cassert>

#include "sanitizer/simsan.h"

namespace aegaeon {

GpuDevice::GpuDevice(GpuId id, const GpuSpec& spec)
    : id_(id),
      spec_(spec),
      link_(spec.pcie_bytes_per_s, spec.pcie_efficiency),
      compute_("gpu" + std::to_string(id) + "/compute"),
      kv_in_("gpu" + std::to_string(id) + "/kv_in"),
      kv_out_("gpu" + std::to_string(id) + "/kv_out"),
      prefetch_("gpu" + std::to_string(id) + "/prefetch") {
  simsan::NoteAllocatorName(this, "gpu" + std::to_string(id));
}

GpuDevice::~GpuDevice() { simsan::NoteGpuDestroyed(this); }

StreamSim::Span GpuDevice::EnqueueCopy(StreamSim& stream, TimePoint now, double bytes,
                                       CopyDir dir, double effective_fraction,
                                       TimePoint ready_after) {
  // The copy occupies both the stream (in-order with prior work on it) and
  // the link direction (serialized with other copies the same way).
  TimePoint gate = std::max(ready_after, stream.horizon());
  PcieLink::Span span = link_.Transfer(now, bytes, dir, effective_fraction, gate);
  stream.Enqueue(span.start, span.end - span.start);
  return StreamSim::Span{span.start, span.end};
}

StreamSim::Span GpuDevice::EnqueueOptimizedCopy(StreamSim& stream, TimePoint now, double bytes,
                                                CopyDir dir, TimePoint ready_after) {
  return EnqueueCopy(stream, now, bytes, dir, spec_.pcie_efficiency, ready_after);
}

bool GpuDevice::AllocVram(double bytes) {
  assert(bytes >= 0.0);
  if (vram_used_ + bytes > spec_.vram_bytes) {
    return false;
  }
  vram_used_ += bytes;
  vram_peak_ = std::max(vram_peak_, vram_used_);
  simsan::NoteVramAlloc(this, bytes);
  return true;
}

void GpuDevice::FreeVram(double bytes) {
  assert(bytes >= 0.0);
  simsan::NoteVramFree(this, bytes);
  vram_used_ = std::max(0.0, vram_used_ - bytes);
}

}  // namespace aegaeon
