#include "hw/pcie_link.h"

#include <cassert>

namespace aegaeon {

PcieLink::Span PcieLink::Transfer(TimePoint now, double bytes, CopyDir dir,
                                  double effective_fraction, TimePoint ready_after) {
  assert(bytes >= 0.0);
  assert(effective_fraction > 0.0 && effective_fraction <= 1.0);
  TimePoint& free_at = (dir == CopyDir::kHostToDevice) ? free_h2d_ : free_d2h_;
  Duration& busy = (dir == CopyDir::kHostToDevice) ? busy_h2d_ : busy_d2h_;
  TimePoint start = std::max({now, free_at, ready_after});
  Duration duration = bytes / (raw_bw_ * effective_fraction * health_);
  TimePoint end = start + duration;
  free_at = end;
  busy += duration;
  return Span{start, end};
}

}  // namespace aegaeon
