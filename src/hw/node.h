// A physical node: a set of GPUs plus host DRAM (Figure 5's per-node view).

#ifndef AEGAEON_HW_NODE_H_
#define AEGAEON_HW_NODE_H_

#include <memory>
#include <vector>

#include "hw/gpu_device.h"
#include "hw/gpu_spec.h"

namespace aegaeon {

class Node {
 public:
  // Builds a node with `gpu_count` identical GPUs and `dram_bytes` of host
  // memory. GPU ids are assigned starting from `first_gpu_id`.
  Node(int gpu_count, const GpuSpec& spec, double dram_bytes, GpuId first_gpu_id = 0);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int gpu_count() const { return static_cast<int>(gpus_.size()); }
  GpuDevice& gpu(int i) { return *gpus_[i]; }
  const GpuDevice& gpu(int i) const { return *gpus_[i]; }

  double dram_bytes() const { return dram_bytes_; }

  // Host DRAM accounting (model cache, unified CPU KV cache, stage buffers).
  bool AllocDram(double bytes);
  void FreeDram(double bytes);
  double dram_used() const { return dram_used_; }
  double dram_free() const { return dram_bytes_ - dram_used_; }

 private:
  std::vector<std::unique_ptr<GpuDevice>> gpus_;
  double dram_bytes_;
  double dram_used_ = 0.0;
};

}  // namespace aegaeon

#endif  // AEGAEON_HW_NODE_H_
