// Simulated PCIe link between a GPU and host memory.
//
// PCIe is full duplex: host-to-device and device-to-host transfers proceed
// independently, but transfers in the same direction serialize. The link
// exposes both the raw datasheet bandwidth and the effective bandwidth of
// the optimized copy path (multi-threaded, chunked, pipelined via a stage
// buffer — §5.2 "Quick model loading").

#ifndef AEGAEON_HW_PCIE_LINK_H_
#define AEGAEON_HW_PCIE_LINK_H_

#include <algorithm>

#include "sim/time.h"

namespace aegaeon {

enum class CopyDir {
  kHostToDevice,
  kDeviceToHost,
};

class PcieLink {
 public:
  // `raw_bw` is the datasheet bandwidth, bytes/s per direction.
  // `efficiency` is the achievable fraction with the optimized copy path.
  PcieLink(double raw_bw, double efficiency)
      : raw_bw_(raw_bw), efficiency_(efficiency) {}

  struct Span {
    TimePoint start;
    TimePoint end;
  };

  // Schedules a transfer of `bytes` in direction `dir` submitted at `now`.
  // `effective_fraction` is the fraction of raw bandwidth this copy path
  // achieves (use efficiency() for the optimized path, or a lower figure for
  // naive per-tensor loading). An optional `ready_after` gate delays the
  // start (e.g. a stream dependency).
  Span Transfer(TimePoint now, double bytes, CopyDir dir, double effective_fraction,
                TimePoint ready_after = 0.0);

  // Duration of a transfer at the optimized effective bandwidth, ignoring
  // queueing. Used by latency estimators (Eq. 4).
  Duration OptimizedDuration(double bytes) const { return bytes / (raw_bw_ * efficiency_); }

  double raw_bw() const { return raw_bw_; }
  double efficiency() const { return efficiency_; }

  // Degradation fraction in (0, 1] multiplying the usable bandwidth — the
  // fault engine's transfer-link fault (ctrl/fault_plan.h). 1.0 (the
  // default) is a bitwise no-op on every transfer duration.
  void set_health(double fraction) { health_ = fraction; }
  double health() const { return health_; }

  // Cumulative busy time per direction, for utilization reports.
  Duration busy_h2d() const { return busy_h2d_; }
  Duration busy_d2h() const { return busy_d2h_; }

 private:
  double raw_bw_;
  double efficiency_;
  double health_ = 1.0;
  TimePoint free_h2d_ = 0.0;
  TimePoint free_d2h_ = 0.0;
  Duration busy_h2d_ = 0.0;
  Duration busy_d2h_ = 0.0;
};

}  // namespace aegaeon

#endif  // AEGAEON_HW_PCIE_LINK_H_
