#include "hw/cuda_sim.h"

#include <algorithm>

namespace aegaeon {

StreamSim::Span StreamSim::Enqueue(TimePoint now, Duration duration) {
  TimePoint start = std::max(now, horizon_);
  TimePoint end = start + std::max(duration, 0.0);
  horizon_ = end;
  busy_time_ += end - start;
  return Span{start, end};
}

void StreamSim::WaitEvent(const EventSim& event) {
  horizon_ = std::max(horizon_, event.complete_at());
}

}  // namespace aegaeon
