#include "hw/cuda_sim.h"

#include <algorithm>

#include "sanitizer/simsan.h"

namespace aegaeon {

StreamSim::Span StreamSim::Enqueue(TimePoint now, Duration duration) {
  TimePoint start = std::max(now, horizon_);
  TimePoint end = start + std::max(duration, 0.0);
  horizon_ = end;
  busy_time_ += end - start;
  simsan::NoteStreamEnqueue(this, name_, start, end);
  return Span{start, end};
}

void StreamSim::WaitEvent(const EventSim& event) {
  horizon_ = std::max(horizon_, event.complete_at());
  simsan::NoteStreamWait(this, name_, event.complete_at());
}

}  // namespace aegaeon
