#include "hw/node.h"

#include <cassert>

namespace aegaeon {

Node::Node(int gpu_count, const GpuSpec& spec, double dram_bytes, GpuId first_gpu_id)
    : dram_bytes_(dram_bytes) {
  assert(gpu_count > 0);
  gpus_.reserve(gpu_count);
  for (int i = 0; i < gpu_count; ++i) {
    gpus_.push_back(std::make_unique<GpuDevice>(first_gpu_id + i, spec));
  }
}

bool Node::AllocDram(double bytes) {
  assert(bytes >= 0.0);
  if (dram_used_ + bytes > dram_bytes_) {
    return false;
  }
  dram_used_ += bytes;
  return true;
}

void Node::FreeDram(double bytes) {
  assert(bytes >= 0.0);
  dram_used_ -= bytes;
  if (dram_used_ < 0.0) {
    dram_used_ = 0.0;
  }
}

}  // namespace aegaeon
