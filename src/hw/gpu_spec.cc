#include "hw/gpu_spec.h"

namespace aegaeon {

GpuSpec GpuSpec::H800() {
  GpuSpec spec;
  spec.name = "H800-80GB";
  spec.vram_bytes = 80.0 * kGiB;
  spec.peak_fp16_flops = 989e12;
  spec.hbm_bytes_per_s = 3350.0 * kGB;
  // Hopper parts ride PCIe Gen5 x16; with the 0.625 efficiency factor this
  // gives the ~40 GB/s effective loading the paper's sub-second 13B
  // scale-ups imply.
  spec.pcie_bytes_per_s = 64.0 * kGB;
  // Market rates (on-demand cloud list prices, mid-2025 ballpark): H800
  // ~$4.50/h, H20 ~$2.80/h, A10 ~$1.01/h, A100 ~$3.67/h. These set the
  // relative cost ordering the planner optimizes; absolute levels only
  // scale the reported $/hour.
  spec.cost_per_hour = 4.50;
  return spec;
}

GpuSpec GpuSpec::H20() {
  GpuSpec spec;
  spec.name = "H20-96GB";
  spec.vram_bytes = 96.0 * kGiB;
  spec.peak_fp16_flops = 148e12;
  spec.hbm_bytes_per_s = 4000.0 * kGB;
  spec.pcie_bytes_per_s = 64.0 * kGB;
  spec.cost_per_hour = 2.80;
  return spec;
}

GpuSpec GpuSpec::A10() {
  GpuSpec spec;
  spec.name = "A10-24GB";
  spec.vram_bytes = 24.0 * kGiB;
  spec.peak_fp16_flops = 125e12;
  spec.hbm_bytes_per_s = 600.0 * kGB;
  spec.pcie_bytes_per_s = 32.0 * kGB;
  spec.cost_per_hour = 1.01;
  return spec;
}

GpuSpec GpuSpec::A100() {
  GpuSpec spec;
  spec.name = "A100-80GB";
  spec.vram_bytes = 80.0 * kGiB;
  spec.peak_fp16_flops = 312e12;
  spec.hbm_bytes_per_s = 2039.0 * kGB;
  spec.pcie_bytes_per_s = 32.0 * kGB;
  spec.cost_per_hour = 3.67;
  return spec;
}

}  // namespace aegaeon
