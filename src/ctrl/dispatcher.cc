#include "ctrl/dispatcher.h"

namespace aegaeon {

int LeastOutstandingDispatcher::Route(const ArrivalEvent& event, const CellLoadFn& load,
                                      int cells) {
  (void)event;
  int best = 0;
  uint64_t best_load = ~uint64_t{0};
  for (int i = 0; i < cells; ++i) {
    const uint64_t outstanding = load(i);
    if (outstanding < best_load) {
      best_load = outstanding;
      best = i;
    }
  }
  return best;
}

int RoundRobinDispatcher::Route(const ArrivalEvent& event, const CellLoadFn& load, int cells) {
  (void)event;
  (void)load;
  const int target = next_;
  next_ = (next_ + 1) % cells;
  return target;
}

}  // namespace aegaeon
