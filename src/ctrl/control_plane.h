// Replicated fleet control plane: leader election, heartbeats, and the
// bounded re-dispatch log that makes dispatcher failover exactly-once.
//
// The fleet dispatcher is a single point of failure: every arrival flows
// through it, and an arrival routed but not yet delivered when the
// dispatcher dies would simply vanish. This module replicates the
// dispatcher as one leader plus N-1 followers that shadow its routing
// state, all running inside the fleet's serial barrier stage:
//
//   * Transport. Replicas exchange messages (heartbeats, votes, crash and
//     recovery injections) through a deterministic EpochMailboxes channel
//     (sim/mailbox.h) — the same (time, source, seq)-ordered machinery the
//     fleet uses for cross-shard arrivals — drained into a min-heap and
//     processed in strict key order. Timers are self-messages. Nothing in
//     here reads the wall clock or an RNG, so a run is a pure function of
//     (trace, config, fault plan) and stays bit-identical for every shard
//     and worker count.
//
//   * Election. Term-based, raft-shaped: replica 0 boots as leader of term
//     1 and heartbeats every `heartbeat_interval`. A follower whose
//     heartbeat timeout expires (timeouts are deterministically staggered
//     per replica — no randomized timers) becomes a candidate, increments
//     the term, votes for itself, and requests votes; a strict majority
//     makes it leader, and its first act is to replay the re-dispatch log.
//     A crashed replica recovers as a follower and rejoins via the same
//     machine — with replicas == 1 the sole replica re-elects itself
//     (majority of one) after its own recovery.
//
//   * Re-dispatch log, exactly once. Routing a request produces a delivery
//     due at route_time + dispatch_latency. A delivery whose due time is
//     at or before the next scheduled dispatcher crash cannot be lost and
//     commits immediately (bit-identical to the unreplicated fleet — this
//     is the golden-tested disabled path). Otherwise the entry enters the
//     log as in-flight: it either commits when simulated time passes its
//     due time, or the leader dies first (route_time < T_crash < due) and
//     the entry is lost — moved back, in seq order, to the front-door
//     queue the successor replays. Every entry therefore commits exactly
//     once: the log is the only delivery path, entries leave it only by
//     committing, and a lost entry re-enters the queue exactly once per
//     loss. Arrivals offered while no leader is alive wait in the same
//     queue. Both the queue and the log are capacity-bounded
//     (`redispatch_log_capacity`); overflow aborts the run — it means the
//     modeled front door could not have buffered the outage.
//
//   * Lookahead interaction. The fleet's epoch planner must never open a
//     window past a pending external effect of the control plane, so
//     NextPendingTime() exposes the earliest uncommitted delivery or — when
//     arrivals are queued behind a dead leader — the next internal event
//     that can advance the election. Heartbeats between live replicas have
//     no external effect and never bound an epoch; they are processed
//     lazily when the planner advances the machine to each barrier
//     horizon. See DESIGN.md §12.
//
// The control plane knows nothing about cells: the fleet injects routing,
// delivery, and un-routing as callbacks (Hooks), keeping this module pure
// protocol.

#ifndef AEGAEON_CTRL_CONTROL_PLANE_H_
#define AEGAEON_CTRL_CONTROL_PLANE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "analysis/metrics.h"
#include "core/request.h"
#include "sim/mailbox.h"
#include "sim/time.h"

namespace aegaeon {

struct ControlPlaneConfig {
  // Dispatcher replicas. 1 = replication disabled: a sole always-leader
  // replica, no heartbeats, bit-identical to the unreplicated fleet.
  int replicas = 1;
  // Leader -> follower heartbeat period (simulated seconds).
  Duration heartbeat_interval = 0.5;
  // Base heartbeat timeout; replica i times out after
  // election_timeout + i * election_stagger. Deterministic staggering
  // replaces raft's randomized timers so elections cannot split forever
  // and results stay reproducible.
  Duration election_timeout = 2.0;
  Duration election_stagger = 0.25;
  // One replica -> replica message hop.
  Duration ctrl_latency = 0.01;
  // Upper bound on in-flight log entries plus queued arrivals; exceeding
  // it aborts the run (the modeled front door could not buffer the
  // outage).
  size_t redispatch_log_capacity = 1 << 16;
};

class ControlPlane {
 public:
  struct Hooks {
    // Picks the target cell for an arrival (and accounts it as pending
    // there). Called at route time, in simulated-time order.
    std::function<int(const ArrivalEvent&)> route;
    // Commits a routed arrival: the cell must see it at `deliver_at`.
    // Calls arrive in nondecreasing deliver_at order.
    std::function<void(const ArrivalEvent&, int target, TimePoint deliver_at)> deliver;
    // A routed-but-undelivered arrival was lost with its leader; undo the
    // pending accounting on `target` (the replay routes it afresh).
    std::function<void(int target)> unroute;
  };

  ControlPlane(ControlPlaneConfig config, Duration dispatch_latency, Hooks hooks);

  // Schedules the replica leading at `when` to crash and recover
  // `downtime` seconds later. A crash while no leader is alive is a no-op.
  // Call before Begin(); plans persist across runs.
  void ScheduleLeaderCrash(TimePoint when, Duration downtime);

  // Resets protocol state for a run and re-arms scheduled crashes.
  // Replica 0 leads term 1 from t = 0.
  void Begin();

  // Offers one arrival at event.time (nondecreasing across calls).
  // Internally advances the machine to event.time first, then routes the
  // arrival (live leader) or queues it (no leader).
  void Offer(const ArrivalEvent& event);

  // Processes every internal message and commits every due delivery with
  // timestamp <= t.
  void AdvanceTo(TimePoint t);

  // Advances until no dispatch is queued or in flight (single-cell runs
  // and the end-of-trace drain). Heartbeat traffic alone never blocks
  // this: it stops as soon as the dispatch pipeline is empty.
  void Drain();

  // No queued arrivals and no in-flight log entries.
  bool Drained() const { return queued_.empty() && log_.empty(); }

  // Earliest pending external effect: the fleet's epoch planner must not
  // open a window beyond this. kTimeNever when idle (live leader, empty
  // log) — then only arrivals bound epochs, exactly as without
  // replication. (Non-const: it may pump freshly posted transport
  // messages into the inbox.)
  TimePoint NextPendingTime();

  // Live leader replica, or -1 while leaderless.
  int leader() const { return leader_; }
  uint64_t term() const { return term_; }
  const CtrlStats& stats() const { return stats_; }

 private:
  enum class Role : uint8_t { kFollower, kCandidate, kLeader };

  enum class MsgKind : uint8_t {
    kHeartbeat,      // leader -> follower: term + latest routed seq
    kHeartbeatTick,  // leader self-timer: send the next round
    kTimeoutCheck,   // follower/candidate self-timer: silence detector
    kVoteRequest,    // candidate -> all: term
    kVoteGrant,      // voter -> candidate: term
    kCrash,          // fault injector -> the replica leading at delivery
    kRecover,        // fault injector -> a specific replica
  };

  struct Msg {
    MsgKind kind = MsgKind::kHeartbeat;
    uint32_t from = 0;
    uint64_t term = 0;
    // kHeartbeat: leader's latest routed seq (shadow-log replication).
    // kTimeoutCheck / kHeartbeatTick: the arming replica's timer marker.
    // kCrash: downtime in microseconds would lose precision — the plan
    // index instead.
    uint64_t marker = 0;
  };

  struct Replica {
    Role role = Role::kFollower;
    bool down = false;
    uint64_t term = 1;
    uint64_t voted_term = 0;  // highest term this replica granted a vote in
    int votes = 0;            // grants gathered as a candidate (incl. self)
    // Bumped on every state change that invalidates armed timers; timer
    // self-messages carry the marker they were armed with.
    uint64_t timer_marker = 0;
    // Highest routed seq known here via heartbeat piggyback: the shadow
    // re-dispatch log. Entries a successor replays beyond its own shadow
    // were recovered through the front door, not replication.
    uint64_t shadow_seq = 0;
  };

  struct Pending {
    uint64_t seq = 0;
    ArrivalEvent event{};
    // True when this arrival was routed by a dead leader and re-entered
    // the queue (counted as a re-dispatch when the successor replays it).
    bool replay = false;
  };

  struct LogEntry {
    uint64_t seq = 0;
    ArrivalEvent event{};
    int target = 0;
    TimePoint deliver_at = 0.0;
  };

  using NetEvent = CrossShardEvent<Msg>;
  struct NetAfter {
    bool operator()(const NetEvent& a, const NetEvent& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.source_shard != b.source_shard) {
        return a.source_shard > b.source_shard;
      }
      return a.seq > b.seq;
    }
  };

  Duration TimeoutOf(uint32_t replica) const {
    return config_.election_timeout +
           static_cast<double>(replica) * config_.election_stagger;
  }
  // Earliest scheduled crash not yet fired; kTimeNever when none remain.
  TimePoint NextCrashTime() const;

  void PumpNetwork();
  void Handle(const NetEvent& event);
  void Send(uint32_t from, int target, TimePoint at, Msg msg);
  void ArmTimer(uint32_t replica, TimePoint now);
  void StartCampaign(uint32_t replica, TimePoint now);
  void BecomeLeader(uint32_t replica, TimePoint now);
  void SendHeartbeats(uint32_t replica, TimePoint now);
  void CrashLeader(TimePoint now, Duration downtime);
  void RouteNow(Pending pending, TimePoint now);
  void CommitFront();
  void CheckCapacity();

  ControlPlaneConfig config_;
  Duration dispatch_latency_ = 0.0;
  Hooks hooks_;

  EpochMailboxes<Msg> network_;
  std::vector<NetEvent> net_scratch_;
  std::priority_queue<NetEvent, std::vector<NetEvent>, NetAfter> inbox_;

  std::vector<Replica> replicas_;
  int leader_ = 0;
  uint64_t term_ = 1;
  TimePoint now_ = 0.0;
  TimePoint down_since_ = kTimeUnset;

  // Front-door queue (awaiting a leader) and the in-flight log, both in
  // seq order; log deliver_at is nondecreasing by construction.
  std::deque<Pending> queued_;
  std::deque<LogEntry> log_;
  uint64_t next_seq_ = 0;
  uint64_t routed_seq_ = 0;  // latest seq the current leader has routed

  struct CrashPlan {
    TimePoint when = 0.0;
    Duration downtime = 0.0;
  };
  std::vector<CrashPlan> crash_plans_;  // sorted by `when`
  size_t next_crash_ = 0;               // first plan not yet fired

  CtrlStats stats_;
};

}  // namespace aegaeon

#endif  // AEGAEON_CTRL_CONTROL_PLANE_H_
