// Pluggable fleet routing policy.
//
// The ShardedFleet's serial barrier stage routes every arrival to one cell.
// The policy behind that choice is factored out here so the fleet can host
// alternative dispatchers (tests inject round-robin; the default reproduces
// the original least-outstanding router bit for bit) and so the replicated
// control plane (ctrl/control_plane.h) can re-invoke the same policy when a
// successor leader replays in-flight arrivals.
//
// A Dispatcher is pure policy: it sees a load view (outstanding requests per
// cell, including requests routed at this barrier but not yet delivered) and
// returns a target cell. It owns no cell state and schedules nothing, so it
// runs only in the serial barrier stage and keeps fleet determinism intact.

#ifndef AEGAEON_CTRL_DISPATCHER_H_
#define AEGAEON_CTRL_DISPATCHER_H_

#include <cstdint>
#include <functional>

#include "core/request.h"

namespace aegaeon {

// Outstanding load of cell `i` as seen at the current barrier.
using CellLoadFn = std::function<uint64_t(int cell)>;

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  // Called once per fleet Run before any routing.
  virtual void BeginRun(int cells) { (void)cells; }

  // Picks the target cell in [0, cells) for `event`. Must be a pure
  // function of (event, loads, internal deterministic state): no wall
  // clock, no RNG — fleet results must stay bit-identical across shard
  // and thread counts.
  virtual int Route(const ArrivalEvent& event, const CellLoadFn& load, int cells) = 0;
};

// The original fleet policy: least outstanding work, ties to the lowest
// cell id. Outstanding counts served, injected, and just-routed requests,
// so a burst spreads across cells instead of piling onto one snapshot
// winner.
class LeastOutstandingDispatcher : public Dispatcher {
 public:
  int Route(const ArrivalEvent& event, const CellLoadFn& load, int cells) override;
};

// Ignores load entirely; used by tests to prove the fleet honors an
// injected policy.
class RoundRobinDispatcher : public Dispatcher {
 public:
  void BeginRun(int cells) override {
    (void)cells;
    next_ = 0;
  }
  int Route(const ArrivalEvent& event, const CellLoadFn& load, int cells) override;

 private:
  int next_ = 0;
};

}  // namespace aegaeon

#endif  // AEGAEON_CTRL_DISPATCHER_H_
