#include "ctrl/control_plane.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace aegaeon {

namespace {

// kCrash target: resolved at delivery to whichever replica leads then.
constexpr int kToLeader = -1;

}  // namespace

ControlPlane::ControlPlane(ControlPlaneConfig config, Duration dispatch_latency, Hooks hooks)
    : config_(config),
      dispatch_latency_(dispatch_latency),
      hooks_(std::move(hooks)),
      network_(std::max(config.replicas, 1)) {
  config_.replicas = std::max(config_.replicas, 1);
}

void ControlPlane::ScheduleLeaderCrash(TimePoint when, Duration downtime) {
  if (!(when >= 0.0) || !(downtime > 0.0)) {
    std::fprintf(stderr,
                 "ControlPlane::ScheduleLeaderCrash: invalid plan (when=%f downtime=%f)\n",
                 when, downtime);
    std::abort();
  }
  CrashPlan plan;
  plan.when = when;
  plan.downtime = downtime;
  // Keep the plans sorted by fire time (ties keep insertion order) so the
  // plan index doubles as the "next crash" cursor.
  auto it = std::upper_bound(
      crash_plans_.begin(), crash_plans_.end(), plan,
      [](const CrashPlan& a, const CrashPlan& b) { return a.when < b.when; });
  crash_plans_.insert(it, plan);
}

void ControlPlane::Begin() {
  // Drop anything a previous run left in the transport.
  network_.CollectInto(net_scratch_);
  net_scratch_.clear();
  while (!inbox_.empty()) {
    inbox_.pop();
  }
  replicas_.assign(static_cast<size_t>(config_.replicas), Replica{});
  queued_.clear();
  log_.clear();
  next_seq_ = 1;
  routed_seq_ = 0;
  now_ = 0.0;
  down_since_ = kTimeUnset;
  next_crash_ = 0;
  stats_ = CtrlStats{};
  term_ = 1;
  leader_ = 0;
  replicas_[0].role = Role::kLeader;
  // Followers arm their silence detectors; the boot leader starts its
  // heartbeat cadence (a sole replica has no peers and stays silent).
  for (uint32_t i = 1; i < replicas_.size(); ++i) {
    ArmTimer(i, 0.0);
  }
  SendHeartbeats(0, 0.0);
  for (size_t i = 0; i < crash_plans_.size(); ++i) {
    Msg msg;
    msg.kind = MsgKind::kCrash;
    msg.marker = i;
    Send(network_.Dispatcher(), kToLeader, crash_plans_[i].when, msg);
  }
}

TimePoint ControlPlane::NextCrashTime() const {
  return next_crash_ < crash_plans_.size() ? crash_plans_[next_crash_].when : kTimeNever;
}

void ControlPlane::Send(uint32_t from, int target, TimePoint at, Msg msg) {
  network_.Post(from, target, at, msg);
}

void ControlPlane::PumpNetwork() {
  network_.CollectInto(net_scratch_);
  for (NetEvent& event : net_scratch_) {
    inbox_.push(event);
  }
  net_scratch_.clear();
}

void ControlPlane::ArmTimer(uint32_t replica, TimePoint now) {
  Replica& r = replicas_[replica];
  ++r.timer_marker;
  Msg msg;
  msg.kind = MsgKind::kTimeoutCheck;
  msg.from = replica;
  msg.marker = r.timer_marker;
  Send(replica, static_cast<int>(replica), now + TimeoutOf(replica), msg);
}

void ControlPlane::SendHeartbeats(uint32_t replica, TimePoint now) {
  if (replicas_.size() <= 1) {
    return;
  }
  Replica& r = replicas_[replica];
  Msg beat;
  beat.kind = MsgKind::kHeartbeat;
  beat.from = replica;
  beat.term = r.term;
  beat.marker = routed_seq_;  // shadow-log replication piggybacks here
  for (uint32_t j = 0; j < replicas_.size(); ++j) {
    if (j == replica) {
      continue;
    }
    ++stats_.heartbeats_sent;
    Send(replica, static_cast<int>(j), now + config_.ctrl_latency, beat);
  }
  Msg tick;
  tick.kind = MsgKind::kHeartbeatTick;
  tick.from = replica;
  tick.marker = r.timer_marker;
  Send(replica, static_cast<int>(replica), now + config_.heartbeat_interval, tick);
}

void ControlPlane::StartCampaign(uint32_t replica, TimePoint now) {
  Replica& r = replicas_[replica];
  r.role = Role::kCandidate;
  r.term += 1;
  r.voted_term = r.term;  // votes for itself
  r.votes = 1;
  ++stats_.elections;
  if (r.votes * 2 > config_.replicas) {
    BecomeLeader(replica, now);  // a sole replica is its own majority
    return;
  }
  Msg msg;
  msg.kind = MsgKind::kVoteRequest;
  msg.from = replica;
  msg.term = r.term;
  for (uint32_t j = 0; j < replicas_.size(); ++j) {
    if (j != replica) {
      Send(replica, static_cast<int>(j), now + config_.ctrl_latency, msg);
    }
  }
  ArmTimer(replica, now);  // campaign retry on a split/failed election
}

void ControlPlane::BecomeLeader(uint32_t replica, TimePoint now) {
  Replica& r = replicas_[replica];
  r.role = Role::kLeader;
  ++r.timer_marker;  // kills the campaign-retry timer
  term_ = r.term;
  leader_ = static_cast<int>(replica);
  ++stats_.failovers;
  if (down_since_ >= 0.0) {
    stats_.leader_downtime += now - down_since_;
    down_since_ = kTimeUnset;
  }
  SendHeartbeats(replica, now);  // announces the new term immediately
  // Replay, oldest first: entries lost in flight with the previous leader
  // (each re-dispatched exactly once), then arrivals the outage queued.
  while (leader_ != -1 && !queued_.empty()) {
    Pending pending = queued_.front();
    queued_.pop_front();
    if (pending.replay) {
      ++stats_.redispatched_requests;
      if (pending.seq > r.shadow_seq) {
        // Routed within one replication hop of the crash: the successor's
        // shadow log never saw it; the front door re-submitted it.
        ++stats_.frontdoor_replays;
      }
    }
    RouteNow(pending, now);
  }
}

void ControlPlane::CrashLeader(TimePoint now, Duration downtime) {
  if (leader_ == -1) {
    return;  // nobody leads; the kill switch strikes air
  }
  const uint32_t dead = static_cast<uint32_t>(leader_);
  Replica& r = replicas_[dead];
  r.down = true;
  r.role = Role::kFollower;
  r.votes = 0;
  ++r.timer_marker;  // pending ticks/timeouts of the dead replica are void
  // Every delivery still in flight dies with its leader (anything due at
  // or before the crash already committed): back to the front-door queue,
  // in seq order, ahead of whatever the outage accumulates.
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    hooks_.unroute(it->target);
    Pending pending;
    pending.seq = it->seq;
    pending.event = it->event;
    pending.replay = true;
    queued_.push_front(pending);
  }
  log_.clear();
  CheckCapacity();
  Msg msg;
  msg.kind = MsgKind::kRecover;
  msg.from = network_.Dispatcher();
  Send(network_.Dispatcher(), static_cast<int>(dead), now + downtime, msg);
  leader_ = -1;
  down_since_ = now;
}

void ControlPlane::RouteNow(Pending pending, TimePoint now) {
  const int target = hooks_.route(pending.event);
  const TimePoint deliver_at = now + dispatch_latency_;
  routed_seq_ = std::max(routed_seq_, pending.seq);
  replicas_[static_cast<size_t>(leader_)].shadow_seq = routed_seq_;
  if (deliver_at <= NextCrashTime()) {
    // No dispatcher crash can intercept this delivery: commit immediately.
    // With no crash scheduled this is the only path — bit-identical to the
    // unreplicated fleet.
    hooks_.deliver(pending.event, target, deliver_at);
    return;
  }
  LogEntry entry;
  entry.seq = pending.seq;
  entry.event = pending.event;
  entry.target = target;
  entry.deliver_at = deliver_at;
  log_.push_back(entry);
  CheckCapacity();
}

void ControlPlane::CommitFront() {
  const LogEntry entry = log_.front();
  log_.pop_front();
  hooks_.deliver(entry.event, entry.target, entry.deliver_at);
}

void ControlPlane::CheckCapacity() {
  const size_t depth = log_.size() + queued_.size();
  stats_.max_log_depth = std::max(stats_.max_log_depth, static_cast<uint64_t>(depth));
  if (depth > config_.redispatch_log_capacity) {
    std::fprintf(stderr,
                 "ControlPlane: re-dispatch log overflow (%zu entries, capacity %zu) — "
                 "the modeled front door cannot buffer this outage\n",
                 depth, config_.redispatch_log_capacity);
    std::abort();
  }
}

void ControlPlane::Handle(const NetEvent& net) {
  const Msg& msg = net.payload;
  if (msg.kind == MsgKind::kCrash) {
    // The cursor advances even when the strike is a no-op, so the eager-
    // commit bound tracks the next *unfired* plan.
    next_crash_ = std::max(next_crash_, static_cast<size_t>(msg.marker) + 1);
    CrashLeader(net.time, crash_plans_[static_cast<size_t>(msg.marker)].downtime);
    return;
  }
  const uint32_t self = static_cast<uint32_t>(net.target);
  Replica& r = replicas_[self];
  if (msg.kind == MsgKind::kRecover) {
    r.down = false;
    r.role = Role::kFollower;
    r.votes = 0;
    ArmTimer(self, net.time);  // silence detector; re-election or a live
                               // leader's next heartbeat re-adopts it
    return;
  }
  if (r.down) {
    if (msg.kind == MsgKind::kHeartbeat) {
      ++stats_.heartbeats_missed;
    }
    return;  // every other message to a crashed replica is dropped
  }
  switch (msg.kind) {
    case MsgKind::kHeartbeat: {
      if (msg.term < r.term) {
        return;  // stale leader
      }
      r.term = msg.term;
      if (r.role != Role::kFollower) {
        // A deposed leader or candidate steps down (a newer term exists).
        r.role = Role::kFollower;
        r.votes = 0;
      }
      r.shadow_seq = std::max(r.shadow_seq, msg.marker);
      ArmTimer(self, net.time);
      return;
    }
    case MsgKind::kHeartbeatTick: {
      if (r.role != Role::kLeader || msg.marker != r.timer_marker) {
        return;
      }
      SendHeartbeats(self, net.time);
      return;
    }
    case MsgKind::kTimeoutCheck: {
      if (msg.marker != r.timer_marker || r.role == Role::kLeader) {
        return;
      }
      // Follower: silence for a full (staggered) timeout. Candidate: the
      // campaign stalled. Either way, campaign with a fresh term.
      StartCampaign(self, net.time);
      return;
    }
    case MsgKind::kVoteRequest: {
      // One vote per term: grant only terms strictly newer than both the
      // replica's own term and anything it already granted.
      if (msg.term <= r.term || msg.term <= r.voted_term) {
        return;
      }
      r.term = msg.term;
      r.voted_term = msg.term;
      r.role = Role::kFollower;
      r.votes = 0;
      ArmTimer(self, net.time);  // granting resets the silence detector
      Msg grant;
      grant.kind = MsgKind::kVoteGrant;
      grant.from = self;
      grant.term = msg.term;
      Send(self, static_cast<int>(msg.from), net.time + config_.ctrl_latency, grant);
      return;
    }
    case MsgKind::kVoteGrant: {
      if (r.role != Role::kCandidate || msg.term != r.term) {
        return;  // a grant for a campaign that already ended
      }
      r.votes += 1;
      if (r.votes * 2 > config_.replicas) {
        BecomeLeader(self, net.time);
      }
      return;
    }
    case MsgKind::kCrash:
    case MsgKind::kRecover:
      return;  // handled above
  }
}

void ControlPlane::AdvanceTo(TimePoint t) {
  PumpNetwork();
  while (true) {
    const TimePoint next_msg = inbox_.empty() ? kTimeNever : inbox_.top().time;
    // Due deliveries commit ahead of any same-time message: a delivery
    // landing exactly at a crash instant completes, it is not lost.
    const TimePoint commit_until = next_msg < t ? next_msg : t;
    while (!log_.empty() && log_.front().deliver_at <= commit_until) {
      CommitFront();
    }
    if (inbox_.empty() || inbox_.top().time > t) {
      break;
    }
    const NetEvent event = inbox_.top();
    inbox_.pop();
    now_ = event.time;
    Handle(event);
    PumpNetwork();
  }
  if (t < kTimeNever && t > now_) {
    now_ = t;
  }
}

void ControlPlane::Offer(const ArrivalEvent& event) {
  AdvanceTo(event.time);
  Pending pending;
  pending.seq = next_seq_++;
  pending.event = event;
  if (leader_ != -1 && queued_.empty()) {
    RouteNow(pending, event.time);
    return;
  }
  queued_.push_back(pending);
  CheckCapacity();
}

TimePoint ControlPlane::NextPendingTime() {
  if (!log_.empty()) {
    // The in-flight delivery is the earliest external effect (queued
    // arrivals can only be routed at an even later leader transition).
    return log_.front().deliver_at;
  }
  if (queued_.empty()) {
    return kTimeNever;  // idle: only arrivals bound the fleet's epochs
  }
  // Leaderless with arrivals waiting: the next internal event (recovery,
  // timeout, vote) is what can eventually produce a leader and a replay.
  PumpNetwork();
  if (inbox_.empty()) {
    std::fprintf(stderr,
                 "ControlPlane: %zu arrival(s) queued but no event can ever elect a "
                 "leader — control plane wedged\n",
                 queued_.size());
    std::abort();
  }
  return inbox_.top().time;
}

void ControlPlane::Drain() {
  while (!Drained()) {
    const TimePoint next = NextPendingTime();
    AdvanceTo(next);
  }
}

}  // namespace aegaeon
