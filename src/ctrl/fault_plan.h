// Declarative fault scenarios for the fleet: a FaultPlan is a parsed,
// validated list of scheduled faults — instance crashes mid-decode,
// dispatcher (leader) crashes mid-epoch, transfer-link degradation
// windows, and software-aging drift — applied to a ShardedFleet (or a
// single AegaeonCluster) before a run.
//
// Specs use a compact scripting syntax (one spec per string, typically one
// CLI flag each):
//
//   prefill:IDX@T+DT        instance IDX of the prefill partition fails at
//   decode:IDX@T+DT         T (simulated seconds) and recovers after DT;
//   cell/C/decode:IDX@T+DT  the cell/C/ prefix targets one fleet cell
//                           (default: cell 0)
//   dispatcher@T+DT         the dispatcher replica leading at T crashes
//                           and recovers after DT
//   link:FACTOR@T+DT        every PCIe transfer link of the cell runs at
//                           FACTOR (0 < FACTOR <= 1) of its bandwidth for
//                           DT seconds; cell/C/link:... targets one cell
//   aging:LRATE[,FRATE][@T] latency inflates by a factor (1 + LRATE * dt)
//                           and the usable KV budget deflates by
//                           (1 + FRATE * dt), dt measured from T (default
//                           0); cell/C/aging:... targets one cell
//
// Malformed specs are rejected with their row number ("spec 3: ..."), the
// same convention ReadTrace uses for trace rows. Range validation against
// a concrete fleet (cell count, instances per cell) happens in ApplyTo.

#ifndef AEGAEON_CTRL_FAULT_PLAN_H_
#define AEGAEON_CTRL_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "sim/time.h"

namespace aegaeon {

class AegaeonCluster;
class ShardedFleet;

enum class FaultKind {
  kInstanceCrash,     // one prefill/decode instance of one cell
  kDispatcherCrash,   // the control-plane leader
  kLinkDegradation,   // a cell's PCIe links lose bandwidth for a window
  kAgingDrift,        // gradual latency/fragmentation drift of a cell
};

struct FaultSpec {
  FaultKind kind = FaultKind::kInstanceCrash;
  // Target cell; -1 = every cell (aging/link only).
  int cell = 0;
  // kInstanceCrash: which partition and instance.
  bool prefill_partition = true;
  int index = 0;
  TimePoint when = 0.0;
  Duration duration = 0.0;  // downtime (crashes) or window length (link)
  // kLinkDegradation: bandwidth multiplier in (0, 1].
  double factor = 1.0;
  // kAgingDrift: fractional growth rates per simulated second.
  double latency_rate = 0.0;
  double fragmentation_rate = 0.0;
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
  // True when any spec kills a dispatcher (the fleet then needs the
  // deferred-commit control plane).
  bool HasDispatcherFault() const;

  // Schedules every spec on `fleet`. Validates cell/instance ranges
  // against the concrete fleet and fails fast (abort) on any violation.
  // Call before Run().
  void ApplyTo(ShardedFleet& fleet) const;
  // Single-cluster form: every spec must target cell 0 (or -1) and
  // dispatcher faults are rejected (a lone cluster has no dispatcher).
  void ApplyTo(AegaeonCluster& cluster) const;
};

// Parses one spec (see syntax above) and appends it to `plan`. `row` is
// the 1-based position used in error messages. Returns false and sets
// `*error` ("spec N: reason") on malformed input.
bool ParseFaultSpec(const std::string& text, int row, FaultPlan* plan, std::string* error);

// Parses a whole list; stops at the first malformed spec.
bool ParseFaultSpecs(const std::vector<std::string>& texts, FaultPlan* plan,
                     std::string* error);

}  // namespace aegaeon

#endif  // AEGAEON_CTRL_FAULT_PLAN_H_
