#include "ctrl/fault_plan.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/cluster.h"
#include "core/fleet.h"

namespace aegaeon {

namespace {

void SetError(std::string* error, int row, const std::string& message) {
  if (error != nullptr) {
    *error = "spec " + std::to_string(row) + ": " + message;
  }
}

// Parses "T" or "T+DT" (both strict doubles, nothing trailing).
bool ParseTimeWindow(const std::string& text, TimePoint* when, Duration* duration,
                     bool* has_duration) {
  const size_t plus = text.find('+');
  std::istringstream head(text.substr(0, plus));
  if (!(head >> *when) || !head.eof()) {
    return false;
  }
  *has_duration = plus != std::string::npos;
  if (*has_duration) {
    std::istringstream tail(text.substr(plus + 1));
    if (!(tail >> *duration) || !tail.eof()) {
      return false;
    }
  }
  return true;
}

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "FaultPlan::ApplyTo: %s\n", what);
  std::abort();
}

}  // namespace

bool FaultPlan::HasDispatcherFault() const {
  for (const FaultSpec& spec : specs) {
    if (spec.kind == FaultKind::kDispatcherCrash) {
      return true;
    }
  }
  return false;
}

bool ParseFaultSpec(const std::string& text, int row, FaultPlan* plan, std::string* error) {
  FaultSpec spec;
  std::string body = text;
  // Optional cell/C/ prefix (any spec kind; dispatcher faults ignore it).
  if (body.rfind("cell/", 0) == 0) {
    const size_t slash = body.find('/', 5);
    if (slash == std::string::npos) {
      SetError(error, row, "expected cell/C/<fault>");
      return false;
    }
    std::istringstream cell(body.substr(5, slash - 5));
    if (!(cell >> spec.cell) || !cell.eof() || spec.cell < 0) {
      SetError(error, row, "bad cell index '" + body.substr(5, slash - 5) + "'");
      return false;
    }
    body = body.substr(slash + 1);
  }
  const size_t at = body.find('@');
  const std::string head = body.substr(0, at);
  TimePoint when = 0.0;
  Duration duration = 0.0;
  bool has_duration = false;
  if (at != std::string::npos &&
      !ParseTimeWindow(body.substr(at + 1), &when, &duration, &has_duration)) {
    SetError(error, row, "bad time window '" + body.substr(at + 1) + "' (want T or T+DT)");
    return false;
  }
  if (when < 0.0 || (has_duration && duration <= 0.0)) {
    SetError(error, row, "time window out of range (want T >= 0, DT > 0)");
    return false;
  }

  if (head.rfind("prefill:", 0) == 0 || head.rfind("decode:", 0) == 0) {
    spec.kind = FaultKind::kInstanceCrash;
    spec.prefill_partition = head[0] == 'p';
    const std::string index = head.substr(head.find(':') + 1);
    std::istringstream idx(index);
    if (!(idx >> spec.index) || !idx.eof() || spec.index < 0) {
      SetError(error, row, "bad instance index '" + index + "'");
      return false;
    }
    if (at == std::string::npos || !has_duration) {
      SetError(error, row, "instance crash needs @T+DT");
      return false;
    }
  } else if (head == "dispatcher") {
    spec.kind = FaultKind::kDispatcherCrash;
    if (at == std::string::npos) {
      SetError(error, row, "dispatcher crash needs @T or @T+DT");
      return false;
    }
    if (!has_duration) {
      duration = 10.0;  // default re-bootstrap time, as for instances
    }
  } else if (head.rfind("link:", 0) == 0) {
    spec.kind = FaultKind::kLinkDegradation;
    const std::string factor = head.substr(5);
    std::istringstream f(factor);
    if (!(f >> spec.factor) || !f.eof() || !(spec.factor > 0.0) || spec.factor > 1.0) {
      SetError(error, row, "bad link factor '" + factor + "' (want 0 < FACTOR <= 1)");
      return false;
    }
    if (at == std::string::npos || !has_duration) {
      SetError(error, row, "link degradation needs @T+DT");
      return false;
    }
  } else if (head.rfind("aging:", 0) == 0) {
    spec.kind = FaultKind::kAgingDrift;
    const std::string rates = head.substr(6);
    const size_t comma = rates.find(',');
    std::istringstream lrate(rates.substr(0, comma));
    if (!(lrate >> spec.latency_rate) || !lrate.eof() || spec.latency_rate < 0.0) {
      SetError(error, row, "bad aging latency rate '" + rates.substr(0, comma) + "'");
      return false;
    }
    if (comma != std::string::npos) {
      std::istringstream frate(rates.substr(comma + 1));
      if (!(frate >> spec.fragmentation_rate) || !frate.eof() ||
          spec.fragmentation_rate < 0.0) {
        SetError(error, row, "bad aging fragmentation rate '" + rates.substr(comma + 1) + "'");
        return false;
      }
    }
    if (has_duration) {
      SetError(error, row, "aging drift takes @T (an onset), not @T+DT");
      return false;
    }
    if (spec.latency_rate <= 0.0 && spec.fragmentation_rate <= 0.0) {
      SetError(error, row, "aging drift needs a nonzero rate");
      return false;
    }
  } else {
    SetError(error, row,
             "unknown fault '" + head + "' (want prefill:, decode:, dispatcher, link:, aging:)");
    return false;
  }
  spec.when = when;
  spec.duration = duration;
  plan->specs.push_back(spec);
  return true;
}

bool ParseFaultSpecs(const std::vector<std::string>& texts, FaultPlan* plan,
                     std::string* error) {
  for (size_t i = 0; i < texts.size(); ++i) {
    if (!ParseFaultSpec(texts[i], static_cast<int>(i) + 1, plan, error)) {
      return false;
    }
  }
  return true;
}

void FaultPlan::ApplyTo(ShardedFleet& fleet) const {
  for (const FaultSpec& spec : specs) {
    switch (spec.kind) {
      case FaultKind::kInstanceCrash:
        fleet.ScheduleCellFailure(spec.cell, spec.prefill_partition, spec.index, spec.when,
                                  spec.duration);
        break;
      case FaultKind::kDispatcherCrash:
        fleet.ScheduleDispatcherCrash(spec.when, spec.duration);
        break;
      case FaultKind::kLinkDegradation:
        if (spec.cell < 0) {
          for (int c = 0; c < fleet.cells(); ++c) {
            fleet.cell(c).ScheduleLinkDegradation(spec.when, spec.duration, spec.factor);
          }
        } else if (spec.cell < fleet.cells()) {
          fleet.cell(spec.cell).ScheduleLinkDegradation(spec.when, spec.duration, spec.factor);
        } else {
          Fail("link degradation targets a cell outside the fleet");
        }
        break;
      case FaultKind::kAgingDrift: {
        AgingDriftConfig aging;
        aging.latency_rate = spec.latency_rate;
        aging.fragmentation_rate = spec.fragmentation_rate;
        aging.start = spec.when;
        if (spec.cell < 0) {
          for (int c = 0; c < fleet.cells(); ++c) {
            fleet.cell(c).SetAgingDrift(aging);
          }
        } else if (spec.cell < fleet.cells()) {
          fleet.cell(spec.cell).SetAgingDrift(aging);
        } else {
          Fail("aging drift targets a cell outside the fleet");
        }
        break;
      }
    }
  }
}

void FaultPlan::ApplyTo(AegaeonCluster& cluster) const {
  for (const FaultSpec& spec : specs) {
    if (spec.cell > 0) {
      Fail("cell-targeted fault applied to a single cluster");
    }
    switch (spec.kind) {
      case FaultKind::kInstanceCrash:
        cluster.ScheduleFailure(spec.prefill_partition, spec.index, spec.when, spec.duration);
        break;
      case FaultKind::kDispatcherCrash:
        Fail("dispatcher fault applied to a single cluster (it has no dispatcher)");
        break;
      case FaultKind::kLinkDegradation:
        cluster.ScheduleLinkDegradation(spec.when, spec.duration, spec.factor);
        break;
      case FaultKind::kAgingDrift: {
        AgingDriftConfig aging;
        aging.latency_rate = spec.latency_rate;
        aging.fragmentation_rate = spec.fragmentation_rate;
        aging.start = spec.when;
        cluster.SetAgingDrift(aging);
        break;
      }
    }
  }
}

}  // namespace aegaeon
