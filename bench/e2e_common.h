// Shared harness for the end-to-end figure reproductions: runs Aegaeon and
// the three baselines on a common trace and reports token-level SLO
// attainment, mirroring the paper's §7.2 setup (16 H800 GPUs: 6 prefill +
// 10 decoding instances for Aegaeon; the same 16 GPUs for baselines).

#ifndef AEGAEON_BENCH_E2E_COMMON_H_
#define AEGAEON_BENCH_E2E_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/muxserve.h"
#include "baselines/serverless_llm.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "sim/parallel_sweep.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon_bench {

using namespace aegaeon;

inline constexpr double kHorizon = 240.0;  // seconds of trace per point
inline constexpr uint64_t kSeed = 2025;

struct E2eResult {
  double aegaeon = 0.0;
  double serverless = 0.0;
  double serverless_plus = 0.0;
  double muxserve = 0.0;
};

inline RunMetrics RunAegaeon(const ModelRegistry& registry,
                             const std::vector<ArrivalEvent>& trace, int prefill = 6,
                             int decode = 10) {
  AegaeonConfig config;
  config.prefill_instances = prefill;
  config.decode_instances = decode;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace);
}

inline RunMetrics RunServerless(const ModelRegistry& registry,
                                const std::vector<ArrivalEvent>& trace, bool sjf,
                                int gpus = 16) {
  ServerlessLlmConfig config;
  config.gpus = gpus;
  config.sjf = sjf;
  ServerlessLlmCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace);
}

inline RunMetrics RunMux(const ModelRegistry& registry, const std::vector<ArrivalEvent>& trace,
                         int gpus = 16) {
  MuxServeConfig config;
  config.gpus = gpus;
  MuxServeCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace);
}

// Runs all four systems on the same trace, returning SLO attainments.
inline E2eResult RunAllSystems(const ModelRegistry& registry,
                               const std::vector<ArrivalEvent>& trace) {
  E2eResult result;
  result.aegaeon = RunAegaeon(registry, trace).SloAttainment();
  result.serverless = RunServerless(registry, trace, /*sjf=*/false).SloAttainment();
  result.serverless_plus = RunServerless(registry, trace, /*sjf=*/true).SloAttainment();
  result.muxserve = RunMux(registry, trace).SloAttainment();
  return result;
}

// --- Parallel sweeps ----------------------------------------------------
//
// Sweeps fan (point x system) runs across ParallelSweep. Per the
// determinism contract every task rebuilds its registry and trace inside
// the task body from explicit seeds, so nothing mutable is shared and the
// results are bit-identical to the serial path.

// Order-preserving parallel map over independent closures.
template <typename T>
inline std::vector<T> SweepMap(std::vector<std::function<T()>> tasks, int threads = 0) {
  ParallelSweep sweep(threads);
  return sweep.Map(std::move(tasks));
}

// One sweep point described by recipe rather than by value.
struct SweepCase {
  std::function<ModelRegistry()> registry;
  std::function<std::vector<ArrivalEvent>(const ModelRegistry&)> trace;
};

// Runs all four systems for every case — 4N independent tasks — and
// returns per-case results in input order.
inline std::vector<E2eResult> RunAllSystemsSweep(const std::vector<SweepCase>& cases,
                                                 int threads = 0) {
  enum SystemKind { kAegaeon, kServerless, kServerlessPlus, kMuxServe, kSystems };
  std::vector<std::function<double()>> tasks;
  tasks.reserve(cases.size() * kSystems);
  for (const SweepCase& c : cases) {
    for (int system = 0; system < kSystems; ++system) {
      tasks.push_back([c, system] {
        ModelRegistry registry = c.registry();
        std::vector<ArrivalEvent> trace = c.trace(registry);
        switch (system) {
          case kAegaeon:
            return RunAegaeon(registry, trace).SloAttainment();
          case kServerless:
            return RunServerless(registry, trace, /*sjf=*/false).SloAttainment();
          case kServerlessPlus:
            return RunServerless(registry, trace, /*sjf=*/true).SloAttainment();
          default:
            return RunMux(registry, trace).SloAttainment();
        }
      });
    }
  }
  std::vector<double> attainments = SweepMap(std::move(tasks), threads);
  std::vector<E2eResult> results(cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    results[i].aegaeon = attainments[i * kSystems + kAegaeon];
    results[i].serverless = attainments[i * kSystems + kServerless];
    results[i].serverless_plus = attainments[i * kSystems + kServerlessPlus];
    results[i].muxserve = attainments[i * kSystems + kMuxServe];
  }
  return results;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintE2eRow(double x, const E2eResult& r, const char* x_name) {
  std::printf("%-18s %6.2f | Aegaeon %6.1f%% | ServerlessLLM %6.1f%% | "
              "ServerlessLLM+ %6.1f%% | MuxServe %6.1f%%\n",
              x_name, x, r.aegaeon * 100.0, r.serverless * 100.0, r.serverless_plus * 100.0,
              r.muxserve * 100.0);
}

// Largest x meeting the 90% overall SLO requirement (the paper's vertical
// goodput lines); -1 when no point qualifies.
inline double MaxLoadMeeting90(const std::vector<double>& xs,
                               const std::vector<double>& attainment) {
  double best = -1.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (attainment[i] >= 0.90) {
      best = xs[i] > best ? xs[i] : best;
    }
  }
  return best;
}

}  // namespace aegaeon_bench

#endif  // AEGAEON_BENCH_E2E_COMMON_H_
