// Shared harness for the end-to-end figure reproductions: runs Aegaeon and
// the three baselines on a common trace and reports token-level SLO
// attainment, mirroring the paper's §7.2 setup (16 H800 GPUs: 6 prefill +
// 10 decoding instances for Aegaeon; the same 16 GPUs for baselines).

#ifndef AEGAEON_BENCH_E2E_COMMON_H_
#define AEGAEON_BENCH_E2E_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/muxserve.h"
#include "baselines/serverless_llm.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon_bench {

using namespace aegaeon;

inline constexpr double kHorizon = 240.0;  // seconds of trace per point
inline constexpr uint64_t kSeed = 2025;

struct E2eResult {
  double aegaeon = 0.0;
  double serverless = 0.0;
  double serverless_plus = 0.0;
  double muxserve = 0.0;
};

inline RunMetrics RunAegaeon(const ModelRegistry& registry,
                             const std::vector<ArrivalEvent>& trace, int prefill = 6,
                             int decode = 10) {
  AegaeonConfig config;
  config.prefill_instances = prefill;
  config.decode_instances = decode;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace);
}

inline RunMetrics RunServerless(const ModelRegistry& registry,
                                const std::vector<ArrivalEvent>& trace, bool sjf,
                                int gpus = 16) {
  ServerlessLlmConfig config;
  config.gpus = gpus;
  config.sjf = sjf;
  ServerlessLlmCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace);
}

inline RunMetrics RunMux(const ModelRegistry& registry, const std::vector<ArrivalEvent>& trace,
                         int gpus = 16) {
  MuxServeConfig config;
  config.gpus = gpus;
  MuxServeCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace);
}

// Runs all four systems on the same trace, returning SLO attainments.
inline E2eResult RunAllSystems(const ModelRegistry& registry,
                               const std::vector<ArrivalEvent>& trace) {
  E2eResult result;
  result.aegaeon = RunAegaeon(registry, trace).SloAttainment();
  result.serverless = RunServerless(registry, trace, /*sjf=*/false).SloAttainment();
  result.serverless_plus = RunServerless(registry, trace, /*sjf=*/true).SloAttainment();
  result.muxserve = RunMux(registry, trace).SloAttainment();
  return result;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline void PrintE2eRow(double x, const E2eResult& r, const char* x_name) {
  std::printf("%-18s %6.2f | Aegaeon %6.1f%% | ServerlessLLM %6.1f%% | "
              "ServerlessLLM+ %6.1f%% | MuxServe %6.1f%%\n",
              x_name, x, r.aegaeon * 100.0, r.serverless * 100.0, r.serverless_plus * 100.0,
              r.muxserve * 100.0);
}

// Largest x meeting the 90% overall SLO requirement (the paper's vertical
// goodput lines); -1 when no point qualifies.
inline double MaxLoadMeeting90(const std::vector<double>& xs,
                               const std::vector<double>& attainment) {
  double best = -1.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (attainment[i] >= 0.90) {
      best = xs[i] > best ? xs[i] : best;
    }
  }
  return best;
}

}  // namespace aegaeon_bench

#endif  // AEGAEON_BENCH_E2E_COMMON_H_
