// Figure 1: concurrent LLM serving workload characteristics.
//  (a) CDF of model invocations under a Zipf-skewed market: the long tail
//      of models receives a sliver of the requests (paper: 94.1% of 779
//      models -> 1.35% of requests).
//  (b) Request-rate fluctuation with bursts exceeding the reserved rate.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

using namespace aegaeon;

int main() {
  // --- (a) Market skew CDF -------------------------------------------------
  std::printf("=== Figure 1(a): CDF of model invocations (Zipf market) ===\n");
  const int kModels = 779;
  ModelRegistry registry = ModelRegistry::MidSizeMarket(kModels);
  Dataset dataset = Dataset::ShareGpt();
  // Paper-scale aggregate: the absolute rate only scales counts.
  auto events = GenerateSkewed(registry, /*total_rps=*/200.0, /*zipf_s=*/1.97,
                               /*horizon=*/2000.0, dataset, /*seed=*/7);
  auto counts = CountPerModel(events, registry.size());
  std::sort(counts.rbegin(), counts.rend());
  uint64_t total = std::accumulate(counts.begin(), counts.end(), uint64_t{0});

  std::printf("%-28s %-20s\n", "Top popular models (%)", "Request share (%)");
  uint64_t acc = 0;
  size_t next_mark = 0;
  const std::vector<double> marks = {1, 2, 5, 5.9, 10, 25, 50, 75, 100};
  for (size_t i = 0; i < counts.size(); ++i) {
    acc += counts[i];
    double model_pct = 100.0 * static_cast<double>(i + 1) / counts.size();
    while (next_mark < marks.size() && model_pct >= marks[next_mark]) {
      std::printf("%-28.1f %-20.2f\n", marks[next_mark],
                  100.0 * static_cast<double>(acc) / total);
      next_mark++;
    }
  }
  // The paper's tail statistic: share of requests going to the bottom 94.1%.
  size_t head = static_cast<size_t>(counts.size() * 0.059);
  uint64_t head_requests = std::accumulate(counts.begin(), counts.begin() + head, uint64_t{0});
  std::printf("\nTail share: bottom 94.1%% of models receive %.2f%% of requests "
              "(paper: 1.35%%)\n",
              100.0 * (1.0 - static_cast<double>(head_requests) / total));

  // --- (b) Burst over reservation -----------------------------------------
  std::printf("\n=== Figure 1(b): request-rate fluctuation for a hot model ===\n");
  ModelRegistry hot = ModelRegistry::MidSizeMarket(1);
  auto burst_events = GeneratePoisson(hot, /*rps_per_model=*/620.0, 700.0, dataset, 9);
  AddBurst(burst_events, hot, 0, /*burst_rps=*/180.0, /*start=*/250.0, /*length=*/120.0, dataset,
           11);
  auto series = RateSeries(burst_events, 700.0, 20.0);
  const double reserved = 700.0;
  std::printf("%-12s %-14s %s\n", "time (s)", "rate (req/s)", "");
  for (size_t i = 0; i < series.size(); ++i) {
    std::printf("%-12.0f %-14.1f %s\n", static_cast<double>(i) * 20.0, series[i],
                series[i] > reserved ? "<-- exceeds reserved" : "");
  }
  std::printf("\nReserved capacity: %.0f req/s; burst peak: %.1f req/s\n", reserved,
              *std::max_element(series.begin(), series.end()));
  return 0;
}
