// Fleet-scale simulation throughput benchmark (sharded conservative-sync
// executor, core/fleet.h). Tracks four things via BENCH_fleet_scale.json:
//
//   1. Sim throughput (events/sec) across pool sizes {64, 256, 512, 1024}
//      GPUs x shard counts {1, 2, 4, 8}, with wall-clock per simulated
//      hour as the operator-facing number. Every point is the minimum of
//      kRepeats timed runs (fresh fleet each run), so speedup ratios are
//      not hostage to one scheduler hiccup, and wall times are reported at
//      microsecond precision — the old %.3f readings bottomed out at
//      0.008 s, too coarse to ratio.
//   2. Determinism: for every pool size, results must be bit-identical
//      across all shard counts AND across repeats (the conservative-sync
//      contract), and a 1-cell fleet must reproduce a plain
//      AegaeonCluster::Run signature exactly.
//   3. Epoch skipping: the 256-GPU pool is re-run with
//      epoch_skipping = false in the same process; the executed-epoch
//      ratio (off / on) is the machine-independent handle for the >= 2x
//      reduction gate in tools/run_benches.sh.
//   4. A machine-normalized regression handle: the ratio of single-shard
//      fleet throughput to a plain 16-GPU AegaeonCluster run measured in
//      the same process. Comparing ratios keeps the gate meaningful on
//      machines slower or noisier than the baseline box (same approach as
//      bench_sim_perf's current/legacy ratio).
//
// Speedup gates live in tools/run_benches.sh and consult
// hardware_concurrency: on < 4 cores the gang runs (nearly) inline, so
// only the correctness gates apply there.
//
// Usage: bench_fleet_scale [output.json]   (default BENCH_fleet_scale.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/fleet.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

using namespace aegaeon;

namespace {

constexpr double kTraceHorizon = 90.0;  // seconds of simulated arrivals
// GeneratePoisson's rate is PER MODEL; the market below holds one model per
// two GPUs, so this keeps the aggregate load proportional to the pool
// (0.05 rps/GPU) instead of quadratic in it.
constexpr double kRpsPerModel = 0.5;
constexpr uint64_t kSeed = 2025;
constexpr int kGpusPerCell = 4;  // 2 prefill + 2 decode instances
constexpr int kRepeats = 3;      // timed repeats per point; wall = min
constexpr int kEpochGatePool = 256;  // pool for the epoch-reduction handle

AegaeonConfig CellConfig() {
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  return config;
}

struct ShardPoint {
  int shards = 0;
  double wall_seconds = 0.0;  // min over kRepeats
  double events_per_sec = 0.0;
  double speedup = 0.0;  // vs shards == 1 on the same pool
  uint64_t events = 0;
};

struct PoolResult {
  int gpus = 0;
  int cells = 0;
  uint64_t requests = 0;
  uint64_t epochs_executed = 0;
  uint64_t epochs_skipped = 0;
  bool identical = true;  // across shard counts AND repeats
  std::vector<ShardPoint> points;
};

// Everything a run produces that must be deterministic. Wall clock and the
// per-shard host counters are deliberately excluded.
struct Signature {
  uint64_t completed = 0;
  int64_t tokens_met = 0;
  double horizon = 0.0;
  uint64_t events = 0;
  uint64_t epochs = 0;
  uint64_t epochs_skipped = 0;

  bool operator==(const Signature& other) const {
    return completed == other.completed && tokens_met == other.tokens_met &&
           horizon == other.horizon && events == other.events && epochs == other.epochs &&
           epochs_skipped == other.epochs_skipped;
  }
};

Signature Sign(const RunMetrics& metrics) {
  Signature sig;
  sig.completed = metrics.completed_requests;
  sig.tokens_met = metrics.tokens_met;
  sig.horizon = metrics.horizon;
  sig.events = metrics.sim.events_processed;
  sig.epochs = metrics.sync_epochs;
  sig.epochs_skipped = metrics.sync_epochs_skipped;
  return sig;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  // steady_clock ticks in nanoseconds on the platforms we build for; the
  // double holds microseconds exactly over any realistic run length.
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// One timed fleet run; a fresh fleet per call keeps repeats independent.
Signature TimedFleetRun(const FleetConfig& config, const ModelRegistry& registry,
                        const std::vector<ArrivalEvent>& trace, double* wall) {
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  auto start = std::chrono::steady_clock::now();
  RunMetrics metrics = fleet.Run(trace);
  *wall = Seconds(start);
  return Sign(metrics);
}

PoolResult RunPool(int gpus, const std::vector<int>& shard_counts) {
  PoolResult result;
  result.gpus = gpus;
  result.cells = gpus / kGpusPerCell;

  // The market and trace scale with the pool so per-cell load stays
  // constant; both are rebuilt per run for task independence.
  const int models = std::max(8, result.cells * 2);
  ModelRegistry registry = ModelRegistry::MidSizeMarket(models);
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);
  result.requests = trace.size();

  Signature reference;
  for (int shards : shard_counts) {
    FleetConfig config;
    config.cells = result.cells;
    config.shards = shards;
    config.cell = CellConfig();

    Signature sig;
    double wall = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      double rep_wall = 0.0;
      Signature rep_sig = TimedFleetRun(config, registry, trace, &rep_wall);
      if (rep == 0) {
        sig = rep_sig;
        wall = rep_wall;
      } else {
        wall = std::min(wall, rep_wall);
        if (!(rep_sig == sig)) {
          result.identical = false;  // nondeterministic across repeats
        }
      }
    }

    if (shards == shard_counts.front()) {
      reference = sig;
      result.epochs_executed = sig.epochs;
      result.epochs_skipped = sig.epochs_skipped;
    } else if (!(sig == reference)) {
      result.identical = false;
    }

    ShardPoint point;
    point.shards = shards;
    point.wall_seconds = wall;
    point.events = sig.events;
    point.events_per_sec = wall > 0.0 ? static_cast<double>(point.events) / wall : 0.0;
    point.speedup =
        result.points.empty() ? 1.0 : (wall > 0.0 ? result.points[0].wall_seconds / wall : 0.0);
    result.points.push_back(point);

    double sim_hours_per_wall_hour =
        wall > 0.0 ? (sig.horizon / 3600.0) / (wall / 3600.0) : 0.0;
    std::printf("  %4d GPUs  %3d cells  %d shard%s  %7llu events  %9.6fs wall  "
                "%9.0f ev/s  %6.2fx  (%.0f sim-h/h)\n",
                gpus, result.cells, shards, shards == 1 ? " " : "s",
                static_cast<unsigned long long>(point.events), wall, point.events_per_sec,
                point.speedup, sim_hours_per_wall_hour);
  }
  std::printf("         epochs: %llu executed, %llu skipped\n",
              static_cast<unsigned long long>(result.epochs_executed),
              static_cast<unsigned long long>(result.epochs_skipped));
  return result;
}

// Golden equivalence at bench scale: a 1-cell fleet (dispatch channel
// disabled, zero latency) must reproduce a plain AegaeonCluster::Run
// signature exactly. Epoch counters are loop bookkeeping the plain run
// doesn't have, so the comparison stops at the simulated results.
bool SingleCellMatchesPlainCluster() {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);

  AegaeonCluster plain(CellConfig(), registry, GpuSpec::H800());
  Signature golden = Sign(plain.Run(trace));

  FleetConfig config;
  config.cells = 1;
  config.shards = 1;
  config.dispatch_latency = 0.0;  // cells == 1: channel disabled anyway
  config.cell = CellConfig();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  Signature sig = Sign(fleet.Run(trace));

  const bool ok = sig.completed == golden.completed && sig.tokens_met == golden.tokens_met &&
                  sig.horizon == golden.horizon && sig.events == golden.events;
  std::printf("1-cell fleet vs plain cluster: %s (%llu events, %llu completed)\n",
              ok ? "bit-identical" : "DIVERGED (BUG)",
              static_cast<unsigned long long>(sig.events),
              static_cast<unsigned long long>(sig.completed));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fleet_scale.json";
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> pools = {64, 256, 512, 1024};
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  std::printf("=== Fleet-scale sharded simulation (cores=%d, min of %d repeats) ===\n", cores,
              kRepeats);
  std::printf("    pool sweep x shards, cell = %d GPUs, %.2f rps/model (1 model per 2 GPUs), "
              "%.0fs trace\n\n",
              kGpusPerCell, kRpsPerModel, kTraceHorizon);

  // Machine-speed reference: a plain 16-GPU cluster run in-process, best of
  // kRepeats (EventsPerSec uses the run's own wall measurement; the best
  // repeat is the least-interrupted one, matching the fleet points).
  ModelRegistry ref_registry = ModelRegistry::MidSizeMarket(8);
  auto ref_trace =
      GeneratePoisson(ref_registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);
  AegaeonConfig ref_config;  // paper split: 6 prefill + 10 decode
  double ref_eps = 0.0;
  uint64_t ref_events = 0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    AegaeonCluster reference(ref_config, ref_registry, GpuSpec::H800());
    RunMetrics ref_metrics = reference.Run(ref_trace);
    ref_eps = std::max(ref_eps, ref_metrics.sim.EventsPerSec());
    ref_events = ref_metrics.sim.events_processed;
  }
  std::printf("reference 16-GPU cluster: %llu events -> %.0f ev/s\n",
              static_cast<unsigned long long>(ref_events), ref_eps);

  const bool single_cell_ok = SingleCellMatchesPlainCluster();
  std::printf("\n");

  std::vector<PoolResult> results;
  bool all_identical = true;
  for (int gpus : pools) {
    results.push_back(RunPool(gpus, shard_counts));
    all_identical = all_identical && results.back().identical;
  }

  // Epoch-reduction handle: the reference pool once more with skipping off
  // (single shard; the epoch count is shard-count-invariant). Deterministic
  // on both sides, so the ratio is machine-independent.
  uint64_t epochs_on = 0;
  for (const PoolResult& pool : results) {
    if (pool.gpus == kEpochGatePool) {
      epochs_on = pool.epochs_executed;
    }
  }
  uint64_t epochs_off = 0;
  {
    const int cells = kEpochGatePool / kGpusPerCell;
    ModelRegistry registry = ModelRegistry::MidSizeMarket(std::max(8, cells * 2));
    std::vector<ArrivalEvent> trace =
        GeneratePoisson(registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);
    FleetConfig config;
    config.cells = cells;
    config.shards = 1;
    config.epoch_skipping = false;
    config.cell = CellConfig();
    double wall = 0.0;
    epochs_off = TimedFleetRun(config, registry, trace, &wall).epochs;
  }
  const double epoch_reduction =
      epochs_on > 0 ? static_cast<double>(epochs_off) / static_cast<double>(epochs_on) : 0.0;

  // Headline numbers for the regression gate.
  double single_shard_eps = 0.0;   // largest pool, shards == 1
  double best_large_speedup = 0.0; // best 8-shard speedup on pools >= 512
  for (const PoolResult& pool : results) {
    if (pool.gpus == pools.back()) {
      single_shard_eps = pool.points[0].events_per_sec;
    }
    if (pool.gpus >= 512) {
      best_large_speedup = std::max(best_large_speedup, pool.points.back().speedup);
    }
  }
  const double fleet_ratio = ref_eps > 0.0 ? single_shard_eps / ref_eps : 0.0;

  std::printf("\nresults %s across shard counts and repeats\n",
              all_identical ? "bit-identical" : "DIVERGED (BUG)");
  std::printf("epoch reduction at %d GPUs: %llu -> %llu executed (%.2fx fewer)\n", kEpochGatePool,
              static_cast<unsigned long long>(epochs_off),
              static_cast<unsigned long long>(epochs_on), epoch_reduction);
  std::printf("single-shard fleet ratio (vs 16-GPU reference): %.3f\n", fleet_ratio);
  std::printf("best 8-shard speedup at >=512 GPUs: %.2fx on %d cores\n", best_large_speedup,
              cores);

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"repeats\": %d,\n"
               "  \"reference\": {\n"
               "    \"gpus\": 16,\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.0f\n"
               "  },\n",
               cores, kRepeats, static_cast<unsigned long long>(ref_events), ref_eps);
  std::fprintf(out, "  \"pools\": [\n");
  for (size_t p = 0; p < results.size(); ++p) {
    const PoolResult& pool = results[p];
    std::fprintf(out,
                 "    {\n"
                 "      \"gpus\": %d,\n"
                 "      \"cells\": %d,\n"
                 "      \"requests\": %llu,\n"
                 "      \"epochs_executed\": %llu,\n"
                 "      \"epochs_skipped\": %llu,\n"
                 "      \"identical\": %s,\n"
                 "      \"shards\": [\n",
                 pool.gpus, pool.cells, static_cast<unsigned long long>(pool.requests),
                 static_cast<unsigned long long>(pool.epochs_executed),
                 static_cast<unsigned long long>(pool.epochs_skipped),
                 pool.identical ? "true" : "false");
    for (size_t s = 0; s < pool.points.size(); ++s) {
      const ShardPoint& point = pool.points[s];
      std::fprintf(out,
                   "        {\"shards\": %d, \"events\": %llu, \"wall_seconds\": %.6f, "
                   "\"events_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
                   point.shards, static_cast<unsigned long long>(point.events),
                   point.wall_seconds, point.events_per_sec, point.speedup,
                   s + 1 < pool.points.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n    }%s\n", p + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"identical_results\": %s,\n"
               "  \"single_cell_identical\": %s,\n"
               "  \"epoch_gate_pool_gpus\": %d,\n"
               "  \"epochs_executed_off\": %llu,\n"
               "  \"epochs_executed_on\": %llu,\n"
               "  \"epoch_reduction\": %.2f,\n"
               "  \"single_shard_events_per_sec\": %.0f,\n"
               "  \"fleet_ratio\": %.3f,\n"
               "  \"best_large_pool_speedup\": %.2f\n"
               "}\n",
               all_identical ? "true" : "false", single_cell_ok ? "true" : "false",
               kEpochGatePool, static_cast<unsigned long long>(epochs_off),
               static_cast<unsigned long long>(epochs_on), epoch_reduction, single_shard_eps,
               fleet_ratio, best_large_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return (all_identical && single_cell_ok) ? 0 : 1;
}
