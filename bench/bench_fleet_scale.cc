// Fleet-scale simulation throughput benchmark (sharded conservative-sync
// executor, core/fleet.h). Tracks three things via BENCH_fleet_scale.json:
//
//   1. Sim throughput (events/sec) across pool sizes {64, 256, 512, 1024}
//      GPUs x shard counts {1, 2, 4, 8}, with wall-clock per simulated
//      hour as the operator-facing number.
//   2. Determinism: for every pool size, results must be bit-identical
//      across all shard counts (the conservative-sync contract).
//   3. A machine-normalized regression handle: the ratio of single-shard
//      fleet throughput to a plain 16-GPU AegaeonCluster run measured in
//      the same process. Comparing ratios keeps the gate meaningful on
//      machines slower or noisier than the baseline box (same approach as
//      bench_sim_perf's current/legacy ratio).
//
// Usage: bench_fleet_scale [output.json]   (default BENCH_fleet_scale.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/fleet.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

using namespace aegaeon;

namespace {

constexpr double kTraceHorizon = 90.0;  // seconds of simulated arrivals
// GeneratePoisson's rate is PER MODEL; the market below holds one model per
// two GPUs, so this keeps the aggregate load proportional to the pool
// (0.05 rps/GPU) instead of quadratic in it.
constexpr double kRpsPerModel = 0.5;
constexpr uint64_t kSeed = 2025;
constexpr int kGpusPerCell = 4;  // 2 prefill + 2 decode instances

AegaeonConfig CellConfig() {
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  return config;
}

struct ShardPoint {
  int shards = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  double speedup = 0.0;  // vs shards == 1 on the same pool
  uint64_t events = 0;
};

struct PoolResult {
  int gpus = 0;
  int cells = 0;
  uint64_t requests = 0;
  uint64_t epochs = 0;
  bool identical = true;
  std::vector<ShardPoint> points;
};

struct Signature {
  uint64_t completed = 0;
  int64_t tokens_met = 0;
  double horizon = 0.0;
  uint64_t events = 0;
  uint64_t epochs = 0;

  bool operator==(const Signature& other) const {
    return completed == other.completed && tokens_met == other.tokens_met &&
           horizon == other.horizon && events == other.events && epochs == other.epochs;
  }
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

PoolResult RunPool(int gpus, const std::vector<int>& shard_counts) {
  PoolResult result;
  result.gpus = gpus;
  result.cells = gpus / kGpusPerCell;

  // The market and trace scale with the pool so per-cell load stays
  // constant; both are rebuilt per run for task independence.
  const int models = std::max(8, result.cells * 2);
  ModelRegistry registry = ModelRegistry::MidSizeMarket(models);
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);
  result.requests = trace.size();

  Signature reference;
  for (int shards : shard_counts) {
    FleetConfig config;
    config.cells = result.cells;
    config.shards = shards;
    config.cell = CellConfig();

    ShardedFleet fleet(config, registry, GpuSpec::H800());
    auto start = std::chrono::steady_clock::now();
    RunMetrics metrics = fleet.Run(trace);
    double wall = Seconds(start);

    Signature sig;
    sig.completed = metrics.completed_requests;
    sig.tokens_met = metrics.tokens_met;
    sig.horizon = metrics.horizon;
    sig.events = metrics.sim.events_processed;
    sig.epochs = metrics.sync_epochs;
    if (shards == shard_counts.front()) {
      reference = sig;
      result.epochs = sig.epochs;
    } else if (!(sig == reference)) {
      result.identical = false;
    }

    ShardPoint point;
    point.shards = shards;
    point.wall_seconds = wall;
    point.events = metrics.sim.events_processed;
    point.events_per_sec = wall > 0.0 ? static_cast<double>(point.events) / wall : 0.0;
    point.speedup =
        result.points.empty() ? 1.0 : (wall > 0.0 ? result.points[0].wall_seconds / wall : 0.0);
    result.points.push_back(point);

    double sim_hours_per_wall_hour =
        wall > 0.0 ? (metrics.horizon / 3600.0) / (wall / 3600.0) : 0.0;
    std::printf("  %4d GPUs  %3d cells  %d shard%s  %7llu events  %6.2fs wall  "
                "%9.0f ev/s  %6.2fx  (%.0f sim-h/h)\n",
                gpus, result.cells, shards, shards == 1 ? " " : "s",
                static_cast<unsigned long long>(point.events), wall, point.events_per_sec,
                point.speedup, sim_hours_per_wall_hour);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_fleet_scale.json";
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> pools = {64, 256, 512, 1024};
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  std::printf("=== Fleet-scale sharded simulation (cores=%d) ===\n", cores);
  std::printf("    pool sweep x shards, cell = %d GPUs, %.2f rps/model (1 model per 2 GPUs), "
              "%.0fs trace\n\n",
              kGpusPerCell, kRpsPerModel, kTraceHorizon);

  // Machine-speed reference: one plain 16-GPU cluster run in-process.
  ModelRegistry ref_registry = ModelRegistry::MidSizeMarket(8);
  auto ref_trace =
      GeneratePoisson(ref_registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);
  AegaeonConfig ref_config;  // paper split: 6 prefill + 10 decode
  AegaeonCluster reference(ref_config, ref_registry, GpuSpec::H800());
  RunMetrics ref_metrics = reference.Run(ref_trace);
  const double ref_eps = ref_metrics.sim.EventsPerSec();
  std::printf("reference 16-GPU cluster: %llu events -> %.0f ev/s\n\n",
              static_cast<unsigned long long>(ref_metrics.sim.events_processed), ref_eps);

  std::vector<PoolResult> results;
  bool all_identical = true;
  for (int gpus : pools) {
    results.push_back(RunPool(gpus, shard_counts));
    all_identical = all_identical && results.back().identical;
  }

  // Headline numbers for the regression gate.
  double single_shard_eps = 0.0;   // largest pool, shards == 1
  double best_large_speedup = 0.0; // best 8-shard speedup on pools >= 512
  for (const PoolResult& pool : results) {
    if (pool.gpus == pools.back()) {
      single_shard_eps = pool.points[0].events_per_sec;
    }
    if (pool.gpus >= 512) {
      best_large_speedup = std::max(best_large_speedup, pool.points.back().speedup);
    }
  }
  const double fleet_ratio = ref_eps > 0.0 ? single_shard_eps / ref_eps : 0.0;

  std::printf("\nresults %s across shard counts\n",
              all_identical ? "bit-identical" : "DIVERGED (BUG)");
  std::printf("single-shard fleet ratio (vs 16-GPU reference): %.3f\n", fleet_ratio);
  std::printf("best 8-shard speedup at >=512 GPUs: %.2fx on %d cores\n", best_large_speedup,
              cores);

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"reference\": {\n"
               "    \"gpus\": 16,\n"
               "    \"events\": %llu,\n"
               "    \"events_per_sec\": %.0f\n"
               "  },\n",
               cores, static_cast<unsigned long long>(ref_metrics.sim.events_processed), ref_eps);
  std::fprintf(out, "  \"pools\": [\n");
  for (size_t p = 0; p < results.size(); ++p) {
    const PoolResult& pool = results[p];
    std::fprintf(out,
                 "    {\n"
                 "      \"gpus\": %d,\n"
                 "      \"cells\": %d,\n"
                 "      \"requests\": %llu,\n"
                 "      \"epochs\": %llu,\n"
                 "      \"identical\": %s,\n"
                 "      \"shards\": [\n",
                 pool.gpus, pool.cells, static_cast<unsigned long long>(pool.requests),
                 static_cast<unsigned long long>(pool.epochs),
                 pool.identical ? "true" : "false");
    for (size_t s = 0; s < pool.points.size(); ++s) {
      const ShardPoint& point = pool.points[s];
      std::fprintf(out,
                   "        {\"shards\": %d, \"events\": %llu, \"wall_seconds\": %.3f, "
                   "\"events_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
                   point.shards, static_cast<unsigned long long>(point.events),
                   point.wall_seconds, point.events_per_sec, point.speedup,
                   s + 1 < pool.points.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n    }%s\n", p + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"identical_results\": %s,\n"
               "  \"single_shard_events_per_sec\": %.0f,\n"
               "  \"fleet_ratio\": %.3f,\n"
               "  \"best_large_pool_speedup\": %.2f\n"
               "}\n",
               all_identical ? "true" : "false", single_shard_eps, fleet_ratio,
               best_large_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return all_identical ? 0 : 1;
}
