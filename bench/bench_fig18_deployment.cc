// Figure 18: GPU utilization before and after deploying Aegaeon, over a
// long (diurnally modulated) horizon.
//   Before (low load):  a dedicated instance serving the least-loaded model.
//   Before (high load): a dedicated instance serving the most-loaded model.
//   After (Aegaeon):    the pooled deployment serving many models at once.
// Paper: utilization rises from 13.3%-33.9% to ~48.1% with no SLO
// violations. Each time bucket is simulated independently with the
// bucket's diurnal rate multiplier (a 70-hour production window compressed
// into per-bucket simulations).

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/dedicated.h"
#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

constexpr double kBucketTrace = 150.0;  // simulated seconds per bucket

double DedicatedUtil(double rps, uint64_t seed) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(1);
  auto trace = GeneratePoisson(registry, rps, kBucketTrace, Dataset::ShareGpt(), seed);
  DedicatedCluster cluster(DedicatedConfig{}, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  return metrics.horizon > 0 ? cluster.busy_time()[0] / metrics.horizon : 0.0;
}

double AegaeonUtil(double rps_per_model, uint64_t seed, double* attainment) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(24);
  auto trace = GeneratePoisson(registry, rps_per_model, kBucketTrace, Dataset::ShareGpt(), seed);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 4;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  *attainment = metrics.SloAttainment();
  double total = 0.0;
  auto utils = cluster.GpuUtilization(metrics.horizon);
  for (double u : utils) {
    total += u;
  }
  return total / static_cast<double>(utils.size());
}

}  // namespace

namespace {

struct Bucket {
  double low = 0.0;
  double high = 0.0;
  double after = 0.0;
  double attainment = 1.0;
};

}  // namespace

int main() {
  std::printf("=== Figure 18: GPU utilization before/after Aegaeon (70h window) ===\n\n");
  std::printf("%-8s %12s %14s %14s %16s\n", "hour", "Before(low)", "Before(high)",
              "After(Aegaeon)", "Aegaeon SLO");
  const int kBuckets = 14;  // one per 5 hours
  // Each bucket is three independent simulations with per-bucket seeds;
  // fan all of them out at once.
  std::vector<std::function<Bucket()>> tasks;
  for (int b = 0; b < kBuckets; ++b) {
    tasks.push_back([b] {
      // Diurnal modulation around the mean load.
      double m = 1.0 + 0.45 * std::sin(2.0 * M_PI * (b + 2) / 7.0);
      Bucket bucket;
      bucket.low = DedicatedUtil(0.035 * m, 100 + b);
      bucket.high = DedicatedUtil(0.16 * m, 200 + b);
      bucket.after = AegaeonUtil(0.065 * m, 300 + b, &bucket.attainment);
      return bucket;
    });
  }
  std::vector<Bucket> buckets = SweepMap(std::move(tasks));

  double sum_low = 0.0;
  double sum_high = 0.0;
  double sum_after = 0.0;
  double min_attainment = 1.0;
  for (int b = 0; b < kBuckets; ++b) {
    const Bucket& bucket = buckets[b];
    min_attainment = std::min(min_attainment, bucket.attainment);
    sum_low += bucket.low;
    sum_high += bucket.high;
    sum_after += bucket.after;
    std::printf("%-8d %11.1f%% %13.1f%% %13.1f%% %15.1f%%\n", b * 5, bucket.low * 100.0,
                bucket.high * 100.0, bucket.after * 100.0, bucket.attainment * 100.0);
  }
  std::printf("\nAverages: Before(low) %.1f%%, Before(high) %.1f%%, After(Aegaeon) %.1f%%\n",
              100.0 * sum_low / kBuckets, 100.0 * sum_high / kBuckets,
              100.0 * sum_after / kBuckets);
  std::printf("Paper: 13.3%% / 33.9%% -> 48.1%%. Minimum bucket SLO attainment: %.1f%% "
              "(no observable violations)\n",
              min_attainment * 100.0);
  return 0;
}
