// Capacity-planner gate: on a mixed chat+summarize market the certified
// heterogeneous plan must be at least 10% cheaper than the best replay-
// bisected homogeneous pool at the reference rate, and the whole pipeline
// must be bit-identical across repeated runs and sweep worker counts.
//
// The scenario is the regime the Melange formulation targets: chat
// services (decode-heavy, favors the high-HBM H20) interleaved with
// summarization services (prefill-heavy, favors the high-FLOPS H800), so
// no single GPU type is cost-efficient for the whole market.
//
// Usage: bench_planner [result.json]

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "e2e_common.h"
#include "planner/planner.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

constexpr double kPlanHorizon = 600.0;
constexpr double kTarget = 0.90;
constexpr int kModels = 12;
constexpr double kReferenceRps = 1.0;  // per model

struct PlanPoint {
  double rps = 0.0;
  bool certified = false;
  double hetero_cost = 0.0;
  double attainment = 0.0;
  double cost_per_1k = 0.0;
  std::vector<int> counts;
  // Best homogeneous pool meeting the same target, by replay bisection;
  // -1 when no type is feasible.
  double best_homo_cost = -1.0;
  std::string best_homo_name;
};

std::vector<GpuOption> PlannerGpus() {
  GpuOption h800;
  h800.spec = GpuSpec::H800();
  GpuOption h20;
  h20.spec = GpuSpec::H20();
  return {h800, h20};
}

PlanPoint RunPoint(double rps) {
  PlanPoint point;
  point.rps = rps;
  ModelRegistry registry = ModelRegistry::MidSizeMarket(kModels);
  std::vector<ArrivalEvent> trace = GenerateMixedPoisson(
      registry, rps, kPlanHorizon, Dataset::ShareGpt(), Dataset::Summarize(), kSeed);

  Planner planner(registry, PlannerGpus());
  PlannerOptions options;
  options.target_attainment = kTarget;
  CertifiedPlan result = planner.Solve(trace, kPlanHorizon, options);
  point.certified = result.certified;
  point.hetero_cost = result.plan.cost_per_hour;
  point.attainment = result.replay.SloAttainment();
  point.cost_per_1k = result.replay.CostPer1kTokens();
  point.counts = result.plan.counts;

  for (const GpuOption& option : PlannerGpus()) {
    int gpus = Planner::MinHomogeneousGpus(registry, option.spec, trace, kTarget,
                                           option.max_count);
    if (gpus < 0) {
      continue;
    }
    double cost = gpus * option.spec.cost_per_hour;
    if (point.best_homo_cost < 0.0 || cost < point.best_homo_cost) {
      point.best_homo_cost = cost;
      point.best_homo_name = option.spec.name + " x" + std::to_string(gpus);
    }
  }
  return point;
}

bool SamePoint(const PlanPoint& a, const PlanPoint& b) {
  return a.certified == b.certified && a.hetero_cost == b.hetero_cost &&
         a.attainment == b.attainment && a.counts == b.counts &&
         a.best_homo_cost == b.best_homo_cost;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<double> rates = {0.4, 0.7, kReferenceRps};

  // Serial pass, then the same points through the parallel sweep and once
  // more serially at the reference point: determinism demands all agree.
  std::vector<PlanPoint> serial;
  for (double rps : rates) {
    serial.push_back(RunPoint(rps));
  }
  std::vector<std::function<PlanPoint()>> tasks;
  for (double rps : rates) {
    tasks.push_back([rps] { return RunPoint(rps); });
  }
  std::vector<PlanPoint> parallel = SweepMap(std::move(tasks));
  bool identical = serial.size() == parallel.size();
  for (size_t i = 0; identical && i < serial.size(); ++i) {
    identical = SamePoint(serial[i], parallel[i]);
  }
  identical = identical && SamePoint(serial.back(), RunPoint(kReferenceRps));

  PrintHeader("Capacity planner: heterogeneous vs best homogeneous (chat+summarize)");
  std::printf("%d models, H800+H20 market, target %.0f%% attainment, horizon %.0fs\n\n",
              kModels, kTarget * 100.0, kPlanHorizon);
  std::printf("%-10s %-12s %-14s %-12s %-18s %-10s\n", "rps/model", "hetero $/h",
              "attainment", "$/1k tok", "best homogeneous", "savings");
  const PlanPoint* reference = nullptr;
  for (const PlanPoint& point : serial) {
    double savings = point.best_homo_cost > 0.0
                         ? 100.0 * (1.0 - point.hetero_cost / point.best_homo_cost)
                         : 0.0;
    std::printf("%-10.2f %-12.2f %-14s %-12.4f %-18s %+.1f%%\n", point.rps,
                point.hetero_cost,
                point.certified
                    ? (std::to_string(point.attainment * 100.0).substr(0, 5) + "%").c_str()
                    : "uncertified",
                point.cost_per_1k, point.best_homo_name.c_str(), savings);
    if (point.rps == kReferenceRps) {
      reference = &point;
    }
  }
  std::printf("\nidentical across runs and sweep workers: %s\n", identical ? "yes" : "NO");

  double savings_pct = 0.0;
  bool gate_ok = false;
  if (reference != nullptr && reference->certified && reference->best_homo_cost > 0.0) {
    savings_pct = 100.0 * (1.0 - reference->hetero_cost / reference->best_homo_cost);
    gate_ok = savings_pct >= 10.0;
  }
  std::printf("reference rate %.2f: certified hetero $%.2f/h vs best homogeneous $%.2f/h "
              "(%.1f%% cheaper, gate >= 10%%): %s\n",
              kReferenceRps, reference != nullptr ? reference->hetero_cost : 0.0,
              reference != nullptr ? reference->best_homo_cost : 0.0, savings_pct,
              gate_ok ? "PASS" : "FAIL");

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    if (out != nullptr) {
      std::fprintf(out, "{\n  \"planner\": {\n");
      std::fprintf(out, "    \"reference_rps\": %.2f,\n", kReferenceRps);
      std::fprintf(out, "    \"hetero_cost_per_hour\": %.2f,\n",
                   reference != nullptr ? reference->hetero_cost : -1.0);
      std::fprintf(out, "    \"best_homogeneous_cost_per_hour\": %.2f,\n",
                   reference != nullptr ? reference->best_homo_cost : -1.0);
      std::fprintf(out, "    \"savings_pct\": %.1f,\n", savings_pct);
      std::fprintf(out, "    \"attainment\": %.4f,\n",
                   reference != nullptr ? reference->attainment : 0.0);
      std::fprintf(out, "    \"identical_results\": %s\n", identical ? "true" : "false");
      std::fprintf(out, "  }\n}\n");
      std::fclose(out);
      std::printf("results written to %s\n", argv[1]);
    }
  }
  return gate_ok && identical ? 0 : 1;
}
