// Figure 7 (middle/right): composition of an LLM inference engine and the
// latency breakdown of its initialization, before and after Aegaeon's
// optimizations. Paper: unoptimized init of a 13B model (TP=2) totals
// ~26.9 s, of which only 4.6 s is the (naive) weight load; optimized
// loading runs at stage-buffer bandwidth in under one second.

#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "engine/components.h"
#include "hw/gpu_spec.h"
#include "model/latency_model.h"
#include "model/model_spec.h"

using namespace aegaeon;

int main() {
  EngineCostModel costs;
  LatencyModel latency(GpuSpec::H800());
  ModelSpec spec = ModelSpec::Llama13B();
  const int kTp = 2;
  const double kCpuKvPool = 30e9;

  double dist = costs.DistExecutorInit(kTp);
  double profile = costs.ProfileInit(spec);
  double kv_init = costs.KvPinInit(kCpuKvPool);
  double misc = costs.MiscInit();
  double gc = costs.GcPass();
  double naive_load = latency.NaiveLoad(spec, kTp, costs.naive_load_bytes_per_s);
  double fast_load = latency.SwitchLoad(spec, kTp);

  std::printf("=== Figure 7: engine initialization breakdown (LLaMA-13B, TP=2) ===\n\n");
  Table before({"Stage (before optimization)", "Latency (s)"});
  before.AddRow({"Distributed executor (Ray/NCCL)", Table::Num(dist, 1)});
  before.AddRow({"Profiling & optimization", Table::Num(profile, 1)});
  before.AddRow({"Model weights loading (naive, 2.83 GB/s)", Table::Num(naive_load, 1)});
  before.AddRow({"CPU KV cache init (page pinning)", Table::Num(kv_init, 1)});
  before.AddRow({"GC / VRAM defragmentation", Table::Num(gc, 1)});
  before.AddRow({"Other components (tokenizer, sched, log)", Table::Num(misc, 1)});
  double total = dist + profile + naive_load + kv_init + gc + misc;
  before.AddRow({"TOTAL", Table::Num(total, 1)});
  before.Print(std::cout);

  std::printf("\nPaper: total ~26.9 s; weight load 4.6 s at 2.83 GB/s.\n\n");

  Table after({"Stage (after component reuse + explicit memory)", "Latency (s)"});
  after.AddRow({"Distributed executor", "reused (0)"});
  after.AddRow({"Profiling & optimization", "cached (0)"});
  after.AddRow({"Model weights loading (stage-buffered)", Table::Num(fast_load, 2)});
  after.AddRow({"CPU KV cache init", "pre-pinned pool (0)"});
  after.AddRow({"GC pass", "bump allocator (0)"});
  after.AddRow({"Other components", "reused (0)"});
  after.AddRow({"TOTAL", Table::Num(fast_load, 2)});
  after.Print(std::cout);

  std::printf("\nInit latency removed: %.1f%% (paper: \"over 80%%\" from reuse alone; the full\n"
              "stack reaches ~97%% with KV transfer overlap — see bench_fig08)\n",
              100.0 * (1.0 - fast_load / total));
  return 0;
}
