// Overload study: goodput with and without the serving proxy (src/serve).
//
// A small pool (Aegaeon: 2 prefill + 3 decoding instances; ServerlessLLM:
// the same 5 GPUs) serves a bursty MMPP trace over an 8-model market at
// load factors from half the sustainable rate to 2x past it. Without the
// proxy every arrival is admitted and, past saturation, queues grow without
// bound — throughput stays high while goodput (SLO-attained completions per
// second) collapses. With the proxy, deadline-aware admission rejects the
// hopeless fraction and the admitted remainder keeps meeting SLO, so
// goodput holds near capacity.
//
// The load factor is relative to `kSustainableBase`, calibrated so factor
// 1.0 keeps the proxy-less Aegaeon configuration at ~90% SLO attainment.

#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/report.h"
#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

constexpr int kModels = 8;
constexpr double kHorizonS = 240.0;
constexpr uint64_t kTraceSeed = 4242;
// Base per-model MMPP rate at load factor 1.0 (see header comment).
constexpr double kSustainableBase = 0.35;
constexpr double kBurstMultiplier = 6.0;
constexpr double kMeanCalm = 40.0;
constexpr double kMeanBurst = 15.0;

struct CellResult {
  RunMetrics metrics;
  double fairness = 0.0;
};

std::vector<ArrivalEvent> MakeTrace(const ModelRegistry& registry, double load_factor) {
  return GenerateBursty(registry, kSustainableBase * load_factor, kBurstMultiplier, kMeanCalm,
                        kMeanBurst, kHorizonS, Dataset::ShareGpt(), kTraceSeed);
}

ProxyPolicy BenchProxy() {
  ProxyPolicy policy;
  policy.enabled = true;
  return policy;
}

CellResult RunAegaeonCell(double load_factor, bool proxy) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(kModels);
  auto trace = MakeTrace(registry, load_factor);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 3;
  if (proxy) {
    config.proxy = BenchProxy();
  }
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  CellResult cell{cluster.Run(trace), 0.0};
  cell.fairness = JainFairness(BuildPerModelReport(cluster.requests(), registry));
  return cell;
}

CellResult RunServerlessCell(double load_factor, bool proxy) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(kModels);
  auto trace = MakeTrace(registry, load_factor);
  ServerlessLlmConfig config;
  config.gpus = 5;
  if (proxy) {
    config.proxy = BenchProxy();
  }
  ServerlessLlmCluster cluster(config, registry, GpuSpec::H800());
  CellResult cell{cluster.Run(trace), 0.0};
  cell.fairness = JainFairness(BuildPerModelReport(cluster.requests(), registry));
  return cell;
}

void PrintCell(const char* system, double factor, bool proxy, const CellResult& cell) {
  const RunMetrics& m = cell.metrics;
  std::printf("%-14s x%.2f proxy=%-3s | goodput %6.3f rps | attain %5.1f%% | "
              "fair %4.2f | done %4llu | rej %4llu | shed %3llu | timeout %3llu\n",
              system, factor, proxy ? "on" : "off", m.Goodput(), m.SloAttainment() * 100.0,
              cell.fairness, static_cast<unsigned long long>(m.completed_requests),
              static_cast<unsigned long long>(m.rejected_requests),
              static_cast<unsigned long long>(m.shed_requests),
              static_cast<unsigned long long>(m.timed_out_requests));
}

}  // namespace

int main() {
  const std::vector<double> factors = {0.5, 1.0, 1.5, 2.0};

  // 2 systems x 2 proxy settings x |factors| independent runs, fanned
  // across the sweep pool (each task rebuilds registry + trace itself).
  std::vector<std::function<CellResult()>> tasks;
  for (double factor : factors) {
    for (int proxy = 0; proxy < 2; ++proxy) {
      tasks.push_back([factor, proxy] { return RunAegaeonCell(factor, proxy != 0); });
      tasks.push_back([factor, proxy] { return RunServerlessCell(factor, proxy != 0); });
    }
  }
  std::vector<CellResult> cells = SweepMap(std::move(tasks));

  PrintHeader("Overload goodput: bursty MMPP trace, 8-model market, 5 GPUs");
  std::printf("trace: MMPP base %.2f rps/model, burst x%.0f, calm %.0fs / burst %.0fs, "
              "%.0f s horizon\n",
              kSustainableBase, kBurstMultiplier, kMeanCalm, kMeanBurst, kHorizonS);
  size_t index = 0;
  for (double factor : factors) {
    for (int proxy = 0; proxy < 2; ++proxy) {
      PrintCell("Aegaeon", factor, proxy != 0, cells[index++]);
      PrintCell("ServerlessLLM", factor, proxy != 0, cells[index++]);
    }
    std::printf("\n");
  }

  // Headline check: at 2x the proxy must strictly improve goodput for both
  // systems (the driver greps this line).
  const CellResult& aeg_off = cells[cells.size() - 4];
  const CellResult& sls_off = cells[cells.size() - 3];
  const CellResult& aeg_on = cells[cells.size() - 2];
  const CellResult& sls_on = cells[cells.size() - 1];
  bool aeg_wins = aeg_on.metrics.Goodput() > aeg_off.metrics.Goodput();
  bool sls_wins = sls_on.metrics.Goodput() > sls_off.metrics.Goodput();
  std::printf("at 2.0x load: proxy goodput gain Aegaeon %+.3f rps (%s), "
              "ServerlessLLM %+.3f rps (%s)\n",
              aeg_on.metrics.Goodput() - aeg_off.metrics.Goodput(), aeg_wins ? "WIN" : "LOSS",
              sls_on.metrics.Goodput() - sls_off.metrics.Goodput(), sls_wins ? "WIN" : "LOSS");
  return aeg_wins && sls_wins ? 0 : 1;
}
