// Simulator-core performance microbenchmark. Tracks two numbers across PRs
// via BENCH_sim_perf.json:
//
//   1. Event-queue hot path: events/sec through schedule -> cancel -> pop
//      cycles, measured for the current EventQueue (SBO callbacks + slot-map
//      cancellation) and for an inline replica of the pre-rework queue
//      (std::function callbacks + unordered_set cancellation) running the
//      identical workload. The improvement percentage is the EventQueue
//      rework's payoff.
//   2. Sweep throughput: wall-clock for an 8-point x 4-system end-to-end
//      sweep run serially vs. through ParallelSweep, asserting bit-identical
//      SLO attainment per (point, system) pair.
//
// Usage: bench_sim_perf [output.json]   (default BENCH_sim_perf.json)

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <unordered_set>
#include <vector>

#include "e2e_common.h"
#include "sim/event_queue.h"
#include "sim/parallel_sweep.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// --- Replica of the pre-rework EventQueue ------------------------------
// std::function callbacks (heap-allocating for captures > ~16 bytes) and a
// hash-set cancellation check on every front access. Kept here, not in the
// library, purely as the measurement baseline.
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  uint64_t Push(TimePoint when, Callback cb) {
    uint64_t id = next_seq_++;
    heap_.push_back(Entry{when, id, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    ++live_count_;
    return id;
  }

  bool Cancel(uint64_t id) {
    if (id >= next_seq_ || !cancelled_.insert(id).second) {
      return false;
    }
    if (live_count_ > 0) {
      --live_count_;
    }
    return true;
  }

  bool empty() const { return live_count_ == 0; }

  TimePoint NextTime() {
    SkipCancelled();
    return heap_.empty() ? kTimeNever : heap_.front().when;
  }

  TimePoint PopAndRun() {
    SkipCancelled();
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    --live_count_;
    entry.cb();
    return entry.when;
  }

 private:
  struct Entry {
    TimePoint when;
    uint64_t seq;
    Callback cb;
  };

  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.seq > b.seq;
  }

  void SkipCancelled() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.front().seq);
      if (it == cancelled_.end()) {
        return;
      }
      cancelled_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<uint64_t> cancelled_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

// The churn workload mirrors the simulator's hot loop: batches of pushes
// with capture-carrying callbacks, a cancellation mix, then a drain through
// NextTime()/PopAndRun() exactly as Simulator::Run does.
template <typename Queue>
double ChurnEventsPerSec(uint64_t target_events, uint64_t* processed_out) {
  Queue queue;
  uint64_t fired = 0;
  // 32-byte capture: over std::function's inline buffer, within
  // EventCallback's 48-byte SBO — the common case for cluster callbacks.
  struct Payload {
    uint64_t a, b, c;
  };
  constexpr int kBatch = 256;
  double t = 0.0;
  auto start = std::chrono::steady_clock::now();
  while (fired < target_events) {
    decltype(queue.Push(0.0, [] {})) ids[kBatch];
    for (int i = 0; i < kBatch; ++i) {
      Payload payload{fired, static_cast<uint64_t>(i), 42};
      ids[i] = queue.Push(t + i * 1e-6, [payload, &fired] {
        fired += 1 + (payload.c == 0);  // keep the capture alive
      });
    }
    for (int i = 0; i < kBatch; i += 4) {
      queue.Cancel(ids[i]);
    }
    while (!queue.empty()) {
      queue.NextTime();
      queue.PopAndRun();
    }
    t += 1.0;
  }
  double elapsed = Seconds(start);
  *processed_out = fired;
  return elapsed > 0.0 ? static_cast<double>(fired) / elapsed : 0.0;
}

// --- Sweep speedup ------------------------------------------------------

std::vector<SweepCase> BuildSweepCases() {
  std::vector<SweepCase> cases;
  // Heavier markets than the figure sweeps so each task runs long enough to
  // amortize pool overhead and give a stable speedup measurement.
  for (int models : {24, 32, 40, 48, 56, 64, 72, 80}) {
    cases.push_back(SweepCase{
        [models] { return ModelRegistry::MidSizeMarket(models); },
        [](const ModelRegistry& registry) {
          return GeneratePoisson(registry, 0.25, kHorizon, Dataset::ShareGpt(), kSeed);
        }});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sim_perf.json";
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = ParallelSweep::DefaultThreads();

  std::printf("=== Simulator-core performance (cores=%d, sweep threads=%d) ===\n\n", cores,
              threads);

  // 1. Event-queue hot path. Interleaved best-of-N repetitions: the best
  // rate estimates intrinsic cost robustly even on noisy shared machines.
  constexpr uint64_t kTargetEvents = 1000000;
  constexpr int kReps = 5;
  uint64_t processed = 0;
  uint64_t legacy_processed = 0;
  double legacy_eps = 0.0;
  double current_eps = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    legacy_eps = std::max(legacy_eps, ChurnEventsPerSec<LegacyEventQueue>(kTargetEvents, &processed));
    legacy_processed = processed;
    current_eps = std::max(current_eps, ChurnEventsPerSec<EventQueue>(kTargetEvents, &processed));
  }
  double improvement = legacy_eps > 0.0 ? 100.0 * (current_eps / legacy_eps - 1.0) : 0.0;
  std::printf("event-queue churn (%llu events, 32B captures, 25%% cancelled):\n",
              static_cast<unsigned long long>(processed));
  std::printf("  legacy (std::function + unordered_set): %12.0f events/sec\n", legacy_eps);
  std::printf("  current (SBO callback + slot-map):      %12.0f events/sec\n", current_eps);
  std::printf("  improvement: %+.1f%%\n\n", improvement);

  // 2. Sweep speedup: serial loop vs ParallelSweep on the same task list.
  std::vector<SweepCase> cases = BuildSweepCases();
  auto serial_start = std::chrono::steady_clock::now();
  std::vector<E2eResult> serial = RunAllSystemsSweep(cases, /*threads=*/1);
  double serial_seconds = Seconds(serial_start);

  auto parallel_start = std::chrono::steady_clock::now();
  std::vector<E2eResult> parallel = RunAllSystemsSweep(cases, threads);
  double parallel_seconds = Seconds(parallel_start);

  bool identical = serial.size() == parallel.size();
  for (size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].aegaeon == parallel[i].aegaeon &&
                serial[i].serverless == parallel[i].serverless &&
                serial[i].serverless_plus == parallel[i].serverless_plus &&
                serial[i].muxserve == parallel[i].muxserve;
  }
  double speedup = parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  std::printf("e2e sweep (%zu points x 4 systems):\n", cases.size());
  std::printf("  serial:   %8.2fs\n", serial_seconds);
  std::printf("  parallel: %8.2fs  (%d threads)\n", parallel_seconds, threads);
  std::printf("  speedup: %.2fx, results %s\n\n", speedup,
              identical ? "bit-identical" : "DIVERGED (BUG)");

  // 3. Per-run counters from one representative e2e run.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(24);
  auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
  RunMetrics metrics = RunAegaeon(registry, trace);
  std::printf("e2e run counters (24 models): %llu events in %.3fs -> %.0f events/sec\n",
              static_cast<unsigned long long>(metrics.sim.events_processed),
              metrics.sim.wall_seconds, metrics.sim.EventsPerSec());

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"sweep_threads\": %d,\n"
               "  \"queue\": {\n"
               "    \"events\": %llu,\n"
               "    \"legacy_events_per_sec\": %.0f,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"improvement_pct\": %.1f\n"
               "  },\n"
               "  \"sweep\": {\n"
               "    \"points\": %zu,\n"
               "    \"systems\": 4,\n"
               "    \"serial_seconds\": %.3f,\n"
               "    \"parallel_seconds\": %.3f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"identical_results\": %s\n"
               "  },\n"
               "  \"e2e_run\": {\n"
               "    \"events\": %llu,\n"
               "    \"wall_seconds\": %.3f,\n"
               "    \"events_per_sec\": %.0f\n"
               "  }\n"
               "}\n",
               cores, threads, static_cast<unsigned long long>(legacy_processed), legacy_eps,
               current_eps, improvement, cases.size(), serial_seconds, parallel_seconds, speedup,
               identical ? "true" : "false",
               static_cast<unsigned long long>(metrics.sim.events_processed),
               metrics.sim.wall_seconds, metrics.sim.EventsPerSec());
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return identical ? 0 : 1;
}
