// Failover benchmark: goodput through a crash-storm vs a fault-free
// baseline on the same pool and trace. Tracks via BENCH_failover.json:
//
//   1. Goodput retention: the crash-storm run (dispatcher killed mid-run
//      plus two cell-level instance failures) vs the fault-free baseline,
//      both with a 3-replica control plane. Retention is a goodput RATIO
//      measured in one process, so the gate in tools/run_benches.sh is
//      machine-independent (same normalization idea as bench_sim_perf).
//   2. Determinism through faults: the crash-storm run must be
//      bit-identical across shard counts {1, 2, 4, 8} — election, replay,
//      and recovery included. Divergence is a hard failure here, not just
//      a JSON field.
//   3. Exactly-once delivery: every request in the trace completes; the
//      failover detour may cost latency but never loses work.
//
// Usage: bench_failover [output.json]   (default BENCH_failover.json)

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/cluster.h"
#include "core/fleet.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

using namespace aegaeon;

namespace {

constexpr double kTraceHorizon = 120.0;  // seconds of simulated arrivals
constexpr double kRpsPerModel = 0.5;
constexpr uint64_t kSeed = 4242;
constexpr int kCells = 8;
constexpr int kModels = 16;
// The storm: the leader dies mid-trace while two cells are each down one
// instance. Crash times sit inside the arrival window so deliveries are
// in flight when the dispatcher goes dark.
constexpr double kDispatcherCrash = 60.0;
constexpr double kDispatcherDowntime = 8.0;

AegaeonConfig CellConfig() {
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  return config;
}

FleetConfig StormConfig(int shards) {
  FleetConfig config;
  config.cells = kCells;
  config.shards = shards;
  config.cell = CellConfig();
  config.ctrl.replicas = 3;
  return config;
}

// Everything a run produces that must be deterministic across shard
// counts, control-plane protocol outcome included.
struct Signature {
  uint64_t completed = 0;
  int64_t tokens_met = 0;
  double horizon = 0.0;
  uint64_t events = 0;
  uint64_t elections = 0;
  uint64_t redispatched = 0;
  double leader_downtime = 0.0;

  bool operator==(const Signature& other) const {
    return completed == other.completed && tokens_met == other.tokens_met &&
           horizon == other.horizon && events == other.events &&
           elections == other.elections && redispatched == other.redispatched &&
           leader_downtime == other.leader_downtime;
  }
};

Signature Sign(const RunMetrics& metrics) {
  Signature sig;
  sig.completed = metrics.completed_requests;
  sig.tokens_met = metrics.tokens_met;
  sig.horizon = metrics.horizon;
  sig.events = metrics.sim.events_processed;
  sig.elections = metrics.ctrl.elections;
  sig.redispatched = metrics.ctrl.redispatched_requests;
  sig.leader_downtime = metrics.ctrl.leader_downtime;
  return sig;
}

void ApplyStorm(ShardedFleet& fleet) {
  fleet.ScheduleDispatcherCrash(kDispatcherCrash, kDispatcherDowntime);
  fleet.ScheduleCellFailure(/*cell=*/0, /*prefill_partition=*/false, /*index=*/0,
                            /*when=*/55.0, /*downtime=*/20.0);
  fleet.ScheduleCellFailure(/*cell=*/2, /*prefill_partition=*/true, /*index=*/0,
                            /*when=*/62.0, /*downtime=*/15.0);
}

bool AllRequestsComplete(const ShardedFleet& fleet, size_t trace_size) {
  uint64_t finished = 0;
  for (int c = 0; c < fleet.cells(); ++c) {
    for (const Request& request : fleet.cell(c).requests()) {
      if (!request.finished() || request.generated != request.output_tokens) {
        return false;
      }
      ++finished;
    }
  }
  return finished == trace_size;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_failover.json";

  ModelRegistry registry = ModelRegistry::MidSizeMarket(kModels);
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, kRpsPerModel, kTraceHorizon, Dataset::ShareGpt(), kSeed);
  std::printf("failover bench: %d cells, %zu requests, dispatcher crash at %.0fs "
              "(+%.0fs downtime), 2 instance failures\n",
              kCells, trace.size(), kDispatcherCrash, kDispatcherDowntime);

  // Fault-free baseline (replicated control plane, no faults): the goodput
  // the pool delivers when nothing breaks.
  RunMetrics baseline;
  {
    ShardedFleet fleet(StormConfig(/*shards=*/4), registry, GpuSpec::H800());
    baseline = fleet.Run(trace);
    if (!AllRequestsComplete(fleet, trace.size())) {
      std::fprintf(stderr, "FAIL: baseline run left requests unfinished\n");
      return 1;
    }
  }
  std::printf("  baseline:    goodput %.3f rps, SLO attainment %.4f\n", baseline.Goodput(),
              baseline.SloAttainment());

  // Crash-storm across shard counts: one protocol outcome, bit-identical.
  RunMetrics storm;
  Signature reference;
  bool identical = true;
  bool all_complete = true;
  for (int shards : {1, 2, 4, 8}) {
    ShardedFleet fleet(StormConfig(shards), registry, GpuSpec::H800());
    ApplyStorm(fleet);
    RunMetrics metrics = fleet.Run(trace);
    all_complete = all_complete && AllRequestsComplete(fleet, trace.size());
    if (shards == 1) {
      reference = Sign(metrics);
      storm = metrics;
    } else if (!(Sign(metrics) == reference)) {
      identical = false;
    }
  }
  std::printf("  crash-storm: goodput %.3f rps, SLO attainment %.4f\n", storm.Goodput(),
              storm.SloAttainment());
  std::printf("  control plane: %llu heartbeats, %llu elections, %llu failovers, "
              "%llu re-dispatched (%llu front door), %.2fs leaderless\n",
              static_cast<unsigned long long>(storm.ctrl.heartbeats_sent),
              static_cast<unsigned long long>(storm.ctrl.elections),
              static_cast<unsigned long long>(storm.ctrl.failovers),
              static_cast<unsigned long long>(storm.ctrl.redispatched_requests),
              static_cast<unsigned long long>(storm.ctrl.frontdoor_replays),
              storm.ctrl.leader_downtime);

  const double retention =
      baseline.Goodput() > 0.0 ? storm.Goodput() / baseline.Goodput() : 0.0;
  std::printf("  goodput retention through the storm: %.3f\n", retention);

  if (!identical) {
    std::fprintf(stderr, "FAIL: crash-storm run diverged across shard counts\n");
    return 1;
  }
  if (!all_complete) {
    std::fprintf(stderr, "FAIL: a crash-storm run lost or truncated requests\n");
    return 1;
  }
  if (storm.ctrl.failovers == 0 || storm.ctrl.redispatched_requests == 0) {
    std::fprintf(stderr, "FAIL: the storm never exercised failover (crash mis-timed?)\n");
    return 1;
  }

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"failover\": {\n"
               "    \"requests\": %zu,\n"
               "    \"goodput_baseline_rps\": %.4f,\n"
               "    \"goodput_storm_rps\": %.4f,\n"
               "    \"goodput_retention\": %.4f,\n"
               "    \"slo_attainment_baseline\": %.4f,\n"
               "    \"slo_attainment_storm\": %.4f,\n"
               "    \"elections\": %llu,\n"
               "    \"failovers\": %llu,\n"
               "    \"redispatched_requests\": %llu,\n"
               "    \"frontdoor_replays\": %llu,\n"
               "    \"leader_downtime_s\": %.4f,\n"
               "    \"identical_results\": %s,\n"
               "    \"all_requests_complete\": %s\n"
               "  }\n"
               "}\n",
               trace.size(), baseline.Goodput(), storm.Goodput(), retention,
               baseline.SloAttainment(), storm.SloAttainment(),
               static_cast<unsigned long long>(storm.ctrl.elections),
               static_cast<unsigned long long>(storm.ctrl.failovers),
               static_cast<unsigned long long>(storm.ctrl.redispatched_requests),
               static_cast<unsigned long long>(storm.ctrl.frontdoor_replays),
               storm.ctrl.leader_downtime, identical ? "true" : "false",
               all_complete ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
