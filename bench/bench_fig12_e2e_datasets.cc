// Figure 12: end-to-end SLO attainment with the alternative datasets
// ShareGPT-ix2 (inputs x2) and ShareGPT-ox2 (outputs x2), at per-model
// RPS 0.1 and 0.5. Paper: longer outputs widen Aegaeon's advantage (up to
// 2.5x goodput) because HOL blocking worsens with decoding time; longer
// inputs cost all systems a little, the request-level baselines most.

#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

void Sweep(const char* title, const Dataset& dataset, double rps,
           const std::vector<int>& model_counts) {
  PrintHeader(title);
  std::vector<SweepCase> cases;
  for (int models : model_counts) {
    cases.push_back(SweepCase{
        [models] { return ModelRegistry::MidSizeMarket(models); },
        [dataset, rps](const ModelRegistry& registry) {
          return GeneratePoisson(registry, rps, kHorizon, dataset, kSeed);
        }});
  }
  std::vector<E2eResult> results = RunAllSystemsSweep(cases);
  std::vector<double> xs;
  std::vector<double> ours;
  std::vector<double> sllm;
  for (size_t i = 0; i < cases.size(); ++i) {
    PrintE2eRow(model_counts[i], results[i], "#models");
    xs.push_back(model_counts[i]);
    ours.push_back(results[i].aegaeon);
    sllm.push_back(results[i].serverless);
  }
  std::printf("Max models at 90%% SLO: Aegaeon %.0f, ServerlessLLM %.0f\n",
              MaxLoadMeeting90(xs, ours), MaxLoadMeeting90(xs, sllm));
}

}  // namespace

int main() {
  Sweep("Figure 12(a): ShareGPT-ix2, RPS = 0.1", Dataset::ShareGptIx2(), 0.1,
        {20, 36, 52, 68, 80});
  Sweep("Figure 12(b): ShareGPT-ox2, RPS = 0.1", Dataset::ShareGptOx2(), 0.1,
        {20, 36, 52, 68, 80});
  Sweep("Figure 12(c): ShareGPT-ix2, RPS = 0.5", Dataset::ShareGptIx2(), 0.5, {16, 24, 32, 40, 48});
  Sweep("Figure 12(d): ShareGPT-ox2, RPS = 0.5", Dataset::ShareGptOx2(), 0.5, {16, 24, 32, 40, 48});
  return 0;
}
