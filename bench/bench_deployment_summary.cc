// §7.5 deployment summary: GPUs required to serve the production model mix
// before (dedicated reservation) and after (Aegaeon pooling).
//
// The production mix: twenty-eight 1.8-7B models at TP=1 and nineteen
// 32-72B models at TP=4, with per-model arrival rates in [0.01, 1.13]
// averaging 0.037 req/s. The paper reports 1,192 H20 GPUs before and 213
// after (82% saving). Absolute fleet sizes depend on Alibaba's internal
// redundancy policy; the *ratio* does not, so this bench derives minimal
// GPU counts for both strategies (dedicated needs at least one instance
// per model; Aegaeon pools are grown until measured SLO attainment >= 90%)
// and reports the saving, then scales both by the redundancy factor
// implied by the paper's fleet.

#include <cmath>
#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

// Skewed production-like rates averaging ~0.037 with a 1.13 hot model.
std::vector<double> SmallModelRates() {
  std::vector<double> rates = {1.13, 0.10, 0.05};
  for (int i = 0; i < 25; ++i) {
    rates.push_back(0.012);
  }
  return rates;
}

std::vector<double> LargeModelRates() {
  std::vector<double> rates = {0.05};
  for (int i = 0; i < 18; ++i) {
    rates.push_back(0.012);
  }
  return rates;
}

std::vector<ArrivalEvent> TraceFor(const std::vector<double>& rates, uint64_t seed) {
  std::vector<ArrivalEvent> events;
  Rng len_rng(seed);
  Dataset dataset = Dataset::ShareGpt();
  for (size_t m = 0; m < rates.size(); ++m) {
    PoissonProcess process(rates[m], seed + m * 131);
    for (double t : process.ArrivalsUntil(kHorizon)) {
      LengthSample lengths = dataset.Sample(len_rng);
      events.push_back(ArrivalEvent{t, static_cast<ModelId>(m), lengths.prompt_tokens,
                                    lengths.output_tokens});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) { return a.time < b.time; });
  return events;
}

// Smallest (prefill, decode) pool meeting 90% attainment; returns GPUs.
int MinimalPool(const ModelRegistry& registry, const std::vector<ArrivalEvent>& trace, int tp,
                double weight_buffer_gib, double* attainment_out) {
  for (int size = 1; size <= 8; ++size) {
    AegaeonConfig config;
    config.prefill_instances = size;
    config.decode_instances = size;
    config.instance_tp = tp;
    config.weight_buffer_bytes = weight_buffer_gib * kGiB;
    // A pool spanning k 8-GPU nodes aggregates k nodes' worth of host
    // checkpoint cache (requests are routed with cache locality).
    double nodes = std::ceil(2.0 * size * tp / 8.0);
    config.model_cache_bytes = nodes * 1536.0 * kGiB;
    AegaeonCluster cluster(config, registry, GpuSpec::H20());
    double attainment = cluster.Run(trace).SloAttainment();
    if (attainment >= 0.90) {
      *attainment_out = attainment;
      return 2 * size * tp;
    }
  }
  *attainment_out = 0.0;
  return 16 * tp;
}

}  // namespace

int main() {
  std::printf("=== §7.5 deployment: GPUs before vs after Aegaeon (H20 fleet) ===\n\n");

  // --- Before: dedicated reservation (minimum one instance per model). ----
  std::vector<double> small_rates = SmallModelRates();
  std::vector<double> large_rates = LargeModelRates();
  int before_small = static_cast<int>(small_rates.size()) * 1;      // TP=1
  int before_large = static_cast<int>(large_rates.size()) * 4;      // TP=4
  int before = before_small + before_large;
  std::printf("Dedicated (minimum): %d small-model GPUs + %d large-model GPUs = %d\n",
              before_small, before_large, before);

  // --- After: measured minimal Aegaeon pools at >= 90% SLO attainment. ----
  ModelRegistry small_market = ModelRegistry::SmallModelMarket(static_cast<int>(small_rates.size()));
  ModelRegistry large_market = ModelRegistry::LargeModelMarket(static_cast<int>(large_rates.size()));
  double small_att = 0.0;
  double large_att = 0.0;
  int after_small = MinimalPool(small_market, TraceFor(small_rates, 11), 1, 15.0,
                                &small_att);
  int after_large = MinimalPool(large_market, TraceFor(large_rates, 13), 4, 76.0,
                                &large_att);
  int after = after_small + after_large;
  std::printf("Aegaeon pools (measured): %d GPUs for 28 small models (SLO %.1f%%) + "
              "%d GPUs for 19 large models (SLO %.1f%%) = %d\n",
              after_small, small_att * 100.0, after_large, large_att * 100.0, after);

  double saving = 1.0 - static_cast<double>(after) / before;
  std::printf("\nGPU saving (redundancy-independent ratio): %.1f%% (paper: 82%%)\n",
              saving * 100.0);

  double redundancy = 1192.0 / before;
  std::printf("At the paper fleet's redundancy factor (%.1fx): %d -> %.0f GPUs "
              "(paper: 1,192 -> 213)\n",
              redundancy, 1192, after * redundancy);
  return 0;
}
