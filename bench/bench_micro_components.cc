// Micro-benchmarks (google-benchmark) for the hot data-plane components:
// event queue, slab allocator, bump allocator, quota computation, and the
// Zipf sampler. These bound the simulator's own control-plane costs.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/decode_scheduler.h"
#include "infer/paged_kv.h"
#include "infer/tiny_llm.h"
#include "mem/bump_allocator.h"
#include "mem/slab_allocator.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace aegaeon {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    EventQueue queue;
    for (int i = 0; i < n; ++i) {
      queue.Push(rng.NextDouble(), [] {});
    }
    while (!queue.empty()) {
      queue.PopAndRun();
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SlabAllocFree(benchmark::State& state) {
  SlabAllocator slabs(1ULL << 30, 1ULL << 22);
  slabs.RegisterShape(0, 512 * 1024);
  const size_t count = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto blocks = slabs.Alloc(0, count);
    slabs.Free(blocks);
    benchmark::DoNotOptimize(blocks);
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SlabAllocFree)->Arg(8)->Arg(64)->Arg(512);

void BM_BumpAlloc(benchmark::State& state) {
  BumpAllocator bump(1ULL << 30);
  for (auto _ : state) {
    auto offset = bump.Alloc(4096);
    if (!offset.has_value()) {
      bump.Reset();
    }
    benchmark::DoNotOptimize(offset);
  }
}
BENCHMARK(BM_BumpAlloc);

void BM_ComputeQuotas(benchmark::State& state) {
  std::vector<BatchQuotaInput> batches(static_cast<size_t>(state.range(0)),
                                       BatchQuotaInput{0.015, 0.1});
  for (auto _ : state) {
    QuotaResult result = ComputeQuotas(batches, 3.0, 4.0);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ComputeQuotas)->Arg(4)->Arg(16)->Arg(64);

void BM_TinyLlmDecode(benchmark::State& state) {
  TinyLlmConfig config;
  config.hidden = static_cast<int>(state.range(0));
  config.ffn = config.hidden * 2;
  TinyLlm model(config, 1);
  KvArena arena(1 << 24, 1 << 16);
  PagedKvStore kv(config.KvGeometry(), &arena);
  std::vector<float> logits = model.ForwardToken(1, 0, kv);
  int next = model.Greedy(logits);
  for (auto _ : state) {
    if (kv.tokens() > 2000) {
      state.PauseTiming();
      kv.Release();
      logits = model.ForwardToken(1, 0, kv);
      next = model.Greedy(logits);
      state.ResumeTiming();
    }
    logits = model.ForwardToken(next, kv.tokens(), kv);
    next = model.Greedy(logits);
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TinyLlmDecode)->Arg(48)->Arg(96);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<size_t>(state.range(0)), 1.8);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace aegaeon

BENCHMARK_MAIN();
