// Figures 8 and 10: preemptive auto-scaling latency across the optimization
// tiers. A decode instance switches LLaMA-13B -> Qwen-7B with 4 GB of KV
// cache leaving and 4 GB arriving:
//   T0  baseline            (full reinit, naive load, blocking KV, GC)
//   T1  + component reuse   (§5.1)
//   T2  + explicit memory   (§5.2, incl. prefetch)
//   T3  + fine-grained sync (§5.3, KV off the critical path)
// Paper: the full stack removes ~97% of T0.

#include <cstdio>
#include <functional>
#include <vector>

#include "engine/autoscaler.h"
#include "hw/gpu_device.h"
#include "hw/gpu_spec.h"
#include "mem/model_cache.h"
#include "model/latency_model.h"
#include "model/registry.h"
#include "sim/parallel_sweep.h"

using namespace aegaeon;

namespace {

struct TierResult {
  Duration latency;
  ScaleBreakdown breakdown;
};

TierResult MeasureTier(OptLevel level, bool prefetch, const ModelRegistry& registry,
                       const LatencyModel& latency, ModelCache& cache) {
  GpuDevice gpu(0, GpuSpec::H800());
  AutoScaler scaler(gpu, latency, cache, EngineCostModel{}, level, 40.0 * kGiB, 30e9);
  if (level >= OptLevel::kComponentReuse) {
    scaler.BootBeforeServing();
  }
  scaler.set_prefetch_enabled(prefetch);
  ScaleResult first = scaler.ScaleTo(registry.Get(0), 0.0);  // LLaMA-13B resident
  TimePoint idle = first.ready_at + 30.0;
  if (prefetch) {
    // The token-level schedule knows the next model; the previous turn's
    // quota hides the prefetch (§5.2).
    scaler.Prefetch(registry.Get(1), idle - 5.0);
  }
  ScaleResult second = scaler.ScaleTo(registry.Get(1), idle, /*kv_out_bytes=*/4e9,
                                      /*kv_in_bytes=*/4e9);
  return TierResult{second.ready_at - idle, second.breakdown};
}

// Each tier task constructs its own registry/latency/cache so the fan-out
// shares no mutable state (ModelCache tracks LRU order across ScaleTo).
TierResult MeasureTierIsolated(OptLevel level, bool prefetch) {
  ModelRegistry registry;
  registry.Add(ModelSpec::Llama13B(), 1, SloSpec::Chatbot());
  registry.Add(ModelSpec::Qwen7B(), 1, SloSpec::Chatbot());
  LatencyModel latency(GpuSpec::H800());
  ModelCache cache(1536.0 * kGiB, 1.2e9);
  for (const DeployedModel& model : registry.models()) {
    cache.Warm(model.id, model.spec.weight_bytes());
  }
  return MeasureTier(level, prefetch, registry, latency, cache);
}

}  // namespace

int main() {
  std::printf("=== Figures 8 & 10: preemptive scaling latency by optimization tier ===\n");
  std::printf("Switch: LLaMA-13B -> Qwen-7B, 4 GB KV out + 4 GB KV in\n\n");
  std::printf("%-26s %10s %8s %8s %8s %8s %8s %8s\n", "tier", "latency(s)", "kv_out", "gc",
              "init", "load", "kv_in", "kv-path");

  struct Tier {
    const char* name;
    OptLevel level;
    bool prefetch;
  };
  const Tier tiers[] = {
      {"T0 baseline", OptLevel::kBaseline, false},
      {"T1 component-reuse", OptLevel::kComponentReuse, false},
      {"T2 explicit-memory", OptLevel::kExplicitMemory, false},
      {"T2 + prefetch", OptLevel::kExplicitMemory, true},
      {"T3 fine-grained-sync", OptLevel::kFineGrainedSync, true},
  };

  std::vector<std::function<TierResult()>> tasks;
  for (const Tier& tier : tiers) {
    tasks.push_back([tier] { return MeasureTierIsolated(tier.level, tier.prefetch); });
  }
  ParallelSweep sweep;
  std::vector<TierResult> results = sweep.Map(std::move(tasks));

  double t0 = 0.0;
  double t3 = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    const Tier& tier = tiers[i];
    const TierResult& result = results[i];
    const ScaleBreakdown& b = result.breakdown;
    double init = b.dist_exec + b.profile + b.kv_init + b.misc;
    std::printf("%-26s %10.2f %8.2f %8.2f %8.2f %8.2f %8.2f %8s\n", tier.name, result.latency,
                b.kv_out, b.gc, init, b.model_load, b.kv_in,
                b.kv_blocking ? "blocking" : "overlapped");
    if (tier.level == OptLevel::kBaseline) {
      t0 = result.latency;
    }
    if (tier.level == OptLevel::kFineGrainedSync) {
      t3 = result.latency;
    }
  }
  std::printf("\nLatency reduction T0 -> T3: %.1f%% (paper: ~97%%)\n", 100.0 * (1.0 - t3 / t0));
  return 0;
}
