// Figure 6 / §4.1: unified vs. disaggregated token-level scheduling.
// All three systems get the same GPUs and the same T3 auto-scaling stack;
// only the scheduling differs:
//   prefill-first unified: bursts of prefills stall decoding -> TBT misses;
//   decode-first unified:  busy decode phases stall prefills -> TTFT misses;
//   disaggregated (Aegaeon): balanced on both workloads.
// Workload A is bursty (arrival spikes); workload B has 4x-long prompts.

#include <cstdio>

#include "analysis/stats.h"
#include "baselines/unified.h"
#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

struct Row {
  double attainment;
  double ttft_p99;
  double decode_wait_share;
};

Row RunUnified(UnifiedPolicy policy, const ModelRegistry& registry,
               const std::vector<ArrivalEvent>& trace) {
  UnifiedConfig config;
  config.instances = 16;
  config.policy = policy;
  UnifiedCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  double total = metrics.breakdown.Total();
  return Row{metrics.SloAttainment(), Percentile(metrics.ttft_samples, 99),
             total > 0 ? metrics.breakdown.decode_wait / total : 0.0};
}

Row RunDisagg(const ModelRegistry& registry, const std::vector<ArrivalEvent>& trace) {
  RunMetrics metrics = RunAegaeon(registry, trace);
  double total = metrics.breakdown.Total();
  return Row{metrics.SloAttainment(), Percentile(metrics.ttft_samples, 99),
             total > 0 ? metrics.breakdown.decode_wait / total : 0.0};
}

void Report(const char* workload, const ModelRegistry& registry,
            const std::vector<ArrivalEvent>& trace) {
  std::printf("\n--- %s (%zu requests) ---\n", workload, trace.size());
  std::printf("%-26s %12s %14s %16s\n", "scheduler", "SLO attain", "p99 TTFT (s)",
              "decode-wait shr");
  Row pf = RunUnified(UnifiedPolicy::kPrefillFirst, registry, trace);
  Row df = RunUnified(UnifiedPolicy::kDecodeFirst, registry, trace);
  Row dis = RunDisagg(registry, trace);
  std::printf("%-26s %11.1f%% %14.2f %15.1f%%\n", "unified prefill-first",
              pf.attainment * 100.0, pf.ttft_p99, pf.decode_wait_share * 100.0);
  std::printf("%-26s %11.1f%% %14.2f %15.1f%%\n", "unified decode-first",
              df.attainment * 100.0, df.ttft_p99, df.decode_wait_share * 100.0);
  std::printf("%-26s %11.1f%% %14.2f %15.1f%%\n", "disaggregated (Aegaeon)",
              dis.attainment * 100.0, dis.ttft_p99, dis.decode_wait_share * 100.0);
}

}  // namespace

int main() {
  std::printf("=== Figure 6 / §4.1: unified vs disaggregated scheduling, 16 GPUs ===\n");

  // Workload A: bursty arrivals (prefill-first's weakness is TBT under
  // bursts; the spikes keep decoding preempted).
  {
    ModelRegistry registry = ModelRegistry::MidSizeMarket(40);
    Dataset dataset = Dataset::ShareGpt();
    auto trace = GeneratePoisson(registry, 0.12, kHorizon, dataset, kSeed);
    for (int burst = 0; burst < 4; ++burst) {
      AddBurst(trace, registry, static_cast<ModelId>(burst), /*burst_rps=*/3.0,
               /*start=*/40.0 + burst * 50.0, /*length=*/15.0, dataset, kSeed + burst);
    }
    Report("A: bursty arrivals (ShareGPT)", registry, trace);
  }

  // Workload B: long prompts (decode-first's weakness is TTFT when prefills
  // queue behind long decode phases).
  {
    ModelRegistry registry = ModelRegistry::MidSizeMarket(40);
    Dataset long_inputs("ShareGPT-ix4", 4.5, 1.1, 5.25, 0.9, /*input_scale=*/4.0, 1.0);
    auto trace = GeneratePoisson(registry, 0.12, kHorizon, long_inputs, kSeed);
    Report("B: 4x-long prompts", registry, trace);
  }

  std::printf("\n(disaggregation balances both; each unified heuristic fails on one —\n"
              "the §4.1 argument for splitting the pool)\n");
  return 0;
}
