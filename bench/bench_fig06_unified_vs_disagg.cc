// Figure 6 / §4.1: unified vs. disaggregated token-level scheduling.
// All three systems get the same GPUs and the same T3 auto-scaling stack;
// only the scheduling differs:
//   prefill-first unified: bursts of prefills stall decoding -> TBT misses;
//   decode-first unified:  busy decode phases stall prefills -> TTFT misses;
//   disaggregated (Aegaeon): balanced on both workloads.
// Workload A is bursty (arrival spikes); workload B has 4x-long prompts.

#include <cstdio>

#include "analysis/stats.h"
#include "baselines/unified.h"
#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

struct Row {
  double attainment;
  double ttft_p99;
  double decode_wait_share;
};

// Builds workload A (bursty arrivals) from scratch; used inside each task.
std::vector<ArrivalEvent> BurstyTrace(const ModelRegistry& registry) {
  Dataset dataset = Dataset::ShareGpt();
  auto trace = GeneratePoisson(registry, 0.12, kHorizon, dataset, kSeed);
  for (int burst = 0; burst < 4; ++burst) {
    AddBurst(trace, registry, static_cast<ModelId>(burst), /*burst_rps=*/3.0,
             /*start=*/40.0 + burst * 50.0, /*length=*/15.0, dataset, kSeed + burst);
  }
  return trace;
}

// Builds workload B (4x-long prompts) from scratch; used inside each task.
std::vector<ArrivalEvent> LongPromptTrace(const ModelRegistry& registry) {
  Dataset long_inputs("ShareGPT-ix4", 4.5, 1.1, 5.25, 0.9, /*input_scale=*/4.0, 1.0);
  return GeneratePoisson(registry, 0.12, kHorizon, long_inputs, kSeed);
}

Row RunUnified(UnifiedPolicy policy, const ModelRegistry& registry,
               const std::vector<ArrivalEvent>& trace) {
  UnifiedConfig config;
  config.instances = 16;
  config.policy = policy;
  UnifiedCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  double total = metrics.breakdown.Total();
  return Row{metrics.SloAttainment(), Percentile(metrics.ttft_samples, 99),
             total > 0 ? metrics.breakdown.decode_wait / total : 0.0};
}

Row RunDisagg(const ModelRegistry& registry, const std::vector<ArrivalEvent>& trace) {
  RunMetrics metrics = RunAegaeon(registry, trace);
  double total = metrics.breakdown.Total();
  return Row{metrics.SloAttainment(), Percentile(metrics.ttft_samples, 99),
             total > 0 ? metrics.breakdown.decode_wait / total : 0.0};
}

void Report(const char* workload, size_t request_count, const Row* rows) {
  std::printf("\n--- %s (%zu requests) ---\n", workload, request_count);
  std::printf("%-26s %12s %14s %16s\n", "scheduler", "SLO attain", "p99 TTFT (s)",
              "decode-wait shr");
  const char* names[] = {"unified prefill-first", "unified decode-first",
                         "disaggregated (Aegaeon)"};
  for (int i = 0; i < 3; ++i) {
    std::printf("%-26s %11.1f%% %14.2f %15.1f%%\n", names[i], rows[i].attainment * 100.0,
                rows[i].ttft_p99, rows[i].decode_wait_share * 100.0);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 6 / §4.1: unified vs disaggregated scheduling, 16 GPUs ===\n");

  // (workload x scheduler) fan-out: each task rebuilds registry and trace.
  using TraceFn = std::vector<ArrivalEvent> (*)(const ModelRegistry&);
  const TraceFn workloads[] = {&BurstyTrace, &LongPromptTrace};
  std::vector<std::function<Row()>> tasks;
  for (TraceFn make_trace : workloads) {
    for (int scheduler = 0; scheduler < 3; ++scheduler) {
      tasks.push_back([make_trace, scheduler] {
        ModelRegistry registry = ModelRegistry::MidSizeMarket(40);
        auto trace = make_trace(registry);
        switch (scheduler) {
          case 0:
            return RunUnified(UnifiedPolicy::kPrefillFirst, registry, trace);
          case 1:
            return RunUnified(UnifiedPolicy::kDecodeFirst, registry, trace);
          default:
            return RunDisagg(registry, trace);
        }
      });
    }
  }
  std::vector<Row> rows = SweepMap(std::move(tasks));

  // Request counts for the headers (cheap to regenerate).
  ModelRegistry registry = ModelRegistry::MidSizeMarket(40);
  Report("A: bursty arrivals (ShareGPT)", BurstyTrace(registry).size(), &rows[0]);
  Report("B: 4x-long prompts", LongPromptTrace(registry).size(), &rows[3]);

  std::printf("\n(disaggregation balances both; each unified heuristic fails on one —\n"
              "the §4.1 argument for splitting the pool)\n");
  return 0;
}
