// Figure 13: end-to-end SLO attainment under stricter SLOs. Keeps the
// Figure 11(a) setting (ShareGPT, RPS = 0.1) while scaling the target TTFT
// and TBT to 0.5x / 0.3x / 0.2x (down to 2 s TTFT and 20 ms TBT).
// Paper: Aegaeon leads at 0.5x and 0.3x; at 0.2x the slack vanishes and
// static multiplexing (MuxServe) catches up, though Aegaeon still beats
// request-level auto-scaling (ServerlessLLM).

#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

int main() {
  const std::vector<int> model_counts = {16, 28, 40, 52, 64};
  for (double scale : {0.5, 0.3, 0.2}) {
    std::printf("\n=== Figure 13: %.1fx SLO (TTFT %.1fs, TBT %.0fms), RPS = 0.1 ===\n", scale,
                10.0 * scale, 100.0 * scale);
    for (int models : model_counts) {
      ModelRegistry registry =
          ModelRegistry::MidSizeMarket(models, SloSpec::Chatbot().Scaled(scale));
      auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
      double ours = RunAegaeon(registry, trace).SloAttainment();
      double sllm = RunServerless(registry, trace, false).SloAttainment();
      double mux = RunMux(registry, trace).SloAttainment();
      std::printf("#models %3d | Aegaeon %6.1f%% | ServerlessLLM %6.1f%% | MuxServe %6.1f%%\n",
                  models, ours * 100.0, sllm * 100.0, mux * 100.0);
    }
  }
  return 0;
}
