// Figure 13: end-to-end SLO attainment under stricter SLOs. Keeps the
// Figure 11(a) setting (ShareGPT, RPS = 0.1) while scaling the target TTFT
// and TBT to 0.5x / 0.3x / 0.2x (down to 2 s TTFT and 20 ms TBT).
// Paper: Aegaeon leads at 0.5x and 0.3x; at 0.2x the slack vanishes and
// static multiplexing (MuxServe) catches up, though Aegaeon still beats
// request-level auto-scaling (ServerlessLLM).

#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

struct Fig13Row {
  double aegaeon = 0.0;
  double serverless = 0.0;
  double muxserve = 0.0;
};

}  // namespace

int main() {
  const std::vector<int> model_counts = {16, 28, 40, 52, 64};
  const std::vector<double> scales = {0.5, 0.3, 0.2};
  // One task per (scale, #models, system); each rebuilds its own state.
  std::vector<std::function<double()>> tasks;
  for (double scale : scales) {
    for (int models : model_counts) {
      auto point = [scale, models](int system) {
        ModelRegistry registry =
            ModelRegistry::MidSizeMarket(models, SloSpec::Chatbot().Scaled(scale));
        auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
        switch (system) {
          case 0:
            return RunAegaeon(registry, trace).SloAttainment();
          case 1:
            return RunServerless(registry, trace, false).SloAttainment();
          default:
            return RunMux(registry, trace).SloAttainment();
        }
      };
      for (int system = 0; system < 3; ++system) {
        tasks.push_back([point, system] { return point(system); });
      }
    }
  }
  std::vector<double> values = SweepMap(std::move(tasks));

  size_t next = 0;
  for (double scale : scales) {
    std::printf("\n=== Figure 13: %.1fx SLO (TTFT %.1fs, TBT %.0fms), RPS = 0.1 ===\n", scale,
                10.0 * scale, 100.0 * scale);
    for (int models : model_counts) {
      Fig13Row row;
      row.aegaeon = values[next++];
      row.serverless = values[next++];
      row.muxserve = values[next++];
      std::printf("#models %3d | Aegaeon %6.1f%% | ServerlessLLM %6.1f%% | MuxServe %6.1f%%\n",
                  models, row.aegaeon * 100.0, row.serverless * 100.0, row.muxserve * 100.0);
    }
  }
  return 0;
}
