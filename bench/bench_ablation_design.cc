// Design-choice ablations beyond the paper's headline figures:
//   (1) Prefill grouping (Algorithm 1): MAX_GPSIZE 8 vs 1 (no grouping).
//   (2) Weight prefetching (§5.2): on vs off.
//   (3) Auto-scaling optimization tier end-to-end: T1 / T2 / T3.
//   (4) QMAX sensitivity (§4.3 claims robustness to alternative settings).
// Each row reports token-level SLO attainment on the same trace.

#include <cstdio>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

double Run(const ModelRegistry& registry, const std::vector<ArrivalEvent>& trace,
           AegaeonConfig config) {
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace).SloAttainment();
}

}  // namespace

int main() {
  // A load where the design choices matter: 48 models at RPS 0.2 on 16 GPUs.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(48);
  auto trace = GeneratePoisson(registry, 0.2, kHorizon, Dataset::ShareGpt(), kSeed);
  AegaeonConfig base;  // 6 prefill + 10 decode, T3, prefetch on

  std::printf("=== Ablations: 48 models x 0.2 rps on 16 H800 GPUs ===\n\n");

  std::printf("--- (1) Prefill grouping (Algorithm 1) ---\n");
  for (int gpsize : {1, 2, 8, 16}) {
    AegaeonConfig config = base;
    config.max_group_size = gpsize;
    std::printf("MAX_GPSIZE = %-3d -> SLO attainment %6.2f%%\n", gpsize,
                Run(registry, trace, config) * 100.0);
  }

  std::printf("\n--- (2) Weight prefetching ---\n");
  for (bool prefetch : {false, true}) {
    AegaeonConfig config = base;
    config.prefetch = prefetch;
    std::printf("prefetch %-4s    -> SLO attainment %6.2f%%\n", prefetch ? "on" : "off",
                Run(registry, trace, config) * 100.0);
  }

  std::printf("\n--- (3) Auto-scaling optimization tier (end-to-end) ---\n");
  for (OptLevel level : {OptLevel::kComponentReuse, OptLevel::kExplicitMemory,
                         OptLevel::kFineGrainedSync}) {
    AegaeonConfig config = base;
    config.opt_level = level;
    config.prefetch = level >= OptLevel::kExplicitMemory;
    std::printf("%-22s -> SLO attainment %6.2f%%\n", ToString(level).c_str(),
                Run(registry, trace, config) * 100.0);
  }

  std::printf("\n--- (4) QMAX sensitivity (paper: robust to alternatives) ---\n");
  for (double qmax : {1.0, 2.0, 4.0, 8.0}) {
    AegaeonConfig config = base;
    config.qmax = qmax;
    std::printf("QMAX = %-4.1fs     -> SLO attainment %6.2f%%\n", qmax,
                Run(registry, trace, config) * 100.0);
  }

  std::printf("\n--- (5) Attainment floor alpha (Eq. 3) ---\n");
  for (double floor : {0.25, 0.5, 1.0}) {
    AegaeonConfig config = base;
    config.alpha_floor = floor;
    std::printf("alpha floor %.2f -> SLO attainment %6.2f%%\n", floor,
                Run(registry, trace, config) * 100.0);
  }

  std::printf("\n--- (6) Hybrid multiplexing: co-resident models (§8 extension) ---\n");
  for (int residents : {1, 2, 3}) {
    AegaeonConfig config = base;
    config.resident_models = residents;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    RunMetrics metrics = cluster.Run(trace);
    double mean_switch = 0.0;
    for (double v : metrics.switch_latency_samples) {
      mean_switch += v;
    }
    mean_switch = metrics.switch_latency_samples.empty()
                      ? 0.0
                      : mean_switch / metrics.switch_latency_samples.size();
    std::printf("resident set %d  -> SLO attainment %6.2f%% (mean switch %4.0f ms)\n",
                residents, metrics.SloAttainment() * 100.0, mean_switch * 1000.0);
  }
  return 0;
}
