// Beyond the paper: one pool serving two SLO tiers at once — relaxed
// chatbots (10 s / 100 ms) interleaved with interactive search-style models
// (3 s / 50 ms, the §7.2 "3s TTFT and 30ms TBT are adequate" family).
// Algorithm 2 carries per-batch deadlines (d_k), so the strict tier earns
// proportionally more frequent turns; this bench checks neither tier
// starves the other as the market grows.

#include <cstdio>
#include <vector>

#include "analysis/report.h"
#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

int main() {
  const SloSpec relaxed = SloSpec::Chatbot();            // 10 s / 100 ms
  const SloSpec strict{3.0, 0.050};                      // interactive tier

  std::printf("=== Mixed SLO tiers in one pool (16 H800 GPUs, RPS = 0.1) ===\n");
  std::printf("tier A (even models): TTFT %.0fs TBT %.0fms | tier B (odd): TTFT %.0fs "
              "TBT %.0fms\n\n",
              relaxed.ttft, relaxed.tbt * 1000, strict.ttft, strict.tbt * 1000);
  std::printf("%-10s %14s %14s %14s\n", "#models", "overall", "relaxed tier", "strict tier");

  struct TierRow {
    double overall = 0.0;
    int64_t met[2] = {0, 0};
    int64_t total[2] = {0, 0};
  };
  const std::vector<int> model_counts = {16, 28, 40, 52};
  std::vector<std::function<TierRow()>> tasks;
  for (int models : model_counts) {
    tasks.push_back([models, relaxed, strict] {
      ModelRegistry registry = ModelRegistry::MixedSloMarket(models, relaxed, strict);
      auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
      AegaeonConfig config;
      AegaeonCluster cluster(config, registry, GpuSpec::H800());
      RunMetrics metrics = cluster.Run(trace);

      TierRow row;
      row.overall = metrics.SloAttainment();
      for (const Request& r : cluster.requests()) {
        int tier = static_cast<int>(r.model % 2);
        row.met[tier] += r.tokens_met;
        row.total[tier] += r.output_tokens;
      }
      return row;
    });
  }
  std::vector<TierRow> rows = SweepMap(std::move(tasks));

  auto pct = [](int64_t m, int64_t t) {
    return t == 0 ? 100.0 : 100.0 * static_cast<double>(m) / static_cast<double>(t);
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    const TierRow& row = rows[i];
    std::printf("%-10d %13.1f%% %13.1f%% %13.1f%%\n", model_counts[i], row.overall * 100.0,
                pct(row.met[0], row.total[0]), pct(row.met[1], row.total[1]));
  }
  std::printf("\n(the strict tier degrades first as the pool saturates — its slack is\n"
              "smaller — but the relaxed tier is not starved to protect it, and at\n"
              "moderate load both tiers hold: per-deadline quotas do the balancing)\n");
  return 0;
}
