// Figure 11: end-to-end SLO attainment on ShareGPT (16 H800 GPUs; Aegaeon
// uses 6 prefill + 10 decoding instances).
//   (a) RPS = 0.1 per model, sweeping the number of models;
//   (b) RPS = 0.5 per model, sweeping the number of models;
//   (c) 40 models, sweeping the per-model arrival rate.
// Paper headlines: Aegaeon sustains 2x (a) / 2.5x (b) higher load than
// ServerlessLLM and supports up to 7 models per decoding GPU; MuxServe is
// capped at 32 models by memory.

#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

void SweepModels(const char* title, double rps, const std::vector<int>& model_counts) {
  PrintHeader(title);
  std::vector<SweepCase> cases;
  for (int models : model_counts) {
    cases.push_back(SweepCase{
        [models] { return ModelRegistry::MidSizeMarket(models); },
        [rps](const ModelRegistry& registry) {
          return GeneratePoisson(registry, rps, kHorizon, Dataset::ShareGpt(), kSeed);
        }});
  }
  std::vector<E2eResult> results = RunAllSystemsSweep(cases);
  std::vector<double> xs;
  std::vector<double> ours;
  std::vector<double> sllm;
  for (size_t i = 0; i < cases.size(); ++i) {
    int models = model_counts[i];
    const E2eResult& result = results[i];
    PrintE2eRow(models, result, "#models");
    xs.push_back(models);
    ours.push_back(result.aegaeon);
    sllm.push_back(result.serverless);
  }
  double a = MaxLoadMeeting90(xs, ours);
  double s = MaxLoadMeeting90(xs, sllm);
  if (s > 0) {
    std::printf("Max models at 90%% SLO: Aegaeon %.0f, ServerlessLLM %.0f (ratio %.2fx)\n", a, s,
                a / s);
  } else {
    std::printf("Max models at 90%% SLO: Aegaeon %.0f, ServerlessLLM < %.0f (ratio > %.2fx)\n",
                a, xs.front(), a / xs.front());
  }
}

}  // namespace

int main() {
  // (a) RPS = 0.1.
  SweepModels("Figure 11(a): ShareGPT, RPS = 0.1", 0.1, {20, 32, 44, 56, 70, 80});

  // (b) RPS = 0.5.
  SweepModels("Figure 11(b): ShareGPT, RPS = 0.5", 0.5, {16, 24, 32, 40, 48});

  // (c) 40 models, rate sweep.
  PrintHeader("Figure 11(c): 40 models, sweeping per-model arrival rate");
  const std::vector<double> rates = {0.05, 0.15, 0.30, 0.45, 0.60, 0.75};
  std::vector<SweepCase> cases;
  for (double rps : rates) {
    cases.push_back(SweepCase{
        [] { return ModelRegistry::MidSizeMarket(40); },
        [rps](const ModelRegistry& registry) {
          return GeneratePoisson(registry, rps, kHorizon, Dataset::ShareGpt(), kSeed);
        }});
  }
  std::vector<E2eResult> results = RunAllSystemsSweep(cases);
  std::vector<double> xs;
  std::vector<double> ours;
  std::vector<double> sllm;
  for (size_t i = 0; i < rates.size(); ++i) {
    PrintE2eRow(rates[i], results[i], "rate (req/s)");
    xs.push_back(rates[i]);
    ours.push_back(results[i].aegaeon);
    sllm.push_back(results[i].serverless);
  }
  std::printf("Max rate at 90%% SLO: Aegaeon %.2f, ServerlessLLM %.2f\n",
              MaxLoadMeeting90(xs, ours), MaxLoadMeeting90(xs, sllm));
  return 0;
}
