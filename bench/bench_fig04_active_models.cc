// Figure 4 / Theorem 3.1: active model count over time.
// Paper setting: M = 100, lambda = 0.037, T = 16.79 s => E[m] = 46.55,
// i.e. request-level auto-scaling still needs ~E[m] reserved GPUs
// (< 3 models per GPU of pooling).

#include <algorithm>
#include <cstdio>

#include "analysis/theory.h"

using namespace aegaeon;

int main() {
  const int kModels = 100;
  const double kLambda = 0.037;
  const double kService = 16.79;

  double expected = ExpectedActiveModels(kModels, kLambda, kService);
  std::printf("=== Figure 4: active model count (M=%d, lambda=%.3f, T=%.2fs) ===\n", kModels,
              kLambda, kService);
  std::printf("Theorem 3.1 closed form: E[m] = M*(1-e^(-lambda*T)) = %.2f (paper: 46.55)\n\n",
              expected);

  ActiveModelTrace trace =
      SimulateActiveModels(kModels, kLambda, kService, /*horizon=*/2100.0,
                           /*sample_interval=*/1.0, /*seed=*/4, /*warmup=*/100.0);

  std::printf("%-10s %s\n", "time (s)", "active models");
  for (size_t i = 0; i < trace.sample_times.size(); i += 100) {
    std::printf("%-10.0f %d\n", trace.sample_times[i], trace.active_counts[i]);
  }
  int min_count = 1000;
  int max_count = 0;
  for (int c : trace.active_counts) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  std::printf("\nSimulated mean: %.2f (expected %.2f); range [%d, %d]\n", trace.mean, expected,
              min_count, max_count);
  std::printf("Implied pooling limit of request-level scaling: %.2f models/GPU (paper: < 3)\n",
              kModels / expected);
  return 0;
}
