// Figure 17: sensitivity analysis.
// Left: lower-end hardware — a 4xA10 node (2 prefill + 2 decoding
// instances, prefetching disabled because 24 GB cannot host two models)
// serving 6-7B models at RPS 0.1, sweeping the model count, with TBT
// scaled 0.5x (Strict) / 1x (Normal) / 2x (Loose).
// Right: larger models — 72B at TP=4 on an 8xH800 node (1 prefill + 1
// decoding instance), 4 models, sweeping the aggregate arrival rate, with
// TTFT scaled for Strict/Loose.

#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

double RunA10(int models, double tbt_scale) {
  SloSpec slo = SloSpec::Chatbot();
  slo.tbt *= tbt_scale;
  ModelRegistry registry = ModelRegistry::SmallModelMarket(models, slo);
  auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.prefetch = false;           // A10: no VRAM headroom for two models
  config.weight_buffer_bytes = 15.0 * kGiB;
  config.gpu_kv_bytes = 6.0 * kGiB;  // 24 GB card
  AegaeonCluster cluster(config, registry, GpuSpec::A10());
  return cluster.Run(trace).SloAttainment();
}

double Run72B(double total_rps, double ttft_scale) {
  SloSpec slo = SloSpec::Chatbot();
  slo.ttft *= ttft_scale;
  ModelRegistry registry = ModelRegistry::LargeModelMarket(4, slo);
  auto trace =
      GeneratePoisson(registry, total_rps / 4.0, kHorizon, Dataset::ShareGpt(), kSeed);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  config.instance_tp = 4;
  config.weight_buffer_bytes = 76.0 * kGiB;  // two 36 GB shards fit
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  return cluster.Run(trace).SloAttainment();
}

}  // namespace

int main() {
  const std::vector<int> a10_models = {4, 6, 8, 10};
  const std::vector<double> rates = {0.4, 0.9, 1.4, 1.9, 2.4};
  const double tiers[] = {0.5, 1.0, 2.0};  // Strict / Normal / Loose

  // One task per (point, tier); left panel first, right panel appended.
  std::vector<std::function<double()>> tasks;
  for (int models : a10_models) {
    for (double scale : tiers) {
      tasks.push_back([models, scale] { return RunA10(models, scale); });
    }
  }
  for (double rate : rates) {
    for (double scale : tiers) {
      tasks.push_back([rate, scale] { return Run72B(rate, scale); });
    }
  }
  std::vector<double> values = SweepMap(std::move(tasks));
  size_t next = 0;

  std::printf("=== Figure 17 (left): 4xA10, 6-7B models, RPS = 0.1 ===\n");
  std::printf("%-10s %10s %10s %10s\n", "#models", "Strict", "Normal", "Loose");
  for (int models : a10_models) {
    double strict = values[next++];
    double normal = values[next++];
    double loose = values[next++];
    std::printf("%-10d %9.1f%% %9.1f%% %9.1f%%\n", models, strict * 100.0, normal * 100.0,
                loose * 100.0);
  }

  std::printf("\n=== Figure 17 (right): 8xH800, 72B models at TP=4, 4 models ===\n");
  std::printf("%-12s %10s %10s %10s\n", "rate (req/s)", "Strict", "Normal", "Loose");
  for (double rate : rates) {
    double strict = values[next++];
    double normal = values[next++];
    double loose = values[next++];
    std::printf("%-12.1f %9.1f%% %9.1f%% %9.1f%%\n", rate, strict * 100.0, normal * 100.0,
                loose * 100.0);
  }
  return 0;
}
