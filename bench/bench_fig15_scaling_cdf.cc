// Figure 15. Left: CDF of preemptive auto-scaling latency for 7B / 9B / 13B
// model markets — about half the switches are near-instant thanks to
// prefetching, and the rest complete in under a second. Right: CDF of the
// per-request KV cache management overhead (control + data), under one
// second in total.

#include <cstdio>
#include <vector>

#include "analysis/stats.h"
#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

void PrintCdf(const char* label, std::vector<double> samples) {
  auto cdf = BuildCdf(std::move(samples), 10);
  std::printf("%-10s", label);
  for (const CdfPoint& point : cdf) {
    std::printf(" [%4.2fs:%3.0f%%]", point.value, point.fraction * 100.0);
  }
  std::printf("\n");
}

ModelRegistry UniformMarket(const ModelSpec& spec, int count) {
  ModelRegistry registry;
  for (int i = 0; i < count; ++i) {
    ModelSpec copy = spec;
    copy.name += "#" + std::to_string(i);
    registry.Add(std::move(copy), 1, SloSpec::Chatbot());
  }
  return registry;
}

}  // namespace

int main() {
  struct Size {
    const char* label;
    ModelSpec spec;
  };
  const std::vector<Size> sizes = {Size{"7B", ModelSpec::Qwen7B()}, Size{"9B", ModelSpec::Yi9B()},
                                   Size{"13B", ModelSpec::Llama13B()}};
  struct Setup {
    int models;
    double rps;
  };
  const std::vector<Setup> setups = {Setup{16, 0.1}, Setup{32, 0.1}, Setup{64, 0.1},
                                     Setup{16, 0.5}, Setup{32, 0.5}};

  // Left panel (one task per model size) then right panel (one per setup);
  // every task rebuilds registry/trace/cluster from the shared seed.
  std::vector<std::function<RunMetrics()>> tasks;
  for (const Size& size : sizes) {
    ModelSpec spec = size.spec;
    tasks.push_back([spec] {
      ModelRegistry registry = UniformMarket(spec, 32);
      auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
      // Uniform-size markets size their VRAM split for prefetch headroom
      // (two co-resident checkpoints) — a per-deployment configuration.
      AegaeonConfig config;
      config.prefill_instances = 6;
      config.decode_instances = 10;
      config.weight_buffer_bytes = 56.0 * kGiB;
      config.gpu_kv_bytes = 20.0 * kGiB;
      AegaeonCluster cluster(config, registry, GpuSpec::H800());
      return cluster.Run(trace);
    });
  }
  for (const Setup& setup : setups) {
    tasks.push_back([setup] {
      ModelRegistry registry = ModelRegistry::MidSizeMarket(setup.models);
      auto trace = GeneratePoisson(registry, setup.rps, kHorizon, Dataset::ShareGpt(), kSeed);
      return RunAegaeon(registry, trace);
    });
  }
  std::vector<RunMetrics> all = SweepMap(std::move(tasks));

  std::printf("=== Figure 15 (left): CDF of auto-scaling latency by model size ===\n");
  for (size_t i = 0; i < sizes.size(); ++i) {
    const RunMetrics& metrics = all[i];
    PrintCdf(sizes[i].label, metrics.switch_latency_samples);
    std::printf("           p50 %.3fs  p90 %.3fs  p99 %.3fs  (n=%zu)\n",
                Percentile(metrics.switch_latency_samples, 50),
                Percentile(metrics.switch_latency_samples, 90),
                Percentile(metrics.switch_latency_samples, 99),
                metrics.switch_latency_samples.size());
  }

  std::printf("\n=== Figure 15 (right): CDF of per-request KV cache sync overhead ===\n");
  for (size_t i = 0; i < setups.size(); ++i) {
    const RunMetrics& metrics = all[sizes.size() + i];
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%.1f", setups[i].models, setups[i].rps);
    PrintCdf(label, metrics.kv_sync_samples);
  }
  std::printf("\n(per-request KV management overhead stays well under one second)\n");
  return 0;
}
