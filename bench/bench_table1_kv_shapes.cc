// Table 1: the shape and size of KV cache for different models in vLLM.
// Values pertain to a single token at 16-bit precision.

#include <iostream>

#include "analysis/table.h"
#include "model/model_spec.h"

using namespace aegaeon;

int main() {
  std::cout << "=== Table 1: KV cache shape and size (per token, 16-bit) ===\n";
  std::cout << "Paper: Qwen-7B 512 KB | InternLM2.5-7B 128 KB | LLaMA-13B 800 KB | "
               "Qwen-72B 2560 KB\n\n";
  Table table({"Model", "KV Cache Shape", "KV Cache Size"});
  for (const ModelSpec& spec : {ModelSpec::Qwen7B(), ModelSpec::InternLm2_7B(),
                                ModelSpec::Llama13B(), ModelSpec::Qwen72B()}) {
    table.AddRow({spec.name, spec.kv_shape().ToString(),
                  Table::Num(spec.kv_bytes_per_token() / 1024.0, 0) + " KB"});
  }
  table.Print(std::cout);

  std::cout << "\nAdditional market models (same derivation):\n";
  Table extra({"Model", "KV Cache Shape", "KV Cache Size", "Weights"});
  for (const ModelSpec& spec : {ModelSpec::Qwen1_8B(), ModelSpec::Yi6B(), ModelSpec::Yi9B(),
                                ModelSpec::Qwen14B(), ModelSpec::Qwen32B()}) {
    extra.AddRow({spec.name, spec.kv_shape().ToString(),
                  Table::Num(spec.kv_bytes_per_token() / 1024.0, 0) + " KB",
                  Table::Num(spec.weight_bytes() / 1e9, 0) + " GB"});
  }
  extra.Print(std::cout);
  return 0;
}
