// Figure 16: memory fragmentation in the unified CPU KV cache under slab
// allocation, per block shape (S0..S5) and overall. Fragmentation is the
// ratio of unused memory to peak allocated memory; the paper keeps the
// overall figure below 20%.

#include <cstdio>
#include <vector>

#include "e2e_common.h"
#include "kv/unified_cache.h"
#include "mem/slab_allocator.h"

using namespace aegaeon;
using namespace aegaeon_bench;

namespace {

// Everything the report needs, extracted inside the task: slab stats must be
// read from the cluster before the task returns (the cluster dies with it).
struct FragReport {
  double attainment = 0.0;
  std::vector<ShapeClassId> shapes;
  std::vector<SlabAllocator::ShapeStats> stats;
  SlabAllocator::ShapeStats overall;
};

}  // namespace

int main() {
  std::vector<std::function<FragReport()>> tasks;
  tasks.push_back([] {
    // A 36-model mixed market exercises all six KV shapes of the presets.
    ModelRegistry registry = ModelRegistry::MidSizeMarket(36);
    auto trace = GeneratePoisson(registry, 0.15, kHorizon, Dataset::ShareGpt(), kSeed);

    AegaeonConfig config;
    config.prefill_instances = 6;
    config.decode_instances = 10;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    RunMetrics metrics = cluster.Run(trace);

    const SlabAllocator& slabs = cluster.cpu_kv_cache().slabs();
    FragReport report;
    report.attainment = metrics.SloAttainment();
    for (ShapeClassId shape : slabs.shapes()) {
      report.shapes.push_back(shape);
      report.stats.push_back(slabs.shape_stats(shape));
    }
    report.overall = slabs.overall_stats();
    return report;
  });
  FragReport report = SweepMap(std::move(tasks)).front();

  std::printf("=== Figure 16: unified CPU KV cache fragmentation (slab allocation) ===\n");
  std::printf("run: 36 models, RPS 0.15, SLO attainment %.1f%%\n\n", report.attainment * 100.0);
  std::printf("%-8s %14s %16s %16s %14s\n", "shape", "block (KB)", "peak held (MB)",
              "used @peak (MB)", "fragmentation");
  for (size_t i = 0; i < report.shapes.size(); ++i) {
    const SlabAllocator::ShapeStats& stats = report.stats[i];
    if (stats.peak_held_bytes == 0) {
      continue;
    }
    std::printf("S%-7u %14.0f %16.1f %16.1f %13.1f%%\n", report.shapes[i],
                static_cast<double>(stats.block_bytes) / 1024.0,
                static_cast<double>(stats.peak_held_bytes) / 1e6,
                static_cast<double>(stats.used_at_peak) / 1e6,
                stats.FragmentationAtPeak() * 100.0);
  }
  const SlabAllocator::ShapeStats& overall = report.overall;
  std::printf("%-8s %14s %16.1f %16.1f %13.1f%%\n", "All", "-",
              static_cast<double>(overall.peak_held_bytes) / 1e6,
              static_cast<double>(overall.used_at_peak) / 1e6,
              overall.FragmentationAtPeak() * 100.0);
  std::printf("\n(paper: overall fragmentation below 20%%)\n");
  return 0;
}
