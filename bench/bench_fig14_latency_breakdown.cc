// Figure 14: request latency breakdown across setups (#models x RPS).
// Each request's lifetime decomposes into prefill waiting/execution,
// decoding waiting/execution, and the KV-cache management overheads
// (control: index/event bookkeeping; data: explicit transfer waits).
// Paper: prefill waiting stays controlled as load grows, decoding waiting
// dominates by design (buffered-output slack), overheads are negligible.

#include <cstdio>
#include <vector>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

int main() {
  struct Setup {
    int models;
    double rps;
  };
  const std::vector<Setup> setups = {{16, 0.1}, {32, 0.1}, {64, 0.1}, {16, 0.5}, {32, 0.5}};

  std::printf("=== Figure 14: request latency breakdown (%% of total) ===\n\n");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "setup", "prefill-wait", "prefill-exec",
              "decode-wait", "decode-exec", "control-ovh", "data-ovh");
  for (const Setup& setup : setups) {
    ModelRegistry registry = ModelRegistry::MidSizeMarket(setup.models);
    auto trace = GeneratePoisson(registry, setup.rps, kHorizon, Dataset::ShareGpt(), kSeed);
    RunMetrics metrics = RunAegaeon(registry, trace);
    const LatencyBreakdown& b = metrics.breakdown;
    double total = b.Total();
    std::printf("%3dx%.1f     %11.1f%% %11.1f%% %11.1f%% %11.1f%% %11.2f%% %11.2f%%\n",
                setup.models, setup.rps, 100.0 * b.prefill_wait / total,
                100.0 * b.prefill_exec / total, 100.0 * b.decode_wait / total,
                100.0 * b.decode_exec / total, 100.0 * b.control_overhead / total,
                100.0 * b.data_overhead / total);
  }
  std::printf("\n(decoding waiting is the deliberately-earned slack of §4.3's weighted\n"
              "round-robin; overheads stay well under 1%% of request time)\n");
  return 0;
}
