// Beyond the paper's single-testbed figures: the same 16-GPU pool deployed
// across 1, 2, and 4 physical nodes (Figure 5 sketches the two-node case).
// Each node has its own model cache and unified CPU KV cache; KV crossing
// nodes rides the 25 GB/s fabric, and decode dispatch is locality-aware.
// The question: how much does splitting the pool cost?

#include <cstdio>

#include "e2e_common.h"

using namespace aegaeon;
using namespace aegaeon_bench;

int main() {
  std::printf("=== Multi-node deployment: 16 H800 GPUs as 1 / 2 / 4 nodes ===\n");
  std::printf("(40 models x 0.1 rps, ShareGPT; 6 prefill + 10 decoding instances)\n\n");

  struct NodeRow {
    double attainment = 0.0;
    uint64_t migrations = 0;
    uint64_t requests = 0;
  };
  const std::vector<int> node_counts = {1, 2, 4};
  std::vector<std::function<NodeRow()>> tasks;
  for (int nodes : node_counts) {
    tasks.push_back([nodes] {
      ModelRegistry registry = ModelRegistry::MidSizeMarket(40);
      auto trace = GeneratePoisson(registry, 0.1, kHorizon, Dataset::ShareGpt(), kSeed);
      AegaeonConfig config;
      config.prefill_instances = 6;
      config.decode_instances = 10;
      config.nodes = nodes;
      AegaeonCluster cluster(config, registry, GpuSpec::H800());
      RunMetrics metrics = cluster.Run(trace);
      return NodeRow{metrics.SloAttainment(), cluster.kv_migrations(), metrics.total_requests};
    });
  }
  std::vector<NodeRow> rows = SweepMap(std::move(tasks));

  std::printf("%-8s %14s %18s %20s\n", "nodes", "SLO attain", "KV migrations",
              "migrations/request");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-8d %13.1f%% %18lu %20.2f\n", node_counts[i], rows[i].attainment * 100.0,
                static_cast<unsigned long>(rows[i].migrations),
                static_cast<double>(rows[i].migrations) / static_cast<double>(rows[i].requests));
  }
  std::printf("\n(locality-aware dispatch keeps most KV on its home node; the fabric\n"
              "hop costs little at ShareGPT KV sizes, so pooling survives splitting)\n");
  return 0;
}
