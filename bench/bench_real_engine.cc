// Real-execution validation bench: MiniAegaeon serves several tiny
// transformers with token-level preemptive switching on one shared KV
// arena, and every output is checked against its dedicated-run reference.
// This is the engine-level counterpart of the simulated end-to-end figures:
// the schedulers' *policy* is evaluated at simulated H800 scale, and the
// KV bookkeeping's *correctness* is proven here with genuine attention.

#include <chrono>
#include <cstdio>
#include <vector>

#include "infer/mini_server.h"

using namespace aegaeon;

int main() {
  TinyLlmConfig config;
  config.vocab = 96;
  config.hidden = 32;
  config.layers = 2;
  config.heads = 4;
  config.kv_heads = 2;
  config.ffn = 64;

  std::printf("=== Real-execution exactness: token-level multi-model serving ===\n");
  std::printf("(tiny LLaMA-style models, genuine forward passes, shared KV arena)\n\n");
  std::printf("%-8s %-8s %10s %10s %10s %12s %10s\n", "models", "reqs", "tokens", "switches",
              "kv-swaps", "wall (ms)", "exact?");

  for (int model_count : {1, 2, 4, 6}) {
    MiniAegaeon server(model_count, config, /*arena_bytes=*/1 << 22,
                       /*seed=*/17 + model_count);
    struct Job {
      int model;
      std::vector<int> prompt;
      int max_new;
    };
    std::vector<Job> jobs;
    for (int r = 0; r < model_count * 3; ++r) {
      jobs.push_back(Job{r % model_count,
                         {1 + r, 2 + r, 3 + (r % 5)},
                         16 + (r % 4) * 8});
    }
    std::vector<int> ids;
    int total_tokens = 0;
    for (const Job& job : jobs) {
      ids.push_back(server.Submit(job.model, job.prompt, job.max_new));
      total_tokens += job.max_new;
    }
    auto start = std::chrono::steady_clock::now();
    bool completed = server.RunToCompletion(/*quota_tokens=*/5);
    auto elapsed = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    bool exact = completed;
    for (size_t i = 0; i < jobs.size() && exact; ++i) {
      exact = server.request(ids[i]).output ==
              server.DedicatedReference(jobs[i].model, jobs[i].prompt, jobs[i].max_new);
    }
    std::printf("%-8d %-8zu %10d %10lu %10lu %12.1f %10s\n", model_count, jobs.size(),
                total_tokens, static_cast<unsigned long>(server.model_switches()),
                static_cast<unsigned long>(server.kv_swaps()), elapsed,
                exact ? "YES" : "NO!");
  }
  std::printf("\n(every preempted, swapped, and resumed request reproduces its dedicated\n"
              "run bit-exactly — the correctness contract behind Figure 2(b))\n");
  return 0;
}
