// aegaeon_lint: the project-native static analyzer (src/lint). Lexes the
// given paths (default: src), runs the determinism/concurrency rule
// catalog, honors inline `// LINT-ALLOW(rule-id): justification`
// suppressions, and exits nonzero on findings. See DESIGN.md §11.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/analyzer.h"

namespace {

int Usage(std::ostream& os, int code) {
  os << "usage: aegaeon_lint [options] [path...]\n"
        "\n"
        "Static analysis of the Aegaeon sources for constructs that break the\n"
        "simulator's determinism contract (bit-identical output for identical\n"
        "(config, trace, seed)) or the threaded executors' discipline.\n"
        "Paths may be directories (scanned recursively for *.h, *.cc, *.cpp)\n"
        "or single files; the default is `src`, relative to the current\n"
        "directory — run from the repo root, or through the\n"
        "tools/determinism_lint.sh wrapper which does that for you.\n"
        "\n"
        "options:\n"
        "  --list-rules     print every rule id with its description and exit\n"
        "  --rule=<id>      only report findings of <id>; repeatable — use this\n"
        "                   to reproduce a CI failure locally one rule at a time\n"
        "  --json[=FILE]    write a SARIF-shaped JSON report to FILE (stdout\n"
        "                   when no FILE); the human-readable report still goes\n"
        "                   to stdout unless it IS stdout\n"
        "  --help           this text\n"
        "\n"
        "Suppressions are inline and self-documenting:\n"
        "    code();  // LINT-ALLOW(rule-id): why this is safe\n"
        "A suppression alone on its line covers the next line. A missing\n"
        "justification or an unknown rule id is itself a finding (rule\n"
        "`lint-allow`), so the allowlist cannot rot.\n"
        "\n"
        "exit status: 0 clean, 1 findings, 2 usage or I/O error\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using aegaeon::lint::AllRules;
  using aegaeon::lint::Rule;

  std::vector<std::string> paths;
  aegaeon::lint::LintOptions options;
  bool want_json = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    }
    if (arg == "--list-rules") {
      for (const Rule* rule : AllRules()) {
        std::cout << rule->id() << "\n    " << rule->description() << "\n";
      }
      std::cout << "lint-allow\n    malformed suppression: bare LINT-ALLOW without a "
                   "justification, or naming an unknown rule id.\n";
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      std::string id = arg.substr(7);
      bool known = id == "lint-allow" || id == "lex-error";
      for (const Rule* rule : AllRules()) {
        known = known || rule->id() == id;
      }
      if (!known) {
        std::cerr << "aegaeon_lint: unknown rule '" << id << "' (see --list-rules)\n";
        return 2;
      }
      options.rule_filter.push_back(std::move(id));
      continue;
    }
    if (arg == "--json") {
      want_json = true;
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "aegaeon_lint: unknown option '" << arg << "'\n";
      return Usage(std::cerr, 2);
    }
    paths.push_back(std::move(arg));
  }
  if (paths.empty()) {
    paths.emplace_back("src");
  }

  std::vector<std::string> errors;
  const std::vector<aegaeon::lint::FileContent> files =
      aegaeon::lint::CollectFiles(paths, &errors);
  for (const std::string& error : errors) {
    std::cerr << "aegaeon_lint: " << error << "\n";
  }
  if (!errors.empty()) {
    return 2;
  }

  const std::vector<aegaeon::lint::Finding> findings = aegaeon::lint::RunLint(files, options);

  if (want_json) {
    const std::string sarif = aegaeon::lint::FormatSarif(findings);
    if (json_path.empty()) {
      std::cout << sarif;
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::cerr << "aegaeon_lint: cannot write " << json_path << "\n";
        return 2;
      }
      out << sarif;
    }
  }
  if (!want_json || !json_path.empty()) {
    if (findings.empty()) {
      std::cout << "aegaeon_lint: OK (" << files.size() << " files, "
                << (options.rule_filter.empty() ? std::to_string(AllRules().size() + 1) + " rules"
                                                : "filtered rules")
                << ", 0 findings)\n";
    } else {
      std::cout << aegaeon::lint::FormatText(findings);
      std::cout << "aegaeon_lint: " << findings.size() << " finding(s) in " << files.size()
                << " file(s)\n";
    }
  }
  return findings.empty() ? 0 : 1;
}
