// aegaeon_plan — capacity planner CLI (src/planner).
//
// Profiles a workload (generated or replayed), calibrates per-GPU
// throughput, solves for the cheapest heterogeneous GPU pool meeting the
// token-level SLOs, and certifies the plan by replaying the trace on the
// simulator. Examples:
//
//   aegaeon_plan --models 24 --rps 0.05 --horizon 600
//   aegaeon_plan --trace-in workload.csv --gpus h800,a10 --target 0.95
//   aegaeon_plan --models 24 --rps 0.05 --compare-homogeneous --json plan.json

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "planner/planner.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

using namespace aegaeon;

struct Options {
  int models = 24;
  double rps = 0.05;
  double horizon = 600.0;
  std::string gpus = "h800,h20,a10,a100";
  int max_count = 64;
  double target = 0.90;
  double zipf = 0.0;
  int rounds = 5;
  double slo_scale = 1.0;
  std::string dataset = "sharegpt";
  uint64_t seed = 2025;
  std::string trace_in;
  std::string profile_cache;
  std::string matrix_out;
  std::string json_out;
  bool compare_homogeneous = false;
};

void Usage() {
  std::printf(
      "usage: aegaeon_plan [options]\n"
      "  --models N        models in the market (default 24)\n"
      "  --rps R           per-model Poisson rate (default 0.05)\n"
      "  --zipf S          skew popularity: Zipf(S) over models at a total\n"
      "                    rate of N*R req/s (default 0 = uniform)\n"
      "  --horizon T       trace length in seconds (default 600)\n"
      "  --gpus LIST       comma list of h800|h20|a10|a100 (default all four)\n"
      "  --max-count N     per-type GPU ceiling (default 64)\n"
      "  --target A        SLO attainment target in [0,1] (default 0.90)\n"
      "  --rounds N        max closed-loop rounds (default 5)\n"
      "  --slo-scale X     scale TTFT/TBT targets (default 1.0)\n"
      "  --dataset D       sharegpt|sharegpt-ix2|sharegpt-ox2|summarize, or\n"
      "                    mixed = chat/summarize services alternating by\n"
      "                    model id (default sharegpt)\n"
      "  --seed S          workload seed (default 2025)\n"
      "  --trace-in F      plan for a replayed CSV trace instead\n"
      "  --profile-cache F JSON throughput-profile cache (reused when valid)\n"
      "  --dump-workload-matrix F  write the profiled matrix as CSV\n"
      "  --compare-homogeneous     also search min homogeneous pools per GPU\n"
      "  --json F          write the certified plan as JSON\n");
}

GpuSpec PickGpu(const std::string& name) {
  if (name == "h800") {
    return GpuSpec::H800();
  }
  if (name == "h20") {
    return GpuSpec::H20();
  }
  if (name == "a10") {
    return GpuSpec::A10();
  }
  if (name == "a100") {
    return GpuSpec::A100();
  }
  std::fprintf(stderr, "unknown GPU '%s'\n", name.c_str());
  std::exit(2);
}

Dataset PickDataset(const std::string& name) {
  if (name == "sharegpt") {
    return Dataset::ShareGpt();
  }
  if (name == "sharegpt-ix2") {
    return Dataset::ShareGptIx2();
  }
  if (name == "sharegpt-ox2") {
    return Dataset::ShareGptOx2();
  }
  if (name == "summarize") {
    return Dataset::Summarize();
  }
  std::fprintf(stderr, "unknown --dataset '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<std::string> SplitCsv(const std::string& list) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) {
      comma = list.size();
    }
    if (comma > start) {
      parts.push_back(list.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else if (arg == "--models") {
      opts.models = std::atoi(next("--models"));
    } else if (arg == "--rps") {
      opts.rps = std::atof(next("--rps"));
    } else if (arg == "--horizon") {
      opts.horizon = std::atof(next("--horizon"));
    } else if (arg == "--gpus") {
      opts.gpus = next("--gpus");
    } else if (arg == "--max-count") {
      opts.max_count = std::atoi(next("--max-count"));
    } else if (arg == "--target") {
      opts.target = std::atof(next("--target"));
    } else if (arg == "--zipf") {
      opts.zipf = std::atof(next("--zipf"));
    } else if (arg == "--rounds") {
      opts.rounds = std::atoi(next("--rounds"));
    } else if (arg == "--slo-scale") {
      opts.slo_scale = std::atof(next("--slo-scale"));
    } else if (arg == "--dataset") {
      opts.dataset = next("--dataset");
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--trace-in") {
      opts.trace_in = next("--trace-in");
    } else if (arg == "--profile-cache") {
      opts.profile_cache = next("--profile-cache");
    } else if (arg == "--dump-workload-matrix") {
      opts.matrix_out = next("--dump-workload-matrix");
    } else if (arg == "--compare-homogeneous") {
      opts.compare_homogeneous = true;
    } else if (arg == "--json") {
      opts.json_out = next("--json");
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts.models <= 0 || opts.rps <= 0.0 || opts.horizon <= 0.0) {
    std::fprintf(stderr, "--models, --rps, and --horizon must be positive\n");
    return false;
  }
  if (opts.target <= 0.0 || opts.target > 1.0) {
    std::fprintf(stderr, "--target must be in (0, 1]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    Usage();
    return 2;
  }

  std::vector<GpuOption> options;
  for (const std::string& name : SplitCsv(opts.gpus)) {
    GpuOption option;
    option.spec = PickGpu(name);
    option.max_count = opts.max_count;
    options.push_back(option);
  }
  if (options.empty()) {
    std::fprintf(stderr, "--gpus selected no GPU types\n");
    return 2;
  }

  ModelRegistry registry =
      ModelRegistry::MidSizeMarket(opts.models, SloSpec::Chatbot().Scaled(opts.slo_scale));

  std::vector<ArrivalEvent> trace;
  double horizon = opts.horizon;
  if (!opts.trace_in.empty()) {
    std::string trace_error;
    if (!ReadTraceFile(opts.trace_in, trace, &trace_error)) {
      std::fprintf(stderr, "failed to read trace '%s': %s\n", opts.trace_in.c_str(),
                   trace_error.c_str());
      return 1;
    }
    for (const ArrivalEvent& event : trace) {
      horizon = std::max(horizon, event.time);
    }
    std::printf("planning for %zu replayed requests from %s\n", trace.size(),
                opts.trace_in.c_str());
  } else if (opts.dataset == "mixed") {
    trace = GenerateMixedPoisson(registry, opts.rps, opts.horizon, Dataset::ShareGpt(),
                                 Dataset::Summarize(), opts.seed);
    std::printf(
        "planning for %zu generated requests (%d models x %.3f rps x %.0f s, chat+summarize)\n",
        trace.size(), opts.models, opts.rps, opts.horizon);
  } else if (opts.zipf > 0.0) {
    trace = GenerateSkewed(registry, opts.models * opts.rps, opts.zipf, opts.horizon,
                           PickDataset(opts.dataset), opts.seed);
    std::printf(
        "planning for %zu generated requests (%d models, Zipf %.2f, %.3f req/s x %.0f s)\n",
        trace.size(), opts.models, opts.zipf, opts.models * opts.rps, opts.horizon);
  } else {
    trace = GeneratePoisson(registry, opts.rps, opts.horizon, PickDataset(opts.dataset),
                            opts.seed);
    std::printf("planning for %zu generated requests (%d models x %.3f rps x %.0f s)\n",
                trace.size(), opts.models, opts.rps, opts.horizon);
  }

  Planner planner(registry, options);
  PlannerOptions planner_options;
  planner_options.target_attainment = opts.target;
  planner_options.max_rounds = opts.rounds;
  planner_options.profile_cache = opts.profile_cache;

  CertifiedPlan result = planner.Solve(trace, horizon, planner_options);

  if (!opts.matrix_out.empty()) {
    std::ofstream csv(opts.matrix_out);
    WriteMatrixCsv(csv, result.matrix);
    std::printf("workload matrix written to %s\n", opts.matrix_out.c_str());
  }

  std::printf("workload:            %.3f req/s over %.0f s, %d x %d size buckets\n",
              result.matrix.total_rate, result.matrix.horizon, result.matrix.grid.inputs(),
              result.matrix.grid.outputs());
  std::printf("throughput profile:  %zu (gpu, class) entries%s\n", result.profile.entries.size(),
              result.profile_from_cache ? " (from cache)" : "");
  for (const std::string& note : result.plan.eliminated) {
    std::printf("solver:              %s\n", note.c_str());
  }

  if (!result.plan.feasible) {
    std::printf("INFEASIBLE: %s\n", result.plan.infeasible_reason.c_str());
    return 1;
  }

  for (size_t i = 0; i < result.rounds.size(); ++i) {
    const PlannerRound& round = result.rounds[i];
    std::printf("round %zu:             $%.2f/h, replay attainment %.2f%%%s\n", i + 1,
                round.plan.cost_per_hour, round.merged.SloAttainment() * 100.0,
                round.certified ? " (certified)" : "");
  }

  std::printf("plan %s:\n", result.certified ? "(simulator-certified)" : "(NOT certified)");
  for (const SubpoolPlan& sub : result.plan.subpools) {
    const GpuSpec& spec = options[sub.option].spec;
    std::printf("  %-10s x%-3d  (%d prefill + %d decode)  %.3f req/s  util %.0f%%  $%.2f/h\n",
                spec.name.c_str(), sub.gpus, sub.prefill, sub.decode, sub.assigned_rate,
                sub.utilization * 100.0, sub.gpus * spec.cost_per_hour);
  }
  std::printf("total:               $%.2f/hour, replay attainment %.2f%% (target %.0f%%)\n",
              result.plan.cost_per_hour, result.replay.SloAttainment() * 100.0,
              opts.target * 100.0);
  if (result.replay.CostPer1kTokens() > 0.0) {
    std::printf("serving cost:        $%.4f per 1k generated tokens\n",
                result.replay.CostPer1kTokens());
  }

  struct HomogeneousResult {
    std::string gpu;
    int gpus = -1;
    double cost = 0.0;
    double attainment = 0.0;
  };
  std::vector<HomogeneousResult> homogeneous;
  if (opts.compare_homogeneous) {
    for (const GpuOption& option : options) {
      HomogeneousResult h;
      h.gpu = option.spec.name;
      h.gpus = Planner::MinHomogeneousGpus(registry, option.spec, trace, opts.target,
                                           option.max_count);
      if (h.gpus > 0) {
        RunMetrics metrics = Planner::ReplayHomogeneous(registry, option.spec, h.gpus, trace);
        h.cost = h.gpus * option.spec.cost_per_hour;
        h.attainment = metrics.SloAttainment();
        std::printf("homogeneous %-10s x%-3d  $%.2f/h  attainment %.2f%%\n", h.gpu.c_str(),
                    h.gpus, h.cost, h.attainment * 100.0);
      } else {
        std::printf("homogeneous %-10s infeasible (model does not fit or exceeds max count)\n",
                    h.gpu.c_str());
      }
      homogeneous.push_back(h);
    }
  }

  if (!opts.json_out.empty()) {
    std::ofstream json(opts.json_out);
    json.precision(6);
    json << "{\"certified\":" << (result.certified ? "true" : "false")
         << ",\"cost_per_hour\":" << result.plan.cost_per_hour
         << ",\"attainment\":" << result.replay.SloAttainment()
         << ",\"cost_per_1k_tokens\":" << result.replay.CostPer1kTokens()
         << ",\"rounds\":" << result.rounds.size() << ",\"pool\":[";
    for (size_t i = 0; i < result.plan.subpools.size(); ++i) {
      const SubpoolPlan& sub = result.plan.subpools[i];
      json << (i == 0 ? "" : ",") << "{\"gpu\":\"" << options[sub.option].spec.name
           << "\",\"count\":" << sub.gpus << "}";
    }
    json << "]";
    if (!homogeneous.empty()) {
      json << ",\"homogeneous\":[";
      for (size_t i = 0; i < homogeneous.size(); ++i) {
        json << (i == 0 ? "" : ",") << "{\"gpu\":\"" << homogeneous[i].gpu
             << "\",\"count\":" << homogeneous[i].gpus << ",\"cost_per_hour\":"
             << homogeneous[i].cost << ",\"attainment\":" << homogeneous[i].attainment << "}";
      }
      json << "]";
    }
    json << "}";
    std::printf("plan JSON written to %s\n", opts.json_out.c_str());
  }
  return result.certified ? 0 : 1;
}
