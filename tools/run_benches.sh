#!/usr/bin/env bash
# Builds Release, runs the simulator-core perf bench plus one end-to-end
# bench, and fails if single-thread events/sec regressed more than 20%
# against the checked-in baseline (tools/bench_baseline.json).
#
# The comparison is machine-speed-normalized: each bench_sim_perf run also
# measures an inline replica of the legacy queue on the same machine in the
# same process, so the gate compares current/legacy throughput RATIOS. An
# absolute events/sec comparison would flag every run on a slower or noisier
# box than the one that produced the baseline.
#
# Usage: tools/run_benches.sh [build-dir]    (default: build-bench)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-bench}"
BASELINE="$REPO_ROOT/tools/bench_baseline.json"
RESULT="$BUILD_DIR/BENCH_sim_perf.json"
FLEET_RESULT="$BUILD_DIR/BENCH_fleet_scale.json"
PLANNER_RESULT="$BUILD_DIR/BENCH_planner.json"
FAILOVER_RESULT="$BUILD_DIR/BENCH_failover.json"
MAX_REGRESSION_PCT=20
# Goodput retention through the crash-storm (dispatcher kill + 2 instance
# failures) must stay above this floor; the run is deterministic, so a dip
# means the failover path itself got slower, not the machine.
FAILOVER_RETENTION_FLOOR=0.90

echo "== Configuring Release build in $BUILD_DIR"
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD_DIR" -j --target bench_sim_perf bench_fig13_stricter_slos \
  bench_overload bench_fleet_scale bench_planner bench_failover > /dev/null

echo "== Running bench_sim_perf"
"$BUILD_DIR/bench/bench_sim_perf" "$RESULT"

echo
echo "== Running bench_fig13_stricter_slos (e2e smoke)"
"$BUILD_DIR/bench/bench_fig13_stricter_slos"

echo
echo "== Running bench_overload (serving-proxy goodput gate)"
# Exits nonzero unless the proxy strictly improves goodput at 2x load for
# Aegaeon and the ServerlessLLM baseline.
"$BUILD_DIR/bench/bench_overload"

echo
echo "== Running bench_fleet_scale (sharded fleet executor)"
# Exits nonzero if results diverge across shard counts.
"$BUILD_DIR/bench/bench_fleet_scale" "$FLEET_RESULT"

echo
echo "== Running bench_planner (capacity-planner cost gate)"
# Exits nonzero unless the certified heterogeneous plan beats the best
# homogeneous pool by >= 10% at the reference rate, bit-identically.
"$BUILD_DIR/bench/bench_planner" "$PLANNER_RESULT"

echo
echo "== Running bench_failover (control-plane crash-storm gate)"
# Exits nonzero on shard-count divergence through the failover, on any
# lost request, or if the storm never actually exercised an election.
"$BUILD_DIR/bench/bench_failover" "$FAILOVER_RESULT"

json_field() {  # json_field <file> <key>  — first "key": <number> match
  sed -n "s/.*\"$2\": *\([0-9.]*\).*/\1/p" "$1" | head -1
}

current=$(json_field "$RESULT" events_per_sec)
current_legacy=$(json_field "$RESULT" legacy_events_per_sec)
baseline=$(json_field "$BASELINE" events_per_sec)
baseline_legacy=$(json_field "$BASELINE" legacy_events_per_sec)
identical=$(sed -n 's/.*"identical_results": *\(true\|false\).*/\1/p' "$RESULT")
cores=$(json_field "$RESULT" hardware_concurrency)
speedup=$(json_field "$RESULT" speedup)

current_ratio=$(awk -v c="$current" -v l="$current_legacy" 'BEGIN { printf "%.3f", c / l }')
baseline_ratio=$(awk -v c="$baseline" -v l="$baseline_legacy" 'BEGIN { printf "%.3f", c / l }')

echo
echo "== Regression gate"
echo "   queue speedup over legacy: current=${current_ratio}x baseline=${baseline_ratio}x" \
     "(max regression ${MAX_REGRESSION_PCT}%)"

if [ "$identical" != "true" ]; then
  echo "FAIL: parallel sweep diverged from serial results" >&2
  exit 1
fi

# current ratio must be >= baseline ratio * (1 - MAX_REGRESSION_PCT/100)
ok=$(awk -v c="$current_ratio" -v b="$baseline_ratio" -v m="$MAX_REGRESSION_PCT" \
  'BEGIN { print (c >= b * (1 - m / 100.0)) ? "yes" : "no" }')
if [ "$ok" != "yes" ]; then
  echo "FAIL: queue speedup over legacy regressed more than ${MAX_REGRESSION_PCT}% vs baseline" >&2
  exit 1
fi

# The >=3x sweep speedup claim only applies on >=4 cores; report otherwise.
if awk -v n="$cores" 'BEGIN { exit !(n >= 4) }'; then
  if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 3.0) }'; then
    echo "FAIL: sweep speedup ${speedup}x < 3x on a ${cores}-core machine" >&2
    exit 1
  fi
  echo "   sweep speedup: ${speedup}x on ${cores} cores (>= 3x required)"
else
  echo "   sweep speedup: ${speedup}x on ${cores} core(s) (3x gate requires >= 4 cores; skipped)"
fi

# --- Fleet-scale gate -------------------------------------------------------
# Determinism is a hard invariant: results must be bit-identical across shard
# counts, repeats, and (for one cell) against a plain AegaeonCluster run on
# every machine. Epoch skipping must keep a >=2x executed-epoch reduction on
# the 256-GPU reference pool — both counts are deterministic, so that gate
# is machine-independent and always on. Throughput uses the same ratio
# normalization as the queue gate (single-shard fleet eps vs an in-process
# 16-GPU reference); the >=1.5x 8-shard speedup at >=512 GPUs only applies
# on >=4 cores (below that the gang runs nearly inline).
fleet_identical=$(sed -n 's/.*"identical_results": *\(true\|false\).*/\1/p' "$FLEET_RESULT")
fleet_single_cell=$(sed -n 's/.*"single_cell_identical": *\(true\|false\).*/\1/p' "$FLEET_RESULT")
fleet_ratio=$(json_field "$FLEET_RESULT" fleet_ratio)
fleet_baseline_ratio=$(json_field "$BASELINE" fleet_ratio)
fleet_speedup=$(json_field "$FLEET_RESULT" best_large_pool_speedup)
fleet_epoch_reduction=$(json_field "$FLEET_RESULT" epoch_reduction)

echo
echo "== Fleet-scale gate"
echo "   fleet/reference throughput ratio: current=${fleet_ratio} baseline=${fleet_baseline_ratio}" \
     "(max regression ${MAX_REGRESSION_PCT}%)"

if [ "$fleet_identical" != "true" ]; then
  echo "FAIL: sharded fleet diverged across shard counts or repeats" >&2
  exit 1
fi

if [ "$fleet_single_cell" != "true" ]; then
  echo "FAIL: 1-cell fleet diverged from plain AegaeonCluster::Run" >&2
  exit 1
fi

if ! awk -v r="$fleet_epoch_reduction" 'BEGIN { exit !(r >= 2.0) }'; then
  echo "FAIL: epoch skipping reduction ${fleet_epoch_reduction}x < 2x on the 256-GPU pool" >&2
  exit 1
fi
echo "   epoch reduction at 256 GPUs: ${fleet_epoch_reduction}x (>= 2x required)"

ok=$(awk -v c="$fleet_ratio" -v b="$fleet_baseline_ratio" -v m="$MAX_REGRESSION_PCT" \
  'BEGIN { print (c >= b * (1 - m / 100.0)) ? "yes" : "no" }')
if [ "$ok" != "yes" ]; then
  echo "FAIL: fleet throughput ratio regressed more than ${MAX_REGRESSION_PCT}% vs baseline" >&2
  exit 1
fi

if awk -v n="$cores" 'BEGIN { exit !(n >= 4) }'; then
  if ! awk -v s="$fleet_speedup" 'BEGIN { exit !(s >= 1.5) }'; then
    echo "FAIL: fleet 8-shard speedup ${fleet_speedup}x < 1.5x at >=512 GPUs on ${cores} cores" >&2
    exit 1
  fi
  echo "   fleet 8-shard speedup at >=512 GPUs: ${fleet_speedup}x on ${cores} cores (>= 1.5x required)"
else
  echo "   fleet 8-shard speedup at >=512 GPUs: ${fleet_speedup}x on ${cores} core(s)" \
       "(1.5x gate requires >= 4 cores; skipped)"
fi

# --- Capacity-planner gate --------------------------------------------------
# The bench already hard-fails below 10% savings or on any nondeterminism;
# the baseline comparison additionally catches a solver/packing change that
# quietly erodes the certified plan's advantage.
planner_identical=$(sed -n 's/.*"identical_results": *\(true\|false\).*/\1/p' "$PLANNER_RESULT")
planner_savings=$(json_field "$PLANNER_RESULT" savings_pct)
planner_baseline_savings=$(json_field "$BASELINE" savings_pct)

echo
echo "== Capacity-planner gate"
echo "   certified-vs-homogeneous savings: current=${planner_savings}%" \
     "baseline=${planner_baseline_savings}% (floor 10%, max regression ${MAX_REGRESSION_PCT}%)"

if [ "$planner_identical" != "true" ]; then
  echo "FAIL: planner results diverged across runs or sweep worker counts" >&2
  exit 1
fi

ok=$(awk -v c="$planner_savings" -v b="$planner_baseline_savings" -v m="$MAX_REGRESSION_PCT" \
  'BEGIN { print (c >= 10.0 && c >= b * (1 - m / 100.0)) ? "yes" : "no" }')
if [ "$ok" != "yes" ]; then
  echo "FAIL: planner savings ${planner_savings}% below the 10% floor or" \
       "regressed more than ${MAX_REGRESSION_PCT}% vs baseline" >&2
  exit 1
fi

# --- Failover gate ----------------------------------------------------------
# The bench already hard-fails on divergence, lost requests, or a storm
# that never triggered an election; the retention floor here catches a
# failover path that keeps its exactly-once guarantee but burns goodput.
failover_identical=$(sed -n 's/.*"identical_results": *\(true\|false\).*/\1/p' "$FAILOVER_RESULT")
failover_complete=$(sed -n 's/.*"all_requests_complete": *\(true\|false\).*/\1/p' "$FAILOVER_RESULT")
failover_retention=$(json_field "$FAILOVER_RESULT" goodput_retention)
failover_baseline_retention=$(json_field "$BASELINE" goodput_retention)

echo
echo "== Failover gate"
echo "   crash-storm goodput retention: current=${failover_retention}" \
     "baseline=${failover_baseline_retention} (floor ${FAILOVER_RETENTION_FLOOR})"

if [ "$failover_identical" != "true" ]; then
  echo "FAIL: crash-storm run diverged across shard counts" >&2
  exit 1
fi

if [ "$failover_complete" != "true" ]; then
  echo "FAIL: crash-storm run lost or truncated requests" >&2
  exit 1
fi

ok=$(awk -v c="$failover_retention" -v f="$FAILOVER_RETENTION_FLOOR" \
  'BEGIN { print (c >= f) ? "yes" : "no" }')
if [ "$ok" != "yes" ]; then
  echo "FAIL: crash-storm goodput retention ${failover_retention} below the" \
       "${FAILOVER_RETENTION_FLOOR} floor" >&2
  exit 1
fi

echo "PASS"
