// aegaeon_sim — command-line driver for the serving simulator.
//
// Runs a chosen serving system against a synthetic or replayed workload and
// prints token-level SLO metrics. Examples:
//
//   aegaeon_sim --system aegaeon --models 40 --rps 0.1 --horizon 300
//   aegaeon_sim --system sllm+ --models 40 --rps 0.1 --gpus 16
//   aegaeon_sim --system aegaeon --trace-in workload.csv --timeline t.json
//   aegaeon_sim --models 24 --rps 0.2 --trace-out workload.csv --dry-run

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/stats.h"
#include "analysis/timeline.h"
#include "baselines/dedicated.h"
#include "baselines/muxserve.h"
#include "baselines/serverless_llm.h"
#include "baselines/unified.h"
#include "core/cluster.h"
#include "core/fleet.h"
#include "ctrl/fault_plan.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "planner/workload_matrix.h"
#include "workload/trace.h"

namespace {

using namespace aegaeon;

struct Options {
  std::string system = "aegaeon";  // aegaeon|sllm|sllm+|mux|dedicated|unified-pf|unified-df
  int models = 20;
  double rps = 0.1;
  double horizon = 300.0;
  int gpus = 16;
  int prefill = 6;
  int decode = 10;
  std::string gpu = "h800";  // h800|h20|a10|a100
  std::string dataset = "sharegpt";
  uint64_t seed = 2025;
  double slo_scale = 1.0;
  std::string trace_in;
  std::string trace_out;
  std::string timeline;
  bool dry_run = false;
  int nodes = 1;
  int residents = 1;
  int cells = 1;
  int shards = 1;
  double dispatch_latency = 0.05;
  bool epoch_skipping = true;
  int route_quantum = 4;
  int ctrl_replicas = 1;
  // Fault specs in flag order (ctrl/fault_plan.h syntax); --kill-dispatcher
  // and --aging-drift are sugar that appends here too.
  std::vector<std::string> fault_specs;
  bool per_model = false;
  std::string json_out;
  std::string matrix_out;
};

void Usage() {
  std::printf(
      "usage: aegaeon_sim [options]\n"
      "  --system S     aegaeon|sllm|sllm+|mux|dedicated|unified-pf|unified-df\n"
      "  --models N     number of models in the market (default 20)\n"
      "  --rps R        per-model Poisson arrival rate (default 0.1)\n"
      "  --horizon T    trace length in seconds (default 300)\n"
      "  --gpus N       GPUs for baseline systems (default 16)\n"
      "  --prefill N    Aegaeon prefill instances (default 6)\n"
      "  --decode N     Aegaeon decoding instances (default 10)\n"
      "  --gpu G        h800|h20|a10|a100 (default h800)\n"
      "  --dataset D    sharegpt|sharegpt-ix2|sharegpt-ox2 (default sharegpt)\n"
      "  --slo-scale X  scale TTFT/TBT targets (default 1.0)\n"
      "  --seed S       workload seed (default 2025)\n"
      "  --trace-in F   replay a CSV trace instead of generating one\n"
      "  --trace-out F  save the generated trace as CSV\n"
      "  --timeline F   write a Chrome trace of instance activity (aegaeon only)\n"
      "  --nodes N      physical nodes the Aegaeon pool spans (default 1)\n"
      "  --residents N  co-resident models per instance (hybrid mode; default 1)\n"
      "  --cells N      Aegaeon serving cells in the fleet (default 1; >1 runs the\n"
      "                 sharded fleet executor with a fleet dispatcher)\n"
      "  --shards N     parallel shards for the fleet executor (default 1; results\n"
      "                 are bit-identical for any value)\n"
      "  --dispatch-latency S  fleet router -> cell hop in seconds (default 0.05)\n"
      "  --route-quantum N     lookahead slots routed per fleet barrier (default 4;\n"
      "                 part of the simulated config — changes router staleness)\n"
      "  --no-epoch-skip       step the fleet barrier one lookahead at a time\n"
      "                 (pre-skip protocol; advances every cell every epoch)\n"
      "  --ctrl-replicas N     dispatcher replicas for the fleet control plane\n"
      "                 (default 1 = replication off; aegaeon only)\n"
      "  --fail SPEC    schedule a fault (repeatable; aegaeon only):\n"
      "                 prefill:IDX@T+DT | decode:IDX@T+DT | dispatcher@T[+DT] |\n"
      "                 link:FACTOR@T+DT | aging:LRATE[,FRATE][@T]; prefix\n"
      "                 cell/C/ targets one fleet cell\n"
      "  --kill-dispatcher T   sugar for --fail dispatcher@T (forces the fleet\n"
      "                 executor even with --cells 1)\n"
      "  --aging-drift RATE    sugar for --fail aging:RATE (latency drift)\n"
      "  --per-model    print a per-model quality report\n"
      "  --json F       write headline metrics as JSON\n"
      "  --dump-workload-matrix F  write the planner's (model x input x output)\n"
      "                 rate matrix of the trace as CSV and continue\n"
      "  --dry-run      generate/save the trace and exit without serving\n");
}

GpuSpec PickGpu(const std::string& name) {
  if (name == "h800") {
    return GpuSpec::H800();
  }
  if (name == "h20") {
    return GpuSpec::H20();
  }
  if (name == "a10") {
    return GpuSpec::A10();
  }
  if (name == "a100") {
    return GpuSpec::A100();
  }
  std::fprintf(stderr, "unknown --gpu '%s'\n", name.c_str());
  std::exit(2);
}

Dataset PickDataset(const std::string& name) {
  if (name == "sharegpt") {
    return Dataset::ShareGpt();
  }
  if (name == "sharegpt-ix2") {
    return Dataset::ShareGptIx2();
  }
  if (name == "sharegpt-ox2") {
    return Dataset::ShareGptOx2();
  }
  std::fprintf(stderr, "unknown --dataset '%s'\n", name.c_str());
  std::exit(2);
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else if (arg == "--system") {
      opts.system = next("--system");
    } else if (arg == "--models") {
      opts.models = std::atoi(next("--models"));
    } else if (arg == "--rps") {
      opts.rps = std::atof(next("--rps"));
    } else if (arg == "--horizon") {
      opts.horizon = std::atof(next("--horizon"));
    } else if (arg == "--gpus") {
      opts.gpus = std::atoi(next("--gpus"));
    } else if (arg == "--prefill") {
      opts.prefill = std::atoi(next("--prefill"));
    } else if (arg == "--decode") {
      opts.decode = std::atoi(next("--decode"));
    } else if (arg == "--gpu") {
      opts.gpu = next("--gpu");
    } else if (arg == "--dataset") {
      opts.dataset = next("--dataset");
    } else if (arg == "--slo-scale") {
      opts.slo_scale = std::atof(next("--slo-scale"));
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--trace-in") {
      opts.trace_in = next("--trace-in");
    } else if (arg == "--trace-out") {
      opts.trace_out = next("--trace-out");
    } else if (arg == "--timeline") {
      opts.timeline = next("--timeline");
    } else if (arg == "--nodes") {
      opts.nodes = std::atoi(next("--nodes"));
    } else if (arg == "--residents") {
      opts.residents = std::atoi(next("--residents"));
    } else if (arg == "--cells") {
      opts.cells = std::atoi(next("--cells"));
    } else if (arg == "--shards") {
      opts.shards = std::atoi(next("--shards"));
    } else if (arg == "--dispatch-latency") {
      opts.dispatch_latency = std::atof(next("--dispatch-latency"));
    } else if (arg == "--route-quantum") {
      opts.route_quantum = std::atoi(next("--route-quantum"));
    } else if (arg == "--no-epoch-skip") {
      opts.epoch_skipping = false;
    } else if (arg == "--ctrl-replicas") {
      opts.ctrl_replicas = std::atoi(next("--ctrl-replicas"));
    } else if (arg == "--fail") {
      opts.fault_specs.push_back(next("--fail"));
    } else if (arg == "--kill-dispatcher") {
      opts.fault_specs.push_back(std::string("dispatcher@") + next("--kill-dispatcher"));
    } else if (arg == "--aging-drift") {
      opts.fault_specs.push_back(std::string("aging:") + next("--aging-drift"));
    } else if (arg == "--per-model") {
      opts.per_model = true;
    } else if (arg == "--json") {
      opts.json_out = next("--json");
    } else if (arg == "--dump-workload-matrix") {
      opts.matrix_out = next("--dump-workload-matrix");
    } else if (arg == "--dry-run") {
      opts.dry_run = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts.models <= 0 || opts.rps <= 0.0 || opts.horizon <= 0.0) {
    std::fprintf(stderr, "--models, --rps, and --horizon must be positive\n");
    return false;
  }
  if (opts.cells < 1 || opts.shards < 1) {
    std::fprintf(stderr, "--cells and --shards must be >= 1\n");
    return false;
  }
  if (opts.cells > 1 && opts.dispatch_latency <= 0.0) {
    std::fprintf(stderr, "--dispatch-latency must be > 0 when --cells > 1\n");
    return false;
  }
  if (opts.route_quantum < 1) {
    std::fprintf(stderr, "--route-quantum must be >= 1\n");
    return false;
  }
  if (opts.ctrl_replicas < 1) {
    std::fprintf(stderr, "--ctrl-replicas must be >= 1\n");
    return false;
  }
  if ((!opts.fault_specs.empty() || opts.ctrl_replicas > 1) && opts.system != "aegaeon") {
    std::fprintf(stderr, "--fail/--kill-dispatcher/--aging-drift/--ctrl-replicas require "
                         "--system aegaeon\n");
    return false;
  }
  return true;
}

void PrintMetrics(const std::string& system, const RunMetrics& metrics) {
  std::printf("system:              %s\n", system.c_str());
  std::printf("requests:            %lu (%lu completed)\n",
              static_cast<unsigned long>(metrics.total_requests),
              static_cast<unsigned long>(metrics.completed_requests));
  std::printf("SLO attainment:      %.2f%%\n", metrics.SloAttainment() * 100.0);
  std::printf("TTFT mean/p50/p99:   %.3f / %.3f / %.3f s\n", Mean(metrics.ttft_samples),
              Percentile(metrics.ttft_samples, 50), Percentile(metrics.ttft_samples, 99));
  std::printf("throughput:          %.3f req/s over %.1f s\n", metrics.Throughput(),
              metrics.horizon);
  if (!metrics.switch_latency_samples.empty()) {
    std::printf("model switches:      %zu (mean %.0f ms, p99 %.0f ms)\n",
                metrics.switch_latency_samples.size(),
                Mean(metrics.switch_latency_samples) * 1000.0,
                Percentile(metrics.switch_latency_samples, 99) * 1000.0);
  }
  const LatencyBreakdown& b = metrics.breakdown;
  double total = b.Total();
  if (total > 0.0) {
    std::printf("latency breakdown:   pre-wait %.1f%% | pre-exec %.1f%% | dec-wait %.1f%% | "
                "dec-exec %.1f%% | ctl %.2f%% | data %.2f%%\n",
                100.0 * b.prefill_wait / total, 100.0 * b.prefill_exec / total,
                100.0 * b.decode_wait / total, 100.0 * b.decode_exec / total,
                100.0 * b.control_overhead / total, 100.0 * b.data_overhead / total);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    Usage();
    return 2;
  }

  GpuSpec gpu = PickGpu(opts.gpu);
  ModelRegistry registry =
      ModelRegistry::MidSizeMarket(opts.models, SloSpec::Chatbot().Scaled(opts.slo_scale));

  std::vector<ArrivalEvent> trace;
  if (!opts.trace_in.empty()) {
    std::string trace_error;
    if (!ReadTraceFile(opts.trace_in, trace, &trace_error)) {
      std::fprintf(stderr, "failed to read trace '%s': %s\n", opts.trace_in.c_str(),
                   trace_error.c_str());
      return 1;
    }
    std::printf("replaying %zu requests from %s\n", trace.size(), opts.trace_in.c_str());
  } else {
    trace = GeneratePoisson(registry, opts.rps, opts.horizon, PickDataset(opts.dataset),
                            opts.seed);
    std::printf("generated %zu requests (%d models x %.2f rps x %.0f s)\n", trace.size(),
                opts.models, opts.rps, opts.horizon);
  }
  if (!opts.trace_out.empty()) {
    if (!WriteTraceFile(opts.trace_out, trace)) {
      std::fprintf(stderr, "failed to write trace '%s'\n", opts.trace_out.c_str());
      return 1;
    }
    std::printf("trace saved to %s\n", opts.trace_out.c_str());
  }
  if (!opts.matrix_out.empty()) {
    // The planner's workload profiler, reused verbatim: the CSV a plan is
    // reproducible from (tools/aegaeon_plan consumes the same reduction).
    double horizon = opts.horizon;
    for (const ArrivalEvent& event : trace) {
      horizon = std::max(horizon, event.time);
    }
    WorkloadMatrix matrix = BuildWorkloadMatrix(trace, horizon, registry.size());
    std::ofstream csv(opts.matrix_out);
    if (!csv) {
      std::fprintf(stderr, "failed to write workload matrix '%s'\n", opts.matrix_out.c_str());
      return 1;
    }
    WriteMatrixCsv(csv, matrix);
    std::printf("workload matrix (%.3f req/s over %.0f s) written to %s\n", matrix.total_rate,
                matrix.horizon, opts.matrix_out.c_str());
  }
  if (opts.dry_run) {
    return 0;
  }

  FaultPlan fault_plan;
  std::string fault_error;
  if (!ParseFaultSpecs(opts.fault_specs, &fault_plan, &fault_error)) {
    std::fprintf(stderr, "bad fault spec: %s\n", fault_error.c_str());
    return 2;
  }
  // A dispatcher exists only in the fleet executor: a dispatcher fault (or
  // replication) promotes a single-cell run onto the fleet path.
  const bool fleet_run = opts.system == "aegaeon" &&
                         (opts.cells > 1 || opts.shards > 1 ||
                          fault_plan.HasDispatcherFault() || opts.ctrl_replicas > 1);

  if (fleet_run) {
    // Fleet path: a pool of identical Aegaeon cells behind a fleet
    // dispatcher, advanced by the sharded conservative-sync executor.
    FleetConfig config;
    config.cells = opts.cells;
    config.shards = opts.shards;
    config.dispatch_latency = opts.dispatch_latency;
    config.epoch_skipping = opts.epoch_skipping;
    config.route_quantum = opts.route_quantum;
    config.ctrl.replicas = opts.ctrl_replicas;
    config.cell.prefill_instances = opts.prefill;
    config.cell.decode_instances = opts.decode;
    config.cell.nodes = opts.nodes;
    config.cell.resident_models = opts.residents;
    if (!opts.timeline.empty()) {
      std::fprintf(stderr, "--timeline is not supported with --cells/--shards; ignoring\n");
    }
    ShardedFleet fleet(config, registry, gpu);
    fault_plan.ApplyTo(fleet);
    RunMetrics metrics = fleet.Run(trace);
    PrintMetrics(opts.system, metrics);
    std::printf("fleet:               %d cells x %d GPUs, %d shard(s), %lu sync epochs "
                "(%lu slots skipped)\n",
                fleet.cells(), opts.prefill + opts.decode, fleet.shards(),
                static_cast<unsigned long>(fleet.epochs()),
                static_cast<unsigned long>(fleet.epochs_skipped()));
    FleetAudit audit = fleet.audit();
    if (audit.checks > 0 || audit.sync_overruns > 0) {
      std::printf("fleet audit:         %lu checks, %lu violations, %lu sync overruns\n",
                  static_cast<unsigned long>(audit.checks),
                  static_cast<unsigned long>(audit.violations),
                  static_cast<unsigned long>(audit.sync_overruns));
    }
    if (metrics.ctrl.Any()) {
      std::printf("control plane:       %lu heartbeats, %lu elections, %lu failovers, "
                  "%lu re-dispatched, %.2f s leaderless\n",
                  static_cast<unsigned long>(metrics.ctrl.heartbeats_sent),
                  static_cast<unsigned long>(metrics.ctrl.elections),
                  static_cast<unsigned long>(metrics.ctrl.failovers),
                  static_cast<unsigned long>(metrics.ctrl.redispatched_requests),
                  metrics.ctrl.leader_downtime);
    }
    if (opts.per_model) {
      std::deque<Request> pooled;
      for (int c = 0; c < fleet.cells(); ++c) {
        const auto& cell_requests = fleet.cell(c).requests();
        pooled.insert(pooled.end(), cell_requests.begin(), cell_requests.end());
      }
      std::printf("\n");
      PrintPerModelReport(std::cout, BuildPerModelReport(pooled, registry));
    }
    if (!opts.json_out.empty()) {
      std::ofstream json(opts.json_out);
      WriteMetricsJson(json, metrics);
      std::printf("metrics JSON written to %s\n", opts.json_out.c_str());
    }
  } else if (opts.system == "aegaeon") {
    AegaeonConfig config;
    config.prefill_instances = opts.prefill;
    config.decode_instances = opts.decode;
    config.nodes = opts.nodes;
    config.resident_models = opts.residents;
    AegaeonCluster cluster(config, registry, gpu);
    fault_plan.ApplyTo(cluster);
    TimelineRecorder recorder;
    if (!opts.timeline.empty()) {
      cluster.AttachTimeline(&recorder);
    }
    RunMetrics metrics = cluster.Run(trace);
    PrintMetrics(opts.system, metrics);
    if (cluster.node_count() > 1) {
      std::printf("nodes:               %d (%lu cross-node KV migrations)\n",
                  cluster.node_count(), static_cast<unsigned long>(cluster.kv_migrations()));
    }
    if (opts.per_model) {
      std::printf("\n");
      PrintPerModelReport(std::cout, BuildPerModelReport(cluster.requests(), registry));
    }
    if (!opts.json_out.empty()) {
      std::ofstream json(opts.json_out);
      WriteMetricsJson(json, metrics);
      std::printf("metrics JSON written to %s\n", opts.json_out.c_str());
    }
    if (!opts.timeline.empty()) {
      if (recorder.WriteChromeTraceFile(opts.timeline)) {
        std::printf("timeline (%zu spans) written to %s\n", recorder.size(),
                    opts.timeline.c_str());
      } else {
        std::fprintf(stderr, "failed to write timeline '%s'\n", opts.timeline.c_str());
      }
    }
  } else if (opts.system == "sllm" || opts.system == "sllm+") {
    ServerlessLlmConfig config;
    config.gpus = opts.gpus;
    config.sjf = opts.system == "sllm+";
    ServerlessLlmCluster cluster(config, registry, gpu);
    PrintMetrics(opts.system, cluster.Run(trace));
  } else if (opts.system == "mux") {
    MuxServeConfig config;
    config.gpus = opts.gpus;
    MuxServeCluster cluster(config, registry, gpu);
    std::printf("placement: %d of %d models placed (max %d per GPU)\n", cluster.placed_models(),
                opts.models, cluster.max_models_per_gpu());
    PrintMetrics(opts.system, cluster.Run(trace));
  } else if (opts.system == "dedicated") {
    DedicatedCluster cluster(DedicatedConfig{}, registry, gpu);
    PrintMetrics(opts.system, cluster.Run(trace));
  } else if (opts.system == "unified-pf" || opts.system == "unified-df") {
    UnifiedConfig config;
    config.instances = opts.gpus;
    config.policy = opts.system == "unified-pf" ? UnifiedPolicy::kPrefillFirst
                                                : UnifiedPolicy::kDecodeFirst;
    UnifiedCluster cluster(config, registry, gpu);
    PrintMetrics(opts.system, cluster.Run(trace));
  } else {
    std::fprintf(stderr, "unknown --system '%s'\n", opts.system.c_str());
    Usage();
    return 2;
  }
  return 0;
}
