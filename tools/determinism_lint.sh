#!/usr/bin/env bash
# Determinism lint: greps src/ for constructs that make simulation results
# depend on something other than the inputs (hash iteration order, wall
# clock, global PRNG state). The simulator's contract is bit-identical
# output for identical (config, trace, seed) on every platform, so these
# are bugs, not style nits.
#
# Checks:
#   1. std::unordered_map / std::unordered_set — iteration order is
#      implementation-defined; anything iterating one of these on a
#      scheduling, eviction, or accounting path diverges across platforms.
#      Use std::map / sorted vectors / dense arrays instead.
#   2. wall-clock reads (std::chrono::system_clock, steady_clock, time(),
#      gettimeofday) — simulated time must come from the event queue.
#   3. bare rand()/srand() — all randomness must flow through sim/random.h
#      (seeded, engine-stable SplitMix/xoshiro).
#   4. thread_local state — the sharded fleet executor moves cells across
#      pool threads between epochs, so per-thread state silently decouples
#      from the simulated entity it belongs to. Scope state to the cell
#      (see simsan::ScopedInstance) instead.
#
# A file:line may be allowlisted below with a justification; everything
# else fails the build. Run from anywhere; exits non-zero on findings.

set -u
cd "$(dirname "$0")/.."

SRC_DIRS=(src)
status=0

# --- allowlist -------------------------------------------------------------
# Format: "<file>:<substring-of-line>"  — keep each entry justified.
ALLOWLIST=(
  # thread_pool measures *host* idle time to park workers; this never feeds
  # simulated time or scheduling decisions.
  "src/sim/thread_pool.cc:std::chrono::steady_clock"
  # simulator.cc times the *host* cost of a run for SimPerf reports
  # (events/s); simulated time comes exclusively from the event queue.
  "src/sim/simulator.cc:std::chrono::steady_clock"
  # sharded_sim.cc times the *host* cost of each shard's epoch advance for
  # the per-shard SimPerfCounters; epoch horizons come from the serial
  # barrier stage, never from this clock.
  "src/sim/sharded_sim.cc:std::chrono::steady_clock"
  # simsan.cc keeps per-thread shadow-checker instances; ScopedInstance
  # redirects them so shadow state follows the simulated cell, not the
  # host thread. Never feeds simulated time or scheduling.
  "src/sanitizer/simsan.cc:thread_local SimSan"
)

allowlisted() {
  local file="$1" line="$2"
  for entry in "${ALLOWLIST[@]}"; do
    local afile="${entry%%:*}" apat="${entry#*:}"
    if [[ "$file" == "$afile" && "$line" == *"$apat"* ]]; then
      return 0
    fi
  done
  return 1
}

report() {
  local why="$1" file="$2" lineno="$3" line="$4"
  echo "determinism-lint: $file:$lineno: $why"
  echo "    $line"
  status=1
}

scan() {
  local pattern="$1" why="$2"
  while IFS= read -r match; do
    [[ -z "$match" ]] && continue
    local file="${match%%:*}"
    local rest="${match#*:}"
    local lineno="${rest%%:*}"
    local line="${rest#*:}"
    # Ignore matches that live entirely inside a // comment.
    local code="${line%%//*}"
    if ! grep -qE "$pattern" <<< "$code"; then
      continue
    fi
    if allowlisted "$file" "$line"; then
      continue
    fi
    report "$why" "$file" "$lineno" "$line"
  done < <(grep -rnE "$pattern" "${SRC_DIRS[@]}" --include='*.h' --include='*.cc' || true)
}

scan 'std::unordered_(map|set|multimap|multiset)' \
  "unordered container (hash iteration order is not deterministic)"
scan 'std::chrono::(system_clock|steady_clock|high_resolution_clock)' \
  "wall-clock read (simulated time must come from the event queue)"
scan '(^|[^a-zA-Z0-9_:.])(time|gettimeofday)\s*\(' \
  "wall-clock read (simulated time must come from the event queue)"
scan '(^|[^a-zA-Z0-9_:.])s?rand\s*\(' \
  "bare rand()/srand() (use the seeded engines in sim/random.h)"
scan '(^|[^a-zA-Z0-9_])thread_local([^a-zA-Z0-9_]|$)' \
  "thread_local state (sharded execution moves work across threads; scope state to the simulated entity instead)"

if [[ $status -eq 0 ]]; then
  echo "determinism-lint: OK (no nondeterministic constructs in ${SRC_DIRS[*]})"
fi
exit $status
