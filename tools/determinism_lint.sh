#!/usr/bin/env bash
# Thin wrapper over aegaeon_lint (tools/aegaeon_lint.cpp), kept for CI and
# muscle-memory compatibility with the old grep-based determinism lint. All
# rules, the suppression policy (inline LINT-ALLOW markers with mandatory
# justifications — replacing the shell allowlist that used to live here),
# and the output formats live in the binary: see `aegaeon_lint --help` and
# DESIGN.md §11.
#
# Usage: tools/determinism_lint.sh [aegaeon_lint args...]
#   (no args: lints src/, exits nonzero on findings)
#
# Set AEGAEON_LINT_BIN to reuse an existing binary; otherwise the script
# builds the `aegaeon_lint` target in ./build (configuring if needed).

set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${AEGAEON_LINT_BIN:-}"
if [[ -z "${BIN}" ]]; then
  BIN=build/tools/aegaeon_lint
  if [[ ! -x "${BIN}" ]]; then
    cmake -B build -S . >/dev/null
  fi
  cmake --build build --target aegaeon_lint -j "$(nproc)" >/dev/null
fi

exec "${BIN}" "$@"
