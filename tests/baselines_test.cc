// Tests for the baseline systems: the shared continuous-batching model
// server, ServerlessLLM(+), MuxServe, and dedicated serving.

#include <gtest/gtest.h>

#include "baselines/dedicated.h"
#include "baselines/model_server.h"
#include "baselines/muxserve.h"
#include "baselines/serverless_llm.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

class ModelServerTest : public ::testing::Test {
 protected:
  ModelServerTest()
      : registry_(ModelRegistry::MidSizeMarket(1)), latency_(GpuSpec::H800()) {}

  Request* MakeRequest(int64_t prompt, int64_t output, TimePoint arrival = 0.0) {
    auto r = std::make_unique<Request>();
    r->id = requests_.size();
    r->model = 0;
    r->prompt_tokens = prompt;
    r->output_tokens = output;
    r->arrival = arrival;
    requests_.push_back(std::move(r));
    return requests_.back().get();
  }

  ModelRegistry registry_;
  LatencyModel latency_;
  std::vector<std::unique_ptr<Request>> requests_;
};

TEST_F(ModelServerTest, RunsRequestToCompletion) {
  ModelServer server(&registry_.Get(0), &latency_, 8);
  Request* r = MakeRequest(100, 10);
  server.Enqueue(r);
  TimePoint t = 0.0;
  while (server.HasWork()) {
    t += server.RunSlice(t, 0.25);
  }
  EXPECT_TRUE(r->finished());
  EXPECT_EQ(r->generated, 10);
  EXPECT_GT(r->first_token_time, 0.0);
  EXPECT_GT(r->completion, r->first_token_time);
  EXPECT_EQ(r->tokens_met, 10);  // lone request easily meets chatbot SLOs
}

TEST_F(ModelServerTest, ContinuousBatchingAdmitsMidFlight) {
  ModelServer server(&registry_.Get(0), &latency_, 8);
  Request* a = MakeRequest(100, 200);
  server.Enqueue(a);
  TimePoint t = server.RunSlice(0.0, 0.25);
  Request* b = MakeRequest(100, 10, /*arrival=*/t);
  server.Enqueue(b);
  while (server.HasWork()) {
    t += server.RunSlice(t, 0.25);
  }
  // b joined the running batch and finished long before a.
  EXPECT_LT(b->completion, a->completion);
}

TEST_F(ModelServerTest, BatchCapDefersAdmission) {
  ModelServer server(&registry_.Get(0), &latency_, 2);
  Request* a = MakeRequest(50, 400);
  Request* b = MakeRequest(50, 400);
  Request* c = MakeRequest(50, 5);
  server.Enqueue(a);
  server.Enqueue(b);
  server.Enqueue(c);
  TimePoint t = 0.0;
  while (server.HasWork()) {
    t += server.RunSlice(t, 0.25);
  }
  // c could not jump the batch cap: it finished after a/b despite being
  // much shorter.
  EXPECT_GT(c->completion, a->completion);
}

TEST_F(ModelServerTest, SliceRespectsQuantumApproximately) {
  ModelServer server(&registry_.Get(0), &latency_, 8);
  server.Enqueue(MakeRequest(100, 1000));
  Duration used = server.RunSlice(0.0, 0.1);
  EXPECT_GT(used, 0.05);
  EXPECT_LT(used, 0.2);  // atomic ops may overshoot slightly
  EXPECT_TRUE(server.HasWork());
}

// --- End-to-end baselines ----------------------------------------------------

TEST(ServerlessLlmTest, LowLoadMeetsSlos) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = GeneratePoisson(registry, 0.05, 200.0, Dataset::ShareGpt(), 1);
  ServerlessLlmConfig config;
  config.gpus = 8;
  ServerlessLlmCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  EXPECT_GT(metrics.SloAttainment(), 0.9);
}

TEST(ServerlessLlmTest, HolBlockingDegradesManyModels) {
  // The §3.1 story: more models than GPUs at request-level scaling causes
  // head-of-line blocking and SLO collapse.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(24);
  auto trace = GeneratePoisson(registry, 0.1, 200.0, Dataset::ShareGpt(), 2);
  ServerlessLlmConfig config;
  config.gpus = 8;
  ServerlessLlmCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_LT(metrics.SloAttainment(), 0.7);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);  // eventually served
}

TEST(ServerlessLlmTest, SjfVariantRuns) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(16);
  auto trace = GeneratePoisson(registry, 0.1, 150.0, Dataset::ShareGpt(), 3);
  ServerlessLlmConfig fcfs;
  fcfs.gpus = 4;
  ServerlessLlmConfig sjf = fcfs;
  sjf.sjf = true;
  RunMetrics m_fcfs = ServerlessLlmCluster(fcfs, registry, GpuSpec::H800()).Run(trace);
  RunMetrics m_sjf = ServerlessLlmCluster(sjf, registry, GpuSpec::H800()).Run(trace);
  EXPECT_EQ(m_sjf.completed_requests, m_sjf.total_requests);
  // Oracle SJF should not be dramatically worse than FCFS at moderate load.
  EXPECT_GT(m_sjf.SloAttainment(), m_fcfs.SloAttainment() * 0.5);
}

TEST(MuxServeTest, PlacementStopsAtTwoPerGpuForMidMarket) {
  // §7.2: MuxServe's optimizer refuses more than two 6-14B models per
  // 80 GB GPU, capping 16 GPUs at 32 models.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(48);
  MuxServeConfig config;
  config.gpus = 16;
  MuxServeCluster cluster(config, registry, GpuSpec::H800());
  EXPECT_EQ(cluster.max_models_per_gpu(), 2);
  EXPECT_EQ(cluster.placed_models(), 32);
  EXPECT_EQ(cluster.refused_models(), 16);
}

TEST(MuxServeTest, RefusedModelsMissAllTokens) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  MuxServeConfig config;
  config.gpus = 1;  // room for only 2 models
  MuxServeCluster cluster(config, registry, GpuSpec::H800());
  ASSERT_LT(cluster.placed_models(), 6);
  auto trace = GeneratePoisson(registry, 0.05, 100.0, Dataset::ShareGpt(), 4);
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_LT(metrics.completed_requests, metrics.total_requests);
  EXPECT_LT(metrics.SloAttainment(), 1.0);
}

TEST(MuxServeTest, PlacedModelsShareGpuWithoutSwitchCost) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(2);
  MuxServeConfig config;
  config.gpus = 1;
  MuxServeCluster cluster(config, registry, GpuSpec::H800());
  ASSERT_EQ(cluster.placed_models(), 2);
  auto trace = GeneratePoisson(registry, 0.1, 200.0, Dataset::ShareGpt(), 5);
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_GT(metrics.SloAttainment(), 0.9);
}

TEST(DedicatedTest, OneGpuPerModelServesComfortably) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(5);
  auto trace = GeneratePoisson(registry, 0.2, 200.0, Dataset::ShareGpt(), 6);
  DedicatedCluster cluster(DedicatedConfig{}, registry, GpuSpec::H800());
  EXPECT_EQ(cluster.gpus(), 5);
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_GT(metrics.SloAttainment(), 0.95);
  // The resource-waste story (§2.2): dedicated GPUs sit mostly idle.
  double total_busy = 0.0;
  for (double b : cluster.busy_time()) {
    total_busy += b;
  }
  EXPECT_LT(total_busy / (5.0 * metrics.horizon), 0.5);
}

}  // namespace
}  // namespace aegaeon
