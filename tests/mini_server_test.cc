// Integration test at the real-execution level: MiniAegaeon serves several
// tiny models with token-level preemptive switching on one shared KV arena.
// Every served request must match its dedicated, uninterrupted reference —
// i.e. the paper's whole token-level approach is output-preserving.

#include <gtest/gtest.h>

#include <tuple>

#include "infer/mini_server.h"

namespace aegaeon {
namespace {

TinyLlmConfig SmallConfig() {
  TinyLlmConfig config;
  config.vocab = 96;
  config.hidden = 32;
  config.layers = 2;
  config.heads = 4;
  config.kv_heads = 2;
  config.ffn = 64;
  return config;
}

TEST(MiniAegaeonTest, MultiModelServingIsOutputPreserving) {
  MiniAegaeon server(/*model_count=*/3, SmallConfig(), /*arena_bytes=*/1 << 22, /*seed=*/5);
  struct Job {
    int model;
    std::vector<int> prompt;
    int max_new;
  };
  const std::vector<Job> jobs = {
      {0, {1, 2, 3}, 30},   {1, {4, 5}, 25},        {2, {6, 7, 8, 9}, 40},
      {0, {10, 11}, 15},    {1, {12, 13, 14}, 35},  {2, {15}, 20},
  };
  std::vector<int> ids;
  for (const Job& job : jobs) {
    ids.push_back(server.Submit(job.model, job.prompt, job.max_new));
  }
  ASSERT_TRUE(server.RunToCompletion(/*quota_tokens=*/6));
  // Many model switches and real KV swaps must have happened.
  EXPECT_GT(server.model_switches(), 6u);
  EXPECT_GT(server.kv_swaps(), 6u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const auto& request = server.request(ids[i]);
    ASSERT_TRUE(request.done());
    std::vector<int> reference =
        server.DedicatedReference(jobs[i].model, jobs[i].prompt, jobs[i].max_new);
    EXPECT_EQ(request.output, reference) << "request " << i << " diverged under preemption";
  }
}

// Quota granularity must never change outputs, only the interleaving.
class MiniQuotaTest : public ::testing::TestWithParam<int> {};

TEST_P(MiniQuotaTest, OutputsInvariantToQuota) {
  const int quota = GetParam();
  MiniAegaeon server(2, SmallConfig(), 1 << 22, /*seed=*/9);
  int a = server.Submit(0, {3, 1, 4}, 24);
  int b = server.Submit(1, {1, 5, 9, 2}, 24);
  ASSERT_TRUE(server.RunToCompletion(quota));
  EXPECT_EQ(server.request(a).output, server.DedicatedReference(0, {3, 1, 4}, 24));
  EXPECT_EQ(server.request(b).output, server.DedicatedReference(1, {1, 5, 9, 2}, 24));
}

INSTANTIATE_TEST_SUITE_P(Quotas, MiniQuotaTest, ::testing::Values(1, 2, 5, 13, 100));

TEST(MiniAegaeonTest, DistinctModelsProduceDistinctOutputs) {
  MiniAegaeon server(2, SmallConfig(), 1 << 22, /*seed=*/21);
  int a = server.Submit(0, {7, 7}, 20);
  int b = server.Submit(1, {7, 7}, 20);
  ASSERT_TRUE(server.RunToCompletion(4));
  EXPECT_NE(server.request(a).output, server.request(b).output);
}

TEST(MiniAegaeonTest, SingleModelNeedsNoSwaps) {
  MiniAegaeon server(1, SmallConfig(), 1 << 22, /*seed=*/2);
  server.Submit(0, {1, 2}, 16);
  server.Submit(0, {3, 4}, 16);
  ASSERT_TRUE(server.RunToCompletion(4));
  EXPECT_EQ(server.model_switches(), 1u);  // the initial activation only
  EXPECT_EQ(server.kv_swaps(), 0u);        // same model: KV stays resident
}

TEST(MiniAegaeonTest, TightArenaStillCorrectViaSwapping) {
  // An arena sized so the two models' requests cannot be co-resident: the
  // server must swap aggressively and still preserve outputs.
  TinyLlmConfig config = SmallConfig();
  size_t block = config.KvGeometry(8).BlockBytes();
  MiniAegaeon server(2, config, block * 4 * 12, /*seed=*/31);
  int a = server.Submit(0, {2, 4, 6}, 40);
  int b = server.Submit(1, {8, 10, 12}, 40);
  ASSERT_TRUE(server.RunToCompletion(5));
  EXPECT_EQ(server.request(a).output, server.DedicatedReference(0, {2, 4, 6}, 40));
  EXPECT_EQ(server.request(b).output, server.DedicatedReference(1, {8, 10, 12}, 40));
  EXPECT_GT(server.kv_swaps(), 10u);
}

TEST(MiniAegaeonTest, ImpossibleArenaReportsNoProgress) {
  TinyLlmConfig config = SmallConfig();
  size_t block = config.KvGeometry(8).BlockBytes();
  // Too small for even one request's resident KV (needs layers blocks).
  MiniAegaeon server(1, config, block, /*seed=*/3);
  server.Submit(0, {1, 2, 3, 4, 5, 6, 7, 8, 9}, 32);
  EXPECT_FALSE(server.RunToCompletion(4));
}

}  // namespace
}  // namespace aegaeon
