// Tests for engine initialization costs (Figure 7) and the preemptive
// auto-scaler's optimization tiers T0-T3 (Figures 8 and 10).

#include <gtest/gtest.h>

#include <memory>

#include "engine/autoscaler.h"
#include "engine/components.h"
#include "hw/gpu_device.h"
#include "hw/gpu_spec.h"
#include "mem/model_cache.h"
#include "model/latency_model.h"
#include "model/registry.h"

namespace aegaeon {
namespace {

constexpr double kWeightBuffer = 40.0 * kGiB;
constexpr double kPinPool = 30e9;

TEST(EngineCostModelTest, Figure7TotalsFor13B) {
  // Figure 7: an unoptimized 13B (TP=2) initialization takes ~26.9 s.
  EngineCostModel costs;
  ModelSpec spec = ModelSpec::Llama13B();
  LatencyModel latency(GpuSpec::H800());
  double total = costs.DistExecutorInit(2) + costs.ProfileInit(spec) + costs.KvPinInit(kPinPool) +
                 costs.MiscInit() + costs.GcPass() +
                 latency.NaiveLoad(spec, 2, costs.naive_load_bytes_per_s);
  EXPECT_NEAR(total, 26.9, 0.3);
}

TEST(EngineCostModelTest, ComponentCostsMatchPaperQualitatively) {
  EngineCostModel costs;
  // Distributed executor: "tens of seconds" territory at higher TP.
  EXPECT_GT(costs.DistExecutorInit(2), 10.0);
  // Profiling and KV pinning: "several seconds".
  EXPECT_GT(costs.ProfileInit(ModelSpec::Llama13B()), 2.0);
  EXPECT_LT(costs.ProfileInit(ModelSpec::Llama13B()), 5.0);
  EXPECT_NEAR(costs.KvPinInit(30e9), 4.0, 0.1);
}

class AutoScalerTest : public ::testing::Test {
 protected:
  AutoScalerTest()
      : registry_(ModelRegistry::MidSizeMarket(6)),
        latency_(GpuSpec::H800()),
        cache_(1536.0 * kGiB, 1.2e9) {
    for (const DeployedModel& model : registry_.models()) {
      cache_.Warm(model.id, model.spec.weight_bytes());
    }
  }

  std::unique_ptr<AutoScaler> Make(GpuDevice& gpu, OptLevel level, bool boot = true) {
    auto scaler = std::make_unique<AutoScaler>(gpu, latency_, cache_, EngineCostModel{}, level,
                                               kWeightBuffer, kPinPool);
    if (boot && level >= OptLevel::kComponentReuse) {
      scaler->BootBeforeServing();
    }
    return scaler;
  }

  // One switch latency at the given level on a fresh GPU, after a first
  // scale-up established a resident model.
  Duration SwitchLatency(OptLevel level, double kv_out = 0.0, double kv_in = 0.0) {
    GpuDevice gpu(0, GpuSpec::H800());
    auto scaler = Make(gpu, level);
    ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
    ScaleResult second =
        scaler->ScaleTo(registry_.Get(2), first.ready_at + 10.0, kv_out, kv_in);
    return second.ready_at - (first.ready_at + 10.0);
  }

  ModelRegistry registry_;
  LatencyModel latency_;
  ModelCache cache_;
};

TEST_F(AutoScalerTest, OptimizationTiersStrictlyImprove) {
  // T0 > T1 > T2 >= T3 with KV volumes in play (Figures 8 and 10).
  double kv = 4e9;
  Duration t0 = SwitchLatency(OptLevel::kBaseline, kv, kv);
  Duration t1 = SwitchLatency(OptLevel::kComponentReuse, kv, kv);
  Duration t2 = SwitchLatency(OptLevel::kExplicitMemory, kv, kv);
  Duration t3 = SwitchLatency(OptLevel::kFineGrainedSync, kv, kv);
  EXPECT_GT(t0, t1);
  EXPECT_GT(t1, t2);
  EXPECT_GT(t2, t3);
  // §5: the full stack removes ~97% of the unoptimized latency.
  EXPECT_GT((t0 - t3) / t0, 0.90);
  // §7.3: sub-second scaling.
  EXPECT_LT(t3, 1.0);
}

TEST_F(AutoScalerTest, BaselinePaysFullInitEverySwitch) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kBaseline);
  ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
  ScaleResult second = scaler->ScaleTo(registry_.Get(1), first.ready_at);
  EXPECT_GT(second.breakdown.dist_exec, 0.0);
  EXPECT_GT(second.breakdown.profile, 0.0);
  EXPECT_GT(second.breakdown.kv_init, 0.0);
  EXPECT_GT(second.breakdown.gc, 0.0);
}

TEST_F(AutoScalerTest, ComponentReuseSkipsEngineInit) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kComponentReuse);
  ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
  EXPECT_DOUBLE_EQ(first.breakdown.dist_exec, 0.0);  // booted before serving
  ScaleResult second = scaler->ScaleTo(registry_.Get(1), first.ready_at);
  EXPECT_DOUBLE_EQ(second.breakdown.dist_exec, 0.0);
  EXPECT_DOUBLE_EQ(second.breakdown.profile, 0.0);
  EXPECT_DOUBLE_EQ(second.breakdown.kv_init, 0.0);
  // But the GC pass and the naive load remain at T1.
  EXPECT_GT(second.breakdown.gc, 0.0);
  EXPECT_GT(second.breakdown.model_load, 2.0);
}

TEST_F(AutoScalerTest, ExplicitMemoryRemovesGcAndSpeedsLoad) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kExplicitMemory);
  scaler->set_prefetch_enabled(false);
  ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
  ScaleResult second = scaler->ScaleTo(registry_.Get(1), first.ready_at);
  EXPECT_DOUBLE_EQ(second.breakdown.gc, 0.0);
  EXPECT_LT(second.breakdown.model_load, 1.0);  // "under one second"
}

TEST_F(AutoScalerTest, FineGrainedSyncTakesKvOffCriticalPath) {
  double kv = 8e9;
  GpuDevice gpu(0, GpuSpec::H800());
  auto t2 = Make(gpu, OptLevel::kExplicitMemory);
  t2->set_prefetch_enabled(false);
  ScaleResult a = t2->ScaleTo(registry_.Get(0), 0.0);
  ScaleResult b = t2->ScaleTo(registry_.Get(1), a.ready_at + 1.0, kv, kv);
  EXPECT_TRUE(b.breakdown.kv_blocking);

  GpuDevice gpu2(1, GpuSpec::H800());
  auto t3 = Make(gpu2, OptLevel::kFineGrainedSync);
  t3->set_prefetch_enabled(false);
  ScaleResult c = t3->ScaleTo(registry_.Get(0), 0.0);
  ScaleResult d = t3->ScaleTo(registry_.Get(1), c.ready_at + 1.0, kv, kv);
  EXPECT_FALSE(d.breakdown.kv_blocking);
  // Same KV volume, but the switch completes earlier at T3.
  EXPECT_LT(d.ready_at - (c.ready_at + 1.0), b.ready_at - (a.ready_at + 1.0));
}

TEST_F(AutoScalerTest, PrefetchHitMakesSwitchNearInstant) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kFineGrainedSync);
  ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
  TimePoint done = scaler->Prefetch(registry_.Get(1), first.ready_at);
  ASSERT_NE(done, kTimeNever);
  // Switch after the prefetch completed: only the on-device promote copy.
  ScaleResult second = scaler->ScaleTo(registry_.Get(1), done + 1.0);
  EXPECT_TRUE(second.breakdown.prefetch_hit);
  EXPECT_LT(second.breakdown.model_load, 0.05);
  EXPECT_EQ(scaler->prefetch_hits(), 1u);
}

TEST_F(AutoScalerTest, PrefetchRespectsBufferHeadroom) {
  // Two large models cannot be co-resident in the 40 GiB weight buffer.
  ModelRegistry big;
  big.Add(ModelSpec::Llama13B(), 1, SloSpec::Chatbot());   // 26 GB
  big.Add(ModelSpec::Qwen14B(), 1, SloSpec::Chatbot());    // 28 GB
  cache_.Warm(big.Get(0).id, big.Get(0).spec.weight_bytes());
  cache_.Warm(big.Get(1).id, big.Get(1).spec.weight_bytes());
  GpuDevice gpu(0, GpuSpec::H800());
  AutoScaler scaler(gpu, latency_, cache_, EngineCostModel{}, OptLevel::kFineGrainedSync,
                    kWeightBuffer, kPinPool);
  scaler.BootBeforeServing();
  scaler.ScaleTo(big.Get(0), 0.0);
  EXPECT_EQ(scaler.Prefetch(big.Get(1), 10.0), kTimeNever);
}

TEST_F(AutoScalerTest, InFlightPrefetchIsNotReplaced) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kFineGrainedSync);
  ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
  TimePoint a = scaler->Prefetch(registry_.Get(1), first.ready_at);
  ASSERT_NE(a, kTimeNever);
  // Immediately requesting a different prefetch is refused (link thrash).
  EXPECT_EQ(scaler->Prefetch(registry_.Get(2), first.ready_at), kTimeNever);
  EXPECT_EQ(scaler->prefetched_model(), registry_.Get(1).id);
  // After it lands, a new prefetch is allowed.
  EXPECT_NE(scaler->Prefetch(registry_.Get(2), a + 0.001), kTimeNever);
}

TEST_F(AutoScalerTest, EstimateSwitchTracksLevel) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto fast = Make(gpu, OptLevel::kFineGrainedSync);
  GpuDevice gpu2(1, GpuSpec::H800());
  auto slow = Make(gpu2, OptLevel::kBaseline);
  const DeployedModel& target = registry_.Get(2);
  EXPECT_LT(fast->EstimateSwitch(target), 1.0);
  EXPECT_GT(slow->EstimateSwitch(target), 15.0);
  // Estimating a switch to the resident model is free.
  fast->ScaleTo(target, 0.0);
  EXPECT_DOUBLE_EQ(fast->EstimateSwitch(target), 0.0);
}

TEST_F(AutoScalerTest, ResidentSetMakesRepeatSwitchesNearFree) {
  // §8 hybrid multiplexing: with a resident set of 2, alternating between
  // two models loads each once and then switches by activation only.
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kFineGrainedSync);
  scaler->set_prefetch_enabled(false);
  scaler->set_resident_capacity(2);
  TimePoint t = scaler->ScaleTo(registry_.Get(0), 0.0).ready_at + 1.0;
  t = scaler->ScaleTo(registry_.Get(1), t).ready_at + 1.0;  // cold load
  for (int i = 0; i < 4; ++i) {
    ScaleResult result = scaler->ScaleTo(registry_.Get(i % 2), t);
    EXPECT_LT(result.ready_at - t, 0.01) << "switch " << i;
    t = result.ready_at + 1.0;
  }
  EXPECT_EQ(scaler->resident_hits(), 4u);
  EXPECT_TRUE(scaler->IsResident(registry_.Get(0).id));
  EXPECT_TRUE(scaler->IsResident(registry_.Get(1).id));
  EXPECT_LT(scaler->EstimateSwitch(registry_.Get(0)), 0.01);
}

TEST_F(AutoScalerTest, ResidentSetEvictsLru) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kFineGrainedSync);
  scaler->set_prefetch_enabled(false);
  scaler->set_resident_capacity(2);
  TimePoint t = scaler->ScaleTo(registry_.Get(0), 0.0).ready_at + 1.0;
  t = scaler->ScaleTo(registry_.Get(1), t).ready_at + 1.0;
  // Loading a third model evicts the LRU resident (model 0).
  t = scaler->ScaleTo(registry_.Get(2), t).ready_at + 1.0;
  EXPECT_FALSE(scaler->IsResident(registry_.Get(0).id));
  EXPECT_TRUE(scaler->IsResident(registry_.Get(1).id));
  EXPECT_TRUE(scaler->IsResident(registry_.Get(2).id));
  // Switching back to model 0 is a cold load again.
  ScaleResult back = scaler->ScaleTo(registry_.Get(0), t);
  EXPECT_GT(back.ready_at - t, 0.1);
}

TEST_F(AutoScalerTest, ResidentCapacityOneKeepsPaperBehavior) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kFineGrainedSync);
  scaler->set_prefetch_enabled(false);
  TimePoint t = scaler->ScaleTo(registry_.Get(0), 0.0).ready_at + 1.0;
  t = scaler->ScaleTo(registry_.Get(1), t).ready_at + 1.0;
  ScaleResult back = scaler->ScaleTo(registry_.Get(0), t);
  EXPECT_GT(back.ready_at - t, 0.1);  // full reload, no resident hit
  EXPECT_EQ(scaler->resident_hits(), 0u);
}

TEST_F(AutoScalerTest, SwitchLatenciesAreRecorded) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto scaler = Make(gpu, OptLevel::kFineGrainedSync);
  ScaleResult first = scaler->ScaleTo(registry_.Get(0), 0.0);
  scaler->ScaleTo(registry_.Get(1), first.ready_at + 5.0);
  EXPECT_EQ(scaler->switches(), 2u);
  EXPECT_EQ(scaler->switch_latencies().size(), 2u);
}

}  // namespace
}  // namespace aegaeon
