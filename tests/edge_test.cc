// Edge cases and small-surface behaviors not covered by the per-module
// suites: empty inputs, no-op paths, boundary configurations.

#include <gtest/gtest.h>

#include "baselines/model_server.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "kv/transfer_engine.h"
#include "kv/unified_cache.h"
#include "model/registry.h"
#include "sim/simulator.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

TEST(EdgeTest, EmptyTraceRunsToEmptyMetrics) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run({});
  EXPECT_EQ(metrics.total_requests, 0u);
  EXPECT_DOUBLE_EQ(metrics.SloAttainment(), 1.0);
}

TEST(EdgeTest, SingleTokenRequestsFinishAtPrefill) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(2);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  std::vector<ArrivalEvent> trace = {
      ArrivalEvent{0.5, 0, 100, 1},
      ArrivalEvent{1.0, 1, 50, 1},
  };
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, 2u);
  for (const Request& r : cluster.requests()) {
    EXPECT_EQ(r.generated, 1);
    EXPECT_DOUBLE_EQ(r.completion, r.first_token_time);
  }
}

TEST(EdgeTest, MinimalClusterOnePrefillOneDecode) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(3);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  auto trace = GeneratePoisson(registry, 0.05, 100.0, Dataset::ShareGpt(), 3);
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
}

TEST(EdgeTest, DeferFreeOfNothingIsNoOp) {
  UnifiedKvCache cache("c", 64 << 20, 16 << 20, 16);
  cache.DeferFree({}, EventSim());
  EXPECT_EQ(cache.move_list_size(), 0u);
  EXPECT_EQ(cache.Reclaim(100.0), 0u);
}

TEST(EdgeTest, ReleaseOfUnmaterializedHandleIsNoOp) {
  UnifiedKvCache gpu("g", 64 << 20, 16 << 20, 16);
  UnifiedKvCache cpu("c", 64 << 20, 16 << 20, 16);
  TransferEngine xfer;
  KvHandle handle;  // location == kNone
  xfer.Release(handle, gpu, cpu);
  EXPECT_EQ(handle.location, KvLocation::kNone);
  EXPECT_EQ(gpu.move_list_size(), 0u);
}

TEST(EdgeTest, ModelServerEstimatedWorkTracksQueueAndBatch) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(1);
  LatencyModel latency(GpuSpec::H800());
  ModelServer server(&registry.Get(0), &latency, 4);
  EXPECT_DOUBLE_EQ(server.EstimatedWork(), 0.0);
  Request r;
  r.model = 0;
  r.prompt_tokens = 200;
  r.output_tokens = 50;
  server.Enqueue(&r);
  double queued = server.EstimatedWork();
  EXPECT_GT(queued, 0.0);
  // After partially serving, the remaining estimate shrinks.
  server.RunSlice(0.0, 0.3);
  EXPECT_LT(server.EstimatedWork(), queued);
}

TEST(EdgeTest, SimulatorCancelPreventsCallback) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.After(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.pending());
}

TEST(EdgeTest, ZeroDecodeBudgetStillServesViaMinimumBatch) {
  // gpu_kv_bytes smaller than one expected request: MaxBatchForModel floors
  // at 1 and the admission budget still lets single requests through.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(2);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  config.gpu_kv_bytes = 1.0 * kGiB;
  std::vector<ArrivalEvent> trace = {ArrivalEvent{0.1, 0, 128, 32},
                                     ArrivalEvent{5.0, 1, 128, 32}};
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, 2u);
}

TEST(EdgeTest, GpuSpecEffectivePcieMatchesBeta) {
  GpuSpec spec = GpuSpec::H800();
  EXPECT_NEAR(spec.effective_pcie(), spec.pcie_bytes_per_s * 0.625, 1.0);
}

}  // namespace
}  // namespace aegaeon
