// Tests for the token-level schedulers: Algorithm 1 (grouped FCFS prefill)
// and Algorithm 2 (weighted round-robin decoding with quota Eq. 2-3).

#include <gtest/gtest.h>

#include <vector>

#include "core/decode_scheduler.h"
#include "core/prefill_scheduler.h"
#include "core/request.h"

namespace aegaeon {
namespace {

// --- Algorithm 1 -----------------------------------------------------------

class PrefillSchedulerTest : public ::testing::Test {
 protected:
  PrefillSchedulerTest() { Reset(3, 8); }

  void Reset(int instances, int max_group) {
    current_.assign(instances, kInvalidModel);
    PrefillScheduler::Estimators est;
    est.exec_estimate = [](const Request& r) {
      return 0.001 * static_cast<double>(r.prompt_tokens);
    };
    est.switch_estimate = [](ModelId from, ModelId to) { return from == to ? 0.0 : 1.0; };
    est.current_model = [this](int i) { return current_[i]; };
    sched_ = std::make_unique<PrefillScheduler>(instances, max_group, est);
  }

  Request* MakeRequest(ModelId model, int64_t prompt = 100) {
    auto r = std::make_unique<Request>();
    r->id = requests_.size();
    r->model = model;
    r->prompt_tokens = prompt;
    requests_.push_back(std::move(r));
    return requests_.back().get();
  }

  std::vector<ModelId> current_;
  std::unique_ptr<PrefillScheduler> sched_;
  std::vector<std::unique_ptr<Request>> requests_;
};

TEST_F(PrefillSchedulerTest, SameModelRequestsJoinExistingGroup) {
  int a = sched_->OnArrival(MakeRequest(1));
  int b = sched_->OnArrival(MakeRequest(1));
  EXPECT_EQ(a, b);  // joined the same group, hence the same instance
  EXPECT_EQ(sched_->QueuedRequests(a), 2u);
}

TEST_F(PrefillSchedulerTest, GroupSizeIsCapped) {
  // MAX_GPSIZE accumulated jobs per group; the 9th spills to a new group.
  Reset(1, 8);
  for (int i = 0; i < 9; ++i) {
    sched_->OnArrival(MakeRequest(1));
  }
  // Draining preserves arrival order regardless of the group split.
  for (int i = 0; i < 9; ++i) {
    Request* r = sched_->NextJob(0);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->id, static_cast<RequestId>(i));
  }
}

TEST_F(PrefillSchedulerTest, AccumulatedSizeDoesNotShrinkOnExecution) {
  // §4.2: executing a request does not decrease g.size, keeping FCFS-ness.
  Reset(1, 2);
  sched_->OnArrival(MakeRequest(1));
  sched_->OnArrival(MakeRequest(1));
  sched_->NextJob(0);  // executes one; accumulated stays 2
  sched_->OnArrival(MakeRequest(1));
  // The third request must have opened a NEW group behind, not joined.
  // Drain: ids 1 then 2 (from separate groups), FCFS preserved.
  EXPECT_EQ(sched_->NextJob(0)->id, 1u);
  EXPECT_EQ(sched_->NextJob(0)->id, 2u);
}

TEST_F(PrefillSchedulerTest, NewGroupsGoToLeastLoadedInstance) {
  Reset(2, 8);
  // Load instance 0 with an expensive group.
  sched_->OnArrival(MakeRequest(1, /*prompt=*/100000));
  // A different model should land on the empty instance 1.
  int i = sched_->OnArrival(MakeRequest(2, 10));
  EXPECT_EQ(i, 1);
}

TEST_F(PrefillSchedulerTest, LoadEstimateCountsSwitches) {
  Reset(1, 8);
  EXPECT_DOUBLE_EQ(sched_->LoadEstimate(0), 0.0);
  sched_->OnArrival(MakeRequest(1, 100));  // switch (1.0) + exec (0.1)
  EXPECT_DOUBLE_EQ(sched_->LoadEstimate(0), 1.1);
  sched_->OnArrival(MakeRequest(1, 100));  // same group: exec only
  EXPECT_DOUBLE_EQ(sched_->LoadEstimate(0), 1.2);
  sched_->OnArrival(MakeRequest(2, 100));  // new model: another switch
  EXPECT_DOUBLE_EQ(sched_->LoadEstimate(0), 2.3);
}

TEST_F(PrefillSchedulerTest, NoSwitchCostWhenModelResident) {
  Reset(1, 8);
  current_[0] = 1;
  sched_->OnArrival(MakeRequest(1, 100));
  EXPECT_DOUBLE_EQ(sched_->LoadEstimate(0), 0.1);
}

TEST_F(PrefillSchedulerTest, UpcomingModelReportsNextDistinctGroup) {
  Reset(1, 8);
  EXPECT_EQ(sched_->UpcomingModel(0), kInvalidModel);
  sched_->OnArrival(MakeRequest(1));
  EXPECT_EQ(sched_->UpcomingModel(0), kInvalidModel);  // only the front model
  sched_->OnArrival(MakeRequest(2));
  EXPECT_EQ(sched_->UpcomingModel(0), 2u);
}

TEST_F(PrefillSchedulerTest, NextJobRetiresEmptyGroups) {
  Reset(1, 8);
  sched_->OnArrival(MakeRequest(1));
  sched_->OnArrival(MakeRequest(2));
  EXPECT_EQ(sched_->NextJob(0)->model, 1u);
  EXPECT_EQ(sched_->NextJob(0)->model, 2u);
  EXPECT_EQ(sched_->NextJob(0), nullptr);
  EXPECT_FALSE(sched_->HasWork(0));
}

TEST_F(PrefillSchedulerTest, UnavailableInstancesReceiveNoWork) {
  Reset(2, 8);
  sched_->SetAvailable(0, false);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sched_->OnArrival(MakeRequest(static_cast<ModelId>(i))), 1);
  }
  sched_->SetAvailable(0, true);
  // Instance 1 now carries all the load; new models go back to 0.
  EXPECT_EQ(sched_->OnArrival(MakeRequest(99)), 0);
}

TEST_F(PrefillSchedulerTest, DrainQueueReturnsPendingInOrder) {
  Reset(1, 8);
  sched_->OnArrival(MakeRequest(1));
  sched_->OnArrival(MakeRequest(2));
  sched_->OnArrival(MakeRequest(1));
  sched_->NextJob(0);  // request 0 started; 2 pending remain
  std::vector<Request*> drained = sched_->DrainQueue(0);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_FALSE(sched_->HasWork(0));
  EXPECT_EQ(sched_->NextJob(0), nullptr);
}

// --- Algorithm 2: quotas ----------------------------------------------------

TEST(ComputeQuotasTest, PaperWorkedExample) {
  // §4.3: three batches, d = 0.1, t_i = 0.025, c = 3, QMAX = 3
  // => n_i = 4, alpha = 1, q_i = 3.
  std::vector<BatchQuotaInput> batches(3, BatchQuotaInput{0.025, 0.1});
  QuotaResult result = ComputeQuotas(batches, /*c=*/3.0, /*qmax=*/3.0);
  EXPECT_NEAR(result.alpha, 1.0, 1e-9);
  EXPECT_NEAR(result.estimated_attainment, 1.0, 1e-9);
  for (double q : result.quotas) {
    EXPECT_NEAR(q, 3.0, 1e-9);
  }
}

TEST(ComputeQuotasTest, QuotasNeverExceedQmax) {
  for (double c : {0.5, 2.0, 10.0, 100.0}) {
    std::vector<BatchQuotaInput> batches = {
        {0.010, 0.1}, {0.025, 0.1}, {0.040, 0.1}, {0.015, 0.05}};
    QuotaResult result = ComputeQuotas(batches, c, /*qmax=*/4.0);
    for (double q : result.quotas) {
      EXPECT_LE(q, 4.0 + 1e-9) << "c=" << c;
      EXPECT_GT(q, 0.0);
    }
  }
}

TEST(ComputeQuotasTest, AlphaFloorGivesFlexibleQuotas) {
  // Comfortable SLOs (large n, tiny c): alpha floors at 0.5, and quotas
  // shrink well below QMAX ("smaller, more flexible q_i").
  std::vector<BatchQuotaInput> batches(2, BatchQuotaInput{0.001, 0.1});  // n = 100
  QuotaResult result = ComputeQuotas(batches, /*c=*/0.1, /*qmax=*/4.0);
  EXPECT_NEAR(result.alpha, 0.5, 1e-9);
  for (double q : result.quotas) {
    EXPECT_LT(q, 0.1);
  }
}

TEST(ComputeQuotasTest, SingleBatchDecodesFreely) {
  std::vector<BatchQuotaInput> one = {{0.02, 0.1}};
  QuotaResult result = ComputeQuotas(one, 5.0, 4.0);
  EXPECT_DOUBLE_EQ(result.quotas[0], 4.0);
  EXPECT_DOUBLE_EQ(result.estimated_attainment, 1.0);
}

TEST(ComputeQuotasTest, ZeroSwitchCostDecodesFreely) {
  std::vector<BatchQuotaInput> batches(3, BatchQuotaInput{0.02, 0.1});
  QuotaResult result = ComputeQuotas(batches, 0.0, 4.0);
  for (double q : result.quotas) {
    EXPECT_DOUBLE_EQ(q, 4.0);
  }
}

TEST(ComputeQuotasTest, SlowerBatchesGetLargerQuotas) {
  // q_i is inversely proportional to n_i = d/t_i: batches with longer step
  // times (smaller n) earn more contiguous time.
  std::vector<BatchQuotaInput> batches = {{0.010, 0.1}, {0.050, 0.1}};
  QuotaResult result = ComputeQuotas(batches, 2.0, 4.0);
  EXPECT_GT(result.quotas[1], result.quotas[0]);
  EXPECT_NEAR(result.quotas[1] / result.quotas[0], 5.0, 1e-6);
}

TEST(ComputeQuotasTest, StepTimeBeyondDeadlineClampsN) {
  // A batch whose step time exceeds its TBT target has no slack (n = 1);
  // the quota formula must stay finite and positive.
  std::vector<BatchQuotaInput> batches = {{0.2, 0.1}, {0.02, 0.1}};
  QuotaResult result = ComputeQuotas(batches, 1.0, 4.0);
  EXPECT_GT(result.quotas[0], 0.0);
  EXPECT_LT(result.estimated_attainment, 1.0);
}

// Property sweep: the round's estimated attainment math is self-consistent
// for a grid of configurations.
struct QuotaSweepParam {
  int batches;
  double step_time;
  double tbt;
  double c;
};

class QuotaSweepTest : public ::testing::TestWithParam<QuotaSweepParam> {};

TEST_P(QuotaSweepTest, RoundProducesTokensAtDeadlineRate) {
  const QuotaSweepParam& p = GetParam();
  std::vector<BatchQuotaInput> batches(p.batches, BatchQuotaInput{p.step_time, p.tbt});
  QuotaResult result = ComputeQuotas(batches, p.c, /*qmax=*/4.0);
  if (p.batches < 2 || p.c <= 0.0) {
    GTEST_SKIP();
  }
  // Round time = sum of quotas + c; tokens per batch = q_i / t. The
  // schedule sustains one token per (alpha * tbt): attainment 1/alpha.
  double round_time = p.c;
  for (double q : result.quotas) {
    round_time += q;
  }
  double tokens_per_batch = result.quotas[0] / p.step_time;
  double sustained_interval = round_time / tokens_per_batch;
  EXPECT_NEAR(sustained_interval, result.alpha * p.tbt, result.alpha * p.tbt * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuotaSweepTest,
    ::testing::Values(QuotaSweepParam{2, 0.02, 0.1, 1.0}, QuotaSweepParam{4, 0.015, 0.1, 2.0},
                      QuotaSweepParam{7, 0.012, 0.1, 3.5}, QuotaSweepParam{3, 0.03, 0.05, 0.5},
                      QuotaSweepParam{5, 0.02, 0.2, 8.0}, QuotaSweepParam{10, 0.01, 0.1, 5.0}));

// --- Work-list helpers -------------------------------------------------------

TEST(GroupBatchesByModelTest, AdjacentByFirstAppearance) {
  std::vector<DecodeBatch> list(5);
  list[0].model = 3;
  list[1].model = 1;
  list[2].model = 3;
  list[3].model = 2;
  list[4].model = 1;
  GroupBatchesByModel(list);
  std::vector<ModelId> order;
  for (const DecodeBatch& b : list) {
    order.push_back(b.model);
  }
  EXPECT_EQ(order, (std::vector<ModelId>{3, 3, 1, 1, 2}));
}

TEST(PickDecodeInstanceTest, PrefersInstanceWithModel) {
  EXPECT_EQ(PickDecodeInstance({5, 1, 3}, {true, false, true}), 2);
  EXPECT_EQ(PickDecodeInstance({5, 1, 3}, {false, false, false}), 1);
  EXPECT_EQ(PickDecodeInstance({2, 2}, {false, true}), 1);
}

}  // namespace
}  // namespace aegaeon
