// Failure-injection tests: the proxy layer's fault tolerance (§3.3).
// Instances crash mid-run and recover; every request must still complete,
// tokens are never double-counted, and host-resident KV survives while
// device-resident KV is recomputed.

#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

AegaeonConfig Config(int prefill = 2, int decode = 3) {
  AegaeonConfig config;
  config.prefill_instances = prefill;
  config.decode_instances = decode;
  return config;
}

std::vector<ArrivalEvent> Trace(const ModelRegistry& registry, double rps = 0.1,
                                double horizon = 150.0, uint64_t seed = 33) {
  return GeneratePoisson(registry, rps, horizon, Dataset::ShareGpt(), seed);
}

void CheckIntegrity(const AegaeonCluster& cluster) {
  for (const Request& r : cluster.requests()) {
    EXPECT_TRUE(r.finished()) << "request " << r.id << " never completed";
    EXPECT_EQ(r.generated, r.output_tokens);
    EXPECT_LE(r.tokens_met, r.output_tokens);
    EXPECT_GE(r.completion, r.arrival);
  }
}

TEST(FaultToleranceTest, PrefillFailureRecovers) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(Config(), registry, GpuSpec::H800());
  cluster.ScheduleFailure(/*prefill_partition=*/true, /*index=*/0, /*when=*/40.0,
                          /*downtime=*/20.0);
  RunMetrics metrics = cluster.Run(Trace(registry));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  CheckIntegrity(cluster);
}

TEST(FaultToleranceTest, DecodeFailureRecomputesAndCompletes) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(Config(), registry, GpuSpec::H800());
  cluster.ScheduleFailure(/*prefill_partition=*/false, /*index=*/1, /*when=*/60.0,
                          /*downtime=*/15.0);
  RunMetrics metrics = cluster.Run(Trace(registry));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  CheckIntegrity(cluster);
}

TEST(FaultToleranceTest, SimultaneousFailuresAcrossPartitions) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  AegaeonCluster cluster(Config(2, 3), registry, GpuSpec::H800());
  cluster.ScheduleFailure(true, 1, 50.0, 30.0);
  cluster.ScheduleFailure(false, 0, 50.0, 30.0);
  cluster.ScheduleFailure(false, 2, 80.0, 10.0);
  RunMetrics metrics = cluster.Run(Trace(registry));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  CheckIntegrity(cluster);
}

TEST(FaultToleranceTest, FailureDegradesButDoesNotDestroyAttainment) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = Trace(registry, 0.08, 200.0);

  AegaeonCluster healthy(Config(), registry, GpuSpec::H800());
  double base = healthy.Run(trace).SloAttainment();

  AegaeonCluster faulty(Config(), registry, GpuSpec::H800());
  faulty.ScheduleFailure(false, 0, 60.0, 20.0);
  double with_fault = faulty.Run(trace).SloAttainment();

  EXPECT_LE(with_fault, base + 1e-9);
  // A single 20 s outage of one of five instances must not collapse SLOs.
  EXPECT_GT(with_fault, base - 0.35);
  EXPECT_GT(with_fault, 0.5);
}

TEST(FaultToleranceTest, RepeatedFailuresOfSameUnit) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  AegaeonCluster cluster(Config(2, 2), registry, GpuSpec::H800());
  cluster.ScheduleFailure(false, 0, 30.0, 10.0);
  cluster.ScheduleFailure(false, 0, 70.0, 10.0);
  cluster.ScheduleFailure(false, 0, 110.0, 10.0);
  RunMetrics metrics = cluster.Run(Trace(registry));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  CheckIntegrity(cluster);
}

TEST(FaultToleranceTest, DeterministicWithFailures) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = Trace(registry);
  auto run = [&] {
    AegaeonCluster cluster(Config(), registry, GpuSpec::H800());
    cluster.ScheduleFailure(false, 1, 45.0, 25.0);
    return cluster.Run(trace);
  };
  RunMetrics a = run();
  RunMetrics b = run();
  EXPECT_EQ(a.tokens_met, b.tokens_met);
  EXPECT_DOUBLE_EQ(a.horizon, b.horizon);
}

}  // namespace
}  // namespace aegaeon
