// Fleet failover tests: dispatcher replication wired into the sharded
// fleet (core/fleet.h + ctrl/). The replication-disabled configuration is
// golden (bit-identical to the pre-replication fleet), elections and
// failovers stay bit-identical across shard counts, every request
// completes through a leader crash, and the fault kill switches validate
// their targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "core/fleet.h"
#include "ctrl/dispatcher.h"
#include "ctrl/fault_plan.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

AegaeonConfig SmallCell() {
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;
  return config;
}

FleetConfig SmallFleet(int cells, int shards) {
  FleetConfig config;
  config.cells = cells;
  config.shards = shards;
  config.threads = 2;
  config.cell = SmallCell();
  return config;
}

// A trace with a burst straddling the crash instant, so some arrivals are
// guaranteed to be in flight (routed, undelivered) when the leader dies.
std::vector<ArrivalEvent> CrashStraddlingTrace(const ModelRegistry& registry,
                                               TimePoint crash) {
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, 0.8, 90.0, Dataset::ShareGpt(), 23);
  for (int i = 0; i < 6; ++i) {
    ArrivalEvent event;
    // Arrivals within one dispatch hop of the crash: their deliveries are
    // exactly the ones the crash can lose.
    event.time = crash - 0.04 + 0.01 * static_cast<double>(i % 3);
    event.model = i % static_cast<int>(registry.size());
    event.prompt_tokens = 64;
    event.output_tokens = 32;
    trace.push_back(event);
  }
  std::sort(trace.begin(), trace.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) { return a.time < b.time; });
  return trace;
}

void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.tokens_total, b.tokens_total);
  EXPECT_EQ(a.tokens_met, b.tokens_met);
  EXPECT_EQ(a.horizon, b.horizon);  // exact: same double or bust
  EXPECT_EQ(a.breakdown.prefill_wait, b.breakdown.prefill_wait);
  EXPECT_EQ(a.breakdown.decode_exec, b.breakdown.decode_exec);
  ASSERT_EQ(a.ttft_samples.size(), b.ttft_samples.size());
  for (size_t i = 0; i < a.ttft_samples.size(); ++i) {
    EXPECT_EQ(a.ttft_samples[i], b.ttft_samples[i]) << "ttft sample " << i;
  }
  EXPECT_EQ(a.sim.events_processed, b.sim.events_processed);
}

// The protocol outcome is part of the simulated result: identical runs
// elect identically. (Kept separate from ExpectBitIdentical — heartbeat
// counts legitimately differ between replication factors.)
void ExpectCtrlIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.ctrl.heartbeats_sent, b.ctrl.heartbeats_sent);
  EXPECT_EQ(a.ctrl.heartbeats_missed, b.ctrl.heartbeats_missed);
  EXPECT_EQ(a.ctrl.elections, b.ctrl.elections);
  EXPECT_EQ(a.ctrl.failovers, b.ctrl.failovers);
  EXPECT_EQ(a.ctrl.redispatched_requests, b.ctrl.redispatched_requests);
  EXPECT_EQ(a.ctrl.frontdoor_replays, b.ctrl.frontdoor_replays);
  EXPECT_EQ(a.ctrl.leader_downtime, b.ctrl.leader_downtime);
}

void ExpectAllComplete(const ShardedFleet& fleet, const RunMetrics& metrics,
                       size_t trace_size) {
  EXPECT_EQ(metrics.total_requests, trace_size);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  uint64_t pooled = 0;
  for (int c = 0; c < fleet.cells(); ++c) {
    for (const Request& request : fleet.cell(c).requests()) {
      EXPECT_TRUE(request.finished()) << "request " << request.id << " in cell " << c;
      EXPECT_EQ(request.generated, request.output_tokens);
      ++pooled;
    }
  }
  EXPECT_EQ(pooled, trace_size);
}

// Golden: a replicated-but-unfaulted control plane must not perturb the
// simulation — replicas {1, 3} produce bit-identical results (heartbeat
// traffic exists but never reaches a cell or bounds an epoch).
TEST(FailoverTest, ReplicationWithoutFaultsIsBitIdenticalToDisabled) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  auto trace = GeneratePoisson(registry, 0.8, 90.0, Dataset::ShareGpt(), 29);
  std::vector<RunMetrics> results;
  std::vector<uint64_t> epochs;
  for (int replicas : {1, 3}) {
    FleetConfig config = SmallFleet(4, 2);
    config.ctrl.replicas = replicas;
    ShardedFleet fleet(config, registry, GpuSpec::H800());
    results.push_back(fleet.Run(trace));
    epochs.push_back(fleet.epochs());
  }
  ExpectBitIdentical(results[0], results[1]);
  EXPECT_EQ(epochs[0], epochs[1]);  // heartbeats never add barriers
  EXPECT_FALSE(results[0].ctrl.Any());
  EXPECT_GT(results[1].ctrl.heartbeats_sent, 0u);
  EXPECT_EQ(results[1].ctrl.elections, 0u);
}

// The tentpole determinism contract, now through a mid-epoch leader crash:
// shard count stays pure parallelism for the whole crash -> election ->
// replay -> recovery sequence.
TEST(FailoverTest, LeaderCrashMidEpochBitIdenticalAcrossShardCounts) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  const TimePoint crash = 40.0;
  auto trace = CrashStraddlingTrace(registry, crash);
  std::vector<RunMetrics> results;
  for (int shards : {1, 2, 4, 8}) {
    FleetConfig config = SmallFleet(8, shards);
    config.ctrl.replicas = 3;
    ShardedFleet fleet(config, registry, GpuSpec::H800());
    fleet.ScheduleDispatcherCrash(crash, /*downtime=*/10.0);
    results.push_back(fleet.Run(trace));
    EXPECT_EQ(fleet.shards(), shards);
    ExpectAllComplete(fleet, results.back(), trace.size());
    EXPECT_EQ(fleet.audit().sync_overruns, 0u);
    EXPECT_EQ(fleet.audit().violations, 0u);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectBitIdentical(results[0], results[i]);
    ExpectCtrlIdentical(results[0], results[i]);
  }
  // The crash actually bit: an election ran and in-flight arrivals were
  // re-dispatched by the successor.
  EXPECT_EQ(results[0].ctrl.failovers, 1u);
  EXPECT_GE(results[0].ctrl.elections, 1u);
  EXPECT_GT(results[0].ctrl.redispatched_requests, 0u);
  EXPECT_GT(results[0].ctrl.leader_downtime, 0.0);
}

// Crash-storm: the leader dies while two cells lose instances, and the
// replay detour shows up as client-visible TTFT, never as request loss.
TEST(FailoverTest, CrashStormCompletesEveryRequest) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  const TimePoint crash = 40.0;
  auto trace = CrashStraddlingTrace(registry, crash);
  FleetConfig config = SmallFleet(4, 4);
  config.ctrl.replicas = 3;
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  fleet.ScheduleDispatcherCrash(crash, /*downtime=*/10.0);
  fleet.ScheduleCellFailure(/*cell=*/0, /*prefill_partition=*/false, /*index=*/0,
                            /*when=*/35.0, /*downtime=*/20.0);
  fleet.ScheduleCellFailure(/*cell=*/2, /*prefill_partition=*/true, /*index=*/0,
                            /*when=*/42.0, /*downtime=*/15.0);
  RunMetrics metrics = fleet.Run(trace);
  ExpectAllComplete(fleet, metrics, trace.size());
  EXPECT_EQ(metrics.ctrl.failovers, 1u);
  EXPECT_GT(metrics.ctrl.redispatched_requests, 0u);
  // Replayed arrivals keep their client timestamps, so the failover delay
  // (election + re-dispatch) appears as TTFT on the affected requests.
  double max_ttft = 0.0;
  for (double ttft : metrics.ttft_samples) {
    max_ttft = std::max(max_ttft, ttft);
  }
  EXPECT_GT(max_ttft, metrics.ctrl.leader_downtime);
}

// FaultPlan::ApplyTo is the scripted form of the kill switches above.
TEST(FailoverTest, FaultPlanDrivesFleetFaults) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = CrashStraddlingTrace(registry, 30.0);
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultSpecs(
      {"dispatcher@30+10", "cell/1/decode:0@25+10", "aging:0.0002", "link:0.5@20+10"},
      &plan, &error))
      << error;
  FleetConfig config = SmallFleet(4, 2);
  config.ctrl.replicas = 3;
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  plan.ApplyTo(fleet);
  RunMetrics metrics = fleet.Run(trace);
  ExpectAllComplete(fleet, metrics, trace.size());
  EXPECT_EQ(metrics.ctrl.failovers, 1u);
}

// Aging drift (software aging, modeled): a drifting cell is strictly
// slower than a fresh one, and a zero rate is bitwise free.
TEST(FailoverTest, AgingDriftDegradesLatencyMonotonically) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = GeneratePoisson(registry, 0.4, 120.0, Dataset::ShareGpt(), 31);
  double exec_by_rate[2] = {0.0, 0.0};
  for (int aged = 0; aged < 2; ++aged) {
    AegaeonConfig config = SmallCell();
    config.aging.latency_rate = aged ? 0.002 : 0.0;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    RunMetrics metrics = cluster.Run(trace);
    EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
    exec_by_rate[aged] = metrics.breakdown.decode_exec + metrics.breakdown.prefill_exec;
  }
  EXPECT_GT(exec_by_rate[1], exec_by_rate[0]);
}

// An injected policy is honored: round-robin spreads a burst exactly
// evenly no matter what the cells' loads look like.
TEST(FailoverTest, InjectedDispatcherPolicyIsHonored) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = GeneratePoisson(registry, 0.8, 60.0, Dataset::ShareGpt(), 37);
  FleetConfig config = SmallFleet(4, 2);
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  fleet.SetDispatcher(std::make_unique<RoundRobinDispatcher>());
  RunMetrics metrics = fleet.Run(trace);
  EXPECT_EQ(metrics.total_requests, trace.size());
  const uint64_t share = trace.size() / 4;
  for (uint64_t routed : fleet.routed()) {
    EXPECT_GE(routed, share);
    EXPECT_LE(routed, share + 1);
  }
}

TEST(FailoverDeathTest, ScheduleFailureValidatesInstanceRange) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  AegaeonCluster cluster(SmallCell(), registry, GpuSpec::H800());
  // SmallCell has 1 prefill + 2 decode instances.
  EXPECT_DEATH(cluster.ScheduleFailure(true, 1, 10.0, 5.0), "invalid plan");
  EXPECT_DEATH(cluster.ScheduleFailure(false, 2, 10.0, 5.0), "invalid plan");
  EXPECT_DEATH(cluster.ScheduleFailure(true, -1, 10.0, 5.0), "invalid plan");
  EXPECT_DEATH(cluster.ScheduleFailure(true, 0, -1.0, 5.0), "invalid plan");
  EXPECT_DEATH(cluster.ScheduleFailure(true, 0, 10.0, 0.0), "invalid plan");
}

TEST(FailoverDeathTest, FleetKillSwitchesValidateTargets) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  ShardedFleet fleet(SmallFleet(2, 1), registry, GpuSpec::H800());
  EXPECT_DEATH(fleet.ScheduleCellFailure(2, true, 0, 10.0, 5.0), "outside the fleet");
  EXPECT_DEATH(fleet.ScheduleCellFailure(-1, true, 0, 10.0, 5.0), "outside the fleet");
  EXPECT_DEATH(fleet.ScheduleCellFailure(0, false, 7, 10.0, 5.0), "invalid plan");
  EXPECT_DEATH(fleet.ScheduleDispatcherCrash(10.0, -1.0), "invalid plan");

  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(ParseFaultSpec("cell/5/decode:0@10+5", 1, &plan, &error)) << error;
  EXPECT_DEATH(plan.ApplyTo(fleet), "outside the fleet");

  AegaeonCluster cluster(SmallCell(), registry, GpuSpec::H800());
  FaultPlan dispatcher_plan;
  ASSERT_TRUE(ParseFaultSpec("dispatcher@10", 1, &dispatcher_plan, &error)) << error;
  EXPECT_DEATH(dispatcher_plan.ApplyTo(cluster), "no dispatcher");
}

}  // namespace
}  // namespace aegaeon
