// Tests for the execution timeline recorder and its Chrome trace export.

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/timeline.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

TEST(TimelineTest, RecordsSpans) {
  TimelineRecorder recorder;
  recorder.Record(0, "prefill", "m0/r1", 1.5, 0.25);
  recorder.Record(3, "decode", "m1 x4", 2.0, 3.0);
  ASSERT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.spans()[0].lane, 0);
  EXPECT_EQ(recorder.spans()[1].category, "decode");
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TimelineTest, ChromeTraceIsWellFormed) {
  TimelineRecorder recorder;
  recorder.Record(0, "switch", "Qwen-7B", 0.5, 0.35);
  recorder.Record(1, "prefill", "weird\"name\\", 1.0, 0.002);
  std::ostringstream os;
  recorder.WriteChromeTrace(os);
  std::string out = os.str();
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(out.find("\"ts\":500000"), std::string::npos);   // 0.5 s in us
  EXPECT_NE(out.find("\"dur\":350000"), std::string::npos);  // 0.35 s in us
  EXPECT_NE(out.find("weird\\\"name\\\\"), std::string::npos);  // escaped
  // Balanced braces/brackets (cheap structural check).
  int depth = 0;
  for (char c : out) {
    depth += (c == '{' || c == '[');
    depth -= (c == '}' || c == ']');
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TimelineTest, ClusterRecordsAllCategories) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = GeneratePoisson(registry, 0.1, 100.0, Dataset::ShareGpt(), 13);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  TimelineRecorder recorder;
  cluster.AttachTimeline(&recorder);
  cluster.Run(trace);

  ASSERT_GT(recorder.size(), 0u);
  bool saw_prefill = false;
  bool saw_decode = false;
  bool saw_switch = false;
  for (const TimelineRecorder::Span& span : recorder.spans()) {
    saw_prefill |= span.category == "prefill";
    saw_decode |= span.category == "decode";
    saw_switch |= span.category == "switch";
    EXPECT_GE(span.start, 0.0);
    EXPECT_GE(span.duration, 0.0);
    EXPECT_GE(span.lane, 0);
    EXPECT_LT(span.lane, 4);
  }
  EXPECT_TRUE(saw_prefill);
  EXPECT_TRUE(saw_decode);
  EXPECT_TRUE(saw_switch);
}

TEST(TimelineTest, LanesSeparatePrefillAndDecode) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto trace = GeneratePoisson(registry, 0.1, 80.0, Dataset::ShareGpt(), 14);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  TimelineRecorder recorder;
  cluster.AttachTimeline(&recorder);
  cluster.Run(trace);
  for (const TimelineRecorder::Span& span : recorder.spans()) {
    if (span.category == "prefill") {
      EXPECT_EQ(span.lane, 0);  // the single prefill instance
    }
    if (span.category == "decode") {
      EXPECT_GE(span.lane, 1);  // decode lanes come after prefill lanes
    }
  }
}

}  // namespace
}  // namespace aegaeon
