// Integration tests for the end-to-end Aegaeon cluster (§3.3, §4, §5).

#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

AegaeonConfig SmallConfig() {
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  return config;
}

std::vector<ArrivalEvent> SmallTrace(const ModelRegistry& registry, double rps = 0.1,
                                     double horizon = 150.0, uint64_t seed = 1) {
  return GeneratePoisson(registry, rps, horizon, Dataset::ShareGpt(), seed);
}

TEST(AegaeonClusterTest, CompletesEveryRequest) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry));
  EXPECT_GT(metrics.total_requests, 50u);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  for (const Request& r : cluster.requests()) {
    EXPECT_TRUE(r.finished());
    EXPECT_EQ(r.generated, r.output_tokens);
    EXPECT_GE(r.first_token_time, r.arrival);
    EXPECT_GE(r.completion, r.first_token_time);
  }
}

TEST(AegaeonClusterTest, TokenAccountingIsConservative) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry));
  EXPECT_LE(metrics.tokens_met, metrics.tokens_total);
  int64_t sum_tokens = 0;
  for (const Request& r : cluster.requests()) {
    EXPECT_LE(r.tokens_met, r.generated);
    sum_tokens += r.output_tokens;
  }
  EXPECT_EQ(sum_tokens, metrics.tokens_total);
}

TEST(AegaeonClusterTest, LowLoadAttainsSlos) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry, 0.05));
  EXPECT_GT(metrics.SloAttainment(), 0.95);
  EXPECT_LT(Mean(metrics.ttft_samples), 2.0);
}

TEST(AegaeonClusterTest, DeterministicAcrossRuns) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = SmallTrace(registry);
  AegaeonCluster a(SmallConfig(), registry, GpuSpec::H800());
  AegaeonCluster b(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics ma = a.Run(trace);
  RunMetrics mb = b.Run(trace);
  EXPECT_EQ(ma.tokens_met, mb.tokens_met);
  EXPECT_DOUBLE_EQ(ma.horizon, mb.horizon);
  EXPECT_EQ(ma.switch_latency_samples.size(), mb.switch_latency_samples.size());
}

TEST(AegaeonClusterTest, SupportsManyModelsPerGpu) {
  // The headline: far more models than GPUs while holding SLOs at the
  // paper's market load (0.1 rps/model).
  ModelRegistry registry = ModelRegistry::MidSizeMarket(24);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 4;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry, 0.1, 200.0));
  // 24 models on 6 GPUs = 4 models/GPU at healthy attainment.
  EXPECT_GT(metrics.SloAttainment(), 0.85);
}

TEST(AegaeonClusterTest, SwitchesAreSubSecondAtFullOptimization) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry));
  ASSERT_FALSE(metrics.switch_latency_samples.empty());
  // §7.3: preemptive scaling completes in under a second (p95 here; queue
  // transients can push outliers slightly over).
  EXPECT_LT(Percentile(metrics.switch_latency_samples, 95), 1.0);
}

TEST(AegaeonClusterTest, OptLevelsImproveEndToEnd) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  auto trace = SmallTrace(registry, 0.08, 150.0);
  double attainment[2];
  int i = 0;
  for (OptLevel level : {OptLevel::kComponentReuse, OptLevel::kFineGrainedSync}) {
    AegaeonConfig config = SmallConfig();
    config.opt_level = level;
    config.prefetch = level >= OptLevel::kExplicitMemory;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    attainment[i++] = cluster.Run(trace).SloAttainment();
  }
  EXPECT_GT(attainment[1], attainment[0]);
}

TEST(AegaeonClusterTest, BreakdownCoversRequestLifetime) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry));
  const LatencyBreakdown& b = metrics.breakdown;
  EXPECT_GT(b.prefill_exec, 0.0);
  EXPECT_GT(b.decode_exec, 0.0);
  EXPECT_GE(b.prefill_wait, 0.0);
  EXPECT_GE(b.decode_wait, 0.0);
  // Total stage time roughly accounts for total request latency.
  double total_latency = 0.0;
  for (const Request& r : cluster.requests()) {
    total_latency += r.completion - r.arrival;
  }
  EXPECT_NEAR(b.Total(), total_latency, total_latency * 0.15);
}

TEST(AegaeonClusterTest, KvCachesDrainAfterRun) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  cluster.Run(SmallTrace(registry));
  // After all requests complete, every CPU KV block is either free or
  // parked in a (reclaimable) move list.
  const UnifiedKvCache& cpu = cluster.cpu_kv_cache();
  uint64_t used = cpu.slabs().total_used_bytes();
  uint64_t reclaimable = 0;
  (void)reclaimable;
  // Move lists may still hold final transfers; everything else must be 0.
  EXPECT_LE(used, static_cast<uint64_t>(cpu.move_list_size()) * 64 * 1024 * 1024);
}

TEST(AegaeonClusterTest, TransfersObeyEventOrdering) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry));
  const TransferEngine::Stats& stats = cluster.transfer_engine().stats();
  // Every decoded request swapped out of prefill and into decode at least
  // once.
  EXPECT_GE(stats.swap_outs, metrics.completed_requests / 2);
  EXPECT_GT(stats.bytes_out, 0.0);
  EXPECT_GE(stats.bytes_in, 0.0);
}

TEST(AegaeonClusterTest, StricterSlosLowerAttainment) {
  auto run = [](double slo_scale) {
    ModelRegistry registry =
        ModelRegistry::MidSizeMarket(16, SloSpec::Chatbot().Scaled(slo_scale));
    AegaeonConfig config;
    config.prefill_instances = 2;
    config.decode_instances = 3;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    auto trace = GeneratePoisson(registry, 0.1, 150.0, Dataset::ShareGpt(), 5);
    return cluster.Run(trace).SloAttainment();
  };
  double normal = run(1.0);
  double strict = run(0.2);
  EXPECT_GE(normal, strict);
}

TEST(AegaeonClusterTest, LargeModelsWithTensorParallelism) {
  // §7.4: 72B models at TP=4, one prefill + one decode instance on 8 GPUs.
  ModelRegistry registry = ModelRegistry::LargeModelMarket(3);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 1;
  config.instance_tp = 4;
  config.weight_buffer_bytes = 76.0 * kGiB;  // 36 GB shards: room for two
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  auto trace = GeneratePoisson(registry, 0.1, 120.0, Dataset::ShareGpt(), 7);
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  EXPECT_GT(metrics.SloAttainment(), 0.7);
}

TEST(AegaeonClusterTest, MixedSloTiersBothServed) {
  // Two SLO tiers in one pool: Algorithm 2's per-batch deadlines must keep
  // both tiers healthy at moderate load (neither starved for the other).
  ModelRegistry registry =
      ModelRegistry::MixedSloMarket(12, SloSpec::Chatbot(), SloSpec{3.0, 0.05});
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 3;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry, 0.08));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  int64_t met[2] = {0, 0};
  int64_t total[2] = {0, 0};
  for (const Request& r : cluster.requests()) {
    met[r.model % 2] += r.tokens_met;
    total[r.model % 2] += r.output_tokens;
  }
  EXPECT_GT(static_cast<double>(met[0]) / total[0], 0.9);  // relaxed tier
  EXPECT_GT(static_cast<double>(met[1]) / total[1], 0.8);  // strict tier
}

TEST(AegaeonClusterTest, DecodeOverflowQueueDrainsEventually) {
  // A deliberately tiny decode KV budget forces admission back-pressure;
  // everything must still complete once capacity cycles.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  AegaeonConfig config = SmallConfig();
  config.gpu_kv_bytes = 2.0 * kGiB;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry, 0.15, 100.0));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
}

TEST(AegaeonClusterTest, ChunkedPrefillCompletesEverything) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  Dataset long_inputs("ix4", 4.5, 1.1, 5.25, 0.9, /*input_scale=*/4.0, 1.0);
  auto trace = GeneratePoisson(registry, 0.1, 120.0, long_inputs, 61);
  AegaeonConfig config = SmallConfig();
  config.prefill_chunk_tokens = 512;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  for (const Request& r : cluster.requests()) {
    EXPECT_TRUE(r.finished());
    // Every prompt fully prefilled regardless of chunk boundaries.
    EXPECT_EQ(r.prefilled_tokens, r.prompt_tokens);
  }
}

TEST(AegaeonClusterTest, ChunkedPrefillBoundsLongPromptHol) {
  // A few giant prompts plus a stream of small ones: chunking caps how long
  // a small request can sit behind a giant prefill.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  std::vector<ArrivalEvent> trace;
  for (int i = 0; i < 6; ++i) {
    trace.push_back(ArrivalEvent{0.1 + i * 20.0, 0, /*prompt=*/8192, /*output=*/8});
  }
  for (int i = 0; i < 60; ++i) {
    trace.push_back(
        ArrivalEvent{0.2 + i * 2.0, static_cast<ModelId>(1 + i % 3), /*prompt=*/64, 8});
  }
  std::sort(trace.begin(), trace.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) { return a.time < b.time; });

  // On an A10 an 8k-token prefill runs for seconds, so chunking visibly
  // bounds the head-of-line wait of the small requests behind it. (On an
  // H800 these prefills are sub-second and chunking is moot — which is why
  // the paper does not need it.)
  auto p99_small_ttft = [&](int64_t chunk) {
    AegaeonConfig config;
    config.prefill_instances = 1;  // force contention on one prefill GPU
    config.decode_instances = 1;
    config.prefill_chunk_tokens = chunk;
    config.weight_buffer_bytes = 15.0 * kGiB;
    config.gpu_kv_bytes = 6.0 * kGiB;
    config.prefetch = false;
    AegaeonCluster cluster(config, registry, GpuSpec::A10());
    cluster.Run(trace);
    std::vector<double> ttfts;
    for (const Request& r : cluster.requests()) {
      if (r.prompt_tokens < 100) {
        ttfts.push_back(r.first_token_time - r.arrival);
      }
    }
    return Percentile(ttfts, 99);
  };
  double unchunked = p99_small_ttft(0);
  double chunked = p99_small_ttft(1024);
  EXPECT_LT(chunked, unchunked);
}

TEST(AegaeonClusterTest, GpuUtilizationIsBounded) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonCluster cluster(SmallConfig(), registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(SmallTrace(registry));
  for (double util : cluster.GpuUtilization(metrics.horizon)) {
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace aegaeon
