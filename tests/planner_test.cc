// Tests for the capacity planner: workload matrix accounting, throughput
// profile JSON cache, queueing predictions (including against the real
// simulator), solver determinism/dominance/infeasibility, and the
// closed-loop certification.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "model/registry.h"
#include "planner/planner.h"
#include "planner/queueing.h"
#include "planner/solver.h"
#include "planner/throughput_profile.h"
#include "planner/workload_matrix.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

std::vector<GpuOption> OneGpu(const GpuSpec& spec) {
  GpuOption option;
  option.spec = spec;
  return {option};
}

// --- Bucket grid ---

TEST(BucketGridTest, MapsRequestsToBands) {
  BucketGrid grid = BucketGrid::Default();
  ASSERT_EQ(grid.buckets(), grid.inputs() * grid.outputs());
  EXPECT_EQ(grid.BucketOf(1, 1), 0);
  EXPECT_EQ(grid.InputBucket(64), 0);
  EXPECT_EQ(grid.InputBucket(65), 1);
  // The last band clamps: anything at or beyond the ceiling lands there.
  EXPECT_EQ(grid.InputBucket(8192), grid.inputs() - 1);
  EXPECT_EQ(grid.InputBucket(1 << 20), grid.inputs() - 1);
  // Representative lengths stay inside their band.
  for (int i = 0; i < grid.inputs(); ++i) {
    int64_t rep = grid.InputRep(i);
    EXPECT_EQ(grid.InputBucket(rep), i) << "rep " << rep << " escapes band " << i;
  }
}

// --- Workload matrix ---

TEST(WorkloadMatrixTest, AccountingIsConsistent) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = GeneratePoisson(registry, 0.5, 120.0, Dataset::ShareGpt(), 11);
  WorkloadMatrix matrix = BuildWorkloadMatrix(trace, 120.0, registry.size());

  EXPECT_EQ(matrix.requests, trace.size());
  EXPECT_NEAR(matrix.total_rate, static_cast<double>(trace.size()) / 120.0, 1e-9);

  double model_sum = std::accumulate(matrix.model_rate.begin(), matrix.model_rate.end(), 0.0);
  double bucket_sum = std::accumulate(matrix.bucket_rate.begin(), matrix.bucket_rate.end(), 0.0);
  EXPECT_NEAR(model_sum, matrix.total_rate, 1e-9);
  EXPECT_NEAR(bucket_sum, matrix.total_rate, 1e-9);
  for (size_t m = 0; m < matrix.model_bucket_rate.size(); ++m) {
    double row = std::accumulate(matrix.model_bucket_rate[m].begin(),
                                 matrix.model_bucket_rate[m].end(), 0.0);
    EXPECT_NEAR(row, matrix.model_rate[m], 1e-9);
  }
}

TEST(WorkloadMatrixTest, CsvDumpHasHeaderAndRows) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(2);
  auto trace = GeneratePoisson(registry, 0.4, 60.0, Dataset::ShareGpt(), 3);
  WorkloadMatrix matrix = BuildWorkloadMatrix(trace, 60.0, registry.size());
  std::stringstream out;
  WriteMatrixCsv(out, matrix);
  std::string text = out.str();
  EXPECT_NE(text.find("model"), std::string::npos);
  EXPECT_NE(text.find("rate"), std::string::npos);
  // At least one data row beyond the header.
  EXPECT_GT(std::count(text.begin(), text.end(), '\n'), 1);
}

// --- Throughput profile ---

TEST(ThroughputProfileTest, JsonRoundTripsExactly) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(2);
  auto trace = GeneratePoisson(registry, 0.4, 60.0, Dataset::ShareGpt(), 5);
  WorkloadMatrix matrix = BuildWorkloadMatrix(trace, 60.0, registry.size());
  ProfilerOptions options;
  ThroughputProfile profile =
      ProfileThroughput({GpuSpec::H20()}, registry, matrix, options);
  ASSERT_FALSE(profile.entries.empty());

  const std::string path = "/tmp/aegaeon_planner_profile_test.json";
  ASSERT_TRUE(SaveProfileJson(path, profile));
  ThroughputProfile loaded;
  ASSERT_TRUE(LoadProfileJson(path, profile.grid, loaded));
  EXPECT_EQ(loaded.target_attainment, profile.target_attainment);
  ASSERT_EQ(loaded.entries.size(), profile.entries.size());
  for (size_t i = 0; i < profile.entries.size(); ++i) {
    EXPECT_EQ(loaded.entries[i].gpu, profile.entries[i].gpu);
    EXPECT_EQ(loaded.entries[i].model_class, profile.entries[i].model_class);
    EXPECT_EQ(loaded.entries[i].fits, profile.entries[i].fits);
    ASSERT_EQ(loaded.entries[i].tput.size(), profile.entries[i].tput.size());
    for (size_t b = 0; b < profile.entries[i].tput.size(); ++b) {
      // Doubles must round-trip exactly for cache hits to be bit-identical.
      EXPECT_EQ(loaded.entries[i].tput[b], profile.entries[i].tput[b]);
    }
  }
  std::remove(path.c_str());
}

TEST(ThroughputProfileTest, LoadRejectsGridMismatch) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(1);
  auto trace = GeneratePoisson(registry, 0.4, 30.0, Dataset::ShareGpt(), 5);
  WorkloadMatrix matrix = BuildWorkloadMatrix(trace, 30.0, registry.size());
  ThroughputProfile profile =
      ProfileThroughput({GpuSpec::H20()}, registry, matrix, ProfilerOptions{});
  const std::string path = "/tmp/aegaeon_planner_profile_mismatch.json";
  ASSERT_TRUE(SaveProfileJson(path, profile));

  BucketGrid other = BucketGrid::Default();
  other.input_edges.push_back(other.input_edges.back() * 2);
  ThroughputProfile loaded;
  EXPECT_FALSE(LoadProfileJson(path, other, loaded));
  EXPECT_FALSE(LoadProfileJson("/nonexistent/profile.json", profile.grid, loaded));
  std::remove(path.c_str());
}

TEST(ThroughputProfileTest, CalibrationIsDeterministic) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(1);
  const DeployedModel& model = registry.models()[0];
  ProfilerOptions options;
  double a = CalibratePoint(GpuSpec::H20(), model.spec, model.tp, model.slo, 512, 128, options);
  double b = CalibratePoint(GpuSpec::H20(), model.spec, model.tp, model.slo, 512, 128, options);
  EXPECT_GT(a, 0.0);
  EXPECT_EQ(a, b);
}

// --- Queueing predictions ---

TEST(QueueingTest, ErlangCSanity) {
  // M/M/1: P(wait) equals the utilization.
  EXPECT_NEAR(ErlangC(1, 0.5), 0.5, 1e-12);
  // Unstable queues always wait.
  EXPECT_EQ(ErlangC(2, 2.0), 1.0);
  EXPECT_EQ(ErlangC(2, 5.0), 1.0);
  // More servers at the same offered load wait less.
  EXPECT_LT(ErlangC(4, 1.5), ErlangC(2, 1.5));
}

TEST(QueueingTest, MgcWaitGrowsWithLoadAndVariability) {
  double light = MgcWaitTime(0.2, 1.0, 1.0, 2);
  double heavy = MgcWaitTime(1.5, 1.0, 1.0, 2);
  EXPECT_LT(light, heavy);
  // Allen-Cunneen: higher service variability scales the wait up.
  EXPECT_LT(MgcWaitTime(1.5, 1.0, 0.5, 2), MgcWaitTime(1.5, 1.0, 2.0, 2));
  // Unstable: wait diverges.
  EXPECT_TRUE(std::isinf(MgcWaitTime(3.0, 1.0, 1.0, 2)));
}

TEST(QueueingTest, SwitchProbabilityBounds) {
  for (int instances = 1; instances <= 8; ++instances) {
    double p = SwitchProbability(8, 0.5, 4.0, instances);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // More instances resident means fewer switches.
  EXPECT_LT(SwitchProbability(8, 0.5, 4.0, 6), SwitchProbability(8, 0.5, 4.0, 1));
}

// --- Solver ---

struct SolvedScenario {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  std::vector<ArrivalEvent> trace;
  WorkloadMatrix matrix;
  ThroughputProfile profile;

  explicit SolvedScenario(double rps = 0.5) {
    trace = GeneratePoisson(registry, rps, 120.0, Dataset::ShareGpt(), 21);
    matrix = BuildWorkloadMatrix(trace, 120.0, registry.size());
  }

  void Profile(const std::vector<GpuSpec>& gpus) {
    profile = ProfileThroughput(gpus, registry, matrix, ProfilerOptions{});
  }
};

TEST(SolverTest, SolveIsDeterministic) {
  SolvedScenario s;
  s.Profile({GpuSpec::H800(), GpuSpec::H20()});
  GpuOption h800, h20;
  h800.spec = GpuSpec::H800();
  h20.spec = GpuSpec::H20();
  Solver solver(s.registry, s.profile, {h800, h20});
  PoolPlan a = solver.Solve(s.matrix, SolverOptions{});
  PoolPlan b = solver.Solve(s.matrix, SolverOptions{});
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.cost_per_hour, b.cost_per_hour);
  ASSERT_EQ(a.subpools.size(), b.subpools.size());
  for (size_t i = 0; i < a.subpools.size(); ++i) {
    EXPECT_EQ(a.subpools[i].gpus, b.subpools[i].gpus);
    EXPECT_EQ(a.subpools[i].assigned_rate, b.subpools[i].assigned_rate);
  }
}

TEST(SolverTest, EliminatesDominatedOption) {
  // A strictly weaker clone of the H20 at a higher price: covered on every
  // cell by the real H20 and strictly worse wherever load lands.
  GpuSpec slow = GpuSpec::H20();
  slow.name = "H20-slow";
  slow.peak_fp16_flops *= 0.5;
  slow.hbm_bytes_per_s *= 0.5;
  slow.cost_per_hour *= 2.0;

  SolvedScenario s;
  s.Profile({GpuSpec::H20(), slow});
  GpuOption fast_opt, slow_opt;
  fast_opt.spec = GpuSpec::H20();
  slow_opt.spec = slow;
  Solver solver(s.registry, s.profile, {fast_opt, slow_opt});
  PoolPlan plan = solver.Solve(s.matrix, SolverOptions{});
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.eliminated.size(), 1u);
  EXPECT_NE(plan.eliminated[0].find("H20-slow dominated by"), std::string::npos);
  EXPECT_EQ(plan.counts[1], 0);
  EXPECT_GT(plan.counts[0], 0);
}

TEST(SolverTest, ReportsInfeasibleWhenModelsDoNotFit) {
  // MidSizeMarket includes 9B/13B/14B presets whose weights exceed the
  // A10's scaled-down weight buffer, so an A10-only market cannot serve it.
  SolvedScenario s;
  s.Profile({GpuSpec::A10()});
  Solver solver(s.registry, s.profile, OneGpu(GpuSpec::A10()));
  PoolPlan plan = solver.Solve(s.matrix, SolverOptions{});
  EXPECT_FALSE(plan.feasible);
  EXPECT_FALSE(plan.infeasible_reason.empty());
}

TEST(SolverTest, RepackHonorsFixedComposition) {
  SolvedScenario s;
  s.Profile({GpuSpec::H20()});
  Solver solver(s.registry, s.profile, OneGpu(GpuSpec::H20()));
  PoolPlan solved = solver.Solve(s.matrix, SolverOptions{});
  ASSERT_TRUE(solved.feasible);

  PoolPlan repacked = solver.Repack(s.matrix, SolverOptions{}, solved.counts);
  ASSERT_TRUE(repacked.feasible);
  EXPECT_EQ(repacked.counts, solved.counts);
  double expected_cost = 0.0;
  for (size_t o = 0; o < solved.counts.size(); ++o) {
    expected_cost += solved.counts[o] * solver.options()[o].CostPerHour();
  }
  EXPECT_DOUBLE_EQ(repacked.cost_per_hour, expected_cost);
  // All load must land somewhere.
  double assigned = 0.0;
  for (const SubpoolPlan& subpool : repacked.subpools) {
    assigned += subpool.assigned_rate;
  }
  EXPECT_NEAR(assigned, s.matrix.total_rate, 1e-6);

  // A composition that cannot hold any model is rejected with a reason.
  PoolPlan empty = solver.Repack(s.matrix, SolverOptions{}, {0});
  EXPECT_FALSE(empty.feasible);
  EXPECT_FALSE(empty.infeasible_reason.empty());
}

// --- Closed loop ---

TEST(PlannerTest, CertifiesAndIsDeterministic) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = GeneratePoisson(registry, 0.4, 180.0, Dataset::ShareGpt(), 33);

  Planner planner(registry, OneGpu(GpuSpec::H20()));
  PlannerOptions options;
  options.target_attainment = 0.90;
  CertifiedPlan a = planner.Solve(trace, 180.0, options);
  ASSERT_TRUE(a.certified);
  EXPECT_GE(a.replay.SloAttainment(), options.target_attainment);
  EXPECT_GT(a.plan.cost_per_hour, 0.0);
  EXPECT_FALSE(a.rounds.empty());
  EXPECT_TRUE(a.rounds.back().certified);

  CertifiedPlan b = planner.Solve(trace, 180.0, options);
  EXPECT_EQ(a.plan.counts, b.plan.counts);
  EXPECT_EQ(a.replay.SloAttainment(), b.replay.SloAttainment());
  EXPECT_EQ(a.replay.tokens_met, b.replay.tokens_met);
}

TEST(PlannerTest, QueueingPredictionTracksSimulator) {
  // The M/G/c layer steers the search; the simulator is ground truth. On a
  // certified plan the two must agree on stability, and predicted TTFT must
  // be the right order of magnitude (within 10x of the replayed mean).
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = GeneratePoisson(registry, 0.4, 180.0, Dataset::ShareGpt(), 33);
  Planner planner(registry, OneGpu(GpuSpec::H20()));
  PlannerOptions options;
  CertifiedPlan result = planner.Solve(trace, 180.0, options);
  ASSERT_TRUE(result.certified);
  ASSERT_FALSE(result.replay.ttft_samples.empty());
  double simulated = 0.0;
  for (double sample : result.replay.ttft_samples) {
    simulated += sample;
  }
  simulated /= static_cast<double>(result.replay.ttft_samples.size());

  for (const SubpoolPlan& subpool : result.plan.subpools) {
    EXPECT_TRUE(subpool.prediction.stable);
    EXPECT_GT(subpool.prediction.ttft, 0.0);
    EXPECT_LT(subpool.prediction.ttft, simulated * 10.0);
    EXPECT_GT(subpool.prediction.ttft, simulated / 10.0);
  }
}

TEST(PlannerTest, RouteTraceConservesArrivals) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = GeneratePoisson(registry, 0.4, 120.0, Dataset::ShareGpt(), 7);
  Planner planner(registry, OneGpu(GpuSpec::H20()));
  PlannerOptions options;
  CertifiedPlan result = planner.Solve(trace, 120.0, options);
  ASSERT_TRUE(result.certified);

  auto routed = planner.RouteTrace(result.plan, trace, options.grid);
  ASSERT_EQ(routed.size(), result.plan.subpools.size());
  size_t total = 0;
  for (const auto& sub : routed) {
    total += sub.size();
    // Routed subtraces stay time-ordered (ReadTrace-compatible).
    for (size_t i = 1; i < sub.size(); ++i) {
      EXPECT_LE(sub[i - 1].time, sub[i].time);
    }
  }
  EXPECT_EQ(total, trace.size());
}

}  // namespace
}  // namespace aegaeon
