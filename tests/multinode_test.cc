// Tests for multi-node deployments (Figure 5): per-node caches, the
// locality-aware decode dispatch, and cross-node KV migration.

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

std::vector<ArrivalEvent> Trace(const ModelRegistry& registry, double rps = 0.1,
                                double horizon = 150.0) {
  return GeneratePoisson(registry, rps, horizon, Dataset::ShareGpt(), 55);
}

TEST(MultiNodeTest, TwoNodeClusterServesEverything) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(16);
  AegaeonConfig config;
  config.prefill_instances = 3;
  config.decode_instances = 5;
  config.nodes = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  EXPECT_EQ(cluster.node_count(), 2);
  RunMetrics metrics = cluster.Run(Trace(registry));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  EXPECT_GT(metrics.SloAttainment(), 0.85);
}

TEST(MultiNodeTest, LocalityKeepsMostKvOnItsHomeNode) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(16);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 6;
  config.nodes = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(Trace(registry));
  // With decode capacity on both nodes, locality-aware dispatch should keep
  // migrations well below one per request.
  EXPECT_LT(static_cast<double>(cluster.kv_migrations()),
            0.8 * static_cast<double>(metrics.total_requests));
}

TEST(MultiNodeTest, CrossNodeMigrationStillCompletes) {
  // Prefill lives on node 0, all decoding on node 1: every request's KV
  // must migrate across the fabric exactly once.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonConfig config;
  config.prefill_instances = 2;  // node 0 (first half of 4 instances)
  config.decode_instances = 2;   // node 1
  config.nodes = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(Trace(registry));
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
  // Every decoded request crossed nodes at least once.
  uint64_t decoded = 0;
  for (const Request& r : cluster.requests()) {
    decoded += (r.output_tokens > 1);
  }
  EXPECT_GE(cluster.kv_migrations(), decoded);
}

TEST(MultiNodeTest, SingleNodeHasNoMigrations) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  cluster.Run(Trace(registry));
  EXPECT_EQ(cluster.kv_migrations(), 0u);
}

TEST(MultiNodeTest, MatchesSingleNodeAttainmentAtLowLoad) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = Trace(registry, 0.08);
  auto run = [&](int nodes) {
    AegaeonConfig config;
    config.prefill_instances = 2;
    config.decode_instances = 4;
    config.nodes = nodes;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    return cluster.Run(trace).SloAttainment();
  };
  double one = run(1);
  double two = run(2);
  // The fabric hop costs a little, but not much at low load.
  EXPECT_GT(two, one - 0.08);
}

TEST(MultiNodeTest, DeterministicAcrossRuns) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  auto trace = Trace(registry);
  auto run = [&] {
    AegaeonConfig config;
    config.prefill_instances = 2;
    config.decode_instances = 4;
    config.nodes = 3;
    AegaeonCluster cluster(config, registry, GpuSpec::H800());
    return cluster.Run(trace);
  };
  RunMetrics a = run();
  RunMetrics b = run();
  EXPECT_EQ(a.tokens_met, b.tokens_met);
  EXPECT_DOUBLE_EQ(a.horizon, b.horizon);
}

}  // namespace
}  // namespace aegaeon
