// Validates Algorithm 2's closed-form quotas (Eq. 2-3) against the offline
// oracle: an exhaustive grid search over periodic round-robin schedules.

#include <gtest/gtest.h>

#include <tuple>

#include "core/decode_scheduler.h"
#include "core/oracle_scheduler.h"
#include "sim/random.h"

namespace aegaeon {
namespace {

std::vector<OracleBatch> UniformBatches(int k, double step, double tbt, double switch_cost) {
  return std::vector<OracleBatch>(k, OracleBatch{step, tbt, switch_cost});
}

// Converts decode-scheduler inputs/quotas into oracle form.
double AttainmentOfAlgorithm2(const std::vector<OracleBatch>& batches, double qmax) {
  std::vector<BatchQuotaInput> inputs;
  double c = 0.0;
  for (const OracleBatch& b : batches) {
    inputs.push_back(BatchQuotaInput{b.step_time, b.tbt});
    c += b.switch_cost;
  }
  QuotaResult result = ComputeQuotas(inputs, c, qmax);
  return PeriodicAttainment(batches, result.quotas);
}

TEST(OracleTest, PaperExampleIsOptimalInItsFamily) {
  // §4.3's worked example: 3 batches, d=0.1, t=0.025, c=3 (1 s each), and
  // QMAX=3 yields q=3 and exactly 100% attainment; the oracle agrees no
  // periodic schedule does better.
  auto batches = UniformBatches(3, 0.025, 0.1, 1.0);
  double algo = AttainmentOfAlgorithm2(batches, 3.0);
  EXPECT_NEAR(algo, 1.0, 1e-9);
  OracleResult oracle = GridSearchQuotas(batches, GeometricGrid(0.1, 6.0, 14));
  EXPECT_LE(algo, oracle.attainment + 1e-9);
  EXPECT_GE(algo, oracle.attainment - 1e-9);  // both hit the 1.0 ceiling
}

TEST(OracleTest, AttainmentFormulaBasics) {
  // One batch, no switch cost: always 100%.
  EXPECT_DOUBLE_EQ(PeriodicAttainment({OracleBatch{0.02, 0.1, 0.0}}, {1.0}), 1.0);
  // One batch whose step exceeds its deadline can never keep up.
  EXPECT_LT(PeriodicAttainment({OracleBatch{0.2, 0.1, 0.0}}, {1.0}), 0.51);
  // Larger switch costs strictly reduce attainment when below the ceiling.
  auto tight = UniformBatches(4, 0.05, 0.1, 0.2);
  auto tighter = UniformBatches(4, 0.05, 0.1, 1.0);
  std::vector<Duration> quotas(4, 1.0);
  EXPECT_GT(PeriodicAttainment(tight, quotas), PeriodicAttainment(tighter, quotas));
}

// Property sweep: Eq. 2-3 achieves at least 90% of the grid-searched oracle
// across a spread of configurations (batch counts, step times, deadlines,
// switch costs).
class QuotaOptimalityTest
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {};

TEST_P(QuotaOptimalityTest, ClosedFormNearOracle) {
  auto [k, step, tbt, switch_cost] = GetParam();
  auto batches = UniformBatches(k, step, tbt, switch_cost);
  double algo = AttainmentOfAlgorithm2(batches, /*qmax=*/4.0);
  OracleResult oracle = GridSearchQuotas(batches, GeometricGrid(0.05, 4.0, 12));
  EXPECT_GE(algo, 0.90 * oracle.attainment)
      << "k=" << k << " t=" << step << " d=" << tbt << " c=" << switch_cost
      << " algo=" << algo << " oracle=" << oracle.attainment;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuotaOptimalityTest,
    ::testing::Values(std::make_tuple(2, 0.015, 0.1, 0.35),
                      std::make_tuple(3, 0.025, 0.1, 1.0),
                      std::make_tuple(4, 0.015, 0.1, 0.5),
                      std::make_tuple(5, 0.012, 0.1, 0.45),
                      std::make_tuple(3, 0.03, 0.05, 0.3),
                      std::make_tuple(4, 0.02, 0.2, 0.7),
                      std::make_tuple(2, 0.05, 0.1, 2.0)));

TEST(OracleTest, HeterogeneousBatchesAlsoNearOracle) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<OracleBatch> batches;
    int k = 2 + static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < k; ++i) {
      OracleBatch b;
      b.step_time = rng.Uniform(0.01, 0.04);
      b.tbt = 0.1;
      b.switch_cost = rng.Uniform(0.2, 1.0);
      batches.push_back(b);
    }
    double algo = AttainmentOfAlgorithm2(batches, 4.0);
    OracleResult oracle = GridSearchQuotas(batches, GeometricGrid(0.05, 4.0, 10));
    EXPECT_GE(algo, 0.85 * oracle.attainment) << "trial " << trial;
  }
}

TEST(OracleTest, GridSearchCountsEvaluations) {
  auto batches = UniformBatches(3, 0.02, 0.1, 0.5);
  OracleResult result = GridSearchQuotas(batches, GeometricGrid(0.1, 4.0, 5));
  EXPECT_EQ(result.evaluated, 125u);
  EXPECT_EQ(result.quotas.size(), 3u);
}

}  // namespace
}  // namespace aegaeon
